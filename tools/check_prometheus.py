#!/usr/bin/env python3
"""Validate a Prometheus text-exposition (0.0.4) document.

Used by CI to check what GET /metrics serves; stdlib only.

    check_prometheus.py [file] [--allow-untyped] [--require name ...]

Reads the document from `file` (or stdin), validates its syntax line by
line, and exits non-zero on the first violation. `--require` additionally
asserts that each named metric has at least one sample (the name is matched
against the sample name, so `subex_server_uptime_seconds` matches both a
gauge of that name and a summary's `_sum`/`_count` rows if you name them
explicitly).

Beyond per-line syntax, two whole-document properties are enforced:
every sample must belong to a family with a `# TYPE` line (scrapers fall
back to untyped silently, which is how typo'd registrations slip through
-- pass --allow-untyped to accept them), and each family's samples must
form one contiguous block (a family reappearing after another family's
samples means two code paths registered the same name, and Prometheus
keeps only one of them).

Checked per the format spec:
  * `# HELP <name> <docstring>` and `# TYPE <name> <type>` comment syntax,
    with <type> one of counter/gauge/histogram/summary/untyped.
  * At most one TYPE line per metric, appearing before its first sample.
  * Sample lines `name{labels} value [timestamp]` with metric and label
    names matching [a-zA-Z_:][a-zA-Z0-9_:]* (':' is invalid in label
    names), label values with proper \\ \" \\n escaping, and values that
    parse as Go floats (including +Inf/-Inf/NaN).
  * Samples of a summary-typed metric are only the base name with an
    optional `quantile` label, `_sum`, or `_count` (histogram: `_bucket`
    with `le`, `_sum`, `_count`).
"""

import re
import sys

METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_NAME = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>\S+)"
    r"(?:\s+(?P<timestamp>-?\d+))?\s*$"
)
TYPES = {"counter", "gauge", "histogram", "summary", "untyped"}


def fail(line_no, line, message):
    sys.stderr.write(f"line {line_no}: {message}\n  {line}\n")
    sys.exit(1)


def parse_labels(raw, line_no, line):
    """Splits `a="x",b="y"` respecting escapes; returns a dict."""
    labels = {}
    i = 0
    while i < len(raw):
        match = re.match(r'([a-zA-Z_][a-zA-Z0-9_]*)="', raw[i:])
        if not match:
            fail(line_no, line, f"bad label syntax at ...{raw[i:]!r}")
        name = match.group(1)
        i += match.end()
        value = []
        while i < len(raw) and raw[i] != '"':
            if raw[i] == "\\":
                if i + 1 >= len(raw) or raw[i + 1] not in '\\"n':
                    fail(line_no, line, "bad escape in label value")
                i += 1
            value.append(raw[i])
            i += 1
        if i >= len(raw):
            fail(line_no, line, "unterminated label value")
        i += 1  # Closing quote.
        labels[name] = "".join(value)
        if i < len(raw):
            if raw[i] != ",":
                fail(line_no, line, f"expected ',' between labels, got {raw[i]!r}")
            i += 1
    return labels


def parse_value(text, line_no, line):
    if text in ("+Inf", "-Inf", "Inf", "NaN"):
        return
    try:
        float(text)
    except ValueError:
        fail(line_no, line, f"bad sample value {text!r}")


def base_name(sample_name, typed):
    """The TYPE-line name a sample belongs to, given the typed metrics."""
    for suffix in ("_bucket", "_sum", "_count", ""):
        if sample_name.endswith(suffix) and sample_name[: len(sample_name) - len(suffix)] in typed:
            return sample_name[: len(sample_name) - len(suffix)], suffix
    return sample_name, ""


def main():
    argv = sys.argv[1:]
    required = []
    if "--require" in argv:
        split = argv.index("--require")
        required = argv[split + 1 :]
        argv = argv[:split]
    allow_untyped = "--allow-untyped" in argv
    argv = [arg for arg in argv if arg != "--allow-untyped"]
    text = open(argv[0], encoding="utf-8").read() if argv else sys.stdin.read()

    types = {}  # metric name -> declared type
    sampled = set()  # metric names that already have samples
    sample_names = set()
    samples = 0
    current_family = None  # Family of the contiguous block being read.

    for line_no, line in enumerate(text.split("\n"), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 2 or parts[1] not in ("HELP", "TYPE"):
                continue  # Arbitrary comments are legal.
            if len(parts) < 3 or not METRIC_NAME.match(parts[2]):
                fail(line_no, line, f"bad metric name in {parts[1]} comment")
            if parts[1] == "TYPE":
                if len(parts) != 4 or parts[3] not in TYPES:
                    fail(line_no, line, "TYPE must name one of " + "/".join(sorted(TYPES)))
                if parts[2] in types:
                    fail(line_no, line, f"duplicate TYPE for {parts[2]}")
                if parts[2] in sampled:
                    fail(line_no, line, f"TYPE for {parts[2]} after its samples")
                types[parts[2]] = parts[3]
            continue

        match = SAMPLE.match(line)
        if not match:
            fail(line_no, line, "unparseable sample line")
        name = match.group("name")
        labels = parse_labels(match.group("labels") or "", line_no, line)
        parse_value(match.group("value"), line_no, line)
        for label in labels:
            if not LABEL_NAME.match(label):
                fail(line_no, line, f"bad label name {label!r}")

        base, suffix = base_name(name, types)
        declared = types.get(base)
        if declared is None and not allow_untyped:
            fail(line_no, line,
                 f"sample of {base} has no # TYPE line "
                 "(pass --allow-untyped to accept)")
        if base != current_family:
            if base in sampled:
                fail(line_no, line,
                     f"family {base} reappears after other families' samples "
                     "(duplicate registration?)")
            current_family = base
        if declared == "summary":
            if suffix not in ("", "_sum", "_count"):
                fail(line_no, line, f"sample {name} is not a legal summary series")
            if suffix in ("_sum", "_count") and "quantile" in labels:
                fail(line_no, line, f"{name} must not carry a quantile label")
            if suffix == "" and "quantile" in labels:
                parse_value(labels["quantile"], line_no, line)
        elif declared == "histogram":
            if suffix not in ("_bucket", "_sum", "_count"):
                fail(line_no, line, f"sample {name} is not a legal histogram series")
            if suffix == "_bucket" and "le" not in labels:
                fail(line_no, line, f"{name} bucket sample is missing its le label")
        sampled.add(base)
        sample_names.add(name)
        samples += 1

    missing = [name for name in required if name not in sample_names]
    if missing:
        sys.stderr.write("required metrics missing: " + ", ".join(missing) + "\n")
        sys.exit(1)
    print(f"ok: {samples} samples, {len(types)} typed metrics")


if __name__ == "__main__":
    main()
