// Crash-recovery harness for the OnlineDataset WAL: three modes sharing one
// deterministic stream, so CI can kill -9 a run mid-ingest and assert the
// recovered process is bitwise indistinguishable from one that never died.
//
//   crash_recovery run       --wal-dir D --rows N --kill-after K [--seed S]
//       Ingests rows 0..N-1 with the WAL enabled and raises SIGKILL the
//       moment K rows have been accepted (no destructors, no flushes —
//       the real thing).
//   crash_recovery recover   --wal-dir D --rows N [--seed S]
//       Recovers from D's checkpoint + WAL, resumes the stream at
//       total_ingested, finishes the remaining rows and prints the final
//       state + window scores as JSON (scores as raw IEEE-754 hex bits).
//   crash_recovery reference --rows N [--seed S]
//       The control: ingests all N rows in one uninterrupted process with
//       the WAL disabled and prints the same JSON.
//
// `recover` output must equal `reference` output byte for byte: same
// epoch, same counters, same window, bitwise-identical scores. Row r is a
// pure function of (seed, r), so resuming at any row reproduces the exact
// stream a dead process was fed.

#include <sys/stat.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/matrix.h"
#include "detect/loda.h"
#include "online/online_dataset.h"

namespace {

using namespace subex;

std::uint64_t Mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

constexpr std::size_t kNumFeatures = 4;
constexpr std::size_t kBatchRows = 5;  // Deliberately not the stride.

/// Row r of the stream: uniform [0, 1) values, a pure function of
/// (seed, r, f) so any process can regenerate any suffix.
void FillRow(std::uint64_t seed, std::uint64_t r, Matrix& m,
             std::size_t row) {
  for (std::size_t f = 0; f < kNumFeatures; ++f) {
    const std::uint64_t bits = Mix64(seed ^ Mix64(r * kNumFeatures + f + 1));
    m(row, f) = static_cast<double>(bits >> 11) * 0x1.0p-53;
  }
}

OnlineDatasetOptions DatasetOptions(const std::string& wal_dir) {
  OnlineDatasetOptions options;
  options.name = "crash";
  options.window_capacity = 64;
  options.advance_every = 8;
  options.min_score_window = 16;
  options.wal_dir = wal_dir;
  options.wal_checkpoint_every = 4;
  return options;
}

void AddScorer(OnlineDataset& dataset) {
  Loda::Options loda;
  loda.num_projections = 8;
  dataset.AddLoda("LODA", loda);
}

/// Ingests rows [from, to) in fixed batches; returns the count ingested
/// before `kill_after` fired (it never returns if it fires).
void IngestRows(OnlineDataset& dataset, std::uint64_t seed,
                std::uint64_t from, std::uint64_t to,
                std::uint64_t kill_after) {
  std::uint64_t r = from;
  while (r < to) {
    const std::size_t n =
        static_cast<std::size_t>(std::min<std::uint64_t>(kBatchRows, to - r));
    Matrix batch(n, kNumFeatures);
    for (std::size_t i = 0; i < n; ++i) FillRow(seed, r + i, batch, i);
    const OnlineDataset::IngestResult result = dataset.Append(batch);
    r += result.accepted;
    if (kill_after != 0 && r >= kill_after) {
      // A degraded WAL would make the recover-vs-reference diff pass
      // vacuously (recovery replays nothing, then re-ingests everything),
      // so refuse to die unless something was actually journaled.
      if (dataset.stats().wal_records == 0) {
        std::fprintf(stderr,
                     "refusing to SIGKILL: WAL never journaled a record "
                     "(missing or unwritable --wal-dir?)\n");
        std::exit(1);
      }
      // The point of the exercise: no destructors, no syncs, no goodbyes.
      std::fflush(nullptr);
      ::raise(SIGKILL);
    }
  }
}

std::string StateJson(OnlineDataset& dataset) {
  const OnlineDataset::StatsSnapshot stats = dataset.stats();
  JsonArray scores;
  if (stats.window_size >= dataset.options().min_score_window) {
    OnlineDataset::ScoredEpoch scored;
    const OnlineDataset::Status status =
        dataset.Score("LODA", Subspace(), &scored);
    if (status != OnlineDataset::Status::kOk) {
      std::fprintf(stderr, "score failed: %s\n",
                   OnlineDataset::StatusMessage(status));
      std::exit(1);
    }
    for (const double s : *scored.scores) {
      char hex[17];
      std::uint64_t bits;
      std::memcpy(&bits, &s, sizeof(bits));
      std::snprintf(hex, sizeof(hex), "%016llx",
                    static_cast<unsigned long long>(bits));
      scores.Add(std::string(hex));
    }
  }
  return JsonObject()
      .Add("epoch", stats.epoch)
      .Add("total_ingested", stats.total_ingested)
      .Add("advances", stats.advances)
      .Add("window_size", static_cast<std::uint64_t>(stats.window_size))
      .Add("pending", static_cast<std::uint64_t>(stats.pending))
      .AddRaw("score_bits", scores.Build())
      .Build();
}

std::string FlagValue(int argc, char** argv, const char* flag) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return argv[i + 1];
  }
  return "";
}

std::uint64_t U64Flag(int argc, char** argv, const char* flag,
                      std::uint64_t fallback) {
  const std::string value = FlagValue(argc, argv, flag);
  return value.empty() ? fallback : std::strtoull(value.c_str(), nullptr, 10);
}

int Usage() {
  std::fprintf(stderr,
               "usage: crash_recovery run|recover|reference [--wal-dir D] "
               "[--rows N] [--kill-after K] [--seed S]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string mode = argv[1];
  const std::string wal_dir = FlagValue(argc, argv, "--wal-dir");
  const std::uint64_t rows = U64Flag(argc, argv, "--rows", 200);
  const std::uint64_t kill_after = U64Flag(argc, argv, "--kill-after", 0);
  const std::uint64_t seed = U64Flag(argc, argv, "--seed", 20260808);

  if (mode == "run" || mode == "recover") {
    if (wal_dir.empty()) {
      std::fprintf(stderr, "%s mode needs --wal-dir\n", mode.c_str());
      return 2;
    }
    // A missing directory would silently degrade the WAL; create it so
    // `run` journals for real and `recover` has something to read.
    ::mkdir(wal_dir.c_str(), 0755);
    OnlineDataset dataset(DatasetOptions(wal_dir), kNumFeatures);
    AddScorer(dataset);
    const OnlineDataset::RecoveryResult recovery = dataset.RecoverFromWal();
    if (!recovery.ok()) {
      std::fprintf(stderr, "recovery failed: %s\n", recovery.error.c_str());
      return 1;
    }
    if (mode == "recover") {
      std::fprintf(stderr,
                   "recovered: checkpoint_epoch=%llu replayed_records=%llu "
                   "replayed_rows=%llu truncated_tail=%d\n",
                   static_cast<unsigned long long>(recovery.checkpoint_epoch),
                   static_cast<unsigned long long>(recovery.replayed_records),
                   static_cast<unsigned long long>(recovery.replayed_rows),
                   recovery.truncated_tail ? 1 : 0);
    }
    const std::uint64_t from = dataset.stats().total_ingested;
    if (from > rows) {
      std::fprintf(stderr, "recovered past --rows (%llu > %llu)\n",
                   static_cast<unsigned long long>(from),
                   static_cast<unsigned long long>(rows));
      return 1;
    }
    IngestRows(dataset, seed, from, rows,
               mode == "run" ? kill_after : 0);
    std::printf("%s\n", StateJson(dataset).c_str());
    return 0;
  }
  if (mode == "reference") {
    OnlineDataset dataset(DatasetOptions(""), kNumFeatures);
    AddScorer(dataset);
    IngestRows(dataset, seed, 0, rows, 0);
    std::printf("%s\n", StateJson(dataset).c_str());
    return 0;
  }
  return Usage();
}
