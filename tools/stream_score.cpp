// stream_score — score a ".cols" columnar dataset through the chunked
// larger-than-RAM path under a fixed memory budget.
//
//   stream_score --data <file.cols> [--detector knn|loda|lof]
//                [--budget-mb N] [--subspace 0,1,2] [--k K]
//                [--projections P] [--queries poi|all|3,17,99]
//                [--check-ram] [--stats] [--json]
//                [--trace-out trace.json]
//                [--profile-out profile.folded] [--profile-hz N]
//
// --trace-out enables the process SpanCollector, wraps the streamed scoring
// in a `stream.score` span, and writes everything collected as Chrome
// trace-event JSON loadable in Perfetto or chrome://tracing.
//
// --profile-out arms the SIGPROF sampling profiler for the whole run and
// writes collapsed flamegraph stacks (`stacks... count` lines) on exit —
// feed them to any flamegraph renderer to see where the chunked scoring
// path spends its wall clock (chunk decode vs distance kernels vs
// eviction).
//
// Scoring streams column chunks through the process-wide EvictionManager
// (budget set via --budget-mb), so peak memory stays bounded no matter the
// file size. `--queries poi` (default) scores the file's points of
// interest — the right unit at scale, where all-points kNN would be
// O(n^2); `all` scores every point (kNN/LOF: only sensible for files that
// also fit in RAM). `--check-ram` additionally loads the whole file and
// verifies the streamed scores are bitwise identical to the in-RAM
// detectors — the acceptance check of the chunked path. `--stats` prints
// the eviction-manager snapshot; `--json` wraps everything in one JSON
// object for scripting.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/json.h"
#include "data/chunked_dataset.h"
#include "data/columnar.h"
#include "detect/chunked_score.h"
#include "detect/knn_distance.h"
#include "detect/loda.h"
#include "detect/lof.h"
#include "fault/fault.h"
#include "mem/eviction_manager.h"
#include "obs/span_collector.h"
#include "obs/trace.h"
#include "prof/perf_counters.h"
#include "prof/sampling_profiler.h"
#include "subspace/subspace.h"

namespace {

struct Flags {
  std::string data;
  std::string detector = "knn";
  std::size_t budget_mb = 256;
  std::vector<int> subspace;
  int k = 10;
  int projections = 100;
  std::string queries = "poi";
  bool check_ram = false;
  bool stats = false;
  bool json = false;
  std::string trace_out;
  std::string profile_out;
  int profile_hz = 0;  // 0 = profiler default rate.
};

int Usage() {
  std::fprintf(
      stderr,
      "usage: stream_score --data <file.cols> [--detector knn|loda|lof]\n"
      "                    [--budget-mb N] [--subspace 0,1,2] [--k K]\n"
      "                    [--projections P] [--queries poi|all|ids,...]\n"
      "                    [--check-ram] [--stats] [--json]\n"
      "                    [--trace-out trace.json]\n"
      "                    [--profile-out profile.folded] [--profile-hz N]\n");
  return 2;
}

std::vector<int> ParseIntList(const std::string& s) {
  std::vector<int> values;
  const char* p = s.c_str();
  while (*p != '\0') {
    char* end = nullptr;
    values.push_back(static_cast<int>(std::strtol(p, &end, 10)));
    p = (*end == ',') ? end + 1 : end;
  }
  return values;
}

bool ParseFlags(int argc, char** argv, Flags* flags) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--data" && i + 1 < argc) {
      flags->data = argv[++i];
    } else if (arg == "--detector" && i + 1 < argc) {
      flags->detector = argv[++i];
    } else if (arg == "--budget-mb" && i + 1 < argc) {
      flags->budget_mb = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--subspace" && i + 1 < argc) {
      flags->subspace = ParseIntList(argv[++i]);
    } else if (arg == "--k" && i + 1 < argc) {
      flags->k = std::atoi(argv[++i]);
    } else if (arg == "--projections" && i + 1 < argc) {
      flags->projections = std::atoi(argv[++i]);
    } else if (arg == "--queries" && i + 1 < argc) {
      flags->queries = argv[++i];
    } else if (arg == "--check-ram") {
      flags->check_ram = true;
    } else if (arg == "--stats") {
      flags->stats = true;
    } else if (arg == "--json") {
      flags->json = true;
    } else if (arg == "--trace-out" && i + 1 < argc) {
      flags->trace_out = argv[++i];
    } else if (arg == "--profile-out" && i + 1 < argc) {
      flags->profile_out = argv[++i];
    } else if (arg == "--profile-hz" && i + 1 < argc) {
      flags->profile_hz = std::atoi(argv[++i]);
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return false;
    }
  }
  return !flags->data.empty() && flags->budget_mb > 0;
}

double Checksum(const std::vector<double>& scores) {
  double sum = 0.0;
  for (double s : scores) sum += s;
  return sum;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  if (!ParseFlags(argc, argv, &flags)) return Usage();

  // Chaos opt-in: SUBEX_FAULT_SPEC / SUBEX_FAULT_SEED arm injection points
  // process-wide. With the variables unset this is a no-op.
  subex::FaultRegistry::Global().ConfigureFromEnv();

  subex::EvictionManager& manager = subex::EvictionManager::Global();
  manager.SetBudget(flags.budget_mb << 20);
  if (!flags.trace_out.empty()) {
    subex::SpanCollector::Global().Enable(
        /*ring_capacity_per_thread=*/1 << 14);
  }
  subex::RegisterProfProcessMetrics();
  if (!flags.profile_out.empty()) {
    subex::SamplingProfilerOptions prof_options;
    if (flags.profile_hz > 0) {
      prof_options.sample_hz = static_cast<std::uint32_t>(flags.profile_hz);
    }
    std::string prof_error;
    if (!subex::SamplingProfiler::Global().Start(prof_options, &prof_error)) {
      std::fprintf(stderr, "profiler disabled: %s\n", prof_error.c_str());
    }
  }

  auto open = subex::ChunkedDataset::Open(flags.data);
  if (!open.ok) {
    std::fprintf(stderr, "error: %s\n", open.error.c_str());
    return 1;
  }
  subex::ChunkedDataset& data = *open.dataset;

  std::vector<int> queries;  // Empty = all points.
  if (flags.queries == "poi") {
    queries = data.outlier_indices();
    if (queries.empty() && flags.detector != "loda") {
      std::fprintf(stderr,
                   "error: %s has no points of interest; pass --queries all "
                   "or an explicit id list\n",
                   flags.data.c_str());
      return 1;
    }
  } else if (flags.queries != "all") {
    queries = ParseIntList(flags.queries);
    for (int q : queries) {
      if (q < 0 || static_cast<std::size_t>(q) >= data.num_rows()) {
        std::fprintf(stderr, "error: query %d out of range\n", q);
        return 1;
      }
    }
  }

  const subex::Subspace subspace(flags.subspace);
  subex::Loda::Options loda_options;
  loda_options.num_projections = flags.projections;

  const auto start = std::chrono::steady_clock::now();
  std::vector<double> scores;
  if (flags.detector == "knn") {
    scores = subex::ScoreKnnDistanceChunked(
        data, subspace, flags.k, subex::KnnDistance::Aggregation::kMean,
        queries);
  } else if (flags.detector == "lof") {
    scores = subex::ScoreLofChunked(data, subspace, flags.k, queries);
  } else if (flags.detector == "loda") {
    scores = subex::ScoreLodaChunked(data, subspace, loda_options);
  } else {
    std::fprintf(stderr, "error: unknown detector %s\n",
                 flags.detector.c_str());
    return Usage();
  }
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)
          .count();
  subex::RecordCompletedSpan(
      "stream.score", start,
      static_cast<std::uint64_t>(elapsed_ms * 1e6));

  // Cross-check: load the whole file into RAM and compare bitwise. LODA
  // scores all points; the distance detectors are compared at the queried
  // points only.
  bool checked = false;
  bool identical = false;
  if (flags.check_ram) {
    const subex::ColumnarReadResult in_ram =
        subex::ReadColumnarDataset(flags.data);
    if (!in_ram.ok) {
      std::fprintf(stderr, "error: %s\n", in_ram.error.c_str());
      return 1;
    }
    std::vector<double> reference;
    if (flags.detector == "knn") {
      reference = subex::KnnDistance(flags.k,
                                     subex::KnnDistance::Aggregation::kMean)
                      .Score(in_ram.dataset, subspace);
    } else if (flags.detector == "lof") {
      reference = subex::Lof(flags.k).Score(in_ram.dataset, subspace);
    } else {
      reference = subex::Loda(loda_options).Score(in_ram.dataset, subspace);
    }
    checked = true;
    identical = true;
    if (flags.detector == "loda" || queries.empty()) {
      identical = scores.size() == reference.size();
      for (std::size_t i = 0; identical && i < scores.size(); ++i) {
        // Bitwise: NaN != NaN under ==, but the detectors never emit NaN on
        // finite input, so plain equality is the right comparison.
        if (scores[i] != reference[i]) identical = false;
      }
    } else {
      for (std::size_t i = 0; i < queries.size(); ++i) {
        if (scores[i] != reference[static_cast<std::size_t>(queries[i])]) {
          identical = false;
        }
      }
    }
  }

  const subex::ChunkedDatasetStats chunk_stats = data.stats();
  const subex::EvictionManagerSnapshot snapshot = manager.snapshot();

  if (flags.json) {
    subex::JsonObject obj;
    obj.Add("file", flags.data)
        .Add("detector", flags.detector)
        .Add("rows", static_cast<std::uint64_t>(data.num_rows()))
        .Add("cols", static_cast<std::uint64_t>(data.num_cols()))
        .Add("budget_mb", static_cast<std::uint64_t>(flags.budget_mb))
        .Add("scored", static_cast<std::uint64_t>(scores.size()))
        .Add("elapsed_ms", elapsed_ms)
        .Add("checksum", Checksum(scores))
        .Add("chunk_loads", chunk_stats.loads)
        .Add("chunk_hits", chunk_stats.hits)
        .Add("chunk_evictions", chunk_stats.evictions);
    if (checked) obj.Add("identical_to_ram", identical);
    if (flags.stats) obj.AddRaw("mem", snapshot.ToJson());
    std::printf("%s\n", obj.Build().c_str());
  } else {
    std::printf("scored %zu point%s in %.1f ms (detector=%s, budget=%zu MB)\n",
                scores.size(), scores.size() == 1 ? "" : "s", elapsed_ms,
                flags.detector.c_str(), flags.budget_mb);
    std::printf("chunk loads=%llu hits=%llu evictions=%llu, checksum=%.17g\n",
                static_cast<unsigned long long>(chunk_stats.loads),
                static_cast<unsigned long long>(chunk_stats.hits),
                static_cast<unsigned long long>(chunk_stats.evictions),
                Checksum(scores));
    if (checked) {
      std::printf("in-RAM cross-check: %s\n",
                  identical ? "bitwise identical" : "MISMATCH");
    }
    if (flags.stats) std::printf("mem: %s\n", snapshot.ToJson().c_str());
  }
  if (!flags.trace_out.empty()) {
    const std::string trace_json =
        subex::SpanCollector::Global().ToChromeTraceJson();
    std::FILE* file = std::fopen(flags.trace_out.c_str(), "w");
    if (file == nullptr) {
      std::fprintf(stderr, "error: cannot open %s for writing\n",
                   flags.trace_out.c_str());
      return 1;
    }
    std::fwrite(trace_json.data(), 1, trace_json.size(), file);
    std::fclose(file);
  }
  if (!flags.profile_out.empty()) {
    subex::SamplingProfiler& profiler = subex::SamplingProfiler::Global();
    profiler.Stop();
    const std::string folded = profiler.ToCollapsedText();
    std::FILE* file = std::fopen(flags.profile_out.c_str(), "w");
    if (file == nullptr) {
      std::fprintf(stderr, "error: cannot open %s for writing\n",
                   flags.profile_out.c_str());
      return 1;
    }
    std::fwrite(folded.data(), 1, folded.size(), file);
    std::fclose(file);
    std::fprintf(stderr, "wrote %llu profile samples (%llu dropped) to %s\n",
                 static_cast<unsigned long long>(profiler.samples()),
                 static_cast<unsigned long long>(profiler.dropped()),
                 flags.profile_out.c_str());
  }
  return (checked && !identical) ? 1 : 0;
}
