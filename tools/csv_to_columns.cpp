// csv_to_columns — convert, generate and inspect ".cols" columnar datasets.
//
// The chunked scoring path (stream_score, ScoreKnnDistanceChunked, ...)
// reads the packed column-chunk format written here; this tool is how
// datasets get into it:
//
//   csv_to_columns convert <in.csv> <out.cols> [--no-label]
//                          [--rows-per-chunk N]
//   csv_to_columns generate <rows> <cols> <out.cols> [--seed S]
//                          [--outliers K] [--rows-per-chunk N]
//   csv_to_columns inspect <file.cols>
//
// `convert` streams the CSV row by row (peak memory: one row-block), so a
// CSV far larger than RAM converts fine. `generate` streams a synthetic
// Gaussian-mixture dataset with K planted outliers straight to disk — the
// larger-than-RAM CI suite uses it to build a 10M-row file without ever
// holding the data in memory. `inspect` prints the header as JSON.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/rng.h"
#include "data/columnar.h"

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  csv_to_columns convert <in.csv> <out.cols> [--no-label] "
               "[--rows-per-chunk N]\n"
               "  csv_to_columns generate <rows> <cols> <out.cols> "
               "[--seed S] [--outliers K] [--rows-per-chunk N]\n"
               "  csv_to_columns inspect <file.cols>\n");
  return 2;
}

struct Flags {
  std::size_t rows_per_chunk = subex::kColumnarDefaultRowsPerChunk;
  std::uint64_t seed = 1;
  std::size_t outliers = 64;
  bool label_column = true;
};

bool ParseFlags(int argc, char** argv, int first, Flags* flags) {
  for (int i = first; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--no-label") {
      flags->label_column = false;
    } else if (arg == "--rows-per-chunk" && i + 1 < argc) {
      flags->rows_per_chunk = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--seed" && i + 1 < argc) {
      flags->seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--outliers" && i + 1 < argc) {
      flags->outliers = std::strtoull(argv[++i], nullptr, 10);
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return false;
    }
  }
  return flags->rows_per_chunk > 0;
}

int Convert(const std::string& csv, const std::string& cols,
            const Flags& flags) {
  const subex::CsvToColumnarResult result = subex::ConvertCsvToColumnar(
      csv, cols, flags.label_column, flags.rows_per_chunk);
  if (!result.ok) {
    std::fprintf(stderr, "error: %s\n", result.error.c_str());
    return 1;
  }
  std::printf("%s\n",
              subex::JsonObject()
                  .Add("file", cols)
                  .Add("rows", static_cast<std::uint64_t>(result.num_rows))
                  .Add("cols", static_cast<std::uint64_t>(result.num_cols))
                  .Add("outliers",
                       static_cast<std::uint64_t>(result.num_outliers))
                  .Build()
                  .c_str());
  return 0;
}

/// Streams `rows x cols` of synthetic data to `path`: two Gaussian inlier
/// clusters plus `flags.outliers` uniformly scattered outliers (marked in
/// the trailer). Deterministic per seed; O(1) memory.
int Generate(std::size_t rows, std::size_t cols, const std::string& path,
             const Flags& flags) {
  if (rows == 0 || cols == 0) {
    std::fprintf(stderr, "error: rows and cols must be positive\n");
    return 1;
  }
  subex::ColumnarWriter writer(path, cols, flags.rows_per_chunk);
  subex::Rng rng(flags.seed);
  const std::size_t num_outliers = std::min(flags.outliers, rows);
  std::vector<double> row(cols);
  for (std::size_t r = 0; r < rows; ++r) {
    // Outliers are spread evenly through the file so every chunk range
    // contains some points of interest to query.
    const bool outlier =
        num_outliers > 0 && r % (rows / num_outliers + 1) == 0 &&
        r / (rows / num_outliers + 1) < num_outliers;
    if (outlier) {
      for (double& v : row) v = rng.Uniform(-12.0, 12.0);
      writer.MarkOutlier(static_cast<std::int64_t>(r));
    } else {
      const double center = (rng.Uniform() < 0.5) ? -2.0 : 2.0;
      for (double& v : row) v = rng.Gaussian(center, 1.0);
    }
    if (!writer.AppendRow(row)) break;
  }
  if (!writer.Finish()) {
    std::fprintf(stderr, "error: %s\n", writer.error().c_str());
    return 1;
  }
  std::printf("%s\n",
              subex::JsonObject()
                  .Add("file", path)
                  .Add("rows", static_cast<std::uint64_t>(rows))
                  .Add("cols", static_cast<std::uint64_t>(cols))
                  .Add("outliers", static_cast<std::uint64_t>(num_outliers))
                  .Add("seed", flags.seed)
                  .Build()
                  .c_str());
  return 0;
}

int Inspect(const std::string& path) {
  const auto open = subex::ColumnarFile::Open(path);
  if (!open.ok) {
    std::fprintf(stderr, "error: %s\n", open.error.c_str());
    return 1;
  }
  const subex::ColumnarFile& file = *open.file;
  std::printf(
      "%s\n",
      subex::JsonObject()
          .Add("file", path)
          .Add("rows", static_cast<std::uint64_t>(file.num_rows()))
          .Add("cols", static_cast<std::uint64_t>(file.num_cols()))
          .Add("rows_per_chunk",
               static_cast<std::uint64_t>(file.rows_per_chunk()))
          .Add("blocks", static_cast<std::uint64_t>(file.num_blocks()))
          .Add("outliers",
               static_cast<std::uint64_t>(file.outlier_indices().size()))
          .Build()
          .c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string mode = argv[1];
  Flags flags;
  if (mode == "convert" && argc >= 4) {
    if (!ParseFlags(argc, argv, 4, &flags)) return Usage();
    return Convert(argv[2], argv[3], flags);
  }
  if (mode == "generate" && argc >= 5) {
    if (!ParseFlags(argc, argv, 5, &flags)) return Usage();
    const std::size_t rows = std::strtoull(argv[2], nullptr, 10);
    const std::size_t cols = std::strtoull(argv[3], nullptr, 10);
    return Generate(rows, cols, argv[4], flags);
  }
  if (mode == "inspect" && argc == 3) return Inspect(argv[2]);
  return Usage();
}
