#!/usr/bin/env python3
"""Perf gate: diff a bench --json report against a checked-in baseline.

Used by CI (and locally) to decide whether a change regressed the tracked
benchmarks. Stdlib only.

    bench_compare.py compare <candidate.json> <baseline.json>
        [--spec auto|fig11|serve_load|detectors]
        [--max-ratio R]      per-cell regression gate   (default 1.15)
        [--max-geomean G]    whole-report geomean gate  (default 1.10)
        [--min-seconds S]    noise floor for timing cells (default 0.05)
        [--markdown out.md]  also write the delta table to a file
    bench_compare.py inject <in.json> <out.json> [--factor F]
    bench_compare.py selftest

`compare` pairs the candidate's cells with the baseline's by key, computes
per-cell ratios (candidate / baseline, normalized so that >1 always means
"worse" -- throughput is inverted), prints a markdown delta table, and
exits 1 with "PERF GATE: FAIL" if any *gated* cell exceeds --max-ratio or
the geomean over gated cells exceeds --max-geomean. Cells whose baseline
timing is under --min-seconds are reported but not gated: sub-noise-floor
cells flap on shared CI runners. Cells present on only one side are
reported and never gated (the benchmark grid legitimately changes shape
when budgets skip cells on slower machines).

Report shapes (auto-detected from meta.bench):
  * fig11_runtime -- rows keyed (dataset, explainer, detector, dim),
    metric `seconds`, lower is better. Rows with "kind":"metrics" are the
    per-dataset registry snapshots, not timings; skipped.
  * serve_load -- single row; gated metrics `throughput_rps` (higher is
    better), `latency_p50_ms` and `latency_p99_ms` (lower is better).
  * detectors -- rows keyed by benchmark name, metric `real_ms`.

`inject` multiplies every gated timing metric by --factor (default 1.2,
dividing throughput so the result reads as a slowdown) and writes the
result; CI uses it to prove the gate actually turns red on a synthetic
20% regression before trusting its green.

Threshold guidance: the defaults (1.15 / 1.10) assume candidate and
baseline ran on the SAME machine, as in the red-check. Comparing a CI
runner against a baseline recorded elsewhere needs far looser bounds --
the CI green-check passes --max-ratio/--max-geomean in the 3x range and
is really an "order of magnitude and report-shape" check, documented in
EXPERIMENTS.md under "Refreshing the bench baselines".
"""

import json
import math
import sys


def die(message):
    sys.stderr.write(f"bench_compare: {message}\n")
    sys.exit(2)


def load_report(path):
    try:
        with open(path, encoding="utf-8") as fh:
            report = json.load(fh)
    except (OSError, ValueError) as err:
        die(f"cannot read {path}: {err}")
    if not isinstance(report, dict) or "rows" not in report:
        die(f"{path} is not a bench report (no 'rows')")
    return report


def detect_spec(report, path):
    bench = report.get("meta", {}).get("bench", "")
    for spec, names in (
        ("fig11", ("fig11_runtime",)),
        ("serve_load", ("serve_load",)),
        ("detectors", ("detectors",)),
    ):
        if bench in names:
            return spec
    die(f"cannot auto-detect spec for {path} (meta.bench={bench!r}); pass --spec")


def fig11_cells(report):
    """(key, value, lower_is_better) timing cells of a fig11 report."""
    cells = []
    for row in report["rows"]:
        if row.get("kind") == "metrics" or "seconds" not in row:
            continue
        key = "{}/{}+{}@{}d".format(
            row.get("dataset", "?"), row.get("explainer", "?"),
            row.get("detector", "?"), row.get("dim", "?"))
        cells.append((key, float(row["seconds"]), True))
    return cells


def serve_load_cells(report):
    cells = []
    for i, row in enumerate(report["rows"]):
        prefix = f"row{i}/" if len(report["rows"]) > 1 else ""
        for metric, lower_better in (
            ("throughput_rps", False),
            ("latency_p50_ms", True),
            ("latency_p99_ms", True),
        ):
            if metric in row:
                cells.append((prefix + metric, float(row[metric]), lower_better))
    return cells


def detectors_cells(report):
    return [(row["name"], float(row["real_ms"]), True)
            for row in report["rows"] if "name" in row and "real_ms" in row]


SPECS = {
    "fig11": (fig11_cells, "seconds"),
    "serve_load": (serve_load_cells, "value"),
    "detectors": (detectors_cells, "real_ms"),
}


def gated(spec, key, baseline_value, lower_better, min_seconds):
    """Whether this cell participates in the pass/fail verdict."""
    if spec == "fig11":
        return baseline_value >= min_seconds
    if spec == "detectors":
        return baseline_value >= min_seconds * 1e3  # real_ms vs seconds floor.
    return True  # serve_load aggregates are already noise-averaged.


def compare(argv):
    opts = {"--spec": "auto", "--max-ratio": "1.15", "--max-geomean": "1.10",
            "--min-seconds": "0.05", "--markdown": ""}
    paths = []
    i = 0
    while i < len(argv):
        if argv[i] in opts:
            if i + 1 >= len(argv):
                die(f"{argv[i]} needs a value")
            opts[argv[i]] = argv[i + 1]
            i += 2
        else:
            paths.append(argv[i])
            i += 1
    if len(paths) != 2:
        die("compare needs <candidate.json> <baseline.json>")
    max_ratio = float(opts["--max-ratio"])
    max_geomean = float(opts["--max-geomean"])
    min_seconds = float(opts["--min-seconds"])

    candidate = load_report(paths[0])
    baseline = load_report(paths[1])
    spec = opts["--spec"]
    if spec == "auto":
        spec = detect_spec(baseline, paths[1])
    if spec not in SPECS:
        die(f"unknown spec {spec!r}")
    extract, unit = SPECS[spec]

    cand = {key: (value, lower) for key, value, lower in extract(candidate)}
    base = {key: (value, lower) for key, value, lower in extract(baseline)}

    lines = [
        f"### Perf gate: `{paths[0]}` vs baseline `{paths[1]}` ({spec})",
        "",
        f"| cell | baseline {unit} | candidate {unit} | ratio | gate |",
        "|---|---:|---:|---:|---|",
    ]
    worst = None
    log_sum, gated_cells, failed_cells = 0.0, 0, []
    for key in sorted(base):
        base_value, lower = base[key]
        if key not in cand:
            lines.append(f"| {key} | {base_value:.4g} | *missing* | - | skipped |")
            continue
        cand_value = cand[key][0]
        if base_value <= 0 or cand_value <= 0:
            lines.append(f"| {key} | {base_value:.4g} | {cand_value:.4g} | - | skipped |")
            continue
        # Normalize so ratio > 1 always means the candidate is worse.
        ratio = (cand_value / base_value) if lower else (base_value / cand_value)
        in_gate = gated(spec, key, base_value, lower, min_seconds)
        verdict = "ok"
        if in_gate:
            gated_cells += 1
            log_sum += math.log(ratio)
            if ratio > max_ratio:
                failed_cells.append(key)
                verdict = f"**FAIL** (> {max_ratio:g}x)"
            if worst is None or ratio > worst[1]:
                worst = (key, ratio)
        else:
            verdict = "info (sub-noise-floor)"
        lines.append(f"| {key} | {base_value:.4g} | {cand_value:.4g} | "
                     f"{ratio:.3f}x | {verdict} |")
    for key in sorted(set(cand) - set(base)):
        lines.append(f"| {key} | *missing* | {cand[key][0]:.4g} | - | skipped |")

    geomean = math.exp(log_sum / gated_cells) if gated_cells else 1.0
    ok = not failed_cells and geomean <= max_geomean
    lines += [
        "",
        f"- gated cells: {gated_cells}, geomean ratio **{geomean:.3f}x** "
        f"(gate {max_geomean:g}x), per-cell gate {max_ratio:g}x",
    ]
    if worst:
        lines.append(f"- worst gated cell: `{worst[0]}` at {worst[1]:.3f}x")
    if failed_cells:
        lines.append(f"- failing cells: {', '.join(failed_cells)}")
    if gated_cells == 0:
        lines.append("- no gated cells paired -- treating as FAIL "
                     "(report shape mismatch?)")
        ok = False
    lines.append(f"\nPERF GATE: {'PASS' if ok else 'FAIL'}")

    table = "\n".join(lines) + "\n"
    sys.stdout.write(table)
    if opts["--markdown"]:
        with open(opts["--markdown"], "w", encoding="utf-8") as fh:
            fh.write(table)
    sys.exit(0 if ok else 1)


def inject(argv):
    factor = 1.2
    paths = []
    i = 0
    while i < len(argv):
        if argv[i] == "--factor":
            if i + 1 >= len(argv):
                die("--factor needs a value")
            factor = float(argv[i + 1])
            i += 2
        else:
            paths.append(argv[i])
            i += 1
    if len(paths) != 2:
        die("inject needs <in.json> <out.json>")
    report = load_report(paths[0])
    slower = ("seconds", "seconds_per_point", "latency_p50_ms",
              "latency_p99_ms", "latency_p999_ms", "real_ms", "cpu_ms")
    for row in report["rows"]:
        if row.get("kind") == "metrics":
            continue
        for key in slower:
            if key in row:
                row[key] = float(row[key]) * factor
        if "throughput_rps" in row:
            row["throughput_rps"] = float(row["throughput_rps"]) / factor
    with open(paths[1], "w", encoding="utf-8") as fh:
        json.dump(report, fh)
    print(f"injected {factor:g}x slowdown: {paths[0]} -> {paths[1]}")


def selftest():
    """End-to-end check against synthetic reports, no files needed."""
    import subprocess
    import tempfile
    import os

    fig11 = {"meta": {"bench": "fig11_runtime"}, "rows": [
        {"dataset": "d", "explainer": "Beam", "detector": "LOF", "dim": 2,
         "seconds": 0.5},
        {"dataset": "d", "explainer": "Beam", "detector": "LOF", "dim": 3,
         "seconds": 1.5},
        {"dataset": "d", "kind": "metrics", "metrics": {}},
        # Sub-noise-floor cell: must be reported but never gated.
        {"dataset": "d", "explainer": "RefOut", "detector": "LOF", "dim": 2,
         "seconds": 0.001},
    ]}
    serve = {"meta": {"bench": "serve_load"}, "rows": [
        {"throughput_rps": 8000.0, "latency_p50_ms": 0.1,
         "latency_p99_ms": 4.0}]}

    def run(args):
        proc = subprocess.run(
            [sys.executable, os.path.abspath(__file__)] + args,
            capture_output=True, text=True)
        return proc.returncode, proc.stdout

    with tempfile.TemporaryDirectory() as tmp:
        fig_path = os.path.join(tmp, "fig11.json")
        serve_path = os.path.join(tmp, "serve.json")
        bad_path = os.path.join(tmp, "bad.json")
        with open(fig_path, "w", encoding="utf-8") as fh:
            json.dump(fig11, fh)
        with open(serve_path, "w", encoding="utf-8") as fh:
            json.dump(serve, fh)

        code, out = run(["compare", fig_path, fig_path])
        assert code == 0 and "PERF GATE: PASS" in out, out
        assert "sub-noise-floor" in out, "noise floor cell not flagged:\n" + out

        code, out = run(["inject", fig_path, bad_path, "--factor", "1.2"])
        assert code == 0, out
        code, out = run(["compare", bad_path, fig_path])
        assert code == 1 and "PERF GATE: FAIL" in out, out
        # The same 1.2x injection passes under loose cross-machine bounds.
        code, out = run(["compare", bad_path, fig_path,
                         "--max-ratio", "3.0", "--max-geomean", "3.0"])
        assert code == 0 and "PERF GATE: PASS" in out, out

        code, out = run(["inject", serve_path, bad_path])
        assert code == 0, out
        code, out = run(["compare", bad_path, serve_path])
        assert code == 1 and "throughput_rps" in out, out
        code, out = run(["compare", serve_path, serve_path])
        assert code == 0, out

        # Shape mismatch (no paired gated cells) must fail, not vacuously pass.
        empty = os.path.join(tmp, "empty.json")
        with open(empty, "w", encoding="utf-8") as fh:
            json.dump({"meta": {"bench": "fig11_runtime"}, "rows": []}, fh)
        code, out = run(["compare", empty, fig_path])
        assert code == 1 and "no gated cells" in out, out

    print("bench_compare selftest: ok")


def main():
    if len(sys.argv) < 2:
        die("usage: bench_compare.py compare|inject|selftest ...")
    command = sys.argv[1]
    if command == "compare":
        compare(sys.argv[2:])
    elif command == "inject":
        inject(sys.argv[2:])
    elif command == "selftest":
        selftest()
    else:
        die(f"unknown command {command!r}")


if __name__ == "__main__":
    main()
