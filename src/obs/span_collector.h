#ifndef SUBEX_OBS_SPAN_COLLECTOR_H_
#define SUBEX_OBS_SPAN_COLLECTOR_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace subex {

/// One finished span: a named interval on some thread, keyed into a trace
/// by (trace_id, span_id, parent_id). `start_ns` is steady-clock
/// nanoseconds; exporters convert to wall time through `SteadyToWallNs`.
/// trace_id 0 marks an orphan span recorded outside any request trace.
struct SpanRecord {
  std::string name;
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_id = 0;
  std::uint64_t start_ns = 0;
  std::uint64_t duration_ns = 0;
  std::uint32_t tid = 0;  ///< Collector-assigned small thread id.
};

#ifndef SUBEX_OBS_DISABLED

/// Process-unique non-zero trace id: random base mixed with a counter so
/// ids from concurrently started clients don't collide.
std::uint64_t NextTraceId();
/// Process-unique non-zero span id.
std::uint64_t NextSpanId();

/// Converts a steady-clock timestamp (ns) to wall-clock ns using a
/// process-wide anchor captured once; monotonic deltas stay exact.
std::uint64_t SteadyToWallNs(std::uint64_t steady_ns);

/// Process-wide sink for finished spans. Disabled by default — `Record` is
/// one relaxed load and returns. When enabled, each recording thread owns a
/// bounded ring (oldest spans overwritten, overwrites counted as dropped),
/// so the hot path takes only that thread's uncontended ring mutex.
/// `Snapshot`/`ToChromeTraceJson` gather every ring for export.
class SpanCollector {
 public:
  /// The collector the built-in instrumentation records into.
  static SpanCollector& Global();

  /// Starts collecting; per-thread rings hold `ring_capacity_per_thread`
  /// spans. Re-enabling discards previously collected spans.
  void Enable(std::size_t ring_capacity_per_thread = 4096);
  /// Stops collecting; already-collected spans remain snapshottable.
  void Disable();
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  void Record(SpanRecord record);

  /// Every collected span, ordered by start time.
  std::vector<SpanRecord> Snapshot() const;
  /// Spans overwritten before they could be exported.
  std::uint64_t dropped() const;
  /// Discards collected spans (rings stay registered).
  void Clear();

  /// `{"displayTimeUnit":"ms","traceEvents":[...]}` — Chrome trace-event
  /// JSON ("X" complete events, wall-clock µs timestamps) loadable in
  /// Perfetto / chrome://tracing.
  std::string ToChromeTraceJson() const;

 private:
  struct ThreadRing {
    std::mutex mutex;
    std::vector<SpanRecord> slots;
    std::size_t next = 0;  ///< Ring write cursor.
    std::size_t size = 0;  ///< Valid slots (== capacity once wrapped).
    std::uint64_t dropped = 0;
    std::uint32_t tid = 0;
  };

  ThreadRing* RingForThisThread();

  std::atomic<bool> enabled_{false};
  // Bumped on Enable so threads re-register their cached ring.
  std::atomic<std::uint64_t> generation_{0};
  mutable std::mutex mutex_;
  std::vector<std::shared_ptr<ThreadRing>> rings_;
  std::size_t ring_capacity_ = 4096;
  std::uint32_t next_tid_ = 0;
};

#else  // SUBEX_OBS_DISABLED

inline std::uint64_t NextTraceId() { return 0; }
inline std::uint64_t NextSpanId() { return 0; }
inline std::uint64_t SteadyToWallNs(std::uint64_t steady_ns) {
  return steady_ns;
}

class SpanCollector {
 public:
  static SpanCollector& Global() {
    static SpanCollector collector;
    return collector;
  }
  void Enable(std::size_t = 0) {}
  void Disable() {}
  bool enabled() const { return false; }
  void Record(SpanRecord) {}
  std::vector<SpanRecord> Snapshot() const { return {}; }
  std::uint64_t dropped() const { return 0; }
  void Clear() {}
  std::string ToChromeTraceJson() const {
    return "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[]}";
  }
};

#endif  // SUBEX_OBS_DISABLED

}  // namespace subex

#endif  // SUBEX_OBS_SPAN_COLLECTOR_H_
