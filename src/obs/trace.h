#ifndef SUBEX_OBS_TRACE_H_
#define SUBEX_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "obs/span_collector.h"

namespace subex {

/// Per-request (or per-run) span tree: each finished `TraceSpan` contributes
/// one named interval with a wall-anchorable start timestamp, a span id and
/// its parent's span id (parentage follows open-span nesting order). Closed
/// spans are forwarded to the process `SpanCollector` when it is enabled.
/// Not thread-safe — one trace belongs to one request/thread at a time;
/// cross-request aggregation is the registry's histograms' job.
class Trace {
 public:
  struct Span {
    std::string name;
    std::uint64_t span_id = 0;
    std::uint64_t parent_id = 0;
    std::uint64_t start_ns = 0;  ///< Steady-clock ns.
    std::uint64_t duration_ns = 0;
  };

  /// The id every span of this trace carries; 0 until set. For served
  /// requests this is the client-propagated id from the wire header.
  void set_trace_id(std::uint64_t id) { trace_id_ = id; }
  std::uint64_t trace_id() const { return trace_id_; }

  /// Starts a span (child of the innermost still-open span) and returns its
  /// index for `CloseSpan`.
  std::size_t OpenSpan(std::string name, std::uint64_t start_ns);
  /// Finishes the span at `index`, popping it from the open stack and
  /// forwarding it to the enabled `SpanCollector`. Spans must close in
  /// reverse open order (RAII nesting guarantees this).
  void CloseSpan(std::size_t index, std::uint64_t duration_ns);
  /// Records an already-measured interval as a closed child of the
  /// innermost open span.
  void Record(std::string name, std::uint64_t start_ns,
              std::uint64_t duration_ns);

  const std::vector<Span>& spans() const { return spans_; }
  /// Drops all spans but keeps the allocation, so pooled traces reuse their
  /// capacity across requests. Resets the trace id to 0.
  void Clear();

  /// Sum over root spans (ns) — nested children are already counted inside
  /// their parents.
  std::uint64_t TotalNs() const;

  /// `{"trace_id":"0x..","spans":[{"name":..,"span_id":..,"parent_id":..,
  ///   "start_ms":..,"dur_ms":..},...]}` in recording order.
  std::string ToJson() const;

 private:
  std::vector<Span> spans_;
  std::vector<std::size_t> open_stack_;
  std::uint64_t trace_id_ = 0;
};

#ifndef SUBEX_OBS_DISABLED

/// The trace the calling thread is currently serving, or nullptr. Installed
/// by `TraceContext`; `TraceSpan`s with a stage name attach to it
/// automatically, so deep call sites (detectors, chunk loads) need no
/// plumbed-through trace parameter.
Trace* CurrentTrace();

/// RAII installer for `CurrentTrace` — scopes a request's trace to the
/// handler call, restoring the previous (usually null) trace on exit.
class TraceContext {
 public:
  explicit TraceContext(Trace* trace);
  ~TraceContext();
  TraceContext(const TraceContext&) = delete;
  TraceContext& operator=(const TraceContext&) = delete;

 private:
  Trace* previous_;
};

/// Attaches an already-measured interval to the thread's current trace, or
/// (with no current trace) to the enabled collector as an orphan span. For
/// code that must keep its own chrono timing, e.g. because the measurement
/// feeds non-obs stats that work under SUBEX_OBS_DISABLED too.
void RecordCompletedSpan(const char* name,
                         std::chrono::steady_clock::time_point start,
                         std::uint64_t duration_ns);

#else  // SUBEX_OBS_DISABLED

inline Trace* CurrentTrace() { return nullptr; }

class TraceContext {
 public:
  explicit TraceContext(Trace*) {}
  TraceContext(const TraceContext&) = delete;
  TraceContext& operator=(const TraceContext&) = delete;
};

inline void RecordCompletedSpan(const char*,
                                std::chrono::steady_clock::time_point,
                                std::uint64_t) {}

#endif  // SUBEX_OBS_DISABLED

/// RAII stage timer: reads the clock at construction and, at destruction
/// (or an explicit `Stop`), records the elapsed nanoseconds into an
/// optional `Histogram` (cross-request aggregate) and — when a stage name
/// is given — into a `Trace` as a nested span (the explicit one, or the
/// thread's `CurrentTrace`). A named span with no trace still reaches an
/// enabled `SpanCollector` as an orphan. With nothing to feed, the
/// constructor skips even the clock read, and under SUBEX_OBS_DISABLED the
/// whole class compiles to nothing — spans can stay in the code
/// unconditionally.
class TraceSpan {
 public:
  explicit TraceSpan(Histogram* histogram, Trace* trace = nullptr,
                     const char* stage = nullptr)
#ifndef SUBEX_OBS_DISABLED
      : histogram_(histogram), stage_(stage) {
    trace_ = trace != nullptr
                 ? trace
                 : (stage_ != nullptr ? CurrentTrace() : nullptr);
    const bool orphan_wanted =
        trace_ == nullptr && stage_ != nullptr && SpanCollector::Global().enabled();
    if (histogram_ != nullptr || trace_ != nullptr || orphan_wanted) {
      start_ = std::chrono::steady_clock::now();
      armed_ = true;
      if (trace_ != nullptr && stage_ != nullptr) {
        span_index_ = trace_->OpenSpan(stage_, StartNs());
        open_ = true;
      }
    }
  }
#else
  {
    (void)histogram;
    (void)trace;
    (void)stage;
  }
#endif

  ~TraceSpan() { Stop(); }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Ends the span early and records; the destructor then does nothing.
  /// Returns the elapsed nanoseconds (0 when disarmed or already stopped).
  std::uint64_t Stop() {
#ifndef SUBEX_OBS_DISABLED
    if (!armed_) return 0;
    armed_ = false;
    const std::uint64_t elapsed_ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start_)
            .count());
    if (histogram_ != nullptr) histogram_->Record(elapsed_ns);
    if (open_) {
      trace_->CloseSpan(span_index_, elapsed_ns);
    } else if (trace_ == nullptr && stage_ != nullptr) {
      SpanCollector& collector = SpanCollector::Global();
      if (collector.enabled()) {
        SpanRecord record;
        record.name = stage_;
        record.span_id = NextSpanId();
        record.start_ns = StartNs();
        record.duration_ns = elapsed_ns;
        collector.Record(std::move(record));
      }
    }
    return elapsed_ns;
#else
    return 0;
#endif
  }

 private:
#ifndef SUBEX_OBS_DISABLED
  std::uint64_t StartNs() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            start_.time_since_epoch())
            .count());
  }

  Histogram* histogram_;
  Trace* trace_;
  const char* stage_;
  std::chrono::steady_clock::time_point start_;
  std::size_t span_index_ = 0;
  bool armed_ = false;
  bool open_ = false;
#endif
};

}  // namespace subex

#endif  // SUBEX_OBS_TRACE_H_
