#ifndef SUBEX_OBS_TRACE_H_
#define SUBEX_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"

namespace subex {

/// Ordered per-request (or per-run) stage breakdown: each finished
/// `TraceSpan` appends one `(stage, elapsed ns)` entry. Not thread-safe —
/// one trace belongs to one request/thread; cross-request aggregation is
/// the registry's histograms' job.
class Trace {
 public:
  void Record(std::string stage, std::uint64_t elapsed_ns) {
    stages_.emplace_back(std::move(stage), elapsed_ns);
  }

  const std::vector<std::pair<std::string, std::uint64_t>>& stages() const {
    return stages_;
  }
  void Clear() { stages_.clear(); }

  /// Sum over all recorded stages (ns).
  std::uint64_t TotalNs() const;

  /// `{"stage":ms,...}` in recording order; repeated stage names keep
  /// their separate entries.
  std::string ToJson() const;

 private:
  std::vector<std::pair<std::string, std::uint64_t>> stages_;
};

/// RAII stage timer: reads the clock at construction and, at destruction
/// (or an explicit `Stop`), records the elapsed nanoseconds into an
/// optional `Histogram` (cross-request aggregate) and an optional `Trace`
/// (this request's breakdown). With neither attached the constructor skips
/// even the clock read, and under SUBEX_OBS_DISABLED the whole class
/// compiles to nothing — spans can stay in the code unconditionally.
class TraceSpan {
 public:
  explicit TraceSpan(Histogram* histogram, Trace* trace = nullptr,
                     const char* stage = nullptr)
#ifndef SUBEX_OBS_DISABLED
      : histogram_(histogram), trace_(trace), stage_(stage) {
    if (histogram_ != nullptr || trace_ != nullptr) {
      start_ = std::chrono::steady_clock::now();
      armed_ = true;
    }
  }
#else
  {
    (void)histogram;
    (void)trace;
    (void)stage;
  }
#endif

  ~TraceSpan() { Stop(); }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Ends the span early and records; the destructor then does nothing.
  /// Returns the elapsed nanoseconds (0 when disarmed or already stopped).
  std::uint64_t Stop() {
#ifndef SUBEX_OBS_DISABLED
    if (!armed_) return 0;
    armed_ = false;
    const std::uint64_t elapsed_ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start_)
            .count());
    if (histogram_ != nullptr) histogram_->Record(elapsed_ns);
    if (trace_ != nullptr) {
      trace_->Record(stage_ != nullptr ? stage_ : "", elapsed_ns);
    }
    return elapsed_ns;
#else
    return 0;
#endif
  }

 private:
#ifndef SUBEX_OBS_DISABLED
  Histogram* histogram_;
  Trace* trace_;
  const char* stage_;
  std::chrono::steady_clock::time_point start_;
  bool armed_ = false;
#endif
};

}  // namespace subex

#endif  // SUBEX_OBS_TRACE_H_
