#include "obs/prometheus.h"

#include <cstdio>

namespace subex {
namespace {

constexpr double kNsPerSecond = 1e9;

/// Prometheus metric names admit only [a-zA-Z0-9_:] (and must not start
/// with a digit — our "subex_" prefix guarantees that).
std::string Sanitize(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

std::string FormatDouble(double value) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", value);
  return buf;
}

void AppendSummary(std::string& out, const std::string& name,
                   const HistogramSnapshot& snapshot) {
  out += "# TYPE " + name + " summary\n";
  static constexpr double kQuantiles[] = {0.5, 0.9, 0.99, 0.999};
  static constexpr const char* kLabels[] = {"0.5", "0.9", "0.99", "0.999"};
  for (std::size_t i = 0; i < 4; ++i) {
    out += name + "{quantile=\"" + kLabels[i] + "\"} " +
           FormatDouble(snapshot.ValueAtQuantile(kQuantiles[i]) /
                        kNsPerSecond) +
           "\n";
  }
  out += name + "_sum " +
         FormatDouble(static_cast<double>(snapshot.sum) / kNsPerSecond) + "\n";
  out += name + "_count " + std::to_string(snapshot.count) + "\n";
}

}  // namespace

std::string RenderPrometheusText(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const auto& [name, value] : snapshot.counters) {
    const std::string metric = "subex_" + Sanitize(name) + "_total";
    out += "# TYPE " + metric + " counter\n";
    out += metric + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const std::string metric = "subex_" + Sanitize(name);
    out += "# TYPE " + metric + " gauge\n";
    out += metric + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, histogram] : snapshot.histograms) {
    AppendSummary(out, "subex_" + Sanitize(name) + "_seconds", histogram);
  }
  return out;
}

std::string RenderPrometheusText(const MetricsRegistry& registry) {
  return RenderPrometheusText(registry.Snapshot());
}

}  // namespace subex
