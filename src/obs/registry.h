#ifndef SUBEX_OBS_REGISTRY_H_
#define SUBEX_OBS_REGISTRY_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "obs/metrics.h"

namespace subex {

/// Point-in-time copy of every instrument in a registry — plain data for
/// renderers (Prometheus text, JSON) that shouldn't iterate live maps.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, std::int64_t> gauges;
  std::map<std::string, HistogramSnapshot> histograms;
};

/// Named home of every counter/gauge/histogram in the process. `Get*` is a
/// find-or-create behind one mutex — callers look an instrument up once
/// (at construction, per bench phase) and keep the reference; instruments
/// have stable addresses for the registry's lifetime and recording into
/// them never touches the registry again.
///
/// Production code shares `Global()`; tests that want isolation construct
/// their own instance. Naming convention: dot-separated
/// `<layer>.<operation>[.<instance>]`, e.g. `serve.request`,
/// `detect.score.LOF` — the flat names keep the `kStats` JSON greppable.
class MetricsRegistry {
 public:
  /// The process-wide registry every built-in instrumentation point uses.
  static MetricsRegistry& Global();

  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  Histogram& GetHistogram(const std::string& name);

  /// `{"counters":{...},"gauges":{...},"histograms":{name:{...}}}` with
  /// names in lexicographic order (deterministic output for tests and
  /// diffable bench reports). Histograms render their snapshot JSON.
  std::string ToJson() const;

  /// Copies every instrument's current value, names sorted.
  MetricsSnapshot Snapshot() const;

  /// Zeroes every registered instrument, keeping registrations (and thus
  /// the references callers hold) intact — e.g. between benchmark phases.
  void Reset();

 private:
  mutable std::mutex mutex_;
  // Node-based maps: values never move, so handed-out references stay
  // valid across later registrations.
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace subex

#endif  // SUBEX_OBS_REGISTRY_H_
