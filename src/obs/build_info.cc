#include "obs/build_info.h"

#include "common/json.h"

namespace subex {

std::string BuildInfoJson() {
#if defined(__clang__)
  const char* compiler = "clang " __VERSION__;
#elif defined(__GNUC__)
  const char* compiler = "gcc " __VERSION__;
#else
  const char* compiler = "unknown";
#endif
#ifdef SUBEX_BUILD_TYPE
  const char* build_type = SUBEX_BUILD_TYPE;
#else
  const char* build_type = "unknown";
#endif
#ifdef SUBEX_OBS_DISABLED
  const bool obs_enabled = false;
#else
  const bool obs_enabled = true;
#endif
  return JsonObject()
      .Add("compiler", compiler)
      .Add("cxx_standard", static_cast<std::uint64_t>(__cplusplus))
      .Add("build_type", build_type)
      .Add("obs_enabled", obs_enabled)
      .Build();
}

}  // namespace subex
