#ifndef SUBEX_OBS_PROMETHEUS_H_
#define SUBEX_OBS_PROMETHEUS_H_

#include <string>

#include "obs/registry.h"

namespace subex {

/// Renders every instrument in `registry` in the Prometheus text exposition
/// format 0.0.4 — the body `GET /metrics` serves. Counters become
/// `subex_<name>_total` counters, gauges `subex_<name>` gauges, histograms
/// `subex_<name>_seconds` summaries (quantile 0.5/0.9/0.99/0.999 labels
/// plus `_sum`/`_count`, nanoseconds converted to seconds). Dots and any
/// other characters outside [a-zA-Z0-9_:] in instrument names map to '_'.
std::string RenderPrometheusText(const MetricsRegistry& registry);

/// Same, over an already-taken snapshot.
std::string RenderPrometheusText(const MetricsSnapshot& snapshot);

}  // namespace subex

#endif  // SUBEX_OBS_PROMETHEUS_H_
