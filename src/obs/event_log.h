#ifndef SUBEX_OBS_EVENT_LOG_H_
#define SUBEX_OBS_EVENT_LOG_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace subex {

enum class EventSeverity : std::uint8_t { kDebug = 0, kInfo, kWarn, kError };

const char* EventSeverityName(EventSeverity severity);

/// One structured event: a machine-greppable key ("serve.busy",
/// "mem.overcommit"), a severity, a wall-clock timestamp and a free-form
/// JSON-object payload of fields.
struct EventRecord {
  std::uint64_t wall_ns = 0;
  std::uint64_t sequence = 0;
  EventSeverity severity = EventSeverity::kInfo;
  std::string key;
  std::string fields_json;  ///< A JSON object, "{}" when field-less.

  /// One JSON-lines record:
  /// `{"ts_ms":..,"seq":..,"severity":"warn","key":"serve.busy","fields":{..}}`.
  std::string ToJsonLine() const;
};

struct EventLogOptions {
  std::size_t ring_capacity = 1024;  ///< Most recent events retained.
  /// Token-bucket refill rate per event key; 0 disables refill so only the
  /// initial `burst` ever passes (deterministic for tests).
  double tokens_per_second = 10.0;
  double burst = 20.0;  ///< Bucket depth: events admitted back-to-back.
};

#ifndef SUBEX_OBS_DISABLED

/// Bounded, rate-limited structured log for the events metrics can't carry
/// (why was *this* connection dropped?). The hot path is the two-phase
/// `Admit` (token-bucket check; suppressed events are only counted) then
/// `Append` — callers build the fields JSON only after admission, which is
/// what the `SUBEX_EVENT` macro packages. Events land in one in-memory
/// ring, surfaced through `kStats` as JSON and exportable as JSON lines.
/// Thread-safe; one mutex, touched only when an event actually fires.
class EventLog {
 public:
  /// The process-wide log every built-in emit site uses.
  static EventLog& Global();

  EventLog() = default;
  explicit EventLog(EventLogOptions options) : options_(options) {}

  /// Replaces options; the ring and rate-limiter buckets restart empty
  /// (emitted/suppressed totals stay).
  void Configure(EventLogOptions options);

  /// True when an event for `key` passes its rate limit; consumes a token.
  /// On false the event is counted as suppressed and must not be appended.
  bool Admit(EventSeverity severity, std::string_view key);
  /// Unconditionally appends (call only after a true `Admit`).
  /// `fields_json` must be a JSON object.
  void Append(EventSeverity severity, std::string_view key,
              std::string fields_json);
  /// `Admit` + `Append` in one call; returns whether the event was kept.
  bool Emit(EventSeverity severity, std::string_view key,
            std::string fields_json = "{}");

  std::vector<EventRecord> Snapshot() const;
  std::uint64_t emitted() const;
  std::uint64_t suppressed() const;

  /// `{"emitted":..,"suppressed":..,"recent":[{..},...]}` (oldest first).
  std::string ToJson() const;
  /// One `EventRecord::ToJsonLine` per line, oldest first.
  std::string ToJsonLines() const;

  /// Drops events and counters; rate-limiter buckets reset too.
  void Clear();

 private:
  struct Bucket {
    double tokens = 0;
    std::uint64_t last_refill_ns = 0;
    bool initialized = false;
  };

  mutable std::mutex mutex_;
  EventLogOptions options_;
  std::unordered_map<std::string, Bucket> buckets_;
  std::vector<EventRecord> ring_;
  std::size_t next_ = 0;
  std::size_t size_ = 0;
  std::uint64_t emitted_ = 0;
  std::uint64_t suppressed_ = 0;
  std::uint64_t sequence_ = 0;
};

/// Retains the full span breakdown of requests slower than a threshold —
/// the bridge from "p99 is high" to "this request spent 80 ms in
/// detect.score". Bounded ring, newest kept. Thread-safe.
class SlowRequestCapture {
 public:
  SlowRequestCapture(std::uint64_t threshold_ns, std::size_t capacity);

  /// Stores the trace's JSON when `total_ns` crosses the threshold.
  /// `trace_json` is `Trace::ToJson()` output, captured lazily by the
  /// caller only on admission via the returned decision of `WouldCapture`.
  bool WouldCapture(std::uint64_t total_ns) const {
    return total_ns >= threshold_ns_;
  }
  void Capture(std::string label, std::uint64_t request_id,
               std::uint64_t trace_id, std::uint64_t total_ns,
               std::string trace_json);

  std::uint64_t captured() const;

  /// `{"threshold_ms":..,"captured":..,"recent":[{"label":..,
  ///   "request_id":..,"trace_id":"0x..","total_ms":..,"trace":{..}},..]}`.
  std::string ToJson() const;

 private:
  struct Entry {
    std::uint64_t wall_ns = 0;
    std::uint64_t request_id = 0;
    std::uint64_t trace_id = 0;
    std::uint64_t total_ns = 0;
    std::string label;
    std::string trace_json;
  };

  const std::uint64_t threshold_ns_;
  mutable std::mutex mutex_;
  std::vector<Entry> ring_;
  std::size_t next_ = 0;
  std::size_t size_ = 0;
  std::uint64_t captured_ = 0;
};

/// Emit-site macro: evaluates `fields_expr` (a JSON-object string) only
/// when the event passes its rate limit, and compiles to nothing under
/// SUBEX_OBS_DISABLED so disabled builds carry no event-log code at all.
#define SUBEX_EVENT(severity, key, fields_expr)                     \
  do {                                                              \
    ::subex::EventLog& subex_event_log = ::subex::EventLog::Global(); \
    if (subex_event_log.Admit((severity), (key))) {                 \
      subex_event_log.Append((severity), (key), (fields_expr));     \
    }                                                               \
  } while (0)

#else  // SUBEX_OBS_DISABLED

class EventLog {
 public:
  static EventLog& Global() {
    static EventLog log;
    return log;
  }
  void Configure(EventLogOptions) {}
  bool Admit(EventSeverity, std::string_view) { return false; }
  void Append(EventSeverity, std::string_view, std::string) {}
  bool Emit(EventSeverity, std::string_view, std::string = "{}") {
    return false;
  }
  std::vector<EventRecord> Snapshot() const { return {}; }
  std::uint64_t emitted() const { return 0; }
  std::uint64_t suppressed() const { return 0; }
  std::string ToJson() const {
    return "{\"emitted\":0,\"suppressed\":0,\"recent\":[]}";
  }
  std::string ToJsonLines() const { return ""; }
  void Clear() {}
};

class SlowRequestCapture {
 public:
  SlowRequestCapture(std::uint64_t, std::size_t) {}
  bool WouldCapture(std::uint64_t) const { return false; }
  void Capture(std::string, std::uint64_t, std::uint64_t, std::uint64_t,
               std::string) {}
  std::uint64_t captured() const { return 0; }
  std::string ToJson() const {
    return "{\"threshold_ms\":0,\"captured\":0,\"recent\":[]}";
  }
};

#define SUBEX_EVENT(severity, key, fields_expr) \
  do {                                          \
  } while (0)

#endif  // SUBEX_OBS_DISABLED

}  // namespace subex

#endif  // SUBEX_OBS_EVENT_LOG_H_
