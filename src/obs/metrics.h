#ifndef SUBEX_OBS_METRICS_H_
#define SUBEX_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <string>
#include <vector>

namespace subex {

// Building with -DSUBEX_OBS_DISABLED compiles every mutator in this header
// to a no-op (the A/B baseline for measuring instrumentation overhead);
// readers keep working and report zeros.

/// Monotonic event counter. `Increment` is one relaxed fetch_add — cheap
/// enough for per-byte accounting on the network hot path.
class Counter {
 public:
  void Increment(std::uint64_t delta = 1) {
#ifndef SUBEX_OBS_DISABLED
    value_.fetch_add(delta, std::memory_order_relaxed);
#else
    (void)delta;
#endif
  }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Instantaneous level (open connections, queue depth): settable and
/// relatively adjustable, may go negative transiently under relaxed
/// interleavings of Add(-1)/Add(+1) observers.
class Gauge {
 public:
  void Set(std::int64_t value) {
#ifndef SUBEX_OBS_DISABLED
    value_.store(value, std::memory_order_relaxed);
#else
    (void)value;
#endif
  }
  void Add(std::int64_t delta) {
#ifndef SUBEX_OBS_DISABLED
    value_.fetch_add(delta, std::memory_order_relaxed);
#else
    (void)delta;
#endif
  }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Point-in-time copy of a `Histogram`: plain data, mergeable across
/// histograms (shards, processes) because every histogram shares the same
/// fixed bucket layout. Values are nanoseconds; the JSON view reports
/// milliseconds, the unit latency dashboards read.
struct HistogramSnapshot {
  std::vector<std::uint64_t> counts;  ///< One slot per histogram bucket.
  std::uint64_t count = 0;            ///< Total recorded values.
  std::uint64_t sum = 0;              ///< Sum of recorded values (ns).
  std::uint64_t max = 0;              ///< Largest recorded value (ns).

  /// Element-wise accumulation of `other` into this snapshot.
  void Merge(const HistogramSnapshot& other);

  /// Value (ns) at quantile `q` in [0, 1]: the representative value of the
  /// bucket holding the ceil(q * count)-th smallest sample (0 when empty).
  /// Bucket geometry bounds the relative error at 1/8 = 12.5%.
  double ValueAtQuantile(double q) const;

  double MeanNs() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }

  /// Count-weighted mean over bucket midpoints (ns) — the mean a merge of
  /// bucket-only snapshots can still compute, and a cross-check on `MeanNs`
  /// (they diverge by at most the 12.5% bucket error).
  double WeightedMeanNs() const;

  /// `{"count":N,"mean_ms":...,"wmean_ms":...,"p50_ms":...,"p90_ms":...,
  ///   "p99_ms":...,"p999_ms":...,"max_ms":...}` — the shape the `kStats`
  /// endpoint and the benches' `--json` reports embed.
  std::string ToJson() const;
};

/// Fixed-bucket log-scale latency histogram. `Record` is lock-free — one
/// relaxed fetch_add on the value's bucket, one on the running sum, and a
/// relaxed CAS loop for the max — so it can sit on the request hot path of
/// every server thread at once.
///
/// Bucket scheme (HdrHistogram-style log-linear): values below 8 ns get
/// exact unit buckets; above that, each power-of-two range splits into 8
/// linear sub-buckets, so any recorded value lands in a bucket whose width
/// is at most 1/8th of its lower bound (<= 12.5% relative error on
/// percentiles). 496 buckets cover the full uint64 range in ~4 KiB.
class Histogram {
 public:
  /// log2 of the linear sub-buckets per power-of-two range.
  static constexpr int kSubBits = 3;
  static constexpr std::size_t kSubBuckets = std::size_t{1} << kSubBits;
  static constexpr std::size_t kNumBuckets =
      kSubBuckets + (64 - kSubBits) * kSubBuckets;

  void Record(std::uint64_t value_ns) {
#ifndef SUBEX_OBS_DISABLED
    buckets_[BucketIndex(value_ns)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value_ns, std::memory_order_relaxed);
    std::uint64_t seen = max_.load(std::memory_order_relaxed);
    while (seen < value_ns &&
           !max_.compare_exchange_weak(seen, value_ns,
                                       std::memory_order_relaxed,
                                       std::memory_order_relaxed)) {
    }
#else
    (void)value_ns;
#endif
  }

  /// The bucket `value` falls into.
  static constexpr std::size_t BucketIndex(std::uint64_t value) {
    if (value < kSubBuckets) return static_cast<std::size_t>(value);
    const int exponent = std::bit_width(value) - 1;  // floor(log2), >= kSubBits
    const int shift = exponent - kSubBits;
    const std::size_t sub =
        static_cast<std::size_t>(value >> shift) - kSubBuckets;
    return kSubBuckets + static_cast<std::size_t>(shift) * kSubBuckets + sub;
  }

  /// Smallest value mapping to bucket `index`.
  static constexpr std::uint64_t BucketLowerBound(std::size_t index) {
    if (index < kSubBuckets) return index;
    const std::size_t shift = (index - kSubBuckets) / kSubBuckets;
    const std::size_t sub = (index - kSubBuckets) % kSubBuckets;
    return (kSubBuckets + sub) << shift;
  }

  /// Width of bucket `index` (1 for the exact unit buckets).
  static constexpr std::uint64_t BucketWidth(std::size_t index) {
    return index < kSubBuckets
               ? 1
               : std::uint64_t{1} << ((index - kSubBuckets) / kSubBuckets);
  }

  /// Consistent-enough copy of the counters (buckets are read one by one;
  /// concurrent recording may straddle the read, which reporting tolerates).
  HistogramSnapshot snapshot() const;

  /// Zeroes every bucket (e.g. between benchmark phases).
  void Reset();

 private:
  std::array<std::atomic<std::uint64_t>, kNumBuckets> buckets_{};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> max_{0};
};

}  // namespace subex

#endif  // SUBEX_OBS_METRICS_H_
