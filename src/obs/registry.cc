#include "obs/registry.h"

#include "common/json.h"

namespace subex {

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();  // Never dies:
  // instrumented objects may record during static destruction.
  return *registry;
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::unique_ptr<Counter>& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::unique_ptr<Gauge>& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::unique_ptr<Histogram>& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return *slot;
}

std::string MetricsRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(mutex_);
  JsonObject counters;
  for (const auto& [name, counter] : counters_) {
    counters.Add(name, counter->value());
  }
  JsonObject gauges;
  for (const auto& [name, gauge] : gauges_) {
    gauges.Add(name, static_cast<double>(gauge->value()));
  }
  JsonObject histograms;
  for (const auto& [name, histogram] : histograms_) {
    histograms.AddRaw(name, histogram->snapshot().ToJson());
  }
  return JsonObject()
      .AddRaw("counters", counters.Build())
      .AddRaw("gauges", gauges.Build())
      .AddRaw("histograms", histograms.Build())
      .Build();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot snapshot;
  for (const auto& [name, counter] : counters_) {
    snapshot.counters.emplace(name, counter->value());
  }
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges.emplace(name, gauge->value());
  }
  for (const auto& [name, histogram] : histograms_) {
    snapshot.histograms.emplace(name, histogram->snapshot());
  }
  return snapshot;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, counter] : counters_) counter->Reset();
  for (const auto& [name, gauge] : gauges_) gauge->Reset();
  for (const auto& [name, histogram] : histograms_) histogram->Reset();
}

}  // namespace subex
