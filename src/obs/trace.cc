#include "obs/trace.h"

#include "common/json.h"

namespace subex {

std::uint64_t Trace::TotalNs() const {
  std::uint64_t total = 0;
  for (const auto& [stage, ns] : stages_) total += ns;
  return total;
}

std::string Trace::ToJson() const {
  JsonObject object;
  for (const auto& [stage, ns] : stages_) {
    object.Add(stage, static_cast<double>(ns) / 1e6);
  }
  return object.Build();
}

}  // namespace subex
