#include "obs/trace.h"

#include <cstdio>

#include "common/json.h"

namespace subex {

std::size_t Trace::OpenSpan(std::string name, std::uint64_t start_ns) {
  Span span;
  span.name = std::move(name);
#ifndef SUBEX_OBS_DISABLED
  span.span_id = NextSpanId();
#else
  span.span_id = spans_.size() + 1;
#endif
  span.parent_id =
      open_stack_.empty() ? 0 : spans_[open_stack_.back()].span_id;
  span.start_ns = start_ns;
  spans_.push_back(std::move(span));
  open_stack_.push_back(spans_.size() - 1);
  return spans_.size() - 1;
}

void Trace::CloseSpan(std::size_t index, std::uint64_t duration_ns) {
  Span& span = spans_[index];
  span.duration_ns = duration_ns;
  if (!open_stack_.empty() && open_stack_.back() == index) {
    open_stack_.pop_back();
  }
#ifndef SUBEX_OBS_DISABLED
  SpanCollector& collector = SpanCollector::Global();
  if (collector.enabled()) {
    SpanRecord record;
    record.name = span.name;
    record.trace_id = trace_id_;
    record.span_id = span.span_id;
    record.parent_id = span.parent_id;
    record.start_ns = span.start_ns;
    record.duration_ns = span.duration_ns;
    collector.Record(std::move(record));
  }
#endif
}

void Trace::Record(std::string name, std::uint64_t start_ns,
                   std::uint64_t duration_ns) {
  CloseSpan(OpenSpan(std::move(name), start_ns), duration_ns);
}

void Trace::Clear() {
  spans_.clear();
  open_stack_.clear();
  trace_id_ = 0;
}

std::uint64_t Trace::TotalNs() const {
  std::uint64_t total = 0;
  for (const Span& span : spans_) {
    if (span.parent_id == 0) total += span.duration_ns;
  }
  return total;
}

std::string Trace::ToJson() const {
  char hex[32];
  std::snprintf(hex, sizeof(hex), "0x%016llx",
                static_cast<unsigned long long>(trace_id_));
  JsonArray spans;
  for (const Span& span : spans_) {
    JsonObject object;
    object.Add("name", span.name)
        .Add("span_id", span.span_id)
        .Add("parent_id", span.parent_id)
        .Add("start_ms", static_cast<double>(span.start_ns) / 1e6)
        .Add("dur_ms", static_cast<double>(span.duration_ns) / 1e6);
    spans.AddRaw(object.Build());
  }
  JsonObject document;
  document.Add("trace_id", hex).AddRaw("spans", spans.Build());
  return document.Build();
}

#ifndef SUBEX_OBS_DISABLED

namespace {
thread_local Trace* t_current_trace = nullptr;
}  // namespace

Trace* CurrentTrace() { return t_current_trace; }

TraceContext::TraceContext(Trace* trace) : previous_(t_current_trace) {
  t_current_trace = trace;
}

TraceContext::~TraceContext() { t_current_trace = previous_; }

void RecordCompletedSpan(const char* name,
                         std::chrono::steady_clock::time_point start,
                         std::uint64_t duration_ns) {
  const std::uint64_t start_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          start.time_since_epoch())
          .count());
  if (Trace* trace = CurrentTrace()) {
    trace->Record(name, start_ns, duration_ns);
    return;
  }
  SpanCollector& collector = SpanCollector::Global();
  if (collector.enabled()) {
    SpanRecord record;
    record.name = name;
    record.span_id = NextSpanId();
    record.start_ns = start_ns;
    record.duration_ns = duration_ns;
    collector.Record(std::move(record));
  }
}

#endif  // !SUBEX_OBS_DISABLED

}  // namespace subex
