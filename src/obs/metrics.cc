#include "obs/metrics.h"

#include <algorithm>
#include <cmath>

#include "common/json.h"

namespace subex {
namespace {

constexpr double kNsPerMs = 1e6;

/// Midpoint of a bucket — the representative value percentile extraction
/// reports for every sample that landed in it.
double BucketMidpoint(std::size_t index) {
  return static_cast<double>(Histogram::BucketLowerBound(index)) +
         static_cast<double>(Histogram::BucketWidth(index) - 1) / 2.0;
}

}  // namespace

void HistogramSnapshot::Merge(const HistogramSnapshot& other) {
  if (counts.size() < other.counts.size()) {
    counts.resize(other.counts.size(), 0);
  }
  for (std::size_t i = 0; i < other.counts.size(); ++i) {
    counts[i] += other.counts[i];
  }
  count += other.count;
  sum += other.sum;
  max = std::max(max, other.max);
}

double HistogramSnapshot::ValueAtQuantile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const std::uint64_t rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(q * static_cast<double>(count))));
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    cumulative += counts[i];
    if (cumulative >= rank) {
      // Never report beyond the observed maximum (the top bucket's midpoint
      // can overshoot it).
      return std::min(BucketMidpoint(i), static_cast<double>(max));
    }
  }
  return static_cast<double>(max);
}

double HistogramSnapshot::WeightedMeanNs() const {
  if (count == 0) return 0.0;
  double weighted_sum = 0.0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] != 0) {
      weighted_sum += static_cast<double>(counts[i]) * BucketMidpoint(i);
    }
  }
  return weighted_sum / static_cast<double>(count);
}

std::string HistogramSnapshot::ToJson() const {
  return JsonObject()
      .Add("count", count)
      .Add("mean_ms", MeanNs() / kNsPerMs)
      .Add("wmean_ms", WeightedMeanNs() / kNsPerMs)
      .Add("p50_ms", ValueAtQuantile(0.50) / kNsPerMs)
      .Add("p90_ms", ValueAtQuantile(0.90) / kNsPerMs)
      .Add("p99_ms", ValueAtQuantile(0.99) / kNsPerMs)
      .Add("p999_ms", ValueAtQuantile(0.999) / kNsPerMs)
      .Add("max_ms", static_cast<double>(max) / kNsPerMs)
      .Build();
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot snap;
  snap.counts.resize(kNumBuckets);
  for (std::size_t i = 0; i < kNumBuckets; ++i) {
    const std::uint64_t c = buckets_[i].load(std::memory_order_relaxed);
    snap.counts[i] = c;
    snap.count += c;
  }
  snap.sum = sum_.load(std::memory_order_relaxed);
  snap.max = max_.load(std::memory_order_relaxed);
  return snap;
}

void Histogram::Reset() {
  for (std::atomic<std::uint64_t>& bucket : buckets_) {
    bucket.store(0, std::memory_order_relaxed);
  }
  sum_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

}  // namespace subex
