#include "obs/event_log.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <utility>

#include "common/json.h"

namespace subex {

const char* EventSeverityName(EventSeverity severity) {
  switch (severity) {
    case EventSeverity::kDebug:
      return "debug";
    case EventSeverity::kInfo:
      return "info";
    case EventSeverity::kWarn:
      return "warn";
    case EventSeverity::kError:
      return "error";
  }
  return "unknown";
}

std::string EventRecord::ToJsonLine() const {
  JsonObject object;
  object.Add("ts_ms", static_cast<double>(wall_ns) / 1e6)
      .Add("seq", sequence)
      .Add("severity", EventSeverityName(severity))
      .Add("key", key)
      .AddRaw("fields", fields_json.empty() ? "{}" : fields_json);
  return object.Build();
}

#ifndef SUBEX_OBS_DISABLED

namespace {

std::uint64_t WallNowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

std::uint64_t SteadyNowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

EventLog& EventLog::Global() {
  // Never destructed: emit sites may fire from detached threads at exit.
  static EventLog* log = new EventLog();
  return *log;
}

void EventLog::Configure(EventLogOptions options) {
  std::lock_guard<std::mutex> lock(mutex_);
  options_ = options;
  // New rates apply from a full bucket and the ring restarts at the new
  // capacity — Configure is a startup-time call, losing early events is fine.
  buckets_.clear();
  ring_.clear();
  next_ = 0;
  size_ = 0;
}

bool EventLog::Admit(EventSeverity severity, std::string_view key) {
  (void)severity;
  const std::uint64_t now_ns = SteadyNowNs();
  std::lock_guard<std::mutex> lock(mutex_);
  Bucket& bucket = buckets_[std::string(key)];
  if (!bucket.initialized) {
    bucket.tokens = options_.burst;
    bucket.last_refill_ns = now_ns;
    bucket.initialized = true;
  } else if (options_.tokens_per_second > 0) {
    const double elapsed_s =
        static_cast<double>(now_ns - bucket.last_refill_ns) / 1e9;
    bucket.tokens = std::min(options_.burst,
                             bucket.tokens +
                                 elapsed_s * options_.tokens_per_second);
    bucket.last_refill_ns = now_ns;
  }
  if (bucket.tokens < 1.0) {
    ++suppressed_;
    return false;
  }
  bucket.tokens -= 1.0;
  return true;
}

void EventLog::Append(EventSeverity severity, std::string_view key,
                      std::string fields_json) {
  EventRecord record;
  record.wall_ns = WallNowNs();
  record.severity = severity;
  record.key = std::string(key);
  record.fields_json = std::move(fields_json);
  std::lock_guard<std::mutex> lock(mutex_);
  record.sequence = sequence_++;
  ++emitted_;
  if (ring_.size() < options_.ring_capacity) {
    ring_.push_back(std::move(record));
    ++size_;
    next_ = size_ % options_.ring_capacity;
  } else {
    ring_[next_] = std::move(record);
    next_ = (next_ + 1) % options_.ring_capacity;
  }
}

bool EventLog::Emit(EventSeverity severity, std::string_view key,
                    std::string fields_json) {
  if (!Admit(severity, key)) return false;
  Append(severity, key, std::move(fields_json));
  return true;
}

std::vector<EventRecord> EventLog::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<EventRecord> events;
  events.reserve(size_);
  const std::size_t capacity = ring_.size();
  if (capacity == 0) return events;
  const std::size_t first = size_ == capacity ? next_ : 0;
  for (std::size_t i = 0; i < size_; ++i) {
    events.push_back(ring_[(first + i) % capacity]);
  }
  return events;
}

std::uint64_t EventLog::emitted() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return emitted_;
}

std::uint64_t EventLog::suppressed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return suppressed_;
}

std::string EventLog::ToJson() const {
  std::uint64_t emitted_count;
  std::uint64_t suppressed_count;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    emitted_count = emitted_;
    suppressed_count = suppressed_;
  }
  JsonArray recent;
  for (const EventRecord& event : Snapshot()) {
    recent.AddRaw(event.ToJsonLine());
  }
  JsonObject object;
  object.Add("emitted", emitted_count)
      .Add("suppressed", suppressed_count)
      .AddRaw("recent", recent.Build());
  return object.Build();
}

std::string EventLog::ToJsonLines() const {
  std::string lines;
  for (const EventRecord& event : Snapshot()) {
    lines += event.ToJsonLine();
    lines += '\n';
  }
  return lines;
}

void EventLog::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  buckets_.clear();
  ring_.clear();
  next_ = 0;
  size_ = 0;
  emitted_ = 0;
  suppressed_ = 0;
  sequence_ = 0;
}

SlowRequestCapture::SlowRequestCapture(std::uint64_t threshold_ns,
                                       std::size_t capacity)
    : threshold_ns_(threshold_ns) {
  ring_.resize(capacity == 0 ? 1 : capacity);
}

void SlowRequestCapture::Capture(std::string label, std::uint64_t request_id,
                                 std::uint64_t trace_id,
                                 std::uint64_t total_ns,
                                 std::string trace_json) {
  Entry entry;
  entry.wall_ns = WallNowNs();
  entry.request_id = request_id;
  entry.trace_id = trace_id;
  entry.total_ns = total_ns;
  entry.label = std::move(label);
  entry.trace_json = std::move(trace_json);
  std::lock_guard<std::mutex> lock(mutex_);
  ++captured_;
  ring_[next_] = std::move(entry);
  next_ = (next_ + 1) % ring_.size();
  if (size_ < ring_.size()) ++size_;
}

std::uint64_t SlowRequestCapture::captured() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return captured_;
}

std::string SlowRequestCapture::ToJson() const {
  std::lock_guard<std::mutex> lock(mutex_);
  JsonArray recent;
  char hex[32];
  const std::size_t capacity = ring_.size();
  const std::size_t first = size_ == capacity ? next_ : 0;
  for (std::size_t i = 0; i < size_; ++i) {
    const Entry& entry = ring_[(first + i) % capacity];
    std::snprintf(hex, sizeof(hex), "0x%016llx",
                  static_cast<unsigned long long>(entry.trace_id));
    JsonObject object;
    object.Add("ts_ms", static_cast<double>(entry.wall_ns) / 1e6)
        .Add("label", entry.label)
        .Add("request_id", entry.request_id)
        .Add("trace_id", hex)
        .Add("total_ms", static_cast<double>(entry.total_ns) / 1e6)
        .AddRaw("trace", entry.trace_json.empty() ? "{}" : entry.trace_json);
    recent.AddRaw(object.Build());
  }
  JsonObject object;
  object.Add("threshold_ms", static_cast<double>(threshold_ns_) / 1e6)
      .Add("captured", captured_)
      .AddRaw("recent", recent.Build());
  return object.Build();
}

#endif  // !SUBEX_OBS_DISABLED

}  // namespace subex
