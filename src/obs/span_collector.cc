#include "obs/span_collector.h"

#ifndef SUBEX_OBS_DISABLED

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <random>

#include "common/json.h"

namespace subex {
namespace {

/// splitmix64 finalizer: spreads a counter over the full 64-bit space so
/// successive ids don't share prefixes.
std::uint64_t Mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t RandomSeed() {
  std::random_device device;
  return (static_cast<std::uint64_t>(device()) << 32) ^ device();
}

std::uint64_t NextId(std::atomic<std::uint64_t>& counter,
                     std::uint64_t seed) {
  std::uint64_t id;
  do {
    id = Mix(seed ^ counter.fetch_add(1, std::memory_order_relaxed));
  } while (id == 0);
  return id;
}

std::uint64_t SteadyNowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// (steady, wall) pair captured together once per process; conversions add
/// the signed steady delta to the wall anchor, so spans recorded before the
/// first conversion still land at the right wall time.
struct ClockAnchor {
  std::uint64_t steady_ns;
  std::uint64_t wall_ns;
};

const ClockAnchor& Anchor() {
  static const ClockAnchor anchor = [] {
    ClockAnchor a;
    a.steady_ns = SteadyNowNs();
    a.wall_ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count());
    return a;
  }();
  return anchor;
}

/// Cached ring registration for the calling thread; invalidated when the
/// collector's generation moves (re-Enable).
struct ThreadSlot {
  const void* owner = nullptr;
  std::uint64_t generation = 0;
  void* ring = nullptr;
};

thread_local ThreadSlot t_slot;

}  // namespace

std::uint64_t NextTraceId() {
  static std::atomic<std::uint64_t> counter{1};
  static const std::uint64_t seed = RandomSeed();
  return NextId(counter, seed);
}

std::uint64_t NextSpanId() {
  static std::atomic<std::uint64_t> counter{1};
  static const std::uint64_t seed = RandomSeed() ^ 0x5bf0363546290e3bULL;
  return NextId(counter, seed);
}

std::uint64_t SteadyToWallNs(std::uint64_t steady_ns) {
  const ClockAnchor& anchor = Anchor();
  const std::int64_t delta = static_cast<std::int64_t>(steady_ns) -
                             static_cast<std::int64_t>(anchor.steady_ns);
  return static_cast<std::uint64_t>(static_cast<std::int64_t>(anchor.wall_ns) +
                                    delta);
}

SpanCollector& SpanCollector::Global() {
  // Never destructed: spans may be recorded from detached threads at exit.
  static SpanCollector* collector = new SpanCollector();
  return *collector;
}

void SpanCollector::Enable(std::size_t ring_capacity_per_thread) {
  // Generations are process-unique (not per-instance): a thread's cached
  // ring slot keys on (collector address, generation), and a later collector
  // allocated at a recycled address must never validate a stale cache entry.
  static std::atomic<std::uint64_t> global_generation{0};
  std::lock_guard<std::mutex> lock(mutex_);
  ring_capacity_ = ring_capacity_per_thread == 0 ? 1 : ring_capacity_per_thread;
  rings_.clear();
  generation_.store(global_generation.fetch_add(1, std::memory_order_relaxed) + 1,
                    std::memory_order_relaxed);
  enabled_.store(true, std::memory_order_release);
}

void SpanCollector::Disable() {
  enabled_.store(false, std::memory_order_release);
}

SpanCollector::ThreadRing* SpanCollector::RingForThisThread() {
  const std::uint64_t generation = generation_.load(std::memory_order_relaxed);
  if (t_slot.owner == this && t_slot.generation == generation) {
    return static_cast<ThreadRing*>(t_slot.ring);
  }
  auto ring = std::make_shared<ThreadRing>();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ring->slots.resize(ring_capacity_);
    ring->tid = next_tid_++;
    rings_.push_back(ring);
  }
  // The collector's shared_ptr keeps the ring alive past thread exit; the
  // thread-local cache holds a raw pointer, revalidated by generation.
  t_slot.owner = this;
  t_slot.generation = generation;
  t_slot.ring = ring.get();
  return ring.get();
}

void SpanCollector::Record(SpanRecord record) {
  if (!enabled()) return;
  ThreadRing* ring = RingForThisThread();
  std::lock_guard<std::mutex> lock(ring->mutex);
  record.tid = ring->tid;
  if (ring->size == ring->slots.size()) ++ring->dropped;
  ring->slots[ring->next] = std::move(record);
  ring->next = (ring->next + 1) % ring->slots.size();
  if (ring->size < ring->slots.size()) ++ring->size;
}

std::vector<SpanRecord> SpanCollector::Snapshot() const {
  std::vector<std::shared_ptr<ThreadRing>> rings;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    rings = rings_;
  }
  std::vector<SpanRecord> spans;
  for (const auto& ring : rings) {
    std::lock_guard<std::mutex> lock(ring->mutex);
    // Oldest first: when wrapped, the write cursor points at the oldest.
    const std::size_t capacity = ring->slots.size();
    const std::size_t first =
        ring->size == capacity ? ring->next : ring->next - ring->size;
    for (std::size_t i = 0; i < ring->size; ++i) {
      spans.push_back(ring->slots[(first + i) % capacity]);
    }
  }
  std::stable_sort(spans.begin(), spans.end(),
                   [](const SpanRecord& a, const SpanRecord& b) {
                     return a.start_ns < b.start_ns;
                   });
  return spans;
}

std::uint64_t SpanCollector::dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t total = 0;
  for (const auto& ring : rings_) {
    std::lock_guard<std::mutex> ring_lock(ring->mutex);
    total += ring->dropped;
  }
  return total;
}

void SpanCollector::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& ring : rings_) {
    std::lock_guard<std::mutex> ring_lock(ring->mutex);
    ring->next = 0;
    ring->size = 0;
    ring->dropped = 0;
  }
}

std::string SpanCollector::ToChromeTraceJson() const {
  const std::vector<SpanRecord> spans = Snapshot();
  const std::uint64_t pid = static_cast<std::uint64_t>(::getpid());
  JsonArray events;
  char hex[32];
  for (const SpanRecord& span : spans) {
    std::snprintf(hex, sizeof(hex), "0x%016llx",
                  static_cast<unsigned long long>(span.trace_id));
    JsonObject args;
    args.Add("trace_id", hex)
        .Add("span_id", span.span_id)
        .Add("parent_id", span.parent_id);
    JsonObject event;
    event.Add("name", span.name)
        .Add("cat", "subex")
        .Add("ph", "X")
        .Add("ts", static_cast<double>(SteadyToWallNs(span.start_ns)) / 1e3)
        .Add("dur", static_cast<double>(span.duration_ns) / 1e3)
        .Add("pid", pid)
        .Add("tid", static_cast<std::uint64_t>(span.tid))
        .AddRaw("args", args.Build());
    events.AddRaw(event.Build());
  }
  JsonObject document;
  document.Add("displayTimeUnit", "ms").AddRaw("traceEvents", events.Build());
  return document.Build();
}

}  // namespace subex

#endif  // !SUBEX_OBS_DISABLED
