#ifndef SUBEX_OBS_METRICS_HTTP_H_
#define SUBEX_OBS_METRICS_HTTP_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>

namespace subex {

#ifndef SUBEX_OBS_DISABLED

/// Minimal standalone `GET /metrics` listener for processes that have no
/// `ExplainServer` to piggyback on (bench binaries, tools): one background
/// thread, one connection at a time, `Connection: close` per scrape —
/// exactly enough for a Prometheus scraper or a curl mid-run. Serves the
/// global `MetricsRegistry` via `RenderPrometheusText`; every other path
/// is 404. Under SUBEX_OBS_DISABLED the stub's `Start` returns false.
class MetricsHttpServer {
 public:
  MetricsHttpServer() = default;
  ~MetricsHttpServer();
  MetricsHttpServer(const MetricsHttpServer&) = delete;
  MetricsHttpServer& operator=(const MetricsHttpServer&) = delete;

  /// Binds 127.0.0.1:`port` (0 picks a free port; see `port()`) and spawns
  /// the accept thread. False + `*error` when the bind fails.
  bool Start(std::uint16_t port, std::string* error = nullptr);
  void Stop();
  bool running() const { return running_.load(std::memory_order_acquire); }
  /// The bound port (after a successful `Start`).
  std::uint16_t port() const { return port_; }
  /// Scrapes served so far.
  std::uint64_t requests() const {
    return requests_.load(std::memory_order_relaxed);
  }

 private:
  void AcceptLoop();

  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> requests_{0};
};

#else  // SUBEX_OBS_DISABLED

class MetricsHttpServer {
 public:
  bool Start(std::uint16_t, std::string* error = nullptr) {
    if (error != nullptr) *error = "observability compiled out";
    return false;
  }
  void Stop() {}
  bool running() const { return false; }
  std::uint16_t port() const { return 0; }
  std::uint64_t requests() const { return 0; }
};

#endif  // SUBEX_OBS_DISABLED

}  // namespace subex

#endif  // SUBEX_OBS_METRICS_HTTP_H_
