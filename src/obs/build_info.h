#ifndef SUBEX_OBS_BUILD_INFO_H_
#define SUBEX_OBS_BUILD_INFO_H_

#include <string>

namespace subex {

/// `{"compiler":"gcc 13.2.0 ...","cxx_standard":202002,"build_type":
///   "Release","obs_enabled":true}` — which binary produced a stats dump.
/// Compiled in both obs modes (it's how a dump says obs was off).
std::string BuildInfoJson();

}  // namespace subex

#endif  // SUBEX_OBS_BUILD_INFO_H_
