#include "obs/metrics_http.h"

#ifndef SUBEX_OBS_DISABLED

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>

#include "obs/prometheus.h"
#include "obs/registry.h"

namespace subex {
namespace {

void SendAll(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;
    }
    sent += static_cast<std::size_t>(n);
  }
}

}  // namespace

MetricsHttpServer::~MetricsHttpServer() { Stop(); }

bool MetricsHttpServer::Start(std::uint16_t port, std::string* error) {
  if (running()) {
    if (error != nullptr) *error = "already running";
    return false;
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    if (error != nullptr) *error = "socket() failed";
    return false;
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
          0 ||
      ::listen(listen_fd_, 8) != 0) {
    if (error != nullptr) *error = "bind/listen failed";
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  socklen_t addr_len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &addr_len);
  port_ = ntohs(addr.sin_port);
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { AcceptLoop(); });
  return true;
}

void MetricsHttpServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  // The accept loop polls with a timeout, so it notices `running_` soon.
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void MetricsHttpServer::AcceptLoop() {
  while (running_.load(std::memory_order_acquire)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 100);
    if (ready <= 0) continue;
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) continue;
    char request[1024];
    const ssize_t got = ::recv(client, request, sizeof(request) - 1, 0);
    std::string request_line;
    if (got > 0) {
      request[got] = '\0';
      const char* end = std::strstr(request, "\r\n");
      request_line.assign(request,
                          end != nullptr ? static_cast<std::size_t>(
                                               end - request)
                                         : static_cast<std::size_t>(got));
    }
    std::string status = "404 Not Found";
    std::string content_type = "text/plain; charset=utf-8";
    std::string body = "not found\n";
    if (request_line.rfind("GET /metrics", 0) == 0) {
      status = "200 OK";
      content_type = "text/plain; version=0.0.4; charset=utf-8";
      body = RenderPrometheusText(MetricsRegistry::Global());
      requests_.fetch_add(1, std::memory_order_relaxed);
    }
    std::string response = "HTTP/1.1 " + status +
                           "\r\nContent-Type: " + content_type +
                           "\r\nContent-Length: " + std::to_string(body.size()) +
                           "\r\nConnection: close\r\n\r\n" + body;
    SendAll(client, response);
    ::close(client);
  }
}

}  // namespace subex

#endif  // SUBEX_OBS_DISABLED
