#include "core/report.h"

#include <algorithm>
#include <cstdio>

#include "common/check.h"

namespace subex {

void TextTable::SetHeader(std::vector<std::string> header) {
  header_ = std::move(header);
}

void TextTable::AddRow(std::vector<std::string> row) {
  SUBEX_CHECK_MSG(row.size() == header_.size(), "row width mismatch");
  rows_.push_back(std::move(row));
}

std::string TextTable::Render() const {
  std::vector<std::size_t> width(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    width[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (std::size_t c = 0; c < row.size(); ++c) {
      line += row[c];
      line.append(width[c] - row[c].size() + 2, ' ');
    }
    while (!line.empty() && line.back() == ' ') line.pop_back();
    return line + "\n";
  };
  std::string out = render_row(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) total += width[c] + 2;
  out.append(total >= 2 ? total - 2 : total, '-');
  out += "\n";
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

std::string FormatDouble(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

std::string FormatSeconds(double seconds) {
  char buf[64];
  if (seconds < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.0fms", seconds * 1000.0);
  } else if (seconds < 100.0) {
    std::snprintf(buf, sizeof(buf), "%.1fs", seconds);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0fs", seconds);
  }
  return buf;
}

}  // namespace subex
