#ifndef SUBEX_CORE_PIPELINE_H_
#define SUBEX_CORE_PIPELINE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "data/ground_truth.h"
#include "detect/detector.h"
#include "explain/point_explainer.h"
#include "explain/summarizer.h"
#include "serve/scoring_service.h"

namespace subex {

/// Outcome of one (detector, explainer, explanation dimensionality) cell of
/// the evaluation grid — one point of a Figure 9/10 curve plus the runtime
/// of Figure 11.
struct PipelineResult {
  std::string detector_name;
  std::string explainer_name;
  int explanation_dim = 0;
  /// Mean Average Precision (Eq. 3) over the evaluated points.
  double map = 0.0;
  /// Mean Recall over the evaluated points.
  double mean_recall = 0.0;
  /// Points explained at this dimensionality that were evaluated.
  int num_points = 0;
  /// Wall-clock seconds of explanation (ground truth & setup excluded).
  double seconds = 0.0;
};

/// Evaluation protocol knobs shared by both pipelines.
struct PipelineOptions {
  /// Cap on the number of points to explain (point pipelines only):
  /// 0 = explain every point the ground truth explains at the requested
  /// dimensionality (the paper's protocol); >0 subsamples deterministically
  /// for quick benchmark profiles.
  int max_points = 0;
  std::uint64_t subsample_seed = 17;
};

/// Runs a point-explanation pipeline (Figure 7, top path): for every point
/// the ground truth explains at `explanation_dim`, asks `explainer` for
/// fixed-dimensionality subspaces and scores them against the ground truth
/// restricted to that dimensionality.
PipelineResult RunPointExplanationPipeline(
    const Dataset& data, const GroundTruth& ground_truth,
    const Detector& detector, const PointExplainer& explainer,
    int explanation_dim, const PipelineOptions& options = {});

/// Runs a summarization pipeline (Figure 7, bottom path): hands the *full*
/// point-of-interest set to `summarizer` once, then scores the returned
/// summary against each point explained at `explanation_dim`.
PipelineResult RunSummarizationPipeline(
    const Dataset& data, const GroundTruth& ground_truth,
    const Detector& detector, const Summarizer& summarizer,
    int explanation_dim, const PipelineOptions& options = {});

/// Service-backed point pipeline: identical protocol and (per-point
/// deterministic explainers + pure detectors) identical results, but all
/// scoring goes through `service` — cached subspaces are served from
/// memory, and when the service has a multi-worker pool the points are
/// explained concurrently, with single-flight deduplicating the overlapping
/// subspace requests of concurrent explanations.
PipelineResult RunPointExplanationPipeline(
    ScoringService& service, const GroundTruth& ground_truth,
    const PointExplainer& explainer, int explanation_dim,
    const PipelineOptions& options = {});

/// Service-backed summarization pipeline: one `Summarize` call over the
/// full point-of-interest set, scored through the service's cache.
PipelineResult RunSummarizationPipeline(
    ScoringService& service, const GroundTruth& ground_truth,
    const Summarizer& summarizer, int explanation_dim,
    const PipelineOptions& options = {});

}  // namespace subex

#endif  // SUBEX_CORE_PIPELINE_H_
