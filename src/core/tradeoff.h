#ifndef SUBEX_CORE_TRADEOFF_H_
#define SUBEX_CORE_TRADEOFF_H_

#include <string>
#include <vector>

namespace subex {

/// One executed pipeline's effectiveness/efficiency summary, as consumed by
/// the Table 2 trade-off analysis.
struct PipelineScore {
  std::string explainer;
  std::string detector;
  double map = 0.0;
  double seconds = 0.0;
  /// Generic algorithms (no distributional precondition, e.g. LookOut) are
  /// preferred over condition-dependent ones (e.g. HiCS' correlation
  /// heuristic) when effectiveness ties — the paper's Table 2 rule.
  bool generic = true;

  std::string Label() const { return explainer + " " + detector; }
};

/// Options of the trade-off selection.
struct TradeoffOptions {
  /// MAP values within this distance of the maximum count as ties (the
  /// paper eyeballs "slightly less effective" as equivalent).
  double map_tolerance = 0.1;
  /// Pipelines below this MAP count as "zero effectiveness" and are never
  /// selected (Table 2 leaves such cells empty).
  double min_map = 0.05;
};

/// Picks the best pipeline in Pareto (MAP, runtime) order: among pipelines
/// whose MAP is within `map_tolerance` of the best, prefer generic ones,
/// then the fastest. Returns false (and leaves `best` untouched) when no
/// pipeline clears `min_map`.
bool SelectBestTradeoff(const std::vector<PipelineScore>& scores,
                        const TradeoffOptions& options, PipelineScore* best);

}  // namespace subex

#endif  // SUBEX_CORE_TRADEOFF_H_
