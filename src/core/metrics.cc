#include "core/metrics.h"

#include <algorithm>

#include "common/check.h"

namespace subex {
namespace {

bool IsRelevant(const Subspace& s, const std::vector<Subspace>& relevant) {
  return std::find(relevant.begin(), relevant.end(), s) != relevant.end();
}

}  // namespace

double PrecisionAtK(const std::vector<Subspace>& ranked,
                    const std::vector<Subspace>& relevant, int k) {
  SUBEX_CHECK(k >= 1 && static_cast<std::size_t>(k) <= ranked.size());
  int hits = 0;
  for (int i = 0; i < k; ++i) {
    if (IsRelevant(ranked[i], relevant)) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(k);
}

double AveragePrecision(const std::vector<Subspace>& ranked,
                        const std::vector<Subspace>& relevant) {
  if (relevant.empty()) return 0.0;
  double sum = 0.0;
  int hits = 0;
  for (std::size_t k = 0; k < ranked.size(); ++k) {
    if (IsRelevant(ranked[k], relevant)) {
      ++hits;
      sum += static_cast<double>(hits) / static_cast<double>(k + 1);
    }
  }
  return sum / static_cast<double>(relevant.size());
}

double Recall(const std::vector<Subspace>& ranked,
              const std::vector<Subspace>& relevant) {
  if (relevant.empty()) return 0.0;
  int hits = 0;
  for (const Subspace& r : relevant) {
    if (std::find(ranked.begin(), ranked.end(), r) != ranked.end()) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(relevant.size());
}

void ExplanationScorer::AddPoint(const std::vector<Subspace>& ranked,
                                 const std::vector<Subspace>& relevant) {
  sum_average_precision_ += AveragePrecision(ranked, relevant);
  sum_recall_ += Recall(ranked, relevant);
  ++num_points_;
}

double ExplanationScorer::MeanAveragePrecision() const {
  return num_points_ == 0 ? 0.0
                          : sum_average_precision_ / num_points_;
}

double ExplanationScorer::MeanRecall() const {
  return num_points_ == 0 ? 0.0 : sum_recall_ / num_points_;
}

double RocAuc(const std::vector<double>& scores,
              const std::vector<bool>& is_outlier) {
  SUBEX_CHECK(scores.size() == is_outlier.size());
  double positives = 0.0;
  double negatives = 0.0;
  for (bool o : is_outlier) (o ? positives : negatives) += 1.0;
  if (positives == 0.0 || negatives == 0.0) return 0.5;
  // Rank-sum (Mann-Whitney) formulation with midrank tie handling.
  std::vector<int> order(scores.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](int a, int b) { return scores[a] < scores[b]; });
  double rank_sum = 0.0;
  std::size_t i = 0;
  while (i < order.size()) {
    std::size_t j = i;
    while (j + 1 < order.size() &&
           scores[order[j + 1]] == scores[order[i]]) {
      ++j;
    }
    const double midrank = 0.5 * (static_cast<double>(i) +
                                  static_cast<double>(j)) + 1.0;
    for (std::size_t t = i; t <= j; ++t) {
      if (is_outlier[order[t]]) rank_sum += midrank;
    }
    i = j + 1;
  }
  return (rank_sum - positives * (positives + 1.0) / 2.0) /
         (positives * negatives);
}

}  // namespace subex
