#include "core/tradeoff.h"

#include <algorithm>

#include "common/check.h"

namespace subex {

bool SelectBestTradeoff(const std::vector<PipelineScore>& scores,
                        const TradeoffOptions& options, PipelineScore* best) {
  SUBEX_CHECK(best != nullptr);
  double best_map = 0.0;
  for (const PipelineScore& s : scores) best_map = std::max(best_map, s.map);
  if (best_map < options.min_map) return false;

  const PipelineScore* winner = nullptr;
  for (const PipelineScore& s : scores) {
    if (s.map < best_map - options.map_tolerance || s.map < options.min_map) {
      continue;
    }
    if (winner == nullptr) {
      winner = &s;
      continue;
    }
    // Preference order within the MAP tie band: generic > specific, then
    // faster, then higher MAP as the final tie-break.
    if (s.generic != winner->generic) {
      if (s.generic) winner = &s;
      continue;
    }
    if (s.seconds != winner->seconds) {
      if (s.seconds < winner->seconds) winner = &s;
      continue;
    }
    if (s.map > winner->map) winner = &s;
  }
  *best = *winner;
  return true;
}

}  // namespace subex
