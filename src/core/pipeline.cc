#include "core/pipeline.h"

#include <algorithm>
#include <chrono>

#include "common/check.h"
#include "common/rng.h"
#include "core/metrics.h"
#include "obs/registry.h"

namespace subex {
namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

std::vector<int> SelectPoints(const GroundTruth& ground_truth, int dim,
                              const PipelineOptions& options) {
  std::vector<int> points = ground_truth.PointsExplainedAtDimension(dim);
  if (options.max_points > 0 &&
      static_cast<int>(points.size()) > options.max_points) {
    Rng rng(options.subsample_seed);
    rng.Shuffle(points);
    points.resize(options.max_points);
    std::sort(points.begin(), points.end());
  }
  return points;
}

/// The aggregate + per-algorithm histogram pair every pipeline stage feeds,
/// e.g. (`explain.search`, `explain.search.Beam`).
struct StageHistograms {
  StageHistograms(const std::string& stage, const std::string& algorithm)
      : aggregate(&MetricsRegistry::Global().GetHistogram(stage)),
        per_algorithm(
            &MetricsRegistry::Global().GetHistogram(stage + "." + algorithm)) {
  }

  void Record(std::uint64_t ns) {
    aggregate->Record(ns);
    per_algorithm->Record(ns);
  }

  Histogram* aggregate;
  Histogram* per_algorithm;
};

}  // namespace

PipelineResult RunPointExplanationPipeline(
    const Dataset& data, const GroundTruth& ground_truth,
    const Detector& detector, const PointExplainer& explainer,
    int explanation_dim, const PipelineOptions& options) {
  PipelineResult result;
  result.detector_name = detector.name();
  result.explainer_name = explainer.name();
  result.explanation_dim = explanation_dim;

  const GroundTruth at_dim = ground_truth.FilterByDimension(explanation_dim);
  const std::vector<int> points = SelectPoints(ground_truth, explanation_dim,
                                               options);
  ExplanationScorer scorer;
  StageHistograms search("explain.search", explainer.name());
  const auto start = Clock::now();
  for (int p : points) {
    const auto point_start = Clock::now();
    const RankedSubspaces ranked =
        explainer.Explain(data, detector, p, explanation_dim);
    search.Record(static_cast<std::uint64_t>(
        SecondsSince(point_start) * 1e9));
    scorer.AddPoint(ranked.subspaces, at_dim.RelevantFor(p));
  }
  result.seconds = SecondsSince(start);
  result.map = scorer.MeanAveragePrecision();
  result.mean_recall = scorer.MeanRecall();
  result.num_points = scorer.num_points();
  return result;
}

PipelineResult RunPointExplanationPipeline(
    ScoringService& service, const GroundTruth& ground_truth,
    const PointExplainer& explainer, int explanation_dim,
    const PipelineOptions& options) {
  const Dataset& data = service.data();
  const CachingDetector detector(service);

  PipelineResult result;
  result.detector_name = detector.name();
  result.explainer_name = explainer.name();
  result.explanation_dim = explanation_dim;

  const GroundTruth at_dim = ground_truth.FilterByDimension(explanation_dim);
  const std::vector<int> points =
      SelectPoints(ground_truth, explanation_dim, options);

  // Explain concurrently (explainers are deterministic per point and must
  // not mutate shared state), then score sequentially in point order so the
  // result is identical to the sequential pipeline.
  std::vector<RankedSubspaces> ranked(points.size());
  StageHistograms search("explain.search", explainer.name());
  const auto start = Clock::now();
  auto explain_one = [&](std::size_t i) {
    const auto point_start = Clock::now();
    ranked[i] = explainer.Explain(data, detector, points[i], explanation_dim);
    search.Record(
        static_cast<std::uint64_t>(SecondsSince(point_start) * 1e9));
  };
  ThreadPool* pool = service.pool();
  if (pool != nullptr && pool->num_threads() > 1) {
    pool->ParallelFor(points.size(), explain_one);
  } else {
    for (std::size_t i = 0; i < points.size(); ++i) explain_one(i);
  }
  result.seconds = SecondsSince(start);

  ExplanationScorer scorer;
  for (std::size_t i = 0; i < points.size(); ++i) {
    scorer.AddPoint(ranked[i].subspaces, at_dim.RelevantFor(points[i]));
  }
  result.map = scorer.MeanAveragePrecision();
  result.mean_recall = scorer.MeanRecall();
  result.num_points = scorer.num_points();
  return result;
}

PipelineResult RunSummarizationPipeline(
    ScoringService& service, const GroundTruth& ground_truth,
    const Summarizer& summarizer, int explanation_dim,
    const PipelineOptions& options) {
  const CachingDetector detector(service);
  return RunSummarizationPipeline(service.data(), ground_truth, detector,
                                  summarizer, explanation_dim, options);
}

PipelineResult RunSummarizationPipeline(
    const Dataset& data, const GroundTruth& ground_truth,
    const Detector& detector, const Summarizer& summarizer,
    int explanation_dim, const PipelineOptions& options) {
  PipelineResult result;
  result.detector_name = detector.name();
  result.explainer_name = summarizer.name();
  result.explanation_dim = explanation_dim;

  // The summarizer receives the full point-of-interest set (Figure 7);
  // evaluation happens only on the points explained at this dimensionality.
  const std::vector<int>& all_points = data.outlier_indices();
  SUBEX_CHECK_MSG(!all_points.empty(), "dataset has no points of interest");

  StageHistograms search("explain.summarize", summarizer.name());
  const auto start = Clock::now();
  const RankedSubspaces summary =
      summarizer.Summarize(data, detector, all_points, explanation_dim);
  result.seconds = SecondsSince(start);
  search.Record(static_cast<std::uint64_t>(result.seconds * 1e9));

  const GroundTruth at_dim = ground_truth.FilterByDimension(explanation_dim);
  const std::vector<int> points = SelectPoints(ground_truth, explanation_dim,
                                               options);
  ExplanationScorer scorer;
  for (int p : points) {
    scorer.AddPoint(summary.subspaces, at_dim.RelevantFor(p));
  }
  result.map = scorer.MeanAveragePrecision();
  result.mean_recall = scorer.MeanRecall();
  result.num_points = scorer.num_points();
  return result;
}

}  // namespace subex
