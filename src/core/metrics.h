#ifndef SUBEX_CORE_METRICS_H_
#define SUBEX_CORE_METRICS_H_

#include <vector>

#include "subspace/subspace.h"

namespace subex {

/// Precision@k (Eq. 1): fraction of the first `k` returned subspaces that
/// are relevant. A returned subspace is relevant only if it is *identical*
/// to a ground-truth subspace. `k` must be in [1, ranked.size()].
double PrecisionAtK(const std::vector<Subspace>& ranked,
                    const std::vector<Subspace>& relevant, int k);

/// Average Precision (Eq. 2):
///   AveP = sum_k P@k * rel(k) / |relevant|.
/// Returns 0 when `relevant` is empty.
double AveragePrecision(const std::vector<Subspace>& ranked,
                        const std::vector<Subspace>& relevant);

/// Recall: |relevant ∩ ranked| / |relevant|. Returns 0 when `relevant` is
/// empty.
double Recall(const std::vector<Subspace>& ranked,
              const std::vector<Subspace>& relevant);

/// Accumulates per-point Average Precision / Recall into the dataset-level
/// MAP (Eq. 3) and Mean Recall the paper reports per explanation
/// dimensionality.
class ExplanationScorer {
 public:
  /// Records one explained point's ranked result against its ground truth.
  void AddPoint(const std::vector<Subspace>& ranked,
                const std::vector<Subspace>& relevant);

  /// Mean Average Precision over all added points; 0 if none were added.
  double MeanAveragePrecision() const;
  /// Mean Recall over all added points; 0 if none were added.
  double MeanRecall() const;
  /// Number of points accumulated.
  int num_points() const { return num_points_; }

 private:
  double sum_average_precision_ = 0.0;
  double sum_recall_ = 0.0;
  int num_points_ = 0;
};

/// Area under the ROC curve of detector scores against binary outlier
/// labels (1 = outlier). Used by the detector sanity tests and the detector
/// microbenchmarks; ties receive the standard 0.5 credit. Returns 0.5 when
/// either class is empty.
double RocAuc(const std::vector<double>& scores,
              const std::vector<bool>& is_outlier);

}  // namespace subex

#endif  // SUBEX_CORE_METRICS_H_
