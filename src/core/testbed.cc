#include "core/testbed.h"

#include <algorithm>

#include "common/check.h"
#include "core/ground_truth_builder.h"
#include "detect/fast_abod.h"
#include "detect/isolation_forest.h"
#include "detect/lof.h"
#include "explain/beam.h"
#include "explain/hics.h"
#include "explain/lookout.h"
#include "explain/refout.h"
#include "mem/eviction_manager.h"

namespace subex {

const char* PointExplainerKindName(PointExplainerKind kind) {
  switch (kind) {
    case PointExplainerKind::kBeam:
      return "Beam";
    case PointExplainerKind::kRefOut:
      return "RefOut";
  }
  return "unknown";
}

const char* SummarizerKindName(SummarizerKind kind) {
  switch (kind) {
    case SummarizerKind::kLookOut:
      return "LookOut";
    case SummarizerKind::kHics:
      return "HiCS";
  }
  return "unknown";
}

TestbedProfile TestbedProfile::Quick() { return TestbedProfile{}; }

TestbedProfile TestbedProfile::Paper() {
  TestbedProfile p;
  p.name = "paper";
  p.dataset_scale = 1.0;
  p.max_dataset_dim = 100;
  p.max_explanation_dim = 5;
  p.max_points_per_cell = 0;
  p.beam_width = 100;
  p.refout_pool_size = 100;
  p.lookout_budget = 100;
  p.lookout_max_candidates = 0;  // Exhaustive.
  p.hics_candidate_cutoff = 400;
  p.hics_mc_iterations = 100;
  p.max_results = 100;
  p.iforest_trees = 100;
  p.iforest_repetitions = 10;
  return p;
}

std::unique_ptr<Detector> MakeTestbedDetector(DetectorKind kind,
                                              const TestbedProfile& profile) {
  switch (kind) {
    case DetectorKind::kLof:
      return std::make_unique<Lof>(15);
    case DetectorKind::kFastAbod:
      return std::make_unique<FastAbod>(10);
    case DetectorKind::kIsolationForest: {
      IsolationForest::Options options;
      options.num_trees = profile.iforest_trees;
      options.subsample_size = 256;
      options.num_repetitions = profile.iforest_repetitions;
      options.seed = profile.seed;
      return std::make_unique<IsolationForest>(options);
    }
  }
  SUBEX_CHECK_MSG(false, "unknown detector kind");
  return nullptr;
}

ScoringServiceOptions MakeServiceOptions(const TestbedProfile& profile) {
  ScoringServiceOptions options;
  options.enable_cache = profile.cache_scores;
  options.cache.max_entries = profile.cache_max_entries;
  options.cache.max_bytes = profile.cache_max_bytes;
  // Service caches share the process-wide budget with chunked datasets and
  // any other governed cache, so memory pressure anywhere evicts the
  // globally coldest score vectors rather than failing locally.
  options.cache.manager = &EvictionManager::Global();
  options.cache.name = "service_score_cache";
  return options;
}

std::unique_ptr<PointExplainer> MakeTestbedPointExplainer(
    PointExplainerKind kind, const TestbedProfile& profile) {
  switch (kind) {
    case PointExplainerKind::kBeam: {
      Beam::Options options;
      options.beam_width = profile.beam_width;
      options.max_results = profile.max_results;
      return std::make_unique<Beam>(options);
    }
    case PointExplainerKind::kRefOut: {
      RefOut::Options options;
      options.pool_size = profile.refout_pool_size;
      options.beam_width = profile.beam_width;
      options.projection_ratio = 0.7;
      options.max_results = profile.max_results;
      options.seed = profile.seed;
      return std::make_unique<RefOut>(options);
    }
  }
  SUBEX_CHECK_MSG(false, "unknown point explainer kind");
  return nullptr;
}

std::unique_ptr<Summarizer> MakeTestbedSummarizer(
    SummarizerKind kind, const TestbedProfile& profile) {
  switch (kind) {
    case SummarizerKind::kLookOut: {
      LookOut::Options options;
      options.budget = profile.lookout_budget;
      options.max_candidates = profile.lookout_max_candidates;
      options.seed = profile.seed;
      return std::make_unique<LookOut>(options);
    }
    case SummarizerKind::kHics: {
      Hics::Options options;
      options.candidate_cutoff = profile.hics_candidate_cutoff;
      options.mc_iterations = profile.hics_mc_iterations;
      options.max_results = profile.max_results;
      options.seed = profile.seed;
      return std::make_unique<Hics>(options);
    }
  }
  SUBEX_CHECK_MSG(false, "unknown summarizer kind");
  return nullptr;
}

std::vector<TestbedDataset> BuildSyntheticSuite(
    const TestbedProfile& profile) {
  std::vector<TestbedDataset> suite;
  for (SyntheticDataset& generated :
       GeneratePaperHicsSuite(profile.seed, profile.dataset_scale)) {
    if (static_cast<int>(generated.dataset.num_features()) >
        profile.max_dataset_dim) {
      continue;
    }
    TestbedDataset entry;
    entry.subspace_outliers = true;
    // Max planted subspace dimensionality over the dataset dimensionality
    // (Table 1's relevant-feature ratio, e.g. 5/14 = 36%).
    int max_planted = 0;
    for (const Subspace& s : generated.relevant_subspaces) {
      max_planted = std::max(max_planted, static_cast<int>(s.size()));
    }
    entry.relevant_feature_ratio =
        static_cast<double>(max_planted) /
        static_cast<double>(generated.dataset.num_features());
    for (int dim = 2; dim <= std::min(profile.max_explanation_dim, 5);
         ++dim) {
      entry.explanation_dims.push_back(dim);
    }
    entry.data = std::move(generated);
    suite.push_back(std::move(entry));
  }
  return suite;
}

std::vector<TestbedDataset> BuildRealSuite(const TestbedProfile& profile,
                                           ThreadPool* pool) {
  const Lof lof(15);  // Ground truth always uses LOF, as in §3.2.
  GroundTruthBuilderOptions gt_options;
  gt_options.min_dim = 2;
  gt_options.max_dim = std::min(profile.max_explanation_dim, 4);

  std::vector<TestbedDataset> suite;
  for (SyntheticDataset& generated :
       GeneratePaperRealSuite(profile.seed, profile.dataset_scale)) {
    TestbedDataset entry;
    entry.subspace_outliers = false;
    entry.relevant_feature_ratio = 1.0;
    for (int dim = gt_options.min_dim; dim <= gt_options.max_dim; ++dim) {
      entry.explanation_dims.push_back(dim);
    }
    // Route the sweep through a scoring service for the batched parallel
    // fan-out; caching is off because an exhaustive sweep never repeats a
    // subspace, so retaining its one-shot vectors would only burn memory.
    ScoringServiceOptions service_options = MakeServiceOptions(profile);
    service_options.enable_cache = false;
    ScoringService service(lof, generated.dataset, service_options, pool);
    generated.ground_truth =
        BuildGroundTruthByExhaustiveSearch(service, gt_options);
    entry.data = std::move(generated);
    suite.push_back(std::move(entry));
  }
  return suite;
}

}  // namespace subex
