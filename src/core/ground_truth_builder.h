#ifndef SUBEX_CORE_GROUND_TRUTH_BUILDER_H_
#define SUBEX_CORE_GROUND_TRUTH_BUILDER_H_

#include "common/thread_pool.h"
#include "data/dataset.h"
#include "data/ground_truth.h"
#include "detect/detector.h"
#include "serve/scoring_service.h"

namespace subex {

/// Options of the exhaustive ground-truth search.
struct GroundTruthBuilderOptions {
  /// Dimensionality range searched; §3.2 uses 2 to 4 for the real datasets.
  int min_dim = 2;
  int max_dim = 4;
};

/// Builds explanation ground truth for a dataset whose outliers are known
/// but whose relevant subspaces are not — the procedure the paper applied
/// to the real datasets (§3.2): for every dimensionality in
/// [min_dim, max_dim], score *all* subspaces with the detector (the paper
/// uses LOF) and record, per outlier, the single subspace in which the
/// outlier's z-standardized score is highest.
///
/// The result assigns each outlier exactly one relevant subspace per
/// dimensionality. Pass a `ThreadPool` to parallelize the per-subspace
/// scoring; pass nullptr to run sequentially.
GroundTruth BuildGroundTruthByExhaustiveSearch(
    const Dataset& data, const Detector& detector,
    const GroundTruthBuilderOptions& options, ThreadPool* pool = nullptr);

/// Service-backed variant of the exhaustive search: identical results, but
/// every candidate subspace is scored through `service.ScoreMany`, so the
/// sweep parallelizes on the service's pool and reuses (and feeds) its
/// cache. Candidates are batched in fixed-size chunks to bound the number
/// of score vectors held live at once.
GroundTruth BuildGroundTruthByExhaustiveSearch(
    ScoringService& service, const GroundTruthBuilderOptions& options);

}  // namespace subex

#endif  // SUBEX_CORE_GROUND_TRUTH_BUILDER_H_
