#include "core/ground_truth_builder.h"

#include <algorithm>
#include <limits>
#include <mutex>
#include <span>

#include "common/check.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "subspace/enumeration.h"

namespace subex {

GroundTruth BuildGroundTruthByExhaustiveSearch(
    const Dataset& data, const Detector& detector,
    const GroundTruthBuilderOptions& options, ThreadPool* pool) {
  SUBEX_CHECK(options.min_dim >= 1);
  SUBEX_CHECK(options.max_dim >= options.min_dim);
  SUBEX_CHECK(static_cast<std::size_t>(options.max_dim) <=
              data.num_features());
  const std::vector<int>& outliers = data.outlier_indices();
  SUBEX_CHECK_MSG(!outliers.empty(), "dataset has no points of interest");

  Histogram& sweep_histogram =
      MetricsRegistry::Global().GetHistogram("gt.search");
  GroundTruth ground_truth;
  const int d = static_cast<int>(data.num_features());
  for (int dim = options.min_dim; dim <= options.max_dim; ++dim) {
    // One span per dimension sweep, attached to any ambient trace.
    TraceSpan sweep(&sweep_histogram, nullptr, "gt.search");
    const std::vector<Subspace> candidates = EnumerateSubspaces(d, dim);
    std::vector<double> best_score(
        outliers.size(), -std::numeric_limits<double>::infinity());
    std::vector<int> best_subspace(outliers.size(), -1);
    std::mutex mutex;

    auto evaluate = [&](std::size_t j) {
      const std::vector<double> scores =
          ScoreStandardized(detector, data, candidates[j]);
      std::lock_guard<std::mutex> lock(mutex);
      for (std::size_t i = 0; i < outliers.size(); ++i) {
        const double s = scores[outliers[i]];
        if (s > best_score[i]) {
          best_score[i] = s;
          best_subspace[i] = static_cast<int>(j);
        }
      }
    };

    if (pool != nullptr && pool->num_threads() > 1) {
      pool->ParallelFor(candidates.size(), evaluate);
    } else {
      for (std::size_t j = 0; j < candidates.size(); ++j) evaluate(j);
    }

    for (std::size_t i = 0; i < outliers.size(); ++i) {
      if (best_subspace[i] >= 0) {
        ground_truth.Add(outliers[i], candidates[best_subspace[i]]);
      }
    }
  }
  return ground_truth;
}

GroundTruth BuildGroundTruthByExhaustiveSearch(
    ScoringService& service, const GroundTruthBuilderOptions& options) {
  const Dataset& data = service.data();
  SUBEX_CHECK(options.min_dim >= 1);
  SUBEX_CHECK(options.max_dim >= options.min_dim);
  SUBEX_CHECK(static_cast<std::size_t>(options.max_dim) <=
              data.num_features());
  const std::vector<int>& outliers = data.outlier_indices();
  SUBEX_CHECK_MSG(!outliers.empty(), "dataset has no points of interest");

  // Chunked so at most kChunk score vectors are pinned at once — exhaustive
  // sweeps reach tens of thousands of candidates on the 30d datasets.
  constexpr std::size_t kChunk = 512;

  Histogram& sweep_histogram =
      MetricsRegistry::Global().GetHistogram("gt.search");
  GroundTruth ground_truth;
  const int d = static_cast<int>(data.num_features());
  for (int dim = options.min_dim; dim <= options.max_dim; ++dim) {
    // One span per dimension sweep, attached to any ambient trace.
    TraceSpan sweep(&sweep_histogram, nullptr, "gt.search");
    const std::vector<Subspace> candidates = EnumerateSubspaces(d, dim);
    std::vector<double> best_score(
        outliers.size(), -std::numeric_limits<double>::infinity());
    std::vector<int> best_subspace(outliers.size(), -1);

    for (std::size_t begin = 0; begin < candidates.size(); begin += kChunk) {
      const std::size_t end = std::min(begin + kChunk, candidates.size());
      const std::vector<ScoreVectorPtr> scores = service.ScoreMany(
          std::span<const Subspace>(candidates.data() + begin, end - begin));
      for (std::size_t j = 0; j < scores.size(); ++j) {
        for (std::size_t i = 0; i < outliers.size(); ++i) {
          const double s = (*scores[j])[outliers[i]];
          if (s > best_score[i]) {
            best_score[i] = s;
            best_subspace[i] = static_cast<int>(begin + j);
          }
        }
      }
    }

    for (std::size_t i = 0; i < outliers.size(); ++i) {
      if (best_subspace[i] >= 0) {
        ground_truth.Add(outliers[i], candidates[best_subspace[i]]);
      }
    }
  }
  return ground_truth;
}

}  // namespace subex
