#ifndef SUBEX_CORE_TESTBED_H_
#define SUBEX_CORE_TESTBED_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "data/generators.h"
#include "detect/detector.h"
#include "explain/point_explainer.h"
#include "explain/summarizer.h"
#include "serve/scoring_service.h"

namespace subex {

/// The two point-explanation algorithms of the testbed.
enum class PointExplainerKind { kBeam, kRefOut };
/// The two explanation-summarization algorithms of the testbed.
enum class SummarizerKind { kLookOut, kHics };

/// Display name of a point explainer kind.
const char* PointExplainerKindName(PointExplainerKind kind);
/// Display name of a summarizer kind.
const char* SummarizerKindName(SummarizerKind kind);

/// Resource profile of a benchmark run.
///
/// `Paper()` reproduces the §3.1 hyper-parameters and dataset sizes;
/// `Quick()` scales points, search widths and Monte-Carlo effort down so
/// the full figure/table grid completes in minutes on one core while
/// preserving every qualitative shape. Benchmark binaries accept `--full`
/// to switch.
struct TestbedProfile {
  std::string name = "quick";

  // Dataset sizing.
  double dataset_scale = 0.3;  ///< Fraction of the paper's point counts.
  int max_dataset_dim = 39;    ///< Skip wider synthetic splits.
  int max_explanation_dim = 4; ///< Highest explanation dimensionality run.

  // Evaluation protocol.
  int max_points_per_cell = 5; ///< Point-explainer subsample (0 = all).

  // Explainer knobs (§3.1 values in Paper()).
  int beam_width = 20;
  int refout_pool_size = 80;
  int lookout_budget = 100;
  std::uint64_t lookout_max_candidates = 10000;
  int hics_candidate_cutoff = 100;
  int hics_mc_iterations = 30;
  int max_results = 100;

  // Detector knobs.
  int iforest_trees = 50;
  int iforest_repetitions = 2;

  // Scoring-service knobs (`--threads` / `--no-cache` on the bench CLIs).
  int num_threads = 1;         ///< ThreadPool size; 0 = hardware concurrency.
  bool cache_scores = true;    ///< Route scoring through the ScoringService
                               ///< cache (false = recompute every request).
  std::size_t cache_max_entries = 1 << 16;       ///< Per-cache entry budget.
  std::size_t cache_max_bytes = 256ull << 20;    ///< Per-cache byte budget.

  std::uint64_t seed = 7;

  /// The scaled-down single-core profile (default).
  static TestbedProfile Quick();
  /// The paper-faithful profile (§3.1 hyper-parameters, full datasets).
  static TestbedProfile Paper();
};

/// Builds a detector per the profile: LOF(k=15) / FastABOD(k=10) /
/// iForest(profile trees & repetitions, subsample 256).
std::unique_ptr<Detector> MakeTestbedDetector(DetectorKind kind,
                                              const TestbedProfile& profile);

/// Scoring-service options matching the profile's cache knobs.
ScoringServiceOptions MakeServiceOptions(const TestbedProfile& profile);

/// Builds a point explainer per the profile (Beam_FX / RefOut with Welch).
std::unique_ptr<PointExplainer> MakeTestbedPointExplainer(
    PointExplainerKind kind, const TestbedProfile& profile);

/// Builds a summarizer per the profile (LookOut / HiCS_FX with Welch).
std::unique_ptr<Summarizer> MakeTestbedSummarizer(
    SummarizerKind kind, const TestbedProfile& profile);

/// One benchmark dataset with everything the pipelines need.
struct TestbedDataset {
  SyntheticDataset data;
  /// True for the HiCS-style splits (subspace outliers), false for the
  /// real-dataset stand-ins (full-space outliers).
  bool subspace_outliers = true;
  /// Table 1's "% Relevant Feature Ratio" (max explanation dim over the
  /// dataset dimensionality for subspace outliers, 1.0 for full space).
  double relevant_feature_ratio = 1.0;
  /// Explanation dimensionalities evaluated on this dataset.
  std::vector<int> explanation_dims;
};

/// The synthetic half of the testbed: the HiCS splits within the profile's
/// dimensionality budget, ground truth planted by the generator.
std::vector<TestbedDataset> BuildSyntheticSuite(const TestbedProfile& profile);

/// The real-dataset stand-ins, ground truth built by the paper's exhaustive
/// LOF search (2d..4d). Pass a pool to parallelize the search.
std::vector<TestbedDataset> BuildRealSuite(const TestbedProfile& profile,
                                           ThreadPool* pool = nullptr);

}  // namespace subex

#endif  // SUBEX_CORE_TESTBED_H_
