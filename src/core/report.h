#ifndef SUBEX_CORE_REPORT_H_
#define SUBEX_CORE_REPORT_H_

#include <string>
#include <vector>

namespace subex {

/// Minimal fixed-width ASCII table builder for the benchmark binaries that
/// regenerate the paper's tables and figures on stdout.
class TextTable {
 public:
  /// Sets the column headers (defines the column count).
  void SetHeader(std::vector<std::string> header);

  /// Appends a row; its width must match the header.
  void AddRow(std::vector<std::string> row);

  /// Renders with aligned columns, a header separator, and one row per
  /// line.
  std::string Render() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `decimals` fraction digits ("0.83").
std::string FormatDouble(double value, int decimals = 2);

/// Formats seconds adaptively ("870ms", "12.3s").
std::string FormatSeconds(double seconds);

}  // namespace subex

#endif  // SUBEX_CORE_REPORT_H_
