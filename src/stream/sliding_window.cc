#include "stream/sliding_window.h"

#include "common/check.h"

namespace subex {

SlidingWindow::SlidingWindow(std::size_t capacity, std::size_t num_features)
    : capacity_(capacity), num_features_(num_features) {
  SUBEX_CHECK(capacity >= 2);
  SUBEX_CHECK(num_features >= 1);
}

std::int64_t SlidingWindow::Push(std::span<const double> row) {
  SUBEX_CHECK_MSG(row.size() == num_features_, "stream width mismatch");
  if (rows_.size() == capacity_) rows_.pop_front();
  rows_.emplace_back(row.begin(), row.end());
  return next_id_++;
}

std::int64_t SlidingWindow::StreamId(std::size_t index) const {
  SUBEX_CHECK(index < rows_.size());
  return next_id_ - static_cast<std::int64_t>(rows_.size()) +
         static_cast<std::int64_t>(index);
}

int SlidingWindow::WindowIndex(std::int64_t id) const {
  const std::int64_t oldest =
      next_id_ - static_cast<std::int64_t>(rows_.size());
  if (id < oldest || id >= next_id_) return -1;
  return static_cast<int>(id - oldest);
}

void SlidingWindow::Restore(std::vector<std::vector<double>> rows,
                            std::int64_t next_id) {
  SUBEX_CHECK(rows.size() <= capacity_);
  SUBEX_CHECK(next_id >= static_cast<std::int64_t>(rows.size()));
  for (const auto& row : rows) {
    SUBEX_CHECK_MSG(row.size() == num_features_, "stream width mismatch");
  }
  rows_.assign(std::make_move_iterator(rows.begin()),
               std::make_move_iterator(rows.end()));
  next_id_ = next_id;
}

Dataset SlidingWindow::Snapshot() const {
  SUBEX_CHECK_MSG(!rows_.empty(), "empty window");
  Matrix m(rows_.size(), num_features_);
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    for (std::size_t f = 0; f < num_features_; ++f) {
      m(r, f) = rows_[r][f];
    }
  }
  return Dataset(std::move(m));
}

}  // namespace subex
