#ifndef SUBEX_STREAM_DRIFTING_STREAM_H_
#define SUBEX_STREAM_DRIFTING_STREAM_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "data/generators.h"

namespace subex {

/// One batch of a drifting stream: the points, which of them are planted
/// outliers, and the subspaces that explain them under the *current*
/// concept.
struct StreamChunk {
  /// Index of the first point of this chunk in the stream.
  std::int64_t start_id = 0;
  Matrix points;
  /// Chunk-relative indices of planted outliers.
  std::vector<int> outlier_indices;
  /// Chunk-relative ground truth (relevant subspaces per outlier).
  GroundTruth ground_truth;
  /// Concept epoch (increments at every drift).
  int concept_epoch = 0;
};

/// Configuration of the drifting subspace-outlier stream.
struct DriftingStreamConfig {
  int chunk_size = 200;
  /// Outliers planted per chunk.
  int outliers_per_chunk = 5;
  /// A concept drift (re-randomized subspace structure over the same
  /// features) happens every this many chunks; 0 = never.
  int drift_every_chunks = 5;
  /// Relevant-subspace sizes of each concept (features = their sum).
  std::vector<int> subspace_dims = {2, 3};
  std::uint64_t seed = 42;
};

/// Generates an endless stream of chunks with subspace outliers whose
/// explaining subspaces change at concept drifts — the §6 scenario: the
/// data keeps coming from "the same generative process" between drifts,
/// yet explanations are descriptive and must be recomputed per batch, and
/// become *wrong* after a drift.
///
/// Implementation: each concept is a fresh `GenerateHicsDataset` structure
/// over the same feature space; chunks sample from the concept's
/// generator.
class DriftingStreamGenerator {
 public:
  explicit DriftingStreamGenerator(const DriftingStreamConfig& config);

  /// Produces the next chunk (advances the stream).
  StreamChunk Next();

  /// Number of features of every chunk.
  int num_features() const { return num_features_; }
  /// Current concept's relevant subspaces.
  const std::vector<Subspace>& current_relevant_subspaces() const {
    return relevant_;
  }

 private:
  void StartNewConcept();

  DriftingStreamConfig config_;
  int num_features_ = 0;
  int chunks_emitted_ = 0;
  int concept_epoch_ = -1;
  std::uint64_t concept_seed_ = 0;
  std::vector<Subspace> relevant_;
  std::int64_t next_start_id_ = 0;
  std::unique_ptr<SyntheticDataset> epoch_;
};

}  // namespace subex

#endif  // SUBEX_STREAM_DRIFTING_STREAM_H_
