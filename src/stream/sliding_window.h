#ifndef SUBEX_STREAM_SLIDING_WINDOW_H_
#define SUBEX_STREAM_SLIDING_WINDOW_H_

#include <cstdint>
#include <deque>
#include <span>
#include <vector>

#include "data/dataset.h"

namespace subex {

/// Fixed-capacity sliding window over a point stream.
///
/// The substrate for the stream-processing extension the paper's §6 calls
/// for: detectors and explainers stay batch algorithms, and the window
/// materializes the "current batch" they run on. Points carry stable
/// stream ids so window-relative results can be mapped back to the stream.
class SlidingWindow {
 public:
  /// `capacity`: maximum points retained; `num_features`: stream width.
  SlidingWindow(std::size_t capacity, std::size_t num_features);

  /// Appends one point (length must equal `num_features`), evicting the
  /// oldest point when full. Returns the point's stream id.
  std::int64_t Push(std::span<const double> row);

  /// Number of points currently held.
  std::size_t size() const { return rows_.size(); }
  /// True when the window has evicted at least one point.
  bool saturated() const { return next_id_ > static_cast<std::int64_t>(capacity_); }
  std::size_t capacity() const { return capacity_; }
  std::size_t num_features() const { return num_features_; }

  /// Stream id of the window row `index` (0 = oldest retained).
  std::int64_t StreamId(std::size_t index) const;

  /// Window-row index of stream id `id`, or -1 if it was evicted / never
  /// pushed.
  int WindowIndex(std::int64_t id) const;

  /// Materializes the window as a Dataset (rows ordered oldest-first,
  /// no points of interest set). O(size * num_features) copy.
  Dataset Snapshot() const;

  /// Replaces the retained points wholesale (crash recovery): `rows`
  /// become the window oldest-first and `next_id` the id of the next
  /// pushed point. Requires `rows.size() <= capacity()` and every row to
  /// be `num_features()` wide.
  void Restore(std::vector<std::vector<double>> rows, std::int64_t next_id);

 private:
  std::size_t capacity_;
  std::size_t num_features_;
  std::deque<std::vector<double>> rows_;
  std::int64_t next_id_ = 0;  // Id of the next pushed point.
};

}  // namespace subex

#endif  // SUBEX_STREAM_SLIDING_WINDOW_H_
