#include "stream/streaming_pipeline.h"

#include <chrono>

#include "common/check.h"
#include "core/metrics.h"

namespace subex {

std::vector<StreamingChunkResult> RunStreamingSummarization(
    DriftingStreamGenerator& stream, const Detector& detector,
    const Summarizer& summarizer, int num_chunks, int explanation_dim) {
  SUBEX_CHECK(num_chunks >= 1);
  SUBEX_CHECK(explanation_dim >= 2);

  std::vector<StreamingChunkResult> results;
  results.reserve(num_chunks);
  RankedSubspaces stale_summary;
  bool have_stale = false;

  for (int c = 0; c < num_chunks; ++c) {
    const StreamChunk chunk = stream.Next();
    StreamingChunkResult result;
    result.chunk_index = c;
    result.concept_epoch = chunk.concept_epoch;

    const Dataset data(chunk.points, chunk.outlier_indices);
    const GroundTruth at_dim =
        chunk.ground_truth.FilterByDimension(explanation_dim);
    const std::vector<int> points =
        chunk.ground_truth.PointsExplainedAtDimension(explanation_dim);
    result.num_points = static_cast<int>(points.size());

    if (!chunk.outlier_indices.empty()) {
      const auto start = std::chrono::steady_clock::now();
      const RankedSubspaces fresh = summarizer.Summarize(
          data, detector, chunk.outlier_indices, explanation_dim);
      result.seconds_recompute =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count();
      if (!have_stale) {
        stale_summary = fresh;
        have_stale = true;
      }
      ExplanationScorer fresh_scorer;
      ExplanationScorer stale_scorer;
      for (int p : points) {
        fresh_scorer.AddPoint(fresh.subspaces, at_dim.RelevantFor(p));
        stale_scorer.AddPoint(stale_summary.subspaces, at_dim.RelevantFor(p));
      }
      result.map_recomputed = fresh_scorer.MeanAveragePrecision();
      result.map_stale = stale_scorer.MeanAveragePrecision();
    }
    results.push_back(result);
  }
  return results;
}

}  // namespace subex
