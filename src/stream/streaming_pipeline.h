#ifndef SUBEX_STREAM_STREAMING_PIPELINE_H_
#define SUBEX_STREAM_STREAMING_PIPELINE_H_

#include <vector>

#include "detect/detector.h"
#include "explain/summarizer.h"
#include "stream/drifting_stream.h"

namespace subex {

/// Per-chunk outcome of the streaming summarization experiment.
struct StreamingChunkResult {
  int chunk_index = 0;
  int concept_epoch = 0;
  /// MAP of a summary recomputed on this chunk.
  double map_recomputed = 0.0;
  /// MAP of the summary computed once on the first chunk and reused.
  double map_stale = 0.0;
  /// Points explained at the requested dimensionality in this chunk.
  int num_points = 0;
  double seconds_recompute = 0.0;
};

/// Runs the §6 stream experiment: for `num_chunks` chunks of a drifting
/// stream, summarize each chunk's outliers (a) freshly per chunk and
/// (b) with the summary frozen after the first chunk, and score both
/// against the chunk's ground truth at `explanation_dim`.
///
/// The paper's conclusion this demonstrates: subspace explanations are
/// *descriptive* — they describe the current batch's decision boundary and
/// must be re-executed for every new batch; a frozen summary decays to
/// uselessness at the first concept drift while the recomputed one
/// recovers.
std::vector<StreamingChunkResult> RunStreamingSummarization(
    DriftingStreamGenerator& stream, const Detector& detector,
    const Summarizer& summarizer, int num_chunks, int explanation_dim);

}  // namespace subex

#endif  // SUBEX_STREAM_STREAMING_PIPELINE_H_
