#include "stream/drifting_stream.h"

#include <algorithm>
#include <numeric>

#include "common/check.h"

namespace subex {
namespace {

// Chunks per concept buffer (how many chunks one generated dataset feeds).
int ChunksPerEpoch(const DriftingStreamConfig& config) {
  return config.drift_every_chunks > 0 ? config.drift_every_chunks : 8;
}

}  // namespace

DriftingStreamGenerator::DriftingStreamGenerator(
    const DriftingStreamConfig& config)
    : config_(config) {
  SUBEX_CHECK(config.chunk_size >= 50);
  SUBEX_CHECK(config.outliers_per_chunk >= 1);
  SUBEX_CHECK(!config.subspace_dims.empty());
  num_features_ = std::accumulate(config.subspace_dims.begin(),
                                  config.subspace_dims.end(), 0);
  concept_seed_ = config.seed;
  StartNewConcept();
}

void DriftingStreamGenerator::StartNewConcept() {
  ++concept_epoch_;
  concept_seed_ = concept_seed_ * 6364136223846793005ull + 1442695040888963407ull;
}

StreamChunk DriftingStreamGenerator::Next() {
  const int chunks_per_epoch = ChunksPerEpoch(config_);
  const int epoch_position = chunks_emitted_ % chunks_per_epoch;
  if (epoch_position == 0 && chunks_emitted_ > 0 &&
      config_.drift_every_chunks > 0) {
    StartNewConcept();
  }

  // Generate the epoch buffer once per concept; the concept structure AND
  // points are a pure function of the concept seed.
  if (epoch_ == nullptr || epoch_position == 0) {
    HicsGeneratorConfig generator_config;
    generator_config.num_points = config_.chunk_size * chunks_per_epoch;
    generator_config.subspace_dims = config_.subspace_dims;
    generator_config.outliers_per_subspace = std::max(
        1, static_cast<int>(config_.outliers_per_chunk) * chunks_per_epoch /
               static_cast<int>(config_.subspace_dims.size()));
    generator_config.seed = concept_seed_;
    epoch_ = std::make_unique<SyntheticDataset>(
        GenerateHicsDataset(generator_config));
    relevant_ = epoch_->relevant_subspaces;
  }
  const SyntheticDataset& epoch = *epoch_;

  // Slice this chunk out of the epoch buffer.
  StreamChunk chunk;
  chunk.start_id = next_start_id_;
  chunk.concept_epoch = concept_epoch_;
  const int begin = epoch_position * config_.chunk_size;
  const int end = begin + config_.chunk_size;
  std::vector<int> rows(config_.chunk_size);
  std::iota(rows.begin(), rows.end(), begin);
  chunk.points = epoch.dataset.matrix().SelectRows(rows);
  for (int p : epoch.dataset.outlier_indices()) {
    if (p < begin || p >= end) continue;
    const int local = p - begin;
    chunk.outlier_indices.push_back(local);
    for (const Subspace& s : epoch.ground_truth.RelevantFor(p)) {
      chunk.ground_truth.Add(local, s);
    }
  }

  ++chunks_emitted_;
  next_start_id_ += config_.chunk_size;
  return chunk;
}

}  // namespace subex
