#include "fault/fault.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/check.h"
#include "common/json.h"
#include "obs/metrics.h"
#include "obs/registry.h"

namespace subex {
namespace {

constexpr const char* kPointNames[kNumFaultPoints] = {
    "socket_read",    "socket_write", "socket_connect", "socket_accept",
    "columnar_pread", "columnar_mmap", "cache_admit",    "mem_reserve",
    "wal_append",     "wal_sync",
};

/// SplitMix64 — a full-period 64-bit mixer. Each (seed, point, evaluation
/// index) triple maps to one uniform deviate, so firing decisions are a
/// pure function of the seed and are independent of thread interleaving.
std::uint64_t Mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

double UnitUniform(std::uint64_t seed, FaultPoint point, std::uint64_t n) {
  const std::uint64_t h =
      Mix64(seed ^ Mix64(static_cast<std::uint64_t>(point) + 1) ^ Mix64(n));
  // Top 53 bits -> [0, 1).
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

const char* FaultPointName(FaultPoint point) {
  const auto index = static_cast<std::size_t>(point);
  SUBEX_CHECK(index < kNumFaultPoints);
  return kPointNames[index];
}

bool ParseFaultPoint(const std::string& name, FaultPoint* out) {
  for (std::size_t i = 0; i < kNumFaultPoints; ++i) {
    if (name == kPointNames[i]) {
      *out = static_cast<FaultPoint>(i);
      return true;
    }
  }
  return false;
}

const char* FaultActionName(FaultAction action) {
  switch (action) {
    case FaultAction::kFail:
      return "fail";
    case FaultAction::kEintr:
      return "eintr";
    case FaultAction::kShort:
      return "short";
  }
  return "fail";
}

bool ParseFaultAction(const std::string& name, FaultAction* out) {
  if (name == "fail") {
    *out = FaultAction::kFail;
    return true;
  }
  if (name == "eintr") {
    *out = FaultAction::kEintr;
    return true;
  }
  if (name == "short") {
    *out = FaultAction::kShort;
    return true;
  }
  return false;
}

std::string FaultStats::ToJson() const {
  JsonObject points_json;
  for (std::size_t i = 0; i < kNumFaultPoints; ++i) {
    const FaultPointStats& p = points[i];
    if (!p.armed && p.evaluations == 0 && p.injected == 0) continue;
    JsonObject entry;
    entry.Add("armed", p.armed)
        .Add("evaluations", p.evaluations)
        .Add("injected", p.injected);
    points_json.AddRaw(kPointNames[i], entry.Build());
  }
  bool any_armed = false;
  for (const FaultPointStats& p : points) any_armed = any_armed || p.armed;
  JsonObject out;
  out.Add("armed", any_armed)
      .Add("evaluations", evaluations)
      .Add("injected", injected)
      .AddRaw("points", points_json.Build());
  return out.Build();
}

FaultRegistry& FaultRegistry::Global() {
  static FaultRegistry* registry = new FaultRegistry();
  return *registry;
}

FaultRegistry::FaultRegistry() = default;

void FaultRegistry::Arm(FaultPoint point, const FaultRule& rule) {
  SUBEX_CHECK(point < FaultPoint::kPointCount);
  SUBEX_CHECK(rule.probability >= 0.0 && rule.probability <= 1.0);
  PointState& state = points_[static_cast<std::size_t>(point)];
  state.probability.store(rule.probability, std::memory_order_relaxed);
  state.after.store(rule.after, std::memory_order_relaxed);
  state.limit.store(rule.limit, std::memory_order_relaxed);
  state.action.store(static_cast<std::uint8_t>(rule.action),
                     std::memory_order_relaxed);
  state.evaluations.store(0, std::memory_order_relaxed);
  state.injected.store(0, std::memory_order_relaxed);
  // Release so an evaluator that observes `armed` also observes the rule.
  state.armed.store(true, std::memory_order_release);
  any_armed_.store(true, std::memory_order_release);
}

void FaultRegistry::Disarm(FaultPoint point) {
  SUBEX_CHECK(point < FaultPoint::kPointCount);
  points_[static_cast<std::size_t>(point)].armed.store(
      false, std::memory_order_release);
  RecomputeArmedFlag();
}

void FaultRegistry::DisarmAll() {
  for (PointState& state : points_) {
    state.armed.store(false, std::memory_order_release);
    state.evaluations.store(0, std::memory_order_relaxed);
    state.injected.store(0, std::memory_order_relaxed);
  }
  any_armed_.store(false, std::memory_order_release);
  total_evaluations_.store(0, std::memory_order_relaxed);
  total_injected_.store(0, std::memory_order_relaxed);
}

void FaultRegistry::SetSeed(std::uint64_t seed) {
  seed_.store(seed, std::memory_order_relaxed);
}

void FaultRegistry::RecomputeArmedFlag() {
  bool any = false;
  for (const PointState& state : points_) {
    any = any || state.armed.load(std::memory_order_relaxed);
  }
  any_armed_.store(any, std::memory_order_release);
}

bool FaultRegistry::EvaluateSlow(FaultPoint point, FaultAction* action) {
  PointState& state = points_[static_cast<std::size_t>(point)];
  if (!state.armed.load(std::memory_order_acquire)) return false;
  total_evaluations_.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t n =
      state.evaluations.fetch_add(1, std::memory_order_relaxed);
  if (n < state.after.load(std::memory_order_relaxed)) return false;
  const double p = state.probability.load(std::memory_order_relaxed);
  if (p < 1.0 &&
      UnitUniform(seed_.load(std::memory_order_relaxed), point, n) >= p) {
    return false;
  }
  const std::uint64_t limit = state.limit.load(std::memory_order_relaxed);
  if (limit > 0) {
    // Claim one of the `limit` injections or decline; CAS keeps the cap
    // exact under concurrent evaluations.
    std::uint64_t injected = state.injected.load(std::memory_order_relaxed);
    do {
      if (injected >= limit) return false;
    } while (!state.injected.compare_exchange_weak(
        injected, injected + 1, std::memory_order_relaxed));
  } else {
    state.injected.fetch_add(1, std::memory_order_relaxed);
  }
  total_injected_.fetch_add(1, std::memory_order_relaxed);
  MetricsRegistry::Global().GetCounter("fault.injected").Increment();
  if (action != nullptr) {
    *action = static_cast<FaultAction>(
        state.action.load(std::memory_order_relaxed));
  }
  return true;
}

bool FaultRegistry::ConfigureFromSpec(const std::string& spec,
                                      std::string* error) {
  const auto fail = [&](const std::string& message) {
    if (error != nullptr) *error = message;
    return false;
  };
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t end = spec.find(';', pos);
    if (end == std::string::npos) end = spec.size();
    const std::string entry = spec.substr(pos, end - pos);
    pos = end + 1;
    if (entry.empty()) continue;

    const std::size_t eq = entry.find('=');
    if (eq == std::string::npos) {
      return fail("fault spec entry missing '=': " + entry);
    }
    FaultPoint point;
    if (!ParseFaultPoint(entry.substr(0, eq), &point)) {
      return fail("unknown fault point: " + entry.substr(0, eq));
    }
    // probability[:after=N][:limit=N][:action=...]
    const std::string rest = entry.substr(eq + 1);
    std::size_t field_pos = 0;
    FaultRule rule;
    bool first = true;
    while (field_pos <= rest.size()) {
      std::size_t field_end = rest.find(':', field_pos);
      if (field_end == std::string::npos) field_end = rest.size();
      const std::string field = rest.substr(field_pos, field_end - field_pos);
      field_pos = field_end + 1;
      if (first) {
        first = false;
        char* parse_end = nullptr;
        rule.probability = std::strtod(field.c_str(), &parse_end);
        if (field.empty() || parse_end == nullptr || *parse_end != '\0' ||
            rule.probability < 0.0 || rule.probability > 1.0) {
          return fail("bad fault probability: " + field);
        }
        continue;
      }
      const std::size_t field_eq = field.find('=');
      if (field_eq == std::string::npos) {
        return fail("bad fault rule field: " + field);
      }
      const std::string key = field.substr(0, field_eq);
      const std::string value = field.substr(field_eq + 1);
      if (key == "after" || key == "limit") {
        char* parse_end = nullptr;
        const unsigned long long parsed =
            std::strtoull(value.c_str(), &parse_end, 10);
        if (value.empty() || parse_end == nullptr || *parse_end != '\0') {
          return fail("bad fault rule count: " + field);
        }
        (key == "after" ? rule.after : rule.limit) = parsed;
      } else if (key == "action") {
        if (!ParseFaultAction(value, &rule.action)) {
          return fail("bad fault action: " + value);
        }
      } else {
        return fail("unknown fault rule field: " + key);
      }
    }
    Arm(point, rule);
  }
  return true;
}

void FaultRegistry::ConfigureFromEnv() {
  if (const char* seed_env = std::getenv("SUBEX_FAULT_SEED")) {
    char* parse_end = nullptr;
    const unsigned long long seed = std::strtoull(seed_env, &parse_end, 10);
    SUBEX_CHECK_MSG(parse_end != nullptr && *parse_end == '\0',
                    "bad SUBEX_FAULT_SEED");
    SetSeed(seed);
  }
  if (const char* spec = std::getenv("SUBEX_FAULT_SPEC")) {
    std::string error;
    if (!ConfigureFromSpec(spec, &error)) {
      std::fprintf(stderr, "SUBEX_FAULT_SPEC: %s\n", error.c_str());
      std::abort();
    }
  }
}

FaultStats FaultRegistry::stats() const {
  FaultStats out;
  out.evaluations = total_evaluations_.load(std::memory_order_relaxed);
  out.injected = total_injected_.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < kNumFaultPoints; ++i) {
    const PointState& state = points_[i];
    out.points[i].armed = state.armed.load(std::memory_order_relaxed);
    out.points[i].evaluations =
        state.evaluations.load(std::memory_order_relaxed);
    out.points[i].injected = state.injected.load(std::memory_order_relaxed);
  }
  return out;
}

}  // namespace subex
