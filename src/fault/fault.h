#ifndef SUBEX_FAULT_FAULT_H_
#define SUBEX_FAULT_FAULT_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

namespace subex {

/// \file
/// Deterministic, seeded fault injection.
///
/// Production code wraps its fallible syscalls and admission decisions in
/// named *injection points* (`SUBEX_FAULT(...)`). Each point is disarmed by
/// default: the wrapper is a single relaxed atomic load of a process-wide
/// "anything armed?" flag, and under `-DSUBEX_FAULT_DISABLED=ON` it compiles
/// to the constant `false` — a branch-free no-op.
///
/// Tests and the chaos harness arm points with per-point rules — fire with
/// probability p, only after the first N evaluations, at most M times — via
/// the `FaultRegistry` API, the `FaultControl` RAII test hook, or the
/// `SUBEX_FAULT_SPEC`/`SUBEX_FAULT_SEED` environment variables. Whether a
/// given evaluation fires is a pure function of (seed, point, evaluation
/// index), so a chaos run is replayable from its seed alone.

/// Every named injection point. Names (see `FaultPointName`) are the
/// identifiers used in `SUBEX_FAULT_SPEC` and in metrics.
enum class FaultPoint : std::uint8_t {
  kSocketRead = 0,   ///< `recv` in client/server read paths.
  kSocketWrite,      ///< `send` in client/server write paths.
  kSocketConnect,    ///< `ExplainClient`'s TCP connect.
  kSocketAccept,     ///< The server's `accept` loop.
  kColumnarPread,    ///< `pread` chunk loads in `ColumnarFile`.
  kColumnarMmap,     ///< `mmap` chunk maps in `ColumnarFile` (falls back).
  kCacheAdmit,       ///< `ScoreCache::Put` admission.
  kMemReserve,       ///< `EvictionManager::Reserve` (non-overcommit).
  kWalAppend,        ///< Online WAL record append.
  kWalSync,          ///< Online WAL/checkpoint fsync.
  kPointCount,       ///< Sentinel — not a point.
};

inline constexpr std::size_t kNumFaultPoints =
    static_cast<std::size_t>(FaultPoint::kPointCount);

/// Stable lowercase name, e.g. `socket_read`, `wal_append`.
const char* FaultPointName(FaultPoint point);

/// Reverse of `FaultPointName`. False when `name` matches no point.
bool ParseFaultPoint(const std::string& name, FaultPoint* out);

/// What an armed point does when it fires. Sites interpret the action in
/// their own terms; actions that make no sense at a site (e.g. `kShort` on
/// an admission decision) degrade to `kFail`.
enum class FaultAction : std::uint8_t {
  kFail = 0,  ///< Hard failure: syscall-like error (EIO) / admission denial.
  kEintr,     ///< Transient interruption — a correct site retries.
  kShort,     ///< Partial transfer (1 byte) — a correct site resumes.
};

const char* FaultActionName(FaultAction action);
bool ParseFaultAction(const std::string& name, FaultAction* out);

/// One point's trigger rule.
struct FaultRule {
  /// Chance of firing per evaluation once past `after`, in [0, 1].
  double probability = 1.0;
  /// The first `after` evaluations of the point never fire.
  std::uint64_t after = 0;
  /// Total injections allowed; 0 = unlimited. `limit=1` + `after=N` is the
  /// classic "fail exactly once, on the (N+1)-th call" rule.
  std::uint64_t limit = 0;
  FaultAction action = FaultAction::kFail;
};

/// Per-point counters plus process totals, for `kStats` and tests.
struct FaultPointStats {
  std::uint64_t evaluations = 0;
  std::uint64_t injected = 0;
  bool armed = false;
};

struct FaultStats {
  std::uint64_t evaluations = 0;  ///< Evaluations of *armed* points.
  std::uint64_t injected = 0;
  std::array<FaultPointStats, kNumFaultPoints> points;

  /// `{"armed":true,"injected":N,"evaluations":N,"points":{name:{...}}}`
  /// (only points with activity or armed rules are listed).
  std::string ToJson() const;
};

/// Process-wide registry of injection points. All methods are thread-safe;
/// `Evaluate` on a fully-disarmed registry is one relaxed atomic load.
class FaultRegistry {
 public:
  static FaultRegistry& Global();

  FaultRegistry();

  /// Arms `point` with `rule` (replacing any previous rule) and resets the
  /// point's evaluation/injection counters so `after`/`limit` are relative
  /// to the arming.
  void Arm(FaultPoint point, const FaultRule& rule);
  void Disarm(FaultPoint point);
  /// Disarms every point and clears all counters.
  void DisarmAll();

  /// Seed of the deterministic firing decisions. Changing the seed does not
  /// reset counters.
  void SetSeed(std::uint64_t seed);
  std::uint64_t seed() const { return seed_.load(std::memory_order_relaxed); }

  /// Parses a spec like
  /// `socket_read=0.01;wal_append=1:after=10:limit=1;socket_write=0.05:action=short`
  /// and arms the listed points. Each `;`-separated entry is
  /// `name=probability[:after=N][:limit=N][:action=fail|eintr|short]`.
  /// Returns false (and sets `*error`) on the first malformed entry;
  /// entries before it stay armed.
  bool ConfigureFromSpec(const std::string& spec, std::string* error = nullptr);

  /// Reads `SUBEX_FAULT_SEED` (u64) and `SUBEX_FAULT_SPEC` (spec grammar
  /// above). Malformed specs abort — a chaos run silently running without
  /// its faults would be a false green.
  void ConfigureFromEnv();

  /// True (with `*action` set) when `point` fires on this evaluation.
  /// Disarmed fast path: one relaxed load, no counters touched.
  bool Evaluate(FaultPoint point, FaultAction* action = nullptr) {
    if (!any_armed_.load(std::memory_order_relaxed)) return false;
    return EvaluateSlow(point, action);
  }

  bool any_armed() const {
    return any_armed_.load(std::memory_order_relaxed);
  }

  FaultStats stats() const;

 private:
  struct PointState {
    std::atomic<bool> armed{false};
    std::atomic<double> probability{1.0};
    std::atomic<std::uint64_t> after{0};
    std::atomic<std::uint64_t> limit{0};
    std::atomic<std::uint8_t> action{0};
    std::atomic<std::uint64_t> evaluations{0};
    std::atomic<std::uint64_t> injected{0};
  };

  bool EvaluateSlow(FaultPoint point, FaultAction* action);
  void RecomputeArmedFlag();

  std::array<PointState, kNumFaultPoints> points_;
  std::atomic<bool> any_armed_{false};
  std::atomic<std::uint64_t> seed_{0x5u};
  std::atomic<std::uint64_t> total_evaluations_{0};
  std::atomic<std::uint64_t> total_injected_{0};
};

/// RAII test hook: arms points on a scope's entry and guarantees the global
/// registry is fully disarmed (and counters cleared) on exit, so a failing
/// EXPECT can't leak armed faults into the next test.
class FaultControl {
 public:
  explicit FaultControl(std::uint64_t seed = 0x5u) {
    FaultRegistry::Global().DisarmAll();
    FaultRegistry::Global().SetSeed(seed);
  }
  ~FaultControl() { FaultRegistry::Global().DisarmAll(); }

  FaultControl(const FaultControl&) = delete;
  FaultControl& operator=(const FaultControl&) = delete;

  void Arm(FaultPoint point, const FaultRule& rule) {
    FaultRegistry::Global().Arm(point, rule);
  }
  void Disarm(FaultPoint point) { FaultRegistry::Global().Disarm(point); }
};

}  // namespace subex

/// The injection-point wrapper production code uses. Yields `false`
/// (optionally setting `*action_out`) unless the point is armed and fires.
/// Compiled out entirely under SUBEX_FAULT_DISABLED.
#if defined(SUBEX_FAULT_DISABLED)
#define SUBEX_FAULT(point, action_out) false
#else
#define SUBEX_FAULT(point, action_out) \
  (::subex::FaultRegistry::Global().Evaluate((point), (action_out)))
#endif

#endif  // SUBEX_FAULT_FAULT_H_
