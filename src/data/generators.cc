#include "data/generators.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <numeric>

#include "common/check.h"
#include "common/rng.h"

namespace subex {
namespace {

double Clip01(double v) { return std::min(1.0, std::max(0.0, v)); }

// One relevant subspace of a HiCS-style dataset, modelled as a
// *non-uniformly weighted even-parity atom mixture*.
//
// Each of the subspace's m coordinates has two well-separated levels; an
// "atom" is a level pattern with even parity (2^(m-1) atoms), and inliers
// are drawn from the atoms with strongly non-uniform weights. This single
// construction delivers every structural property §3.2 attributes to the
// HiCS datasets:
//  * Correlated features: under non-uniform weights the coordinates are
//    pairwise (and higher-order) statistically dependent, giving HiCS a
//    contrast signal at every dimensionality from 2 up to m.
//  * Planted outliers sit on ODD-parity patterns (the dominant atom with
//    one coordinate flipped): a jointly empty cell at a whole level-gap
//    from every inlier atom, so all three detectors flag them in the
//    subspace and in its augmentations (property iv).
//  * Every proper projection of an odd-parity pattern coincides with the
//    projection of some even-parity atom, so the outlier is mixed with
//    inliers in EVERY lower-dimensional projection (property v) -- and no
//    partial subspace padded with unrelated features can compete with the
//    true subspace in an explainer's ranking.
struct SubspaceModel {
  std::vector<FeatureId> features;
  // atom_patterns[a][j] in {0, 1}: level index of atom a at coordinate j.
  std::vector<std::vector<int>> atom_patterns;
  std::vector<double> atom_weights;  // Sums to 1; atom 0 is the dominant.
  // levels[j][b]: the value of level b of coordinate j.
  std::vector<std::array<double, 2>> levels;
  double atom_stddev = 0.045;

  int dim() const { return static_cast<int>(features.size()); }
  int num_atoms() const { return static_cast<int>(atom_patterns.size()); }

  // Writes pattern coordinates + noise into `data` row `p`.
  void Emit(std::span<const int> pattern, int p, Matrix& data,
            Rng& rng) const {
    for (int j = 0; j < dim(); ++j) {
      data(p, features[j]) =
          Clip01(levels[j][pattern[j]] + rng.Gaussian(0.0, atom_stddev));
    }
  }
};

SubspaceModel MakeSubspaceModel(std::vector<FeatureId> features,
                                double noise_stddev, double min_offset,
                                Rng& rng) {
  SubspaceModel model;
  model.features = std::move(features);
  model.atom_stddev = std::max(noise_stddev, 0.045);
  const int m = model.dim();
  SUBEX_CHECK_MSG(min_offset <= 0.45,
                  "level gap cannot honour min_outlier_offset");

  model.levels.resize(m);
  for (int j = 0; j < m; ++j) {
    const double lo = rng.Uniform(0.15, 0.3);
    model.levels[j] = {lo, lo + rng.Uniform(0.45, 0.6)};
  }

  // All even-parity patterns; a random one becomes the dominant atom.
  for (int mask = 0; mask < (1 << m); ++mask) {
    if (__builtin_popcount(static_cast<unsigned>(mask)) % 2 != 0) continue;
    std::vector<int> pattern(m);
    for (int j = 0; j < m; ++j) pattern[j] = (mask >> j) & 1;
    model.atom_patterns.push_back(std::move(pattern));
  }
  const std::size_t dominant = rng.UniformIndex(model.atom_patterns.size());
  std::swap(model.atom_patterns[0], model.atom_patterns[dominant]);

  // Strongly non-uniform weights: the skew is what makes the coordinates
  // dependent (uniform parity weights would be pairwise independent and
  // carry no HiCS contrast).
  model.atom_weights.resize(model.num_atoms());
  model.atom_weights[0] = rng.Uniform(0.35, 0.5);
  double rest = 0.0;
  for (int a = 1; a < model.num_atoms(); ++a) {
    model.atom_weights[a] = rng.Uniform(0.4, 1.6);
    rest += model.atom_weights[a];
  }
  for (int a = 1; a < model.num_atoms(); ++a) {
    model.atom_weights[a] *= (1.0 - model.atom_weights[0]) / rest;
  }
  return model;
}

// Fills the columns of `model.features` for every point with inlier
// structure; returns each point's atom id.
struct InlierAssignment {
  std::vector<int> atoms;
};

InlierAssignment FillInliers(const SubspaceModel& model, Matrix& data,
                             Rng& rng) {
  const std::size_t n = data.rows();
  InlierAssignment assignment;
  assignment.atoms.assign(n, 0);
  for (std::size_t p = 0; p < n; ++p) {
    double u = rng.Uniform();
    int atom = 0;
    while (atom + 1 < model.num_atoms() && u > model.atom_weights[atom]) {
      u -= model.atom_weights[atom];
      ++atom;
    }
    assignment.atoms[p] = atom;
    model.Emit(model.atom_patterns[atom], static_cast<int>(p), data, rng);
  }
  return assignment;
}

// Overwrites point `p`'s coordinates in `model`'s features with an
// outlier: the dominant atom's pattern with one random coordinate flipped
// -- an odd-parity cell, jointly empty yet populated in every projection.
// The flip coordinate cycles deterministically through the subspace per
// planted outlier (`ordinal`) so a subspace's five outliers spread over
// different deviation directions.
void PlantOutlier(const SubspaceModel& model,
                  const InlierAssignment& assignment,
                  const std::vector<int>& inlier_pool, int p,
                  double min_offset, int ordinal, Matrix& data, Rng& rng) {
  (void)min_offset;  // Guaranteed by the level-gap construction.
  (void)assignment;
  (void)inlier_pool;
  std::vector<int> pattern = model.atom_patterns[0];
  const int flip = ordinal % model.dim();
  pattern[flip] = 1 - pattern[flip];
  model.Emit(pattern, p, data, rng);
}

std::vector<int> DrawOutlierIndices(int num_points, int count,
                                    std::vector<int>& available, Rng& rng) {
  SUBEX_CHECK(static_cast<int>(available.size()) >= count);
  (void)num_points;
  std::vector<int> chosen;
  chosen.reserve(count);
  for (int i = 0; i < count; ++i) {
    const std::size_t pick = rng.UniformIndex(available.size());
    chosen.push_back(available[pick]);
    available[pick] = available.back();
    available.pop_back();
  }
  return chosen;
}

}  // namespace

SyntheticDataset GenerateHicsDataset(const HicsGeneratorConfig& config) {
  SUBEX_CHECK(config.num_points > 10);
  SUBEX_CHECK(!config.subspace_dims.empty());
  SUBEX_CHECK(config.outliers_per_subspace >= 1);
  for (int d : config.subspace_dims) SUBEX_CHECK(d >= 2 && d <= 5);

  Rng rng(config.seed);
  const int num_features =
      std::accumulate(config.subspace_dims.begin(), config.subspace_dims.end(), 0);
  const int num_subspaces = static_cast<int>(config.subspace_dims.size());
  const int total_slots = num_subspaces * config.outliers_per_subspace;
  SUBEX_CHECK(config.num_shared_outliers >= 0 &&
              config.num_shared_outliers <= total_slots / 2);

  Matrix data(config.num_points, num_features);

  // Partition the feature space into disjoint subspaces; shuffle the feature
  // assignment so relevant features are not trivially contiguous.
  std::vector<FeatureId> all_features(num_features);
  std::iota(all_features.begin(), all_features.end(), 0);
  rng.Shuffle(all_features);
  std::vector<SubspaceModel> models;
  models.reserve(num_subspaces);
  std::size_t offset = 0;
  for (int dim : config.subspace_dims) {
    std::vector<FeatureId> features(all_features.begin() + offset,
                                    all_features.begin() + offset + dim);
    offset += dim;
    models.push_back(MakeSubspaceModel(std::move(features),
                                       config.noise_stddev,
                                       config.min_outlier_offset, rng));
  }

  // Inlier structure everywhere first.
  std::vector<InlierAssignment> assignments;
  assignments.reserve(num_subspaces);
  for (const SubspaceModel& model : models) {
    assignments.push_back(FillInliers(model, data, rng));
  }

  // Decide which point indices become outliers. `available` holds points
  // that are outliers of no subspace yet.
  std::vector<int> available(config.num_points);
  std::iota(available.begin(), available.end(), 0);
  std::vector<std::vector<int>> per_subspace_outliers(num_subspaces);
  std::vector<int> all_outliers;

  // Fresh outliers per subspace.
  int shared_budget = config.num_shared_outliers;
  for (int s = 0; s < num_subspaces; ++s) {
    int fresh = config.outliers_per_subspace;
    int shared_here = 0;
    // Later subspaces reuse earlier outliers when shared slots remain.
    if (s > 0 && shared_budget > 0 && !all_outliers.empty()) {
      shared_here = std::min(shared_budget, 1);
      shared_budget -= shared_here;
      fresh -= shared_here;
    }
    per_subspace_outliers[s] = DrawOutlierIndices(
        config.num_points, fresh, available, rng);
    for (int i = 0; i < shared_here; ++i) {
      // Reuse an outlier of an earlier subspace: never one already assigned
      // to this subspace, and never one that is already shared (the paper's
      // outliers are explained by at most two subspaces).
      for (int attempt = 0; attempt < 64; ++attempt) {
        const int reused = all_outliers[rng.UniformIndex(all_outliers.size())];
        auto& mine = per_subspace_outliers[s];
        if (std::find(mine.begin(), mine.end(), reused) != mine.end()) {
          continue;
        }
        int memberships = 0;
        for (int s2 = 0; s2 < s; ++s2) {
          const auto& o2 = per_subspace_outliers[s2];
          memberships += std::count(o2.begin(), o2.end(), reused);
        }
        if (memberships >= 2) continue;
        mine.push_back(reused);
        break;
      }
    }
    for (int p : per_subspace_outliers[s]) {
      if (std::find(all_outliers.begin(), all_outliers.end(), p) ==
          all_outliers.end()) {
        all_outliers.push_back(p);
      }
    }
  }
  // If the shared budget could not be fully spent in one-per-subspace steps,
  // spend the remainder on the last subspaces.
  for (int s = num_subspaces - 1; s >= 1 && shared_budget > 0; --s) {
    for (int attempt = 0; attempt < 64 && shared_budget > 0; ++attempt) {
      const int reused = all_outliers[rng.UniformIndex(all_outliers.size())];
      auto& mine = per_subspace_outliers[s];
      if (std::find(mine.begin(), mine.end(), reused) == mine.end()) {
        // Swap: drop one fresh outlier of s back to inlier-hood and reuse.
        // (Keeps outliers-per-subspace constant while reducing the distinct
        // outlier count.)
        const int dropped = mine.front();
        mine.front() = reused;
        auto it = std::find(all_outliers.begin(), all_outliers.end(), dropped);
        // Only demote if the dropped point is an outlier of s alone.
        bool elsewhere = false;
        for (int s2 = 0; s2 < num_subspaces; ++s2) {
          if (s2 == s) continue;
          const auto& o2 = per_subspace_outliers[s2];
          if (std::find(o2.begin(), o2.end(), dropped) != o2.end()) {
            elsewhere = true;
            break;
          }
        }
        if (!elsewhere && it != all_outliers.end()) all_outliers.erase(it);
        --shared_budget;
      }
    }
  }

  // Plant the deviations.
  GroundTruth ground_truth;
  std::vector<Subspace> relevant;
  for (int s = 0; s < num_subspaces; ++s) {
    const SubspaceModel& model = models[s];
    const Subspace subspace(model.features);
    relevant.push_back(subspace);
    // Donor pool: inliers of this subspace.
    std::vector<int> donors;
    donors.reserve(config.num_points);
    for (int p = 0; p < config.num_points; ++p) {
      const auto& mine = per_subspace_outliers[s];
      if (std::find(mine.begin(), mine.end(), p) == mine.end()) {
        donors.push_back(p);
      }
    }
    int ordinal = 0;
    for (int p : per_subspace_outliers[s]) {
      PlantOutlier(model, assignments[s], donors, p,
                   config.min_outlier_offset, ordinal++, data, rng);
      ground_truth.Add(p, subspace);
    }
  }

  std::sort(all_outliers.begin(), all_outliers.end());
  SyntheticDataset result;
  result.name = "hics_" + std::to_string(num_features) + "d";
  result.dataset = Dataset(std::move(data), std::move(all_outliers));
  result.ground_truth = std::move(ground_truth);
  std::sort(relevant.begin(), relevant.end());
  result.relevant_subspaces = std::move(relevant);
  return result;
}

std::vector<SyntheticDataset> GeneratePaperHicsSuite(std::uint64_t seed,
                                                     double scale) {
  SUBEX_CHECK(scale > 0.0 && scale <= 1.0);
  // The five splits of Table 1 / Figure 8. Each dimension list partitions
  // the feature space exactly (sums to the dataset dimensionality) and the
  // shared-outlier counts realize the published contamination:
  //   14d: 4 subspaces, 20 outliers   (0 shared)
  //   23d: 7 subspaces, 34 outliers   (1 shared)
  //   39d: 12 subspaces, 59 outliers  (1 shared)
  //   70d: 22 subspaces, 100 outliers (10 shared)
  //  100d: 31 subspaces, 143 outliers (12 shared)
  struct Split {
    std::vector<int> dims;
    int shared;
  };
  const std::vector<Split> splits = {
      {{2, 3, 4, 5}, 0},
      {{2, 2, 3, 3, 4, 4, 5}, 1},
      {{2, 2, 2, 3, 3, 3, 3, 3, 4, 4, 5, 5}, 1},
      {{2, 2, 2, 2, 2, 2, 2, 3, 3, 3, 3, 3, 3, 3, 4, 4, 4, 4, 4, 5, 5, 5},
       10},
      {{2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 3, 3, 3, 3, 3, 3, 3, 3, 3,
        4, 4, 4, 4, 4, 4, 4, 5, 5, 5, 5, 5},
       12},
  };
  std::vector<SyntheticDataset> suite;
  suite.reserve(splits.size());
  std::uint64_t split_seed = seed;
  for (const Split& split : splits) {
    HicsGeneratorConfig config;
    config.num_points = std::max(50, static_cast<int>(1000 * scale));
    config.subspace_dims = split.dims;
    config.outliers_per_subspace = 5;
    config.num_shared_outliers = split.shared;
    config.seed = ++split_seed * 7919;
    suite.push_back(GenerateHicsDataset(config));
  }
  return suite;
}

SyntheticDataset GenerateFullSpaceDataset(
    const FullSpaceGeneratorConfig& config) {
  SUBEX_CHECK(config.num_points > config.num_outliers);
  SUBEX_CHECK(config.num_features >= 2);
  SUBEX_CHECK(config.num_clusters >= 1);
  SUBEX_CHECK(config.min_offset > 0 && config.max_offset >= config.min_offset);

  Rng rng(config.seed);
  Matrix data(config.num_points, config.num_features);

  // Cluster centers kept away from the domain border so outlier offsets in
  // either direction stay representable.
  std::vector<std::vector<double>> centers(config.num_clusters);
  for (auto& center : centers) {
    center.resize(config.num_features);
    for (double& c : center) c = rng.Uniform(0.3, 0.7);
  }

  std::vector<int> outliers = rng.SampleWithoutReplacement(
      config.num_points, config.num_outliers);

  for (int p = 0; p < config.num_points; ++p) {
    const auto& center = centers[rng.UniformIndex(centers.size())];
    const bool is_outlier =
        std::binary_search(outliers.begin(), outliers.end(), p);
    for (int f = 0; f < config.num_features; ++f) {
      double v = center[f] + rng.Gaussian(0.0, config.cluster_stddev);
      if (is_outlier) {
        // Deviate in *every* feature: visible in the full space and in any
        // projection (Table 1: 100% relevant feature ratio, visibility in
        // projections and augmentations).
        const double magnitude =
            rng.Uniform(config.min_offset, config.max_offset);
        v += (rng.Uniform() < 0.5 ? -1.0 : 1.0) * magnitude;
      }
      data(p, f) = Clip01(v);
    }
  }

  SyntheticDataset result;
  result.name = "fullspace_" + std::to_string(config.num_features) + "d";
  result.dataset = Dataset(std::move(data), std::move(outliers));
  return result;
}

std::vector<SyntheticDataset> GeneratePaperRealSuite(std::uint64_t seed,
                                                     double scale) {
  SUBEX_CHECK(scale > 0.0 && scale <= 1.0);
  struct Shape {
    const char* name;
    int points;
    int features;
    int outliers;
  };
  // Published shapes of the three real datasets (§3.2).
  const std::vector<Shape> shapes = {
      {"breast_like", 198, 31, 20},
      {"breast_diag_like", 569, 30, 57},
      {"electricity_like", 1205, 23, 121},
  };
  std::vector<SyntheticDataset> suite;
  suite.reserve(shapes.size());
  std::uint64_t shape_seed = seed;
  for (const Shape& shape : shapes) {
    FullSpaceGeneratorConfig config;
    config.num_points = std::max(40, static_cast<int>(shape.points * scale));
    config.num_features = shape.features;
    config.num_outliers =
        std::max(4, static_cast<int>(shape.outliers * scale));
    config.num_clusters = 3;
    config.seed = ++shape_seed * 104729;
    SyntheticDataset dataset = GenerateFullSpaceDataset(config);
    dataset.name = shape.name;
    suite.push_back(std::move(dataset));
  }
  return suite;
}

SyntheticDataset GenerateFigure1Dataset(std::uint64_t seed, int num_points) {
  SUBEX_CHECK(num_points >= 20);
  Rng rng(seed);
  Matrix data(num_points, 3);
  // Inliers: one latent drives all three features, so every feature pair is
  // correlated. o1 breaks the {F1,F2} relation; o2 breaks {F2,F3}.
  auto f0 = [](double t) { return 0.1 + 0.8 * t; };
  auto f1 = [](double t) { return 0.9 - 0.75 * t; };
  auto f2 = [](double t) { return 0.15 + 0.7 * t * t; };
  constexpr double kNoise = 0.02;
  for (int p = 0; p < num_points; ++p) {
    const double t = rng.Uniform();
    data(p, 0) = Clip01(f0(t) + rng.Gaussian(0.0, kNoise));
    data(p, 1) = Clip01(f1(t) + rng.Gaussian(0.0, kNoise));
    data(p, 2) = Clip01(f2(t) + rng.Gaussian(0.0, kNoise));
  }
  const int o1 = 0;
  const int o2 = 1;
  // o1: coordinates of two distant latents -> jointly off the {F0,F1} curve.
  data(o1, 0) = f0(0.15);
  data(o1, 1) = f1(0.85);
  data(o1, 2) = f2(0.85);
  // o2: consistent in {F0,F1}, broken in {F1,F2} (and {F0,F2}).
  data(o2, 0) = f0(0.2);
  data(o2, 1) = f1(0.2);
  data(o2, 2) = f2(0.9);

  SyntheticDataset result;
  result.name = "figure1_toy";
  result.dataset = Dataset(std::move(data), {o1, o2});
  result.ground_truth.Add(o1, Subspace({0, 1}));
  result.ground_truth.Add(o2, Subspace({1, 2}));
  result.relevant_subspaces = {Subspace({0, 1}), Subspace({1, 2})};
  return result;
}

}  // namespace subex
