#include "data/columnar.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <bit>
#include <charconv>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>
#include <utility>

#include "common/check.h"
#include "fault/fault.h"

namespace subex {

static_assert(std::endian::native == std::endian::little,
              "the .cols format stores raw little-endian doubles");
static_assert(sizeof(double) == 8, "the .cols format assumes 8-byte doubles");

namespace {

constexpr char kMagic[4] = {'S', 'X', 'C', 'L'};

std::size_t NumBlocks(std::size_t num_rows, std::size_t rows_per_chunk) {
  return (num_rows + rows_per_chunk - 1) / rows_per_chunk;
}

/// Byte offset of chunk (col, block) inside the payload: blocks are laid out
/// in order, each holding `num_cols` contiguous column runs of the block's
/// row count. Only the final block may be short, so every block before it
/// contributes exactly `rows_per_chunk * num_cols` doubles.
std::uint64_t ChunkOffset(std::uint64_t data_offset, std::size_t num_cols,
                          std::size_t rows_per_chunk, std::size_t col,
                          std::size_t block, std::size_t rows_in_block) {
  const std::uint64_t doubles_before_block =
      static_cast<std::uint64_t>(block) * rows_per_chunk * num_cols;
  const std::uint64_t doubles_before_col =
      static_cast<std::uint64_t>(col) * rows_in_block;
  return data_offset + 8 * (doubles_before_block + doubles_before_col);
}

}  // namespace

// ---------------------------------------------------------------------------
// ColumnarWriter

ColumnarWriter::ColumnarWriter(const std::string& path, std::size_t num_cols,
                               std::size_t rows_per_chunk)
    : path_(path), num_cols_(num_cols), rows_per_chunk_(rows_per_chunk) {
  if (num_cols_ == 0) {
    Fail("columnar dataset needs at least one column");
    return;
  }
  if (rows_per_chunk_ == 0) {
    Fail("rows_per_chunk must be positive");
    return;
  }
  file_ = std::fopen(path.c_str(), "wb");
  if (file_ == nullptr) {
    Fail("cannot open for writing: " + path);
    return;
  }
  block_.resize(rows_per_chunk_ * num_cols_);
  column_tmp_.resize(rows_per_chunk_);
  // Placeholder header; rewritten with real counts by Finish().
  ColumnarHeader header{};
  if (std::fwrite(&header, sizeof(header), 1, file_) != 1) {
    Fail("write failure: " + path);
  }
}

ColumnarWriter::~ColumnarWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

void ColumnarWriter::Fail(const std::string& message) {
  if (error_.empty()) error_ = message;
}

bool ColumnarWriter::AppendRow(std::span<const double> row) {
  if (!ok() || finished_) return false;
  if (row.size() != num_cols_) {
    Fail("row has " + std::to_string(row.size()) + " values, expected " +
         std::to_string(num_cols_));
    return false;
  }
  std::memcpy(block_.data() + block_rows_ * num_cols_, row.data(),
              num_cols_ * sizeof(double));
  ++block_rows_;
  ++rows_written_;
  if (block_rows_ == rows_per_chunk_) return FlushBlock();
  return true;
}

bool ColumnarWriter::FlushBlock() {
  if (block_rows_ == 0) return true;
  // Transpose the row-major staging buffer one column at a time so each
  // chunk lands as a contiguous run of doubles.
  for (std::size_t c = 0; c < num_cols_; ++c) {
    for (std::size_t r = 0; r < block_rows_; ++r) {
      column_tmp_[r] = block_[r * num_cols_ + c];
    }
    if (std::fwrite(column_tmp_.data(), sizeof(double), block_rows_, file_) !=
        block_rows_) {
      Fail("write failure: " + path_);
      return false;
    }
  }
  block_rows_ = 0;
  return true;
}

void ColumnarWriter::MarkOutlier(std::int64_t row_index) {
  outliers_.push_back(row_index);
}

bool ColumnarWriter::Finish() {
  if (!ok() || finished_) return ok() && finished_;
  if (!FlushBlock()) return false;
  finished_ = true;

  std::sort(outliers_.begin(), outliers_.end());
  outliers_.erase(std::unique(outliers_.begin(), outliers_.end()),
                  outliers_.end());
  for (std::int64_t id : outliers_) {
    if (id < 0 || static_cast<std::uint64_t>(id) >= rows_written_) {
      Fail("outlier index " + std::to_string(id) + " out of range");
      return false;
    }
  }

  const std::uint64_t payload_bytes =
      8ull * static_cast<std::uint64_t>(rows_written_) * num_cols_;
  ColumnarHeader header{};
  std::memcpy(header.magic, kMagic, sizeof(kMagic));
  header.version = kColumnarVersion;
  header.num_rows = rows_written_;
  header.num_cols = static_cast<std::uint32_t>(num_cols_);
  header.rows_per_chunk = static_cast<std::uint32_t>(rows_per_chunk_);
  header.num_outliers = outliers_.size();
  header.data_offset = sizeof(ColumnarHeader);
  header.outlier_offset = sizeof(ColumnarHeader) + payload_bytes;

  if (!outliers_.empty() &&
      std::fwrite(outliers_.data(), sizeof(std::int64_t), outliers_.size(),
                  file_) != outliers_.size()) {
    Fail("write failure: " + path_);
    return false;
  }
  if (std::fseek(file_, 0, SEEK_SET) != 0 ||
      std::fwrite(&header, sizeof(header), 1, file_) != 1) {
    Fail("write failure: " + path_);
    return false;
  }
  if (std::fclose(file_) != 0) {
    file_ = nullptr;
    Fail("close failure: " + path_);
    return false;
  }
  file_ = nullptr;
  return true;
}

// ---------------------------------------------------------------------------
// ColumnChunk

ColumnChunk::~ColumnChunk() {
  if (map_base_ != nullptr) ::munmap(map_base_, map_len_);
}

// ---------------------------------------------------------------------------
// ColumnarFile

ColumnarFile::OpenResult ColumnarFile::Open(const std::string& path) {
  OpenResult result;
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    result.error = "cannot open file: " + path;
    return result;
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    result.error = "cannot stat file: " + path;
    return result;
  }
  const std::uint64_t file_size = static_cast<std::uint64_t>(st.st_size);

  ColumnarHeader header{};
  if (file_size < sizeof(header) ||
      ::pread(fd, &header, sizeof(header), 0) !=
          static_cast<ssize_t>(sizeof(header))) {
    ::close(fd);
    result.error = path + ": truncated header";
    return result;
  }
  if (std::memcmp(header.magic, kMagic, sizeof(kMagic)) != 0) {
    ::close(fd);
    result.error = path + ": not a columnar dataset (bad magic)";
    return result;
  }
  if (header.version != kColumnarVersion) {
    ::close(fd);
    result.error = path + ": unsupported format version " +
                   std::to_string(header.version);
    return result;
  }
  if (header.num_cols == 0 || header.rows_per_chunk == 0 ||
      header.data_offset != sizeof(ColumnarHeader)) {
    ::close(fd);
    result.error = path + ": corrupt header geometry";
    return result;
  }
  const std::uint64_t payload_bytes = 8 * header.num_rows * header.num_cols;
  if (header.num_rows != 0 &&
      payload_bytes / (8 * header.num_cols) != header.num_rows) {
    ::close(fd);
    result.error = path + ": corrupt header geometry";
    return result;
  }
  if (header.outlier_offset != header.data_offset + payload_bytes) {
    ::close(fd);
    result.error = path + ": corrupt outlier offset";
    return result;
  }
  const std::uint64_t expected_size =
      header.outlier_offset + 8 * header.num_outliers;
  if (file_size != expected_size) {
    ::close(fd);
    result.error = path + ": file size " + std::to_string(file_size) +
                   " does not match header (expected " +
                   std::to_string(expected_size) + "; truncated or corrupt)";
    return result;
  }

  std::vector<int> outliers;
  outliers.reserve(header.num_outliers);
  if (header.num_outliers > 0) {
    std::vector<std::int64_t> raw(header.num_outliers);
    if (::pread(fd, raw.data(), 8 * header.num_outliers,
                static_cast<off_t>(header.outlier_offset)) !=
        static_cast<ssize_t>(8 * header.num_outliers)) {
      ::close(fd);
      result.error = path + ": cannot read outlier trailer";
      return result;
    }
    std::int64_t prev = -1;
    for (std::int64_t id : raw) {
      if (id <= prev || static_cast<std::uint64_t>(id) >= header.num_rows) {
        ::close(fd);
        result.error = path + ": corrupt outlier trailer";
        return result;
      }
      prev = id;
      outliers.push_back(static_cast<int>(id));
    }
  }

  auto file = std::unique_ptr<ColumnarFile>(new ColumnarFile());
  file->fd_ = fd;
  file->path_ = path;
  file->num_rows_ = header.num_rows;
  file->num_cols_ = header.num_cols;
  file->rows_per_chunk_ = header.rows_per_chunk;
  file->num_blocks_ =
      file->num_rows_ == 0 ? 0 : NumBlocks(file->num_rows_, file->rows_per_chunk_);
  file->data_offset_ = header.data_offset;
  file->outlier_indices_ = std::move(outliers);
  result.file = std::move(file);
  result.ok = true;
  return result;
}

ColumnarFile::~ColumnarFile() {
  if (fd_ >= 0) ::close(fd_);
}

std::size_t ColumnarFile::RowsInBlock(std::size_t block) const {
  SUBEX_DCHECK(block < num_blocks_);
  const std::size_t start = block * rows_per_chunk_;
  return std::min(rows_per_chunk_, num_rows_ - start);
}

std::shared_ptr<const ColumnChunk> ColumnarFile::ReadChunk(
    std::size_t col, std::size_t block) const {
  SUBEX_CHECK(col < num_cols_ && block < num_blocks_);
  const std::size_t rows = RowsInBlock(block);
  const std::uint64_t offset = ChunkOffset(data_offset_, num_cols_,
                                           rows_per_chunk_, col, block, rows);
  const std::size_t bytes = rows * sizeof(double);

  // Map just this chunk (page-aligned) rather than the whole file: mappings
  // count toward the process address-space limit, and larger-than-RAM
  // scoring runs under `ulimit -v`.
  static const std::size_t kPage = static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
  const std::uint64_t map_start = offset & ~static_cast<std::uint64_t>(kPage - 1);
  const std::size_t lead = static_cast<std::size_t>(offset - map_start);
  const std::size_t map_len = lead + bytes;
  FaultAction fault_action;
  // Injected mmap failure exercises the pread fallback below.
  void* base = SUBEX_FAULT(FaultPoint::kColumnarMmap, &fault_action)
                   ? MAP_FAILED
                   : ::mmap(nullptr, map_len, PROT_READ, MAP_PRIVATE, fd_,
                            static_cast<off_t>(map_start));
  if (base != MAP_FAILED) {
    const double* data = reinterpret_cast<const double*>(
        static_cast<const char*>(base) + lead);
    return std::make_shared<ColumnChunk>(data, rows, base, map_len, nullptr);
  }

  // mmap can fail under tight address-space limits or on exotic filesystems;
  // fall back to a plain read into the heap.
  auto heap = std::make_unique<double[]>(rows);
  std::size_t done = 0;
  while (done < bytes) {
    std::size_t want = bytes - done;
    if (SUBEX_FAULT(FaultPoint::kColumnarPread, &fault_action)) {
      if (fault_action == FaultAction::kEintr) continue;
      if (fault_action == FaultAction::kShort) {
        want = 1;  // Exercise partial-read resumption.
      } else {
        std::fprintf(stderr, "columnar read failure at %s offset %llu: %s\n",
                     path_.c_str(), static_cast<unsigned long long>(offset),
                     "injected fault");
        return nullptr;
      }
    }
    const ssize_t n =
        ::pread(fd_, reinterpret_cast<char*>(heap.get()) + done, want,
                static_cast<off_t>(offset + done));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      std::fprintf(stderr, "columnar read failure at %s offset %llu: %s\n",
                   path_.c_str(), static_cast<unsigned long long>(offset),
                   std::strerror(errno));
      return nullptr;
    }
    done += static_cast<std::size_t>(n);
  }
  const double* data = heap.get();
  return std::make_shared<ColumnChunk>(data, rows, nullptr, 0, std::move(heap));
}

// ---------------------------------------------------------------------------
// Whole-file conveniences

ColumnarReadResult ReadColumnarDataset(const std::string& path) {
  ColumnarReadResult result;
  auto open = ColumnarFile::Open(path);
  if (!open.ok) {
    result.error = std::move(open.error);
    return result;
  }
  const ColumnarFile& file = *open.file;
  Matrix matrix(file.num_rows(), file.num_cols());
  for (std::size_t block = 0; block < file.num_blocks(); ++block) {
    const std::size_t row0 = block * file.rows_per_chunk();
    for (std::size_t c = 0; c < file.num_cols(); ++c) {
      auto chunk = file.ReadChunk(c, block);
      if (chunk == nullptr) {
        result.error = path + ": chunk read failed";
        return result;
      }
      for (std::size_t r = 0; r < chunk->rows(); ++r) {
        matrix(row0 + r, c) = (*chunk)[r];
      }
    }
  }
  result.dataset = Dataset(std::move(matrix), file.outlier_indices());
  result.ok = true;
  return result;
}

bool WriteColumnarDataset(const std::string& path, const Dataset& dataset,
                          std::size_t rows_per_chunk, std::string* error) {
  // An empty dataset still needs a column count; use 1 so the file is
  // well-formed and round-trips to an empty matrix.
  const std::size_t cols =
      dataset.num_features() > 0 ? dataset.num_features() : 1;
  ColumnarWriter writer(path, cols, rows_per_chunk);
  for (std::size_t p = 0; p < dataset.num_points(); ++p) {
    writer.AppendRow(dataset.matrix().Row(p));
  }
  for (int id : dataset.outlier_indices()) writer.MarkOutlier(id);
  if (!writer.Finish()) {
    if (error != nullptr) *error = writer.error();
    return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// CSV conversion

namespace {

std::vector<std::string> SplitCsvLine(const std::string& line) {
  std::vector<std::string> fields;
  std::string field;
  std::stringstream ss(line);
  while (std::getline(ss, field, ',')) {
    const auto first = field.find_first_not_of(" \t\r");
    const auto last = field.find_last_not_of(" \t\r");
    fields.push_back(first == std::string::npos
                         ? std::string()
                         : field.substr(first, last - first + 1));
  }
  if (!line.empty() && line.back() == ',') fields.emplace_back();
  return fields;
}

bool ParseDouble(const std::string& s, double* out) {
  if (s.empty()) return false;
  const char* begin = s.data();
  const char* end = s.data() + s.size();
  const auto [ptr, ec] = std::from_chars(begin, end, *out);
  return ec == std::errc() && ptr == end;
}

}  // namespace

CsvToColumnarResult ConvertCsvToColumnar(const std::string& csv_path,
                                         const std::string& cols_path,
                                         bool label_column,
                                         std::size_t rows_per_chunk) {
  CsvToColumnarResult result;
  std::ifstream in(csv_path);
  if (!in) {
    result.error = "cannot open file: " + csv_path;
    return result;
  }

  std::unique_ptr<ColumnarWriter> writer;  // Created on the first data row.
  std::vector<double> row;
  std::string line;
  int line_no = 0;
  bool first_content_line = true;
  std::size_t num_features = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    const std::vector<std::string> fields = SplitCsvLine(line);
    row.clear();
    row.reserve(fields.size());
    bool parse_failed = false;
    for (const std::string& f : fields) {
      double v = 0.0;
      if (!ParseDouble(f, &v)) {
        parse_failed = true;
        break;
      }
      row.push_back(v);
    }
    if (parse_failed) {
      if (first_content_line) {
        first_content_line = false;  // Header row: skip it.
        continue;
      }
      result.error = csv_path + ":" + std::to_string(line_no) +
                     ": non-numeric field in data row";
      return result;
    }
    first_content_line = false;
    bool is_outlier = false;
    if (label_column) {
      if (row.size() < 2) {
        result.error = csv_path + ":" + std::to_string(line_no) +
                       ": need at least one feature plus the label column";
        return result;
      }
      is_outlier = row.back() != 0.0;
      row.pop_back();
    }
    if (writer == nullptr) {
      num_features = row.size();
      writer = std::make_unique<ColumnarWriter>(cols_path, num_features,
                                                rows_per_chunk);
      if (!writer->ok()) {
        result.error = writer->error();
        return result;
      }
    } else if (row.size() != num_features) {
      result.error = csv_path + ":" + std::to_string(line_no) +
                     ": inconsistent column count";
      return result;
    }
    if (is_outlier) {
      writer->MarkOutlier(static_cast<std::int64_t>(writer->rows_written()));
    }
    if (!writer->AppendRow(row)) {
      result.error = writer->error();
      return result;
    }
  }
  if (writer == nullptr || writer->rows_written() == 0) {
    result.error = csv_path + ": no data rows";
    return result;
  }
  if (!writer->Finish()) {
    result.error = writer->error();
    return result;
  }
  result.num_rows = writer->rows_written();
  result.num_cols = num_features;
  // Re-open to report the deduplicated outlier count the file actually has.
  auto open = ColumnarFile::Open(cols_path);
  result.num_outliers = open.ok ? open.file->outlier_indices().size() : 0;
  result.ok = true;
  return result;
}

}  // namespace subex
