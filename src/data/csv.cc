#include "data/csv.h"

#include <charconv>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

namespace subex {
namespace {

// Splits `line` on commas, trimming surrounding spaces from each field.
std::vector<std::string> SplitCsvLine(const std::string& line) {
  std::vector<std::string> fields;
  std::string field;
  std::stringstream ss(line);
  while (std::getline(ss, field, ',')) {
    const auto first = field.find_first_not_of(" \t\r");
    const auto last = field.find_last_not_of(" \t\r");
    fields.push_back(first == std::string::npos
                         ? std::string()
                         : field.substr(first, last - first + 1));
  }
  if (!line.empty() && line.back() == ',') fields.emplace_back();
  return fields;
}

bool ParseDouble(const std::string& s, double* out) {
  if (s.empty()) return false;
  const char* begin = s.data();
  const char* end = s.data() + s.size();
  const auto [ptr, ec] = std::from_chars(begin, end, *out);
  return ec == std::errc() && ptr == end;
}

}  // namespace

CsvReadResult ReadCsv(const std::string& path, bool label_column) {
  CsvReadResult result;
  std::ifstream in(path);
  if (!in) {
    result.error = "cannot open file: " + path;
    return result;
  }

  Matrix matrix;
  std::vector<int> outliers;
  std::string line;
  int line_no = 0;
  bool first_content_line = true;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    const std::vector<std::string> fields = SplitCsvLine(line);
    std::vector<double> row;
    row.reserve(fields.size());
    bool parse_failed = false;
    for (const std::string& f : fields) {
      double v = 0.0;
      if (!ParseDouble(f, &v)) {
        parse_failed = true;
        break;
      }
      row.push_back(v);
    }
    if (parse_failed) {
      if (first_content_line) {
        first_content_line = false;  // Header row: skip it.
        continue;
      }
      result.error = path + ":" + std::to_string(line_no) +
                     ": non-numeric field in data row";
      return result;
    }
    first_content_line = false;
    if (label_column) {
      if (row.size() < 2) {
        result.error = path + ":" + std::to_string(line_no) +
                       ": need at least one feature plus the label column";
        return result;
      }
      const double label = row.back();
      row.pop_back();
      if (label != 0.0) outliers.push_back(static_cast<int>(matrix.rows()));
    }
    if (!matrix.empty() && row.size() != matrix.cols()) {
      result.error = path + ":" + std::to_string(line_no) +
                     ": inconsistent column count";
      return result;
    }
    matrix.AppendRow(row);
  }
  if (matrix.rows() == 0) {
    result.error = path + ": no data rows";
    return result;
  }
  result.dataset = Dataset(std::move(matrix), std::move(outliers));
  result.ok = true;
  return result;
}

bool WriteCsv(const std::string& path, const Dataset& dataset,
              bool label_column, std::string* error) {
  std::ofstream out(path);
  if (!out) {
    if (error != nullptr) *error = "cannot open file for writing: " + path;
    return false;
  }
  for (std::size_t f = 0; f < dataset.num_features(); ++f) {
    if (f > 0) out << ',';
    out << 'f' << f;
  }
  if (label_column) out << (dataset.num_features() > 0 ? ",is_outlier" : "is_outlier");
  out << '\n';
  char buf[64];
  for (std::size_t p = 0; p < dataset.num_points(); ++p) {
    for (std::size_t f = 0; f < dataset.num_features(); ++f) {
      if (f > 0) out << ',';
      std::snprintf(buf, sizeof(buf), "%.17g", dataset.Value(p, f));
      out << buf;
    }
    if (label_column) {
      out << ',' << (dataset.IsOutlier(static_cast<int>(p)) ? 1 : 0);
    }
    out << '\n';
  }
  if (!out) {
    if (error != nullptr) *error = "write failure: " + path;
    return false;
  }
  return true;
}

}  // namespace subex
