#ifndef SUBEX_DATA_GENERATORS_H_
#define SUBEX_DATA_GENERATORS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "data/ground_truth.h"

namespace subex {

/// A generated benchmark dataset together with whatever ground truth the
/// generator can plant directly. For full-space datasets the ground truth is
/// produced later by `GroundTruthBuilder` (exhaustive LOF search), mirroring
/// how the paper derived it for the real datasets.
struct SyntheticDataset {
  std::string name;
  Dataset dataset;
  GroundTruth ground_truth;
  /// Distinct planted relevant subspaces (empty for full-space datasets).
  std::vector<Subspace> relevant_subspaces;
};

/// Configuration of the HiCS-style subspace-outlier generator.
///
/// Mirrors the construction of the HiCS synthetic datasets (§3.2): the
/// feature space is partitioned into disjoint relevant subspaces of 2-5
/// dimensions; each subspace holds clustered, strongly correlated inlier
/// structure plus `outliers_per_subspace` planted points that deviate
/// *jointly* in the subspace while staying inside every 1-dimensional
/// marginal (mixed with inliers in lower projections, visible in
/// augmentations).
struct HicsGeneratorConfig {
  /// Total number of points (the paper uses 1000 for every split).
  int num_points = 1000;
  /// Sizes of the disjoint relevant subspaces; the dataset dimensionality is
  /// their sum. Every entry must be in [2, 5] to match the paper's splits.
  std::vector<int> subspace_dims;
  /// Outliers planted per relevant subspace (the paper uses 5).
  int outliers_per_subspace = 5;
  /// How many planted outlier slots reuse a point that is already an outlier
  /// of an earlier subspace. The paper reports ~9% of outliers explained by
  /// two subspaces.
  int num_shared_outliers = 0;
  /// Thickness of the correlated inlier manifold (feature-value units; the
  /// generated features live roughly in [0, 1]).
  double noise_stddev = 0.02;
  /// Minimum joint distance an outlier must keep from the inlier manifold.
  double min_outlier_offset = 0.2;
  std::uint64_t seed = 1;
};

/// Generates a HiCS-style subspace-outlier dataset; the returned ground truth
/// maps each planted outlier to the subspace(s) it deviates in.
SyntheticDataset GenerateHicsDataset(const HicsGeneratorConfig& config);

/// The five synthetic splits of the paper (14d, 23d, 39d, 70d, 100d) with
/// the published characteristics: 1000 points; 4/7/12/22/31 relevant
/// subspaces of dims 2-5 partitioning the feature space; 5 outliers per
/// subspace; 20/34/59/100/143 total outliers (the deficit vs 5-per-subspace
/// comes from outliers shared between two subspaces). `scale` in (0, 1]
/// shrinks `num_points` proportionally for quick benchmark profiles.
std::vector<SyntheticDataset> GeneratePaperHicsSuite(std::uint64_t seed,
                                                     double scale = 1.0);

/// Configuration of the full-space-outlier generator that substitutes for
/// the paper's three real datasets (Breast, Breast Diagnostic, Electricity).
///
/// Inliers form a few dense Gaussian clusters; every outlier is offset from
/// its cluster in *every* feature, so it is visible in the full space, in
/// low-dimensional projections, and in augmentations — the structural
/// property Table 1 attributes to the real datasets.
struct FullSpaceGeneratorConfig {
  int num_points = 200;
  int num_features = 30;
  /// Number of outliers (the real datasets carry 10% contamination).
  int num_outliers = 20;
  int num_clusters = 3;
  /// Cluster spread per feature.
  double cluster_stddev = 0.04;
  /// Per-feature outlier offset magnitude range (relative to a unit-scale
  /// feature domain).
  double min_offset = 0.18;
  double max_offset = 0.35;
  std::uint64_t seed = 1;
};

/// Generates a full-space-outlier dataset. The ground truth is intentionally
/// left empty: build it with `GroundTruthBuilder` exactly as the paper did
/// for the real datasets.
SyntheticDataset GenerateFullSpaceDataset(const FullSpaceGeneratorConfig& config);

/// The three real-dataset stand-ins with the published shapes:
/// Breast-like (198 x 31, 20 outliers), Breast-Diagnostic-like (569 x 30,
/// 57 outliers), Electricity-like (1205 x 23, 121 outliers). `scale`
/// shrinks points and outliers proportionally for quick profiles.
std::vector<SyntheticDataset> GeneratePaperRealSuite(std::uint64_t seed,
                                                     double scale = 1.0);

/// The 3-dimensional illustration of Figure 1: a dataset where point `o1`
/// deviates in subspace {F1,F2} (and mildly in the full space) while `o2`
/// looks normal in the full space but deviates strongly in {F2,F3}.
/// Ground truth: o1 -> {0,1}, o2 -> {1,2}.
SyntheticDataset GenerateFigure1Dataset(std::uint64_t seed,
                                        int num_points = 200);

}  // namespace subex

#endif  // SUBEX_DATA_GENERATORS_H_
