#ifndef SUBEX_DATA_CSV_H_
#define SUBEX_DATA_CSV_H_

#include <string>

#include "data/dataset.h"

namespace subex {

/// Result of a CSV load; `ok` is false on malformed input with a
/// human-readable `error` (file/line context included).
struct CsvReadResult {
  bool ok = false;
  std::string error;
  Dataset dataset;
};

/// Reads a numeric CSV into a `Dataset`.
///
/// Format: comma-separated doubles, one point per row. A first line that
/// fails to parse as numbers is treated as a header and skipped. If
/// `label_column` is true the last column is interpreted as an outlier label
/// (non-zero = point of interest) and stripped from the feature matrix.
/// Blank lines are ignored; every data row must have the same width.
CsvReadResult ReadCsv(const std::string& path, bool label_column = true);

/// Writes `dataset` as CSV with a generated header `f0,f1,...[,is_outlier]`.
/// When `label_column` is true an extra 0/1 column marks the points of
/// interest. Returns false (and fills `error` if non-null) on I/O failure.
bool WriteCsv(const std::string& path, const Dataset& dataset,
              bool label_column = true, std::string* error = nullptr);

}  // namespace subex

#endif  // SUBEX_DATA_CSV_H_
