#include "data/ground_truth.h"

#include <algorithm>
#include <set>

namespace subex {

const std::vector<Subspace> GroundTruth::kEmpty;

void GroundTruth::Add(int point, const Subspace& subspace) {
  std::vector<Subspace>& list = relevant_[point];
  if (std::find(list.begin(), list.end(), subspace) == list.end()) {
    list.push_back(subspace);
  }
}

const std::vector<Subspace>& GroundTruth::RelevantFor(int point) const {
  const auto it = relevant_.find(point);
  return it == relevant_.end() ? kEmpty : it->second;
}

std::vector<int> GroundTruth::ExplainedPoints() const {
  std::vector<int> points;
  points.reserve(relevant_.size());
  for (const auto& [point, subspaces] : relevant_) points.push_back(point);
  return points;
}

std::vector<int> GroundTruth::PointsExplainedAtDimension(int dim) const {
  std::vector<int> points;
  for (const auto& [point, subspaces] : relevant_) {
    for (const Subspace& s : subspaces) {
      if (static_cast<int>(s.size()) == dim) {
        points.push_back(point);
        break;
      }
    }
  }
  return points;
}

GroundTruth GroundTruth::FilterByDimension(int dim) const {
  GroundTruth filtered;
  for (const auto& [point, subspaces] : relevant_) {
    for (const Subspace& s : subspaces) {
      if (static_cast<int>(s.size()) == dim) filtered.Add(point, s);
    }
  }
  return filtered;
}

std::vector<Subspace> GroundTruth::AllRelevantSubspaces() const {
  std::set<Subspace> unique;
  for (const auto& [point, subspaces] : relevant_) {
    unique.insert(subspaces.begin(), subspaces.end());
  }
  return {unique.begin(), unique.end()};
}

double GroundTruth::MeanOutliersPerSubspace() const {
  const std::vector<Subspace> unique = AllRelevantSubspaces();
  if (unique.empty()) return 0.0;
  std::size_t pairs = 0;
  for (const auto& [point, subspaces] : relevant_) pairs += subspaces.size();
  return static_cast<double>(pairs) / static_cast<double>(unique.size());
}

double GroundTruth::MeanSubspacesPerPoint() const {
  if (relevant_.empty()) return 0.0;
  std::size_t pairs = 0;
  for (const auto& [point, subspaces] : relevant_) pairs += subspaces.size();
  return static_cast<double>(pairs) / static_cast<double>(relevant_.size());
}

}  // namespace subex
