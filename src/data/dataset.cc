#include "data/dataset.h"

#include <algorithm>
#include <mutex>
#include <numeric>

#include "common/check.h"

namespace subex {

struct Dataset::Cache {
  std::mutex mutex;
  std::vector<std::vector<int>> sorted_by_feature;
};

Dataset::Dataset() : cache_(std::make_shared<Cache>()) {}

Dataset::Dataset(Matrix data, std::vector<int> outlier_indices)
    : data_(std::move(data)), cache_(std::make_shared<Cache>()) {
  cache_->sorted_by_feature.resize(data_.cols());
  SetOutlierIndices(std::move(outlier_indices));
}

void Dataset::SetOutlierIndices(std::vector<int> indices) {
  std::sort(indices.begin(), indices.end());
  indices.erase(std::unique(indices.begin(), indices.end()), indices.end());
  for (int i : indices) {
    SUBEX_CHECK_MSG(i >= 0 && static_cast<std::size_t>(i) < data_.rows(),
                    "outlier index out of range");
  }
  outlier_indices_ = std::move(indices);
}

bool Dataset::IsOutlier(int p) const {
  return std::binary_search(outlier_indices_.begin(), outlier_indices_.end(),
                            p);
}

double Dataset::ContaminationRatio() const {
  if (data_.rows() == 0) return 0.0;
  return static_cast<double>(outlier_indices_.size()) /
         static_cast<double>(data_.rows());
}

const std::vector<int>& Dataset::SortedIndexByFeature(FeatureId f) const {
  SUBEX_CHECK(f >= 0 && static_cast<std::size_t>(f) < data_.cols());
  std::lock_guard<std::mutex> lock(cache_->mutex);
  std::vector<int>& cached = cache_->sorted_by_feature[f];
  if (cached.empty() && data_.rows() > 0) {
    cached.resize(data_.rows());
    std::iota(cached.begin(), cached.end(), 0);
    const Matrix& m = data_;
    std::stable_sort(cached.begin(), cached.end(), [&](int a, int b) {
      return m(a, f) < m(b, f);
    });
  }
  return cached;
}

Subspace Dataset::FullSpace() const {
  std::vector<FeatureId> all(data_.cols());
  std::iota(all.begin(), all.end(), 0);
  return Subspace(std::move(all));
}

void Dataset::NormalizeMinMax() {
  for (std::size_t f = 0; f < data_.cols(); ++f) {
    double lo = data_(0, f);
    double hi = lo;
    for (std::size_t p = 1; p < data_.rows(); ++p) {
      lo = std::min(lo, data_(p, f));
      hi = std::max(hi, data_(p, f));
    }
    const double range = hi - lo;
    for (std::size_t p = 0; p < data_.rows(); ++p) {
      data_(p, f) = range > 1e-300 ? (data_(p, f) - lo) / range : 0.0;
    }
  }
  // Reset the sorted-index cache: values changed.
  std::lock_guard<std::mutex> lock(cache_->mutex);
  for (auto& v : cache_->sorted_by_feature) v.clear();
}

}  // namespace subex
