#ifndef SUBEX_DATA_DATASET_H_
#define SUBEX_DATA_DATASET_H_

#include <memory>
#include <string>
#include <vector>

#include "common/matrix.h"
#include "subspace/subspace.h"

namespace subex {

/// A multi-dimensional numeric dataset plus the point-of-interest labels the
/// explanation pipelines consume.
///
/// Rows are points, columns are features. `outlier_indices()` is the set of
/// to-be-explained points (the paper's "points of interest"); it is an input
/// to explainers, not something the library re-detects — the testbed's
/// premise is that detection and explanation are decoupled.
///
/// The dataset caches, per feature, the permutation of row indices sorted by
/// that feature's value. HiCS' Monte-Carlo slicing draws contiguous windows
/// in this order on every iteration, so the cache turns an O(n log n) sort
/// per iteration into a one-time cost.
class Dataset {
 public:
  Dataset();

  /// Wraps a matrix. `outlier_indices` may be empty and set later.
  explicit Dataset(Matrix data, std::vector<int> outlier_indices = {});

  /// Number of points.
  std::size_t num_points() const { return data_.rows(); }
  /// Number of features.
  std::size_t num_features() const { return data_.cols(); }

  /// The underlying matrix.
  const Matrix& matrix() const { return data_; }

  /// Value of feature `f` for point `p`.
  double Value(std::size_t p, FeatureId f) const { return data_(p, f); }

  /// Indices of the to-be-explained points, ascending.
  const std::vector<int>& outlier_indices() const { return outlier_indices_; }

  /// Replaces the to-be-explained point set. Indices must be in range and
  /// are stored sorted and deduplicated.
  void SetOutlierIndices(std::vector<int> indices);

  /// True if point `p` is one of the points of interest.
  bool IsOutlier(int p) const;

  /// Fraction of points labelled as outliers, in [0, 1].
  double ContaminationRatio() const;

  /// Row indices sorted ascending by the value of feature `f`; computed once
  /// per feature and cached. The reference stays valid for the lifetime of
  /// the dataset (the cache is append-only behind a shared_ptr).
  const std::vector<int>& SortedIndexByFeature(FeatureId f) const;

  /// Subspace containing every feature of the dataset.
  Subspace FullSpace() const;

  /// Rescales every feature to [0, 1] in place (constant features map to 0).
  /// Invalidates nothing: callers should normalize before the first use of
  /// the sorted-index cache.
  void NormalizeMinMax();

 private:
  Matrix data_;
  std::vector<int> outlier_indices_;
  // Lazily filled: sorted_index_cache_[f] is empty until first requested.
  // shared_ptr keeps Dataset cheaply copyable while sharing the cache.
  struct Cache;
  std::shared_ptr<Cache> cache_;
};

}  // namespace subex

#endif  // SUBEX_DATA_DATASET_H_
