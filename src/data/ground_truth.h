#ifndef SUBEX_DATA_GROUND_TRUTH_H_
#define SUBEX_DATA_GROUND_TRUTH_H_

#include <map>
#include <vector>

#include "subspace/subspace.h"

namespace subex {

/// The gold standard of an explanation benchmark: for every point of
/// interest, the set `REL_p` of subspaces that truly explain its
/// outlyingness.
///
/// The evaluation metric of the paper (§3.3) compares an explainer's ranked
/// subspaces against these sets: a returned subspace counts as relevant only
/// if it is *identical* to a member of `REL_p`.
class GroundTruth {
 public:
  /// Records `subspace` as relevant for `point`. Duplicates are ignored.
  void Add(int point, const Subspace& subspace);

  /// The relevant subspaces of `point` (empty if the point has none).
  const std::vector<Subspace>& RelevantFor(int point) const;

  /// Points that have at least one relevant subspace, ascending.
  std::vector<int> ExplainedPoints() const;

  /// Points that have at least one relevant subspace of exactly `dim`
  /// features. The paper evaluates each explanation dimensionality only on
  /// the points the ground truth explains at that dimensionality.
  std::vector<int> PointsExplainedAtDimension(int dim) const;

  /// Ground truth restricted to subspaces of exactly `dim` features.
  GroundTruth FilterByDimension(int dim) const;

  /// All distinct relevant subspaces across every point.
  std::vector<Subspace> AllRelevantSubspaces() const;

  /// Mean number of outlier points per distinct relevant subspace
  /// (Table 1's "# Outliers per Relevant Subspace"). 0 when empty.
  double MeanOutliersPerSubspace() const;

  /// Mean number of relevant subspaces per explained point. 0 when empty.
  double MeanSubspacesPerPoint() const;

  /// True when no point has any relevant subspace.
  bool empty() const { return relevant_.empty(); }

 private:
  // std::map keeps ExplainedPoints() ordered without re-sorting.
  std::map<int, std::vector<Subspace>> relevant_;
  static const std::vector<Subspace> kEmpty;
};

}  // namespace subex

#endif  // SUBEX_DATA_GROUND_TRUTH_H_
