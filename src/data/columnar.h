#ifndef SUBEX_DATA_COLUMNAR_H_
#define SUBEX_DATA_COLUMNAR_H_

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "data/dataset.h"

namespace subex {

/// Packed binary column-chunk dataset format (".cols").
///
/// Layout (little-endian, doubles stored as their raw 8 bytes so a
/// round-trip is bit-exact, NaNs included):
///
///   header (64 bytes)
///   payload: for each row-block b, for each column f:
///       rows_in_block(b) doubles — the values of column f for rows
///       [b * rows_per_chunk, ...)
///   trailer: num_outliers int64 row ids (the points of interest)
///
/// A "chunk" is one (column, row-block) run of doubles — the unit the
/// chunk reader mmaps and the `ChunkedDataset` caches. Every chunk's byte
/// offset is computable in O(1) from the header, so readers seek straight
/// to the data they need and a dataset much larger than RAM can be scored
/// by streaming a bounded set of resident chunks.
struct ColumnarHeader {
  char magic[4];
  std::uint32_t version;
  std::uint64_t num_rows;
  std::uint32_t num_cols;
  std::uint32_t rows_per_chunk;
  std::uint64_t num_outliers;
  std::uint64_t data_offset;     ///< First payload byte (== 64).
  std::uint64_t outlier_offset;  ///< First trailer byte.
  std::uint64_t reserved[2];     ///< Zero; room for future format revisions.
};
static_assert(sizeof(ColumnarHeader) == 64, "header layout is part of the format");

inline constexpr std::uint32_t kColumnarVersion = 1;
inline constexpr std::size_t kColumnarDefaultRowsPerChunk = 1 << 16;

/// Streaming writer: rows arrive row-major, one block is buffered in RAM
/// (rows_per_chunk x num_cols doubles) and written column-transposed when
/// full — converting never needs more memory than one block regardless of
/// dataset size. The header is rewritten on `Finish`, so the row count
/// need not be known up front.
class ColumnarWriter {
 public:
  ColumnarWriter(const std::string& path, std::size_t num_cols,
                 std::size_t rows_per_chunk = kColumnarDefaultRowsPerChunk);
  ~ColumnarWriter();

  ColumnarWriter(const ColumnarWriter&) = delete;
  ColumnarWriter& operator=(const ColumnarWriter&) = delete;

  bool ok() const { return error_.empty(); }
  const std::string& error() const { return error_; }
  std::size_t rows_written() const { return rows_written_; }

  /// Appends one row (`row.size()` must equal `num_cols`).
  bool AppendRow(std::span<const double> row);

  /// Marks an appended row as a point of interest (any order; the trailer
  /// is sorted and deduplicated).
  void MarkOutlier(std::int64_t row_index);

  /// Flushes the partial block, writes the trailer and the final header.
  /// The file is invalid until this succeeds.
  bool Finish();

 private:
  bool FlushBlock();
  void Fail(const std::string& message);

  std::string path_;
  std::FILE* file_ = nullptr;
  std::size_t num_cols_ = 0;
  std::size_t rows_per_chunk_ = 0;
  std::size_t rows_written_ = 0;
  std::vector<double> block_;       // Row-major staging buffer.
  std::size_t block_rows_ = 0;
  std::vector<double> column_tmp_;  // Transpose scratch, one column.
  std::vector<std::int64_t> outliers_;
  bool finished_ = false;
  std::string error_;
};

/// One materialized (column, row-block) chunk: `rows()` doubles at
/// `data()`. Backed by a private file mapping when the platform allows it,
/// a heap buffer otherwise; the destructor unmaps/frees. Immutable and
/// shareable across threads.
class ColumnChunk {
 public:
  ColumnChunk(const double* data, std::size_t rows, void* map_base,
              std::size_t map_len, std::unique_ptr<double[]> heap)
      : data_(data),
        rows_(rows),
        map_base_(map_base),
        map_len_(map_len),
        heap_(std::move(heap)) {}
  ~ColumnChunk();

  ColumnChunk(const ColumnChunk&) = delete;
  ColumnChunk& operator=(const ColumnChunk&) = delete;

  const double* data() const { return data_; }
  std::size_t rows() const { return rows_; }
  double operator[](std::size_t local_row) const { return data_[local_row]; }

 private:
  const double* data_;
  std::size_t rows_;
  void* map_base_;
  std::size_t map_len_;
  std::unique_ptr<double[]> heap_;
};

/// Read-side handle of a ".cols" file: validates the header (magic,
/// version, exact file size — truncated or corrupt files are rejected at
/// open), exposes the geometry, and loads individual chunks on demand.
/// `ReadChunk` is safe to call concurrently (pread / private mmap).
class ColumnarFile {
 public:
  struct OpenResult {
    bool ok = false;
    std::string error;
    std::unique_ptr<ColumnarFile> file;
  };
  static OpenResult Open(const std::string& path);
  ~ColumnarFile();

  ColumnarFile(const ColumnarFile&) = delete;
  ColumnarFile& operator=(const ColumnarFile&) = delete;

  std::size_t num_rows() const { return num_rows_; }
  std::size_t num_cols() const { return num_cols_; }
  std::size_t rows_per_chunk() const { return rows_per_chunk_; }
  /// Number of row-blocks (0 for an empty dataset).
  std::size_t num_blocks() const { return num_blocks_; }
  std::size_t RowsInBlock(std::size_t block) const;
  /// Row-block containing global row `row`.
  std::size_t BlockOf(std::size_t row) const { return row / rows_per_chunk_; }
  /// Offset of `row` within its block.
  std::size_t LocalRow(std::size_t row) const { return row % rows_per_chunk_; }
  /// Payload bytes of one chunk of `block` (any column).
  std::size_t ChunkBytes(std::size_t block) const {
    return RowsInBlock(block) * sizeof(double);
  }
  const std::vector<int>& outlier_indices() const { return outlier_indices_; }

  /// Materializes chunk (column `col`, row-block `block`); null on I/O
  /// failure (the error is printed — open-time validation makes runtime
  /// failures exceptional).
  std::shared_ptr<const ColumnChunk> ReadChunk(std::size_t col,
                                               std::size_t block) const;

 private:
  ColumnarFile() = default;

  int fd_ = -1;
  std::string path_;
  std::size_t num_rows_ = 0;
  std::size_t num_cols_ = 0;
  std::size_t rows_per_chunk_ = 0;
  std::size_t num_blocks_ = 0;
  std::uint64_t data_offset_ = 0;
  std::vector<int> outlier_indices_;
};

/// Result of a whole-file columnar load (shape mirrors `CsvReadResult`).
struct ColumnarReadResult {
  bool ok = false;
  std::string error;
  Dataset dataset;
};

/// Loads an entire ".cols" file into an in-RAM `Dataset` — the reference
/// path for cross-checking streamed scores, and a convenience for files
/// that do fit. Values are bit-exact copies of what the writer was given.
ColumnarReadResult ReadColumnarDataset(const std::string& path);

/// Writes `dataset` (matrix + outlier labels) as a ".cols" file.
bool WriteColumnarDataset(const std::string& path, const Dataset& dataset,
                          std::size_t rows_per_chunk =
                              kColumnarDefaultRowsPerChunk,
                          std::string* error = nullptr);

/// Outcome of a CSV -> columnar conversion.
struct CsvToColumnarResult {
  bool ok = false;
  std::string error;
  std::size_t num_rows = 0;
  std::size_t num_cols = 0;
  std::size_t num_outliers = 0;
};

/// Streams a numeric CSV (same dialect as `ReadCsv`: optional header row,
/// optional trailing 0/1 label column, blank lines ignored) into a ".cols"
/// file without materializing the dataset — peak memory is one block.
CsvToColumnarResult ConvertCsvToColumnar(
    const std::string& csv_path, const std::string& cols_path,
    bool label_column = true,
    std::size_t rows_per_chunk = kColumnarDefaultRowsPerChunk);

}  // namespace subex

#endif  // SUBEX_DATA_COLUMNAR_H_
