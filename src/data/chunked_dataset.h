#ifndef SUBEX_DATA_CHUNKED_DATASET_H_
#define SUBEX_DATA_CHUNKED_DATASET_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "data/columnar.h"
#include "mem/cache_slot.h"
#include "mem/dlist.h"
#include "mem/eviction_manager.h"

namespace subex {

/// Point-in-time counters of a `ChunkedDataset`.
struct ChunkedDatasetStats {
  std::uint64_t loads = 0;      ///< Chunks materialized from disk.
  std::uint64_t hits = 0;       ///< Pins served from a resident chunk.
  std::uint64_t evictions = 0;  ///< Chunks dropped under pressure.
  std::size_t resident_chunks = 0;
  std::size_t resident_bytes = 0;
  std::size_t pinned_chunks = 0;
};

/// Knobs of a `ChunkedDataset`.
struct ChunkedDatasetOptions {
  /// Memory governor the chunk cache registers with; defaults to the
  /// process-wide one. Must outlive the dataset.
  EvictionManager* manager = nullptr;
  /// Display name for manager snapshots / kStats.
  std::string name = "chunked_dataset";
  /// Dedicated quota (0 = only the global budget binds).
  std::size_t quota_bytes = 0;
};

/// A columnar dataset accessed through a governed chunk cache: chunks
/// materialize from disk on first touch, stay resident while memory allows,
/// and are evicted least-recently-used under pressure — so datasets far
/// larger than RAM stream through detectors under a fixed byte budget.
///
/// `Chunk(col, block)` returns a pinned handle: while any `Pinned` handle
/// of a chunk is alive, the chunk is unlinked from the LRU list and cannot
/// be evicted, so compute reads a stable address. Loads use must-succeed
/// (overcommit) reservations — a scorer's progress cannot depend on budget
/// luck; the budget instead bounds the *unpinned* resident set, and callers
/// keep the pinned working set small (a handful of chunks at a time).
///
/// Concurrent `Chunk` calls for the same slot single-flight the disk read:
/// one thread loads, the rest wait on a condition variable and pin the
/// loaded value. All methods are thread-safe.
class ChunkedDataset : private SlotOwner, private MemReclaimer {
 public:
  struct OpenResult {
    bool ok = false;
    std::string error;
    std::unique_ptr<ChunkedDataset> dataset;
  };
  static OpenResult Open(const std::string& path,
                         const ChunkedDatasetOptions& options = {});
  ~ChunkedDataset() override;

  ChunkedDataset(const ChunkedDataset&) = delete;
  ChunkedDataset& operator=(const ChunkedDataset&) = delete;

  std::size_t num_rows() const { return file_->num_rows(); }
  std::size_t num_cols() const { return file_->num_cols(); }
  std::size_t rows_per_chunk() const { return file_->rows_per_chunk(); }
  std::size_t num_blocks() const { return file_->num_blocks(); }
  std::size_t RowsInBlock(std::size_t block) const {
    return file_->RowsInBlock(block);
  }
  std::size_t BlockOf(std::size_t row) const { return file_->BlockOf(row); }
  std::size_t LocalRow(std::size_t row) const { return file_->LocalRow(row); }
  const std::vector<int>& outlier_indices() const {
    return file_->outlier_indices();
  }

  /// Pins chunk (column `col`, row-block `block`), loading it first if not
  /// resident. Returns an invalid handle only on an I/O failure.
  Pinned<ColumnChunk> Chunk(std::size_t col, std::size_t block);

  ChunkedDatasetStats stats() const;

 private:
  using Slot = CacheSlot<ColumnChunk>;

  explicit ChunkedDataset(std::unique_ptr<ColumnarFile> file,
                          const ChunkedDatasetOptions& options);

  Slot& SlotAt(std::size_t col, std::size_t block) {
    return slots_[col * file_->num_blocks() + block];
  }

  // SlotOwner:
  void UnpinSlot(void* slot) override;

  // MemReclaimer (called by the manager during pressure passes):
  std::uint64_t OldestEvictableTick() override;
  std::size_t ReclaimBytes(std::size_t target_bytes) override;

  std::unique_ptr<ColumnarFile> file_;
  EvictionManager* manager_ = nullptr;
  EvictionManager::CacheId cache_id_ = 0;

  mutable std::mutex mutex_;      // Guards slots_, lru_ and the counters.
  std::condition_variable load_cv_;  // Signals kLoading -> kLoaded/kEmpty.
  std::vector<Slot> slots_;       // Index = col * num_blocks + block.
  DList lru_;                     // Resident, unpinned slots; front = MRU.
  std::uint64_t loads_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t evictions_ = 0;
  std::size_t resident_chunks_ = 0;
  std::size_t resident_bytes_ = 0;
  std::size_t pinned_chunks_ = 0;
};

}  // namespace subex

#endif  // SUBEX_DATA_CHUNKED_DATASET_H_
