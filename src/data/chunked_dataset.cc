#include "data/chunked_dataset.h"

#include <limits>
#include <utility>

#include "common/check.h"

namespace subex {

ChunkedDataset::OpenResult ChunkedDataset::Open(
    const std::string& path, const ChunkedDatasetOptions& options) {
  OpenResult result;
  auto open = ColumnarFile::Open(path);
  if (!open.ok) {
    result.error = std::move(open.error);
    return result;
  }
  result.dataset = std::unique_ptr<ChunkedDataset>(
      new ChunkedDataset(std::move(open.file), options));
  result.ok = true;
  return result;
}

ChunkedDataset::ChunkedDataset(std::unique_ptr<ColumnarFile> file,
                               const ChunkedDatasetOptions& options)
    : file_(std::move(file)),
      manager_(options.manager != nullptr ? options.manager
                                          : &EvictionManager::Global()),
      slots_(file_->num_cols() * file_->num_blocks()) {
  cache_id_ = manager_->Register(options.name, options.quota_bytes, this);
}

ChunkedDataset::~ChunkedDataset() {
  // Every Pinned handle must be released before destruction — a live pin
  // would dereference freed slots. Loads cannot be in flight either, for
  // the same reason.
  {
    std::lock_guard<std::mutex> lock(mutex_);
    SUBEX_CHECK(pinned_chunks_ == 0);
  }
  manager_->Unregister(cache_id_);
}

Pinned<ColumnChunk> ChunkedDataset::Chunk(std::size_t col, std::size_t block) {
  Slot& slot = SlotAt(col, block);
  {
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
      if (slot.state == Slot::State::kLoaded) {
        if (slot.pins == 0) {
          lru_.Remove(&slot.node);  // Pinned slots are unevictable.
          ++pinned_chunks_;
          manager_->NotePin(cache_id_, slot.bytes);
        }
        ++slot.pins;
        ++hits_;
        slot.tick = manager_->NextTick();
        return Pinned<ColumnChunk>(this, &slot, slot.value);
      }
      if (slot.state == Slot::State::kEmpty) {
        slot.state = Slot::State::kLoading;  // This thread loads.
        break;
      }
      load_cv_.wait(lock);  // Another thread is loading this slot.
    }
  }

  // Load outside the lock: sibling slots stay usable during disk I/O, and
  // Reserve may re-enter ReclaimBytes (which takes the lock) to make room.
  const std::size_t bytes = file_->ChunkBytes(block);
  manager_->Reserve(cache_id_, bytes, /*allow_overcommit=*/true);
  std::shared_ptr<const ColumnChunk> chunk = file_->ReadChunk(col, block);

  std::lock_guard<std::mutex> lock(mutex_);
  if (chunk == nullptr) {
    slot.state = Slot::State::kEmpty;
    manager_->Release(cache_id_, bytes);
    load_cv_.notify_all();
    return Pinned<ColumnChunk>();
  }
  slot.node.item = &slot;
  slot.value = std::move(chunk);
  slot.state = Slot::State::kLoaded;
  slot.bytes = bytes;
  slot.pins = 1;
  slot.tick = manager_->NextTick();
  ++loads_;
  ++resident_chunks_;
  resident_bytes_ += bytes;
  ++pinned_chunks_;
  manager_->NotePin(cache_id_, bytes);
  load_cv_.notify_all();
  return Pinned<ColumnChunk>(this, &slot, slot.value);
}

void ChunkedDataset::UnpinSlot(void* slot_ptr) {
  Slot& slot = *static_cast<Slot*>(slot_ptr);
  std::lock_guard<std::mutex> lock(mutex_);
  SUBEX_DCHECK(slot.pins > 0);
  if (--slot.pins == 0) {
    --pinned_chunks_;
    manager_->NoteUnpin(cache_id_, slot.bytes);
    slot.tick = manager_->NextTick();
    lru_.PushFront(&slot.node);  // Now evictable, most recently used.
  }
}

std::uint64_t ChunkedDataset::OldestEvictableTick() {
  std::lock_guard<std::mutex> lock(mutex_);
  const DListNode* tail = lru_.Tail();
  if (tail == nullptr) return std::numeric_limits<std::uint64_t>::max();
  return static_cast<const Slot*>(tail->item)->tick;
}

std::size_t ChunkedDataset::ReclaimBytes(std::size_t target_bytes) {
  std::size_t freed = 0;
  std::uint64_t entries = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    while (freed < target_bytes) {
      DListNode* tail = lru_.Tail();
      if (tail == nullptr) break;  // Everything left is pinned or empty.
      Slot& victim = *static_cast<Slot*>(tail->item);
      lru_.Remove(tail);
      victim.value.reset();  // Unmaps / frees the chunk.
      victim.state = Slot::State::kEmpty;
      freed += victim.bytes;
      resident_bytes_ -= victim.bytes;
      victim.bytes = 0;
      --resident_chunks_;
      ++evictions_;
      ++entries;
    }
  }
  if (freed > 0) manager_->ReleaseEvicted(cache_id_, freed, entries);
  return freed;
}

ChunkedDatasetStats ChunkedDataset::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  ChunkedDatasetStats s;
  s.loads = loads_;
  s.hits = hits_;
  s.evictions = evictions_;
  s.resident_chunks = resident_chunks_;
  s.resident_bytes = resident_bytes_;
  s.pinned_chunks = pinned_chunks_;
  return s;
}

}  // namespace subex
