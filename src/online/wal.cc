#include "online/wal.h"

#include <errno.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <array>
#include <cstdio>
#include <cstring>

#include "fault/fault.h"

namespace subex {
namespace {

constexpr std::uint32_t kCheckpointMagic = 0x43584253u;  // "SBXC" LE.
constexpr std::uint32_t kCheckpointVersion = 1;

std::string Errno(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

void PutU32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}

std::uint32_t GetU32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

const std::array<std::uint32_t, 256>& Crc32Table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit) {
        c = (c & 1u) ? (0xedb88320u ^ (c >> 1)) : (c >> 1);
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

/// Writes the whole buffer, resuming on partial writes and EINTR.
bool WriteAll(int fd, const std::uint8_t* data, std::size_t size,
              std::string* error) {
  std::size_t written = 0;
  while (written < size) {
    const ssize_t n = ::write(fd, data + written, size - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (error != nullptr) *error = Errno("write");
      return false;
    }
    written += static_cast<std::size_t>(n);
  }
  return true;
}

bool ReadFile(const std::string& path, std::vector<std::uint8_t>* out,
              bool* exists, std::string* error) {
  *exists = false;
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) return true;
    if (error != nullptr) *error = Errno("open " + path);
    return false;
  }
  *exists = true;
  out->clear();
  std::uint8_t buf[1 << 16];
  while (true) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      if (error != nullptr) *error = Errno("read " + path);
      ::close(fd);
      return false;
    }
    if (n == 0) break;
    out->insert(out->end(), buf, buf + n);
  }
  ::close(fd);
  return true;
}

}  // namespace

std::uint32_t Crc32(const std::uint8_t* data, std::size_t size) {
  const auto& table = Crc32Table();
  std::uint32_t crc = 0xffffffffu;
  for (std::size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ data[i]) & 0xffu] ^ (crc >> 8);
  }
  return crc ^ 0xffffffffu;
}

WalWriter::~WalWriter() { Close(); }

bool WalWriter::Open(const std::string& path, std::string* error) {
  Close();
  fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd_ < 0) {
    if (error != nullptr) *error = Errno("open " + path);
    return false;
  }
  struct stat st;
  bytes_ = (::fstat(fd_, &st) == 0) ? static_cast<std::uint64_t>(st.st_size)
                                    : 0;
  records_ = 0;
  return true;
}

void WalWriter::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool WalWriter::Append(std::uint8_t type, const std::uint8_t* payload,
                       std::size_t size, std::string* error) {
  if (fd_ < 0) {
    if (error != nullptr) *error = "wal not open";
    return false;
  }
  FaultAction fault_action;
  if (SUBEX_FAULT(FaultPoint::kWalAppend, &fault_action)) {
    if (error != nullptr) *error = "wal append: injected fault";
    return false;
  }
  std::vector<std::uint8_t> framed;
  framed.reserve(9 + size);
  PutU32(framed, static_cast<std::uint32_t>(size));
  // CRC covers the type byte and payload, so a bit flip anywhere in the
  // record (except the length, which the payload-walk bounds) is caught.
  std::vector<std::uint8_t> checked;
  checked.reserve(1 + size);
  checked.push_back(type);
  checked.insert(checked.end(), payload, payload + size);
  PutU32(framed, Crc32(checked.data(), checked.size()));
  framed.insert(framed.end(), checked.begin(), checked.end());
  if (!WriteAll(fd_, framed.data(), framed.size(), error)) return false;
  bytes_ += framed.size();
  ++records_;
  return true;
}

bool WalWriter::Sync(std::string* error) {
  if (fd_ < 0) {
    if (error != nullptr) *error = "wal not open";
    return false;
  }
  FaultAction fault_action;
  if (SUBEX_FAULT(FaultPoint::kWalSync, &fault_action)) {
    if (error != nullptr) *error = "wal sync: injected fault";
    return false;
  }
  if (::fdatasync(fd_) != 0) {
    if (error != nullptr) *error = Errno("fdatasync");
    return false;
  }
  return true;
}

bool WalWriter::Truncate(std::string* error) {
  if (fd_ < 0) {
    if (error != nullptr) *error = "wal not open";
    return false;
  }
  if (::ftruncate(fd_, 0) != 0) {
    if (error != nullptr) *error = Errno("ftruncate");
    return false;
  }
  // O_APPEND writes always land at the (now zero) end of file.
  bytes_ = 0;
  records_ = 0;
  return true;
}

WalReadResult ReadWal(const std::string& path) {
  WalReadResult result;
  std::vector<std::uint8_t> raw;
  bool exists = false;
  if (!ReadFile(path, &raw, &exists, &result.error)) return result;
  if (!exists) return result;
  std::size_t pos = 0;
  while (pos + 8 <= raw.size()) {
    const std::uint32_t len = GetU32(raw.data() + pos);
    const std::uint32_t crc = GetU32(raw.data() + pos + 4);
    if (pos + 8 + 1 + len > raw.size()) {
      result.truncated_tail = true;  // Torn final record: stop cleanly.
      break;
    }
    const std::uint8_t* checked = raw.data() + pos + 8;
    if (Crc32(checked, 1 + len) != crc) {
      result.truncated_tail = true;
      break;
    }
    WalRecord record;
    record.type = checked[0];
    record.payload.assign(checked + 1, checked + 1 + len);
    result.records.push_back(std::move(record));
    pos += 8 + 1 + len;
  }
  if (pos < raw.size() && !result.truncated_tail) result.truncated_tail = true;
  result.bytes_consumed = pos;
  return result;
}

bool WriteCheckpointFile(const std::string& path,
                         const std::vector<std::uint8_t>& payload,
                         std::string* error) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    if (error != nullptr) *error = Errno("open " + tmp);
    return false;
  }
  std::vector<std::uint8_t> framed;
  framed.reserve(16 + payload.size());
  PutU32(framed, kCheckpointMagic);
  PutU32(framed, kCheckpointVersion);
  PutU32(framed, Crc32(payload.data(), payload.size()));
  PutU32(framed, static_cast<std::uint32_t>(payload.size()));
  framed.insert(framed.end(), payload.begin(), payload.end());
  const bool written = WriteAll(fd, framed.data(), framed.size(), error);
  FaultAction fault_action;
  bool synced = written;
  if (synced && SUBEX_FAULT(FaultPoint::kWalSync, &fault_action)) {
    if (error != nullptr) *error = "checkpoint sync: injected fault";
    synced = false;
  }
  if (synced && ::fsync(fd) != 0) {
    if (error != nullptr) *error = Errno("fsync");
    synced = false;
  }
  ::close(fd);
  if (!synced) {
    ::unlink(tmp.c_str());
    return false;
  }
  // rename is atomic: readers see either the old checkpoint or the new
  // one, never a torn file.
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    if (error != nullptr) *error = Errno("rename");
    ::unlink(tmp.c_str());
    return false;
  }
  return true;
}

CheckpointReadResult ReadCheckpointFile(const std::string& path) {
  CheckpointReadResult result;
  std::vector<std::uint8_t> raw;
  if (!ReadFile(path, &raw, &result.exists, &result.error)) return result;
  if (!result.exists) return result;
  if (raw.size() < 16 || GetU32(raw.data()) != kCheckpointMagic) {
    result.error = "checkpoint: bad magic or truncated envelope";
    return result;
  }
  if (GetU32(raw.data() + 4) != kCheckpointVersion) {
    result.error = "checkpoint: unsupported version";
    return result;
  }
  const std::uint32_t crc = GetU32(raw.data() + 8);
  const std::uint32_t len = GetU32(raw.data() + 12);
  if (16 + static_cast<std::size_t>(len) != raw.size()) {
    result.error = "checkpoint: length mismatch";
    return result;
  }
  if (Crc32(raw.data() + 16, len) != crc) {
    result.error = "checkpoint: CRC mismatch";
    return result;
  }
  result.payload.assign(raw.begin() + 16, raw.end());
  return result;
}

}  // namespace subex
