#include "online/windowed_scorer.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <utility>

#include "common/check.h"
#include "common/rng.h"

namespace subex {

namespace {

/// Batch LODA's bin count for a window of `n` points — must stay the exact
/// expression of `Loda::Score` for parity.
int BinsFor(const Loda::Options& options, int n) {
  return options.num_bins > 0
             ? options.num_bins
             : std::max(4, static_cast<int>(2.0 * std::cbrt(n)));
}

/// Batch LODA's histogram width — exact expression of `Loda::Score`.
double WidthFor(double lo, double hi, int bins) {
  return std::max((hi - lo) / bins, 1e-12);
}

/// Batch LODA's bin index — exact expression of `Loda::Score`.
int BinFor(double v, double lo, double width, int bins) {
  return std::min(bins - 1, static_cast<int>((v - lo) / width));
}

}  // namespace

struct IncrementalLodaScorer::SubspaceState {
  Subspace subspace;
  /// One sparse projector, stored as the batch path iterates it: entry `j`
  /// contributes `weights[j] * row[features[j]]`, in `j` order, so the
  /// incremental dot product is the bitwise batch value.
  struct Projector {
    std::vector<FeatureId> features;
    std::vector<double> weights;
    double lo = 0.0;
    double hi = 0.0;
    std::vector<int> histogram;
  };
  std::vector<Projector> projectors;
  /// Projected values of every window row (oldest first): one value per
  /// projector, computed once at point entry.
  std::deque<std::vector<double>> projected;
  int bins = 0;
  std::uint64_t last_touch = 0;
};

IncrementalLodaScorer::IncrementalLodaScorer(const Loda::Options& options,
                                             std::size_t max_subspace_states)
    : options_(options),
      batch_(options),
      max_subspace_states_(max_subspace_states) {
  SUBEX_CHECK(max_subspace_states >= 1);
}

IncrementalLodaScorer::~IncrementalLodaScorer() = default;

IncrementalLodaScorer::SubspaceState& IncrementalLodaScorer::StateFor(
    const Dataset& window, const Subspace& subspace) {
  for (auto& state : states_) {
    if (state->subspace == subspace) {
      state->last_touch = ++touch_clock_;
      return *state;
    }
  }
  if (states_.size() >= max_subspace_states_) {
    auto lru = std::min_element(states_.begin(), states_.end(),
                                [](const auto& a, const auto& b) {
                                  return a->last_touch < b->last_touch;
                                });
    states_.erase(lru);
  }

  // Draw the projectors from the identical Rng call sequence as
  // `Loda::Score` (seed xor subspace hash; per projector: feature sample,
  // then Gaussian weights) so the projector set is bitwise the batch one.
  auto state = std::make_unique<SubspaceState>();
  state->subspace = subspace;
  std::vector<FeatureId> full;
  std::span<const FeatureId> features = subspace.AsSpan();
  if (subspace.empty()) {
    full.resize(window.num_features());
    std::iota(full.begin(), full.end(), 0);
    features = full;
  }
  const int dim = static_cast<int>(features.size());
  const int sparse_count =
      std::max(1, static_cast<int>(std::lround(std::sqrt(dim))));
  Rng rng(options_.seed ^ SubspaceHash()(subspace));
  state->projectors.resize(
      static_cast<std::size_t>(options_.num_projections));
  for (auto& proj : state->projectors) {
    const std::vector<int> active =
        rng.SampleWithoutReplacement(dim, sparse_count);
    proj.features.resize(active.size());
    proj.weights.resize(active.size());
    for (std::size_t j = 0; j < active.size(); ++j) {
      proj.features[j] = features[active[static_cast<std::size_t>(j)]];
    }
    for (double& w : proj.weights) w = rng.Gaussian();
  }

  const std::size_t n = window.num_points();
  const std::size_t num_proj = state->projectors.size();
  for (std::size_t p = 0; p < n; ++p) {
    std::vector<double> vals(num_proj);
    for (std::size_t t = 0; t < num_proj; ++t) {
      const auto& proj = state->projectors[t];
      double v = 0.0;
      for (std::size_t j = 0; j < proj.weights.size(); ++j) {
        v += proj.weights[j] * window.Value(p, proj.features[j]);
      }
      vals[t] = v;
    }
    state->projected.push_back(std::move(vals));
  }
  state->bins = BinsFor(options_, static_cast<int>(n));
  for (std::size_t t = 0; t < num_proj; ++t) RebuildProjector(*state, t);

  state->last_touch = ++touch_clock_;
  states_.push_back(std::move(state));
  return *states_.back();
}

void IncrementalLodaScorer::RebuildProjector(SubspaceState& state,
                                             std::size_t t) {
  auto& proj = state.projectors[t];
  SUBEX_CHECK(!state.projected.empty());
  double lo = state.projected.front()[t];
  double hi = lo;
  for (const auto& vals : state.projected) {
    lo = std::min(lo, vals[t]);
    hi = std::max(hi, vals[t]);
  }
  proj.lo = lo;
  proj.hi = hi;
  const double width = WidthFor(lo, hi, state.bins);
  proj.histogram.assign(static_cast<std::size_t>(state.bins), 0);
  for (const auto& vals : state.projected) {
    ++proj.histogram[static_cast<std::size_t>(
        BinFor(vals[t], lo, width, state.bins))];
  }
  ++rebuilds_;
}

void IncrementalLodaScorer::AdvanceState(SubspaceState& state,
                                         const WindowDelta& delta) {
  const std::size_t num_proj = state.projectors.size();

  // Point entry: one dot product per projector, batch loop order.
  const Matrix& entered = *delta.entered;
  for (std::size_t r = 0; r < entered.rows(); ++r) {
    std::vector<double> vals(num_proj);
    for (std::size_t t = 0; t < num_proj; ++t) {
      const auto& proj = state.projectors[t];
      double v = 0.0;
      for (std::size_t j = 0; j < proj.weights.size(); ++j) {
        v += proj.weights[j] *
             entered(r, static_cast<std::size_t>(proj.features[j]));
      }
      vals[t] = v;
    }
    state.projected.push_back(std::move(vals));
  }

  // Point exit: remember the projected values for histogram decrements.
  std::vector<std::vector<double>> popped;
  popped.reserve(delta.num_exited);
  for (std::size_t i = 0; i < delta.num_exited; ++i) {
    SUBEX_CHECK(!state.projected.empty());
    popped.push_back(std::move(state.projected.front()));
    state.projected.pop_front();
  }
  SUBEX_CHECK_MSG(state.projected.size() == delta.window_size,
                  "scorer state diverged from window");

  const int old_bins = state.bins;
  state.bins = BinsFor(options_, static_cast<int>(delta.window_size));

  for (std::size_t t = 0; t < num_proj; ++t) {
    auto& proj = state.projectors[t];
    const double old_lo = proj.lo;
    const double old_hi = proj.hi;

    // An exiting extreme may shrink the range: rescan. Otherwise the range
    // can only grow, by an entering value.
    bool extremes_exited = false;
    for (const auto& vals : popped) {
      if (vals[t] <= old_lo || vals[t] >= old_hi) {
        extremes_exited = true;
        break;
      }
    }
    double lo = old_lo;
    double hi = old_hi;
    if (extremes_exited) {
      lo = state.projected.front()[t];
      hi = lo;
      for (const auto& vals : state.projected) {
        lo = std::min(lo, vals[t]);
        hi = std::max(hi, vals[t]);
      }
    } else {
      // Fold only entered rows that are still present: when one advance
      // pushes more rows than the window holds, the overflow rows exited
      // already (they sit in `popped`) and must not widen the range. The
      // survivors are the deque's newest min(entered, window_size) rows.
      const std::size_t still_present =
          std::min(entered.rows(), delta.window_size);
      const std::size_t deque_size = state.projected.size();
      for (std::size_t r = 0; r < still_present; ++r) {
        const double v =
            state.projected[deque_size - still_present + r][t];
        lo = std::min(lo, v);
        hi = std::max(hi, v);
      }
    }
    const bool range_changed = lo != proj.lo || hi != proj.hi;
    proj.lo = lo;
    proj.hi = hi;

    if (state.bins != old_bins || range_changed ||
        static_cast<int>(proj.histogram.size()) != state.bins) {
      RebuildProjector(state, t);
      continue;
    }
    // Fast path: range and bin count unchanged, so every existing row keeps
    // its bin — add entering rows, subtract exiting ones.
    const double width = WidthFor(proj.lo, proj.hi, state.bins);
    const std::size_t still_present =
        std::min(entered.rows(), delta.window_size);
    const std::size_t deque_size = state.projected.size();
    for (std::size_t r = 0; r < still_present; ++r) {
      const double v = state.projected[deque_size - still_present + r][t];
      ++proj.histogram[static_cast<std::size_t>(
          BinFor(v, proj.lo, width, state.bins))];
    }
    const std::size_t exited_old = delta.num_exited -
                                   (entered.rows() - still_present);
    for (std::size_t i = 0; i < exited_old; ++i) {
      const double v = popped[i][t];
      --proj.histogram[static_cast<std::size_t>(
          BinFor(v, proj.lo, width, state.bins))];
    }
  }
}

void IncrementalLodaScorer::OnAdvance(const WindowDelta& delta) {
  SUBEX_CHECK(delta.entered != nullptr);
  for (auto& state : states_) AdvanceState(*state, delta);
}

std::vector<double> IncrementalLodaScorer::Score(const Dataset& window,
                                                 const Subspace& subspace) {
  const int n = static_cast<int>(window.num_points());
  SUBEX_CHECK(n >= 3);
  SubspaceState& state = StateFor(window, subspace);
  SUBEX_CHECK_MSG(state.projected.size() == window.num_points(),
                  "scorer state diverged from window");

  const int bins = state.bins;
  const std::size_t num_proj = state.projectors.size();
  std::vector<double> widths(num_proj);
  for (std::size_t t = 0; t < num_proj; ++t) {
    widths[t] = WidthFor(state.projectors[t].lo, state.projectors[t].hi,
                         bins);
  }
  // Accumulation mirrors the batch path: per point, the per-projector
  // -log(density) terms are summed in projector order, so the float result
  // is bitwise `Loda::Score` on a snapshot of this window.
  std::vector<double> scores(static_cast<std::size_t>(n));
  for (int p = 0; p < n; ++p) {
    const auto& vals = state.projected[static_cast<std::size_t>(p)];
    double sum = 0.0;
    for (std::size_t t = 0; t < num_proj; ++t) {
      const auto& proj = state.projectors[t];
      const int b = BinFor(vals[t], proj.lo, widths[t], bins);
      const double density =
          (proj.histogram[static_cast<std::size_t>(b)] + 1.0) /
          ((n + bins) * widths[t]);
      sum -= std::log(density);
    }
    scores[static_cast<std::size_t>(p)] = sum / options_.num_projections;
  }
  return scores;
}

}  // namespace subex
