#ifndef SUBEX_ONLINE_WINDOWED_SCORER_H_
#define SUBEX_ONLINE_WINDOWED_SCORER_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "common/matrix.h"
#include "data/dataset.h"
#include "detect/detector.h"
#include "detect/loda.h"
#include "subspace/subspace.h"

namespace subex {

/// What changed when an online window advanced: the rows pushed in (in push
/// order) and how many rows fell off the front. A scorer that mirrors the
/// window appends `entered` rows and then drops `num_exited` rows from its
/// oldest end — after both steps its row set matches the new window epoch
/// exactly, even when a single advance pushes more rows than the window
/// holds (some entered rows exit in the same advance).
struct WindowDelta {
  std::uint64_t epoch = 0;       ///< Epoch after the advance.
  std::size_t window_size = 0;   ///< Rows in the window after the advance.
  const Matrix* entered = nullptr;  ///< Rows pushed, oldest first.
  std::size_t num_exited = 0;    ///< Rows dropped from the oldest end.
};

/// A detector maintained against a sliding window.
///
/// `Score` returns **raw** (unstandardized) scores of every current window
/// row within `subspace`, bitwise identical to what `detector().Score`
/// would return on a fresh snapshot of the same window contents — that
/// parity is the contract tests assert per epoch, and what lets a stale
/// request fall back to a batch recompute on a pinned snapshot without
/// changing a single bit of the answer.
///
/// Not thread-safe: the owning `OnlineDataset` serializes all calls.
class WindowedScorer {
 public:
  virtual ~WindowedScorer() = default;

  /// The equivalent batch detector (the recompute-from-scratch reference).
  virtual const Detector& detector() const = 0;

  /// Folds one window advance into the incremental state.
  virtual void OnAdvance(const WindowDelta& delta) = 0;

  /// Raw scores of every row of the current window in `subspace`. `window`
  /// is the current epoch's snapshot (used to lazily build per-subspace
  /// state; implementations may ignore it once state exists).
  virtual std::vector<double> Score(const Dataset& window,
                                    const Subspace& subspace) = 0;
};

/// Incrementally maintained LODA (see `Loda` for the batch algorithm).
///
/// Per subspace the scorer fixes the batch detector's sparse Gaussian
/// projectors once (drawn from the identical `Rng` stream, so the
/// projector set is bitwise the batch one) and then maintains, per
/// projector, the projected value of every window row plus an equal-width
/// histogram over them:
///
///  * point entry: one O(sqrt(d)) dot product per projector, computed in
///    the batch loop order (bitwise the value the batch path computes),
///    then a histogram increment;
///  * point exit: a histogram decrement using the stored projected value;
///  * the histogram range [lo, hi] and the bin count (a function of the
///    window size before saturation) are monitored per advance — when an
///    extreme value enters or exits, or the bin count changes, that
///    projector's histogram is rebuilt by one O(n) scan, otherwise the
///    add/subtract fast path applies.
///
/// Scoring an epoch then only bins the stored projections and sums log
/// densities — the per-row dot products, the dominant batch cost, are paid
/// once per point instead of once per epoch.
///
/// Subspace states are LRU-bounded (`max_subspace_states`); evicted
/// subspaces rebuild lazily from the window snapshot on next use.
class IncrementalLodaScorer final : public WindowedScorer {
 public:
  explicit IncrementalLodaScorer(const Loda::Options& options,
                                 std::size_t max_subspace_states = 8);
  ~IncrementalLodaScorer() override;

  const Detector& detector() const override { return batch_; }
  void OnAdvance(const WindowDelta& delta) override;
  std::vector<double> Score(const Dataset& window,
                            const Subspace& subspace) override;

  /// Histogram rebuild count across all states (observability for tests:
  /// the fast path should dominate in steady state).
  std::uint64_t rebuilds() const { return rebuilds_; }

 private:
  struct SubspaceState;

  SubspaceState& StateFor(const Dataset& window, const Subspace& subspace);
  void RebuildProjector(SubspaceState& state, std::size_t t);
  void AdvanceState(SubspaceState& state, const WindowDelta& delta);

  Loda::Options options_;
  Loda batch_;
  std::size_t max_subspace_states_;
  std::vector<std::unique_ptr<SubspaceState>> states_;
  std::uint64_t touch_clock_ = 0;
  std::uint64_t rebuilds_ = 0;
};

/// Epoch-tagged re-index scorer for detectors whose internals do not
/// decompose incrementally (kNN distance, LOF: the k-NN graph of a window
/// changes non-locally when a point enters or leaves). Each advance simply
/// invalidates the previous epoch's scores; `Score` recomputes on the new
/// window snapshot, and the owning dataset's per-epoch cache makes that
/// recompute happen at most once per (epoch, subspace) — the "re-index".
/// Parity with the batch path is exact by construction.
class ReindexScorer final : public WindowedScorer {
 public:
  explicit ReindexScorer(const Detector& detector) : detector_(detector) {}

  const Detector& detector() const override { return detector_; }
  void OnAdvance(const WindowDelta& delta) override { (void)delta; }
  std::vector<double> Score(const Dataset& window,
                            const Subspace& subspace) override {
    return detector_.Score(window, subspace);
  }

 private:
  const Detector& detector_;
};

}  // namespace subex

#endif  // SUBEX_ONLINE_WINDOWED_SCORER_H_
