#ifndef SUBEX_ONLINE_WAL_H_
#define SUBEX_ONLINE_WAL_H_

#include <cstdint>
#include <string>
#include <vector>

namespace subex {

/// \file
/// Length-prefixed, checksummed write-ahead log + checkpoint files for
/// crash-safe `OnlineDataset` ingest.
///
/// On-disk record layout (little-endian):
///
///   | u32 payload_len | u32 crc32(type ++ payload) | u8 type | payload |
///
/// A reader replays records until the file ends or a record fails its
/// length/CRC check — a torn tail from a crash mid-write truncates cleanly
/// to the last durable record instead of poisoning the replay. Checkpoints
/// live in a sibling file written tmp + fsync + rename, so a crash between
/// checkpointing and WAL truncation leaves both artifacts readable and
/// recovery simply skips WAL records the checkpoint already covers.

/// CRC-32 (IEEE 802.3 polynomial, the zlib/PNG one).
std::uint32_t Crc32(const std::uint8_t* data, std::size_t size);

/// One decoded WAL record.
struct WalRecord {
  std::uint8_t type = 0;
  std::vector<std::uint8_t> payload;
};

/// Appends records to one log file. Not thread-safe — `OnlineDataset`
/// serializes appends under its ingest mutex.
class WalWriter {
 public:
  WalWriter() = default;
  ~WalWriter();

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Opens (creating if absent) `path` for appending. On success `bytes()`
  /// reflects the existing file size.
  bool Open(const std::string& path, std::string* error = nullptr);
  void Close();
  bool is_open() const { return fd_ >= 0; }

  /// Appends one record. The write is a single `write(2)` of the framed
  /// record, so a crash tears at most the final record (which the reader
  /// drops). Injection points: `kWalAppend` fails the write, `kWalSync`
  /// fails `Sync`.
  bool Append(std::uint8_t type, const std::uint8_t* payload,
              std::size_t size, std::string* error = nullptr);

  /// fdatasync the log (kill -9 survives the page cache; this is for
  /// power-loss-grade durability and the checkpoint path).
  bool Sync(std::string* error = nullptr);

  /// Empties the log (after a durable checkpoint made its records
  /// redundant).
  bool Truncate(std::string* error = nullptr);

  std::uint64_t bytes() const { return bytes_; }
  std::uint64_t records() const { return records_; }

 private:
  int fd_ = -1;
  std::uint64_t bytes_ = 0;
  std::uint64_t records_ = 0;
};

/// Replays a WAL file front to back.
struct WalReadResult {
  std::vector<WalRecord> records;
  std::uint64_t bytes_consumed = 0;
  /// A trailing partial or CRC-corrupt record was dropped (expected after
  /// a crash mid-append; not an error).
  bool truncated_tail = false;
  /// Unreadable file (open/IO failure). An absent file yields zero records
  /// with `ok` — a fresh directory is not an error.
  std::string error;
  bool ok() const { return error.empty(); }
};

WalReadResult ReadWal(const std::string& path);

/// Writes `payload` to `path` atomically: tmp file + fsync + rename, with a
/// magic/CRC envelope (`| magic "SBXC" | u32 version | u32 crc32(payload) |
/// u32 payload_len | payload |`). Used for epoch checkpoints.
bool WriteCheckpointFile(const std::string& path,
                         const std::vector<std::uint8_t>& payload,
                         std::string* error = nullptr);

/// Reads a checkpoint written by `WriteCheckpointFile`. Absent file: ok()
/// with `exists == false`. Corrupt envelope/CRC: error (the caller decides
/// whether to fall back to a full WAL replay).
struct CheckpointReadResult {
  bool exists = false;
  std::vector<std::uint8_t> payload;
  std::string error;
  bool ok() const { return error.empty(); }
};

CheckpointReadResult ReadCheckpointFile(const std::string& path);

}  // namespace subex

#endif  // SUBEX_ONLINE_WAL_H_
