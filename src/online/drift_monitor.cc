#include "online/drift_monitor.h"

#include <utility>

#include "common/check.h"
#include "stats/two_sample_tests.h"

namespace subex {

DriftMonitor::DriftMonitor(const DriftMonitorOptions& options)
    : options_(options) {
  SUBEX_CHECK(options.ks_threshold >= 0.0 && options.ks_threshold <= 1.0);
  SUBEX_CHECK(options.max_p_value >= 0.0 && options.max_p_value <= 1.0);
  SUBEX_CHECK(options.min_window >= 2);
}

DriftMonitor::Result DriftMonitor::Observe(std::uint64_t epoch,
                                           std::vector<double> scores) {
  (void)epoch;
  Result result;
  if (scores.size() >= options_.min_window &&
      previous_.size() >= options_.min_window) {
    const TestResult ks = KolmogorovSmirnovTest(previous_, scores);
    result.tested = true;
    result.ks_statistic = ks.statistic;
    result.p_value = ks.p_value;
    result.drifted = ks.statistic >= options_.ks_threshold &&
                     ks.p_value <= options_.max_p_value;
    last_statistic_ = ks.statistic;
    if (result.drifted) ++drift_count_;
  }
  previous_ = std::move(scores);
  return result;
}

}  // namespace subex
