#ifndef SUBEX_ONLINE_DRIFT_MONITOR_H_
#define SUBEX_ONLINE_DRIFT_MONITOR_H_

#include <cstdint>
#include <vector>

namespace subex {

/// Knobs of a `DriftMonitor`.
struct DriftMonitorOptions {
  /// Alert when the two-sample KS statistic between consecutive windows'
  /// score distributions reaches this value...
  double ks_threshold = 0.25;
  /// ...and the KS p-value is at most this (both must hold).
  double max_p_value = 0.05;
  /// Windows smaller than this are not tested (KS on a handful of points
  /// is noise).
  std::size_t min_window = 32;
};

/// Concept-drift detector over a stream of per-epoch score distributions.
///
/// Scores — not raw features — are the monitored signal: a distribution
/// shift of the detector's own outlyingness scores is exactly the event
/// that invalidates cached explanations, regardless of which marginal
/// moved. Each window advance feeds the new epoch's full-space raw score
/// vector; the monitor runs a two-sample Kolmogorov–Smirnov test against
/// the previous epoch's vector and flags drift when the D statistic
/// clears `ks_threshold` with p ≤ `max_p_value`. Consecutive windows
/// overlap in all but the advanced stride, so D stays near zero in steady
/// state and jumps when a concept boundary slides through the window.
///
/// Not thread-safe: the owning `OnlineDataset` serializes calls.
class DriftMonitor {
 public:
  explicit DriftMonitor(const DriftMonitorOptions& options = {});

  struct Result {
    bool tested = false;   ///< False when either window was too small.
    bool drifted = false;  ///< Threshold and p-value both cleared.
    double ks_statistic = 0.0;
    double p_value = 1.0;
  };

  /// Compares `scores` (the current epoch's raw full-space scores) against
  /// the previous observed epoch's, then retains `scores` as the new
  /// reference.
  Result Observe(std::uint64_t epoch, std::vector<double> scores);

  const DriftMonitorOptions& options() const { return options_; }
  /// Epochs flagged as drifted since construction.
  std::uint64_t drift_count() const { return drift_count_; }
  /// Last computed KS statistic (0 until two testable epochs were seen).
  double last_statistic() const { return last_statistic_; }

 private:
  DriftMonitorOptions options_;
  std::vector<double> previous_;
  std::uint64_t drift_count_ = 0;
  double last_statistic_ = 0.0;
};

}  // namespace subex

#endif  // SUBEX_ONLINE_DRIFT_MONITOR_H_
