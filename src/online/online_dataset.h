#ifndef SUBEX_ONLINE_ONLINE_DATASET_H_
#define SUBEX_ONLINE_ONLINE_DATASET_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/matrix.h"
#include "data/dataset.h"
#include "detect/loda.h"
#include "obs/metrics.h"
#include "online/drift_monitor.h"
#include "online/wal.h"
#include "online/windowed_scorer.h"
#include "serve/score_cache.h"
#include "stream/sliding_window.h"
#include "subspace/subspace.h"

namespace subex {

/// Knobs of an `OnlineDataset`.
struct OnlineDatasetOptions {
  /// Name clients address `kIngest`/`kOnlineScore`/`kOnlineExplain` to.
  std::string name = "stream";
  /// Points the sliding window retains.
  std::size_t window_capacity = 512;
  /// Ingested points per window advance (the stride): the window's visible
  /// contents only change at an advance, which bumps the epoch. Points
  /// beyond the current stride wait in a pending buffer.
  std::size_t advance_every = 64;
  /// Scoring refuses (`kWindowTooSmall`) below this many window rows.
  std::size_t min_score_window = 32;
  /// Drift-test configuration (KS over consecutive epochs' score
  /// distributions).
  DriftMonitorOptions drift;
  /// Registered scorer driving the drift test; empty = first registered.
  std::string drift_detector;
  /// Sizing/manager/name of the per-epoch score cache.
  ScoreCacheOptions cache;
  /// Directory for the crash-safety artifacts (`<dir>/<name>.wal`,
  /// `<dir>/<name>.ckpt`). Empty disables the WAL: ingest is then lost on
  /// a crash.
  std::string wal_dir;
  /// Checkpoint (and truncate the WAL) every this many advances.
  std::size_t wal_checkpoint_every = 16;
  /// fdatasync the WAL after every append. A kill -9 survives the page
  /// cache without this; enable it for power-loss-grade durability.
  bool wal_sync = false;
};

/// A named, continuously-ingesting windowed dataset: the serving-side
/// object behind the online protocol.
///
/// Ingested rows accumulate in a pending buffer; every `advance_every` rows
/// the window advances — pending rows push in, the oldest rows fall out,
/// and the **epoch** increments. Between advances the window is frozen, so
/// an epoch identifies exact window contents; that makes scores cacheable
/// (keys embed the epoch), lets incremental scorers assert bitwise parity
/// against a batch recompute of the same epoch, and gives explanations a
/// precise freshness label (the epoch they were computed against).
///
/// An advance invalidates exactly the previous epochs' entries of this
/// dataset's `ScoreCache` via `EvictIf` (freed bytes flow through the
/// `EvictionManager`; nothing else in the process is flushed), folds the
/// delta into every registered `WindowedScorer`, and feeds the new epoch's
/// full-space raw scores to the `DriftMonitor` — drift raises a structured
/// `EventLog` alert and the `online.drift_score` gauge.
///
/// Thread model: one mutex serializes ingest, advances and live-window
/// scoring (incremental scorers are fast, so the critical sections are
/// short); stale-snapshot recomputes (`ScoreAt` after the window moved on)
/// run outside the lock. Scorer registration must finish before serving.
///
/// Crash safety (`wal_dir` set): every `Append` batch is logged to a
/// checksummed WAL before it is applied, and every `wal_checkpoint_every`
/// advances the full ingest state (window rows, pending rows, epoch,
/// counters) is checkpointed atomically and the WAL truncated. After a
/// kill -9, `RecoverFromWal` — called after scorer registration, before
/// serving — restores the checkpoint and replays post-checkpoint WAL
/// records through the normal ingest path, landing at the exact epoch the
/// crashed process reached with bitwise-identical window contents; the
/// scorer parity contract then makes every window score bitwise identical
/// to an uninterrupted run. Drift-monitor history is deliberately not
/// checkpointed: it influences only drift *events*, never scores, and
/// re-warms within a few epochs. A WAL write failure degrades (logging
/// stops, `online.wal_degraded` event + flag, serving continues) rather
/// than failing ingest.
class OnlineDataset {
 public:
  OnlineDataset(const OnlineDatasetOptions& options,
                std::size_t num_features);
  ~OnlineDataset();

  OnlineDataset(const OnlineDataset&) = delete;
  OnlineDataset& operator=(const OnlineDataset&) = delete;

  /// Registers an incrementally maintained LODA under `detector_name`.
  void AddLoda(const std::string& detector_name,
               const Loda::Options& options);
  /// Registers a batch detector served through epoch-tagged re-indexing
  /// (kNN distance, LOF, ...). `detector` must outlive this object.
  void AddReindexDetector(const std::string& detector_name,
                          const Detector& detector);
  /// Registers an arbitrary scorer (the two helpers above cover the
  /// common cases).
  void AddScorer(const std::string& detector_name,
                 std::unique_ptr<WindowedScorer> scorer);

  bool HasDetector(const std::string& detector_name) const;

  enum class Status { kOk, kUnknownDetector, kWindowTooSmall };
  static const char* StatusMessage(Status status);

  struct IngestResult {
    std::size_t accepted = 0;        ///< Rows taken (all of them).
    std::uint64_t epoch = 0;         ///< Epoch after this call.
    std::size_t window_size = 0;     ///< Window rows after this call.
    std::uint64_t total_ingested = 0;  ///< Lifetime accepted rows.
    std::uint32_t advances = 0;      ///< Advances this call triggered.
  };

  /// Appends `rows` (width must equal `num_features()`), advancing the
  /// window zero or more times. Thread-safe.
  IngestResult Append(const Matrix& rows);
  IngestResult AppendRow(std::span<const double> row);

  /// Forces an advance with the pending rows, if any (stream end / tests).
  void Flush();

  /// What `RecoverFromWal` found on disk.
  struct RecoveryResult {
    bool recovered = false;  ///< A checkpoint or WAL records were applied.
    std::uint64_t checkpoint_epoch = 0;  ///< Epoch the checkpoint restored.
    std::uint64_t replayed_records = 0;  ///< Post-checkpoint WAL records.
    std::uint64_t replayed_rows = 0;     ///< Rows those records carried.
    /// The WAL ended in a torn record (expected after a crash mid-append;
    /// the torn record was dropped).
    bool truncated_tail = false;
    std::string error;  ///< Non-empty: corrupt artifacts, nothing applied.
    bool ok() const { return error.empty(); }
  };

  /// Restores state from `<wal_dir>/<name>.ckpt` + `<name>.wal`, then
  /// collapses both into a fresh checkpoint. Call after scorer
  /// registration and before serving; a no-op when `wal_dir` is empty or
  /// the directory is fresh. Scorers need no replay notification: their
  /// per-subspace state rebuilds lazily from the restored window snapshot
  /// (bitwise the batch computation, by the parity contract).
  RecoveryResult RecoverFromWal();

  /// A pinned epoch: the window contents frozen at `epoch`. `data` is null
  /// while the window is empty.
  struct EpochSnapshot {
    std::shared_ptr<const Dataset> data;
    std::uint64_t epoch = 0;
  };
  EpochSnapshot Snapshot();

  struct ScoredEpoch {
    ScoreVectorPtr scores;       ///< Standardized, one per window row.
    std::uint64_t epoch = 0;     ///< Epoch the scores describe.
  };

  /// Standardized scores of the **current** window in `subspace`, served
  /// from the per-epoch cache when possible. Bitwise
  /// `ScoreStandardized(batch detector, window snapshot, subspace)`.
  Status Score(const std::string& detector_name, const Subspace& subspace,
               ScoredEpoch* out);

  /// Epoch-consistent scores for a pinned snapshot: the live path serves
  /// while the epoch still matches; once the window advanced, the batch
  /// detector recomputes on the pinned snapshot outside the dataset lock —
  /// bitwise identical to what epoch `snapshot.epoch` served (the scorer
  /// parity contract), so an in-flight explanation stays internally
  /// consistent no matter how often the window moves beneath it.
  Status ScoreAt(const EpochSnapshot& snapshot,
                 const std::string& detector_name, const Subspace& subspace,
                 ScoredEpoch* out);

  /// Records that a request was answered from a stale epoch (rate-limited
  /// `online.stale_serve` event + counter). Called by the server after it
  /// finishes a request whose pinned epoch fell behind.
  void NoteStaleServe(std::uint64_t computed_epoch,
                      std::uint64_t current_epoch);

  struct StatsSnapshot {
    std::string name;
    std::uint64_t epoch = 0;
    std::size_t window_size = 0;
    std::size_t window_capacity = 0;
    std::size_t pending = 0;
    std::uint64_t total_ingested = 0;
    std::uint64_t advances = 0;
    std::uint64_t stale_serves = 0;
    std::uint64_t cache_entries = 0;
    std::uint64_t cache_bytes = 0;
    std::uint64_t epochs_invalidated = 0;  ///< Cache entries evicted by advances.
    bool drift_tested = false;
    double drift_score = 0.0;    ///< Last KS D statistic.
    double drift_p_value = 1.0;
    std::uint64_t drift_events = 0;
    bool wal_enabled = false;
    std::uint64_t wal_bytes = 0;     ///< Current WAL file size.
    std::uint64_t wal_records = 0;   ///< Records appended since open/truncate.
    std::uint64_t checkpoints = 0;   ///< Checkpoints written.
    std::uint64_t recovered_epoch = 0;  ///< Epoch RecoverFromWal restored.
    bool wal_degraded = false;       ///< WAL write failed; logging stopped.
    std::string ToJson() const;
  };
  StatsSnapshot stats() const;

  const std::string& name() const { return options_.name; }
  std::size_t num_features() const { return num_features_; }
  std::uint64_t epoch() const {
    return epoch_.load(std::memory_order_acquire);
  }
  const OnlineDatasetOptions& options() const { return options_; }

 private:
  struct NamedScorer {
    std::string name;
    std::unique_ptr<WindowedScorer> scorer;
  };

  WindowedScorer* FindScorer(const std::string& detector_name) const;
  const std::shared_ptr<const Dataset>& EnsureSnapshotLocked();
  IngestResult AppendLocked(const Matrix& rows, bool log_to_wal);
  void FlushLocked(bool log_to_wal);
  void AdvanceLocked(const Matrix& batch);
  Status ScoreLocked(const std::string& detector_name,
                     const Subspace& subspace, ScoredEpoch* out);
  bool WalEnabled() const { return !options_.wal_dir.empty(); }
  std::string WalPath() const;
  std::string CheckpointPath() const;
  void EnsureWalOpenLocked();
  void WalLogRowsLocked(const Matrix& rows);
  void DegradeWalLocked(const std::string& what, const std::string& error);
  void CheckpointLocked();

  const OnlineDatasetOptions options_;
  const std::size_t num_features_;

  mutable std::mutex mutex_;
  SlidingWindow window_;
  std::deque<std::vector<double>> pending_;
  std::shared_ptr<const Dataset> snapshot_;  // Lazy, reset per epoch.
  std::vector<NamedScorer> scorers_;
  DriftMonitor drift_monitor_;
  DriftMonitor::Result last_drift_;
  std::unique_ptr<ScoreCache> cache_;
  std::uint64_t total_ingested_ = 0;
  std::uint64_t advances_ = 0;
  std::uint64_t epochs_invalidated_ = 0;
  std::chrono::steady_clock::time_point last_advance_time_;

  WalWriter wal_;
  std::uint64_t wal_seq_ = 0;      ///< Seq of the last logged WAL record.
  std::uint64_t checkpoints_ = 0;
  std::uint64_t recovered_epoch_ = 0;
  bool wal_degraded_ = false;
  bool in_recovery_ = false;  ///< Suppresses checkpoints during replay.

  std::atomic<std::uint64_t> epoch_{0};
  std::atomic<std::uint64_t> stale_serves_{0};

  Gauge& epoch_gauge_;
  Gauge& drift_gauge_;
  Gauge& ingest_rate_gauge_;
  Gauge& wal_bytes_gauge_;
  Gauge& recovered_epoch_gauge_;
  Counter& ingested_counter_;
  Counter& advances_counter_;
  Counter& drift_events_counter_;
  Counter& stale_serves_counter_;
  Counter& checkpoints_counter_;
  Counter& wal_degraded_counter_;
};

/// Detector adapter pinning an `OnlineDataset` epoch: explainers score
/// through it and transparently get the epoch-consistent `ScoreAt` path.
/// Reports standardized scores (they already are).
class PinnedEpochDetector final : public Detector {
 public:
  PinnedEpochDetector(OnlineDataset& dataset,
                      OnlineDataset::EpochSnapshot snapshot,
                      std::string detector_name)
      : dataset_(dataset),
        snapshot_(std::move(snapshot)),
        detector_name_(std::move(detector_name)) {}

  std::string name() const override { return detector_name_; }
  bool ReturnsStandardizedScores() const override { return true; }
  std::vector<double> Score(const Dataset& data,
                            const Subspace& subspace) const override;

 private:
  OnlineDataset& dataset_;
  OnlineDataset::EpochSnapshot snapshot_;
  std::string detector_name_;
};

}  // namespace subex

#endif  // SUBEX_ONLINE_ONLINE_DATASET_H_
