#include "online/online_dataset.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <utility>

#include "common/check.h"
#include "common/json.h"
#include "obs/event_log.h"
#include "obs/registry.h"
#include "stats/descriptive.h"

namespace subex {

namespace {

/// Cache keys embed the epoch so an advance can evict exactly the stale
/// entries: "<detector>@<epoch>".
std::string DetectorEpochKey(const std::string& detector,
                             std::uint64_t epoch) {
  return detector + "@" + std::to_string(epoch);
}

/// WAL record type: one `Append` batch — `u64 seq | u32 num_rows | rows`
/// (row-major raw IEEE-754 bits, `num_features` doubles per row).
constexpr std::uint8_t kWalRowsRecord = 1;
/// WAL record type: a forced `Flush` advance — `u64 seq`. Without it a
/// replay would leave the flushed rows pending and land on a different
/// epoch than the crashed process reached.
constexpr std::uint8_t kWalFlushRecord = 2;

void PutU32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}

void PutU64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  PutU32(out, static_cast<std::uint32_t>(v));
  PutU32(out, static_cast<std::uint32_t>(v >> 32));
}

void PutF64(std::vector<std::uint8_t>& out, double v) {
  PutU64(out, std::bit_cast<std::uint64_t>(v));
}

/// Bounds-checked little-endian cursor over a checkpoint/WAL payload;
/// reads past the end stick `ok = false` instead of overrunning.
struct PayloadReader {
  const std::uint8_t* data;
  std::size_t size;
  std::size_t pos = 0;
  bool ok = true;

  std::uint32_t U32() {
    if (pos + 4 > size) {
      ok = false;
      return 0;
    }
    const std::uint32_t v = static_cast<std::uint32_t>(data[pos]) |
                            (static_cast<std::uint32_t>(data[pos + 1]) << 8) |
                            (static_cast<std::uint32_t>(data[pos + 2]) << 16) |
                            (static_cast<std::uint32_t>(data[pos + 3]) << 24);
    pos += 4;
    return v;
  }

  std::uint64_t U64() {
    const std::uint64_t lo = U32();
    const std::uint64_t hi = U32();
    return lo | (hi << 32);
  }

  double F64() { return std::bit_cast<double>(U64()); }
};

ScoreCacheOptions CacheOptionsFor(const OnlineDatasetOptions& options) {
  ScoreCacheOptions cache = options.cache;
  if (cache.name == ScoreCacheOptions{}.name) {
    cache.name = "online:" + options.name;
  }
  return cache;
}

}  // namespace

OnlineDataset::OnlineDataset(const OnlineDatasetOptions& options,
                             std::size_t num_features)
    : options_(options),
      num_features_(num_features),
      window_(options.window_capacity, num_features),
      drift_monitor_(options.drift),
      cache_(std::make_unique<ScoreCache>(CacheOptionsFor(options))),
      last_advance_time_(std::chrono::steady_clock::now()),
      epoch_gauge_(MetricsRegistry::Global().GetGauge("online.window_epoch")),
      drift_gauge_(MetricsRegistry::Global().GetGauge("online.drift_score")),
      ingest_rate_gauge_(
          MetricsRegistry::Global().GetGauge("online.ingest_rate")),
      wal_bytes_gauge_(
          MetricsRegistry::Global().GetGauge("online.wal_bytes")),
      recovered_epoch_gauge_(
          MetricsRegistry::Global().GetGauge("online.recovered_epoch")),
      ingested_counter_(
          MetricsRegistry::Global().GetCounter("online.ingested_points")),
      advances_counter_(
          MetricsRegistry::Global().GetCounter("online.advances")),
      drift_events_counter_(
          MetricsRegistry::Global().GetCounter("online.drift_events")),
      stale_serves_counter_(
          MetricsRegistry::Global().GetCounter("online.stale_serves")),
      checkpoints_counter_(
          MetricsRegistry::Global().GetCounter("online.checkpoints")),
      wal_degraded_counter_(
          MetricsRegistry::Global().GetCounter("online.wal_degraded")) {
  SUBEX_CHECK(!options.name.empty());
  SUBEX_CHECK(options.advance_every >= 1);
  SUBEX_CHECK(options.advance_every <= options.window_capacity);
  SUBEX_CHECK(options.min_score_window >= 3);  // Batch LODA's floor.
  if (WalEnabled()) SUBEX_CHECK(options.wal_checkpoint_every >= 1);
}

OnlineDataset::~OnlineDataset() = default;

void OnlineDataset::AddLoda(const std::string& detector_name,
                            const Loda::Options& options) {
  AddScorer(detector_name, std::make_unique<IncrementalLodaScorer>(options));
}

void OnlineDataset::AddReindexDetector(const std::string& detector_name,
                                       const Detector& detector) {
  AddScorer(detector_name, std::make_unique<ReindexScorer>(detector));
}

void OnlineDataset::AddScorer(const std::string& detector_name,
                              std::unique_ptr<WindowedScorer> scorer) {
  SUBEX_CHECK(!detector_name.empty());
  SUBEX_CHECK(scorer != nullptr);
  SUBEX_CHECK_MSG(FindScorer(detector_name) == nullptr,
                  "duplicate online detector name");
  scorers_.push_back(NamedScorer{detector_name, std::move(scorer)});
}

bool OnlineDataset::HasDetector(const std::string& detector_name) const {
  return FindScorer(detector_name) != nullptr;
}

const char* OnlineDataset::StatusMessage(Status status) {
  switch (status) {
    case Status::kOk:
      return "ok";
    case Status::kUnknownDetector:
      return "unknown online detector";
    case Status::kWindowTooSmall:
      return "window below minimum scoring size";
  }
  return "unknown status";
}

WindowedScorer* OnlineDataset::FindScorer(
    const std::string& detector_name) const {
  for (const auto& named : scorers_) {
    if (named.name == detector_name) return named.scorer.get();
  }
  return nullptr;
}

const std::shared_ptr<const Dataset>& OnlineDataset::EnsureSnapshotLocked() {
  if (snapshot_ == nullptr) {
    snapshot_ = std::make_shared<const Dataset>(window_.Snapshot());
  }
  return snapshot_;
}

OnlineDataset::IngestResult OnlineDataset::Append(const Matrix& rows) {
  SUBEX_CHECK_MSG(rows.cols() == num_features_ || rows.rows() == 0,
                  "ingest width mismatch");
  std::lock_guard<std::mutex> lock(mutex_);
  return AppendLocked(rows, /*log_to_wal=*/true);
}

OnlineDataset::IngestResult OnlineDataset::AppendLocked(const Matrix& rows,
                                                        bool log_to_wal) {
  IngestResult result;
  // Log before applying: a crash after the write replays the batch, a
  // crash before it is as if the client call never arrived.
  if (log_to_wal && rows.rows() > 0 && WalEnabled()) WalLogRowsLocked(rows);
  for (std::size_t r = 0; r < rows.rows(); ++r) {
    const std::span<const double> row = rows.Row(r);
    pending_.emplace_back(row.begin(), row.end());
  }
  total_ingested_ += rows.rows();
  ingested_counter_.Increment(rows.rows());
  while (pending_.size() >= options_.advance_every) {
    Matrix batch(options_.advance_every, num_features_);
    for (std::size_t r = 0; r < options_.advance_every; ++r) {
      const std::vector<double>& row = pending_.front();
      for (std::size_t f = 0; f < num_features_; ++f) batch(r, f) = row[f];
      pending_.pop_front();
    }
    AdvanceLocked(batch);
    ++result.advances;
  }
  result.accepted = rows.rows();
  result.epoch = epoch_.load(std::memory_order_relaxed);
  result.window_size = window_.size();
  result.total_ingested = total_ingested_;
  return result;
}

OnlineDataset::IngestResult OnlineDataset::AppendRow(
    std::span<const double> row) {
  Matrix m(1, num_features_);
  SUBEX_CHECK_MSG(row.size() == num_features_, "ingest width mismatch");
  for (std::size_t f = 0; f < num_features_; ++f) m(0, f) = row[f];
  return Append(m);
}

void OnlineDataset::Flush() {
  std::lock_guard<std::mutex> lock(mutex_);
  FlushLocked(/*log_to_wal=*/true);
}

void OnlineDataset::FlushLocked(bool log_to_wal) {
  if (pending_.empty()) return;
  if (log_to_wal && WalEnabled() && !wal_degraded_) {
    EnsureWalOpenLocked();
    if (!wal_degraded_) {
      std::vector<std::uint8_t> payload;
      PutU64(payload, wal_seq_ + 1);
      std::string error;
      if (!wal_.Append(kWalFlushRecord, payload.data(), payload.size(),
                       &error)) {
        DegradeWalLocked("append", error);
      } else {
        ++wal_seq_;
        wal_bytes_gauge_.Set(static_cast<std::int64_t>(wal_.bytes()));
      }
    }
  }
  Matrix batch(pending_.size(), num_features_);
  for (std::size_t r = 0; r < batch.rows(); ++r) {
    const std::vector<double>& row = pending_[r];
    for (std::size_t f = 0; f < num_features_; ++f) batch(r, f) = row[f];
  }
  pending_.clear();
  AdvanceLocked(batch);
}

void OnlineDataset::AdvanceLocked(const Matrix& batch) {
  const std::size_t old_size = window_.size();
  for (std::size_t r = 0; r < batch.rows(); ++r) window_.Push(batch.Row(r));
  const std::size_t num_exited = old_size + batch.rows() - window_.size();

  const std::uint64_t epoch =
      epoch_.fetch_add(1, std::memory_order_acq_rel) + 1;
  snapshot_.reset();
  ++advances_;
  advances_counter_.Increment();
  epoch_gauge_.Set(static_cast<std::int64_t>(epoch));

  WindowDelta delta;
  delta.epoch = epoch;
  delta.window_size = window_.size();
  delta.entered = &batch;
  delta.num_exited = num_exited;
  for (auto& named : scorers_) named.scorer->OnAdvance(delta);

  // Targeted invalidation: drop exactly the now-stale epochs' entries of
  // this dataset's cache — no global flush, and the freed bytes are
  // reported to the eviction manager like any other eviction.
  std::string keep_suffix = "@";
  keep_suffix += std::to_string(epoch);
  epochs_invalidated_ += cache_->EvictIf([&](const ScoreKey& key) {
    return !key.detector.ends_with(keep_suffix);
  });

  // Periodic checkpoint + WAL truncation. Suppressed during WAL replay —
  // a mid-replay truncation would drop records that are only applied, not
  // re-logged; `RecoverFromWal` collapses everything into one checkpoint
  // at the end instead.
  if (WalEnabled() && !in_recovery_ &&
      advances_ % options_.wal_checkpoint_every == 0) {
    CheckpointLocked();
  }

  // Ingest rate, measured advance-to-advance.
  const auto now = std::chrono::steady_clock::now();
  const double elapsed =
      std::chrono::duration<double>(now - last_advance_time_).count();
  last_advance_time_ = now;
  if (elapsed > 1e-9) {
    ingest_rate_gauge_.Set(static_cast<std::int64_t>(
        std::llround(static_cast<double>(batch.rows()) / elapsed)));
  }

  // Drift test on the new epoch's full-space raw scores. The drift scorer
  // warms the cache as a side effect: its standardized full-space vector is
  // published under the new epoch's key.
  if (scorers_.empty() ||
      window_.size() <
          std::max<std::size_t>(3, options_.drift.min_window)) {
    return;
  }
  const NamedScorer* drift_scorer = &scorers_.front();
  if (!options_.drift_detector.empty()) {
    for (const auto& named : scorers_) {
      if (named.name == options_.drift_detector) drift_scorer = &named;
    }
  }
  const Dataset& snap = *EnsureSnapshotLocked();
  std::vector<double> raw = drift_scorer->scorer->Score(snap, Subspace());
  cache_->Put(
      {DetectorEpochKey(drift_scorer->name, epoch), Subspace()},
      std::make_shared<const std::vector<double>>(Standardize(raw)));
  // Raw, not standardized: per-window z-scoring would erase exactly the
  // location/scale shifts the monitor is there to catch.
  const DriftMonitor::Result drift =
      drift_monitor_.Observe(epoch, std::move(raw));
  if (!drift.tested) return;
  last_drift_ = drift;
  drift_gauge_.Set(
      static_cast<std::int64_t>(std::llround(drift.ks_statistic * 1e6)));
  if (drift.drifted) {
    drift_events_counter_.Increment();
    SUBEX_EVENT(EventSeverity::kWarn, "online.drift",
                JsonObject()
                    .Add("dataset", options_.name)
                    .Add("epoch", epoch)
                    .Add("ks_statistic", drift.ks_statistic)
                    .Add("p_value", drift.p_value)
                    .Add("window_size",
                         static_cast<std::uint64_t>(window_.size()))
                    .Build());
  }
}

std::string OnlineDataset::WalPath() const {
  return options_.wal_dir + "/" + options_.name + ".wal";
}

std::string OnlineDataset::CheckpointPath() const {
  return options_.wal_dir + "/" + options_.name + ".ckpt";
}

void OnlineDataset::EnsureWalOpenLocked() {
  if (wal_.is_open() || wal_degraded_) return;
  std::string error;
  if (!wal_.Open(WalPath(), &error)) DegradeWalLocked("open", error);
}

void OnlineDataset::DegradeWalLocked(const std::string& what,
                                     const std::string& error) {
  if (wal_degraded_) return;
  wal_degraded_ = true;
  wal_degraded_counter_.Increment();
  SUBEX_EVENT(EventSeverity::kError, "online.wal_degraded",
              JsonObject()
                  .Add("dataset", options_.name)
                  .Add("op", what)
                  .Add("error", error)
                  .Build());
}

void OnlineDataset::WalLogRowsLocked(const Matrix& rows) {
  if (wal_degraded_) return;
  EnsureWalOpenLocked();
  if (wal_degraded_) return;
  std::vector<std::uint8_t> payload;
  payload.reserve(12 + rows.rows() * num_features_ * 8);
  PutU64(payload, wal_seq_ + 1);
  PutU32(payload, static_cast<std::uint32_t>(rows.rows()));
  for (std::size_t r = 0; r < rows.rows(); ++r) {
    for (std::size_t f = 0; f < num_features_; ++f) {
      PutF64(payload, rows(r, f));
    }
  }
  std::string error;
  if (!wal_.Append(kWalRowsRecord, payload.data(), payload.size(), &error)) {
    DegradeWalLocked("append", error);
    return;
  }
  ++wal_seq_;
  if (options_.wal_sync && !wal_.Sync(&error)) {
    DegradeWalLocked("sync", error);
    return;
  }
  wal_bytes_gauge_.Set(static_cast<std::int64_t>(wal_.bytes()));
}

void OnlineDataset::CheckpointLocked() {
  std::vector<std::uint8_t> payload;
  const std::uint64_t epoch = epoch_.load(std::memory_order_relaxed);
  payload.reserve(48 + (window_.size() + pending_.size()) * num_features_ * 8);
  PutU64(payload, epoch);
  PutU64(payload, total_ingested_);
  PutU64(payload, advances_);
  PutU64(payload, wal_seq_);
  // The window's next stream id: rows ever pushed past the pending buffer.
  const std::int64_t next_id =
      window_.size() > 0 ? window_.StreamId(window_.size() - 1) + 1 : 0;
  PutU64(payload, static_cast<std::uint64_t>(next_id));
  PutU32(payload, static_cast<std::uint32_t>(num_features_));
  PutU32(payload, static_cast<std::uint32_t>(window_.size()));
  PutU32(payload, static_cast<std::uint32_t>(pending_.size()));
  if (window_.size() > 0) {
    const Dataset snap = window_.Snapshot();
    for (std::size_t r = 0; r < snap.num_points(); ++r) {
      for (std::size_t f = 0; f < num_features_; ++f) {
        PutF64(payload, snap.Value(r, f));
      }
    }
  }
  for (const std::vector<double>& row : pending_) {
    for (std::size_t f = 0; f < num_features_; ++f) PutF64(payload, row[f]);
  }
  std::string error;
  if (!WriteCheckpointFile(CheckpointPath(), payload, &error)) {
    // Not fatal: the WAL keeps every record since the last good
    // checkpoint, so recovery still works — the log just keeps growing
    // until a checkpoint lands.
    SUBEX_EVENT(EventSeverity::kWarn, "online.checkpoint_failed",
                JsonObject()
                    .Add("dataset", options_.name)
                    .Add("epoch", epoch)
                    .Add("error", error)
                    .Build());
    return;
  }
  ++checkpoints_;
  checkpoints_counter_.Increment();
  if (wal_.is_open()) {
    std::string truncate_error;
    if (!wal_.Truncate(&truncate_error)) {
      DegradeWalLocked("truncate", truncate_error);
      return;
    }
  }
  wal_bytes_gauge_.Set(static_cast<std::int64_t>(wal_.bytes()));
}

OnlineDataset::RecoveryResult OnlineDataset::RecoverFromWal() {
  RecoveryResult result;
  if (!WalEnabled()) return result;
  std::lock_guard<std::mutex> lock(mutex_);
  SUBEX_CHECK_MSG(total_ingested_ == 0 && advances_ == 0,
                  "RecoverFromWal after ingest started");

  const CheckpointReadResult ckpt = ReadCheckpointFile(CheckpointPath());
  if (!ckpt.ok()) {
    result.error = ckpt.error;
    return result;
  }
  if (ckpt.exists) {
    PayloadReader reader{ckpt.payload.data(), ckpt.payload.size()};
    const std::uint64_t epoch = reader.U64();
    const std::uint64_t total_ingested = reader.U64();
    const std::uint64_t advances = reader.U64();
    const std::uint64_t wal_seq = reader.U64();
    const std::uint64_t next_id = reader.U64();
    const std::uint32_t num_features = reader.U32();
    const std::uint32_t window_rows = reader.U32();
    const std::uint32_t pending_rows = reader.U32();
    if (!reader.ok || num_features != num_features_ ||
        window_rows > options_.window_capacity) {
      result.error = "checkpoint: malformed payload";
      return result;
    }
    std::vector<std::vector<double>> rows(window_rows);
    for (auto& row : rows) {
      row.resize(num_features_);
      for (std::size_t f = 0; f < num_features_; ++f) row[f] = reader.F64();
    }
    std::deque<std::vector<double>> pending;
    for (std::uint32_t r = 0; r < pending_rows; ++r) {
      std::vector<double> row(num_features_);
      for (std::size_t f = 0; f < num_features_; ++f) row[f] = reader.F64();
      pending.push_back(std::move(row));
    }
    if (!reader.ok) {
      result.error = "checkpoint: truncated payload";
      return result;
    }
    window_.Restore(std::move(rows), static_cast<std::int64_t>(next_id));
    pending_ = std::move(pending);
    snapshot_.reset();
    total_ingested_ = total_ingested;
    advances_ = advances;
    wal_seq_ = wal_seq;
    epoch_.store(epoch, std::memory_order_release);
    epoch_gauge_.Set(static_cast<std::int64_t>(epoch));
    result.recovered = true;
    result.checkpoint_epoch = epoch;
  }

  const WalReadResult wal = ReadWal(WalPath());
  if (!wal.ok()) {
    result.error = wal.error;
    return result;
  }
  result.truncated_tail = wal.truncated_tail;
  in_recovery_ = true;
  for (const WalRecord& record : wal.records) {
    PayloadReader reader{record.payload.data(), record.payload.size()};
    const std::uint64_t seq = reader.U64();
    if (!reader.ok) {
      in_recovery_ = false;
      result.error = "wal: malformed record";
      return result;
    }
    // A crash between checkpoint rename and WAL truncation leaves records
    // the checkpoint already covers; skip them by sequence number.
    if (seq <= wal_seq_) continue;
    if (record.type == kWalRowsRecord) {
      const std::uint32_t num_rows = reader.U32();
      if (!reader.ok ||
          record.payload.size() !=
              12 + std::size_t{num_rows} * num_features_ * 8) {
        in_recovery_ = false;
        result.error = "wal: malformed rows record";
        return result;
      }
      Matrix batch(num_rows, num_features_);
      for (std::size_t r = 0; r < num_rows; ++r) {
        for (std::size_t f = 0; f < num_features_; ++f) {
          batch(r, f) = reader.F64();
        }
      }
      wal_seq_ = seq;
      AppendLocked(batch, /*log_to_wal=*/false);
      result.replayed_rows += num_rows;
    } else if (record.type == kWalFlushRecord) {
      wal_seq_ = seq;
      FlushLocked(/*log_to_wal=*/false);
    } else {
      wal_seq_ = seq;  // Unknown (newer) record type: skip, keep ordering.
    }
    ++result.replayed_records;
  }
  in_recovery_ = false;
  result.recovered = result.recovered || result.replayed_records > 0;

  recovered_epoch_ = epoch_.load(std::memory_order_relaxed);
  recovered_epoch_gauge_.Set(static_cast<std::int64_t>(recovered_epoch_));
  EnsureWalOpenLocked();
  if (result.recovered && !wal_degraded_) {
    // Collapse the restored state into a fresh checkpoint + empty WAL so
    // the next crash replays from here, not from the pre-crash artifacts.
    CheckpointLocked();
  }
  wal_bytes_gauge_.Set(static_cast<std::int64_t>(wal_.bytes()));
  if (result.recovered) {
    SUBEX_EVENT(EventSeverity::kInfo, "online.recovered",
                JsonObject()
                    .Add("dataset", options_.name)
                    .Add("epoch", recovered_epoch_)
                    .Add("checkpoint_epoch", result.checkpoint_epoch)
                    .Add("replayed_records", result.replayed_records)
                    .Add("replayed_rows", result.replayed_rows)
                    .Add("truncated_tail", result.truncated_tail)
                    .Build());
  }
  return result;
}

OnlineDataset::EpochSnapshot OnlineDataset::Snapshot() {
  std::lock_guard<std::mutex> lock(mutex_);
  EpochSnapshot snapshot;
  snapshot.epoch = epoch_.load(std::memory_order_relaxed);
  if (window_.size() > 0) snapshot.data = EnsureSnapshotLocked();
  return snapshot;
}

OnlineDataset::Status OnlineDataset::ScoreLocked(
    const std::string& detector_name, const Subspace& subspace,
    ScoredEpoch* out) {
  if (window_.size() < options_.min_score_window) {
    return Status::kWindowTooSmall;
  }
  WindowedScorer* scorer = FindScorer(detector_name);
  if (scorer == nullptr) return Status::kUnknownDetector;
  const std::uint64_t epoch = epoch_.load(std::memory_order_relaxed);
  const ScoreKey key{DetectorEpochKey(detector_name, epoch), subspace};
  if (ScoreVectorPtr hit = cache_->Get(key)) {
    out->scores = std::move(hit);
    out->epoch = epoch;
    return Status::kOk;
  }
  const Dataset& snap = *EnsureSnapshotLocked();
  auto scores = std::make_shared<const std::vector<double>>(
      Standardize(scorer->Score(snap, subspace)));
  cache_->Put(key, scores);
  out->scores = std::move(scores);
  out->epoch = epoch;
  return Status::kOk;
}

OnlineDataset::Status OnlineDataset::Score(const std::string& detector_name,
                                           const Subspace& subspace,
                                           ScoredEpoch* out) {
  std::lock_guard<std::mutex> lock(mutex_);
  return ScoreLocked(detector_name, subspace, out);
}

OnlineDataset::Status OnlineDataset::ScoreAt(
    const EpochSnapshot& snapshot, const std::string& detector_name,
    const Subspace& subspace, ScoredEpoch* out) {
  WindowedScorer* scorer = FindScorer(detector_name);
  if (scorer == nullptr) return Status::kUnknownDetector;
  if (snapshot.data == nullptr ||
      snapshot.data->num_points() < options_.min_score_window) {
    return Status::kWindowTooSmall;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (epoch_.load(std::memory_order_relaxed) == snapshot.epoch) {
      return ScoreLocked(detector_name, subspace, out);
    }
  }
  // The window moved on: recompute on the pinned snapshot outside the
  // dataset lock. By the scorer parity contract this is bitwise what the
  // live path served at `snapshot.epoch`.
  out->scores = std::make_shared<const std::vector<double>>(
      ScoreStandardized(scorer->detector(), *snapshot.data, subspace));
  out->epoch = snapshot.epoch;
  return Status::kOk;
}

void OnlineDataset::NoteStaleServe(std::uint64_t computed_epoch,
                                   std::uint64_t current_epoch) {
  stale_serves_.fetch_add(1, std::memory_order_relaxed);
  stale_serves_counter_.Increment();
  SUBEX_EVENT(EventSeverity::kInfo, "online.stale_serve",
              JsonObject()
                  .Add("dataset", options_.name)
                  .Add("computed_epoch", computed_epoch)
                  .Add("current_epoch", current_epoch)
                  .Add("epochs_behind", current_epoch - computed_epoch)
                  .Build());
}

OnlineDataset::StatsSnapshot OnlineDataset::stats() const {
  StatsSnapshot snapshot;
  std::lock_guard<std::mutex> lock(mutex_);
  snapshot.name = options_.name;
  snapshot.epoch = epoch_.load(std::memory_order_relaxed);
  snapshot.window_size = window_.size();
  snapshot.window_capacity = options_.window_capacity;
  snapshot.pending = pending_.size();
  snapshot.total_ingested = total_ingested_;
  snapshot.advances = advances_;
  snapshot.stale_serves = stale_serves_.load(std::memory_order_relaxed);
  snapshot.cache_entries = cache_->size();
  snapshot.cache_bytes = cache_->bytes();
  snapshot.epochs_invalidated = epochs_invalidated_;
  snapshot.drift_tested = last_drift_.tested;
  snapshot.drift_score = last_drift_.ks_statistic;
  snapshot.drift_p_value = last_drift_.p_value;
  snapshot.drift_events = drift_monitor_.drift_count();
  snapshot.wal_enabled = WalEnabled();
  snapshot.wal_bytes = wal_.bytes();
  snapshot.wal_records = wal_.records();
  snapshot.checkpoints = checkpoints_;
  snapshot.recovered_epoch = recovered_epoch_;
  snapshot.wal_degraded = wal_degraded_;
  return snapshot;
}

std::string OnlineDataset::StatsSnapshot::ToJson() const {
  return JsonObject()
      .Add("name", name)
      .Add("epoch", epoch)
      .Add("window_size", static_cast<std::uint64_t>(window_size))
      .Add("window_capacity", static_cast<std::uint64_t>(window_capacity))
      .Add("pending", static_cast<std::uint64_t>(pending))
      .Add("total_ingested", total_ingested)
      .Add("advances", advances)
      .Add("stale_serves", stale_serves)
      .Add("cache_entries", cache_entries)
      .Add("cache_bytes", cache_bytes)
      .Add("epochs_invalidated", epochs_invalidated)
      .Add("drift_tested", drift_tested)
      .Add("drift_score", drift_score)
      .Add("drift_p_value", drift_p_value)
      .Add("drift_events", drift_events)
      .Add("wal_enabled", wal_enabled)
      .Add("wal_bytes", wal_bytes)
      .Add("wal_records", wal_records)
      .Add("checkpoints", checkpoints)
      .Add("recovered_epoch", recovered_epoch)
      .Add("wal_degraded", wal_degraded)
      .Build();
}

std::vector<double> PinnedEpochDetector::Score(
    const Dataset& data, const Subspace& subspace) const {
  (void)data;  // Explainers pass the pinned snapshot back; it is implied.
  OnlineDataset::ScoredEpoch scored;
  const OnlineDataset::Status status =
      dataset_.ScoreAt(snapshot_, detector_name_, subspace, &scored);
  SUBEX_CHECK_MSG(status == OnlineDataset::Status::kOk,
                  OnlineDataset::StatusMessage(status));
  return *scored.scores;
}

}  // namespace subex
