#include "online/online_dataset.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/check.h"
#include "common/json.h"
#include "obs/event_log.h"
#include "obs/registry.h"
#include "stats/descriptive.h"

namespace subex {

namespace {

/// Cache keys embed the epoch so an advance can evict exactly the stale
/// entries: "<detector>@<epoch>".
std::string DetectorEpochKey(const std::string& detector,
                             std::uint64_t epoch) {
  return detector + "@" + std::to_string(epoch);
}

ScoreCacheOptions CacheOptionsFor(const OnlineDatasetOptions& options) {
  ScoreCacheOptions cache = options.cache;
  if (cache.name == ScoreCacheOptions{}.name) {
    cache.name = "online:" + options.name;
  }
  return cache;
}

}  // namespace

OnlineDataset::OnlineDataset(const OnlineDatasetOptions& options,
                             std::size_t num_features)
    : options_(options),
      num_features_(num_features),
      window_(options.window_capacity, num_features),
      drift_monitor_(options.drift),
      cache_(std::make_unique<ScoreCache>(CacheOptionsFor(options))),
      last_advance_time_(std::chrono::steady_clock::now()),
      epoch_gauge_(MetricsRegistry::Global().GetGauge("online.window_epoch")),
      drift_gauge_(MetricsRegistry::Global().GetGauge("online.drift_score")),
      ingest_rate_gauge_(
          MetricsRegistry::Global().GetGauge("online.ingest_rate")),
      ingested_counter_(
          MetricsRegistry::Global().GetCounter("online.ingested_points")),
      advances_counter_(
          MetricsRegistry::Global().GetCounter("online.advances")),
      drift_events_counter_(
          MetricsRegistry::Global().GetCounter("online.drift_events")),
      stale_serves_counter_(
          MetricsRegistry::Global().GetCounter("online.stale_serves")) {
  SUBEX_CHECK(!options.name.empty());
  SUBEX_CHECK(options.advance_every >= 1);
  SUBEX_CHECK(options.advance_every <= options.window_capacity);
  SUBEX_CHECK(options.min_score_window >= 3);  // Batch LODA's floor.
}

OnlineDataset::~OnlineDataset() = default;

void OnlineDataset::AddLoda(const std::string& detector_name,
                            const Loda::Options& options) {
  AddScorer(detector_name, std::make_unique<IncrementalLodaScorer>(options));
}

void OnlineDataset::AddReindexDetector(const std::string& detector_name,
                                       const Detector& detector) {
  AddScorer(detector_name, std::make_unique<ReindexScorer>(detector));
}

void OnlineDataset::AddScorer(const std::string& detector_name,
                              std::unique_ptr<WindowedScorer> scorer) {
  SUBEX_CHECK(!detector_name.empty());
  SUBEX_CHECK(scorer != nullptr);
  SUBEX_CHECK_MSG(FindScorer(detector_name) == nullptr,
                  "duplicate online detector name");
  scorers_.push_back(NamedScorer{detector_name, std::move(scorer)});
}

bool OnlineDataset::HasDetector(const std::string& detector_name) const {
  return FindScorer(detector_name) != nullptr;
}

const char* OnlineDataset::StatusMessage(Status status) {
  switch (status) {
    case Status::kOk:
      return "ok";
    case Status::kUnknownDetector:
      return "unknown online detector";
    case Status::kWindowTooSmall:
      return "window below minimum scoring size";
  }
  return "unknown status";
}

WindowedScorer* OnlineDataset::FindScorer(
    const std::string& detector_name) const {
  for (const auto& named : scorers_) {
    if (named.name == detector_name) return named.scorer.get();
  }
  return nullptr;
}

const std::shared_ptr<const Dataset>& OnlineDataset::EnsureSnapshotLocked() {
  if (snapshot_ == nullptr) {
    snapshot_ = std::make_shared<const Dataset>(window_.Snapshot());
  }
  return snapshot_;
}

OnlineDataset::IngestResult OnlineDataset::Append(const Matrix& rows) {
  SUBEX_CHECK_MSG(rows.cols() == num_features_ || rows.rows() == 0,
                  "ingest width mismatch");
  IngestResult result;
  std::lock_guard<std::mutex> lock(mutex_);
  for (std::size_t r = 0; r < rows.rows(); ++r) {
    const std::span<const double> row = rows.Row(r);
    pending_.emplace_back(row.begin(), row.end());
  }
  total_ingested_ += rows.rows();
  ingested_counter_.Increment(rows.rows());
  while (pending_.size() >= options_.advance_every) {
    Matrix batch(options_.advance_every, num_features_);
    for (std::size_t r = 0; r < options_.advance_every; ++r) {
      const std::vector<double>& row = pending_.front();
      for (std::size_t f = 0; f < num_features_; ++f) batch(r, f) = row[f];
      pending_.pop_front();
    }
    AdvanceLocked(batch);
    ++result.advances;
  }
  result.accepted = rows.rows();
  result.epoch = epoch_.load(std::memory_order_relaxed);
  result.window_size = window_.size();
  result.total_ingested = total_ingested_;
  return result;
}

OnlineDataset::IngestResult OnlineDataset::AppendRow(
    std::span<const double> row) {
  Matrix m(1, num_features_);
  SUBEX_CHECK_MSG(row.size() == num_features_, "ingest width mismatch");
  for (std::size_t f = 0; f < num_features_; ++f) m(0, f) = row[f];
  return Append(m);
}

void OnlineDataset::Flush() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (pending_.empty()) return;
  Matrix batch(pending_.size(), num_features_);
  for (std::size_t r = 0; r < batch.rows(); ++r) {
    const std::vector<double>& row = pending_[r];
    for (std::size_t f = 0; f < num_features_; ++f) batch(r, f) = row[f];
  }
  pending_.clear();
  AdvanceLocked(batch);
}

void OnlineDataset::AdvanceLocked(const Matrix& batch) {
  const std::size_t old_size = window_.size();
  for (std::size_t r = 0; r < batch.rows(); ++r) window_.Push(batch.Row(r));
  const std::size_t num_exited = old_size + batch.rows() - window_.size();

  const std::uint64_t epoch =
      epoch_.fetch_add(1, std::memory_order_acq_rel) + 1;
  snapshot_.reset();
  ++advances_;
  advances_counter_.Increment();
  epoch_gauge_.Set(static_cast<std::int64_t>(epoch));

  WindowDelta delta;
  delta.epoch = epoch;
  delta.window_size = window_.size();
  delta.entered = &batch;
  delta.num_exited = num_exited;
  for (auto& named : scorers_) named.scorer->OnAdvance(delta);

  // Targeted invalidation: drop exactly the now-stale epochs' entries of
  // this dataset's cache — no global flush, and the freed bytes are
  // reported to the eviction manager like any other eviction.
  std::string keep_suffix = "@";
  keep_suffix += std::to_string(epoch);
  epochs_invalidated_ += cache_->EvictIf([&](const ScoreKey& key) {
    return !key.detector.ends_with(keep_suffix);
  });

  // Ingest rate, measured advance-to-advance.
  const auto now = std::chrono::steady_clock::now();
  const double elapsed =
      std::chrono::duration<double>(now - last_advance_time_).count();
  last_advance_time_ = now;
  if (elapsed > 1e-9) {
    ingest_rate_gauge_.Set(static_cast<std::int64_t>(
        std::llround(static_cast<double>(batch.rows()) / elapsed)));
  }

  // Drift test on the new epoch's full-space raw scores. The drift scorer
  // warms the cache as a side effect: its standardized full-space vector is
  // published under the new epoch's key.
  if (scorers_.empty() ||
      window_.size() <
          std::max<std::size_t>(3, options_.drift.min_window)) {
    return;
  }
  const NamedScorer* drift_scorer = &scorers_.front();
  if (!options_.drift_detector.empty()) {
    for (const auto& named : scorers_) {
      if (named.name == options_.drift_detector) drift_scorer = &named;
    }
  }
  const Dataset& snap = *EnsureSnapshotLocked();
  std::vector<double> raw = drift_scorer->scorer->Score(snap, Subspace());
  cache_->Put(
      {DetectorEpochKey(drift_scorer->name, epoch), Subspace()},
      std::make_shared<const std::vector<double>>(Standardize(raw)));
  // Raw, not standardized: per-window z-scoring would erase exactly the
  // location/scale shifts the monitor is there to catch.
  const DriftMonitor::Result drift =
      drift_monitor_.Observe(epoch, std::move(raw));
  if (!drift.tested) return;
  last_drift_ = drift;
  drift_gauge_.Set(
      static_cast<std::int64_t>(std::llround(drift.ks_statistic * 1e6)));
  if (drift.drifted) {
    drift_events_counter_.Increment();
    SUBEX_EVENT(EventSeverity::kWarn, "online.drift",
                JsonObject()
                    .Add("dataset", options_.name)
                    .Add("epoch", epoch)
                    .Add("ks_statistic", drift.ks_statistic)
                    .Add("p_value", drift.p_value)
                    .Add("window_size",
                         static_cast<std::uint64_t>(window_.size()))
                    .Build());
  }
}

OnlineDataset::EpochSnapshot OnlineDataset::Snapshot() {
  std::lock_guard<std::mutex> lock(mutex_);
  EpochSnapshot snapshot;
  snapshot.epoch = epoch_.load(std::memory_order_relaxed);
  if (window_.size() > 0) snapshot.data = EnsureSnapshotLocked();
  return snapshot;
}

OnlineDataset::Status OnlineDataset::ScoreLocked(
    const std::string& detector_name, const Subspace& subspace,
    ScoredEpoch* out) {
  if (window_.size() < options_.min_score_window) {
    return Status::kWindowTooSmall;
  }
  WindowedScorer* scorer = FindScorer(detector_name);
  if (scorer == nullptr) return Status::kUnknownDetector;
  const std::uint64_t epoch = epoch_.load(std::memory_order_relaxed);
  const ScoreKey key{DetectorEpochKey(detector_name, epoch), subspace};
  if (ScoreVectorPtr hit = cache_->Get(key)) {
    out->scores = std::move(hit);
    out->epoch = epoch;
    return Status::kOk;
  }
  const Dataset& snap = *EnsureSnapshotLocked();
  auto scores = std::make_shared<const std::vector<double>>(
      Standardize(scorer->Score(snap, subspace)));
  cache_->Put(key, scores);
  out->scores = std::move(scores);
  out->epoch = epoch;
  return Status::kOk;
}

OnlineDataset::Status OnlineDataset::Score(const std::string& detector_name,
                                           const Subspace& subspace,
                                           ScoredEpoch* out) {
  std::lock_guard<std::mutex> lock(mutex_);
  return ScoreLocked(detector_name, subspace, out);
}

OnlineDataset::Status OnlineDataset::ScoreAt(
    const EpochSnapshot& snapshot, const std::string& detector_name,
    const Subspace& subspace, ScoredEpoch* out) {
  WindowedScorer* scorer = FindScorer(detector_name);
  if (scorer == nullptr) return Status::kUnknownDetector;
  if (snapshot.data == nullptr ||
      snapshot.data->num_points() < options_.min_score_window) {
    return Status::kWindowTooSmall;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (epoch_.load(std::memory_order_relaxed) == snapshot.epoch) {
      return ScoreLocked(detector_name, subspace, out);
    }
  }
  // The window moved on: recompute on the pinned snapshot outside the
  // dataset lock. By the scorer parity contract this is bitwise what the
  // live path served at `snapshot.epoch`.
  out->scores = std::make_shared<const std::vector<double>>(
      ScoreStandardized(scorer->detector(), *snapshot.data, subspace));
  out->epoch = snapshot.epoch;
  return Status::kOk;
}

void OnlineDataset::NoteStaleServe(std::uint64_t computed_epoch,
                                   std::uint64_t current_epoch) {
  stale_serves_.fetch_add(1, std::memory_order_relaxed);
  stale_serves_counter_.Increment();
  SUBEX_EVENT(EventSeverity::kInfo, "online.stale_serve",
              JsonObject()
                  .Add("dataset", options_.name)
                  .Add("computed_epoch", computed_epoch)
                  .Add("current_epoch", current_epoch)
                  .Add("epochs_behind", current_epoch - computed_epoch)
                  .Build());
}

OnlineDataset::StatsSnapshot OnlineDataset::stats() const {
  StatsSnapshot snapshot;
  std::lock_guard<std::mutex> lock(mutex_);
  snapshot.name = options_.name;
  snapshot.epoch = epoch_.load(std::memory_order_relaxed);
  snapshot.window_size = window_.size();
  snapshot.window_capacity = options_.window_capacity;
  snapshot.pending = pending_.size();
  snapshot.total_ingested = total_ingested_;
  snapshot.advances = advances_;
  snapshot.stale_serves = stale_serves_.load(std::memory_order_relaxed);
  snapshot.cache_entries = cache_->size();
  snapshot.cache_bytes = cache_->bytes();
  snapshot.epochs_invalidated = epochs_invalidated_;
  snapshot.drift_tested = last_drift_.tested;
  snapshot.drift_score = last_drift_.ks_statistic;
  snapshot.drift_p_value = last_drift_.p_value;
  snapshot.drift_events = drift_monitor_.drift_count();
  return snapshot;
}

std::string OnlineDataset::StatsSnapshot::ToJson() const {
  return JsonObject()
      .Add("name", name)
      .Add("epoch", epoch)
      .Add("window_size", static_cast<std::uint64_t>(window_size))
      .Add("window_capacity", static_cast<std::uint64_t>(window_capacity))
      .Add("pending", static_cast<std::uint64_t>(pending))
      .Add("total_ingested", total_ingested)
      .Add("advances", advances)
      .Add("stale_serves", stale_serves)
      .Add("cache_entries", cache_entries)
      .Add("cache_bytes", cache_bytes)
      .Add("epochs_invalidated", epochs_invalidated)
      .Add("drift_tested", drift_tested)
      .Add("drift_score", drift_score)
      .Add("drift_p_value", drift_p_value)
      .Add("drift_events", drift_events)
      .Build();
}

std::vector<double> PinnedEpochDetector::Score(
    const Dataset& data, const Subspace& subspace) const {
  (void)data;  // Explainers pass the pinned snapshot back; it is implied.
  OnlineDataset::ScoredEpoch scored;
  const OnlineDataset::Status status =
      dataset_.ScoreAt(snapshot_, detector_name_, subspace, &scored);
  SUBEX_CHECK_MSG(status == OnlineDataset::Status::kOk,
                  OnlineDataset::StatusMessage(status));
  return *scored.scores;
}

}  // namespace subex
