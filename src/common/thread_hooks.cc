#include "common/thread_hooks.h"

#include <atomic>

namespace subex {
namespace {

std::atomic<ThreadHook> g_on_start{nullptr};
std::atomic<ThreadHook> g_on_exit{nullptr};

}  // namespace

void SetThreadLifecycleHooks(ThreadHook on_start, ThreadHook on_exit) {
  g_on_start.store(on_start, std::memory_order_release);
  g_on_exit.store(on_exit, std::memory_order_release);
}

void NotifyThreadStart() {
  const ThreadHook hook = g_on_start.load(std::memory_order_acquire);
  if (hook != nullptr) hook();
}

void NotifyThreadExit() {
  const ThreadHook hook = g_on_exit.load(std::memory_order_acquire);
  if (hook != nullptr) hook();
}

}  // namespace subex
