#include "common/json.h"

#include <cmath>
#include <cstdio>

namespace subex {

void AppendJsonString(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

std::string JsonNumber(double value) {
  if (!std::isfinite(value)) return "null";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.12g", value);
  return buf;
}

JsonObject& JsonObject::Add(std::string_view key, std::string_view value) {
  Key(key);
  AppendJsonString(body_, value);
  return *this;
}

JsonObject& JsonObject::Add(std::string_view key, double number) {
  Key(key);
  body_ += JsonNumber(number);
  return *this;
}

JsonObject& JsonObject::Add(std::string_view key, std::uint64_t number) {
  Key(key);
  body_ += std::to_string(number);
  return *this;
}

JsonObject& JsonObject::Add(std::string_view key, bool boolean) {
  Key(key);
  body_ += boolean ? "true" : "false";
  return *this;
}

JsonObject& JsonObject::AddRaw(std::string_view key, std::string_view raw) {
  Key(key);
  body_.append(raw);
  return *this;
}

void JsonObject::Key(std::string_view key) {
  if (body_.size() > 1) body_ += ',';
  AppendJsonString(body_, key);
  body_ += ':';
}

}  // namespace subex
