#include "common/json.h"

#include <cmath>
#include <cstdio>

namespace subex {

void AppendJsonString(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

std::string JsonNumber(double value) {
  if (!std::isfinite(value)) return "null";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.12g", value);
  return buf;
}

JsonObject& JsonObject::Add(std::string_view key, std::string_view value) {
  Key(key);
  AppendJsonString(body_, value);
  return *this;
}

JsonObject& JsonObject::Add(std::string_view key, double number) {
  Key(key);
  body_ += JsonNumber(number);
  return *this;
}

JsonObject& JsonObject::Add(std::string_view key, std::uint64_t number) {
  Key(key);
  body_ += std::to_string(number);
  return *this;
}

JsonObject& JsonObject::Add(std::string_view key, bool boolean) {
  Key(key);
  body_ += boolean ? "true" : "false";
  return *this;
}

JsonObject& JsonObject::AddRaw(std::string_view key, std::string_view raw) {
  Key(key);
  body_.append(raw);
  return *this;
}

void JsonObject::Key(std::string_view key) {
  if (body_.size() > 1) body_ += ',';
  AppendJsonString(body_, key);
  body_ += ':';
}

JsonArray& JsonArray::Add(std::string_view value) {
  Comma();
  AppendJsonString(body_, value);
  return *this;
}

JsonArray& JsonArray::Add(double number) {
  Comma();
  body_ += JsonNumber(number);
  return *this;
}

JsonArray& JsonArray::Add(std::uint64_t number) {
  Comma();
  body_ += std::to_string(number);
  return *this;
}

JsonArray& JsonArray::AddRaw(std::string_view raw) {
  Comma();
  body_.append(raw);
  return *this;
}

void JsonArray::Comma() {
  if (body_.size() > 1) body_ += ',';
}

namespace {

/// Recursive-descent validator over a cursor; each Parse* advances past one
/// grammar production or reports failure.
class JsonValidator {
 public:
  explicit JsonValidator(std::string_view text) : text_(text) {}

  bool Validate() {
    SkipSpace();
    if (!ParseValue(0)) return false;
    SkipSpace();
    return pos_ == text_.size();
  }

 private:
  static constexpr int kMaxDepth = 128;

  bool ParseValue(int depth) {
    if (depth > kMaxDepth) return false;
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{':
        return ParseObject(depth);
      case '[':
        return ParseArray(depth);
      case '"':
        return ParseString();
      case 't':
        return ParseLiteral("true");
      case 'f':
        return ParseLiteral("false");
      case 'n':
        return ParseLiteral("null");
      default:
        return ParseNumber();
    }
  }

  bool ParseObject(int depth) {
    ++pos_;  // '{'
    SkipSpace();
    if (Peek() == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipSpace();
      if (Peek() != '"' || !ParseString()) return false;
      SkipSpace();
      if (Peek() != ':') return false;
      ++pos_;
      SkipSpace();
      if (!ParseValue(depth + 1)) return false;
      SkipSpace();
      const char c = Peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool ParseArray(int depth) {
    ++pos_;  // '['
    SkipSpace();
    if (Peek() == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipSpace();
      if (!ParseValue(depth + 1)) return false;
      SkipSpace();
      const char c = Peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool ParseString() {
    ++pos_;  // '"'
    while (pos_ < text_.size()) {
      const unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c < 0x20) return false;  // raw control characters must be escaped
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
        const char e = text_[pos_];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= text_.size() || !IsHex(text_[pos_])) return false;
          }
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' && e != 'f' &&
                   e != 'n' && e != 'r' && e != 't') {
          return false;
        }
      }
      ++pos_;
    }
    return false;  // unterminated
  }

  bool ParseNumber() {
    const std::size_t start = pos_;
    if (Peek() == '-') ++pos_;
    if (Peek() == '0') {
      ++pos_;
    } else if (IsDigit(Peek())) {
      while (IsDigit(Peek())) ++pos_;
    } else {
      return false;
    }
    if (Peek() == '.') {
      ++pos_;
      if (!IsDigit(Peek())) return false;
      while (IsDigit(Peek())) ++pos_;
    }
    if (Peek() == 'e' || Peek() == 'E') {
      ++pos_;
      if (Peek() == '+' || Peek() == '-') ++pos_;
      if (!IsDigit(Peek())) return false;
      while (IsDigit(Peek())) ++pos_;
    }
    return pos_ > start;
  }

  bool ParseLiteral(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  void SkipSpace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  static bool IsDigit(char c) { return c >= '0' && c <= '9'; }
  static bool IsHex(char c) {
    return IsDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F');
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

bool IsValidJson(std::string_view json) {
  return JsonValidator(json).Validate();
}

}  // namespace subex
