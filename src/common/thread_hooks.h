#ifndef SUBEX_COMMON_THREAD_HOOKS_H_
#define SUBEX_COMMON_THREAD_HOOKS_H_

namespace subex {

/// Process-wide worker-thread lifecycle hooks. `ThreadPool` workers call
/// `NotifyThreadStart()` as their loop begins and `NotifyThreadExit()` as
/// it returns, so cross-cutting layers (the sampling profiler) can attach
/// per-thread state to pools created at any time — without `common`
/// depending on those layers. At most one hook pair is installed (the
/// profiler's translation unit installs its pair from a static
/// initializer); installation is not thread-safe and must happen before
/// pools are built, which static initialization guarantees.
using ThreadHook = void (*)();

void SetThreadLifecycleHooks(ThreadHook on_start, ThreadHook on_exit);
void NotifyThreadStart();
void NotifyThreadExit();

}  // namespace subex

#endif  // SUBEX_COMMON_THREAD_HOOKS_H_
