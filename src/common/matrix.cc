#include "common/matrix.h"

#include <algorithm>

namespace subex {

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows.size() == 0 ? 0 : rows.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& row : rows) {
    SUBEX_CHECK_MSG(row.size() == cols_, "ragged initializer rows");
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

std::vector<double> Matrix::Column(std::size_t c) const {
  SUBEX_CHECK(c < cols_);
  std::vector<double> out(rows_);
  for (std::size_t r = 0; r < rows_; ++r) out[r] = data_[r * cols_ + c];
  return out;
}

void Matrix::AppendRow(std::span<const double> row) {
  if (data_.empty() && rows_ == 0) {
    cols_ = row.size();
  }
  SUBEX_CHECK_MSG(row.size() == cols_, "row width mismatch");
  data_.insert(data_.end(), row.begin(), row.end());
  ++rows_;
}

Matrix Matrix::SelectColumns(std::span<const int> columns) const {
  Matrix out(rows_, columns.size());
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* src = data_.data() + r * cols_;
    for (std::size_t j = 0; j < columns.size(); ++j) {
      SUBEX_DCHECK(columns[j] >= 0 &&
                   static_cast<std::size_t>(columns[j]) < cols_);
      out(r, j) = src[columns[j]];
    }
  }
  return out;
}

Matrix Matrix::SelectRows(std::span<const int> rows) const {
  Matrix out(rows.size(), cols_);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    SUBEX_DCHECK(rows[i] >= 0 && static_cast<std::size_t>(rows[i]) < rows_);
    std::copy_n(data_.data() + static_cast<std::size_t>(rows[i]) * cols_,
                cols_, out.MutableRow(i).data());
  }
  return out;
}

double SquaredDistance(const Matrix& m, std::size_t a, std::size_t b,
                       std::span<const int> features) {
  const double* ra = m.data() + a * m.cols();
  const double* rb = m.data() + b * m.cols();
  double sum = 0.0;
  for (int f : features) {
    const double d = ra[f] - rb[f];
    sum += d * d;
  }
  return sum;
}

}  // namespace subex
