#include "common/rng.h"

#include <algorithm>

namespace subex {

std::vector<int> Rng::SampleWithoutReplacement(int n, int k) {
  SUBEX_CHECK(k >= 0 && k <= n);
  // Floyd's algorithm: O(k) expected insertions, no O(n) scratch.
  std::vector<int> chosen;
  chosen.reserve(k);
  for (int j = n - k; j < n; ++j) {
    const int t = UniformInt(0, j);
    if (std::find(chosen.begin(), chosen.end(), t) == chosen.end()) {
      chosen.push_back(t);
    } else {
      chosen.push_back(j);
    }
  }
  std::sort(chosen.begin(), chosen.end());
  return chosen;
}

}  // namespace subex
