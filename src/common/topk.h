#ifndef SUBEX_COMMON_TOPK_H_
#define SUBEX_COMMON_TOPK_H_

#include <algorithm>
#include <cstddef>
#include <numeric>
#include <span>
#include <vector>

namespace subex {

/// Indices that would sort `values` in ascending order.
std::vector<int> ArgsortAscending(std::span<const double> values);

/// Indices that would sort `values` in descending order.
std::vector<int> ArgsortDescending(std::span<const double> values);

/// Indices of the `k` largest values, ordered from largest to smallest.
/// If `k >= values.size()` all indices are returned (fully sorted).
/// Ties are broken by index (smaller index first) so results are
/// deterministic.
std::vector<int> TopKIndices(std::span<const double> values, std::size_t k);

/// Indices of the `k` smallest values, ordered from smallest to largest,
/// with the same tie-breaking and clamping behaviour as `TopKIndices`.
std::vector<int> BottomKIndices(std::span<const double> values, std::size_t k);

/// Rank of each element under descending order: the largest value gets rank
/// 0. Ties are broken by index.
std::vector<int> RanksDescending(std::span<const double> values);

}  // namespace subex

#endif  // SUBEX_COMMON_TOPK_H_
