#ifndef SUBEX_COMMON_CHECK_H_
#define SUBEX_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

/// \file
/// Lightweight precondition / invariant assertion macros.
///
/// `SUBEX_CHECK` is always on (including release builds): the library uses it
/// to guard API contracts whose violation would otherwise corrupt results
/// silently. A failed check prints the condition with its source location and
/// aborts. `SUBEX_DCHECK` compiles away in NDEBUG builds and is used for
/// hot-loop internal invariants.

#define SUBEX_CHECK(cond)                                                  \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::fprintf(stderr, "SUBEX_CHECK failed: %s at %s:%d\n", #cond,     \
                   __FILE__, __LINE__);                                    \
      std::abort();                                                        \
    }                                                                      \
  } while (0)

#define SUBEX_CHECK_MSG(cond, msg)                                         \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::fprintf(stderr, "SUBEX_CHECK failed: %s (%s) at %s:%d\n", #cond, \
                   msg, __FILE__, __LINE__);                               \
      std::abort();                                                        \
    }                                                                      \
  } while (0)

#ifdef NDEBUG
#define SUBEX_DCHECK(cond) \
  do {                     \
  } while (0)
#else
#define SUBEX_DCHECK(cond) SUBEX_CHECK(cond)
#endif

#endif  // SUBEX_COMMON_CHECK_H_
