#include "common/thread_pool.h"

#include <exception>
#include <utility>

#include "common/thread_hooks.h"

namespace subex {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::thread::hardware_concurrency();
    if (num_threads == 0) num_threads = 1;
  }
  threads_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  task_available_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::ParallelFor(std::size_t count,
                             const std::function<void(std::size_t)>& body) {
  if (count == 0) return;
  if (threads_.size() == 1 || count == 1) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }
  // Dynamic scheduling: workers pull the next index off a shared counter.
  // An exception escaping `body` on a worker would otherwise unwind through
  // WorkerLoop and terminate the process; instead the first one is captured
  // and rethrown on the calling thread once every worker has drained, so
  // the pool stays usable. Iterations not yet started when the failure is
  // observed are skipped.
  struct ForState {
    std::atomic<std::size_t> next{0};
    std::atomic<bool> failed{false};
    std::mutex mutex;
    std::exception_ptr error;
  };
  auto state = std::make_shared<ForState>();
  const std::size_t workers = std::min(threads_.size(), count);
  for (std::size_t w = 0; w < workers; ++w) {
    Submit([state, count, &body] {
      for (std::size_t i = state->next.fetch_add(1); i < count;
           i = state->next.fetch_add(1)) {
        if (state->failed.load(std::memory_order_relaxed)) break;
        try {
          body(i);
        } catch (...) {
          std::lock_guard<std::mutex> lock(state->mutex);
          if (!state->failed.load()) {
            state->error = std::current_exception();
            state->failed.store(true);
          }
        }
      }
    });
  }
  Wait();
  if (state->failed.load()) std::rethrow_exception(state->error);
}

void ThreadPool::WorkerLoop() {
  NotifyThreadStart();
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_available_.wait(
          lock, [this] { return shutting_down_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        if (shutting_down_) break;
        continue;
      }
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
  NotifyThreadExit();
}

}  // namespace subex
