#ifndef SUBEX_COMMON_RNG_H_
#define SUBEX_COMMON_RNG_H_

#include <cstdint>
#include <random>
#include <vector>

#include "common/check.h"

namespace subex {

/// Seeded pseudo-random number generator facade.
///
/// Every stochastic component in the library (isolation forest, RefOut's
/// subspace pool, HiCS' Monte-Carlo slices, the dataset generators) takes an
/// `Rng&` so that experiments are reproducible bit-for-bit from a single seed
/// and so that tests can pin randomness. Wraps `std::mt19937_64`.
class Rng {
 public:
  /// Creates a generator from an explicit seed (deterministic stream).
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  Rng(const Rng&) = delete;
  Rng& operator=(const Rng&) = delete;

  /// Uniform integer in `[lo, hi]` (inclusive). Requires `lo <= hi`.
  int UniformInt(int lo, int hi) {
    SUBEX_DCHECK(lo <= hi);
    return std::uniform_int_distribution<int>(lo, hi)(engine_);
  }

  /// Uniform index in `[0, n)`. Requires `n > 0`.
  std::size_t UniformIndex(std::size_t n) {
    SUBEX_DCHECK(n > 0);
    return std::uniform_int_distribution<std::size_t>(0, n - 1)(engine_);
  }

  /// Uniform double in `[lo, hi)`.
  double Uniform(double lo = 0.0, double hi = 1.0) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Standard normal deviate scaled to N(mean, stddev^2).
  double Gaussian(double mean = 0.0, double stddev = 1.0) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Derives an independent child generator; used to hand each parallel task
  /// or repetition its own deterministic stream.
  Rng Fork() { return Rng(engine_()); }

  /// Samples `k` distinct values from `[0, n)` without replacement,
  /// returned in ascending order. Requires `k <= n`.
  std::vector<int> SampleWithoutReplacement(int n, int k);

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& values) {
    for (std::size_t i = values.size(); i > 1; --i) {
      std::swap(values[i - 1], values[UniformIndex(i)]);
    }
  }

  /// Access to the raw engine for `std::` distributions not wrapped above.
  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace subex

#endif  // SUBEX_COMMON_RNG_H_
