#include "common/topk.h"

namespace subex {
namespace {

std::vector<int> Iota(std::size_t n) {
  std::vector<int> idx(n);
  std::iota(idx.begin(), idx.end(), 0);
  return idx;
}

}  // namespace

std::vector<int> ArgsortAscending(std::span<const double> values) {
  std::vector<int> idx = Iota(values.size());
  std::stable_sort(idx.begin(), idx.end(),
                   [&](int a, int b) { return values[a] < values[b]; });
  return idx;
}

std::vector<int> ArgsortDescending(std::span<const double> values) {
  std::vector<int> idx = Iota(values.size());
  std::stable_sort(idx.begin(), idx.end(),
                   [&](int a, int b) { return values[a] > values[b]; });
  return idx;
}

std::vector<int> TopKIndices(std::span<const double> values, std::size_t k) {
  std::vector<int> idx = Iota(values.size());
  const std::size_t kk = std::min(k, values.size());
  auto greater = [&](int a, int b) {
    if (values[a] != values[b]) return values[a] > values[b];
    return a < b;
  };
  std::partial_sort(idx.begin(), idx.begin() + kk, idx.end(), greater);
  idx.resize(kk);
  return idx;
}

std::vector<int> BottomKIndices(std::span<const double> values,
                                std::size_t k) {
  std::vector<int> idx = Iota(values.size());
  const std::size_t kk = std::min(k, values.size());
  auto less = [&](int a, int b) {
    if (values[a] != values[b]) return values[a] < values[b];
    return a < b;
  };
  std::partial_sort(idx.begin(), idx.begin() + kk, idx.end(), less);
  idx.resize(kk);
  return idx;
}

std::vector<int> RanksDescending(std::span<const double> values) {
  const std::vector<int> order = TopKIndices(values, values.size());
  std::vector<int> ranks(values.size());
  for (std::size_t r = 0; r < order.size(); ++r) ranks[order[r]] = r;
  return ranks;
}

}  // namespace subex
