#ifndef SUBEX_COMMON_THREAD_POOL_H_
#define SUBEX_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace subex {

/// Fixed-size worker pool for data-parallel experiment loops.
///
/// The explainer benchmarks score thousands of independent subspaces; the
/// pool lets pipelines fan those out without spawning a thread per task.
/// On single-core machines (`num_threads == 1` or `0`) `ParallelFor` degrades
/// to a plain sequential loop with zero synchronization overhead.
class ThreadPool {
 public:
  /// Creates a pool with `num_threads` workers. `0` means
  /// `std::thread::hardware_concurrency()`.
  explicit ThreadPool(std::size_t num_threads = 0);

  /// Drains outstanding work and joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads.
  std::size_t num_threads() const { return threads_.size(); }

  /// Enqueues a task for asynchronous execution.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void Wait();

  /// Runs `body(i)` for every `i` in `[0, count)`, blocking until all
  /// iterations complete. Iterations are distributed dynamically so uneven
  /// per-iteration cost (e.g. subspaces of different dimensionality) balances
  /// out. `body` must be safe to call concurrently. If `body` throws, the
  /// first exception is rethrown on the calling thread after all workers
  /// drain (iterations not yet started may be skipped); the pool remains
  /// usable. Must not be called from inside a pool task: the inner Wait
  /// would block a worker on its own unfinished task.
  void ParallelFor(std::size_t count,
                   const std::function<void(std::size_t)>& body);

 private:
  void WorkerLoop();

  std::vector<std::thread> threads_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  std::size_t in_flight_ = 0;
  bool shutting_down_ = false;
};

}  // namespace subex

#endif  // SUBEX_COMMON_THREAD_POOL_H_
