#ifndef SUBEX_COMMON_JSON_H_
#define SUBEX_COMMON_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace subex {

/// Appends `s` to `out` as a quoted JSON string literal, escaping quotes,
/// backslashes and control characters.
void AppendJsonString(std::string& out, std::string_view s);

/// Renders a double as a JSON number token ("0.9512", "1e+20"). Non-finite
/// values, which JSON cannot represent, become `null`.
std::string JsonNumber(double value);

/// True when `json` is one complete, syntactically valid JSON value (object,
/// array, string, number, boolean or null) with nothing but whitespace
/// around it. A structural check only — no number-range or UTF-8 validation
/// — built for tests that assert every ToJson/export path emits parseable
/// documents. Nesting deeper than 128 levels is rejected.
bool IsValidJson(std::string_view json);

/// Minimal append-only JSON object builder for the stats endpoints and the
/// benchmark `--json` reports — keys in insertion order, no nesting state
/// machine (nest by passing a built object to `AddRaw`).
class JsonObject {
 public:
  JsonObject& Add(std::string_view key, std::string_view string_value);
  JsonObject& Add(std::string_view key, const char* string_value) {
    return Add(key, std::string_view(string_value));
  }
  JsonObject& Add(std::string_view key, double number);
  JsonObject& Add(std::string_view key, std::uint64_t number);
  JsonObject& Add(std::string_view key, int number) {
    return Add(key, static_cast<std::uint64_t>(number));
  }
  JsonObject& Add(std::string_view key, bool boolean);
  /// Inserts `raw_json` verbatim as the value (must itself be valid JSON,
  /// e.g. a nested object from another builder).
  JsonObject& AddRaw(std::string_view key, std::string_view raw_json);

  /// The complete object, e.g. `{"hits":12,"rate":0.5}`.
  std::string Build() const { return body_ + "}"; }

 private:
  void Key(std::string_view key);
  std::string body_ = "{";
};

/// Append-only JSON array builder, the sibling of `JsonObject` for the
/// list-shaped exports (trace events, recent event-log entries).
class JsonArray {
 public:
  JsonArray& Add(std::string_view string_value);
  JsonArray& Add(double number);
  JsonArray& Add(std::uint64_t number);
  /// Inserts `raw_json` verbatim as the next element (must itself be valid
  /// JSON, e.g. an object from a `JsonObject`).
  JsonArray& AddRaw(std::string_view raw_json);

  bool empty() const { return body_.size() == 1; }
  /// The complete array, e.g. `[1,"two",{"x":3}]`.
  std::string Build() const { return body_ + "]"; }

 private:
  void Comma();
  std::string body_ = "[";
};

}  // namespace subex

#endif  // SUBEX_COMMON_JSON_H_
