#ifndef SUBEX_COMMON_MATRIX_H_
#define SUBEX_COMMON_MATRIX_H_

#include <cstddef>
#include <initializer_list>
#include <span>
#include <vector>

#include "common/check.h"

namespace subex {

/// Dense row-major matrix of doubles.
///
/// The numeric workhorse of the library: datasets are stored as one matrix
/// (rows = points, columns = features) and detectors operate on row views
/// restricted to feature subsets. The storage is a single contiguous buffer,
/// so row access is cache-friendly and a `Row()` span is a zero-copy view.
class Matrix {
 public:
  /// Creates an empty 0x0 matrix.
  Matrix() = default;

  /// Creates a `rows` x `cols` matrix with all entries zero.
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  /// Creates a matrix from nested initializer lists (row by row).
  /// All rows must have equal length.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  Matrix(const Matrix&) = default;
  Matrix& operator=(const Matrix&) = default;
  Matrix(Matrix&&) noexcept = default;
  Matrix& operator=(Matrix&&) noexcept = default;

  /// Number of rows (points).
  std::size_t rows() const { return rows_; }
  /// Number of columns (features).
  std::size_t cols() const { return cols_; }
  /// True when the matrix holds no elements.
  bool empty() const { return data_.empty(); }

  /// Mutable element access. Bounds are checked in debug builds only.
  double& operator()(std::size_t r, std::size_t c) {
    SUBEX_DCHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  /// Const element access. Bounds are checked in debug builds only.
  double operator()(std::size_t r, std::size_t c) const {
    SUBEX_DCHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  /// Zero-copy view of row `r`.
  std::span<const double> Row(std::size_t r) const {
    SUBEX_DCHECK(r < rows_);
    return {data_.data() + r * cols_, cols_};
  }
  /// Mutable zero-copy view of row `r`.
  std::span<double> MutableRow(std::size_t r) {
    SUBEX_DCHECK(r < rows_);
    return {data_.data() + r * cols_, cols_};
  }

  /// Copies column `c` into a fresh vector (column access is strided).
  std::vector<double> Column(std::size_t c) const;

  /// Appends a row; its length must equal `cols()` (or define the width when
  /// the matrix is still empty).
  void AppendRow(std::span<const double> row);

  /// Returns a new matrix containing only the listed columns, in the given
  /// order. Column indices must be in range.
  Matrix SelectColumns(std::span<const int> columns) const;

  /// Returns a new matrix containing only the listed rows, in the given
  /// order. Row indices must be in range.
  Matrix SelectRows(std::span<const int> rows) const;

  /// Raw contiguous storage (row-major).
  const double* data() const { return data_.data(); }

  /// Element-wise equality (exact; intended for tests).
  friend bool operator==(const Matrix& a, const Matrix& b) {
    return a.rows_ == b.rows_ && a.cols_ == b.cols_ && a.data_ == b.data_;
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Squared Euclidean distance between rows `a` and `b` of `m`, restricted to
/// the feature ids in `features`. This is the innermost loop of every
/// distance-based detector, hence it lives here and stays branch-free.
double SquaredDistance(const Matrix& m, std::size_t a, std::size_t b,
                       std::span<const int> features);

}  // namespace subex

#endif  // SUBEX_COMMON_MATRIX_H_
