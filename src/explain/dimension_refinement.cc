#include "explain/dimension_refinement.h"

#include <algorithm>

#include "common/check.h"
#include "obs/registry.h"
#include "obs/trace.h"

namespace subex {

double DimensionalGain(const Dataset& data, const Detector& detector,
                       int point, const Subspace& subspace) {
  SUBEX_CHECK(subspace.size() >= 2);
  const double full = ScoreStandardized(detector, data, subspace)[point];
  double best_projection = -1e300;
  for (FeatureId dropped : subspace.features()) {
    std::vector<FeatureId> reduced;
    reduced.reserve(subspace.size() - 1);
    for (FeatureId f : subspace.features()) {
      if (f != dropped) reduced.push_back(f);
    }
    const double projected =
        ScoreStandardized(detector, data, Subspace(reduced))[point];
    best_projection = std::max(best_projection, projected);
  }
  return full - best_projection;
}

RankedSubspaces RefineByDimensionalGain(
    const Dataset& data, const Detector& detector, int point,
    const RankedSubspaces& candidates,
    const DimensionRefinementOptions& options) {
  SUBEX_CHECK(options.max_candidates >= 1);
  TraceSpan refine(&MetricsRegistry::Global().GetHistogram("explain.refine"),
                   nullptr, "explain.refine");
  const std::size_t head = std::min<std::size_t>(options.max_candidates,
                                                 candidates.size());
  RankedSubspaces refined;
  for (std::size_t i = 0; i < head; ++i) {
    refined.Add(candidates.subspaces[i],
                DimensionalGain(data, detector, point,
                                candidates.subspaces[i]));
  }
  refined.SortDescendingAndTruncate(refined.size());
  // Tail keeps its original order, below every refined candidate.
  double floor = refined.scores.empty() ? 0.0 : refined.scores.back();
  for (std::size_t i = head; i < candidates.size(); ++i) {
    floor -= 1.0;
    refined.Add(candidates.subspaces[i], floor);
  }
  return refined;
}

}  // namespace subex
