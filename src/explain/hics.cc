#include "explain/hics.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/rng.h"
#include "common/topk.h"
#include "stats/descriptive.h"
#include "subspace/enumeration.h"

namespace subex {

Hics::Hics(const Options& options) : options_(options) {
  SUBEX_CHECK(options.candidate_cutoff >= 1);
  SUBEX_CHECK(options.alpha > 0.0 && options.alpha < 1.0);
  SUBEX_CHECK(options.mc_iterations >= 1);
  SUBEX_CHECK(options.max_results >= 1);
}

double Hics::Contrast(const Dataset& data, const Subspace& subspace) const {
  const int n = static_cast<int>(data.num_points());
  const int m = static_cast<int>(subspace.size());
  SUBEX_CHECK(m >= 2);
  SUBEX_CHECK(n >= 10);

  Rng rng(options_.seed ^ SubspaceHash()(subspace));
  // Adaptive slice size: each of the m-1 conditioning features keeps an
  // alpha^(1/(m-1)) fraction, so the intersection keeps ~alpha * n points.
  const double keep_fraction =
      std::pow(options_.alpha, 1.0 / static_cast<double>(m - 1));
  const int window =
      std::max(2, static_cast<int>(std::lround(keep_fraction * n)));

  const std::vector<FeatureId>& features = subspace.features();
  std::vector<int> in_slice_count(n);
  std::vector<double> conditional;
  conditional.reserve(n);

  double deviation_sum = 0.0;
  int valid_iterations = 0;
  for (int iter = 0; iter < options_.mc_iterations; ++iter) {
    const int test_local = rng.UniformInt(0, m - 1);
    const FeatureId test_feature = features[test_local];

    std::fill(in_slice_count.begin(), in_slice_count.end(), 0);
    for (int j = 0; j < m; ++j) {
      if (j == test_local) continue;
      const std::vector<int>& order = data.SortedIndexByFeature(features[j]);
      const int start = rng.UniformInt(0, n - window);
      for (int t = start; t < start + window; ++t) ++in_slice_count[order[t]];
    }

    conditional.clear();
    for (int p = 0; p < n; ++p) {
      if (in_slice_count[p] == m - 1) {
        conditional.push_back(data.Value(p, test_feature));
      }
    }
    if (conditional.size() < 5) continue;  // Degenerate slice; skip.

    // Deviation of the conditional sample from the marginal, in [0, 1].
    // p-values saturate at ~1 for *any* real dependence once n is large,
    // which would tie all dependent subspaces; the statistic magnitudes
    // below keep the ordering informative:
    //  * KS: the supremum CDF distance D (the original HiCS measure);
    //  * Welch: the standardized mean difference |mean_c - mean_m| / sd_m,
    //    soft-clamped into [0, 1).
    const std::vector<double> marginal = data.matrix().Column(test_feature);
    double deviation = 0.0;
    if (options_.test == TwoSampleTestKind::kKolmogorovSmirnov) {
      deviation = KolmogorovSmirnovTest(conditional, marginal).statistic;
    } else {
      const double sd = std::max(1e-9, SampleStdDev(marginal));
      const double smd =
          std::fabs(Mean(conditional) - Mean(marginal)) / sd;
      deviation = smd / (1.0 + smd);
    }
    deviation_sum += deviation;
    ++valid_iterations;
  }
  return valid_iterations > 0
             ? deviation_sum / static_cast<double>(valid_iterations)
             : 0.0;
}

RankedSubspaces Hics::Summarize(const Dataset& data, const Detector& detector,
                                const std::vector<int>& points,
                                int target_dim) const {
  const int d = static_cast<int>(data.num_features());
  SUBEX_CHECK(target_dim >= 2 && target_dim <= d);
  SUBEX_CHECK(!points.empty());

  // Stage 2: exhaustive contrast of all feature pairs.
  std::vector<Subspace> stage = EnumerateSubspaces(d, 2);
  std::vector<double> stage_contrast(stage.size());
  for (std::size_t i = 0; i < stage.size(); ++i) {
    stage_contrast[i] = Contrast(data, stage[i]);
  }

  auto keep_top = [&](int width) {
    const std::vector<int> top =
        TopKIndices(stage_contrast, static_cast<std::size_t>(width));
    std::vector<Subspace> kept;
    std::vector<double> kept_contrast;
    kept.reserve(top.size());
    kept_contrast.reserve(top.size());
    for (int i : top) {
      kept.push_back(std::move(stage[i]));
      kept_contrast.push_back(stage_contrast[i]);
    }
    stage = std::move(kept);
    stage_contrast = std::move(kept_contrast);
  };
  keep_top(options_.candidate_cutoff);

  // Later stages: extend survivors by one feature and re-measure contrast.
  for (int dim = 3; dim <= target_dim; ++dim) {
    std::vector<Subspace> candidates = ExtendByOneFeature(stage, d);
    stage = std::move(candidates);
    stage_contrast.resize(stage.size());
    for (std::size_t i = 0; i < stage.size(); ++i) {
      stage_contrast[i] = Contrast(data, stage[i]);
    }
    keep_top(options_.candidate_cutoff);
  }

  // _FX output: subspaces of exactly target_dim, top max_results by
  // contrast, finally ordered per the configured ranking.
  keep_top(options_.max_results);
  RankedSubspaces result;
  if (options_.ranking == Ranking::kContrast) {
    for (std::size_t i = 0; i < stage.size(); ++i) {
      result.Add(std::move(stage[i]), stage_contrast[i]);
    }
  } else {
    for (Subspace& candidate : stage) {
      const std::vector<double> scores =
          ScoreStandardized(detector, data, candidate);
      double sum = 0.0;
      for (int p : points) sum += scores[p];
      result.Add(std::move(candidate),
                 sum / static_cast<double>(points.size()));
    }
  }
  result.SortDescendingAndTruncate(options_.max_results);
  return result;
}

}  // namespace subex
