#include "explain/refout.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/rng.h"
#include "common/topk.h"
#include "subspace/enumeration.h"

namespace subex {

RefOut::RefOut(const Options& options) : options_(options) {
  SUBEX_CHECK(options.pool_size >= 4);
  SUBEX_CHECK(options.beam_width >= 1);
  SUBEX_CHECK(options.projection_ratio > 0.0 && options.projection_ratio <= 1.0);
  SUBEX_CHECK(options.max_results >= 1);
}

RankedSubspaces RefOut::Explain(const Dataset& data, const Detector& detector,
                                int point, int target_dim) const {
  const int d = static_cast<int>(data.num_features());
  SUBEX_CHECK(target_dim >= 1 && target_dim <= d);
  SUBEX_CHECK(point >= 0 &&
              static_cast<std::size_t>(point) < data.num_points());

  // Deterministic pool per (seed, point).
  Rng rng(options_.seed ^
          (0xd1b54a32d192ed03ull * static_cast<std::uint64_t>(point + 1)));
  int projection_dim = static_cast<int>(
      std::lround(options_.projection_ratio * static_cast<double>(d)));
  projection_dim = std::clamp(projection_dim, std::min(target_dim, d), d);

  const std::vector<Subspace> pool =
      SampleRandomSubspaces(d, projection_dim, options_.pool_size, rng);
  std::vector<double> pool_scores(pool.size());
  for (std::size_t i = 0; i < pool.size(); ++i) {
    pool_scores[i] = ScoreStandardized(detector, data, pool[i])[point];
  }

  // Discrepancy of the score populations of pool members that contain vs.
  // do not contain the candidate. For Welch the statistic is kept signed
  // (with-mean minus without-mean): a relevant candidate *raises* the
  // point's outlyingness when present, so negative shifts are noise, not
  // importance. The KS statistic is inherently unsigned.
  auto discrepancy = [&](const Subspace& candidate) {
    std::vector<double> with;
    std::vector<double> without;
    for (std::size_t i = 0; i < pool.size(); ++i) {
      (pool[i].ContainsAll(candidate) ? with : without)
          .push_back(pool_scores[i]);
    }
    if (with.size() < 2 || without.size() < 2) return 0.0;
    const TestResult r = RunTwoSampleTest(options_.test, with, without);
    return std::isfinite(r.statistic) ? r.statistic : 0.0;
  };

  // Stage 1: single features.
  std::vector<Subspace> stage;
  std::vector<double> stage_disc;
  stage.reserve(d);
  for (FeatureId f = 0; f < d; ++f) stage.emplace_back(Subspace({f}));
  stage_disc.resize(stage.size());
  for (std::size_t i = 0; i < stage.size(); ++i) {
    stage_disc[i] = discrepancy(stage[i]);
  }

  auto keep_top = [&](int width) {
    const std::vector<int> top =
        TopKIndices(stage_disc, static_cast<std::size_t>(width));
    std::vector<Subspace> kept;
    std::vector<double> kept_disc;
    kept.reserve(top.size());
    kept_disc.reserve(top.size());
    for (int i : top) {
      kept.push_back(std::move(stage[i]));
      kept_disc.push_back(stage_disc[i]);
    }
    stage = std::move(kept);
    stage_disc = std::move(kept_disc);
  };
  keep_top(options_.beam_width);

  // Stages 2..target_dim: cross survivors with all single features.
  for (int dim = 2; dim <= target_dim; ++dim) {
    std::vector<Subspace> candidates = ExtendByOneFeature(stage, d);
    stage = std::move(candidates);
    stage_disc.resize(stage.size());
    for (std::size_t i = 0; i < stage.size(); ++i) {
      stage_disc[i] = discrepancy(stage[i]);
    }
    keep_top(options_.beam_width);
  }

  // Final ranking: by the discrepancy statistic itself. (Ranking by the
  // point's direct standardized score instead would systematically favour
  // subspaces where the point is the *only* deviant -- the z-score
  // saturates at sqrt(n / #deviants) -- burying relevant subspaces that
  // explain several outliers. The pool discrepancy does not suffer from
  // this because irrelevant padding features dilute it.)
  keep_top(options_.max_results);
  RankedSubspaces result;
  for (std::size_t i = 0; i < stage.size(); ++i) {
    result.Add(std::move(stage[i]), stage_disc[i]);
  }
  result.SortDescendingAndTruncate(options_.max_results);
  return result;
}

}  // namespace subex
