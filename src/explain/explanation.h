#ifndef SUBEX_EXPLAIN_EXPLANATION_H_
#define SUBEX_EXPLAIN_EXPLANATION_H_

#include <cstddef>
#include <vector>

#include "subspace/subspace.h"

namespace subex {

/// A ranked list of explaining subspaces, best first. `scores[i]` is the
/// algorithm-specific quality of `subspaces[i]` (standardized outlier score,
/// Welch discrepancy, contrast, or marginal gain — whatever the producing
/// algorithm ranks by); scores are comparable only within one result.
struct RankedSubspaces {
  std::vector<Subspace> subspaces;
  std::vector<double> scores;

  std::size_t size() const { return subspaces.size(); }
  bool empty() const { return subspaces.empty(); }

  /// Appends one entry.
  void Add(Subspace subspace, double score) {
    subspaces.push_back(std::move(subspace));
    scores.push_back(score);
  }

  /// Sorts entries by descending score (stable, so producers' insertion
  /// order breaks ties deterministically) and truncates to `max_results`.
  void SortDescendingAndTruncate(std::size_t max_results);
};

}  // namespace subex

#endif  // SUBEX_EXPLAIN_EXPLANATION_H_
