#ifndef SUBEX_EXPLAIN_HICS_H_
#define SUBEX_EXPLAIN_HICS_H_

#include <cstdint>

#include "explain/summarizer.h"
#include "stats/two_sample_tests.h"

namespace subex {

/// HiCS explanation summarizer [Keller et al., ICDE 2012] (§2.3).
///
/// Unlike every other algorithm in the testbed, the subspace search is
/// detector-free: it looks for *high contrast* subspaces — feature
/// combinations whose conditional (sliced) and marginal distributions
/// differ. Contrast is estimated by Monte-Carlo: each iteration picks a
/// test feature of the subspace, conditions the data on random adaptive
/// slices of the remaining features (each slice keeps an
/// `alpha^(1/(m-1))` fraction of the points so the conditional sample is
/// ~`alpha * n` points), and measures the deviation of the conditional
/// sample from the marginal; the contrast is the average deviation over
/// `mc_iterations` iterations. The deviation is the KS supremum distance
/// (the original HiCS measure) or, for the Welch variant, the
/// standardized conditional-marginal mean difference soft-clamped to
/// [0, 1) — p-value-based deviations saturate for any real dependence and
/// would tie all correlated subspaces.
///
/// The search is stage-wise: all 2d subspaces are scored exhaustively, the
/// top `candidate_cutoff` survive, each later stage extends survivors by
/// one feature. Per the `_FX` comparison protocol the search stops at the
/// requested dimensionality and the surviving subspaces of exactly that
/// dimensionality are returned, ranked by the detector: the mean
/// z-standardized score of the to-be-explained points in each subspace
/// (the paper: HiCS "employs a detector to rank the retrieved subspaces").
class Hics final : public Summarizer {
 public:
  /// How the retrieved fixed-dimensionality subspaces are ordered.
  enum class Ranking {
    /// Mean standardized detector score of the outlier set (the paper's
    /// protocol; the detector matters only here).
    kDetector,
    /// The Monte-Carlo contrast itself (fully detector-free). On data
    /// where augmentations of low-dimensional relevant subspaces tie with
    /// exact subspaces in detector score, contrast ranking separates them;
    /// see the HiCS ablation bench.
    kContrast,
  };

  struct Options {
    /// Candidates kept per stage (the paper uses 400).
    int candidate_cutoff = 400;
    /// Final ordering of the retrieved subspaces.
    Ranking ranking = Ranking::kDetector;
    /// Fraction of points the full conditional slice retains (paper: 0.1).
    double alpha = 0.1;
    /// Monte-Carlo iterations per candidate (the paper uses 100).
    int mc_iterations = 100;
    /// Deviation test: Welch's t-test (paper default) or KS.
    TwoSampleTestKind test = TwoSampleTestKind::kWelch;
    /// Maximum subspaces returned (the paper reports the top-100).
    int max_results = 100;
    std::uint64_t seed = 42;
  };

  /// Builds the summarizer with the given options.
  explicit Hics(const Options& options);
  /// Builds the summarizer with the §3.1 defaults.
  Hics() : Hics(Options{}) {}

  std::string name() const override { return "HiCS"; }
  RankedSubspaces Summarize(const Dataset& data, const Detector& detector,
                            const std::vector<int>& points,
                            int target_dim) const override;

  /// Monte-Carlo contrast of one subspace (exposed for tests, ablation
  /// benches, and users who want the raw subspace-search primitive).
  /// Deterministic per (options.seed, subspace).
  double Contrast(const Dataset& data, const Subspace& subspace) const;

  const Options& options() const { return options_; }

 private:
  Options options_;
};

}  // namespace subex

#endif  // SUBEX_EXPLAIN_HICS_H_
