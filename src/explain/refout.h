#ifndef SUBEX_EXPLAIN_REFOUT_H_
#define SUBEX_EXPLAIN_REFOUT_H_

#include <cstdint>

#include "explain/point_explainer.h"
#include "stats/two_sample_tests.h"

namespace subex {

/// RefOut point explainer [Keller et al., CIKM 2013] (§2.2).
///
/// Sampling-based search over a pool of random subspace projections:
/// 1. Draw `pool_size` random subspaces of `projection_ratio * d` features
///    and compute the point's z-standardized detector score in each.
/// 2. Stage 1: for every single feature, split the pool scores into the
///    subspaces containing vs. not containing it and measure the
///    discrepancy of the two score populations with Welch's t-test; keep
///    the top `beam_width` features.
/// 3. Stage k+1: extend the stage-k survivors by every single feature
///    (Cartesian product with univariate subspaces) and re-measure the
///    discrepancy, partitioning the pool by full containment of the
///    candidate.
/// 4. At the target dimensionality, the top `max_results` candidates are
///    returned ranked by their discrepancy (the refinement criterion of
///    the original algorithm; see refout.cc for why ranking by the direct
///    standardized score would be biased against subspaces that explain
///    several outliers).
///
/// The pool is resampled deterministically per (seed, point), so Explain is
/// pure and thread-safe.
class RefOut final : public PointExplainer {
 public:
  struct Options {
    /// Random projections drawn (the paper uses 100).
    int pool_size = 100;
    /// Candidates kept per stage (the paper uses 100).
    int beam_width = 100;
    /// Dimensionality of the random projections as a fraction of the
    /// dataset dimensionality (the paper uses 0.7).
    double projection_ratio = 0.7;
    /// Discrepancy test (the paper runs Welch's t-test).
    TwoSampleTestKind test = TwoSampleTestKind::kWelch;
    /// Maximum subspaces returned.
    int max_results = 100;
    std::uint64_t seed = 42;
  };

  /// Builds the explainer with the given options.
  explicit RefOut(const Options& options);
  /// Builds the explainer with the §3.1 defaults.
  RefOut() : RefOut(Options{}) {}

  std::string name() const override { return "RefOut"; }
  RankedSubspaces Explain(const Dataset& data, const Detector& detector,
                          int point, int target_dim) const override;

  const Options& options() const { return options_; }

 private:
  Options options_;
};

}  // namespace subex

#endif  // SUBEX_EXPLAIN_REFOUT_H_
