#include "explain/lookout.h"

#include <algorithm>

#include "common/check.h"
#include "common/rng.h"
#include "subspace/enumeration.h"

namespace subex {

LookOut::LookOut(const Options& options) : options_(options) {
  SUBEX_CHECK(options.budget >= 1);
}

RankedSubspaces LookOut::Summarize(const Dataset& data,
                                   const Detector& detector,
                                   const std::vector<int>& points,
                                   int target_dim) const {
  const int d = static_cast<int>(data.num_features());
  SUBEX_CHECK(target_dim >= 1 && target_dim <= d);
  SUBEX_CHECK(!points.empty());

  // Candidate enumeration (exhaustive unless capped).
  std::vector<Subspace> candidates;
  const std::uint64_t total = CombinationCount(d, target_dim);
  if (options_.max_candidates > 0 && total > options_.max_candidates) {
    Rng rng(options_.seed);
    candidates = SampleRandomSubspaces(
        d, target_dim, static_cast<int>(options_.max_candidates), rng);
    std::sort(candidates.begin(), candidates.end());
    candidates.erase(std::unique(candidates.begin(), candidates.end()),
                     candidates.end());
  } else {
    candidates = EnumerateSubspaces(d, target_dim);
  }

  // Score matrix: outlier-point x candidate, z-standardized per candidate
  // subspace and clamped at 0 (a point a subspace does not flag contributes
  // no utility).
  const std::size_t num_points = points.size();
  const std::size_t num_candidates = candidates.size();
  std::vector<double> gains(num_points * num_candidates);
  for (std::size_t j = 0; j < num_candidates; ++j) {
    const std::vector<double> scores =
        ScoreStandardized(detector, data, candidates[j]);
    for (std::size_t i = 0; i < num_points; ++i) {
      gains[i * num_candidates + j] = std::max(0.0, scores[points[i]]);
    }
  }

  // Greedy submodular maximization of f(S) = sum_i max_{j in S} score_ij.
  std::vector<double> best_so_far(num_points, 0.0);
  std::vector<bool> selected(num_candidates, false);
  RankedSubspaces result;
  const int budget =
      std::min(options_.budget, static_cast<int>(num_candidates));
  for (int step = 0; step < budget; ++step) {
    double best_gain = -1.0;
    std::size_t best_j = num_candidates;
    for (std::size_t j = 0; j < num_candidates; ++j) {
      if (selected[j]) continue;
      double gain = 0.0;
      for (std::size_t i = 0; i < num_points; ++i) {
        const double s = gains[i * num_candidates + j];
        if (s > best_so_far[i]) gain += s - best_so_far[i];
      }
      if (gain > best_gain) {
        best_gain = gain;
        best_j = j;
      }
    }
    if (best_j == num_candidates) break;
    selected[best_j] = true;
    for (std::size_t i = 0; i < num_points; ++i) {
      best_so_far[i] =
          std::max(best_so_far[i], gains[i * num_candidates + best_j]);
    }
    result.Add(candidates[best_j], best_gain);
    // Zero marginal gain for every remaining candidate: the summary is
    // saturated; selecting more subspaces would be arbitrary.
    if (best_gain <= 0.0) break;
  }
  return result;
}

}  // namespace subex
