#ifndef SUBEX_EXPLAIN_GROUP_SUMMARIZER_H_
#define SUBEX_EXPLAIN_GROUP_SUMMARIZER_H_

#include <vector>

#include "data/dataset.h"
#include "detect/detector.h"
#include "explain/point_explainer.h"

namespace subex {

/// One explained group of outliers: the member points and the subspaces
/// that characterize the whole group.
struct OutlierGroup {
  std::vector<int> points;  ///< Ascending point indices.
  /// Subspaces shared by the members, most-supported first.
  std::vector<Subspace> characterizing_subspaces;
};

/// Options of the group summarizer.
struct GroupSummarizerOptions {
  /// Top subspaces taken from the point explainer per point.
  int subspaces_per_point = 3;
  /// Two points join a group when the score-weighted cosine similarity of
  /// their fingerprints (each subspace weighted by the explainer's own
  /// clamped score, so agreeing on strongly-explaining subspaces
  /// dominates) reaches this threshold.
  double min_similarity = 0.5;
  /// Characterizing subspaces reported per group.
  int max_characterizing = 3;
};

/// Group-based explanation (the paper's §6 pointer to Macha & Akoglu,
/// "Explaining anomalies in groups with characterizing subspace rules",
/// DMKD 2018): instead of one summary for *all* outliers (which the paper
/// shows degrades when outliers are explained by disjoint feature
/// subsets), partition the outliers into groups that share explaining
/// subspaces and characterize each group separately.
///
/// Algorithm: each point's top `subspaces_per_point` subspaces (from any
/// point explainer) form its score-weighted explanation fingerprint;
/// points whose fingerprints are similar (cosine >= `min_similarity`) are
/// merged transitively (union-find); each group is characterized by the
/// subspaces with the highest total fingerprint weight of its members.
std::vector<OutlierGroup> GroupAndCharacterize(
    const Dataset& data, const Detector& detector,
    const PointExplainer& explainer, const std::vector<int>& points,
    int target_dim, const GroupSummarizerOptions& options = {});

}  // namespace subex

#endif  // SUBEX_EXPLAIN_GROUP_SUMMARIZER_H_
