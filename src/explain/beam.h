#ifndef SUBEX_EXPLAIN_BEAM_H_
#define SUBEX_EXPLAIN_BEAM_H_

#include <cstdint>

#include "explain/point_explainer.h"

namespace subex {

/// Beam point explainer [Nguyen et al., DMKD 2016] (§2.2).
///
/// Stage-wise greedy search: stage 1 scores the to-be-explained point in
/// every 2-dimensional subspace exhaustively; each later stage extends the
/// top `beam_width` subspaces of the previous stage by one feature and
/// rescores. Scores are the point's z-standardized detector score in the
/// candidate subspace (higher = better explanation).
///
/// Two result conventions are supported:
///  * `kFixedDim` (Beam_FX, the paper's comparison variant and the
///    default): return the final stage's list — subspaces of exactly the
///    requested dimensionality.
///  * `kGlobalBest`: return the global list of best subspaces across all
///    stages (the original algorithm), which may mix dimensionalities from
///    2 up to `target_dim`.
class Beam final : public PointExplainer {
 public:
  enum class ResultMode { kFixedDim, kGlobalBest };

  struct Options {
    /// Subspaces kept per stage (the paper uses 100).
    int beam_width = 100;
    /// Maximum subspaces returned (the paper reports the top-100).
    int max_results = 100;
    ResultMode result_mode = ResultMode::kFixedDim;
  };

  /// Builds the explainer with the given options.
  explicit Beam(const Options& options);
  /// Builds the explainer with the §3.1 defaults (Beam_FX, width 100).
  Beam() : Beam(Options{}) {}

  std::string name() const override { return "Beam"; }
  RankedSubspaces Explain(const Dataset& data, const Detector& detector,
                          int point, int target_dim) const override;

  /// Number of detector invocations (subspaces scored) during the last
  /// `Explain` call is not tracked here to keep Explain const & thread-safe;
  /// use `CountScoredSubspaces` to predict the cost analytically.
  static std::uint64_t CountScoredSubspaces(int num_features, int target_dim,
                                            int beam_width);

  const Options& options() const { return options_; }

 private:
  Options options_;
};

}  // namespace subex

#endif  // SUBEX_EXPLAIN_BEAM_H_
