#ifndef SUBEX_EXPLAIN_SUMMARIZER_H_
#define SUBEX_EXPLAIN_SUMMARIZER_H_

#include <string>
#include <vector>

#include "data/dataset.h"
#include "detect/detector.h"
#include "explain/explanation.h"

namespace subex {

/// Explanation summarization algorithm interface (§2.3): ranks the
/// subspaces that collectively distinguish as many of the given outlier
/// points from the inliers as possible.
///
/// As with point explainers, the testbed's fixed-dimensionality comparison
/// protocol applies: `Summarize` returns only subspaces of exactly
/// `target_dim` features (the `_FX` convention for HiCS).
class Summarizer {
 public:
  virtual ~Summarizer() = default;

  /// Short human-readable name ("LookOut", "HiCS").
  virtual std::string name() const = 0;

  /// Ranks subspaces of exactly `target_dim` features that summarize the
  /// outlyingness of `points`, best first. `detector` supplies the
  /// outlyingness criterion (LookOut) or the final ranking (HiCS).
  virtual RankedSubspaces Summarize(const Dataset& data,
                                    const Detector& detector,
                                    const std::vector<int>& points,
                                    int target_dim) const = 0;
};

}  // namespace subex

#endif  // SUBEX_EXPLAIN_SUMMARIZER_H_
