#ifndef SUBEX_EXPLAIN_POINT_EXPLAINER_H_
#define SUBEX_EXPLAIN_POINT_EXPLAINER_H_

#include <string>

#include "data/dataset.h"
#include "detect/detector.h"
#include "explain/explanation.h"

namespace subex {

/// Point explanation algorithm interface (§2.2): ranks the subspaces that
/// best explain the outlyingness of one individual point.
///
/// Following the paper's fixed-dimensionality comparison protocol (the
/// `_FX` convention), `Explain` returns only subspaces of exactly
/// `target_dim` features. Implementations are deterministic given their
/// construction-time seed and must not mutate shared state in `Explain`
/// (pipelines may explain different points concurrently).
class PointExplainer {
 public:
  virtual ~PointExplainer() = default;

  /// Short human-readable name ("Beam", "RefOut").
  virtual std::string name() const = 0;

  /// Ranks subspaces of exactly `target_dim` features (2 <= target_dim <=
  /// num_features) explaining why `point` is outlying, best first, using
  /// `detector` as the outlyingness criterion.
  virtual RankedSubspaces Explain(const Dataset& data,
                                  const Detector& detector, int point,
                                  int target_dim) const = 0;
};

}  // namespace subex

#endif  // SUBEX_EXPLAIN_POINT_EXPLAINER_H_
