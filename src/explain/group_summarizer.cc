#include "explain/group_summarizer.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <numeric>

#include "common/check.h"

namespace subex {
namespace {

// A point's explanation fingerprint: subspace -> rank weight (1/rank).
using Fingerprint = std::map<Subspace, double>;

double Cosine(const Fingerprint& a, const Fingerprint& b) {
  double dot = 0.0;
  for (const auto& [subspace, weight] : a) {
    const auto it = b.find(subspace);
    if (it != b.end()) dot += weight * it->second;
  }
  if (dot == 0.0) return 0.0;
  double norm_a = 0.0;
  double norm_b = 0.0;
  for (const auto& [subspace, weight] : a) norm_a += weight * weight;
  for (const auto& [subspace, weight] : b) norm_b += weight * weight;
  return dot / std::sqrt(norm_a * norm_b);
}

int Find(std::vector<int>& parent, int x) {
  while (parent[x] != x) {
    parent[x] = parent[parent[x]];
    x = parent[x];
  }
  return x;
}

void Union(std::vector<int>& parent, int a, int b) {
  parent[Find(parent, a)] = Find(parent, b);
}

}  // namespace

std::vector<OutlierGroup> GroupAndCharacterize(
    const Dataset& data, const Detector& detector,
    const PointExplainer& explainer, const std::vector<int>& points,
    int target_dim, const GroupSummarizerOptions& options) {
  SUBEX_CHECK(!points.empty());
  SUBEX_CHECK(options.subspaces_per_point >= 1);
  SUBEX_CHECK(options.min_similarity > 0.0 && options.min_similarity <= 1.0);
  SUBEX_CHECK(options.max_characterizing >= 1);

  // Rank-weighted explanation fingerprints.
  const int n = static_cast<int>(points.size());
  std::vector<Fingerprint> fingerprints(n);
  for (int i = 0; i < n; ++i) {
    const RankedSubspaces ranked =
        explainer.Explain(data, detector, points[i], target_dim);
    const std::size_t take = std::min<std::size_t>(
        options.subspaces_per_point, ranked.size());
    for (std::size_t r = 0; r < take; ++r) {
      // Weight by the explainer's own score (clamped at 0): a runner-up
      // subspace the point barely registers in contributes ~nothing, so
      // groups are driven by the subspaces that genuinely explain their
      // members. The top subspace always enters with positive weight.
      double weight = std::max(0.0, ranked.scores[r]);
      if (r == 0) weight = std::max(weight, 1e-6);
      if (weight > 0.0) fingerprints[i][ranked.subspaces[r]] = weight;
    }
  }

  // Transitive merge of points with similar fingerprints.
  std::vector<int> parent(n);
  std::iota(parent.begin(), parent.end(), 0);
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      if (Cosine(fingerprints[i], fingerprints[j]) >=
          options.min_similarity) {
        Union(parent, i, j);
      }
    }
  }

  // Collect groups and characterize each by total fingerprint weight.
  std::map<int, std::vector<int>> members;  // root -> local indices.
  for (int i = 0; i < n; ++i) members[Find(parent, i)].push_back(i);

  std::vector<OutlierGroup> groups;
  groups.reserve(members.size());
  for (const auto& [root, locals] : members) {
    OutlierGroup group;
    std::map<Subspace, double> support;
    for (int i : locals) {
      group.points.push_back(points[i]);
      for (const auto& [subspace, weight] : fingerprints[i]) {
        support[subspace] += weight;
      }
    }
    std::sort(group.points.begin(), group.points.end());
    // Highest total weight first; ties broken by subspace order so the
    // result is deterministic.
    std::vector<std::pair<double, Subspace>> ranked;
    ranked.reserve(support.size());
    for (const auto& [subspace, weight] : support) {
      ranked.emplace_back(-weight, subspace);
    }
    std::sort(ranked.begin(), ranked.end());
    const std::size_t take = std::min<std::size_t>(
        options.max_characterizing, ranked.size());
    for (std::size_t i = 0; i < take; ++i) {
      group.characterizing_subspaces.push_back(ranked[i].second);
    }
    groups.push_back(std::move(group));
  }
  // Largest groups first; ties by first member for determinism.
  std::sort(groups.begin(), groups.end(),
            [](const OutlierGroup& a, const OutlierGroup& b) {
              if (a.points.size() != b.points.size()) {
                return a.points.size() > b.points.size();
              }
              return a.points.front() < b.points.front();
            });
  return groups;
}

}  // namespace subex
