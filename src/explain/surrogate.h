#ifndef SUBEX_EXPLAIN_SURROGATE_H_
#define SUBEX_EXPLAIN_SURROGATE_H_

#include "explain/point_explainer.h"
#include "ml/regression_tree.h"

namespace subex {

/// Surrogate-model point explainer — the paper's §6 future-work proposal,
/// implemented: "build a surrogate model to predict the scores of points
/// produced by an unsupervised outlier detector and approximate its
/// decision boundary using minimal predictive signatures."
///
/// Pipeline per `Explain` call:
///  1. Score every point with the detector in the full feature space
///     (one detector invocation — this is the whole cost advantage over
///     subspace search, which needs thousands).
///  2. Fit a CART regression tree approximating the score surface.
///  3. The explained point's *predictive signature* is the feature set on
///     its root-to-leaf decision path; features are weighted by the
///     signature (path order) plus the tree's global importances.
///  4. Candidate subspaces of the requested dimensionality are assembled
///     from the top-weighted features and ranked by total feature weight.
///
/// Compared to Beam/RefOut this trades exactness for speed: no per-point
/// subspace search, a single detector call for the whole batch of points
/// (the tree is refit per call to keep `Explain` pure, but the dominant
/// cost — the full-space scoring — is one `Score`). See
/// `bench_surrogate_explainer` for the quality/speed trade-off.
class SurrogateExplainer final : public PointExplainer {
 public:
  struct Options {
    RegressionTreeOptions tree;
    /// Number of top-weighted features combined into candidate subspaces.
    int candidate_features = 8;
    /// Maximum subspaces returned.
    int max_results = 100;
  };

  /// Builds the explainer with the given options.
  explicit SurrogateExplainer(const Options& options);
  /// Builds the explainer with default tree/candidate settings.
  SurrogateExplainer() : SurrogateExplainer(Options{}) {}

  std::string name() const override { return "Surrogate"; }
  RankedSubspaces Explain(const Dataset& data, const Detector& detector,
                          int point, int target_dim) const override;

  /// Convenience: the fitted surrogate's fidelity (R^2 against the
  /// detector's full-space scores) for diagnostics.
  double Fidelity(const Dataset& data, const Detector& detector) const;

  const Options& options() const { return options_; }

 private:
  RegressionTree FitSurrogate(const Dataset& data,
                              const Detector& detector) const;

  Options options_;
};

}  // namespace subex

#endif  // SUBEX_EXPLAIN_SURROGATE_H_
