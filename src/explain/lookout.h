#ifndef SUBEX_EXPLAIN_LOOKOUT_H_
#define SUBEX_EXPLAIN_LOOKOUT_H_

#include <cstdint>

#include "explain/summarizer.h"

namespace subex {

/// LookOut explanation summarizer [Gupta et al., ECML/PKDD 2018] (§2.3).
///
/// Enumerates every subspace of the requested dimensionality, scores all
/// to-be-explained points in each with the detector, and greedily maximizes
/// the submodular objective
///   f(S) = sum_p max_{s in S} score(p, s)
/// under a budget of `budget` subspaces (the classic 1-1/e greedy
/// approximation). Scores are z-standardized per subspace and clamped at 0
/// so the objective is non-negative and monotone.
///
/// The returned list is the greedy selection order; the ranking score of
/// each subspace is its marginal gain at selection time.
///
/// For large `C(d, target_dim)` the enumeration can be capped with
/// `max_candidates` (uniform random sampling of candidates); the cap is off
/// by default and mirrors the paper stopping configurations that would
/// require ~10^6 subspaces.
class LookOut final : public Summarizer {
 public:
  struct Options {
    /// Number of subspaces selected (the paper uses 100).
    int budget = 100;
    /// 0 = exhaustive enumeration; otherwise sample this many candidates.
    std::uint64_t max_candidates = 0;
    /// Seed used only when candidate sampling kicks in.
    std::uint64_t seed = 42;
  };

  /// Builds the summarizer with the given options.
  explicit LookOut(const Options& options);
  /// Builds the summarizer with the §3.1 defaults (budget 100).
  LookOut() : LookOut(Options{}) {}

  std::string name() const override { return "LookOut"; }
  RankedSubspaces Summarize(const Dataset& data, const Detector& detector,
                            const std::vector<int>& points,
                            int target_dim) const override;

  const Options& options() const { return options_; }

 private:
  Options options_;
};

}  // namespace subex

#endif  // SUBEX_EXPLAIN_LOOKOUT_H_
