#include "explain/beam.h"

#include <algorithm>

#include "common/check.h"
#include "common/topk.h"
#include "subspace/enumeration.h"

namespace subex {

Beam::Beam(const Options& options) : options_(options) {
  SUBEX_CHECK(options.beam_width >= 1);
  SUBEX_CHECK(options.max_results >= 1);
}

RankedSubspaces Beam::Explain(const Dataset& data, const Detector& detector,
                              int point, int target_dim) const {
  const int d = static_cast<int>(data.num_features());
  SUBEX_CHECK(target_dim >= 2 && target_dim <= d);
  SUBEX_CHECK(point >= 0 && static_cast<std::size_t>(point) < data.num_points());

  auto score_point = [&](const Subspace& s) {
    return ScoreStandardized(detector, data, s)[point];
  };

  // Stage 1: exhaustive 2d scoring.
  std::vector<Subspace> stage_subspaces = EnumerateSubspaces(d, 2);
  std::vector<double> stage_scores(stage_subspaces.size());
  for (std::size_t i = 0; i < stage_subspaces.size(); ++i) {
    stage_scores[i] = score_point(stage_subspaces[i]);
  }

  RankedSubspaces global;
  auto keep_stage_top = [&](std::size_t width) {
    const std::vector<int> top = TopKIndices(stage_scores, width);
    std::vector<Subspace> kept_subspaces;
    std::vector<double> kept_scores;
    kept_subspaces.reserve(top.size());
    kept_scores.reserve(top.size());
    for (int i : top) {
      kept_subspaces.push_back(std::move(stage_subspaces[i]));
      kept_scores.push_back(stage_scores[i]);
    }
    stage_subspaces = std::move(kept_subspaces);
    stage_scores = std::move(kept_scores);
  };

  keep_stage_top(options_.beam_width);
  if (options_.result_mode == ResultMode::kGlobalBest) {
    for (std::size_t i = 0; i < stage_subspaces.size(); ++i) {
      global.Add(stage_subspaces[i], stage_scores[i]);
    }
  }

  // Later stages: extend survivors by one feature and rescore.
  for (int dim = 3; dim <= target_dim; ++dim) {
    std::vector<Subspace> candidates = ExtendByOneFeature(stage_subspaces, d);
    stage_subspaces = std::move(candidates);
    stage_scores.resize(stage_subspaces.size());
    for (std::size_t i = 0; i < stage_subspaces.size(); ++i) {
      stage_scores[i] = score_point(stage_subspaces[i]);
    }
    keep_stage_top(options_.beam_width);
    if (options_.result_mode == ResultMode::kGlobalBest) {
      for (std::size_t i = 0; i < stage_subspaces.size(); ++i) {
        global.Add(stage_subspaces[i], stage_scores[i]);
      }
    }
  }

  if (options_.result_mode == ResultMode::kGlobalBest) {
    global.SortDescendingAndTruncate(options_.max_results);
    return global;
  }
  RankedSubspaces result;
  for (std::size_t i = 0; i < stage_subspaces.size(); ++i) {
    result.Add(std::move(stage_subspaces[i]), stage_scores[i]);
  }
  result.SortDescendingAndTruncate(options_.max_results);
  return result;
}

std::uint64_t Beam::CountScoredSubspaces(int num_features, int target_dim,
                                         int beam_width) {
  std::uint64_t total = CombinationCount(num_features, 2);
  for (int dim = 3; dim <= target_dim; ++dim) {
    // Each survivor spawns at most (num_features - dim + 1) extensions;
    // duplicates reduce this in practice, so this is an upper bound.
    total += static_cast<std::uint64_t>(beam_width) *
             static_cast<std::uint64_t>(num_features - dim + 1);
  }
  return total;
}

}  // namespace subex
