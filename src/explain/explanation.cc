#include "explain/explanation.h"

#include <algorithm>
#include <numeric>

namespace subex {

void RankedSubspaces::SortDescendingAndTruncate(std::size_t max_results) {
  std::vector<int> order(subspaces.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [this](int a, int b) { return scores[a] > scores[b]; });
  if (order.size() > max_results) order.resize(max_results);
  std::vector<Subspace> new_subspaces;
  std::vector<double> new_scores;
  new_subspaces.reserve(order.size());
  new_scores.reserve(order.size());
  for (int i : order) {
    new_subspaces.push_back(std::move(subspaces[i]));
    new_scores.push_back(scores[i]);
  }
  subspaces = std::move(new_subspaces);
  scores = std::move(new_scores);
}

}  // namespace subex
