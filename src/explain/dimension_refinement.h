#ifndef SUBEX_EXPLAIN_DIMENSION_REFINEMENT_H_
#define SUBEX_EXPLAIN_DIMENSION_REFINEMENT_H_

#include "data/dataset.h"
#include "detect/detector.h"
#include "explain/explanation.h"

namespace subex {

/// Options of the dimension-based re-ranking.
struct DimensionRefinementOptions {
  /// Only the top candidates of the input ranking are re-scored (each
  /// costs |S|+1 detector invocations); the rest keep their order below.
  int max_candidates = 20;
};

/// Dimension-based explanation quality (the paper's §6 pointer to
/// Trittenbach & Böhm, "Dimension-based subspace search for outlier
/// detection", 2019): instead of scoring a subspace by the point's
/// outlyingness alone, score it by the *incremental gain* of its last
/// dimension —
///
///   quality(S) = z_p(S) - max_{f in S} z_p(S \ {f})
///
/// i.e. how much of the point's outlyingness exists only in the full
/// subspace and not in any of its one-smaller projections. A subspace
/// padded with an irrelevant feature keeps its score when that feature is
/// dropped (gain ~ 0), while a minimal explaining subspace loses it
/// (gain large) — exactly the augmentation/exact-subspace ambiguity that
/// caps score-ranked MAP on subspace-outlier data.
///
/// `RefineByDimensionalGain` re-ranks a fixed-dimensionality candidate
/// list (e.g. Beam's or RefOut's output) by this quality; candidates
/// beyond `max_candidates` are appended unchanged after the refined head.
RankedSubspaces RefineByDimensionalGain(
    const Dataset& data, const Detector& detector, int point,
    const RankedSubspaces& candidates,
    const DimensionRefinementOptions& options = {});

/// The quality measure itself, for a single subspace (|S| >= 2).
double DimensionalGain(const Dataset& data, const Detector& detector,
                       int point, const Subspace& subspace);

}  // namespace subex

#endif  // SUBEX_EXPLAIN_DIMENSION_REFINEMENT_H_
