#include "explain/surrogate.h"

#include <algorithm>

#include "common/check.h"
#include "common/topk.h"
#include "subspace/enumeration.h"

namespace subex {

SurrogateExplainer::SurrogateExplainer(const Options& options)
    : options_(options) {
  SUBEX_CHECK(options.candidate_features >= 1);
  SUBEX_CHECK(options.max_results >= 1);
}

RegressionTree SurrogateExplainer::FitSurrogate(
    const Dataset& data, const Detector& detector) const {
  const std::vector<double> scores = detector.Score(data, Subspace());
  RegressionTree tree;
  tree.Fit(data.matrix(), scores, options_.tree);
  return tree;
}

double SurrogateExplainer::Fidelity(const Dataset& data,
                                    const Detector& detector) const {
  const std::vector<double> scores = detector.Score(data, Subspace());
  RegressionTree tree;
  tree.Fit(data.matrix(), scores, options_.tree);
  return tree.RSquared(data.matrix(), scores);
}

RankedSubspaces SurrogateExplainer::Explain(const Dataset& data,
                                            const Detector& detector,
                                            int point,
                                            int target_dim) const {
  const int d = static_cast<int>(data.num_features());
  SUBEX_CHECK(target_dim >= 1 && target_dim <= d);
  SUBEX_CHECK(point >= 0 &&
              static_cast<std::size_t>(point) < data.num_points());

  const RegressionTree tree = FitSurrogate(data, detector);
  const std::vector<double> importance = tree.FeatureImportances();
  const std::vector<int> signature =
      tree.DecisionPathFeatures(data.matrix().Row(point));

  // Feature weights: global importance plus a strong, depth-decaying bonus
  // for the point's own predictive signature.
  std::vector<double> weight(importance);
  double bonus = 1.0;
  for (int f : signature) {
    weight[f] += bonus;
    bonus *= 0.7;
  }

  // Candidate features: the top-weighted ones (always at least target_dim).
  const int k = std::min(
      d, std::max(target_dim, options_.candidate_features));
  const std::vector<int> top_features = TopKIndices(weight, k);

  // All target_dim-subsets of the candidate features, ranked by total
  // weight. C(k, dim) stays tiny for the default k.
  const std::vector<Subspace> local =
      EnumerateSubspaces(k, target_dim);
  RankedSubspaces result;
  for (const Subspace& pattern : local) {
    std::vector<FeatureId> features;
    double total = 0.0;
    for (FeatureId local_id : pattern.features()) {
      const int f = top_features[local_id];
      features.push_back(f);
      total += weight[f];
    }
    result.Add(Subspace(std::move(features)), total);
  }
  result.SortDescendingAndTruncate(options_.max_results);
  return result;
}

}  // namespace subex
