#ifndef SUBEX_NET_EXPLAIN_SERVER_H_
#define SUBEX_NET_EXPLAIN_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>

#include "common/thread_pool.h"
#include "explain/point_explainer.h"
#include "net/frame.h"
#include "net/protocol.h"
#include "net/socket.h"
#include "obs/event_log.h"
#include "obs/metrics.h"
#include "online/online_dataset.h"
#include "serve/scoring_service.h"

namespace subex {

/// Point-in-time view of an `ExplainServer`'s counters (the `kStats`
/// endpoint serves these plus every registered service's cache stats).
struct ServerStatsSnapshot {
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_closed = 0;
  /// Requests admitted to the queue (each eventually produces a response).
  std::uint64_t requests_admitted = 0;
  std::uint64_t responses_sent = 0;
  /// Requests rejected with `kBusy` because the queue was full.
  std::uint64_t busy_rejections = 0;
  /// Malformed frames/headers (each also closes its connection).
  std::uint64_t protocol_errors = 0;
  /// Connections closed by the idle/write timeout.
  std::uint64_t timeouts = 0;
  /// Requests dropped at queue-dequeue because their deadline had already
  /// expired (answered `kDeadlineExceeded` without computing).
  std::uint64_t deadline_expired_queue = 0;
  /// Requests whose deadline expired during computation (the computed
  /// result is discarded and replaced with `kDeadlineExceeded`).
  std::uint64_t deadline_expired_compute = 0;

  std::string ToJson() const;
};

/// Knobs of an `ExplainServer`.
struct ExplainServerOptions {
  /// IPv4 address to bind (loopback by default — the testbed's benches and
  /// tests talk to themselves).
  std::string host = "127.0.0.1";
  /// TCP port; 0 asks the kernel for an ephemeral port (read `port()` after
  /// `Start`).
  std::uint16_t port = 0;
  int listen_backlog = 64;
  /// Bound on admitted-but-unfinished requests across all connections.
  /// At the bound, new requests are answered `kBusy` immediately — the
  /// server sheds load instead of buffering it (clients retry with
  /// backoff). Must be >= 1.
  std::size_t queue_capacity = 256;
  /// Per-frame payload ceiling; a larger length prefix is a protocol error.
  std::size_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// A connection with no read/write progress and no in-flight work for
  /// this long is closed. <= 0 disables the timeout.
  int idle_timeout_ms = 30000;
  /// Graceful-shutdown budget: `Stop` waits this long for in-flight
  /// requests to finish and responses to flush before closing connections.
  int drain_timeout_ms = 10000;
  /// Per-thread ring capacity the process `SpanCollector` is enabled with
  /// at `Start` (skipped when the collector is already enabled, so a dump
  /// in progress isn't discarded). 0 leaves the collector alone — spans
  /// still reach it if something else enabled it. Keep modest: a
  /// `kTraceDump` response must fit the client's frame cap.
  std::size_t trace_ring_capacity = 2048;
  /// Requests slower end-to-end than this retain their full span breakdown
  /// (served under `kStats` "slow_requests"). 0 disables; fractional
  /// values < 1 ms work (tests use tiny thresholds).
  double slow_request_threshold_ms = 0.0;
  /// Slow-request ring size.
  std::size_t slow_request_capacity = 32;
  /// Port of the optional plain-HTTP listener serving `GET /metrics` in
  /// Prometheus text format (same bind host). -1 disables it, 0 asks for
  /// an ephemeral port (read `metrics_port()` after `Start`).
  int metrics_port = -1;
};

/// Networked explanation server: a single poll()-based event-loop thread
/// multiplexes every connection, decodes length-prefixed request frames,
/// and hands the compute — detector scoring through a `ScoringService`,
/// point explanation through a registered `PointExplainer` — to the shared
/// `ThreadPool`, so slow explanations never stall the loop.
///
/// Flow control is admission-based: at most `queue_capacity` requests may
/// be in flight; beyond that the loop replies `kBusy` without touching the
/// pool (no unbounded buffering anywhere — frames are bounded by
/// `max_frame_bytes`, admissions by the queue, responses by admissions).
/// `Stop` performs a graceful drain: the listener closes, reading stops,
/// in-flight requests run to completion and their responses are flushed
/// (up to `drain_timeout_ms`) before connections are torn down.
///
/// Register every service/explainer before `Start`; the registry is
/// read-only while the loop runs. Handlers are thread-safe by construction:
/// `ScoringService` is concurrent, explainers are stateless, and responses
/// are serialized per connection under a mutex.
class ExplainServer {
 public:
  /// `pool == nullptr` runs handlers inline on the event-loop thread
  /// (single-threaded service, still correct — useful for tests).
  explicit ExplainServer(const ExplainServerOptions& options = {},
                         ThreadPool* pool = nullptr);
  /// Stops (gracefully) if still running.
  ~ExplainServer();

  ExplainServer(const ExplainServer&) = delete;
  ExplainServer& operator=(const ExplainServer&) = delete;

  /// Exposes `service` under its detector name (`kScore`'s and `kExplain`'s
  /// `detector` field). The service must outlive the server.
  void RegisterService(ScoringService& service);
  /// Exposes `explainer` under `name` for `kExplain`. Must outlive the
  /// server.
  void RegisterExplainer(const std::string& name,
                         const PointExplainer& explainer);
  /// Exposes `dataset` under its name for `kIngest`/`kOnlineScore`/
  /// `kOnlineExplain` (online explanations reuse the registered
  /// explainers). Must outlive the server; register scorers on the dataset
  /// before `Start`.
  void RegisterOnlineDataset(OnlineDataset& dataset);

  /// Binds, listens and starts the event-loop thread. False + `*error` on
  /// failure (e.g. port in use).
  bool Start(std::string* error = nullptr);

  /// Graceful shutdown: drains in-flight work, flushes responses, joins
  /// the loop thread. Idempotent.
  void Stop();

  /// True between a successful `Start` and `Stop`.
  bool running() const { return running_.load(std::memory_order_acquire); }

  /// The bound TCP port (valid after `Start`).
  std::uint16_t port() const { return port_; }

  /// The bound HTTP metrics port (valid after `Start` when enabled).
  std::uint16_t metrics_port() const { return metrics_port_; }

  ServerStatsSnapshot stats() const;

  const ExplainServerOptions& options() const { return options_; }

 private:
  struct Connection;
  struct HttpConnection;

  void Loop();
  void AcceptNewConnections();
  void AcceptMetricsConnections();
  /// Reads an HTTP request; builds the response once the header is
  /// complete. Returns false when the connection should be closed.
  bool HandleHttpReadable(HttpConnection& conn);
  /// Flushes the HTTP response. Returns false when done or on error.
  bool HandleHttpWritable(HttpConnection& conn);
  std::string BuildMetricsHttpResponse(const std::string& request_text);
  /// Reads, frames and dispatches one ready connection. Returns false when
  /// the connection should be closed.
  bool HandleReadable(const std::shared_ptr<Connection>& conn);
  /// Flushes as much of the write queue as the socket accepts. Returns
  /// false on a fatal write error.
  bool HandleWritable(const std::shared_ptr<Connection>& conn);
  /// Admission control + dispatch of one decoded frame.
  void DispatchFrame(const std::shared_ptr<Connection>& conn,
                     std::vector<std::uint8_t> payload);
  /// Runs on the pool: decodes the body, computes, enqueues the response.
  /// `admitted` is the admission instant — queue wait (admission to start
  /// of compute) and end-to-end latency (admission to response enqueued)
  /// both measure from it.
  void HandleRequest(const std::shared_ptr<Connection>& conn,
                     MessageHeader header, std::vector<std::uint8_t> payload,
                     std::chrono::steady_clock::time_point admitted);
  std::vector<std::uint8_t> ComputeResponse(const MessageHeader& header,
                                            WireReader& reader);
  std::vector<std::uint8_t> HandleScore(std::uint64_t request_id,
                                        WireReader& reader);
  std::vector<std::uint8_t> HandleExplain(std::uint64_t request_id,
                                          WireReader& reader);
  std::vector<std::uint8_t> HandleStats(std::uint64_t request_id);
  std::vector<std::uint8_t> HandleTraceDump(std::uint64_t request_id,
                                            WireReader& reader);
  std::vector<std::uint8_t> HandleIngest(std::uint64_t request_id,
                                         WireReader& reader);
  std::vector<std::uint8_t> HandleOnlineScore(std::uint64_t request_id,
                                              WireReader& reader);
  std::vector<std::uint8_t> HandleOnlineExplain(std::uint64_t request_id,
                                                WireReader& reader);
  std::vector<std::uint8_t> HandleProfDump(std::uint64_t request_id,
                                           WireReader& reader);
  /// `trace_id`/`parent_span_id` label the response's eventual `net.write`
  /// span (0 = untraced).
  void EnqueueResponse(const std::shared_ptr<Connection>& conn,
                       std::vector<std::uint8_t> payload,
                       std::uint64_t trace_id = 0,
                       std::uint64_t parent_span_id = 0);
  void CloseConnection(const std::shared_ptr<Connection>& conn);
  /// Nudges the poll loop out of its wait (self-pipe trick).
  void Wake();

  ExplainServerOptions options_;
  ThreadPool* pool_;
  std::unordered_map<std::string, ScoringService*> services_;
  std::unordered_map<std::string, const PointExplainer*> explainers_;
  std::unordered_map<std::string, OnlineDataset*> online_;

  Socket listener_;
  Socket metrics_listener_;
  Socket wake_read_;
  Socket wake_write_;
  std::uint16_t port_ = 0;
  std::uint16_t metrics_port_ = 0;
  std::thread loop_thread_;
  std::mutex lifecycle_mutex_;  // Serializes Start/Stop.
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};

  /// Admitted-but-unfinished requests (the bounded queue's fill level).
  std::atomic<std::size_t> in_flight_{0};

  // Global-registry instruments (looked up once here, recorded lock-free
  // on the request path; the kStats endpoint serves the whole registry).
  Histogram* request_histogram_;     ///< serve.request (admit -> enqueued).
  Histogram* queue_wait_histogram_;  ///< serve.queue_wait (admit -> start).
  Histogram* write_histogram_;       ///< net.write (one flush pass).
  Histogram* score_request_histogram_;    ///< serve.request.score.
  Histogram* explain_request_histogram_;  ///< serve.request.explain.
  Histogram* stats_request_histogram_;    ///< serve.request.stats.
  Histogram* ingest_request_histogram_;   ///< serve.request.ingest.
  Histogram* online_score_request_histogram_;    ///< serve.request.online_score.
  Histogram* online_explain_request_histogram_;  ///< serve.request.online_explain.
  Histogram* prof_request_histogram_;  ///< serve.request.prof.
  Histogram* explain_search_histogram_;   ///< explain.search (handler side).
  Counter* bytes_received_;          ///< net.bytes_received.
  Counter* bytes_sent_;              ///< net.bytes_sent.
  Counter* deadline_queue_counter_;    ///< serve.deadline_expired_queue.
  Counter* deadline_compute_counter_;  ///< serve.deadline_expired_compute.
  Gauge* connections_gauge_;         ///< serve.connections (open right now).
  Gauge* uptime_gauge_;              ///< server.uptime_seconds.

  /// Set at `Start`; feeds the uptime gauge at stats/metrics render time.
  std::chrono::steady_clock::time_point started_at_{};

  /// Created at `Start` when `slow_request_threshold_ms > 0`.
  std::unique_ptr<SlowRequestCapture> slow_capture_;

  // Counters (relaxed atomics; see ServiceStats for the precedent).
  std::atomic<std::uint64_t> connections_accepted_{0};
  std::atomic<std::uint64_t> connections_closed_{0};
  std::atomic<std::uint64_t> requests_admitted_{0};
  std::atomic<std::uint64_t> responses_sent_{0};
  std::atomic<std::uint64_t> busy_rejections_{0};
  std::atomic<std::uint64_t> protocol_errors_{0};
  std::atomic<std::uint64_t> timeouts_{0};
  std::atomic<std::uint64_t> deadline_expired_queue_{0};
  std::atomic<std::uint64_t> deadline_expired_compute_{0};

  /// Live connections, keyed by fd. Owned by the loop thread; handlers
  /// hold their own shared_ptr and never touch this map.
  std::unordered_map<int, std::shared_ptr<Connection>> connections_;

  /// Live HTTP metrics connections. Loop-thread only — the tiny `/metrics`
  /// exchanges are handled inline, never on the pool.
  std::unordered_map<int, std::unique_ptr<HttpConnection>> http_connections_;
};

}  // namespace subex

#endif  // SUBEX_NET_EXPLAIN_SERVER_H_
