#include "net/socket.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>

#include "fault/fault.h"

namespace subex {
namespace {

std::string Errno(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

bool FillAddr(const std::string& host, std::uint16_t port, sockaddr_in* addr,
              std::string* error) {
  std::memset(addr, 0, sizeof(*addr));
  addr->sin_family = AF_INET;
  addr->sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr->sin_addr) != 1) {
    if (error != nullptr) *error = "invalid IPv4 address: " + host;
    return false;
  }
  return true;
}

/// Milliseconds left until `deadline`, clamped at 0.
int RemainingMs(std::chrono::steady_clock::time_point deadline) {
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
      deadline - std::chrono::steady_clock::now());
  return left.count() > 0 ? static_cast<int>(left.count()) : 0;
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool SetNonBlocking(int fd, bool non_blocking) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  const int wanted =
      non_blocking ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  return ::fcntl(fd, F_SETFL, wanted) == 0;
}

Socket ListenTcp(const std::string& host, std::uint16_t port, int backlog,
                 std::uint16_t* bound_port, std::string* error) {
  sockaddr_in addr;
  if (!FillAddr(host, port, &addr, error)) return Socket();
  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) {
    if (error != nullptr) *error = Errno("socket");
    return Socket();
  }
  const int one = 1;
  ::setsockopt(sock.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(sock.fd(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    if (error != nullptr) *error = Errno("bind");
    return Socket();
  }
  if (::listen(sock.fd(), backlog) != 0) {
    if (error != nullptr) *error = Errno("listen");
    return Socket();
  }
  if (bound_port != nullptr) {
    sockaddr_in bound;
    socklen_t len = sizeof(bound);
    if (::getsockname(sock.fd(), reinterpret_cast<sockaddr*>(&bound), &len) !=
        0) {
      if (error != nullptr) *error = Errno("getsockname");
      return Socket();
    }
    *bound_port = ntohs(bound.sin_port);
  }
  if (!SetNonBlocking(sock.fd(), true)) {
    if (error != nullptr) *error = Errno("fcntl");
    return Socket();
  }
  return sock;
}

Socket ConnectTcp(const std::string& host, std::uint16_t port, int timeout_ms,
                  std::string* error) {
  sockaddr_in addr;
  if (!FillAddr(host, port, &addr, error)) return Socket();
  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) {
    if (error != nullptr) *error = Errno("socket");
    return Socket();
  }
  // Non-blocking connect so the timeout is enforceable, then back to
  // blocking mode for the client's poll-with-deadline I/O helpers.
  if (!SetNonBlocking(sock.fd(), true)) {
    if (error != nullptr) *error = Errno("fcntl");
    return Socket();
  }
  FaultAction fault_action;
  if (SUBEX_FAULT(FaultPoint::kSocketConnect, &fault_action) &&
      fault_action == FaultAction::kFail) {
    if (error != nullptr) *error = "connect: injected fault";
    return Socket();
  }
  if (::connect(sock.fd(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    if (errno != EINPROGRESS) {
      if (error != nullptr) *error = Errno("connect");
      return Socket();
    }
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    int ready;
    do {
      // A signal landing mid-connect must not abort the round trip: retry
      // the poll with whatever deadline budget remains (an injected
      // kEintr at the connect point exercises the same path).
      if (SUBEX_FAULT(FaultPoint::kSocketConnect, &fault_action) &&
          fault_action != FaultAction::kEintr) {
        if (error != nullptr) *error = "connect: injected fault";
        return Socket();
      }
      pollfd pfd{sock.fd(), POLLOUT, 0};
      ready = ::poll(&pfd, 1, RemainingMs(deadline));
    } while (ready < 0 && errno == EINTR);
    if (ready <= 0) {
      if (error != nullptr) {
        *error = ready == 0 ? "connect timed out" : Errno("poll");
      }
      return Socket();
    }
    int so_error = 0;
    socklen_t len = sizeof(so_error);
    if (::getsockopt(sock.fd(), SOL_SOCKET, SO_ERROR, &so_error, &len) != 0 ||
        so_error != 0) {
      if (error != nullptr) {
        *error = std::string("connect: ") + std::strerror(so_error);
      }
      return Socket();
    }
  }
  if (!SetNonBlocking(sock.fd(), false)) {
    if (error != nullptr) *error = Errno("fcntl");
    return Socket();
  }
  const int one = 1;
  ::setsockopt(sock.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return sock;
}

bool MakeWakePipe(Socket* read_end, Socket* write_end, std::string* error) {
  int fds[2];
  if (::pipe(fds) != 0) {
    if (error != nullptr) *error = Errno("pipe");
    return false;
  }
  *read_end = Socket(fds[0]);
  *write_end = Socket(fds[1]);
  return SetNonBlocking(fds[0], true) && SetNonBlocking(fds[1], true);
}

bool SendAll(int fd, const std::uint8_t* data, std::size_t size,
             int timeout_ms, std::string* error) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  std::size_t sent = 0;
  while (sent < size) {
    pollfd pfd{fd, POLLOUT, 0};
    const int ready = ::poll(&pfd, 1, RemainingMs(deadline));
    if (ready == 0) {
      if (error != nullptr) *error = "send timed out";
      return false;
    }
    if (ready < 0) {
      if (errno == EINTR) continue;
      if (error != nullptr) *error = Errno("poll");
      return false;
    }
    std::size_t want = size - sent;
    FaultAction fault_action;
    if (SUBEX_FAULT(FaultPoint::kSocketWrite, &fault_action)) {
      if (fault_action == FaultAction::kEintr) continue;
      if (fault_action == FaultAction::kShort) {
        want = 1;  // Partial write — the loop must resume from `sent`.
      } else {
        if (error != nullptr) *error = "send: injected fault";
        return false;
      }
    }
    const ssize_t n = ::send(fd, data + sent, want, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      if (error != nullptr) *error = Errno("send");
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

bool RecvSome(int fd, std::uint8_t* buffer, std::size_t capacity,
              int timeout_ms, std::size_t* received, std::string* error) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  while (true) {
    pollfd pfd{fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, RemainingMs(deadline));
    if (ready == 0) {
      if (error != nullptr) *error = "receive timed out";
      return false;
    }
    if (ready < 0) {
      if (errno == EINTR) continue;
      if (error != nullptr) *error = Errno("poll");
      return false;
    }
    std::size_t want = capacity;
    FaultAction fault_action;
    if (SUBEX_FAULT(FaultPoint::kSocketRead, &fault_action)) {
      if (fault_action == FaultAction::kEintr) continue;
      if (fault_action == FaultAction::kShort) {
        want = 1;  // Partial read — the framing layer must reassemble.
      } else {
        if (error != nullptr) *error = "recv: injected fault";
        return false;
      }
    }
    const ssize_t n = ::recv(fd, buffer, want, 0);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      if (error != nullptr) *error = Errno("recv");
      return false;
    }
    *received = static_cast<std::size_t>(n);
    return true;
  }
}

}  // namespace subex
