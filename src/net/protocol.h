#ifndef SUBEX_NET_PROTOCOL_H_
#define SUBEX_NET_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "explain/explanation.h"
#include "net/wire.h"
#include "subspace/subspace.h"

namespace subex {

/// Wire protocol version carried in every message header; a server rejects
/// frames from a different version with `kError` (no negotiation — both
/// ends of the testbed ship together).
inline constexpr std::uint8_t kProtocolVersion = 1;

/// Message discriminator. Requests are < 64, successful responses start at
/// 64, and flow-control/error responses start at 100 (see DESIGN.md for
/// the frame format table).
enum class MessageType : std::uint8_t {
  // Requests (client → server).
  kScore = 1,      ///< Standardized score vector of one subspace.
  kExplain = 2,    ///< Ranked explaining subspaces of one point.
  kStats = 3,      ///< Server + per-service counters as JSON.
  kTraceDump = 4,  ///< Collected spans as Chrome trace-event JSON.
  kIngest = 5,         ///< Append rows to a named online dataset.
  kOnlineScore = 6,    ///< Score the current window of an online dataset.
  kOnlineExplain = 7,  ///< Explain a window row of an online dataset.
  kProfDump = 8,       ///< Control/dump the server's sampling profiler.
  // Responses (server → client).
  kScoreResult = 64,
  kExplainResult = 65,
  kStatsResult = 66,
  kTraceDumpResult = 67,
  kIngestResult = 68,
  kOnlineScoreResult = 69,
  kOnlineExplainResult = 70,
  kProfDumpResult = 71,
  kBusy = 100,   ///< Request queue full — retry with backoff.
  kError = 101,  ///< Malformed or unserviceable request; body is a message.
  kDeadlineExceeded = 102,  ///< The request's deadline expired server-side.
};

/// True for the client-issued message types.
bool IsRequestType(MessageType type);

/// High bit of the wire type byte: set when an optional u64 trace id
/// follows the fixed header. Old clients never set it and old servers never
/// see it set, so untraced frames are byte-identical across versions.
inline constexpr std::uint8_t kTraceIdFlag = 0x80;

/// High bit of the wire *version* byte: set when an optional u32 deadline
/// (milliseconds of remaining budget, relative so clock skew is moot)
/// follows the header after the optional trace id. It cannot live on the
/// type byte — bit 6 is already significant there (`kScoreResult` is 64) —
/// and the version byte's value space (`kProtocolVersion` = 1) is free.
/// Deadline-less frames stay byte-identical to the old format.
inline constexpr std::uint8_t kDeadlineFlag = 0x80;

/// Fixed prelude of every payload: version, type, and the client-chosen
/// request id the server echoes back (responses to pipelined requests may
/// arrive in any order; the id pairs them up). A request may additionally
/// carry the client's trace id (see `kTraceIdFlag`) and/or a relative
/// deadline in milliseconds (see `kDeadlineFlag`); expired work is dropped
/// server-side with a `kDeadlineExceeded` reply.
struct MessageHeader {
  std::uint8_t version = kProtocolVersion;
  MessageType type = MessageType::kError;
  std::uint64_t request_id = 0;
  bool has_trace_id = false;
  std::uint64_t trace_id = 0;
  bool has_deadline = false;
  std::uint32_t deadline_ms = 0;
};

/// Serialized size of the fixed (trace-less, deadline-less) header prelude.
inline constexpr std::size_t kMessageHeaderBytes = 1 + 1 + 8;

/// Serialized size of `header`: the fixed prelude plus the optional trace
/// id and deadline (keyed on the `has_*` flags, so a flagged header with
/// trace id 0 still counts its 8 bytes).
inline constexpr std::size_t EncodedHeaderBytes(const MessageHeader& header) {
  return kMessageHeaderBytes + (header.has_trace_id ? 8 : 0) +
         (header.has_deadline ? 4 : 0);
}

// ---------------------------------------------------------------------------
// Message bodies.

/// `kScore`: which detector, which subspace.
struct ScoreRequest {
  std::string detector;
  Subspace subspace;
};

/// `kExplain`: explain `point` with `explainer` using `detector` as the
/// outlyingness criterion, returning subspaces of exactly `target_dim`
/// features (truncated to `max_results` when non-zero).
struct ExplainRequest {
  std::string detector;
  std::string explainer;
  std::int32_t point = 0;
  std::int32_t target_dim = 2;
  std::uint32_t max_results = 0;
};

/// `kScoreResult`: the standardized score vector, bitwise identical to the
/// in-process `ScoringService::Score` result.
struct ScoreResult {
  std::vector<double> scores;
};

/// `kExplainResult`: ranked subspaces, best first.
struct ExplainResult {
  RankedSubspaces ranking;
};

/// `kTraceDump`: fetch the server's collected spans; `clear` additionally
/// resets the collector so successive dumps don't repeat spans.
struct TraceDumpRequest {
  bool clear = false;
};

/// `kIngest`: append `num_rows` row-major points to the online dataset
/// named `dataset`. The row width is `values.size() / num_rows` and must
/// match the dataset's feature count (the server rejects otherwise).
struct IngestRequest {
  std::string dataset;
  std::uint32_t num_rows = 0;
  std::vector<double> values;
};

/// `kIngestResult`: where the window landed after the append.
struct IngestResult {
  std::uint32_t accepted = 0;        ///< Rows taken.
  std::uint64_t window_epoch = 0;    ///< Epoch after the append.
  std::uint64_t window_size = 0;     ///< Window rows after the append.
  std::uint64_t total_ingested = 0;  ///< Lifetime rows of the dataset.
  std::uint32_t advances = 0;        ///< Window advances this append caused.
};

/// `kOnlineScore`: standardized scores of the current window of `dataset`
/// in `subspace`, under `detector` (a name registered on the dataset).
struct OnlineScoreRequest {
  std::string dataset;
  std::string detector;
  Subspace subspace;
};

/// `kOnlineScoreResult`: the epoch identifies the exact window contents
/// the scores describe.
struct OnlineScoreResult {
  std::uint64_t epoch = 0;
  std::vector<double> scores;
};

/// `kOnlineExplain`: explain window row `point` (0 = oldest retained) of
/// `dataset` with `explainer`, using online detector `detector`.
struct OnlineExplainRequest {
  std::string dataset;
  std::string detector;
  std::string explainer;
  std::int32_t point = 0;
  std::int32_t target_dim = 2;
  std::uint32_t max_results = 0;
};

/// What a `kProfDump` request asks of the server's `SamplingProfiler`.
enum class ProfAction : std::uint8_t {
  kDump = 0,   ///< Export collapsed stacks (optionally clearing after).
  kStart = 1,  ///< Arm per-thread timers at `sample_hz`.
  kStop = 2,   ///< Disarm timers; samples stay dumpable.
};

/// `kProfDump`: drive the server-side profiler. For `kStart`,
/// `sample_hz == 0` means the default rate; for `kDump`, `clear` resets
/// the sample rings after the export (the `kTraceDump` convention).
struct ProfDumpRequest {
  ProfAction action = ProfAction::kDump;
  std::uint32_t sample_hz = 0;
  bool clear = false;
};

/// `kProfDumpResult`: for `kDump` the collapsed-stack flamegraph text
/// (empty when nothing was sampled); for `kStart`/`kStop` a one-line JSON
/// status `{"running":...,"sample_hz":...,"supported":...}`.
struct ProfDumpResult {
  std::string text;
};

/// `kOnlineExplainResult`: the ranking plus its freshness — the epoch the
/// explanation was computed against and the epoch current when the reply
/// was produced. `computed_epoch < current_epoch` marks a stale serve (the
/// window advanced mid-computation; the answer is still internally
/// consistent for its pinned epoch).
struct OnlineExplainResult {
  std::uint64_t computed_epoch = 0;
  std::uint64_t current_epoch = 0;
  RankedSubspaces ranking;
};

/// `kStatsResult`: one JSON document (server counters + per-service cache
/// stats). `kTraceDumpResult` (Chrome trace-event JSON) and `kError` (the
/// error message) reuse the same single-string shape.
struct TextResult {
  std::string text;
};

// ---------------------------------------------------------------------------
// Encoding. Each function produces a complete payload (header + body),
// ready for `EncodeFrame`.

void EncodeSubspace(WireWriter& writer, const Subspace& subspace);
/// Returns false (leaving `out` unspecified) on a corrupt encoding.
bool DecodeSubspace(WireReader& reader, Subspace* out);

// Requests take an optional trace id; 0 (the id no generator produces)
// means untraced and keeps the frame in the old fixed-header format. They
// likewise take an optional relative deadline in milliseconds; 0 means no
// deadline and also keeps the old format.
std::vector<std::uint8_t> EncodeScoreRequest(std::uint64_t request_id,
                                             const ScoreRequest& request,
                                             std::uint64_t trace_id = 0,
                                             std::uint32_t deadline_ms = 0);
std::vector<std::uint8_t> EncodeExplainRequest(std::uint64_t request_id,
                                               const ExplainRequest& request,
                                               std::uint64_t trace_id = 0,
                                               std::uint32_t deadline_ms = 0);
std::vector<std::uint8_t> EncodeStatsRequest(std::uint64_t request_id,
                                             std::uint64_t trace_id = 0,
                                             std::uint32_t deadline_ms = 0);
std::vector<std::uint8_t> EncodeTraceDumpRequest(
    std::uint64_t request_id, const TraceDumpRequest& request,
    std::uint64_t trace_id = 0, std::uint32_t deadline_ms = 0);
std::vector<std::uint8_t> EncodeIngestRequest(std::uint64_t request_id,
                                              const IngestRequest& request,
                                              std::uint64_t trace_id = 0,
                                              std::uint32_t deadline_ms = 0);
std::vector<std::uint8_t> EncodeOnlineScoreRequest(
    std::uint64_t request_id, const OnlineScoreRequest& request,
    std::uint64_t trace_id = 0, std::uint32_t deadline_ms = 0);
std::vector<std::uint8_t> EncodeOnlineExplainRequest(
    std::uint64_t request_id, const OnlineExplainRequest& request,
    std::uint64_t trace_id = 0, std::uint32_t deadline_ms = 0);
std::vector<std::uint8_t> EncodeProfDumpRequest(std::uint64_t request_id,
                                                const ProfDumpRequest& request,
                                                std::uint64_t trace_id = 0,
                                                std::uint32_t deadline_ms = 0);
std::vector<std::uint8_t> EncodeScoreResult(std::uint64_t request_id,
                                            const ScoreResult& result);
std::vector<std::uint8_t> EncodeExplainResult(std::uint64_t request_id,
                                              const ExplainResult& result);
std::vector<std::uint8_t> EncodeStatsResult(std::uint64_t request_id,
                                            const TextResult& result);
std::vector<std::uint8_t> EncodeTraceDumpResult(std::uint64_t request_id,
                                                const TextResult& result);
std::vector<std::uint8_t> EncodeIngestResult(std::uint64_t request_id,
                                             const IngestResult& result);
std::vector<std::uint8_t> EncodeOnlineScoreResult(
    std::uint64_t request_id, const OnlineScoreResult& result);
std::vector<std::uint8_t> EncodeOnlineExplainResult(
    std::uint64_t request_id, const OnlineExplainResult& result);
std::vector<std::uint8_t> EncodeProfDumpResult(std::uint64_t request_id,
                                               const ProfDumpResult& result);
std::vector<std::uint8_t> EncodeBusy(std::uint64_t request_id);
std::vector<std::uint8_t> EncodeError(std::uint64_t request_id,
                                      const std::string& message);
/// `kDeadlineExceeded`: empty body, like `kBusy`.
std::vector<std::uint8_t> EncodeDeadlineExceeded(std::uint64_t request_id);

// ---------------------------------------------------------------------------
// Decoding. `DecodeHeader` consumes the prelude from `reader`; the
// per-type body decoders consume the rest and return false on corrupt or
// trailing bytes.

bool DecodeHeader(WireReader& reader, MessageHeader* out);
bool DecodeScoreRequest(WireReader& reader, ScoreRequest* out);
bool DecodeTraceDumpRequest(WireReader& reader, TraceDumpRequest* out);
bool DecodeExplainRequest(WireReader& reader, ExplainRequest* out);
bool DecodeIngestRequest(WireReader& reader, IngestRequest* out);
bool DecodeOnlineScoreRequest(WireReader& reader, OnlineScoreRequest* out);
bool DecodeOnlineExplainRequest(WireReader& reader, OnlineExplainRequest* out);
bool DecodeProfDumpRequest(WireReader& reader, ProfDumpRequest* out);
bool DecodeScoreResult(WireReader& reader, ScoreResult* out);
bool DecodeExplainResult(WireReader& reader, ExplainResult* out);
bool DecodeIngestResult(WireReader& reader, IngestResult* out);
bool DecodeOnlineScoreResult(WireReader& reader, OnlineScoreResult* out);
bool DecodeOnlineExplainResult(WireReader& reader, OnlineExplainResult* out);
bool DecodeProfDumpResult(WireReader& reader, ProfDumpResult* out);
/// Body of `kStatsResult` and `kError` (a single string).
bool DecodeTextResult(WireReader& reader, TextResult* out);

}  // namespace subex

#endif  // SUBEX_NET_PROTOCOL_H_
