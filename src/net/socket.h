#ifndef SUBEX_NET_SOCKET_H_
#define SUBEX_NET_SOCKET_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace subex {

/// RAII owner of a POSIX socket (or pipe) file descriptor. Move-only;
/// closes on destruction.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }

  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  int fd() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  void Close();

 private:
  int fd_ = -1;
};

/// Creates a non-blocking listening TCP socket bound to `host:port`
/// (port 0 = kernel-chosen; the bound port is written to `*bound_port`).
/// Returns an invalid socket and fills `*error` on failure.
Socket ListenTcp(const std::string& host, std::uint16_t port, int backlog,
                 std::uint16_t* bound_port, std::string* error);

/// Blocking TCP connect with a deadline; the returned socket is in
/// blocking mode. Returns an invalid socket and fills `*error` on failure
/// or timeout.
Socket ConnectTcp(const std::string& host, std::uint16_t port, int timeout_ms,
                  std::string* error);

/// Switches a descriptor between blocking and non-blocking mode.
bool SetNonBlocking(int fd, bool non_blocking);

/// Creates a non-blocking pipe (used as the event loop's wakeup channel).
bool MakeWakePipe(Socket* read_end, Socket* write_end, std::string* error);

/// Sends all `size` bytes within `timeout_ms` (poll + send loop; SIGPIPE
/// suppressed). Returns false on error or timeout.
bool SendAll(int fd, const std::uint8_t* data, std::size_t size,
             int timeout_ms, std::string* error);

/// Receives up to `capacity` bytes within `timeout_ms`. On success returns
/// true with `*received` set — 0 meaning orderly EOF. Returns false on
/// error or timeout.
bool RecvSome(int fd, std::uint8_t* buffer, std::size_t capacity,
              int timeout_ms, std::size_t* received, std::string* error);

}  // namespace subex

#endif  // SUBEX_NET_SOCKET_H_
