#include "net/wire.h"

#include <bit>
#include <cstring>

namespace subex {

void WireWriter::PutU16(std::uint16_t v) {
  bytes_.push_back(static_cast<std::uint8_t>(v));
  bytes_.push_back(static_cast<std::uint8_t>(v >> 8));
}

void WireWriter::PutU32(std::uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8) {
    bytes_.push_back(static_cast<std::uint8_t>(v >> shift));
  }
}

void WireWriter::PutU64(std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    bytes_.push_back(static_cast<std::uint8_t>(v >> shift));
  }
}

void WireWriter::PutDouble(double v) {
  PutU64(std::bit_cast<std::uint64_t>(v));
}

void WireWriter::PutString(const std::string& s) {
  PutU32(static_cast<std::uint32_t>(s.size()));
  bytes_.insert(bytes_.end(), s.begin(), s.end());
}

void WireWriter::PutDoubles(const std::vector<double>& v) {
  PutU32(static_cast<std::uint32_t>(v.size()));
  for (const double d : v) PutDouble(d);
}

bool WireReader::Take(std::size_t n, const std::uint8_t** out) {
  if (!ok_ || size_ - pos_ < n) {
    ok_ = false;
    return false;
  }
  *out = data_ + pos_;
  pos_ += n;
  return true;
}

std::uint8_t WireReader::GetU8() {
  const std::uint8_t* p = nullptr;
  return Take(1, &p) ? *p : 0;
}

std::uint16_t WireReader::GetU16() {
  const std::uint8_t* p = nullptr;
  if (!Take(2, &p)) return 0;
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

std::uint32_t WireReader::GetU32() {
  const std::uint8_t* p = nullptr;
  if (!Take(4, &p)) return 0;
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

std::uint64_t WireReader::GetU64() {
  const std::uint8_t* p = nullptr;
  if (!Take(8, &p)) return 0;
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

double WireReader::GetDouble() {
  return std::bit_cast<double>(GetU64());
}

std::string WireReader::GetString() {
  const std::uint32_t n = GetU32();
  if (n > remaining()) {
    ok_ = false;
    return {};
  }
  const std::uint8_t* p = nullptr;
  if (!Take(n, &p)) return {};
  return std::string(reinterpret_cast<const char*>(p), n);
}

std::vector<double> WireReader::GetDoubles() {
  const std::uint32_t n = GetU32();
  if (static_cast<std::size_t>(n) * sizeof(double) > remaining()) {
    ok_ = false;
    return {};
  }
  std::vector<double> v;
  v.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) v.push_back(GetDouble());
  return v;
}

}  // namespace subex
