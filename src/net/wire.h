#ifndef SUBEX_NET_WIRE_H_
#define SUBEX_NET_WIRE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace subex {

/// Append-only little-endian byte serializer, the encoding half of the
/// wire protocol. Doubles are serialized as their IEEE-754 bit pattern, so
/// a score vector survives the network bitwise-intact — the property the
/// "served results equal in-process results" guarantee rests on.
class WireWriter {
 public:
  void PutU8(std::uint8_t v) { bytes_.push_back(v); }
  void PutU16(std::uint16_t v);
  void PutU32(std::uint32_t v);
  void PutU64(std::uint64_t v);
  void PutI32(std::int32_t v) { PutU32(static_cast<std::uint32_t>(v)); }
  void PutDouble(double v);
  /// u32 byte count + raw bytes.
  void PutString(const std::string& s);
  /// u32 element count + doubles.
  void PutDoubles(const std::vector<double>& v);

  const std::vector<std::uint8_t>& bytes() const { return bytes_; }
  std::vector<std::uint8_t> Take() { return std::move(bytes_); }

 private:
  std::vector<std::uint8_t> bytes_;
};

/// Bounds-checked little-endian reader over a received payload. Any read
/// past the end (or an implausible embedded length) trips a sticky error
/// flag and yields zero values; callers check `ok()` once after decoding a
/// whole message instead of after every field.
class WireReader {
 public:
  WireReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}
  explicit WireReader(const std::vector<std::uint8_t>& bytes)
      : WireReader(bytes.data(), bytes.size()) {}

  std::uint8_t GetU8();
  std::uint16_t GetU16();
  std::uint32_t GetU32();
  std::uint64_t GetU64();
  std::int32_t GetI32() { return static_cast<std::int32_t>(GetU32()); }
  double GetDouble();
  std::string GetString();
  std::vector<double> GetDoubles();

  /// False once any read ran past the available bytes.
  bool ok() const { return ok_; }
  /// Bytes not yet consumed.
  std::size_t remaining() const { return size_ - pos_; }
  /// True when the payload was consumed exactly (and no read failed).
  bool AtEnd() const { return ok_ && pos_ == size_; }

 private:
  bool Take(std::size_t n, const std::uint8_t** out);

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace subex

#endif  // SUBEX_NET_WIRE_H_
