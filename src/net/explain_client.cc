#include "net/explain_client.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/json.h"

namespace subex {

void ClientStatsSnapshot::Merge(const ClientStatsSnapshot& other) {
  requests += other.requests;
  busy_retries += other.busy_retries;
  reconnects += other.reconnects;
  transport_errors += other.transport_errors;
  backoff_ns += other.backoff_ns;
}

std::string ClientStatsSnapshot::ToJson() const {
  return JsonObject()
      .Add("requests", requests)
      .Add("busy_retries", busy_retries)
      .Add("reconnects", reconnects)
      .Add("transport_errors", transport_errors)
      .Add("backoff_seconds", BackoffSeconds())
      .Build();
}

ExplainClient::ExplainClient(const ExplainClientOptions& options)
    : options_(options), decoder_(options.max_frame_bytes) {}

bool ExplainClient::Connect(const std::string& host, std::uint16_t port,
                            std::string* error) {
  Disconnect();
  socket_ = ConnectTcp(host, port, options_.connect_timeout_ms, error);
  if (socket_.valid()) ++connects_;
  return socket_.valid();
}

ClientStatsSnapshot ExplainClient::stats() const {
  ClientStatsSnapshot snap;
  snap.requests = requests_;
  snap.busy_retries = busy_replies_seen_;
  snap.reconnects = connects_ > 0 ? connects_ - 1 : 0;
  snap.transport_errors = transport_errors_;
  snap.backoff_ns = backoff_ns_;
  return snap;
}

void ExplainClient::Disconnect() {
  socket_.Close();
  decoder_ = FrameDecoder(options_.max_frame_bytes);
}

bool ExplainClient::SendAndReceive(const std::vector<std::uint8_t>& request,
                                   std::uint64_t request_id,
                                   MessageHeader* header,
                                   std::vector<std::uint8_t>* body,
                                   std::string* error) {
  if (!socket_.valid()) {
    *error = "not connected";
    return false;
  }
  const std::vector<std::uint8_t> frame = EncodeFrame(request);
  if (!SendAll(socket_.fd(), frame.data(), frame.size(),
               options_.request_timeout_ms, error)) {
    Disconnect();
    return false;
  }
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(options_.request_timeout_ms);
  std::uint8_t buf[16384];
  std::vector<std::uint8_t> payload;
  while (true) {
    while (decoder_.Next(&payload)) {
      WireReader reader(payload);
      if (!DecodeHeader(reader, header) ||
          header->version != kProtocolVersion) {
        *error = "malformed response header";
        Disconnect();
        return false;
      }
      // A response to a stale request id (e.g. an aborted earlier round
      // trip) is discarded; the protocol echoes ids for exactly this.
      if (header->request_id != request_id) continue;
      body->assign(payload.begin() +
                       static_cast<std::ptrdiff_t>(kMessageHeaderBytes),
                   payload.end());
      return true;
    }
    if (decoder_.error()) {
      *error = "response frame exceeds maximum size";
      Disconnect();
      return false;
    }
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - std::chrono::steady_clock::now());
    if (left.count() <= 0) {
      *error = "request timed out";
      Disconnect();
      return false;
    }
    std::size_t received = 0;
    if (!RecvSome(socket_.fd(), buf, sizeof(buf),
                  static_cast<int>(left.count()), &received, error)) {
      Disconnect();
      return false;
    }
    if (received == 0) {
      *error = "server closed the connection";
      Disconnect();
      return false;
    }
    decoder_.Feed(buf, received);
  }
}

ClientStatus ExplainClient::RoundTrip(const std::vector<std::uint8_t>& request,
                                      std::uint64_t request_id,
                                      MessageType* type,
                                      std::vector<std::uint8_t>* body,
                                      std::string* error) {
  ++requests_;
  int backoff_ms = options_.busy_backoff_initial_ms;
  for (int attempt = 0; attempt <= options_.max_busy_retries; ++attempt) {
    if (attempt > 0) {
      const auto sleep_start = std::chrono::steady_clock::now();
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
      backoff_ns_ += static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - sleep_start)
              .count());
      backoff_ms = std::min(backoff_ms * 2, options_.busy_backoff_max_ms);
    }
    MessageHeader header;
    if (!SendAndReceive(request, request_id, &header, body, error)) {
      ++transport_errors_;
      return ClientStatus::kTransportError;
    }
    if (header.type == MessageType::kBusy) {
      ++busy_replies_seen_;
      continue;  // Backpressure: back off and retry.
    }
    *type = header.type;
    return ClientStatus::kOk;  // Some definitive response arrived.
  }
  *error = "server busy after " + std::to_string(options_.max_busy_retries) +
           " retries";
  return ClientStatus::kBusy;
}

ExplainClient::ScoreReply ExplainClient::Score(const std::string& detector,
                                               const Subspace& subspace) {
  ScoreReply reply;
  ScoreRequest request;
  request.detector = detector;
  request.subspace = subspace;
  const std::uint64_t id = next_request_id_++;
  MessageType type = MessageType::kError;
  std::vector<std::uint8_t> body;
  reply.status =
      RoundTrip(EncodeScoreRequest(id, request), id, &type, &body, &reply.error);
  if (reply.status != ClientStatus::kOk) return reply;
  WireReader reader(body);
  if (type == MessageType::kError) {
    TextResult text;
    reply.status = ClientStatus::kServerError;
    reply.error = DecodeTextResult(reader, &text) ? text.text
                                                  : "undecodable kError body";
    return reply;
  }
  ScoreResult result;
  if (type != MessageType::kScoreResult ||
      !DecodeScoreResult(reader, &result)) {
    reply.status = ClientStatus::kTransportError;
    reply.error = "unexpected response to kScore";
    return reply;
  }
  reply.scores = std::move(result.scores);
  return reply;
}

ExplainClient::ExplainReply ExplainClient::Explain(const std::string& detector,
                                                   const std::string& explainer,
                                                   int point, int target_dim,
                                                   std::uint32_t max_results) {
  ExplainReply reply;
  ExplainRequest request;
  request.detector = detector;
  request.explainer = explainer;
  request.point = point;
  request.target_dim = target_dim;
  request.max_results = max_results;
  const std::uint64_t id = next_request_id_++;
  MessageType type = MessageType::kError;
  std::vector<std::uint8_t> body;
  reply.status = RoundTrip(EncodeExplainRequest(id, request), id, &type, &body,
                           &reply.error);
  if (reply.status != ClientStatus::kOk) return reply;
  WireReader reader(body);
  if (type == MessageType::kError) {
    TextResult text;
    reply.status = ClientStatus::kServerError;
    reply.error = DecodeTextResult(reader, &text) ? text.text
                                                  : "undecodable kError body";
    return reply;
  }
  ExplainResult result;
  if (type != MessageType::kExplainResult ||
      !DecodeExplainResult(reader, &result)) {
    reply.status = ClientStatus::kTransportError;
    reply.error = "unexpected response to kExplain";
    return reply;
  }
  reply.ranking = std::move(result.ranking);
  return reply;
}

ExplainClient::StatsReply ExplainClient::Stats() {
  StatsReply reply;
  const std::uint64_t id = next_request_id_++;
  MessageType type = MessageType::kError;
  std::vector<std::uint8_t> body;
  reply.status =
      RoundTrip(EncodeStatsRequest(id), id, &type, &body, &reply.error);
  if (reply.status != ClientStatus::kOk) return reply;
  WireReader reader(body);
  TextResult text;
  if (!DecodeTextResult(reader, &text)) {
    reply.status = ClientStatus::kTransportError;
    reply.error = "undecodable stats body";
    return reply;
  }
  if (type == MessageType::kError) {
    reply.status = ClientStatus::kServerError;
    reply.error = text.text;
    return reply;
  }
  reply.json = std::move(text.text);
  return reply;
}

}  // namespace subex
