#include "net/explain_client.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/json.h"
#include "obs/span_collector.h"

namespace subex {

void ClientStatsSnapshot::Merge(const ClientStatsSnapshot& other) {
  requests += other.requests;
  busy_retries += other.busy_retries;
  reconnects += other.reconnects;
  transport_errors += other.transport_errors;
  backoff_ns += other.backoff_ns;
  retries_denied += other.retries_denied;
  circuit_opens += other.circuit_opens;
  short_circuits += other.short_circuits;
  deadline_exceeded += other.deadline_exceeded;
}

std::string ClientStatsSnapshot::ToJson() const {
  return JsonObject()
      .Add("requests", requests)
      .Add("busy_retries", busy_retries)
      .Add("reconnects", reconnects)
      .Add("transport_errors", transport_errors)
      .Add("backoff_seconds", BackoffSeconds())
      .Add("retries_denied", retries_denied)
      .Add("circuit_opens", circuit_opens)
      .Add("short_circuits", short_circuits)
      .Add("deadline_exceeded", deadline_exceeded)
      .Build();
}

ExplainClient::ExplainClient(const ExplainClientOptions& options)
    : options_(options),
      decoder_(options.max_frame_bytes),
      retry_tokens_(options.retry_budget_initial) {}

bool ExplainClient::Connect(const std::string& host, std::uint16_t port,
                            std::string* error) {
  Disconnect();
  socket_ = ConnectTcp(host, port, options_.connect_timeout_ms, error);
  if (socket_.valid()) ++connects_;
  return socket_.valid();
}

ClientStatsSnapshot ExplainClient::stats() const {
  ClientStatsSnapshot snap;
  snap.requests = requests_;
  snap.busy_retries = busy_replies_seen_;
  snap.reconnects = connects_ > 0 ? connects_ - 1 : 0;
  snap.transport_errors = transport_errors_;
  snap.backoff_ns = backoff_ns_;
  snap.retries_denied = retries_denied_;
  snap.circuit_opens = circuit_opens_;
  snap.short_circuits = short_circuits_;
  snap.deadline_exceeded = deadline_exceeded_;
  return snap;
}

void ExplainClient::NoteTransportSuccess() {
  consecutive_failures_ = 0;
  breaker_open_ = false;
  retry_tokens_ = std::min(options_.retry_budget_initial,
                           retry_tokens_ + options_.retry_budget_per_success);
}

void ExplainClient::NoteTransportFailure() {
  ++consecutive_failures_;
  if (options_.breaker_failure_threshold > 0 &&
      consecutive_failures_ >= options_.breaker_failure_threshold) {
    // Closed -> open counts once; a failed half-open probe just restarts
    // the cooldown window.
    if (!breaker_open_) ++circuit_opens_;
    breaker_open_ = true;
    breaker_opened_at_ = std::chrono::steady_clock::now();
  }
}

void ExplainClient::Disconnect() {
  socket_.Close();
  decoder_ = FrameDecoder(options_.max_frame_bytes);
}

bool ExplainClient::SendAndReceive(const std::vector<std::uint8_t>& request,
                                   std::uint64_t request_id,
                                   MessageHeader* header,
                                   std::vector<std::uint8_t>* body,
                                   std::string* error) {
  if (!socket_.valid()) {
    *error = "not connected";
    return false;
  }
  const std::vector<std::uint8_t> frame = EncodeFrame(request);
  if (!SendAll(socket_.fd(), frame.data(), frame.size(),
               options_.request_timeout_ms, error)) {
    Disconnect();
    return false;
  }
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(options_.request_timeout_ms);
  std::uint8_t buf[16384];
  std::vector<std::uint8_t> payload;
  while (true) {
    while (decoder_.Next(&payload)) {
      WireReader reader(payload);
      if (!DecodeHeader(reader, header) ||
          header->version != kProtocolVersion) {
        *error = "malformed response header";
        Disconnect();
        return false;
      }
      // A response to a stale request id (e.g. an aborted earlier round
      // trip) is discarded; the protocol echoes ids for exactly this.
      if (header->request_id != request_id) continue;
      body->assign(payload.begin() +
                       static_cast<std::ptrdiff_t>(EncodedHeaderBytes(*header)),
                   payload.end());
      return true;
    }
    if (decoder_.error()) {
      *error = "response frame exceeds maximum size";
      Disconnect();
      return false;
    }
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - std::chrono::steady_clock::now());
    if (left.count() <= 0) {
      *error = "request timed out";
      Disconnect();
      return false;
    }
    std::size_t received = 0;
    if (!RecvSome(socket_.fd(), buf, sizeof(buf),
                  static_cast<int>(left.count()), &received, error)) {
      Disconnect();
      return false;
    }
    if (received == 0) {
      *error = "server closed the connection";
      Disconnect();
      return false;
    }
    decoder_.Feed(buf, received);
  }
}

std::uint64_t ExplainClient::BeginTrace() {
#ifndef SUBEX_OBS_DISABLED
  last_trace_id_ = options_.enable_tracing ? NextTraceId() : 0;
#else
  last_trace_id_ = 0;
#endif
  return last_trace_id_;
}

void ExplainClient::RecordClientSpan(
    const char* name, std::uint64_t trace_id,
    std::chrono::steady_clock::time_point start) {
#ifndef SUBEX_OBS_DISABLED
  if (trace_id == 0 || !SpanCollector::Global().enabled()) return;
  const auto duration = std::chrono::steady_clock::now() - start;
  SpanRecord record;
  record.name = name;
  record.trace_id = trace_id;
  record.span_id = NextSpanId();
  record.parent_id = 0;
  record.start_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          start.time_since_epoch())
          .count());
  record.duration_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(duration).count());
  SpanCollector::Global().Record(record);
#else
  (void)name;
  (void)trace_id;
  (void)start;
#endif
}

ClientStatus ExplainClient::RoundTrip(const std::vector<std::uint8_t>& request,
                                      std::uint64_t request_id,
                                      MessageType* type,
                                      std::vector<std::uint8_t>* body,
                                      std::string* error) {
  ++requests_;
  // While the breaker is open, fail fast without touching the socket; the
  // first call past the cooldown proceeds as the half-open probe.
  if (breaker_open_ &&
      std::chrono::steady_clock::now() - breaker_opened_at_ <
          std::chrono::milliseconds(options_.breaker_cooldown_ms)) {
    ++short_circuits_;
    *error = "circuit breaker open";
    return ClientStatus::kCircuitOpen;
  }
  int backoff_ms = options_.busy_backoff_initial_ms;
  for (int attempt = 0; attempt <= options_.max_busy_retries; ++attempt) {
    if (attempt > 0) {
      // A retry is only taken while the budget holds tokens — under
      // sustained overload the bucket drains and kBusy surfaces to the
      // caller instead of amplifying the congestion.
      if (retry_tokens_ < 1.0) {
        ++retries_denied_;
        *error = "server busy and retry budget exhausted";
        return ClientStatus::kBusy;
      }
      retry_tokens_ -= 1.0;
      const auto sleep_start = std::chrono::steady_clock::now();
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
      backoff_ns_ += static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - sleep_start)
              .count());
      backoff_ms = std::min(backoff_ms * 2, options_.busy_backoff_max_ms);
    }
    MessageHeader header;
    if (!SendAndReceive(request, request_id, &header, body, error)) {
      ++transport_errors_;
      NoteTransportFailure();
      return ClientStatus::kTransportError;
    }
    if (header.type == MessageType::kBusy) {
      ++busy_replies_seen_;
      continue;  // Backpressure: back off and retry.
    }
    if (header.type == MessageType::kDeadlineExceeded) {
      // The transport is healthy — the server just refused stale work.
      ++deadline_exceeded_;
      NoteTransportSuccess();
      *type = header.type;
      *error = "deadline exceeded";
      return ClientStatus::kDeadlineExceeded;
    }
    NoteTransportSuccess();
    *type = header.type;
    return ClientStatus::kOk;  // Some definitive response arrived.
  }
  *error = "server busy after " + std::to_string(options_.max_busy_retries) +
           " retries";
  return ClientStatus::kBusy;
}

ExplainClient::ScoreReply ExplainClient::Score(const std::string& detector,
                                               const Subspace& subspace) {
  ScoreReply reply;
  ScoreRequest request;
  request.detector = detector;
  request.subspace = subspace;
  const std::uint64_t id = next_request_id_++;
  const std::uint64_t trace_id = BeginTrace();
  MessageType type = MessageType::kError;
  std::vector<std::uint8_t> body;
  const auto start = std::chrono::steady_clock::now();
  reply.status = RoundTrip(EncodeScoreRequest(id, request, trace_id,
                                              options_.deadline_ms),
                           id, &type,
                           &body, &reply.error);
  RecordClientSpan("client.score", trace_id, start);
  if (reply.status != ClientStatus::kOk) return reply;
  WireReader reader(body);
  if (type == MessageType::kError) {
    TextResult text;
    reply.status = ClientStatus::kServerError;
    reply.error = DecodeTextResult(reader, &text) ? text.text
                                                  : "undecodable kError body";
    return reply;
  }
  ScoreResult result;
  if (type != MessageType::kScoreResult ||
      !DecodeScoreResult(reader, &result)) {
    reply.status = ClientStatus::kTransportError;
    reply.error = "unexpected response to kScore";
    return reply;
  }
  reply.scores = std::move(result.scores);
  return reply;
}

ExplainClient::ExplainReply ExplainClient::Explain(const std::string& detector,
                                                   const std::string& explainer,
                                                   int point, int target_dim,
                                                   std::uint32_t max_results) {
  ExplainReply reply;
  ExplainRequest request;
  request.detector = detector;
  request.explainer = explainer;
  request.point = point;
  request.target_dim = target_dim;
  request.max_results = max_results;
  const std::uint64_t id = next_request_id_++;
  const std::uint64_t trace_id = BeginTrace();
  MessageType type = MessageType::kError;
  std::vector<std::uint8_t> body;
  const auto start = std::chrono::steady_clock::now();
  reply.status = RoundTrip(EncodeExplainRequest(id, request, trace_id,
                                                options_.deadline_ms),
                           id,
                           &type, &body, &reply.error);
  RecordClientSpan("client.explain", trace_id, start);
  if (reply.status != ClientStatus::kOk) return reply;
  WireReader reader(body);
  if (type == MessageType::kError) {
    TextResult text;
    reply.status = ClientStatus::kServerError;
    reply.error = DecodeTextResult(reader, &text) ? text.text
                                                  : "undecodable kError body";
    return reply;
  }
  ExplainResult result;
  if (type != MessageType::kExplainResult ||
      !DecodeExplainResult(reader, &result)) {
    reply.status = ClientStatus::kTransportError;
    reply.error = "unexpected response to kExplain";
    return reply;
  }
  reply.ranking = std::move(result.ranking);
  return reply;
}

ExplainClient::StatsReply ExplainClient::Stats() {
  StatsReply reply;
  const std::uint64_t id = next_request_id_++;
  const std::uint64_t trace_id = BeginTrace();
  MessageType type = MessageType::kError;
  std::vector<std::uint8_t> body;
  const auto start = std::chrono::steady_clock::now();
  reply.status = RoundTrip(EncodeStatsRequest(id, trace_id, options_.deadline_ms),
                           id, &type, &body,
                           &reply.error);
  RecordClientSpan("client.stats", trace_id, start);
  if (reply.status != ClientStatus::kOk) return reply;
  WireReader reader(body);
  TextResult text;
  if (!DecodeTextResult(reader, &text)) {
    reply.status = ClientStatus::kTransportError;
    reply.error = "undecodable stats body";
    return reply;
  }
  if (type == MessageType::kError) {
    reply.status = ClientStatus::kServerError;
    reply.error = text.text;
    return reply;
  }
  reply.json = std::move(text.text);
  return reply;
}

ExplainClient::IngestReply ExplainClient::Ingest(const std::string& dataset,
                                                 std::uint32_t num_rows,
                                                 std::vector<double> values) {
  IngestReply reply;
  IngestRequest request;
  request.dataset = dataset;
  request.num_rows = num_rows;
  request.values = std::move(values);
  const std::uint64_t id = next_request_id_++;
  const std::uint64_t trace_id = BeginTrace();
  MessageType type = MessageType::kError;
  std::vector<std::uint8_t> body;
  const auto start = std::chrono::steady_clock::now();
  reply.status = RoundTrip(EncodeIngestRequest(id, request, trace_id,
                                               options_.deadline_ms),
                           id,
                           &type, &body, &reply.error);
  RecordClientSpan("client.ingest", trace_id, start);
  if (reply.status != ClientStatus::kOk) return reply;
  WireReader reader(body);
  if (type == MessageType::kError) {
    TextResult text;
    reply.status = ClientStatus::kServerError;
    reply.error = DecodeTextResult(reader, &text) ? text.text
                                                  : "undecodable kError body";
    return reply;
  }
  if (type != MessageType::kIngestResult ||
      !DecodeIngestResult(reader, &reply.result)) {
    reply.status = ClientStatus::kTransportError;
    reply.error = "unexpected response to kIngest";
  }
  return reply;
}

ExplainClient::OnlineScoreReply ExplainClient::OnlineScore(
    const std::string& dataset, const std::string& detector,
    const Subspace& subspace) {
  OnlineScoreReply reply;
  OnlineScoreRequest request;
  request.dataset = dataset;
  request.detector = detector;
  request.subspace = subspace;
  const std::uint64_t id = next_request_id_++;
  const std::uint64_t trace_id = BeginTrace();
  MessageType type = MessageType::kError;
  std::vector<std::uint8_t> body;
  const auto start = std::chrono::steady_clock::now();
  reply.status = RoundTrip(EncodeOnlineScoreRequest(id, request, trace_id,
                                                    options_.deadline_ms),
                           id,
                           &type, &body, &reply.error);
  RecordClientSpan("client.online_score", trace_id, start);
  if (reply.status != ClientStatus::kOk) return reply;
  WireReader reader(body);
  if (type == MessageType::kError) {
    TextResult text;
    reply.status = ClientStatus::kServerError;
    reply.error = DecodeTextResult(reader, &text) ? text.text
                                                  : "undecodable kError body";
    return reply;
  }
  OnlineScoreResult result;
  if (type != MessageType::kOnlineScoreResult ||
      !DecodeOnlineScoreResult(reader, &result)) {
    reply.status = ClientStatus::kTransportError;
    reply.error = "unexpected response to kOnlineScore";
    return reply;
  }
  reply.epoch = result.epoch;
  reply.scores = std::move(result.scores);
  return reply;
}

ExplainClient::OnlineExplainReply ExplainClient::OnlineExplain(
    const std::string& dataset, const std::string& detector,
    const std::string& explainer, int point, int target_dim,
    std::uint32_t max_results) {
  OnlineExplainReply reply;
  OnlineExplainRequest request;
  request.dataset = dataset;
  request.detector = detector;
  request.explainer = explainer;
  request.point = point;
  request.target_dim = target_dim;
  request.max_results = max_results;
  const std::uint64_t id = next_request_id_++;
  const std::uint64_t trace_id = BeginTrace();
  MessageType type = MessageType::kError;
  std::vector<std::uint8_t> body;
  const auto start = std::chrono::steady_clock::now();
  reply.status = RoundTrip(EncodeOnlineExplainRequest(id, request, trace_id,
                                                      options_.deadline_ms),
                           id, &type, &body, &reply.error);
  RecordClientSpan("client.online_explain", trace_id, start);
  if (reply.status != ClientStatus::kOk) return reply;
  WireReader reader(body);
  if (type == MessageType::kError) {
    TextResult text;
    reply.status = ClientStatus::kServerError;
    reply.error = DecodeTextResult(reader, &text) ? text.text
                                                  : "undecodable kError body";
    return reply;
  }
  OnlineExplainResult result;
  if (type != MessageType::kOnlineExplainResult ||
      !DecodeOnlineExplainResult(reader, &result)) {
    reply.status = ClientStatus::kTransportError;
    reply.error = "unexpected response to kOnlineExplain";
    return reply;
  }
  reply.computed_epoch = result.computed_epoch;
  reply.current_epoch = result.current_epoch;
  reply.ranking = std::move(result.ranking);
  return reply;
}

ExplainClient::TraceDumpReply ExplainClient::TraceDump(bool clear) {
  TraceDumpReply reply;
  TraceDumpRequest request;
  request.clear = clear;
  const std::uint64_t id = next_request_id_++;
  MessageType type = MessageType::kError;
  std::vector<std::uint8_t> body;
  // Deliberately untraced: the dump itself shouldn't pollute the dump.
  reply.status = RoundTrip(EncodeTraceDumpRequest(id, request), id, &type,
                           &body, &reply.error);
  if (reply.status != ClientStatus::kOk) return reply;
  WireReader reader(body);
  TextResult text;
  if (!DecodeTextResult(reader, &text)) {
    reply.status = ClientStatus::kTransportError;
    reply.error = "undecodable trace dump body";
    return reply;
  }
  if (type == MessageType::kError) {
    reply.status = ClientStatus::kServerError;
    reply.error = text.text;
    return reply;
  }
  reply.json = std::move(text.text);
  return reply;
}

ExplainClient::ProfDumpReply ExplainClient::ProfRoundTrip(
    const ProfDumpRequest& request) {
  ProfDumpReply reply;
  const std::uint64_t id = next_request_id_++;
  MessageType type = MessageType::kError;
  std::vector<std::uint8_t> body;
  // Untraced, like TraceDump: control traffic stays out of the profile.
  reply.status = RoundTrip(EncodeProfDumpRequest(id, request), id, &type,
                           &body, &reply.error);
  if (reply.status != ClientStatus::kOk) return reply;
  WireReader reader(body);
  ProfDumpResult result;
  if (!DecodeProfDumpResult(reader, &result)) {
    reply.status = ClientStatus::kTransportError;
    reply.error = "undecodable prof dump body";
    return reply;
  }
  if (type == MessageType::kError) {
    reply.status = ClientStatus::kServerError;
    reply.error = result.text;
    return reply;
  }
  reply.text = std::move(result.text);
  return reply;
}

ExplainClient::ProfDumpReply ExplainClient::ProfStart(std::uint32_t sample_hz) {
  ProfDumpRequest request;
  request.action = ProfAction::kStart;
  request.sample_hz = sample_hz;
  return ProfRoundTrip(request);
}

ExplainClient::ProfDumpReply ExplainClient::ProfStop() {
  ProfDumpRequest request;
  request.action = ProfAction::kStop;
  return ProfRoundTrip(request);
}

ExplainClient::ProfDumpReply ExplainClient::ProfDump(bool clear) {
  ProfDumpRequest request;
  request.action = ProfAction::kDump;
  request.clear = clear;
  return ProfRoundTrip(request);
}

}  // namespace subex
