#ifndef SUBEX_NET_EXPLAIN_CLIENT_H_
#define SUBEX_NET_EXPLAIN_CLIENT_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "explain/explanation.h"
#include "net/frame.h"
#include "net/protocol.h"
#include "net/socket.h"
#include "subspace/subspace.h"

namespace subex {

/// How a client call ended.
enum class ClientStatus {
  kOk,              ///< Result decoded successfully.
  kBusy,            ///< Server shed the request even after every retry.
  kServerError,     ///< Server replied `kError`; see `error`.
  kTransportError,  ///< Socket/framing failure; the connection is dead.
  kDeadlineExceeded,  ///< Server dropped the request past its deadline.
  kCircuitOpen,     ///< Failed fast: the circuit breaker is open.
};

/// Point-in-time view of one client's transport counters — makes the
/// otherwise-invisible `kBusy` absorption loop observable (how many
/// backpressure bounces, how long the backoff sleeps added up to, whether
/// the connection had to be re-established).
struct ClientStatsSnapshot {
  std::uint64_t requests = 0;       ///< Round trips attempted.
  std::uint64_t busy_retries = 0;   ///< `kBusy` replies absorbed by retry.
  std::uint64_t reconnects = 0;     ///< Successful `Connect`s after the first.
  std::uint64_t transport_errors = 0;  ///< Socket/framing failures.
  std::uint64_t backoff_ns = 0;     ///< Cumulative busy-backoff sleep time.
  /// Busy retries NOT taken because the retry budget was exhausted (the
  /// call surfaced `kBusy` instead of hammering the server).
  std::uint64_t retries_denied = 0;
  /// Closed -> open transitions of the circuit breaker.
  std::uint64_t circuit_opens = 0;
  /// Round trips failed fast while the breaker was open.
  std::uint64_t short_circuits = 0;
  /// `kDeadlineExceeded` replies received.
  std::uint64_t deadline_exceeded = 0;

  double BackoffSeconds() const {
    return static_cast<double>(backoff_ns) * 1e-9;
  }
  /// Element-wise accumulation (e.g. across one client per load thread).
  void Merge(const ClientStatsSnapshot& other);
  /// `{"requests":N,...,"backoff_seconds":...}` for bench reports.
  std::string ToJson() const;
};

/// Knobs of an `ExplainClient`.
struct ExplainClientOptions {
  int connect_timeout_ms = 5000;
  /// Deadline of one request/response round trip (excluding busy backoff).
  int request_timeout_ms = 30000;
  /// How many times a `kBusy` reply is retried before giving up.
  int max_busy_retries = 8;
  /// Backoff before the first retry; doubles per retry up to the cap.
  int busy_backoff_initial_ms = 1;
  int busy_backoff_max_ms = 200;
  std::size_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Relative deadline stamped on every request (milliseconds of budget;
  /// the server drops work still queued or computing past it and replies
  /// `kDeadlineExceeded`). 0 disables — frames keep the old format.
  std::uint32_t deadline_ms = 0;
  /// Retry budget (token bucket): the bucket starts at
  /// `retry_budget_initial` tokens, each busy retry spends one, and every
  /// successful round trip refills `retry_budget_per_success` (capped at
  /// the initial depth). An empty bucket turns `kBusy` around immediately
  /// instead of retrying — bounding aggregate retry volume under overload,
  /// where the old unbounded busy-retry loop amplified congestion.
  double retry_budget_initial = 32.0;
  double retry_budget_per_success = 0.5;
  /// Circuit breaker: after this many consecutive transport failures the
  /// breaker opens and calls fail fast (`kCircuitOpen`) for
  /// `breaker_cooldown_ms`; the first call after the cooldown is the
  /// half-open probe — success closes the breaker, failure re-opens it.
  /// 0 disables the breaker.
  int breaker_failure_threshold = 5;
  int breaker_cooldown_ms = 1000;
  /// Stamp every request with a fresh trace id (propagated in the wire
  /// header and continued server-side) and record a "client.request" span
  /// to this process's `SpanCollector` when it is enabled. Off the wire
  /// this costs nothing when the collector is disabled; under
  /// SUBEX_OBS_DISABLED ids are 0 and frames stay in the old format.
  bool enable_tracing = true;
};

/// Blocking client of an `ExplainServer`: connect once, then issue
/// synchronous `Score`/`Explain`/`Stats` round trips. A `kBusy` reply (the
/// server's backpressure signal) is retried transparently with capped
/// exponential backoff; every other failure is surfaced in the reply's
/// status. Not thread-safe — use one client per thread (the load
/// generator's model) or add external locking.
class ExplainClient {
 public:
  explicit ExplainClient(const ExplainClientOptions& options = {});

  /// Connects to `host:port`. False + `*error` on refusal/timeout.
  bool Connect(const std::string& host, std::uint16_t port,
               std::string* error = nullptr);
  void Disconnect();
  bool connected() const { return socket_.valid(); }

  struct ScoreReply {
    ClientStatus status = ClientStatus::kTransportError;
    std::string error;
    std::vector<double> scores;
    bool ok() const { return status == ClientStatus::kOk; }
  };
  struct ExplainReply {
    ClientStatus status = ClientStatus::kTransportError;
    std::string error;
    RankedSubspaces ranking;
    bool ok() const { return status == ClientStatus::kOk; }
  };
  struct StatsReply {
    ClientStatus status = ClientStatus::kTransportError;
    std::string error;
    std::string json;
    bool ok() const { return status == ClientStatus::kOk; }
  };
  struct TraceDumpReply {
    ClientStatus status = ClientStatus::kTransportError;
    std::string error;
    std::string json;  ///< Chrome trace-event JSON (Perfetto-loadable).
    bool ok() const { return status == ClientStatus::kOk; }
  };
  struct ProfDumpReply {
    ClientStatus status = ClientStatus::kTransportError;
    std::string error;
    /// Collapsed flamegraph stacks (`kDump`) or a status JSON
    /// (`kStart`/`kStop`); see `ProfDumpResult`.
    std::string text;
    bool ok() const { return status == ClientStatus::kOk; }
  };
  struct IngestReply {
    ClientStatus status = ClientStatus::kTransportError;
    std::string error;
    IngestResult result;
    bool ok() const { return status == ClientStatus::kOk; }
  };
  struct OnlineScoreReply {
    ClientStatus status = ClientStatus::kTransportError;
    std::string error;
    std::uint64_t epoch = 0;
    std::vector<double> scores;
    bool ok() const { return status == ClientStatus::kOk; }
  };
  struct OnlineExplainReply {
    ClientStatus status = ClientStatus::kTransportError;
    std::string error;
    std::uint64_t computed_epoch = 0;
    std::uint64_t current_epoch = 0;
    RankedSubspaces ranking;
    bool ok() const { return status == ClientStatus::kOk; }
    /// The window advanced between pinning and replying.
    bool stale() const { return computed_epoch < current_epoch; }
  };

  /// `kScore`: standardized score vector of `subspace` under `detector`.
  ScoreReply Score(const std::string& detector, const Subspace& subspace);
  /// `kExplain`: ranked explaining subspaces of one point.
  ExplainReply Explain(const std::string& detector,
                       const std::string& explainer, int point, int target_dim,
                       std::uint32_t max_results = 0);
  /// `kStats`: server + service counters as a JSON document.
  StatsReply Stats();
  /// `kTraceDump`: the server's collected spans as Chrome trace-event JSON
  /// (`clear` resets the server's collector after the dump).
  TraceDumpReply TraceDump(bool clear = false);
  /// `kProfDump`/`ProfAction::kStart`: arm the server's sampling profiler
  /// (`sample_hz` 0 = server default). The reply text reports
  /// running/supported — an unsupported server answers gracefully rather
  /// than with `kError`.
  ProfDumpReply ProfStart(std::uint32_t sample_hz = 0);
  /// `kProfDump`/`ProfAction::kStop`: disarm; samples stay dumpable.
  ProfDumpReply ProfStop();
  /// `kProfDump`/`ProfAction::kDump`: collapsed-stack flamegraph text of
  /// the server's samples (`clear` resets the rings after the dump).
  ProfDumpReply ProfDump(bool clear = false);
  /// `kIngest`: append row-major points to online dataset `dataset`
  /// (`values.size()` must be a positive multiple of `num_rows`).
  IngestReply Ingest(const std::string& dataset, std::uint32_t num_rows,
                     std::vector<double> values);
  /// `kOnlineScore`: standardized scores of the current window.
  OnlineScoreReply OnlineScore(const std::string& dataset,
                               const std::string& detector,
                               const Subspace& subspace);
  /// `kOnlineExplain`: explain window row `point`, with freshness epochs.
  OnlineExplainReply OnlineExplain(const std::string& dataset,
                                   const std::string& detector,
                                   const std::string& explainer, int point,
                                   int target_dim,
                                   std::uint32_t max_results = 0);

  /// Trace id stamped on the most recent request (0 when tracing is off).
  /// Lets callers correlate a reply with the span that will surface in a
  /// later `TraceDump`.
  std::uint64_t last_trace_id() const { return last_trace_id_; }

  /// Total `kBusy` replies absorbed by the retry loop (load-test metric).
  std::uint64_t busy_replies_seen() const { return busy_replies_seen_; }

  /// Counter snapshot (retries/reconnects/backoff/transport errors).
  ClientStatsSnapshot stats() const;

  const ExplainClientOptions& options() const { return options_; }

 private:
  /// Sends `request` and blocks for the response with the echoed id,
  /// absorbing busy retries. Returns the response header type via `*type`
  /// and leaves the body in `*body`; kTransportError on socket failure.
  ClientStatus RoundTrip(const std::vector<std::uint8_t>& request,
                         std::uint64_t request_id, MessageType* type,
                         std::vector<std::uint8_t>* body, std::string* error);
  /// One send + matching receive without retry.
  bool SendAndReceive(const std::vector<std::uint8_t>& request,
                      std::uint64_t request_id, MessageHeader* header,
                      std::vector<std::uint8_t>* body, std::string* error);
  /// Shared body of the three `Prof*` calls.
  ProfDumpReply ProfRoundTrip(const ProfDumpRequest& request);
  /// Fresh trace id when tracing is on (also remembered in
  /// `last_trace_id_`); 0 otherwise.
  std::uint64_t BeginTrace();
  /// Records the finished "client.request" span covering one round trip
  /// (no-op when the collector is disabled or `trace_id` is 0).
  void RecordClientSpan(const char* name, std::uint64_t trace_id,
                        std::chrono::steady_clock::time_point start);

  /// Transport success/failure bookkeeping shared by the retry budget and
  /// the circuit breaker.
  void NoteTransportSuccess();
  void NoteTransportFailure();

  ExplainClientOptions options_;
  Socket socket_;
  FrameDecoder decoder_;
  std::uint64_t next_request_id_ = 1;
  std::uint64_t last_trace_id_ = 0;
  std::uint64_t busy_replies_seen_ = 0;
  // Plain counters (the client is single-threaded by contract).
  std::uint64_t requests_ = 0;
  std::uint64_t connects_ = 0;
  std::uint64_t transport_errors_ = 0;
  std::uint64_t backoff_ns_ = 0;
  std::uint64_t retries_denied_ = 0;
  std::uint64_t circuit_opens_ = 0;
  std::uint64_t short_circuits_ = 0;
  std::uint64_t deadline_exceeded_ = 0;
  // Retry-budget / breaker state (see the options for semantics).
  double retry_tokens_ = 0.0;
  int consecutive_failures_ = 0;
  bool breaker_open_ = false;
  std::chrono::steady_clock::time_point breaker_opened_at_{};
};

}  // namespace subex

#endif  // SUBEX_NET_EXPLAIN_CLIENT_H_
