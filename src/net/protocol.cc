#include "net/protocol.h"

namespace subex {
namespace {

WireWriter BeginMessage(MessageType type, std::uint64_t request_id,
                        std::uint64_t trace_id = 0,
                        std::uint32_t deadline_ms = 0) {
  WireWriter writer;
  // Deadline-less frames keep the plain version byte, so pre-deadline
  // payloads stay byte-identical (golden-byte tested).
  writer.PutU8(deadline_ms != 0 ? (kProtocolVersion | kDeadlineFlag)
                                : kProtocolVersion);
  if (trace_id != 0) {
    writer.PutU8(static_cast<std::uint8_t>(type) | kTraceIdFlag);
    writer.PutU64(request_id);
    writer.PutU64(trace_id);
  } else {
    writer.PutU8(static_cast<std::uint8_t>(type));
    writer.PutU64(request_id);
  }
  if (deadline_ms != 0) writer.PutU32(deadline_ms);
  return writer;
}

}  // namespace

bool IsRequestType(MessageType type) {
  return type == MessageType::kScore || type == MessageType::kExplain ||
         type == MessageType::kStats || type == MessageType::kTraceDump ||
         type == MessageType::kIngest || type == MessageType::kOnlineScore ||
         type == MessageType::kOnlineExplain || type == MessageType::kProfDump;
}

void EncodeSubspace(WireWriter& writer, const Subspace& subspace) {
  writer.PutU16(static_cast<std::uint16_t>(subspace.size()));
  for (const FeatureId f : subspace.features()) writer.PutI32(f);
}

bool DecodeSubspace(WireReader& reader, Subspace* out) {
  const std::uint16_t count = reader.GetU16();
  std::vector<FeatureId> features;
  features.reserve(count);
  for (std::uint16_t i = 0; i < count; ++i) features.push_back(reader.GetI32());
  if (!reader.ok()) return false;
  // The wire is a trust boundary: a negative id would trip the Subspace
  // invariant check (fatal), so reject it here as a decode failure.
  for (const FeatureId f : features) {
    if (f < 0) return false;
  }
  *out = Subspace(std::move(features));
  return true;
}

std::vector<std::uint8_t> EncodeScoreRequest(std::uint64_t request_id,
                                             const ScoreRequest& request,
                                             std::uint64_t trace_id,
                                             std::uint32_t deadline_ms) {
  WireWriter writer =
      BeginMessage(MessageType::kScore, request_id, trace_id, deadline_ms);
  writer.PutString(request.detector);
  EncodeSubspace(writer, request.subspace);
  return writer.Take();
}

std::vector<std::uint8_t> EncodeExplainRequest(std::uint64_t request_id,
                                               const ExplainRequest& request,
                                               std::uint64_t trace_id,
                                               std::uint32_t deadline_ms) {
  WireWriter writer = BeginMessage(MessageType::kExplain, request_id, trace_id,
                                   deadline_ms);
  writer.PutString(request.detector);
  writer.PutString(request.explainer);
  writer.PutI32(request.point);
  writer.PutI32(request.target_dim);
  writer.PutU32(request.max_results);
  return writer.Take();
}

std::vector<std::uint8_t> EncodeStatsRequest(std::uint64_t request_id,
                                             std::uint64_t trace_id,
                                             std::uint32_t deadline_ms) {
  return BeginMessage(MessageType::kStats, request_id, trace_id, deadline_ms)
      .Take();
}

std::vector<std::uint8_t> EncodeTraceDumpRequest(std::uint64_t request_id,
                                                 const TraceDumpRequest& request,
                                                 std::uint64_t trace_id,
                                                 std::uint32_t deadline_ms) {
  WireWriter writer =
      BeginMessage(MessageType::kTraceDump, request_id, trace_id, deadline_ms);
  writer.PutU8(request.clear ? 1 : 0);
  return writer.Take();
}

std::vector<std::uint8_t> EncodeIngestRequest(std::uint64_t request_id,
                                              const IngestRequest& request,
                                              std::uint64_t trace_id,
                                              std::uint32_t deadline_ms) {
  WireWriter writer =
      BeginMessage(MessageType::kIngest, request_id, trace_id, deadline_ms);
  writer.PutString(request.dataset);
  writer.PutU32(request.num_rows);
  writer.PutDoubles(request.values);
  return writer.Take();
}

std::vector<std::uint8_t> EncodeOnlineScoreRequest(
    std::uint64_t request_id, const OnlineScoreRequest& request,
    std::uint64_t trace_id, std::uint32_t deadline_ms) {
  WireWriter writer = BeginMessage(MessageType::kOnlineScore, request_id,
                                   trace_id, deadline_ms);
  writer.PutString(request.dataset);
  writer.PutString(request.detector);
  EncodeSubspace(writer, request.subspace);
  return writer.Take();
}

std::vector<std::uint8_t> EncodeOnlineExplainRequest(
    std::uint64_t request_id, const OnlineExplainRequest& request,
    std::uint64_t trace_id, std::uint32_t deadline_ms) {
  WireWriter writer = BeginMessage(MessageType::kOnlineExplain, request_id,
                                   trace_id, deadline_ms);
  writer.PutString(request.dataset);
  writer.PutString(request.detector);
  writer.PutString(request.explainer);
  writer.PutI32(request.point);
  writer.PutI32(request.target_dim);
  writer.PutU32(request.max_results);
  return writer.Take();
}

std::vector<std::uint8_t> EncodeScoreResult(std::uint64_t request_id,
                                            const ScoreResult& result) {
  WireWriter writer = BeginMessage(MessageType::kScoreResult, request_id);
  writer.PutDoubles(result.scores);
  return writer.Take();
}

std::vector<std::uint8_t> EncodeExplainResult(std::uint64_t request_id,
                                              const ExplainResult& result) {
  WireWriter writer = BeginMessage(MessageType::kExplainResult, request_id);
  const RankedSubspaces& ranking = result.ranking;
  writer.PutU32(static_cast<std::uint32_t>(ranking.size()));
  for (std::size_t i = 0; i < ranking.size(); ++i) {
    EncodeSubspace(writer, ranking.subspaces[i]);
    writer.PutDouble(ranking.scores[i]);
  }
  return writer.Take();
}

std::vector<std::uint8_t> EncodeStatsResult(std::uint64_t request_id,
                                            const TextResult& result) {
  WireWriter writer = BeginMessage(MessageType::kStatsResult, request_id);
  writer.PutString(result.text);
  return writer.Take();
}

std::vector<std::uint8_t> EncodeTraceDumpResult(std::uint64_t request_id,
                                                const TextResult& result) {
  WireWriter writer = BeginMessage(MessageType::kTraceDumpResult, request_id);
  writer.PutString(result.text);
  return writer.Take();
}

std::vector<std::uint8_t> EncodeProfDumpRequest(std::uint64_t request_id,
                                                const ProfDumpRequest& request,
                                                std::uint64_t trace_id,
                                                std::uint32_t deadline_ms) {
  WireWriter writer = BeginMessage(MessageType::kProfDump, request_id, trace_id,
                                   deadline_ms);
  writer.PutU8(static_cast<std::uint8_t>(request.action));
  writer.PutU32(request.sample_hz);
  writer.PutU8(request.clear ? 1 : 0);
  return writer.Take();
}

std::vector<std::uint8_t> EncodeProfDumpResult(std::uint64_t request_id,
                                               const ProfDumpResult& result) {
  WireWriter writer = BeginMessage(MessageType::kProfDumpResult, request_id);
  writer.PutString(result.text);
  return writer.Take();
}

std::vector<std::uint8_t> EncodeIngestResult(std::uint64_t request_id,
                                             const IngestResult& result) {
  WireWriter writer = BeginMessage(MessageType::kIngestResult, request_id);
  writer.PutU32(result.accepted);
  writer.PutU64(result.window_epoch);
  writer.PutU64(result.window_size);
  writer.PutU64(result.total_ingested);
  writer.PutU32(result.advances);
  return writer.Take();
}

std::vector<std::uint8_t> EncodeOnlineScoreResult(
    std::uint64_t request_id, const OnlineScoreResult& result) {
  WireWriter writer =
      BeginMessage(MessageType::kOnlineScoreResult, request_id);
  writer.PutU64(result.epoch);
  writer.PutDoubles(result.scores);
  return writer.Take();
}

std::vector<std::uint8_t> EncodeOnlineExplainResult(
    std::uint64_t request_id, const OnlineExplainResult& result) {
  WireWriter writer =
      BeginMessage(MessageType::kOnlineExplainResult, request_id);
  writer.PutU64(result.computed_epoch);
  writer.PutU64(result.current_epoch);
  const RankedSubspaces& ranking = result.ranking;
  writer.PutU32(static_cast<std::uint32_t>(ranking.size()));
  for (std::size_t i = 0; i < ranking.size(); ++i) {
    EncodeSubspace(writer, ranking.subspaces[i]);
    writer.PutDouble(ranking.scores[i]);
  }
  return writer.Take();
}

std::vector<std::uint8_t> EncodeBusy(std::uint64_t request_id) {
  return BeginMessage(MessageType::kBusy, request_id).Take();
}

std::vector<std::uint8_t> EncodeError(std::uint64_t request_id,
                                      const std::string& message) {
  WireWriter writer = BeginMessage(MessageType::kError, request_id);
  writer.PutString(message);
  return writer.Take();
}

std::vector<std::uint8_t> EncodeDeadlineExceeded(std::uint64_t request_id) {
  return BeginMessage(MessageType::kDeadlineExceeded, request_id).Take();
}

bool DecodeHeader(WireReader& reader, MessageHeader* out) {
  const std::uint8_t raw_version = reader.GetU8();
  out->version = raw_version & static_cast<std::uint8_t>(~kDeadlineFlag);
  out->has_deadline = (raw_version & kDeadlineFlag) != 0;
  const std::uint8_t raw_type = reader.GetU8();
  out->type = static_cast<MessageType>(raw_type & ~kTraceIdFlag);
  out->request_id = reader.GetU64();
  out->has_trace_id = (raw_type & kTraceIdFlag) != 0;
  // A flagged header whose trace id bytes are missing trips the reader's
  // sticky error and the frame is rejected like any other truncation.
  out->trace_id = out->has_trace_id ? reader.GetU64() : 0;
  out->deadline_ms = out->has_deadline ? reader.GetU32() : 0;
  return reader.ok();
}

bool DecodeTraceDumpRequest(WireReader& reader, TraceDumpRequest* out) {
  out->clear = reader.GetU8() != 0;
  return reader.AtEnd();
}

bool DecodeScoreRequest(WireReader& reader, ScoreRequest* out) {
  out->detector = reader.GetString();
  return DecodeSubspace(reader, &out->subspace) && reader.AtEnd();
}

bool DecodeExplainRequest(WireReader& reader, ExplainRequest* out) {
  out->detector = reader.GetString();
  out->explainer = reader.GetString();
  out->point = reader.GetI32();
  out->target_dim = reader.GetI32();
  out->max_results = reader.GetU32();
  return reader.AtEnd();
}

bool DecodeIngestRequest(WireReader& reader, IngestRequest* out) {
  out->dataset = reader.GetString();
  out->num_rows = reader.GetU32();
  out->values = reader.GetDoubles();
  if (!reader.AtEnd()) return false;
  // Row-major values must tile into exactly num_rows rows.
  if (out->num_rows == 0) return out->values.empty();
  return out->values.size() % out->num_rows == 0;
}

bool DecodeOnlineScoreRequest(WireReader& reader, OnlineScoreRequest* out) {
  out->dataset = reader.GetString();
  out->detector = reader.GetString();
  return DecodeSubspace(reader, &out->subspace) && reader.AtEnd();
}

bool DecodeOnlineExplainRequest(WireReader& reader,
                                OnlineExplainRequest* out) {
  out->dataset = reader.GetString();
  out->detector = reader.GetString();
  out->explainer = reader.GetString();
  out->point = reader.GetI32();
  out->target_dim = reader.GetI32();
  out->max_results = reader.GetU32();
  return reader.AtEnd();
}

bool DecodeScoreResult(WireReader& reader, ScoreResult* out) {
  out->scores = reader.GetDoubles();
  return reader.AtEnd();
}

bool DecodeExplainResult(WireReader& reader, ExplainResult* out) {
  const std::uint32_t count = reader.GetU32();
  out->ranking = RankedSubspaces{};
  for (std::uint32_t i = 0; i < count; ++i) {
    Subspace subspace;
    if (!DecodeSubspace(reader, &subspace)) return false;
    const double score = reader.GetDouble();
    if (!reader.ok()) return false;
    out->ranking.Add(std::move(subspace), score);
  }
  return reader.AtEnd();
}

bool DecodeIngestResult(WireReader& reader, IngestResult* out) {
  out->accepted = reader.GetU32();
  out->window_epoch = reader.GetU64();
  out->window_size = reader.GetU64();
  out->total_ingested = reader.GetU64();
  out->advances = reader.GetU32();
  return reader.AtEnd();
}

bool DecodeOnlineScoreResult(WireReader& reader, OnlineScoreResult* out) {
  out->epoch = reader.GetU64();
  out->scores = reader.GetDoubles();
  return reader.AtEnd();
}

bool DecodeOnlineExplainResult(WireReader& reader, OnlineExplainResult* out) {
  out->computed_epoch = reader.GetU64();
  out->current_epoch = reader.GetU64();
  const std::uint32_t count = reader.GetU32();
  out->ranking = RankedSubspaces{};
  for (std::uint32_t i = 0; i < count; ++i) {
    Subspace subspace;
    if (!DecodeSubspace(reader, &subspace)) return false;
    const double score = reader.GetDouble();
    if (!reader.ok()) return false;
    out->ranking.Add(std::move(subspace), score);
  }
  return reader.AtEnd();
}

bool DecodeProfDumpRequest(WireReader& reader, ProfDumpRequest* out) {
  const std::uint8_t action = reader.GetU8();
  out->sample_hz = reader.GetU32();
  out->clear = reader.GetU8() != 0;
  if (action > static_cast<std::uint8_t>(ProfAction::kStop)) return false;
  out->action = static_cast<ProfAction>(action);
  return reader.AtEnd();
}

bool DecodeProfDumpResult(WireReader& reader, ProfDumpResult* out) {
  out->text = reader.GetString();
  return reader.AtEnd();
}

bool DecodeTextResult(WireReader& reader, TextResult* out) {
  out->text = reader.GetString();
  return reader.AtEnd();
}

}  // namespace subex
