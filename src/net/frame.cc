#include "net/frame.h"

namespace subex {
namespace {

constexpr std::size_t kLengthPrefixBytes = 4;

std::uint32_t ReadLengthPrefix(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

}  // namespace

std::vector<std::uint8_t> EncodeFrame(
    const std::vector<std::uint8_t>& payload) {
  std::vector<std::uint8_t> frame;
  frame.reserve(kLengthPrefixBytes + payload.size());
  const std::uint32_t n = static_cast<std::uint32_t>(payload.size());
  for (int shift = 0; shift < 32; shift += 8) {
    frame.push_back(static_cast<std::uint8_t>(n >> shift));
  }
  frame.insert(frame.end(), payload.begin(), payload.end());
  return frame;
}

void FrameDecoder::Feed(const std::uint8_t* data, std::size_t size) {
  if (error_) return;
  // Compact once the dead prefix dominates, so long-lived connections do
  // not grow the buffer without bound.
  if (consumed_ > 0 && consumed_ >= buffer_.size() / 2) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  buffer_.insert(buffer_.end(), data, data + size);
}

bool FrameDecoder::Next(std::vector<std::uint8_t>* out) {
  if (error_) return false;
  const std::size_t available = buffer_.size() - consumed_;
  if (available < kLengthPrefixBytes) return false;
  const std::uint32_t length = ReadLengthPrefix(buffer_.data() + consumed_);
  if (length > max_frame_bytes_) {
    error_ = true;
    return false;
  }
  if (available < kLengthPrefixBytes + length) return false;
  const std::uint8_t* begin = buffer_.data() + consumed_ + kLengthPrefixBytes;
  out->assign(begin, begin + length);
  consumed_ += kLengthPrefixBytes + length;
  return true;
}

}  // namespace subex
