#ifndef SUBEX_NET_FRAME_H_
#define SUBEX_NET_FRAME_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace subex {

/// Default per-frame payload ceiling (8 MiB) — comfortably above any score
/// vector or explanation the testbed produces, small enough that a
/// malformed length prefix cannot make a peer buffer gigabytes.
inline constexpr std::size_t kDefaultMaxFrameBytes = 8u << 20;

/// Wraps `payload` in a frame: u32 little-endian payload length + payload.
std::vector<std::uint8_t> EncodeFrame(const std::vector<std::uint8_t>& payload);

/// Incremental decoder of the length-prefixed framing, the read half of a
/// connection's state machine: feed whatever the socket delivered, then
/// drain complete frames. Handles frames split across arbitrarily many
/// reads and multiple frames per read (pipelining). A length prefix above
/// `max_frame_bytes` is unrecoverable — the byte stream can no longer be
/// resynchronized — so it trips a sticky error and the connection must be
/// closed.
class FrameDecoder {
 public:
  explicit FrameDecoder(std::size_t max_frame_bytes = kDefaultMaxFrameBytes)
      : max_frame_bytes_(max_frame_bytes) {}

  /// Appends raw bytes received from the socket. No-op after an error.
  void Feed(const std::uint8_t* data, std::size_t size);

  /// Moves the next complete frame's payload into `out` and returns true,
  /// or returns false when no complete frame is buffered (or after an
  /// error).
  bool Next(std::vector<std::uint8_t>* out);

  /// True once an oversized length prefix poisoned the stream.
  bool error() const { return error_; }
  /// Bytes buffered but not yet returned as frames.
  std::size_t buffered_bytes() const { return buffer_.size() - consumed_; }

 private:
  std::size_t max_frame_bytes_;
  std::vector<std::uint8_t> buffer_;
  std::size_t consumed_ = 0;  // Prefix of `buffer_` already handed out.
  bool error_ = false;
};

}  // namespace subex

#endif  // SUBEX_NET_FRAME_H_
