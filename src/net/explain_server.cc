#include "net/explain_server.h"

#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <deque>
#include <exception>
#include <utility>
#include <vector>

#include "common/json.h"
#include "fault/fault.h"
#include "mem/eviction_manager.h"
#include "obs/build_info.h"
#include "obs/prometheus.h"
#include "obs/registry.h"
#include "obs/span_collector.h"
#include "obs/trace.h"
#include "prof/perf_counters.h"
#include "prof/sampling_profiler.h"

namespace subex {

using Clock = std::chrono::steady_clock;

namespace {

std::uint64_t NsOf(Clock::time_point t) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          t.time_since_epoch())
          .count());
}

std::uint64_t NsSince(Clock::time_point start) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           start)
          .count());
}

/// Request headers longer than this are rejected — `GET /metrics` fits in
/// a fraction of it, anything bigger is not our client.
constexpr std::size_t kMaxHttpRequestBytes = 8192;

[[maybe_unused]] constexpr const char kEmptyChromeTrace[] =
    "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[]}";

}  // namespace

std::string ServerStatsSnapshot::ToJson() const {
  return JsonObject()
      .Add("connections_accepted", connections_accepted)
      .Add("connections_closed", connections_closed)
      .Add("requests_admitted", requests_admitted)
      .Add("responses_sent", responses_sent)
      .Add("busy_rejections", busy_rejections)
      .Add("protocol_errors", protocol_errors)
      .Add("timeouts", timeouts)
      .Add("deadline_expired_queue", deadline_expired_queue)
      .Add("deadline_expired_compute", deadline_expired_compute)
      .Build();
}

/// Per-connection state. The socket, decoder and activity clock belong to
/// the event-loop thread; the write queue is the hand-off point between
/// pool handlers (producers) and the loop (consumer), guarded by `mutex`.
struct ExplainServer::Connection {
  Connection(Socket s, std::size_t max_frame_bytes)
      : socket(std::move(s)),
        decoder(max_frame_bytes),
        last_progress(Clock::now()) {}

  Socket socket;
  FrameDecoder decoder;
  Clock::time_point last_progress;
  /// Admitted requests of this connection still computing.
  std::atomic<int> in_flight{0};

  /// One queued response frame plus the labels its `net.write` span (the
  /// enqueue-to-fully-sent interval) carries once flushed.
  struct WriteEntry {
    std::vector<std::uint8_t> frame;
    std::uint64_t trace_id = 0;
    std::uint64_t parent_span_id = 0;
    std::uint64_t enqueued_ns = 0;
  };

  std::mutex mutex;
  std::deque<WriteEntry> write_queue;
  std::size_t write_offset = 0;  // Sent bytes of the front frame.
  bool close_after_flush = false;
  bool closed = false;
  /// Cleared `Trace` objects reused across this connection's requests —
  /// tracing stays off the allocator hot path. Guarded by `mutex`.
  std::vector<std::unique_ptr<Trace>> trace_pool;
};

/// One `/metrics` exchange. Loop-thread only, no locking.
struct ExplainServer::HttpConnection {
  explicit HttpConnection(Socket s) : socket(std::move(s)) {}

  Socket socket;
  std::string request;
  std::string response;
  std::size_t write_offset = 0;
  bool response_ready = false;
};

ExplainServer::ExplainServer(const ExplainServerOptions& options,
                             ThreadPool* pool)
    : options_(options),
      pool_(pool),
      request_histogram_(
          &MetricsRegistry::Global().GetHistogram("serve.request")),
      queue_wait_histogram_(
          &MetricsRegistry::Global().GetHistogram("serve.queue_wait")),
      write_histogram_(&MetricsRegistry::Global().GetHistogram("net.write")),
      score_request_histogram_(
          &MetricsRegistry::Global().GetHistogram("serve.request.score")),
      explain_request_histogram_(
          &MetricsRegistry::Global().GetHistogram("serve.request.explain")),
      stats_request_histogram_(
          &MetricsRegistry::Global().GetHistogram("serve.request.stats")),
      ingest_request_histogram_(
          &MetricsRegistry::Global().GetHistogram("serve.request.ingest")),
      online_score_request_histogram_(&MetricsRegistry::Global().GetHistogram(
          "serve.request.online_score")),
      online_explain_request_histogram_(
          &MetricsRegistry::Global().GetHistogram(
              "serve.request.online_explain")),
      prof_request_histogram_(
          &MetricsRegistry::Global().GetHistogram("serve.request.prof")),
      explain_search_histogram_(
          &MetricsRegistry::Global().GetHistogram("explain.search")),
      bytes_received_(
          &MetricsRegistry::Global().GetCounter("net.bytes_received")),
      bytes_sent_(&MetricsRegistry::Global().GetCounter("net.bytes_sent")),
      deadline_queue_counter_(&MetricsRegistry::Global().GetCounter(
          "serve.deadline_expired_queue")),
      deadline_compute_counter_(&MetricsRegistry::Global().GetCounter(
          "serve.deadline_expired_compute")),
      connections_gauge_(
          &MetricsRegistry::Global().GetGauge("serve.connections")),
      uptime_gauge_(
          &MetricsRegistry::Global().GetGauge("server.uptime_seconds")) {}

ExplainServer::~ExplainServer() { Stop(); }

void ExplainServer::RegisterService(ScoringService& service) {
  services_[service.detector_name()] = &service;
}

void ExplainServer::RegisterExplainer(const std::string& name,
                                      const PointExplainer& explainer) {
  explainers_[name] = &explainer;
}

void ExplainServer::RegisterOnlineDataset(OnlineDataset& dataset) {
  online_[dataset.name()] = &dataset;
}

bool ExplainServer::Start(std::string* error) {
  std::lock_guard<std::mutex> lifecycle(lifecycle_mutex_);
  if (loop_thread_.joinable()) {
    if (error != nullptr) *error = "server already running";
    return false;
  }
  if (options_.queue_capacity == 0) {
    if (error != nullptr) *error = "queue_capacity must be >= 1";
    return false;
  }
  listener_ = ListenTcp(options_.host, options_.port, options_.listen_backlog,
                        &port_, error);
  if (!listener_.valid()) return false;
  // Make the prof availability gauges scrapeable from the first request —
  // they exist (as zeros) even where perf_event_open is denied.
  RegisterProfProcessMetrics();
  if (options_.metrics_port >= 0) {
    metrics_listener_ =
        ListenTcp(options_.host, static_cast<std::uint16_t>(options_.metrics_port),
                  options_.listen_backlog, &metrics_port_, error);
    if (!metrics_listener_.valid()) {
      listener_.Close();
      return false;
    }
  }
  if (!MakeWakePipe(&wake_read_, &wake_write_, error)) return false;
  started_at_ = Clock::now();
#ifndef SUBEX_OBS_DISABLED
  if (options_.trace_ring_capacity > 0 && !SpanCollector::Global().enabled()) {
    SpanCollector::Global().Enable(options_.trace_ring_capacity);
  }
  if (options_.slow_request_threshold_ms > 0) {
    slow_capture_ = std::make_unique<SlowRequestCapture>(
        static_cast<std::uint64_t>(options_.slow_request_threshold_ms * 1e6),
        options_.slow_request_capacity);
  }
#endif
  stop_requested_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  loop_thread_ = std::thread(&ExplainServer::Loop, this);
  return true;
}

void ExplainServer::Stop() {
  std::lock_guard<std::mutex> lifecycle(lifecycle_mutex_);
  if (!loop_thread_.joinable()) return;
  stop_requested_.store(true, std::memory_order_release);
  Wake();
  loop_thread_.join();
  running_.store(false, std::memory_order_release);
  // The drain deadline bounds how long the loop waits for handlers, not
  // handler lifetime: wait out any stragglers before closing the wake pipe
  // they may still write to.
  while (in_flight_.load(std::memory_order_acquire) != 0) {
    std::this_thread::yield();
  }
  wake_read_.Close();
  wake_write_.Close();
}

ServerStatsSnapshot ExplainServer::stats() const {
  ServerStatsSnapshot snap;
  snap.connections_accepted =
      connections_accepted_.load(std::memory_order_relaxed);
  snap.connections_closed = connections_closed_.load(std::memory_order_relaxed);
  snap.requests_admitted = requests_admitted_.load(std::memory_order_relaxed);
  snap.responses_sent = responses_sent_.load(std::memory_order_relaxed);
  snap.busy_rejections = busy_rejections_.load(std::memory_order_relaxed);
  snap.protocol_errors = protocol_errors_.load(std::memory_order_relaxed);
  snap.timeouts = timeouts_.load(std::memory_order_relaxed);
  snap.deadline_expired_queue =
      deadline_expired_queue_.load(std::memory_order_relaxed);
  snap.deadline_expired_compute =
      deadline_expired_compute_.load(std::memory_order_relaxed);
  return snap;
}

void ExplainServer::Wake() {
  const std::uint8_t byte = 1;
  // EAGAIN means the pipe already holds unread wake bytes — good enough.
  [[maybe_unused]] const ssize_t n = ::write(wake_write_.fd(), &byte, 1);
}

void ExplainServer::Loop() {
  std::vector<pollfd> pfds;
  std::vector<std::shared_ptr<Connection>> polled;
  std::vector<HttpConnection*> polled_http;
  bool draining = false;
  Clock::time_point drain_deadline{};

  while (true) {
    if (!draining && stop_requested_.load(std::memory_order_acquire)) {
      draining = true;
      drain_deadline =
          Clock::now() + std::chrono::milliseconds(options_.drain_timeout_ms);
      listener_.Close();  // No new connections; stop reading below.
      metrics_listener_.Close();
      // Metrics scrapes are cheap and stateless — no drain, just drop them.
      http_connections_.clear();
    }

    pfds.clear();
    polled.clear();
    polled_http.clear();
    pfds.push_back(pollfd{wake_read_.fd(), POLLIN, 0});
    if (listener_.valid()) {
      pfds.push_back(pollfd{listener_.fd(), POLLIN, 0});
    }
    if (metrics_listener_.valid()) {
      pfds.push_back(pollfd{metrics_listener_.fd(), POLLIN, 0});
    }
    for (auto& [fd, conn] : connections_) {
      short events = 0;
      if (!draining) events |= POLLIN;
      {
        std::lock_guard<std::mutex> lock(conn->mutex);
        if (!conn->write_queue.empty()) events |= POLLOUT;
      }
      pfds.push_back(pollfd{fd, events, 0});
      polled.push_back(conn);
    }
    for (auto& [fd, http] : http_connections_) {
      pfds.push_back(pollfd{
          fd, static_cast<short>(http->response_ready ? POLLOUT : POLLIN), 0});
      polled_http.push_back(http.get());
    }

    int timeout_ms = -1;
    if (draining) {
      timeout_ms = 10;
    } else if (!connections_.empty() && options_.idle_timeout_ms > 0) {
      timeout_ms = std::min(options_.idle_timeout_ms, 250);
    }
    const int ready = ::poll(pfds.data(), static_cast<nfds_t>(pfds.size()),
                             timeout_ms);
    if (ready < 0 && errno != EINTR && errno != EAGAIN) break;

    if (pfds[0].revents & POLLIN) {
      std::uint8_t buf[256];
      while (::read(wake_read_.fd(), buf, sizeof(buf)) > 0) {
      }
    }
    std::size_t index = 1;
    if (listener_.valid()) {
      if (pfds[index].revents & POLLIN) AcceptNewConnections();
      ++index;
    }
    if (metrics_listener_.valid()) {
      if (pfds[index].revents & POLLIN) AcceptMetricsConnections();
      ++index;
    }

    for (std::size_t i = 0; i < polled.size(); ++i) {
      const std::shared_ptr<Connection>& conn = polled[i];
      const short revents = pfds[index + i].revents;
      bool alive = true;
      if (revents & POLLOUT) alive = HandleWritable(conn);
      if (alive && (revents & POLLIN)) alive = HandleReadable(conn);
      if (alive && (revents & (POLLERR | POLLNVAL))) alive = false;
      if (alive && (revents & POLLHUP) && !(revents & POLLIN)) alive = false;
      if (alive) {
        std::lock_guard<std::mutex> lock(conn->mutex);
        if (conn->close_after_flush && conn->write_queue.empty() &&
            conn->in_flight.load(std::memory_order_acquire) == 0) {
          alive = false;
        }
      }
      if (!alive) CloseConnection(conn);
    }
    index += polled.size();

    for (std::size_t i = 0; i < polled_http.size(); ++i) {
      HttpConnection& http = *polled_http[i];
      const short revents = pfds[index + i].revents;
      bool alive = true;
      if (revents & POLLIN) alive = HandleHttpReadable(http);
      if (alive && (revents & POLLOUT)) alive = HandleHttpWritable(http);
      if (alive && (revents & (POLLERR | POLLNVAL | POLLHUP)) &&
          !(revents & POLLIN)) {
        alive = false;
      }
      if (!alive) {
        const int fd = http.socket.fd();
        http.socket.Close();
        http_connections_.erase(fd);
      }
    }

    if (!draining && options_.idle_timeout_ms > 0) {
      const Clock::time_point now = Clock::now();
      const auto limit = std::chrono::milliseconds(options_.idle_timeout_ms);
      // Snapshot first: CloseConnection mutates the map.
      std::vector<std::shared_ptr<Connection>> idle;
      for (auto& [fd, conn] : connections_) {
        if (conn->in_flight.load(std::memory_order_acquire) == 0 &&
            now - conn->last_progress > limit) {
          idle.push_back(conn);
        }
      }
      for (const std::shared_ptr<Connection>& conn : idle) {
        timeouts_.fetch_add(1, std::memory_order_relaxed);
        SUBEX_EVENT(EventSeverity::kInfo, "serve.idle_timeout",
                    JsonObject()
                        .Add("fd", conn->socket.fd())
                        .Add("idle_ms",
                             static_cast<double>(NsSince(conn->last_progress)) /
                                 1e6)
                        .Build());
        CloseConnection(conn);
      }
    }

    if (draining) {
      bool flushed = in_flight_.load(std::memory_order_acquire) == 0;
      if (flushed) {
        for (auto& [fd, conn] : connections_) {
          std::lock_guard<std::mutex> lock(conn->mutex);
          if (!conn->write_queue.empty()) {
            flushed = false;
            break;
          }
        }
      }
      if (flushed || Clock::now() > drain_deadline) break;
    }
  }

  std::vector<std::shared_ptr<Connection>> remaining;
  remaining.reserve(connections_.size());
  for (auto& [fd, conn] : connections_) remaining.push_back(conn);
  for (const std::shared_ptr<Connection>& conn : remaining) {
    CloseConnection(conn);
  }
  http_connections_.clear();
}

void ExplainServer::AcceptMetricsConnections() {
  while (true) {
    const int fd = ::accept(metrics_listener_.fd(), nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;
    }
    Socket socket(fd);
    if (!SetNonBlocking(fd, true)) continue;
    http_connections_.emplace(fd,
                              std::make_unique<HttpConnection>(std::move(socket)));
  }
}

bool ExplainServer::HandleHttpReadable(HttpConnection& conn) {
  char buf[4096];
  while (true) {
    const ssize_t n = ::recv(conn.socket.fd(), buf, sizeof(buf), 0);
    if (n > 0) {
      conn.request.append(buf, static_cast<std::size_t>(n));
      if (conn.request.size() > kMaxHttpRequestBytes) return false;
      if (static_cast<std::size_t>(n) < sizeof(buf)) break;
    } else if (n == 0) {
      return false;  // EOF before a complete request.
    } else {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      return false;
    }
  }
  if (!conn.response_ready &&
      conn.request.find("\r\n\r\n") != std::string::npos) {
    conn.response = BuildMetricsHttpResponse(conn.request);
    conn.response_ready = true;
    // Try to flush immediately — most scrapes fit one send.
    return HandleHttpWritable(conn);
  }
  return true;
}

bool ExplainServer::HandleHttpWritable(HttpConnection& conn) {
  if (!conn.response_ready) return true;
  while (conn.write_offset < conn.response.size()) {
    const ssize_t n = ::send(conn.socket.fd(),
                             conn.response.data() + conn.write_offset,
                             conn.response.size() - conn.write_offset,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
      return false;
    }
    conn.write_offset += static_cast<std::size_t>(n);
  }
  return false;  // Fully sent; Connection: close semantics.
}

std::string ExplainServer::BuildMetricsHttpResponse(
    const std::string& request_text) {
  const std::size_t line_end = request_text.find("\r\n");
  const std::string request_line = request_text.substr(
      0, line_end == std::string::npos ? request_text.size() : line_end);
  std::string status = "404 Not Found";
  std::string content_type = "text/plain; charset=utf-8";
  std::string body = "not found\n";
  if (request_line.rfind("GET /metrics", 0) == 0) {
#ifndef SUBEX_OBS_DISABLED
    uptime_gauge_->Set(static_cast<std::int64_t>(
        std::chrono::duration_cast<std::chrono::seconds>(Clock::now() -
                                                         started_at_)
            .count()));
    status = "200 OK";
    content_type = "text/plain; version=0.0.4; charset=utf-8";
    body = RenderPrometheusText(MetricsRegistry::Global());
#else
    status = "503 Service Unavailable";
    body = "observability compiled out (SUBEX_OBS_DISABLED)\n";
#endif
  } else if (!request_line.empty() && request_line.rfind("GET ", 0) != 0) {
    status = "405 Method Not Allowed";
    body = "only GET is supported\n";
  }
  std::string response = "HTTP/1.1 " + status + "\r\n";
  response += "Content-Type: " + content_type + "\r\n";
  response += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  response += "Connection: close\r\n\r\n";
  response += body;
  return response;
}

void ExplainServer::AcceptNewConnections() {
  while (true) {
    FaultAction fault_action;
    if (SUBEX_FAULT(FaultPoint::kSocketAccept, &fault_action)) {
      // Behave like a transient accept failure: stop this pass. The
      // listener is level-triggered, so pending connections re-signal on
      // the next poll and the loop recovers once the fault clears.
      break;
    }
    const int fd = ::accept(listener_.fd(), nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // EAGAIN/EWOULDBLOCK: accepted everything pending.
    }
    Socket socket(fd);
    if (!SetNonBlocking(fd, true)) continue;  // Drops the connection.
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    connections_gauge_->Add(1);
    connections_.emplace(fd, std::make_shared<Connection>(
                                 std::move(socket), options_.max_frame_bytes));
  }
}

bool ExplainServer::HandleReadable(const std::shared_ptr<Connection>& conn) {
  std::uint8_t buf[16384];
  while (true) {
    std::size_t want = sizeof(buf);
    FaultAction fault_action;
    if (SUBEX_FAULT(FaultPoint::kSocketRead, &fault_action)) {
      if (fault_action == FaultAction::kEintr) continue;
      if (fault_action == FaultAction::kShort) {
        want = 1;  // Torn read — the frame decoder must reassemble.
      } else {
        return false;  // Connection torn down like a real recv failure.
      }
    }
    const ssize_t n = ::recv(conn->socket.fd(), buf, want, 0);
    if (n > 0) {
      conn->last_progress = Clock::now();
      bytes_received_->Increment(static_cast<std::uint64_t>(n));
      conn->decoder.Feed(buf, static_cast<std::size_t>(n));
      if (static_cast<std::size_t>(n) < sizeof(buf)) break;
    } else if (n == 0) {
      return false;  // Orderly EOF from the peer.
    } else {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      return false;
    }
  }
  std::vector<std::uint8_t> payload;
  while (conn->decoder.Next(&payload)) {
    DispatchFrame(conn, std::move(payload));
    std::lock_guard<std::mutex> lock(conn->mutex);
    if (conn->close_after_flush) return true;  // Stop parsing a bad stream.
  }
  if (conn->decoder.error()) {
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    SUBEX_EVENT(EventSeverity::kWarn, "net.max_frame",
                JsonObject()
                    .Add("max_frame_bytes",
                         static_cast<std::uint64_t>(options_.max_frame_bytes))
                    .Build());
    EnqueueResponse(conn, EncodeError(0, "frame exceeds maximum size"));
    std::lock_guard<std::mutex> lock(conn->mutex);
    conn->close_after_flush = true;
  }
  return true;
}

bool ExplainServer::HandleWritable(const std::shared_ptr<Connection>& conn) {
  std::lock_guard<std::mutex> lock(conn->mutex);
  TraceSpan flush(conn->write_queue.empty() ? nullptr : write_histogram_);
  while (!conn->write_queue.empty()) {
    const Connection::WriteEntry& entry = conn->write_queue.front();
    const std::vector<std::uint8_t>& front = entry.frame;
    std::size_t want = front.size() - conn->write_offset;
    FaultAction fault_action;
    if (SUBEX_FAULT(FaultPoint::kSocketWrite, &fault_action)) {
      if (fault_action == FaultAction::kEintr) continue;
      if (fault_action == FaultAction::kShort) {
        want = 1;  // Partial write — resumption via write_offset.
      } else {
        return false;  // Connection torn down like a real send failure.
      }
    }
    const ssize_t n = ::send(conn->socket.fd(),
                             front.data() + conn->write_offset, want,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      return false;
    }
    conn->last_progress = Clock::now();
    bytes_sent_->Increment(static_cast<std::uint64_t>(n));
    conn->write_offset += static_cast<std::size_t>(n);
    if (conn->write_offset == front.size()) {
#ifndef SUBEX_OBS_DISABLED
      // The response's "net.write" span: enqueued by the handler to fully
      // handed to the kernel here, tagged with the request's trace.
      SpanCollector& collector = SpanCollector::Global();
      if (collector.enabled() && entry.enqueued_ns != 0) {
        SpanRecord record;
        record.name = "net.write";
        record.trace_id = entry.trace_id;
        record.span_id = NextSpanId();
        record.parent_id = entry.parent_span_id;
        record.start_ns = entry.enqueued_ns;
        record.duration_ns = NsOf(conn->last_progress) - entry.enqueued_ns;
        collector.Record(std::move(record));
      }
#endif
      conn->write_queue.pop_front();
      conn->write_offset = 0;
      responses_sent_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  return true;
}

void ExplainServer::DispatchFrame(const std::shared_ptr<Connection>& conn,
                                  std::vector<std::uint8_t> payload) {
  WireReader reader(payload);
  MessageHeader header;
  if (!DecodeHeader(reader, &header) ||
      header.version != kProtocolVersion || !IsRequestType(header.type)) {
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    SUBEX_EVENT(EventSeverity::kWarn, "net.protocol_error",
                JsonObject()
                    .Add("request_id", header.request_id)
                    .Add("bytes", static_cast<std::uint64_t>(payload.size()))
                    .Build());
    EnqueueResponse(conn,
                    EncodeError(header.request_id, "malformed request header"));
    std::lock_guard<std::mutex> lock(conn->mutex);
    conn->close_after_flush = true;
    return;
  }

  // Admission control: the bounded queue is a counter, not a buffer — at
  // capacity the reply is an immediate kBusy and nothing is retained.
  std::size_t current = in_flight_.load(std::memory_order_relaxed);
  do {
    if (current >= options_.queue_capacity) {
      busy_rejections_.fetch_add(1, std::memory_order_relaxed);
      SUBEX_EVENT(
          EventSeverity::kWarn, "serve.busy",
          JsonObject()
              .Add("request_id", header.request_id)
              .Add("queue_capacity",
                   static_cast<std::uint64_t>(options_.queue_capacity))
              .Build());
      EnqueueResponse(conn, EncodeBusy(header.request_id));
      return;
    }
  } while (!in_flight_.compare_exchange_weak(current, current + 1,
                                             std::memory_order_acquire,
                                             std::memory_order_relaxed));
  requests_admitted_.fetch_add(1, std::memory_order_relaxed);
  conn->in_flight.fetch_add(1, std::memory_order_acq_rel);
  const Clock::time_point admitted = Clock::now();

  if (pool_ != nullptr) {
    pool_->Submit(
        [this, conn, header, admitted, body = std::move(payload)]() mutable {
          HandleRequest(conn, header, std::move(body), admitted);
        });
  } else {
    HandleRequest(conn, header, std::move(payload), admitted);
  }
}

void ExplainServer::HandleRequest(const std::shared_ptr<Connection>& conn,
                                  MessageHeader header,
                                  std::vector<std::uint8_t> payload,
                                  Clock::time_point admitted) {
  const std::uint64_t queue_wait_ns = NsSince(admitted);
  queue_wait_histogram_->Record(queue_wait_ns);

  // The client's deadline is a relative budget stamped at admission.
  // Expired work is dropped here, at queue-dequeue, before any compute —
  // the client has already given up, so the cheapest honest answer is an
  // immediate kDeadlineExceeded.
  const bool has_deadline = header.has_deadline && header.deadline_ms > 0;
  const Clock::time_point deadline =
      admitted + std::chrono::milliseconds(header.deadline_ms);
  if (has_deadline && Clock::now() >= deadline) {
    deadline_expired_queue_.fetch_add(1, std::memory_order_relaxed);
    deadline_queue_counter_->Increment();
    SUBEX_EVENT(EventSeverity::kWarn, "serve.deadline",
                JsonObject()
                    .Add("request_id", header.request_id)
                    .Add("stage", "queue")
                    .Add("deadline_ms",
                         static_cast<std::uint64_t>(header.deadline_ms))
                    .Build());
    EnqueueResponse(conn, EncodeDeadlineExceeded(header.request_id));
    conn->in_flight.fetch_sub(1, std::memory_order_acq_rel);
    in_flight_.fetch_sub(1, std::memory_order_release);
    Wake();
    return;
  }

#ifndef SUBEX_OBS_DISABLED
  // Continue the client's distributed trace (or root a fresh one): the
  // request's spans nest under one root that starts at admission. Traces
  // are pooled per connection — Clear + reuse, no per-request allocation
  // once a connection is warm.
  Trace* trace;
  {
    std::lock_guard<std::mutex> lock(conn->mutex);
    if (conn->trace_pool.empty()) {
      trace = new Trace();
    } else {
      trace = conn->trace_pool.back().release();
      conn->trace_pool.pop_back();
    }
  }
  trace->set_trace_id(header.has_trace_id && header.trace_id != 0
                          ? header.trace_id
                          : NextTraceId());
  const std::uint64_t admitted_ns = NsOf(admitted);
  const std::size_t root = trace->OpenSpan("serve.request", admitted_ns);
  const std::uint64_t root_span_id = trace->spans()[root].span_id;
  trace->Record("serve.queue_wait", admitted_ns, queue_wait_ns);
#endif

  WireReader reader(payload.data() + EncodedHeaderBytes(header),
                    payload.size() - EncodedHeaderBytes(header));
  std::vector<std::uint8_t> response;
  try {
#ifndef SUBEX_OBS_DISABLED
    // Handlers and everything they call (scoring service, chunk loads,
    // explainer pipelines) see this trace via CurrentTrace().
    TraceContext context(trace);
#endif
    response = ComputeResponse(header, reader);
  } catch (const std::exception& e) {
    response = EncodeError(header.request_id,
                           std::string("handler exception: ") + e.what());
  }
  // Second deadline gate, between the compute and write-back stages: a
  // result the client has stopped waiting for is discarded rather than
  // flushed down the pipe.
  if (has_deadline && Clock::now() >= deadline) {
    deadline_expired_compute_.fetch_add(1, std::memory_order_relaxed);
    deadline_compute_counter_->Increment();
    response = EncodeDeadlineExceeded(header.request_id);
  }
  const std::uint64_t end_to_end_ns = NsSince(admitted);
  request_histogram_->Record(end_to_end_ns);
  switch (header.type) {
    case MessageType::kScore:
      score_request_histogram_->Record(end_to_end_ns);
      break;
    case MessageType::kExplain:
      explain_request_histogram_->Record(end_to_end_ns);
      break;
    case MessageType::kStats:
      stats_request_histogram_->Record(end_to_end_ns);
      break;
    case MessageType::kIngest:
      ingest_request_histogram_->Record(end_to_end_ns);
      break;
    case MessageType::kOnlineScore:
      online_score_request_histogram_->Record(end_to_end_ns);
      break;
    case MessageType::kOnlineExplain:
      online_explain_request_histogram_->Record(end_to_end_ns);
      break;
    case MessageType::kProfDump:
      prof_request_histogram_->Record(end_to_end_ns);
      break;
    default:
      break;
  }

#ifndef SUBEX_OBS_DISABLED
  // Finish the trace BEFORE the response is enqueued: once the client can
  // see the reply it may immediately ask for a kTraceDump, and every span
  // of this request except net.write (which the loop thread records before
  // it can read that dump request) must already be in the collector.
  const std::uint64_t trace_id = trace->trace_id();
  trace->CloseSpan(root, end_to_end_ns);
  if (slow_capture_ != nullptr && slow_capture_->WouldCapture(end_to_end_ns)) {
    const char* label = "other";
    switch (header.type) {
      case MessageType::kScore:
        label = "score";
        break;
      case MessageType::kExplain:
        label = "explain";
        break;
      case MessageType::kStats:
        label = "stats";
        break;
      case MessageType::kIngest:
        label = "ingest";
        break;
      case MessageType::kOnlineScore:
        label = "online_score";
        break;
      case MessageType::kOnlineExplain:
        label = "online_explain";
        break;
      default:
        break;
    }
    slow_capture_->Capture(label, header.request_id, trace_id, end_to_end_ns,
                           trace->ToJson());
  }
  trace->Clear();
  {
    std::lock_guard<std::mutex> lock(conn->mutex);
    conn->trace_pool.emplace_back(trace);
  }
  EnqueueResponse(conn, std::move(response), trace_id, root_span_id);
#else
  EnqueueResponse(conn, std::move(response));
#endif

  conn->in_flight.fetch_sub(1, std::memory_order_acq_rel);
  in_flight_.fetch_sub(1, std::memory_order_release);
  Wake();
}

std::vector<std::uint8_t> ExplainServer::ComputeResponse(
    const MessageHeader& header, WireReader& reader) {
  switch (header.type) {
    case MessageType::kScore:
      return HandleScore(header.request_id, reader);
    case MessageType::kExplain:
      return HandleExplain(header.request_id, reader);
    case MessageType::kStats:
      return HandleStats(header.request_id);
    case MessageType::kTraceDump:
      return HandleTraceDump(header.request_id, reader);
    case MessageType::kIngest:
      return HandleIngest(header.request_id, reader);
    case MessageType::kOnlineScore:
      return HandleOnlineScore(header.request_id, reader);
    case MessageType::kOnlineExplain:
      return HandleOnlineExplain(header.request_id, reader);
    case MessageType::kProfDump:
      return HandleProfDump(header.request_id, reader);
    default:
      return EncodeError(header.request_id, "unsupported request type");
  }
}

namespace {

/// Features must address columns of the service's dataset; an out-of-range
/// id would be undefined behavior deep inside a detector.
bool SubspaceInRange(const Subspace& subspace, std::size_t num_features) {
  for (const FeatureId f : subspace.features()) {
    if (f < 0 || static_cast<std::size_t>(f) >= num_features) return false;
  }
  return true;
}

}  // namespace

std::vector<std::uint8_t> ExplainServer::HandleScore(std::uint64_t request_id,
                                                     WireReader& reader) {
  ScoreRequest request;
  if (!DecodeScoreRequest(reader, &request)) {
    return EncodeError(request_id, "malformed kScore body");
  }
  const auto it = services_.find(request.detector);
  if (it == services_.end()) {
    return EncodeError(request_id, "unknown detector: " + request.detector);
  }
  ScoringService& service = *it->second;
  if (!SubspaceInRange(request.subspace, service.data().num_features())) {
    return EncodeError(request_id, "subspace feature out of range");
  }
  const ScoreVectorPtr scores = service.Score(request.subspace);
  ScoreResult result;
  result.scores = *scores;
  return EncodeScoreResult(request_id, result);
}

std::vector<std::uint8_t> ExplainServer::HandleExplain(std::uint64_t request_id,
                                                       WireReader& reader) {
  ExplainRequest request;
  if (!DecodeExplainRequest(reader, &request)) {
    return EncodeError(request_id, "malformed kExplain body");
  }
  const auto service_it = services_.find(request.detector);
  if (service_it == services_.end()) {
    return EncodeError(request_id, "unknown detector: " + request.detector);
  }
  const auto explainer_it = explainers_.find(request.explainer);
  if (explainer_it == explainers_.end()) {
    return EncodeError(request_id, "unknown explainer: " + request.explainer);
  }
  ScoringService& service = *service_it->second;
  const Dataset& data = service.data();
  if (request.point < 0 ||
      static_cast<std::size_t>(request.point) >= data.num_points()) {
    return EncodeError(request_id, "point index out of range");
  }
  if (request.target_dim < 2 ||
      static_cast<std::size_t>(request.target_dim) > data.num_features()) {
    return EncodeError(request_id, "target_dim out of range");
  }
  // Scoring routes through the service, so concurrent explanations share
  // the cache and single-flight deduplication.
  CachingDetector cached(service);
  ExplainResult result;
  {
    // Attaches to the request's trace via CurrentTrace(); detect.score
    // spans from the service nest underneath.
    TraceSpan search(explain_search_histogram_, nullptr, "explain.search");
    result.ranking = explainer_it->second->Explain(data, cached, request.point,
                                                   request.target_dim);
  }
  if (request.max_results > 0 && result.ranking.size() > request.max_results) {
    result.ranking.subspaces.resize(request.max_results);
    result.ranking.scores.resize(request.max_results);
  }
  return EncodeExplainResult(request_id, result);
}

std::vector<std::uint8_t> ExplainServer::HandleStats(std::uint64_t request_id) {
  JsonObject services;
  for (const auto& [name, service] : services_) {
    services.AddRaw(name, service->stats().ToJson());
  }
  const std::uint64_t uptime_seconds = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::seconds>(Clock::now() -
                                                       started_at_)
          .count());
  uptime_gauge_->Set(static_cast<std::int64_t>(uptime_seconds));
#ifndef SUBEX_OBS_DISABLED
  const std::string events_json = EventLog::Global().ToJson();
  const std::string slow_json =
      slow_capture_ != nullptr
          ? slow_capture_->ToJson()
          : "{\"threshold_ms\":0,\"captured\":0,\"recent\":[]}";
#else
  const std::string events_json =
      "{\"emitted\":0,\"suppressed\":0,\"recent\":[]}";
  const std::string slow_json =
      "{\"threshold_ms\":0,\"captured\":0,\"recent\":[]}";
#endif
  JsonObject online;
  for (const auto& [name, dataset] : online_) {
    online.AddRaw(name, dataset->stats().ToJson());
  }
  TextResult result;
  result.text = JsonObject()
                    .Add("uptime_seconds", uptime_seconds)
                    .AddRaw("build_info", BuildInfoJson())
                    .AddRaw("server", stats().ToJson())
                    .AddRaw("services", services.Build())
                    .AddRaw("online", online.Build())
                    .AddRaw("metrics", MetricsRegistry::Global().ToJson())
                    .AddRaw("mem", EvictionManager::Global().snapshot().ToJson())
                    .AddRaw("events", events_json)
                    .AddRaw("slow_requests", slow_json)
                    .AddRaw("fault", FaultRegistry::Global().stats().ToJson())
                    .Build();
  return EncodeStatsResult(request_id, result);
}

std::vector<std::uint8_t> ExplainServer::HandleTraceDump(
    std::uint64_t request_id, WireReader& reader) {
  TraceDumpRequest request;
  if (!DecodeTraceDumpRequest(reader, &request)) {
    return EncodeError(request_id, "malformed kTraceDump body");
  }
  TextResult result;
#ifndef SUBEX_OBS_DISABLED
  SpanCollector& collector = SpanCollector::Global();
  result.text = collector.ToChromeTraceJson();
  if (request.clear) collector.Clear();
#else
  result.text = kEmptyChromeTrace;
#endif
  return EncodeTraceDumpResult(request_id, result);
}

std::vector<std::uint8_t> ExplainServer::HandleProfDump(
    std::uint64_t request_id, WireReader& reader) {
  ProfDumpRequest request;
  if (!DecodeProfDumpRequest(reader, &request)) {
    return EncodeError(request_id, "malformed kProfDump body");
  }
  // The SUBEX_OBS_DISABLED stubs make every branch a well-formed no-op
  // (start fails gracefully, dumps are empty), so this handler needs no
  // compile-time split.
  SamplingProfiler& profiler = SamplingProfiler::Global();
  ProfDumpResult result;
  switch (request.action) {
    case ProfAction::kStart: {
      SamplingProfilerOptions options;
      if (request.sample_hz != 0) {
        options.sample_hz = static_cast<int>(request.sample_hz);
      }
      std::string error;
      const bool started = profiler.Start(options, &error);
      JsonObject status;
      status.Add("running", profiler.running());
      status.Add("sample_hz", profiler.sample_hz());
      status.Add("supported", SamplingProfiler::SupportedOnThisSystem());
      if (!started) status.Add("error", error);
      result.text = status.Build();
      break;
    }
    case ProfAction::kStop: {
      profiler.Stop();
      result.text = JsonObject()
                        .Add("running", false)
                        .Add("samples", profiler.samples())
                        .Add("dropped", profiler.dropped())
                        .Build();
      break;
    }
    case ProfAction::kDump: {
      result.text = profiler.ToCollapsedText();
      if (request.clear) profiler.Clear();
      break;
    }
  }
  return EncodeProfDumpResult(request_id, result);
}

std::vector<std::uint8_t> ExplainServer::HandleIngest(std::uint64_t request_id,
                                                      WireReader& reader) {
  IngestRequest request;
  if (!DecodeIngestRequest(reader, &request)) {
    return EncodeError(request_id, "malformed kIngest body");
  }
  const auto it = online_.find(request.dataset);
  if (it == online_.end()) {
    return EncodeError(request_id,
                       "unknown online dataset: " + request.dataset);
  }
  OnlineDataset& dataset = *it->second;
  if (request.num_rows == 0) {
    return EncodeError(request_id, "empty ingest");
  }
  const std::size_t width = request.values.size() / request.num_rows;
  if (width != dataset.num_features()) {
    return EncodeError(request_id, "ingest width mismatch");
  }
  Matrix rows(request.num_rows, width);
  for (std::uint32_t r = 0; r < request.num_rows; ++r) {
    for (std::size_t c = 0; c < width; ++c) {
      rows(r, c) = request.values[static_cast<std::size_t>(r) * width + c];
    }
  }
  const OnlineDataset::IngestResult ingested = dataset.Append(rows);
  IngestResult result;
  result.accepted = static_cast<std::uint32_t>(ingested.accepted);
  result.window_epoch = ingested.epoch;
  result.window_size = ingested.window_size;
  result.total_ingested = ingested.total_ingested;
  result.advances = ingested.advances;
  return EncodeIngestResult(request_id, result);
}

std::vector<std::uint8_t> ExplainServer::HandleOnlineScore(
    std::uint64_t request_id, WireReader& reader) {
  OnlineScoreRequest request;
  if (!DecodeOnlineScoreRequest(reader, &request)) {
    return EncodeError(request_id, "malformed kOnlineScore body");
  }
  const auto it = online_.find(request.dataset);
  if (it == online_.end()) {
    return EncodeError(request_id,
                       "unknown online dataset: " + request.dataset);
  }
  OnlineDataset& dataset = *it->second;
  if (!SubspaceInRange(request.subspace, dataset.num_features())) {
    return EncodeError(request_id, "subspace feature out of range");
  }
  OnlineDataset::ScoredEpoch scored;
  const OnlineDataset::Status status =
      dataset.Score(request.detector, request.subspace, &scored);
  if (status != OnlineDataset::Status::kOk) {
    return EncodeError(request_id, OnlineDataset::StatusMessage(status));
  }
  OnlineScoreResult result;
  result.epoch = scored.epoch;
  result.scores = *scored.scores;
  return EncodeOnlineScoreResult(request_id, result);
}

std::vector<std::uint8_t> ExplainServer::HandleOnlineExplain(
    std::uint64_t request_id, WireReader& reader) {
  OnlineExplainRequest request;
  if (!DecodeOnlineExplainRequest(reader, &request)) {
    return EncodeError(request_id, "malformed kOnlineExplain body");
  }
  const auto it = online_.find(request.dataset);
  if (it == online_.end()) {
    return EncodeError(request_id,
                       "unknown online dataset: " + request.dataset);
  }
  OnlineDataset& dataset = *it->second;
  if (!dataset.HasDetector(request.detector)) {
    return EncodeError(request_id, "unknown detector: " + request.detector);
  }
  const auto explainer_it = explainers_.find(request.explainer);
  if (explainer_it == explainers_.end()) {
    return EncodeError(request_id, "unknown explainer: " + request.explainer);
  }
  // Everything below works on this pinned epoch; even if ingest keeps the
  // window moving, the explanation is internally consistent for it.
  const OnlineDataset::EpochSnapshot snapshot = dataset.Snapshot();
  if (snapshot.data == nullptr ||
      snapshot.data->num_points() < dataset.options().min_score_window) {
    return EncodeError(
        request_id,
        OnlineDataset::StatusMessage(OnlineDataset::Status::kWindowTooSmall));
  }
  const Dataset& data = *snapshot.data;
  if (request.point < 0 ||
      static_cast<std::size_t>(request.point) >= data.num_points()) {
    return EncodeError(request_id, "point index out of range");
  }
  if (request.target_dim < 2 ||
      static_cast<std::size_t>(request.target_dim) > data.num_features()) {
    return EncodeError(request_id, "target_dim out of range");
  }
  const PinnedEpochDetector pinned(dataset, snapshot, request.detector);
  OnlineExplainResult result;
  {
    TraceSpan search(explain_search_histogram_, nullptr, "explain.search");
    result.ranking = explainer_it->second->Explain(data, pinned, request.point,
                                                   request.target_dim);
  }
  if (request.max_results > 0 && result.ranking.size() > request.max_results) {
    result.ranking.subspaces.resize(request.max_results);
    result.ranking.scores.resize(request.max_results);
  }
  result.computed_epoch = snapshot.epoch;
  result.current_epoch = dataset.epoch();
  if (result.computed_epoch < result.current_epoch) {
    dataset.NoteStaleServe(result.computed_epoch, result.current_epoch);
  }
  return EncodeOnlineExplainResult(request_id, result);
}

void ExplainServer::EnqueueResponse(const std::shared_ptr<Connection>& conn,
                                    std::vector<std::uint8_t> payload,
                                    std::uint64_t trace_id,
                                    std::uint64_t parent_span_id) {
  Connection::WriteEntry entry;
  entry.frame = EncodeFrame(payload);
  entry.trace_id = trace_id;
  entry.parent_span_id = parent_span_id;
#ifndef SUBEX_OBS_DISABLED
  entry.enqueued_ns = NsOf(Clock::now());
#endif
  {
    std::lock_guard<std::mutex> lock(conn->mutex);
    if (conn->closed) return;  // Peer already gone; drop the response.
    conn->write_queue.push_back(std::move(entry));
  }
  Wake();
}

void ExplainServer::CloseConnection(const std::shared_ptr<Connection>& conn) {
  {
    std::lock_guard<std::mutex> lock(conn->mutex);
    if (conn->closed) return;
    conn->closed = true;
    conn->write_queue.clear();
  }
  const int fd = conn->socket.fd();
  conn->socket.Close();
  connections_.erase(fd);
  connections_closed_.fetch_add(1, std::memory_order_relaxed);
  connections_gauge_->Add(-1);
}

}  // namespace subex
