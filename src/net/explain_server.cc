#include "net/explain_server.h"

#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <deque>
#include <exception>
#include <utility>
#include <vector>

#include "common/json.h"
#include "mem/eviction_manager.h"
#include "obs/registry.h"
#include "obs/trace.h"

namespace subex {

using Clock = std::chrono::steady_clock;

namespace {

std::uint64_t NsSince(Clock::time_point start) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           start)
          .count());
}

}  // namespace

std::string ServerStatsSnapshot::ToJson() const {
  return JsonObject()
      .Add("connections_accepted", connections_accepted)
      .Add("connections_closed", connections_closed)
      .Add("requests_admitted", requests_admitted)
      .Add("responses_sent", responses_sent)
      .Add("busy_rejections", busy_rejections)
      .Add("protocol_errors", protocol_errors)
      .Add("timeouts", timeouts)
      .Build();
}

/// Per-connection state. The socket, decoder and activity clock belong to
/// the event-loop thread; the write queue is the hand-off point between
/// pool handlers (producers) and the loop (consumer), guarded by `mutex`.
struct ExplainServer::Connection {
  Connection(Socket s, std::size_t max_frame_bytes)
      : socket(std::move(s)),
        decoder(max_frame_bytes),
        last_progress(Clock::now()) {}

  Socket socket;
  FrameDecoder decoder;
  Clock::time_point last_progress;
  /// Admitted requests of this connection still computing.
  std::atomic<int> in_flight{0};

  std::mutex mutex;
  std::deque<std::vector<std::uint8_t>> write_queue;
  std::size_t write_offset = 0;  // Sent bytes of the front frame.
  bool close_after_flush = false;
  bool closed = false;
};

ExplainServer::ExplainServer(const ExplainServerOptions& options,
                             ThreadPool* pool)
    : options_(options),
      pool_(pool),
      request_histogram_(
          &MetricsRegistry::Global().GetHistogram("serve.request")),
      queue_wait_histogram_(
          &MetricsRegistry::Global().GetHistogram("serve.queue_wait")),
      write_histogram_(&MetricsRegistry::Global().GetHistogram("net.write")),
      score_request_histogram_(
          &MetricsRegistry::Global().GetHistogram("serve.request.score")),
      explain_request_histogram_(
          &MetricsRegistry::Global().GetHistogram("serve.request.explain")),
      stats_request_histogram_(
          &MetricsRegistry::Global().GetHistogram("serve.request.stats")),
      bytes_received_(
          &MetricsRegistry::Global().GetCounter("net.bytes_received")),
      bytes_sent_(&MetricsRegistry::Global().GetCounter("net.bytes_sent")),
      connections_gauge_(
          &MetricsRegistry::Global().GetGauge("serve.connections")) {}

ExplainServer::~ExplainServer() { Stop(); }

void ExplainServer::RegisterService(ScoringService& service) {
  services_[service.detector_name()] = &service;
}

void ExplainServer::RegisterExplainer(const std::string& name,
                                      const PointExplainer& explainer) {
  explainers_[name] = &explainer;
}

bool ExplainServer::Start(std::string* error) {
  std::lock_guard<std::mutex> lifecycle(lifecycle_mutex_);
  if (loop_thread_.joinable()) {
    if (error != nullptr) *error = "server already running";
    return false;
  }
  if (options_.queue_capacity == 0) {
    if (error != nullptr) *error = "queue_capacity must be >= 1";
    return false;
  }
  listener_ = ListenTcp(options_.host, options_.port, options_.listen_backlog,
                        &port_, error);
  if (!listener_.valid()) return false;
  if (!MakeWakePipe(&wake_read_, &wake_write_, error)) return false;
  stop_requested_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  loop_thread_ = std::thread(&ExplainServer::Loop, this);
  return true;
}

void ExplainServer::Stop() {
  std::lock_guard<std::mutex> lifecycle(lifecycle_mutex_);
  if (!loop_thread_.joinable()) return;
  stop_requested_.store(true, std::memory_order_release);
  Wake();
  loop_thread_.join();
  running_.store(false, std::memory_order_release);
  // The drain deadline bounds how long the loop waits for handlers, not
  // handler lifetime: wait out any stragglers before closing the wake pipe
  // they may still write to.
  while (in_flight_.load(std::memory_order_acquire) != 0) {
    std::this_thread::yield();
  }
  wake_read_.Close();
  wake_write_.Close();
}

ServerStatsSnapshot ExplainServer::stats() const {
  ServerStatsSnapshot snap;
  snap.connections_accepted =
      connections_accepted_.load(std::memory_order_relaxed);
  snap.connections_closed = connections_closed_.load(std::memory_order_relaxed);
  snap.requests_admitted = requests_admitted_.load(std::memory_order_relaxed);
  snap.responses_sent = responses_sent_.load(std::memory_order_relaxed);
  snap.busy_rejections = busy_rejections_.load(std::memory_order_relaxed);
  snap.protocol_errors = protocol_errors_.load(std::memory_order_relaxed);
  snap.timeouts = timeouts_.load(std::memory_order_relaxed);
  return snap;
}

void ExplainServer::Wake() {
  const std::uint8_t byte = 1;
  // EAGAIN means the pipe already holds unread wake bytes — good enough.
  [[maybe_unused]] const ssize_t n = ::write(wake_write_.fd(), &byte, 1);
}

void ExplainServer::Loop() {
  std::vector<pollfd> pfds;
  std::vector<std::shared_ptr<Connection>> polled;
  bool draining = false;
  Clock::time_point drain_deadline{};

  while (true) {
    if (!draining && stop_requested_.load(std::memory_order_acquire)) {
      draining = true;
      drain_deadline =
          Clock::now() + std::chrono::milliseconds(options_.drain_timeout_ms);
      listener_.Close();  // No new connections; stop reading below.
    }

    pfds.clear();
    polled.clear();
    pfds.push_back(pollfd{wake_read_.fd(), POLLIN, 0});
    if (listener_.valid()) {
      pfds.push_back(pollfd{listener_.fd(), POLLIN, 0});
    }
    for (auto& [fd, conn] : connections_) {
      short events = 0;
      if (!draining) events |= POLLIN;
      {
        std::lock_guard<std::mutex> lock(conn->mutex);
        if (!conn->write_queue.empty()) events |= POLLOUT;
      }
      pfds.push_back(pollfd{fd, events, 0});
      polled.push_back(conn);
    }

    int timeout_ms = -1;
    if (draining) {
      timeout_ms = 10;
    } else if (!connections_.empty() && options_.idle_timeout_ms > 0) {
      timeout_ms = std::min(options_.idle_timeout_ms, 250);
    }
    const int ready = ::poll(pfds.data(), static_cast<nfds_t>(pfds.size()),
                             timeout_ms);
    if (ready < 0 && errno != EINTR && errno != EAGAIN) break;

    if (pfds[0].revents & POLLIN) {
      std::uint8_t buf[256];
      while (::read(wake_read_.fd(), buf, sizeof(buf)) > 0) {
      }
    }
    std::size_t index = 1;
    if (listener_.valid()) {
      if (pfds[index].revents & POLLIN) AcceptNewConnections();
      ++index;
    }

    for (std::size_t i = 0; i < polled.size(); ++i) {
      const std::shared_ptr<Connection>& conn = polled[i];
      const short revents = pfds[index + i].revents;
      bool alive = true;
      if (revents & POLLOUT) alive = HandleWritable(conn);
      if (alive && (revents & POLLIN)) alive = HandleReadable(conn);
      if (alive && (revents & (POLLERR | POLLNVAL))) alive = false;
      if (alive && (revents & POLLHUP) && !(revents & POLLIN)) alive = false;
      if (alive) {
        std::lock_guard<std::mutex> lock(conn->mutex);
        if (conn->close_after_flush && conn->write_queue.empty() &&
            conn->in_flight.load(std::memory_order_acquire) == 0) {
          alive = false;
        }
      }
      if (!alive) CloseConnection(conn);
    }

    if (!draining && options_.idle_timeout_ms > 0) {
      const Clock::time_point now = Clock::now();
      const auto limit = std::chrono::milliseconds(options_.idle_timeout_ms);
      // Snapshot first: CloseConnection mutates the map.
      std::vector<std::shared_ptr<Connection>> idle;
      for (auto& [fd, conn] : connections_) {
        if (conn->in_flight.load(std::memory_order_acquire) == 0 &&
            now - conn->last_progress > limit) {
          idle.push_back(conn);
        }
      }
      for (const std::shared_ptr<Connection>& conn : idle) {
        timeouts_.fetch_add(1, std::memory_order_relaxed);
        CloseConnection(conn);
      }
    }

    if (draining) {
      bool flushed = in_flight_.load(std::memory_order_acquire) == 0;
      if (flushed) {
        for (auto& [fd, conn] : connections_) {
          std::lock_guard<std::mutex> lock(conn->mutex);
          if (!conn->write_queue.empty()) {
            flushed = false;
            break;
          }
        }
      }
      if (flushed || Clock::now() > drain_deadline) break;
    }
  }

  std::vector<std::shared_ptr<Connection>> remaining;
  remaining.reserve(connections_.size());
  for (auto& [fd, conn] : connections_) remaining.push_back(conn);
  for (const std::shared_ptr<Connection>& conn : remaining) {
    CloseConnection(conn);
  }
}

void ExplainServer::AcceptNewConnections() {
  while (true) {
    const int fd = ::accept(listener_.fd(), nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // EAGAIN/EWOULDBLOCK: accepted everything pending.
    }
    Socket socket(fd);
    if (!SetNonBlocking(fd, true)) continue;  // Drops the connection.
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    connections_gauge_->Add(1);
    connections_.emplace(fd, std::make_shared<Connection>(
                                 std::move(socket), options_.max_frame_bytes));
  }
}

bool ExplainServer::HandleReadable(const std::shared_ptr<Connection>& conn) {
  std::uint8_t buf[16384];
  while (true) {
    const ssize_t n = ::recv(conn->socket.fd(), buf, sizeof(buf), 0);
    if (n > 0) {
      conn->last_progress = Clock::now();
      bytes_received_->Increment(static_cast<std::uint64_t>(n));
      conn->decoder.Feed(buf, static_cast<std::size_t>(n));
      if (static_cast<std::size_t>(n) < sizeof(buf)) break;
    } else if (n == 0) {
      return false;  // Orderly EOF from the peer.
    } else {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      return false;
    }
  }
  std::vector<std::uint8_t> payload;
  while (conn->decoder.Next(&payload)) {
    DispatchFrame(conn, std::move(payload));
    std::lock_guard<std::mutex> lock(conn->mutex);
    if (conn->close_after_flush) return true;  // Stop parsing a bad stream.
  }
  if (conn->decoder.error()) {
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    EnqueueResponse(conn, EncodeError(0, "frame exceeds maximum size"));
    std::lock_guard<std::mutex> lock(conn->mutex);
    conn->close_after_flush = true;
  }
  return true;
}

bool ExplainServer::HandleWritable(const std::shared_ptr<Connection>& conn) {
  std::lock_guard<std::mutex> lock(conn->mutex);
  TraceSpan flush(conn->write_queue.empty() ? nullptr : write_histogram_);
  while (!conn->write_queue.empty()) {
    const std::vector<std::uint8_t>& front = conn->write_queue.front();
    const ssize_t n =
        ::send(conn->socket.fd(), front.data() + conn->write_offset,
               front.size() - conn->write_offset, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      return false;
    }
    conn->last_progress = Clock::now();
    bytes_sent_->Increment(static_cast<std::uint64_t>(n));
    conn->write_offset += static_cast<std::size_t>(n);
    if (conn->write_offset == front.size()) {
      conn->write_queue.pop_front();
      conn->write_offset = 0;
      responses_sent_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  return true;
}

void ExplainServer::DispatchFrame(const std::shared_ptr<Connection>& conn,
                                  std::vector<std::uint8_t> payload) {
  WireReader reader(payload);
  MessageHeader header;
  if (!DecodeHeader(reader, &header) ||
      header.version != kProtocolVersion || !IsRequestType(header.type)) {
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    EnqueueResponse(conn,
                    EncodeError(header.request_id, "malformed request header"));
    std::lock_guard<std::mutex> lock(conn->mutex);
    conn->close_after_flush = true;
    return;
  }

  // Admission control: the bounded queue is a counter, not a buffer — at
  // capacity the reply is an immediate kBusy and nothing is retained.
  std::size_t current = in_flight_.load(std::memory_order_relaxed);
  do {
    if (current >= options_.queue_capacity) {
      busy_rejections_.fetch_add(1, std::memory_order_relaxed);
      EnqueueResponse(conn, EncodeBusy(header.request_id));
      return;
    }
  } while (!in_flight_.compare_exchange_weak(current, current + 1,
                                             std::memory_order_acquire,
                                             std::memory_order_relaxed));
  requests_admitted_.fetch_add(1, std::memory_order_relaxed);
  conn->in_flight.fetch_add(1, std::memory_order_acq_rel);
  const Clock::time_point admitted = Clock::now();

  if (pool_ != nullptr) {
    pool_->Submit(
        [this, conn, header, admitted, body = std::move(payload)]() mutable {
          HandleRequest(conn, header, std::move(body), admitted);
        });
  } else {
    HandleRequest(conn, header, std::move(payload), admitted);
  }
}

void ExplainServer::HandleRequest(const std::shared_ptr<Connection>& conn,
                                  MessageHeader header,
                                  std::vector<std::uint8_t> payload,
                                  Clock::time_point admitted) {
  queue_wait_histogram_->Record(NsSince(admitted));
  WireReader reader(payload.data() + kMessageHeaderBytes,
                    payload.size() - kMessageHeaderBytes);
  std::vector<std::uint8_t> response;
  try {
    response = ComputeResponse(header, reader);
  } catch (const std::exception& e) {
    response = EncodeError(header.request_id,
                           std::string("handler exception: ") + e.what());
  }
  EnqueueResponse(conn, std::move(response));
  const std::uint64_t end_to_end_ns = NsSince(admitted);
  request_histogram_->Record(end_to_end_ns);
  switch (header.type) {
    case MessageType::kScore:
      score_request_histogram_->Record(end_to_end_ns);
      break;
    case MessageType::kExplain:
      explain_request_histogram_->Record(end_to_end_ns);
      break;
    case MessageType::kStats:
      stats_request_histogram_->Record(end_to_end_ns);
      break;
    default:
      break;
  }
  conn->in_flight.fetch_sub(1, std::memory_order_acq_rel);
  in_flight_.fetch_sub(1, std::memory_order_release);
  Wake();
}

std::vector<std::uint8_t> ExplainServer::ComputeResponse(
    const MessageHeader& header, WireReader& reader) {
  switch (header.type) {
    case MessageType::kScore:
      return HandleScore(header.request_id, reader);
    case MessageType::kExplain:
      return HandleExplain(header.request_id, reader);
    case MessageType::kStats:
      return HandleStats(header.request_id);
    default:
      return EncodeError(header.request_id, "unsupported request type");
  }
}

namespace {

/// Features must address columns of the service's dataset; an out-of-range
/// id would be undefined behavior deep inside a detector.
bool SubspaceInRange(const Subspace& subspace, std::size_t num_features) {
  for (const FeatureId f : subspace.features()) {
    if (f < 0 || static_cast<std::size_t>(f) >= num_features) return false;
  }
  return true;
}

}  // namespace

std::vector<std::uint8_t> ExplainServer::HandleScore(std::uint64_t request_id,
                                                     WireReader& reader) {
  ScoreRequest request;
  if (!DecodeScoreRequest(reader, &request)) {
    return EncodeError(request_id, "malformed kScore body");
  }
  const auto it = services_.find(request.detector);
  if (it == services_.end()) {
    return EncodeError(request_id, "unknown detector: " + request.detector);
  }
  ScoringService& service = *it->second;
  if (!SubspaceInRange(request.subspace, service.data().num_features())) {
    return EncodeError(request_id, "subspace feature out of range");
  }
  const ScoreVectorPtr scores = service.Score(request.subspace);
  ScoreResult result;
  result.scores = *scores;
  return EncodeScoreResult(request_id, result);
}

std::vector<std::uint8_t> ExplainServer::HandleExplain(std::uint64_t request_id,
                                                       WireReader& reader) {
  ExplainRequest request;
  if (!DecodeExplainRequest(reader, &request)) {
    return EncodeError(request_id, "malformed kExplain body");
  }
  const auto service_it = services_.find(request.detector);
  if (service_it == services_.end()) {
    return EncodeError(request_id, "unknown detector: " + request.detector);
  }
  const auto explainer_it = explainers_.find(request.explainer);
  if (explainer_it == explainers_.end()) {
    return EncodeError(request_id, "unknown explainer: " + request.explainer);
  }
  ScoringService& service = *service_it->second;
  const Dataset& data = service.data();
  if (request.point < 0 ||
      static_cast<std::size_t>(request.point) >= data.num_points()) {
    return EncodeError(request_id, "point index out of range");
  }
  if (request.target_dim < 2 ||
      static_cast<std::size_t>(request.target_dim) > data.num_features()) {
    return EncodeError(request_id, "target_dim out of range");
  }
  // Scoring routes through the service, so concurrent explanations share
  // the cache and single-flight deduplication.
  CachingDetector cached(service);
  ExplainResult result;
  result.ranking = explainer_it->second->Explain(data, cached, request.point,
                                                 request.target_dim);
  if (request.max_results > 0 && result.ranking.size() > request.max_results) {
    result.ranking.subspaces.resize(request.max_results);
    result.ranking.scores.resize(request.max_results);
  }
  return EncodeExplainResult(request_id, result);
}

std::vector<std::uint8_t> ExplainServer::HandleStats(std::uint64_t request_id) {
  JsonObject services;
  for (const auto& [name, service] : services_) {
    services.AddRaw(name, service->stats().ToJson());
  }
  TextResult result;
  result.text = JsonObject()
                    .AddRaw("server", stats().ToJson())
                    .AddRaw("services", services.Build())
                    .AddRaw("metrics", MetricsRegistry::Global().ToJson())
                    .AddRaw("mem", EvictionManager::Global().snapshot().ToJson())
                    .Build();
  return EncodeStatsResult(request_id, result);
}

void ExplainServer::EnqueueResponse(const std::shared_ptr<Connection>& conn,
                                    std::vector<std::uint8_t> payload) {
  std::vector<std::uint8_t> frame = EncodeFrame(payload);
  {
    std::lock_guard<std::mutex> lock(conn->mutex);
    if (conn->closed) return;  // Peer already gone; drop the response.
    conn->write_queue.push_back(std::move(frame));
  }
  Wake();
}

void ExplainServer::CloseConnection(const std::shared_ptr<Connection>& conn) {
  {
    std::lock_guard<std::mutex> lock(conn->mutex);
    if (conn->closed) return;
    conn->closed = true;
    conn->write_queue.clear();
  }
  const int fd = conn->socket.fd();
  conn->socket.Close();
  connections_.erase(fd);
  connections_closed_.fetch_add(1, std::memory_order_relaxed);
  connections_gauge_->Add(-1);
}

}  // namespace subex
