#ifndef SUBEX_SERVE_SCORING_SERVICE_H_
#define SUBEX_SERVE_SCORING_SERVICE_H_

#include <future>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/thread_pool.h"
#include "data/dataset.h"
#include "detect/detector.h"
#include "obs/metrics.h"
#include "prof/perf_counters.h"
#include "serve/score_cache.h"
#include "serve/service_stats.h"
#include "subspace/subspace.h"

namespace subex {

/// Knobs of a `ScoringService`.
struct ScoringServiceOptions {
  /// False disables memoization: every unique request computes, but
  /// single-flight deduplication of concurrent identical requests stays on.
  bool enable_cache = true;
  /// Cache sizing (ignored when an external cache is supplied).
  ScoreCacheOptions cache;
};

/// Concurrent, memoizing scoring backend: owns one detector + one dataset
/// and serves the **standardized** score vector of any subspace, the exact
/// bytes `ScoreStandardized(detector, data, subspace)` would produce.
///
/// Three mechanisms make repeated/overlapping scoring cheap:
///  * a sharded LRU `ScoreCache` keyed by `(detector name, subspace)`
///    remembers recently served vectors within an entry/byte budget;
///  * **single-flight deduplication**: concurrent requests for the same
///    uncached subspace block on one in-flight computation (a
///    `shared_future` per key) instead of recomputing it N times;
///  * `ScoreMany` fans the *unique uncached* keys of a batch out over a
///    `ThreadPool` with dynamic balancing.
///
/// All methods are safe to call concurrently. Determinism: detectors are
/// pure (stochastic ones seed from the subspace identity), so a cached
/// vector is bitwise identical to a fresh computation. The referenced
/// detector, dataset, cache and pool must outlive the service.
class ScoringService {
 public:
  /// Service with its own private cache sized by `options.cache`.
  ScoringService(const Detector& detector, const Dataset& data,
                 const ScoringServiceOptions& options = {},
                 ThreadPool* pool = nullptr);

  /// Service sharing an external cache (e.g. one budget across several
  /// detectors); `cache` may be null for a pure single-flight service.
  ScoringService(const Detector& detector, const Dataset& data,
                 std::shared_ptr<ScoreCache> cache, ThreadPool* pool = nullptr);

  ScoringService(const ScoringService&) = delete;
  ScoringService& operator=(const ScoringService&) = delete;

  /// Standardized scores of every dataset point within `subspace`. Served
  /// from cache when possible; otherwise computed once, even under
  /// concurrent identical requests.
  ScoreVectorPtr Score(const Subspace& subspace);

  /// Batch variant: scores each requested subspace, computing the unique
  /// uncached ones in parallel on the pool (sequentially without one).
  /// `results[i]` corresponds to `subspaces[i]`; duplicates share one
  /// computation.
  std::vector<ScoreVectorPtr> ScoreMany(std::span<const Subspace> subspaces);

  /// Counter snapshot (hits/misses/dedup-joins/evictions/compute-ns).
  ServiceStatsSnapshot stats() const { return stats_->snapshot(); }
  /// Zeroes the counters (e.g. between benchmark phases).
  void ResetStats() { stats_->Reset(); }

  const Detector& detector() const { return detector_; }
  const Dataset& data() const { return data_; }
  /// The detector's display name, also the cache key prefix.
  const std::string& detector_name() const { return detector_name_; }
  ThreadPool* pool() const { return pool_; }
  /// The underlying cache (null when constructed cache-less).
  const std::shared_ptr<ScoreCache>& cache() const { return cache_; }

 private:
  ScoreVectorPtr ComputeAndPublish(const ScoreKey& key,
                                   std::promise<ScoreVectorPtr>& promise);

  const Detector& detector_;
  const Dataset& data_;
  std::string detector_name_;
  std::shared_ptr<ServiceStats> stats_;
  std::shared_ptr<ScoreCache> cache_;
  ThreadPool* pool_;
  /// Global-registry latency histograms fed per fresh computation:
  /// `detect.score` across all detectors plus `detect.score.<name>`.
  Histogram* score_histogram_;
  Histogram* detector_histogram_;
  /// Hardware-counter instruments of this detector's score kernel
  /// (`prof.*.detect.<name>`), fed by a `CounterSpan` around each fresh
  /// computation; zeros when perf counters are unavailable.
  ProfCounterSet prof_counters_;

  std::mutex inflight_mutex_;
  std::unordered_map<ScoreKey, std::shared_future<ScoreVectorPtr>,
                     ScoreKeyHash>
      inflight_;
};

/// `Detector` adapter routing `Score` through a `ScoringService`, so every
/// existing explainer/pipeline/builder taking `const Detector&` gains
/// caching + deduplication without code changes. Returns the service's
/// standardized vectors and reports `ReturnsStandardizedScores() == true`,
/// so `ScoreStandardized(adapter, ...)` passes them through bitwise-intact.
/// Only valid for the service's own dataset (checked).
class CachingDetector : public Detector {
 public:
  explicit CachingDetector(ScoringService& service) : service_(service) {}

  std::string name() const override { return service_.detector_name(); }
  std::vector<double> Score(const Dataset& data,
                            const Subspace& subspace) const override;
  bool ReturnsStandardizedScores() const override { return true; }

  ScoringService& service() const { return service_; }

 private:
  ScoringService& service_;
};

}  // namespace subex

#endif  // SUBEX_SERVE_SCORING_SERVICE_H_
