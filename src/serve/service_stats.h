#ifndef SUBEX_SERVE_SERVICE_STATS_H_
#define SUBEX_SERVE_SERVICE_STATS_H_

#include <atomic>
#include <cstdint>
#include <string>

namespace subex {

/// Point-in-time view of a scoring service's counters, with the derived
/// quantities reports print. Copyable plain data.
struct ServiceStatsSnapshot {
  std::uint64_t hits = 0;         ///< Requests served from the cache.
  std::uint64_t misses = 0;       ///< Requests that computed fresh scores.
  std::uint64_t dedup_joins = 0;  ///< Requests that joined an in-flight
                                  ///< computation instead of recomputing.
  std::uint64_t evictions = 0;    ///< Entries evicted to stay in budget.
  std::uint64_t compute_ns = 0;   ///< Total nanoseconds spent in Score.

  /// Total requests answered (hits + misses + dedup joins).
  std::uint64_t Requests() const { return hits + misses + dedup_joins; }
  /// Fraction of requests not paying a fresh computation, in [0, 1]
  /// (0 when no requests were served).
  double HitRate() const;
  /// Seconds spent computing scores (the cache-miss cost).
  double ComputeSeconds() const {
    return static_cast<double>(compute_ns) * 1e-9;
  }
  /// One-line summary, e.g.
  /// "1234 hits / 56 misses / 7 joins (hit rate 95.1%), 0 evictions,
  ///  compute 1.23s".
  std::string ToString() const;
  /// Machine-readable form for the `kStats` network endpoint and the
  /// benches' `--stats`/`--json` output, e.g.
  /// `{"hits":1234,...,"hit_rate":0.951,"compute_seconds":1.23}`.
  std::string ToJson() const;
};

/// Thread-safe counters of a scoring service. All mutators are lock-free
/// atomics so they can sit on the hot path of every request; `snapshot`
/// reads each counter individually (the snapshot is not required to be a
/// single consistent instant, which is fine for reporting).
class ServiceStats {
 public:
  void RecordHit() { hits_.fetch_add(1, std::memory_order_relaxed); }
  void RecordMiss() { misses_.fetch_add(1, std::memory_order_relaxed); }
  void RecordDedupJoin() {
    dedup_joins_.fetch_add(1, std::memory_order_relaxed);
  }
  void RecordEviction() { evictions_.fetch_add(1, std::memory_order_relaxed); }
  void RecordComputeNs(std::uint64_t ns) {
    compute_ns_.fetch_add(ns, std::memory_order_relaxed);
  }

  ServiceStatsSnapshot snapshot() const;
  /// Zeroes every counter (e.g. between benchmark phases).
  void Reset();

 private:
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> dedup_joins_{0};
  std::atomic<std::uint64_t> evictions_{0};
  std::atomic<std::uint64_t> compute_ns_{0};
};

}  // namespace subex

#endif  // SUBEX_SERVE_SERVICE_STATS_H_
