#include "serve/service_stats.h"

#include <cstdio>

#include "common/json.h"

namespace subex {

double ServiceStatsSnapshot::HitRate() const {
  const std::uint64_t total = Requests();
  if (total == 0) return 0.0;
  return static_cast<double>(hits + dedup_joins) / static_cast<double>(total);
}

std::string ServiceStatsSnapshot::ToString() const {
  char buffer[192];
  std::snprintf(buffer, sizeof(buffer),
                "%llu hits / %llu misses / %llu joins (hit rate %.1f%%), "
                "%llu evictions, compute %.2fs",
                static_cast<unsigned long long>(hits),
                static_cast<unsigned long long>(misses),
                static_cast<unsigned long long>(dedup_joins),
                HitRate() * 100.0,
                static_cast<unsigned long long>(evictions), ComputeSeconds());
  return buffer;
}

std::string ServiceStatsSnapshot::ToJson() const {
  return JsonObject()
      .Add("hits", hits)
      .Add("misses", misses)
      .Add("dedup_joins", dedup_joins)
      .Add("evictions", evictions)
      .Add("requests", Requests())
      .Add("hit_rate", HitRate())
      .Add("compute_seconds", ComputeSeconds())
      .Build();
}

ServiceStatsSnapshot ServiceStats::snapshot() const {
  ServiceStatsSnapshot s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.dedup_joins = dedup_joins_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.compute_ns = compute_ns_.load(std::memory_order_relaxed);
  return s;
}

void ServiceStats::Reset() {
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
  dedup_joins_.store(0, std::memory_order_relaxed);
  evictions_.store(0, std::memory_order_relaxed);
  compute_ns_.store(0, std::memory_order_relaxed);
}

}  // namespace subex
