#include "serve/score_cache.h"

#include <algorithm>
#include <functional>
#include <limits>
#include <utility>

#include "common/check.h"
#include "fault/fault.h"

namespace subex {

std::size_t ScoreKeyHash::operator()(const ScoreKey& key) const {
  std::size_t h = std::hash<std::string>{}(key.detector);
  // Boost-style combine with the subspace hash.
  h ^= SubspaceHash{}(key.subspace) + 0x9e3779b97f4a7c15ull + (h << 6) +
       (h >> 2);
  return h;
}

std::size_t EstimateEntryBytes(const ScoreKey& key, const ScoreVectorPtr& v) {
  // List node, index slot and control-block overhead, flat-rated.
  std::size_t total = 96;
  total += key.detector.size();
  total += key.subspace.size() * sizeof(FeatureId);
  if (v != nullptr) total += v->size() * sizeof(double) + sizeof(*v);
  return total;
}

ScoreCache::ScoreCache(const ScoreCacheOptions& options, ServiceStats* stats)
    : options_(options), stats_(stats), manager_(options.manager) {
  SUBEX_CHECK(options.num_shards >= 1);
  shards_.reserve(options.num_shards);
  // Budgets are split exactly: every shard gets the floored share and the
  // remainder is spread one-per-shard, so the shard totals equal the
  // configured totals — a small budget with many shards can therefore
  // leave trailing shards with a zero cap (they then cache nothing) rather
  // than letting the cache exceed its budget.
  const std::size_t entry_base = options.max_entries / options.num_shards;
  const std::size_t entry_rem = options.max_entries % options.num_shards;
  const std::size_t byte_base = options.max_bytes / options.num_shards;
  const std::size_t byte_rem = options.max_bytes % options.num_shards;
  for (std::size_t i = 0; i < options.num_shards; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->max_entries = entry_base + (i < entry_rem ? 1 : 0);
    shard->max_bytes = options.max_bytes == 0
                           ? std::numeric_limits<std::size_t>::max()
                           : byte_base + (i < byte_rem ? 1 : 0);
    shards_.push_back(std::move(shard));
  }
  if (manager_ != nullptr) {
    cache_id_ = manager_->Register(options.name, options.max_bytes, this);
  }
}

ScoreCache::~ScoreCache() {
  if (manager_ != nullptr) manager_->Unregister(cache_id_);
}

ScoreCache::Shard& ScoreCache::ShardFor(const ScoreKey& key) {
  // Mix the hash before reducing so shard choice is independent of the
  // bits the per-shard unordered_map consumes.
  std::size_t h = ScoreKeyHash{}(key);
  h ^= h >> 29;
  h *= 0xbf58476d1ce4e5b9ull;
  h ^= h >> 32;
  return *shards_[h % shards_.size()];
}

std::uint64_t ScoreCache::NextTick() {
  return manager_ != nullptr
             ? manager_->NextTick()
             : local_tick_.fetch_add(1, std::memory_order_relaxed);
}

ScoreVectorPtr ScoreCache::Get(const ScoreKey& key) {
  Shard& shard = ShardFor(key);
  const std::uint64_t tick = NextTick();
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) return nullptr;
  Entry& entry = *it->second;
  entry.tick = tick;
  shard.lru.MoveToFront(&entry.node);
  return entry.value;
}

void ScoreCache::Put(const ScoreKey& key, ScoreVectorPtr value) {
  const std::size_t entry_bytes = EstimateEntryBytes(key, value);
  Shard& shard = ShardFor(key);
  // Shard caps are immutable, so hopeless inserts bail before reserving.
  if (shard.max_entries == 0) return;
  if (entry_bytes > shard.max_bytes) return;
  // The cache is best-effort, so a dropped insert is always legal; the
  // injection point exercises every caller's cache-miss path.
  FaultAction fault_action;
  if (SUBEX_FAULT(FaultPoint::kCacheAdmit, &fault_action)) return;
  // Reserve global budget before taking the shard lock: the manager's
  // pressure pass may re-enter this cache (any shard) to make room.
  if (manager_ != nullptr &&
      !manager_->Reserve(cache_id_, entry_bytes, /*allow_overcommit=*/false)) {
    return;
  }
  std::size_t released = 0;  // Overwritten entry, returned to the manager.
  std::size_t evicted_bytes = 0;
  std::uint64_t evicted_entries = 0;
  {
    const std::uint64_t tick = NextTick();
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      Entry& entry = *it->second;
      shard.bytes -= entry.bytes;
      released = entry.bytes;
      entry.value = std::move(value);
      entry.bytes = entry_bytes;
      entry.tick = tick;
      shard.bytes += entry_bytes;
      shard.lru.MoveToFront(&entry.node);
    } else {
      auto entry = std::make_unique<Entry>();
      entry->key = key;
      entry->value = std::move(value);
      entry->bytes = entry_bytes;
      entry->tick = tick;
      entry->node.item = entry.get();
      shard.lru.PushFront(&entry->node);
      shard.bytes += entry_bytes;
      shard.index.emplace(key, std::move(entry));
    }
    evicted_bytes = EvictWhileOverBudget(shard, &evicted_entries);
  }
  if (manager_ != nullptr) {
    if (released > 0) manager_->Release(cache_id_, released);
    if (evicted_bytes > 0) {
      manager_->ReleaseEvicted(cache_id_, evicted_bytes, evicted_entries);
    }
  }
}

std::size_t ScoreCache::EvictOne(Shard& shard) {
  DListNode* tail = shard.lru.Tail();
  if (tail == nullptr) return 0;
  Entry& victim = *static_cast<Entry*>(tail->item);
  const std::size_t freed = victim.bytes;
  shard.bytes -= freed;
  shard.lru.Remove(tail);
  shard.index.erase(victim.key);  // Destroys the entry.
  if (stats_ != nullptr) stats_->RecordEviction();
  return freed;
}

std::size_t ScoreCache::EvictWhileOverBudget(Shard& shard,
                                             std::uint64_t* evicted) {
  std::size_t freed = 0;
  while (shard.index.size() > shard.max_entries ||
         (shard.bytes > shard.max_bytes && shard.index.size() > 1)) {
    freed += EvictOne(shard);
    ++*evicted;
  }
  return freed;
}

std::uint64_t ScoreCache::OldestEvictableTick() {
  std::uint64_t oldest = std::numeric_limits<std::uint64_t>::max();
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    const DListNode* tail = shard->lru.Tail();
    if (tail != nullptr) {
      oldest = std::min(oldest, static_cast<const Entry*>(tail->item)->tick);
    }
  }
  return oldest;
}

std::size_t ScoreCache::ReclaimBytes(std::size_t target_bytes) {
  std::size_t freed = 0;
  std::uint64_t entries = 0;
  while (freed < target_bytes) {
    // Evict the globally least-recent entry across shards: pick the shard
    // whose tail tick is oldest, then pop its tail. O(num_shards) per
    // eviction, which pressure passes can afford.
    Shard* oldest_shard = nullptr;
    std::uint64_t oldest_tick = std::numeric_limits<std::uint64_t>::max();
    for (const auto& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard->mutex);
      const DListNode* tail = shard->lru.Tail();
      if (tail == nullptr) continue;
      const std::uint64_t tick = static_cast<const Entry*>(tail->item)->tick;
      if (tick < oldest_tick) {
        oldest_tick = tick;
        oldest_shard = shard.get();
      }
    }
    if (oldest_shard == nullptr) break;  // Nothing left to evict.
    std::lock_guard<std::mutex> lock(oldest_shard->mutex);
    // The tail may have changed since the scan; evicting whatever is the
    // tail now is still LRU-accurate within this shard.
    const std::size_t evicted = EvictOne(*oldest_shard);
    if (evicted == 0) continue;
    freed += evicted;
    ++entries;
  }
  if (manager_ != nullptr && freed > 0) {
    manager_->ReleaseEvicted(cache_id_, freed, entries);
  }
  return freed;
}

std::size_t ScoreCache::EvictIf(
    const std::function<bool(const ScoreKey&)>& pred) {
  std::size_t freed = 0;
  std::uint64_t entries = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    for (auto it = shard->index.begin(); it != shard->index.end();) {
      if (!pred(it->first)) {
        ++it;
        continue;
      }
      Entry& victim = *it->second;
      freed += victim.bytes;
      shard->bytes -= victim.bytes;
      shard->lru.Remove(&victim.node);
      it = shard->index.erase(it);
      ++entries;
      if (stats_ != nullptr) stats_->RecordEviction();
    }
  }
  if (manager_ != nullptr && freed > 0) {
    manager_->ReleaseEvicted(cache_id_, freed, entries);
  }
  return entries;
}

std::size_t ScoreCache::size() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    total += shard->index.size();
  }
  return total;
}

std::size_t ScoreCache::bytes() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    total += shard->bytes;
  }
  return total;
}

void ScoreCache::Clear() {
  std::size_t released = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    while (shard->lru.Tail() != nullptr) {
      Entry& entry = *static_cast<Entry*>(shard->lru.Tail()->item);
      shard->lru.Remove(&entry.node);
    }
    shard->index.clear();
    released += shard->bytes;
    shard->bytes = 0;
  }
  if (manager_ != nullptr && released > 0) {
    manager_->Release(cache_id_, released);
  }
}

}  // namespace subex
