#include "serve/score_cache.h"

#include <algorithm>
#include <functional>
#include <utility>

#include "common/check.h"

namespace subex {

std::size_t ScoreKeyHash::operator()(const ScoreKey& key) const {
  std::size_t h = std::hash<std::string>{}(key.detector);
  // Boost-style combine with the subspace hash.
  h ^= SubspaceHash{}(key.subspace) + 0x9e3779b97f4a7c15ull + (h << 6) +
       (h >> 2);
  return h;
}

std::size_t EstimateEntryBytes(const ScoreKey& key, const ScoreVectorPtr& v) {
  // List node, index slot and control-block overhead, flat-rated.
  std::size_t total = 96;
  total += key.detector.size();
  total += key.subspace.size() * sizeof(FeatureId);
  if (v != nullptr) total += v->size() * sizeof(double) + sizeof(*v);
  return total;
}

ScoreCache::ScoreCache(const ScoreCacheOptions& options, ServiceStats* stats)
    : options_(options), stats_(stats) {
  SUBEX_CHECK(options.num_shards >= 1);
  shards_.reserve(options.num_shards);
  for (std::size_t i = 0; i < options.num_shards; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->max_entries =
        std::max<std::size_t>(options.max_entries / options.num_shards,
                              options.max_entries > 0 ? 1 : 0);
    shard->max_bytes = options.max_bytes / options.num_shards;
    shards_.push_back(std::move(shard));
  }
}

ScoreCache::Shard& ScoreCache::ShardFor(const ScoreKey& key) {
  // Mix the hash before reducing so shard choice is independent of the
  // bits the per-shard unordered_map consumes.
  std::size_t h = ScoreKeyHash{}(key);
  h ^= h >> 29;
  h *= 0xbf58476d1ce4e5b9ull;
  h ^= h >> 32;
  return *shards_[h % shards_.size()];
}

ScoreVectorPtr ScoreCache::Get(const ScoreKey& key) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) return nullptr;
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  return it->second->value;
}

void ScoreCache::Put(const ScoreKey& key, ScoreVectorPtr value) {
  const std::size_t entry_bytes = EstimateEntryBytes(key, value);
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  if (shard.max_entries == 0) return;
  if (shard.max_bytes > 0 && entry_bytes > shard.max_bytes) return;
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    shard.bytes -= it->second->bytes;
    it->second->value = std::move(value);
    it->second->bytes = entry_bytes;
    shard.bytes += entry_bytes;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  } else {
    shard.lru.push_front(Entry{key, std::move(value), entry_bytes});
    shard.index.emplace(key, shard.lru.begin());
    shard.bytes += entry_bytes;
  }
  EvictWhileOverBudget(shard);
}

void ScoreCache::EvictWhileOverBudget(Shard& shard) {
  while (shard.index.size() > shard.max_entries ||
         (shard.max_bytes > 0 && shard.bytes > shard.max_bytes &&
          shard.index.size() > 1)) {
    const Entry& victim = shard.lru.back();
    shard.bytes -= victim.bytes;
    shard.index.erase(victim.key);
    shard.lru.pop_back();
    if (stats_ != nullptr) stats_->RecordEviction();
  }
}

std::size_t ScoreCache::size() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    total += shard->index.size();
  }
  return total;
}

std::size_t ScoreCache::bytes() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    total += shard->bytes;
  }
  return total;
}

void ScoreCache::Clear() {
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    shard->lru.clear();
    shard->index.clear();
    shard->bytes = 0;
  }
}

}  // namespace subex
