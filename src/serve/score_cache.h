#ifndef SUBEX_SERVE_SCORE_CACHE_H_
#define SUBEX_SERVE_SCORE_CACHE_H_

#include <cstddef>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "serve/service_stats.h"
#include "subspace/subspace.h"

namespace subex {

/// Cache key: one detector's standardized score vector for one subspace of
/// one dataset. The dataset is implicit (a cache belongs to a service, or
/// the caller keys multiple datasets into separate caches); the detector
/// name is explicit so one cache may be shared by several services.
struct ScoreKey {
  std::string detector;
  Subspace subspace;

  friend bool operator==(const ScoreKey& a, const ScoreKey& b) {
    return a.detector == b.detector && a.subspace == b.subspace;
  }
};

/// Hash functor combining the detector name and subspace hashes.
struct ScoreKeyHash {
  std::size_t operator()(const ScoreKey& key) const;
};

/// Immutable cached value. shared_ptr lets readers keep using a vector the
/// cache has since evicted.
using ScoreVectorPtr = std::shared_ptr<const std::vector<double>>;

/// Sizing knobs of a `ScoreCache`. Both budgets are totals across all
/// shards; either may be the binding constraint.
struct ScoreCacheOptions {
  /// Number of independently locked shards. More shards = less contention;
  /// each gets `max_entries / num_shards` of the budgets (minimum 1 entry).
  std::size_t num_shards = 8;
  /// Maximum cached score vectors (0 forbids caching anything).
  std::size_t max_entries = 1 << 16;
  /// Approximate byte ceiling over keys + score vectors (0 = unbounded).
  std::size_t max_bytes = 256ull << 20;
};

/// Sharded, mutex-per-shard, LRU-bounded map from `(detector, subspace)` to
/// standardized score vectors.
///
/// Each shard guards an `unordered_map` plus an intrusive recency list with
/// one mutex; a key's shard is fixed by its hash, so two requests contend
/// only when they touch the same shard. Eviction is strict LRU per shard,
/// triggered whenever an insert pushes the shard over its entry or byte
/// budget. All methods are safe to call concurrently.
class ScoreCache {
 public:
  explicit ScoreCache(const ScoreCacheOptions& options = {},
                      ServiceStats* stats = nullptr);

  ScoreCache(const ScoreCache&) = delete;
  ScoreCache& operator=(const ScoreCache&) = delete;

  /// Returns the cached vector and marks it most-recently-used, or null on
  /// a miss. (Hit/miss accounting is the caller's job — a service probes
  /// the cache at several points per request and counts each request once.)
  ScoreVectorPtr Get(const ScoreKey& key);

  /// Inserts (or overwrites) `value`, evicting least-recently-used entries
  /// of the same shard while over budget. Values larger than the whole
  /// shard budget are simply not retained.
  void Put(const ScoreKey& key, ScoreVectorPtr value);

  /// Current number of cached vectors (sums shard sizes; approximate under
  /// concurrent mutation).
  std::size_t size() const;
  /// Current approximate byte footprint.
  std::size_t bytes() const;
  /// Drops every entry (stats counters are untouched).
  void Clear();

  const ScoreCacheOptions& options() const { return options_; }

 private:
  struct Entry {
    ScoreKey key;
    ScoreVectorPtr value;
    std::size_t bytes = 0;
  };
  // Front of `lru` = most recently used.
  struct Shard {
    mutable std::mutex mutex;
    std::list<Entry> lru;
    std::unordered_map<ScoreKey, std::list<Entry>::iterator, ScoreKeyHash>
        index;
    std::size_t bytes = 0;
    std::size_t max_entries = 0;
    std::size_t max_bytes = 0;
  };

  Shard& ShardFor(const ScoreKey& key);
  void EvictWhileOverBudget(Shard& shard);

  ScoreCacheOptions options_;
  ServiceStats* stats_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

/// Approximate heap footprint of one cache entry (key + vector + node
/// overhead), the unit of the byte budget.
std::size_t EstimateEntryBytes(const ScoreKey& key, const ScoreVectorPtr& v);

}  // namespace subex

#endif  // SUBEX_SERVE_SCORE_CACHE_H_
