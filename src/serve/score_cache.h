#ifndef SUBEX_SERVE_SCORE_CACHE_H_
#define SUBEX_SERVE_SCORE_CACHE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "mem/dlist.h"
#include "mem/eviction_manager.h"
#include "serve/service_stats.h"
#include "subspace/subspace.h"

namespace subex {

/// Cache key: one detector's standardized score vector for one subspace of
/// one dataset. The dataset is implicit (a cache belongs to a service, or
/// the caller keys multiple datasets into separate caches); the detector
/// name is explicit so one cache may be shared by several services.
struct ScoreKey {
  std::string detector;
  Subspace subspace;

  friend bool operator==(const ScoreKey& a, const ScoreKey& b) {
    return a.detector == b.detector && a.subspace == b.subspace;
  }
};

/// Hash functor combining the detector name and subspace hashes.
struct ScoreKeyHash {
  std::size_t operator()(const ScoreKey& key) const;
};

/// Immutable cached value. shared_ptr lets readers keep using a vector the
/// cache has since evicted.
using ScoreVectorPtr = std::shared_ptr<const std::vector<double>>;

/// Sizing knobs of a `ScoreCache`. Both budgets are totals across all
/// shards; either may be the binding constraint.
struct ScoreCacheOptions {
  /// Number of independently locked shards. More shards = less contention;
  /// the budgets are split across them (remainders spread one-per-shard),
  /// so the totals are never exceeded — which means budgets smaller than
  /// `num_shards` leave some shards unable to cache at all. Callers wanting
  /// tiny caches should use few shards.
  std::size_t num_shards = 8;
  /// Maximum cached score vectors (0 forbids caching anything).
  std::size_t max_entries = 1 << 16;
  /// Approximate byte ceiling over keys + score vectors (0 = unbounded).
  std::size_t max_bytes = 256ull << 20;
  /// When set, the cache registers with this `EvictionManager` under
  /// `name`, with `max_bytes` as its quota: inserts reserve budget first
  /// (and are dropped when the process-wide budget cannot make room), and
  /// pressure passes may evict this cache's LRU tail to relieve *other*
  /// caches. Null = self-governed (per-shard budgets only).
  EvictionManager* manager = nullptr;
  /// Display name for manager snapshots / kStats (need not be unique).
  std::string name = "score_cache";
};

/// Sharded, mutex-per-shard, LRU-bounded map from `(detector, subspace)` to
/// standardized score vectors.
///
/// Each shard guards an `unordered_map` plus an intrusive recency `DList`
/// with one mutex; a key's shard is fixed by its hash, so two requests
/// contend only when they touch the same shard. Eviction is strict LRU per
/// shard, triggered whenever an insert pushes the shard over its entry or
/// byte budget; under an `EvictionManager`, globally-LRU reclaim across
/// shards additionally serves process-wide memory pressure. All methods
/// are safe to call concurrently.
class ScoreCache : private MemReclaimer {
 public:
  explicit ScoreCache(const ScoreCacheOptions& options = {},
                      ServiceStats* stats = nullptr);
  ~ScoreCache() override;

  ScoreCache(const ScoreCache&) = delete;
  ScoreCache& operator=(const ScoreCache&) = delete;

  /// Returns the cached vector and marks it most-recently-used, or null on
  /// a miss. (Hit/miss accounting is the caller's job — a service probes
  /// the cache at several points per request and counts each request once.)
  ScoreVectorPtr Get(const ScoreKey& key);

  /// Inserts (or overwrites) `value`, evicting least-recently-used entries
  /// of the same shard while over budget. Values larger than the whole
  /// shard budget — or refused by the eviction manager — are simply not
  /// retained.
  void Put(const ScoreKey& key, ScoreVectorPtr value);

  /// Evicts every entry whose key satisfies `pred`, leaving the rest
  /// untouched — the targeted-invalidation primitive (e.g. dropping one
  /// window epoch's vectors without flushing the cache). Freed bytes are
  /// reported to the eviction manager as evictions. Returns the number of
  /// entries removed. `pred` runs under shard locks and must not reenter
  /// the cache.
  std::size_t EvictIf(const std::function<bool(const ScoreKey&)>& pred);

  /// Current number of cached vectors (sums shard sizes; approximate under
  /// concurrent mutation).
  std::size_t size() const;
  /// Current approximate byte footprint.
  std::size_t bytes() const;
  /// Drops every entry (stats counters are untouched).
  void Clear();

  const ScoreCacheOptions& options() const { return options_; }

 private:
  struct Entry {
    DListNode node;
    ScoreKey key;
    ScoreVectorPtr value;
    std::size_t bytes = 0;
    std::uint64_t tick = 0;
  };
  // DList front = most recently used; map owns the entries.
  struct Shard {
    mutable std::mutex mutex;
    DList lru;
    std::unordered_map<ScoreKey, std::unique_ptr<Entry>, ScoreKeyHash> index;
    std::size_t bytes = 0;
    std::size_t max_entries = 0;
    // SIZE_MAX = unbounded. Small per-shard slices are kept exact so the
    // cache-wide budget is a hard ceiling (no minimum-one-entry floor).
    std::size_t max_bytes = 0;
  };

  Shard& ShardFor(const ScoreKey& key);
  std::uint64_t NextTick();
  /// Evicts `shard`'s LRU tail while over its local budgets; returns the
  /// freed bytes and bumps `evicted` (caller reports to the manager after
  /// unlocking). Caller holds the shard mutex.
  std::size_t EvictWhileOverBudget(Shard& shard, std::uint64_t* evicted);
  /// Pops `shard`'s LRU tail; returns its bytes (0 when empty).
  std::size_t EvictOne(Shard& shard);

  // MemReclaimer (called by the manager during pressure passes):
  std::uint64_t OldestEvictableTick() override;
  std::size_t ReclaimBytes(std::size_t target_bytes) override;

  ScoreCacheOptions options_;
  ServiceStats* stats_;
  std::vector<std::unique_ptr<Shard>> shards_;
  EvictionManager* manager_ = nullptr;
  EvictionManager::CacheId cache_id_ = 0;
  /// Recency clock when self-governed (the manager's tick otherwise).
  std::atomic<std::uint64_t> local_tick_{1};
};

/// Approximate heap footprint of one cache entry (key + vector + node
/// overhead), the unit of the byte budget.
std::size_t EstimateEntryBytes(const ScoreKey& key, const ScoreVectorPtr& v);

}  // namespace subex

#endif  // SUBEX_SERVE_SCORE_CACHE_H_
