#include "serve/scoring_service.h"

#include <chrono>
#include <utility>

#include "common/check.h"
#include "common/json.h"
#include "obs/event_log.h"
#include "obs/registry.h"
#include "obs/trace.h"

namespace subex {
namespace {

using Clock = std::chrono::steady_clock;

std::uint64_t ElapsedNs(Clock::time_point start) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           start)
          .count());
}

/// A private cache's display name carries the detector, so eviction-manager
/// snapshots distinguish the per-service caches ("score_cache.LOF", ...).
ScoreCacheOptions NamedCacheOptions(ScoreCacheOptions options,
                                    const std::string& detector_name) {
  options.name += "." + detector_name;
  return options;
}

}  // namespace

ScoringService::ScoringService(const Detector& detector, const Dataset& data,
                               const ScoringServiceOptions& options,
                               ThreadPool* pool)
    : detector_(detector),
      data_(data),
      detector_name_(detector.name()),
      stats_(std::make_shared<ServiceStats>()),
      cache_(options.enable_cache
                 ? std::make_shared<ScoreCache>(
                       NamedCacheOptions(options.cache, detector_name_),
                       stats_.get())
                 : nullptr),
      pool_(pool),
      score_histogram_(&MetricsRegistry::Global().GetHistogram("detect.score")),
      detector_histogram_(&MetricsRegistry::Global().GetHistogram(
          "detect.score." + detector_name_)),
      prof_counters_(ProfCounterSet::ForKernel("detect." + detector_name_)) {}

ScoringService::ScoringService(const Detector& detector, const Dataset& data,
                               std::shared_ptr<ScoreCache> cache,
                               ThreadPool* pool)
    : detector_(detector),
      data_(data),
      detector_name_(detector.name()),
      stats_(std::make_shared<ServiceStats>()),
      cache_(std::move(cache)),
      pool_(pool),
      score_histogram_(&MetricsRegistry::Global().GetHistogram("detect.score")),
      detector_histogram_(&MetricsRegistry::Global().GetHistogram(
          "detect.score." + detector_name_)),
      prof_counters_(ProfCounterSet::ForKernel("detect." + detector_name_)) {}

ScoreVectorPtr ScoringService::Score(const Subspace& subspace) {
  ScoreKey key{detector_name_, subspace};
  if (cache_ != nullptr) {
    if (ScoreVectorPtr v = cache_->Get(key)) {
      stats_->RecordHit();
      return v;
    }
  }

  std::promise<ScoreVectorPtr> promise;
  std::shared_future<ScoreVectorPtr> future;
  bool leader = false;
  {
    std::lock_guard<std::mutex> lock(inflight_mutex_);
    // Re-probe under the lock: a leader may have published to the cache and
    // left the in-flight table between our miss above and here.
    if (cache_ != nullptr) {
      if (ScoreVectorPtr v = cache_->Get(key)) {
        stats_->RecordHit();
        return v;
      }
    }
    auto it = inflight_.find(key);
    if (it != inflight_.end()) {
      future = it->second;
    } else {
      future = promise.get_future().share();
      inflight_.emplace(key, future);
      leader = true;
    }
  }

  if (!leader) {
    stats_->RecordDedupJoin();
    // A stampede: this caller blocks on another thread's in-flight compute.
    SUBEX_EVENT(EventSeverity::kDebug, "cache.single_flight_join",
                JsonObject()
                    .Add("detector", detector_name_)
                    .Add("subspace_dims",
                         static_cast<std::uint64_t>(key.subspace.size()))
                    .Build());
    return future.get();
  }
  return ComputeAndPublish(key, promise);
}

ScoreVectorPtr ScoringService::ComputeAndPublish(
    const ScoreKey& key, std::promise<ScoreVectorPtr>& promise) {
  const auto start = Clock::now();
  ScoreVectorPtr value;
  try {
    // Wall clock via the histograms below; cycles/IPC/misses via the
    // counter span — together the per-kernel evidence the SIMD roadmap
    // item is judged against.
    CounterSpan prof_span(&prof_counters_);
    value = std::make_shared<const std::vector<double>>(
        ScoreStandardized(detector_, data_, key.subspace));
  } catch (...) {
    // Unblock joiners with the same failure, then surface it here.
    {
      std::lock_guard<std::mutex> lock(inflight_mutex_);
      inflight_.erase(key);
    }
    promise.set_exception(std::current_exception());
    throw;
  }
  const std::uint64_t compute_ns = ElapsedNs(start);
  stats_->RecordComputeNs(compute_ns);
  score_histogram_->Record(compute_ns);
  detector_histogram_->Record(compute_ns);
  // Attach the compute interval to the calling request's trace (the server
  // installs it around ComputeResponse); orphan span otherwise.
  RecordCompletedSpan("detect.score", start, compute_ns);
  stats_->RecordMiss();
  // Publish to the cache *before* retiring the in-flight entry so a request
  // arriving in between always finds one of the two — never a gap that
  // would trigger a duplicate computation.
  if (cache_ != nullptr) cache_->Put(key, value);
  {
    std::lock_guard<std::mutex> lock(inflight_mutex_);
    inflight_.erase(key);
  }
  promise.set_value(value);
  return value;
}

std::vector<ScoreVectorPtr> ScoringService::ScoreMany(
    std::span<const Subspace> subspaces) {
  std::vector<ScoreVectorPtr> results(subspaces.size());
  if (subspaces.empty()) return results;

  // Group duplicate subspaces: each unique key is requested once and fanned
  // back out, so batch-internal duplicates count as dedup joins.
  std::unordered_map<Subspace, std::vector<std::size_t>, SubspaceHash> groups;
  groups.reserve(subspaces.size());
  for (std::size_t i = 0; i < subspaces.size(); ++i) {
    auto& indices = groups[subspaces[i]];
    if (!indices.empty()) stats_->RecordDedupJoin();
    indices.push_back(i);
  }
  std::vector<const std::vector<std::size_t>*> fan_out;
  std::vector<const Subspace*> unique;
  unique.reserve(groups.size());
  fan_out.reserve(groups.size());
  for (const auto& [subspace, indices] : groups) {
    unique.push_back(&subspace);
    fan_out.push_back(&indices);
  }

  auto score_one = [&](std::size_t u) {
    ScoreVectorPtr v = Score(*unique[u]);
    for (std::size_t i : *fan_out[u]) results[i] = v;
  };
  if (pool_ != nullptr && pool_->num_threads() > 1 && unique.size() > 1) {
    pool_->ParallelFor(unique.size(), score_one);
  } else {
    for (std::size_t u = 0; u < unique.size(); ++u) score_one(u);
  }
  return results;
}

std::vector<double> CachingDetector::Score(const Dataset& data,
                                           const Subspace& subspace) const {
  SUBEX_CHECK_MSG(
      &data == &service_.data(),
      "CachingDetector queried with a dataset other than its service's");
  return *service_.Score(subspace);
}

}  // namespace subex
