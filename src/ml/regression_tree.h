#ifndef SUBEX_ML_REGRESSION_TREE_H_
#define SUBEX_ML_REGRESSION_TREE_H_

#include <span>
#include <vector>

#include "common/matrix.h"

namespace subex {

/// Options of the CART regression tree.
struct RegressionTreeOptions {
  int max_depth = 6;
  /// A split is accepted only if both children hold at least this many
  /// samples.
  int min_samples_per_leaf = 5;
  /// Minimum variance-reduction gain to split further.
  double min_gain = 1e-9;
};

/// CART regression tree (variance-reduction splits, axis-aligned
/// thresholds).
///
/// The substrate of the surrogate explainer (the paper's §6 future-work
/// direction): it approximates an unsupervised detector's score surface
/// with an interpretable model whose root-to-leaf paths are *minimal
/// predictive signatures* — the features that explain a point's predicted
/// outlyingness.
class RegressionTree {
 public:
  RegressionTree() = default;

  /// Fits the tree on rows of `x` against targets `y`
  /// (`y.size() == x.rows()`). Refitting replaces the previous tree.
  void Fit(const Matrix& x, std::span<const double> y,
           const RegressionTreeOptions& options = {});

  /// Predicted target for a feature row (length = trained width).
  double Predict(std::span<const double> row) const;

  /// Predictions for every row of `x`.
  std::vector<double> PredictAll(const Matrix& x) const;

  /// Per-feature importance: total variance reduction contributed by the
  /// splits on each feature, normalized to sum to 1 (all zeros if the tree
  /// is a single leaf).
  std::vector<double> FeatureImportances() const;

  /// Distinct features tested on the root-to-leaf decision path of `row`,
  /// in encounter order (the point's predictive signature).
  std::vector<int> DecisionPathFeatures(std::span<const double> row) const;

  /// Coefficient of determination (R^2) of the fit on (x, y); 1 = perfect.
  double RSquared(const Matrix& x, std::span<const double> y) const;

  /// Number of nodes (1 for a stump/leaf); 0 before `Fit`.
  std::size_t num_nodes() const { return nodes_.size(); }
  /// Number of features the tree was trained on.
  std::size_t num_features() const { return num_features_; }

 private:
  struct Node {
    int feature = -1;  // -1 marks a leaf.
    double threshold = 0.0;
    int left = -1;
    int right = -1;
    double value = 0.0;  // Leaf prediction.
    double gain = 0.0;   // Variance reduction of this split (0 for leaves).
  };

  int Build(const Matrix& x, std::span<const double> y,
            std::vector<int>& rows, int depth,
            const RegressionTreeOptions& options);

  std::vector<Node> nodes_;
  std::size_t num_features_ = 0;
};

}  // namespace subex

#endif  // SUBEX_ML_REGRESSION_TREE_H_
