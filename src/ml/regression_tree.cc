#include "ml/regression_tree.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/check.h"

namespace subex {
namespace {

double MeanOf(std::span<const double> y, const std::vector<int>& rows) {
  double sum = 0.0;
  for (int r : rows) sum += y[r];
  return rows.empty() ? 0.0 : sum / static_cast<double>(rows.size());
}

}  // namespace

void RegressionTree::Fit(const Matrix& x, std::span<const double> y,
                         const RegressionTreeOptions& options) {
  SUBEX_CHECK(x.rows() == y.size());
  SUBEX_CHECK(x.rows() >= 1);
  SUBEX_CHECK(options.max_depth >= 0);
  SUBEX_CHECK(options.min_samples_per_leaf >= 1);
  nodes_.clear();
  num_features_ = x.cols();
  std::vector<int> rows(x.rows());
  std::iota(rows.begin(), rows.end(), 0);
  Build(x, y, rows, 0, options);
}

int RegressionTree::Build(const Matrix& x, std::span<const double> y,
                          std::vector<int>& rows, int depth,
                          const RegressionTreeOptions& options) {
  const int index = static_cast<int>(nodes_.size());
  nodes_.emplace_back();
  nodes_[index].value = MeanOf(y, rows);

  const int n = static_cast<int>(rows.size());
  if (depth >= options.max_depth ||
      n < 2 * options.min_samples_per_leaf) {
    return index;
  }

  // Parent sum of squared deviations.
  double parent_sum = 0.0;
  double parent_sum_sq = 0.0;
  for (int r : rows) {
    parent_sum += y[r];
    parent_sum_sq += y[r] * y[r];
  }
  const double parent_ss =
      parent_sum_sq - parent_sum * parent_sum / static_cast<double>(n);
  if (parent_ss <= options.min_gain) return index;  // Already pure.

  // Best split: minimize left_ss + right_ss.
  double best_gain = options.min_gain;
  int best_feature = -1;
  double best_threshold = 0.0;
  std::vector<int> order(rows);
  for (std::size_t f = 0; f < x.cols(); ++f) {
    std::sort(order.begin(), order.end(), [&](int a, int b) {
      return x(a, f) < x(b, f);
    });
    double left_sum = 0.0;
    double left_sum_sq = 0.0;
    for (int i = 0; i < n - 1; ++i) {
      const int r = order[i];
      left_sum += y[r];
      left_sum_sq += y[r] * y[r];
      const int left_count = i + 1;
      const int right_count = n - left_count;
      if (left_count < options.min_samples_per_leaf ||
          right_count < options.min_samples_per_leaf) {
        continue;
      }
      // No split between equal feature values.
      if (x(order[i], f) == x(order[i + 1], f)) continue;
      const double right_sum = parent_sum - left_sum;
      const double right_sum_sq = parent_sum_sq - left_sum_sq;
      const double left_ss =
          left_sum_sq - left_sum * left_sum / left_count;
      const double right_ss =
          right_sum_sq - right_sum * right_sum / right_count;
      const double gain = parent_ss - left_ss - right_ss;
      if (gain > best_gain) {
        best_gain = gain;
        best_feature = static_cast<int>(f);
        best_threshold = 0.5 * (x(order[i], f) + x(order[i + 1], f));
      }
    }
  }
  if (best_feature < 0) return index;

  std::vector<int> left_rows;
  std::vector<int> right_rows;
  for (int r : rows) {
    (x(r, best_feature) < best_threshold ? left_rows : right_rows)
        .push_back(r);
  }
  const int left = Build(x, y, left_rows, depth + 1, options);
  const int right = Build(x, y, right_rows, depth + 1, options);
  nodes_[index].feature = best_feature;
  nodes_[index].threshold = best_threshold;
  nodes_[index].left = left;
  nodes_[index].right = right;
  nodes_[index].gain = best_gain;
  return index;
}

double RegressionTree::Predict(std::span<const double> row) const {
  SUBEX_CHECK_MSG(!nodes_.empty(), "Predict before Fit");
  SUBEX_CHECK(row.size() == num_features_);
  int node = 0;
  while (nodes_[node].feature >= 0) {
    node = row[nodes_[node].feature] < nodes_[node].threshold
               ? nodes_[node].left
               : nodes_[node].right;
  }
  return nodes_[node].value;
}

std::vector<double> RegressionTree::PredictAll(const Matrix& x) const {
  std::vector<double> out(x.rows());
  for (std::size_t r = 0; r < x.rows(); ++r) out[r] = Predict(x.Row(r));
  return out;
}

std::vector<double> RegressionTree::FeatureImportances() const {
  std::vector<double> importance(num_features_, 0.0);
  double total = 0.0;
  for (const Node& node : nodes_) {
    if (node.feature >= 0) {
      importance[node.feature] += node.gain;
      total += node.gain;
    }
  }
  if (total > 0.0) {
    for (double& v : importance) v /= total;
  }
  return importance;
}

std::vector<int> RegressionTree::DecisionPathFeatures(
    std::span<const double> row) const {
  SUBEX_CHECK_MSG(!nodes_.empty(), "DecisionPathFeatures before Fit");
  SUBEX_CHECK(row.size() == num_features_);
  std::vector<int> path;
  int node = 0;
  while (nodes_[node].feature >= 0) {
    const int f = nodes_[node].feature;
    if (std::find(path.begin(), path.end(), f) == path.end()) {
      path.push_back(f);
    }
    node = row[f] < nodes_[node].threshold ? nodes_[node].left
                                           : nodes_[node].right;
  }
  return path;
}

double RegressionTree::RSquared(const Matrix& x,
                                std::span<const double> y) const {
  SUBEX_CHECK(x.rows() == y.size());
  SUBEX_CHECK(!y.empty());
  double mean = 0.0;
  for (double v : y) mean += v;
  mean /= static_cast<double>(y.size());
  double ss_total = 0.0;
  double ss_residual = 0.0;
  for (std::size_t r = 0; r < x.rows(); ++r) {
    const double err = y[r] - Predict(x.Row(r));
    ss_residual += err * err;
    ss_total += (y[r] - mean) * (y[r] - mean);
  }
  if (ss_total <= 0.0) return ss_residual <= 1e-12 ? 1.0 : 0.0;
  return 1.0 - ss_residual / ss_total;
}

}  // namespace subex
