#include "stats/special_functions.h"

#include <cmath>
#include <limits>

#include "common/check.h"

namespace subex {
namespace {

// Continued-fraction evaluation for the incomplete beta function
// (modified Lentz's method). Converges quickly for x < (a+1)/(a+b+2).
double BetaContinuedFraction(double a, double b, double x) {
  constexpr int kMaxIterations = 300;
  constexpr double kEpsilon = 3.0e-14;
  constexpr double kTiny = 1.0e-300;

  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kTiny) d = kTiny;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIterations; ++m) {
    const int m2 = 2 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEpsilon) break;
  }
  return h;
}

}  // namespace

double RegularizedIncompleteBeta(double a, double b, double x) {
  SUBEX_CHECK(a > 0.0 && b > 0.0);
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  const double ln_front = std::lgamma(a + b) - std::lgamma(a) -
                          std::lgamma(b) + a * std::log(x) +
                          b * std::log1p(-x);
  const double front = std::exp(ln_front);
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * BetaContinuedFraction(a, b, x) / a;
  }
  // Use the symmetry I_x(a,b) = 1 - I_{1-x}(b,a) for faster convergence.
  return 1.0 - front * BetaContinuedFraction(b, a, 1.0 - x) / b;
}

double StudentTCdf(double t, double df) {
  SUBEX_CHECK(df > 0.0);
  if (std::isnan(t)) return std::numeric_limits<double>::quiet_NaN();
  if (std::isinf(t)) return t > 0 ? 1.0 : 0.0;
  const double x = df / (df + t * t);
  const double p = 0.5 * RegularizedIncompleteBeta(df / 2.0, 0.5, x);
  return t > 0.0 ? 1.0 - p : p;
}

double StudentTTwoSidedPValue(double t, double df) {
  SUBEX_CHECK(df > 0.0);
  if (std::isnan(t)) return std::numeric_limits<double>::quiet_NaN();
  if (std::isinf(t)) return 0.0;
  const double x = df / (df + t * t);
  return RegularizedIncompleteBeta(df / 2.0, 0.5, x);
}

double KolmogorovComplementaryCdf(double x) {
  if (x <= 0.0) return 1.0;
  if (x > 8.0) return 0.0;  // Below double underflow threshold anyway.
  double sum = 0.0;
  double sign = 1.0;
  for (int j = 1; j <= 100; ++j) {
    const double term = std::exp(-2.0 * j * j * x * x);
    sum += sign * term;
    if (term < 1e-16) break;
    sign = -sign;
  }
  const double q = 2.0 * sum;
  if (q < 0.0) return 0.0;
  if (q > 1.0) return 1.0;
  return q;
}

double NormalCdf(double x) { return 0.5 * std::erfc(-x / std::sqrt(2.0)); }

}  // namespace subex
