#ifndef SUBEX_STATS_DESCRIPTIVE_H_
#define SUBEX_STATS_DESCRIPTIVE_H_

#include <span>
#include <vector>

namespace subex {

/// Arithmetic mean. Returns 0 for an empty span.
double Mean(std::span<const double> values);

/// Unbiased sample variance (divides by n-1). Returns 0 for spans of size
/// 0 or 1.
double SampleVariance(std::span<const double> values);

/// Population variance (divides by n). Returns 0 for an empty span.
double PopulationVariance(std::span<const double> values);

/// Square root of the unbiased sample variance.
double SampleStdDev(std::span<const double> values);

/// Minimum value; requires a non-empty span.
double Min(std::span<const double> values);

/// Maximum value; requires a non-empty span.
double Max(std::span<const double> values);

/// Median (average of the two middle values for even sizes); requires a
/// non-empty span. Copies the input (does not reorder it).
double Median(std::span<const double> values);

/// Z-score standardization: `(v - mean) / stddev` element-wise, using the
/// population standard deviation, matching the per-subspace score
/// standardization of Eq. (score') in the paper. If the standard deviation is
/// ~0 (all scores equal, so no point stands out) all outputs are 0.
std::vector<double> Standardize(std::span<const double> values);

}  // namespace subex

#endif  // SUBEX_STATS_DESCRIPTIVE_H_
