#ifndef SUBEX_STATS_SPECIAL_FUNCTIONS_H_
#define SUBEX_STATS_SPECIAL_FUNCTIONS_H_

namespace subex {

/// Regularized incomplete beta function I_x(a, b) for a, b > 0 and
/// x in [0, 1], evaluated with the Lentz continued-fraction expansion
/// (Numerical Recipes style). Accurate to ~1e-12 over the parameter ranges
/// exercised by the statistical tests in this library.
double RegularizedIncompleteBeta(double a, double b, double x);

/// CDF of Student's t distribution with `df` degrees of freedom at `t`.
/// `df` may be fractional (Welch's approximation produces fractional
/// degrees of freedom).
double StudentTCdf(double t, double df);

/// Two-sided p-value for a Student-t statistic `t` with `df` degrees of
/// freedom: P(|T| >= |t|).
double StudentTTwoSidedPValue(double t, double df);

/// Complementary CDF Q(x) = P(K > x) of the Kolmogorov distribution,
/// evaluated with the alternating-series expansion
/// Q(x) = 2 * sum_{j>=1} (-1)^{j-1} exp(-2 j^2 x^2).
/// Used for the asymptotic two-sample KS p-value.
double KolmogorovComplementaryCdf(double x);

/// Standard normal CDF.
double NormalCdf(double x);

}  // namespace subex

#endif  // SUBEX_STATS_SPECIAL_FUNCTIONS_H_
