#include "stats/two_sample_tests.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/check.h"
#include "stats/descriptive.h"
#include "stats/special_functions.h"

namespace subex {

TestResult WelchTTest(std::span<const double> sample_a,
                      std::span<const double> sample_b) {
  TestResult result;
  const std::size_t na = sample_a.size();
  const std::size_t nb = sample_b.size();
  if (na < 2 || nb < 2) return result;

  const double mean_a = Mean(sample_a);
  const double mean_b = Mean(sample_b);
  const double var_a = SampleVariance(sample_a);
  const double var_b = SampleVariance(sample_b);
  const double se_a = var_a / static_cast<double>(na);
  const double se_b = var_b / static_cast<double>(nb);
  const double pooled = se_a + se_b;
  if (pooled < 1e-300) {
    // Both samples are (numerically) constant: equal means iff means match.
    result.p_value = (mean_a == mean_b) ? 1.0 : 0.0;
    result.statistic = (mean_a == mean_b) ? 0.0 : INFINITY;
    return result;
  }

  result.statistic = (mean_a - mean_b) / std::sqrt(pooled);
  // Welch-Satterthwaite degrees of freedom.
  const double df_num = pooled * pooled;
  const double df_den =
      se_a * se_a / static_cast<double>(na - 1) +
      se_b * se_b / static_cast<double>(nb - 1);
  result.degrees_of_freedom = df_num / df_den;
  result.p_value =
      StudentTTwoSidedPValue(result.statistic, result.degrees_of_freedom);
  return result;
}

TestResult KolmogorovSmirnovTest(std::span<const double> sample_a,
                                 std::span<const double> sample_b) {
  TestResult result;
  const std::size_t na = sample_a.size();
  const std::size_t nb = sample_b.size();
  if (na == 0 || nb == 0) return result;

  std::vector<double> a(sample_a.begin(), sample_a.end());
  std::vector<double> b(sample_b.begin(), sample_b.end());
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());

  // Walk both sorted samples computing the supremum of |F_a - F_b|.
  double d = 0.0;
  std::size_t ia = 0;
  std::size_t ib = 0;
  while (ia < na && ib < nb) {
    const double x = std::min(a[ia], b[ib]);
    while (ia < na && a[ia] <= x) ++ia;
    while (ib < nb && b[ib] <= x) ++ib;
    const double fa = static_cast<double>(ia) / static_cast<double>(na);
    const double fb = static_cast<double>(ib) / static_cast<double>(nb);
    d = std::max(d, std::fabs(fa - fb));
  }
  result.statistic = d;

  const double en = std::sqrt(static_cast<double>(na) *
                              static_cast<double>(nb) /
                              static_cast<double>(na + nb));
  // Asymptotic p-value with the small-sample correction of Stephens (1970),
  // the same form scipy's 'asymp' mode uses.
  result.p_value =
      KolmogorovComplementaryCdf((en + 0.12 + 0.11 / en) * d);
  return result;
}

TestResult RunTwoSampleTest(TwoSampleTestKind kind,
                            std::span<const double> sample_a,
                            std::span<const double> sample_b) {
  switch (kind) {
    case TwoSampleTestKind::kWelch:
      return WelchTTest(sample_a, sample_b);
    case TwoSampleTestKind::kKolmogorovSmirnov:
      return KolmogorovSmirnovTest(sample_a, sample_b);
  }
  SUBEX_CHECK_MSG(false, "unknown test kind");
  return {};
}

const char* TwoSampleTestKindName(TwoSampleTestKind kind) {
  switch (kind) {
    case TwoSampleTestKind::kWelch:
      return "welch";
    case TwoSampleTestKind::kKolmogorovSmirnov:
      return "ks";
  }
  return "unknown";
}

}  // namespace subex
