#include "stats/descriptive.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace subex {

double Mean(std::span<const double> values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

namespace {

double SumSquaredDeviation(std::span<const double> values, double mean) {
  double ss = 0.0;
  for (double v : values) {
    const double d = v - mean;
    ss += d * d;
  }
  return ss;
}

}  // namespace

double SampleVariance(std::span<const double> values) {
  if (values.size() < 2) return 0.0;
  return SumSquaredDeviation(values, Mean(values)) /
         static_cast<double>(values.size() - 1);
}

double PopulationVariance(std::span<const double> values) {
  if (values.empty()) return 0.0;
  return SumSquaredDeviation(values, Mean(values)) /
         static_cast<double>(values.size());
}

double SampleStdDev(std::span<const double> values) {
  return std::sqrt(SampleVariance(values));
}

double Min(std::span<const double> values) {
  SUBEX_CHECK(!values.empty());
  return *std::min_element(values.begin(), values.end());
}

double Max(std::span<const double> values) {
  SUBEX_CHECK(!values.empty());
  return *std::max_element(values.begin(), values.end());
}

double Median(std::span<const double> values) {
  SUBEX_CHECK(!values.empty());
  std::vector<double> copy(values.begin(), values.end());
  const std::size_t mid = copy.size() / 2;
  std::nth_element(copy.begin(), copy.begin() + mid, copy.end());
  if (copy.size() % 2 == 1) return copy[mid];
  const double upper = copy[mid];
  const double lower = *std::max_element(copy.begin(), copy.begin() + mid);
  return 0.5 * (lower + upper);
}

std::vector<double> Standardize(std::span<const double> values) {
  std::vector<double> out(values.size(), 0.0);
  if (values.empty()) return out;
  const double mean = Mean(values);
  const double sd = std::sqrt(PopulationVariance(values));
  if (sd < 1e-12) return out;
  for (std::size_t i = 0; i < values.size(); ++i) {
    out[i] = (values[i] - mean) / sd;
  }
  return out;
}

}  // namespace subex
