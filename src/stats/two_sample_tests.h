#ifndef SUBEX_STATS_TWO_SAMPLE_TESTS_H_
#define SUBEX_STATS_TWO_SAMPLE_TESTS_H_

#include <span>

namespace subex {

/// Result of a two-sample hypothesis test.
struct TestResult {
  /// Test statistic: Welch's t (signed) or the KS supremum distance D.
  double statistic = 0.0;
  /// Degrees of freedom (Welch-Satterthwaite approximation); 0 for KS.
  double degrees_of_freedom = 0.0;
  /// Two-sided p-value under the null hypothesis of equal distributions /
  /// means. In [0, 1].
  double p_value = 1.0;
};

/// Welch's unequal-variances t-test [Welch 1938] under the null hypothesis
/// that both samples have equal means. This is the discrepancy measure used
/// by RefOut (feature importance) and one of the two deviation measures of
/// HiCS. Degenerate inputs (either sample smaller than 2, or both variances
/// zero) yield statistic 0 / p-value 1.
TestResult WelchTTest(std::span<const double> sample_a,
                      std::span<const double> sample_b);

/// Two-sample Kolmogorov-Smirnov test under the null hypothesis that both
/// samples originate from the same distribution, with the asymptotic
/// Kolmogorov p-value. The alternative deviation measure of HiCS.
/// Degenerate inputs (either sample empty) yield statistic 0 / p-value 1.
TestResult KolmogorovSmirnovTest(std::span<const double> sample_a,
                                 std::span<const double> sample_b);

/// Which two-sample test a statistical component should use. The paper runs
/// HiCS and RefOut with Welch's t-test, and HiCS optionally with KS.
enum class TwoSampleTestKind {
  kWelch,
  kKolmogorovSmirnov,
};

/// Dispatches on `kind`.
TestResult RunTwoSampleTest(TwoSampleTestKind kind,
                            std::span<const double> sample_a,
                            std::span<const double> sample_b);

/// Human-readable name ("welch" / "ks").
const char* TwoSampleTestKindName(TwoSampleTestKind kind);

}  // namespace subex

#endif  // SUBEX_STATS_TWO_SAMPLE_TESTS_H_
