#ifndef SUBEX_DETECT_LOF_H_
#define SUBEX_DETECT_LOF_H_

#include "detect/detector.h"

namespace subex {

/// Local Outlier Factor [Breunig et al., SIGMOD 2000].
///
/// Density-based detector: compares each point's local reachability density
/// with that of its k nearest neighbors. Inliers score ~1, outliers
/// substantially above 1. O(n^2) per subspace. The paper runs it with k=15
/// and finds it the fastest and, for clustered/density outliers, the most
/// effective detector of the testbed.
class Lof final : public Detector {
 public:
  /// `k`: neighborhood size (MinPts); the testbed default is 15.
  explicit Lof(int k = 15);

  std::string name() const override { return "LOF"; }
  std::vector<double> Score(const Dataset& data,
                            const Subspace& subspace) const override;

  int k() const { return k_; }

 private:
  int k_;
};

}  // namespace subex

#endif  // SUBEX_DETECT_LOF_H_
