#include "detect/knn.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.h"
#include "common/matrix.h"

namespace subex {

KnnTable ComputeKnn(const Dataset& data, const Subspace& subspace, int k) {
  const int n = static_cast<int>(data.num_points());
  SUBEX_CHECK_MSG(n >= 2, "kNN needs at least two points");
  SUBEX_CHECK(k >= 1);
  k = std::min(k, n - 1);

  // Resolve the feature list once; empty subspace means every feature.
  std::vector<FeatureId> full;
  std::span<const FeatureId> features = subspace.AsSpan();
  if (subspace.empty()) {
    full.resize(data.num_features());
    std::iota(full.begin(), full.end(), 0);
    features = full;
  }

  KnnTable table;
  table.k = k;
  table.neighbors.resize(n);

  const Matrix& m = data.matrix();
  // Per-thread scratch reused across calls: batch scoring evaluates
  // thousands of subspaces per thread, and reallocating the n-entry
  // candidate buffer on every call dominated allocator traffic.
  static thread_local std::vector<Neighbor> scratch;
  scratch.resize(static_cast<std::size_t>(n - 1));
  std::vector<Neighbor>& all = scratch;
  for (int p = 0; p < n; ++p) {
    int w = 0;
    for (int q = 0; q < n; ++q) {
      if (q == p) continue;
      all[w].distance = SquaredDistance(m, p, q, features);
      all[w].index = q;
      ++w;
    }
    auto cmp = [](const Neighbor& a, const Neighbor& b) {
      if (a.distance != b.distance) return a.distance < b.distance;
      return a.index < b.index;
    };
    std::partial_sort(all.begin(), all.begin() + k, all.end(), cmp);
    std::vector<Neighbor>& out = table.neighbors[p];
    out.assign(all.begin(), all.begin() + k);
    for (Neighbor& nb : out) nb.distance = std::sqrt(nb.distance);
  }
  return table;
}

}  // namespace subex
