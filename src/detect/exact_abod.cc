#include "detect/exact_abod.h"

#include <cmath>
#include <numeric>

#include "common/check.h"
#include "common/matrix.h"

namespace subex {

std::vector<double> ExactAbod::Score(const Dataset& data,
                                     const Subspace& subspace) const {
  const int n = static_cast<int>(data.num_points());
  SUBEX_CHECK(n >= 3);

  std::vector<FeatureId> full;
  std::span<const FeatureId> features = subspace.AsSpan();
  if (subspace.empty()) {
    full.resize(data.num_features());
    std::iota(full.begin(), full.end(), 0);
    features = full;
  }
  const std::size_t dim = features.size();
  const Matrix& m = data.matrix();
  constexpr double kMinSqNorm = 1e-18;

  std::vector<double> scores(n);
  std::vector<double> diffs(static_cast<std::size_t>(n) * dim);
  std::vector<double> sq_norms(n);
  for (int p = 0; p < n; ++p) {
    const double* rp = m.data() + static_cast<std::size_t>(p) * m.cols();
    // Difference vectors p -> q for all q.
    for (int q = 0; q < n; ++q) {
      const double* rq = m.data() + static_cast<std::size_t>(q) * m.cols();
      double sq = 0.0;
      for (std::size_t j = 0; j < dim; ++j) {
        const double d = rq[features[j]] - rp[features[j]];
        diffs[static_cast<std::size_t>(q) * dim + j] = d;
        sq += d * d;
      }
      sq_norms[q] = sq;
    }
    double sum = 0.0;
    double sum_sq = 0.0;
    long long count = 0;
    for (int a = 0; a < n; ++a) {
      if (a == p || sq_norms[a] < kMinSqNorm) continue;
      for (int b = a + 1; b < n; ++b) {
        if (b == p || sq_norms[b] < kMinSqNorm) continue;
        double dot = 0.0;
        for (std::size_t j = 0; j < dim; ++j) {
          dot += diffs[static_cast<std::size_t>(a) * dim + j] *
                 diffs[static_cast<std::size_t>(b) * dim + j];
        }
        const double value = dot / (sq_norms[a] * sq_norms[b]);
        sum += value;
        sum_sq += value * value;
        ++count;
      }
    }
    double abof = 0.0;
    if (count >= 2) {
      const double mean = sum / static_cast<double>(count);
      abof = std::max(0.0, sum_sq / static_cast<double>(count) - mean * mean);
    }
    scores[p] = -std::log(abof + 1e-12);
  }
  return scores;
}

}  // namespace subex
