#ifndef SUBEX_DETECT_EXACT_ABOD_H_
#define SUBEX_DETECT_EXACT_ABOD_H_

#include "detect/detector.h"

namespace subex {

/// Exact Angle-Based Outlier Detection [Kriegel et al., KDD 2008]: the
/// angle-factor variance is computed over *all* pairs of other points,
/// O(n^3) time. The paper uses the O(k n^2) Fast ABOD approximation
/// (`FastAbod`) throughout; this exact variant exists to quantify the
/// approximation quality (see the detector ablation bench) and for small
/// datasets where exactness is affordable.
///
/// Scores follow the same orientation/transform as `FastAbod`:
/// `-log(ABOF + eps)`, higher = more outlying.
class ExactAbod final : public Detector {
 public:
  ExactAbod() = default;

  std::string name() const override { return "ExactABOD"; }
  std::vector<double> Score(const Dataset& data,
                            const Subspace& subspace) const override;
};

}  // namespace subex

#endif  // SUBEX_DETECT_EXACT_ABOD_H_
