#ifndef SUBEX_DETECT_KNN_DISTANCE_H_
#define SUBEX_DETECT_KNN_DISTANCE_H_

#include "detect/detector.h"

namespace subex {

/// Classic distance-based outlier detector (Ramaswamy et al., 2000):
/// a point's outlyingness is its distance to its k-th nearest neighbor
/// (`kMax` aggregation) or the mean distance to its k nearest neighbors
/// (`kMean`, often more stable).
///
/// Included as the representative of the distance-based family that the
/// paper's §3.1 cites as "frequently outperformed" by LOF / ABOD / iForest
/// in prior experimental studies [6, 8, 13] — the detector-choice ablation
/// bench quantifies that claim on this testbed's datasets.
class KnnDistance final : public Detector {
 public:
  enum class Aggregation { kMax, kMean };

  /// `k`: neighborhood size; `aggregation`: k-th distance or mean distance.
  explicit KnnDistance(int k = 10,
                       Aggregation aggregation = Aggregation::kMean);

  std::string name() const override { return "kNNDist"; }
  std::vector<double> Score(const Dataset& data,
                            const Subspace& subspace) const override;

  int k() const { return k_; }

 private:
  int k_;
  Aggregation aggregation_;
};

}  // namespace subex

#endif  // SUBEX_DETECT_KNN_DISTANCE_H_
