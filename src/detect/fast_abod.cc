#include "detect/fast_abod.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.h"
#include "detect/knn.h"

namespace subex {

FastAbod::FastAbod(int k) : k_(k) { SUBEX_CHECK(k >= 2); }

std::vector<double> FastAbod::Score(const Dataset& data,
                                    const Subspace& subspace) const {
  const int n = static_cast<int>(data.num_points());
  const KnnTable knn = ComputeKnn(data, subspace, k_);

  std::vector<FeatureId> full;
  std::span<const FeatureId> features = subspace.AsSpan();
  if (subspace.empty()) {
    full.resize(data.num_features());
    std::iota(full.begin(), full.end(), 0);
    features = full;
  }
  const std::size_t dim = features.size();
  const Matrix& m = data.matrix();

  std::vector<double> scores(n, 0.0);
  // Difference vectors p -> neighbor, recomputed per point (k * dim scratch).
  std::vector<double> diffs;
  std::vector<double> sq_norms;
  constexpr double kMinSqNorm = 1e-18;  // Skip coincident points.

  for (int p = 0; p < n; ++p) {
    const std::vector<Neighbor>& nbs = knn.neighbors[p];
    const std::size_t k = nbs.size();
    diffs.assign(k * dim, 0.0);
    sq_norms.assign(k, 0.0);
    const double* rp = m.data() + static_cast<std::size_t>(p) * m.cols();
    for (std::size_t i = 0; i < k; ++i) {
      const double* rq =
          m.data() + static_cast<std::size_t>(nbs[i].index) * m.cols();
      double sq = 0.0;
      for (std::size_t j = 0; j < dim; ++j) {
        const double d = rq[features[j]] - rp[features[j]];
        diffs[i * dim + j] = d;
        sq += d * d;
      }
      sq_norms[i] = sq;
    }
    // Variance of the angle factor over all neighbor pairs (Welford-free
    // two-pass: pair count is small, k*(k-1)/2 <= 45 for the default k).
    double sum = 0.0;
    double sum_sq = 0.0;
    int count = 0;
    for (std::size_t i = 0; i < k; ++i) {
      if (sq_norms[i] < kMinSqNorm) continue;
      for (std::size_t j = i + 1; j < k; ++j) {
        if (sq_norms[j] < kMinSqNorm) continue;
        double dot = 0.0;
        for (std::size_t t = 0; t < dim; ++t) {
          dot += diffs[i * dim + t] * diffs[j * dim + t];
        }
        const double value = dot / (sq_norms[i] * sq_norms[j]);
        sum += value;
        sum_sq += value * value;
        ++count;
      }
    }
    double abof = 0.0;
    if (count >= 2) {
      const double mean = sum / count;
      abof = std::max(0.0, sum_sq / count - mean * mean);
    }
    // Low angle variance = outlier. The ABOF has a heavy 1/dist^4 tail, so
    // the rank-preserving -log transform keeps downstream z-scores (and
    // Welch statistics over score populations) from being dominated by a
    // few ultra-dense inliers. Higher = more outlying.
    scores[p] = -std::log(abof + 1e-12);
  }
  return scores;
}

}  // namespace subex
