#include "detect/knn_distance.h"

#include "common/check.h"
#include "detect/knn.h"

namespace subex {

KnnDistance::KnnDistance(int k, Aggregation aggregation)
    : k_(k), aggregation_(aggregation) {
  SUBEX_CHECK(k >= 1);
}

std::vector<double> KnnDistance::Score(const Dataset& data,
                                       const Subspace& subspace) const {
  const KnnTable knn = ComputeKnn(data, subspace, k_);
  std::vector<double> scores(data.num_points());
  for (std::size_t p = 0; p < scores.size(); ++p) {
    if (aggregation_ == Aggregation::kMax) {
      scores[p] = knn.KDistance(static_cast<int>(p));
    } else {
      double sum = 0.0;
      for (const Neighbor& nb : knn.neighbors[p]) sum += nb.distance;
      scores[p] = sum / static_cast<double>(knn.neighbors[p].size());
    }
  }
  return scores;
}

}  // namespace subex
