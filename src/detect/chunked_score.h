#ifndef SUBEX_DETECT_CHUNKED_SCORE_H_
#define SUBEX_DETECT_CHUNKED_SCORE_H_

#include <span>
#include <vector>

#include "data/chunked_dataset.h"
#include "detect/knn_distance.h"
#include "detect/loda.h"
#include "subspace/subspace.h"

namespace subex {

/// Streaming counterparts of the in-RAM detectors, reading a
/// `ChunkedDataset` chunk by chunk so datasets far larger than RAM score
/// under a fixed memory budget. Each scorer reproduces its in-RAM
/// detector's floating-point semantics exactly — same accumulation order,
/// same tie-breaks, same RNG draws — so streamed scores are bitwise equal
/// to `Detector::Score` on the same data, which the tests assert.
///
/// The distance-based scorers take an explicit query set because scoring
/// all points is O(n^2): at the scale that motivates chunking, callers
/// score the points of interest (and, for LOF, the scorer internally
/// extends the set with the one- and two-hop neighborhoods it needs). An
/// empty query span means all points — the cross-check path for data that
/// also fits in RAM.

/// kNN-distance scores (k-th or mean neighbor distance) for `queries`,
/// returned in query order. Empty `queries` = all points, in point order.
/// Matches `KnnDistance(k, aggregation).Score(...)` bitwise.
std::vector<double> ScoreKnnDistanceChunked(
    ChunkedDataset& data, const Subspace& subspace, int k,
    KnnDistance::Aggregation aggregation,
    std::span<const int> queries = {});

/// LOF scores for `queries`, returned in query order (empty = all points).
/// Streams three batched kNN rounds — queries, their neighbors, and the
/// neighbors' neighbors (the reachability closure LOF needs) — instead of
/// the in-RAM all-points kNN table. Matches `Lof(k).Score(...)` bitwise.
std::vector<double> ScoreLofChunked(ChunkedDataset& data,
                                    const Subspace& subspace, int k,
                                    std::span<const int> queries = {});

/// LODA scores for every point (LODA is linear in n, so the full vector is
/// the natural unit). Per projector, three streaming passes over the
/// active-feature chunks — min/max, histogram, density — recompute the
/// projections rather than materializing a per-point array; the
/// neg-log-density accumulator is the only O(n) state. Matches
/// `Loda(options).Score(...)` bitwise.
std::vector<double> ScoreLodaChunked(ChunkedDataset& data,
                                     const Subspace& subspace,
                                     const Loda::Options& options);

}  // namespace subex

#endif  // SUBEX_DETECT_CHUNKED_SCORE_H_
