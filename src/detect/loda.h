#ifndef SUBEX_DETECT_LODA_H_
#define SUBEX_DETECT_LODA_H_

#include <cstdint>

#include "detect/detector.h"

namespace subex {

/// LODA — Lightweight On-line Detector of Anomalies [Pevny, Machine
/// Learning 2015].
///
/// An ensemble of one-dimensional histograms over sparse random
/// projections: each projector uses ~sqrt(|subspace|) random features with
/// Gaussian weights, the projected values are binned into an equal-width
/// histogram, and a point's outlyingness is the negative mean log density
/// across projectors (higher = more outlying).
///
/// The paper's §6 names LODA as the natural candidate for extending the
/// testbed toward stream processing; this batch implementation slots into
/// the same `Detector` interface, so every explainer can be paired with it
/// out of the box. Deterministic per (seed, subspace), like the forest.
class Loda final : public Detector {
 public:
  struct Options {
    int num_projections = 100;
    /// 0 = automatic (2 * n^(1/3)) bins per histogram.
    int num_bins = 0;
    std::uint64_t seed = 42;
  };

  /// Builds the detector with the given options.
  explicit Loda(const Options& options);
  /// Builds the detector with the defaults of the LODA paper.
  Loda() : Loda(Options{}) {}

  std::string name() const override { return "LODA"; }
  std::vector<double> Score(const Dataset& data,
                            const Subspace& subspace) const override;

  const Options& options() const { return options_; }

 private:
  Options options_;
};

}  // namespace subex

#endif  // SUBEX_DETECT_LODA_H_
