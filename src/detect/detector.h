#ifndef SUBEX_DETECT_DETECTOR_H_
#define SUBEX_DETECT_DETECTOR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "subspace/subspace.h"

namespace subex {

/// Unsupervised outlier detector interface.
///
/// The testbed's central abstraction: explainers are detector-agnostic and
/// only ever interact with a detector through `Score`. Implementations must
/// return one score per point with the orientation **higher = more
/// outlying**, and must be safe to call concurrently from multiple threads
/// (scoring may not mutate shared state; stochastic detectors derive their
/// randomness deterministically from the subspace identity).
class Detector {
 public:
  virtual ~Detector() = default;

  /// Short human-readable name ("LOF", "FastABOD", "iForest").
  virtual std::string name() const = 0;

  /// Outlyingness scores of every point of `data`, computed in the feature
  /// subspace `subspace`. An empty subspace means the full feature space.
  virtual std::vector<double> Score(const Dataset& data,
                                    const Subspace& subspace) const = 0;

  /// True when `Score` already returns per-subspace standardized scores
  /// (e.g. caching adapters that serve pre-standardized vectors).
  /// `ScoreStandardized` then passes them through untouched instead of
  /// standardizing twice, preserving bitwise equality with the direct path.
  virtual bool ReturnsStandardizedScores() const { return false; }
};

/// `Score` followed by per-subspace z-score standardization
/// (`score' = (score - mean) / sd`, the dimensionality-bias correction of
/// §2.2). All explainers compare scores across subspaces through this
/// helper.
std::vector<double> ScoreStandardized(const Detector& detector,
                                      const Dataset& data,
                                      const Subspace& subspace);

/// The three detector families of the testbed.
enum class DetectorKind {
  kLof,
  kFastAbod,
  kIsolationForest,
};

/// Builds a detector with the hyper-parameters of §3.1: LOF with k=15,
/// Fast ABOD with k=10, iForest with 100 trees, subsample 256 and 10
/// averaged repetitions. `seed` feeds stochastic detectors only.
std::unique_ptr<Detector> MakeDetector(DetectorKind kind,
                                       std::uint64_t seed = 42);

/// All three kinds, in the order the paper's figures list them.
std::vector<DetectorKind> AllDetectorKinds();

/// Display name of a kind without constructing the detector.
const char* DetectorKindName(DetectorKind kind);

}  // namespace subex

#endif  // SUBEX_DETECT_DETECTOR_H_
