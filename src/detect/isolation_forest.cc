#include "detect/isolation_forest.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.h"
#include "common/rng.h"

namespace subex {
namespace {

// One node of an isolation tree, stored in a flat vector. Leaves carry the
// number of subsample points that reached them (for the c(size) correction).
struct Node {
  FeatureId feature = -1;   // -1 marks a leaf.
  double split = 0.0;
  int left = -1;
  int right = -1;
  int size = 0;
};

class IsolationTree {
 public:
  /// Builds a tree over the rows `sample` of `data` using the given global
  /// feature ids, splitting until isolation or `height_limit`.
  IsolationTree(const Dataset& data, std::span<const FeatureId> features,
                std::vector<int> sample, int height_limit, Rng& rng) {
    nodes_.reserve(2 * sample.size());
    root_ = Build(data, features, std::move(sample), 0, height_limit, rng);
  }

  /// Path length of point `p`: depth of the leaf it lands in plus the
  /// average-path correction c(leaf size).
  double PathLength(const Dataset& data, int p) const {
    int node = root_;
    double depth = 0.0;
    while (nodes_[node].feature >= 0) {
      node = data.Value(p, nodes_[node].feature) < nodes_[node].split
                 ? nodes_[node].left
                 : nodes_[node].right;
      depth += 1.0;
    }
    return depth + IsolationForest::AveragePathLength(nodes_[node].size);
  }

 private:
  int Build(const Dataset& data, std::span<const FeatureId> features,
            std::vector<int> sample, int height, int height_limit, Rng& rng) {
    const int index = static_cast<int>(nodes_.size());
    nodes_.emplace_back();
    nodes_[index].size = static_cast<int>(sample.size());
    if (height >= height_limit || sample.size() <= 1) return index;

    // Pick a feature that still varies within the sample; give up after a
    // few tries (all-constant region -> leaf).
    for (int attempt = 0; attempt < 8; ++attempt) {
      const FeatureId f = features[rng.UniformIndex(features.size())];
      double lo = data.Value(sample[0], f);
      double hi = lo;
      for (int p : sample) {
        lo = std::min(lo, data.Value(p, f));
        hi = std::max(hi, data.Value(p, f));
      }
      if (hi - lo < 1e-12) continue;
      const double split = rng.Uniform(lo, hi);
      std::vector<int> left_sample;
      std::vector<int> right_sample;
      for (int p : sample) {
        (data.Value(p, f) < split ? left_sample : right_sample).push_back(p);
      }
      if (left_sample.empty() || right_sample.empty()) continue;
      const int left = Build(data, features, std::move(left_sample),
                             height + 1, height_limit, rng);
      const int right = Build(data, features, std::move(right_sample),
                              height + 1, height_limit, rng);
      nodes_[index].feature = f;
      nodes_[index].split = split;
      nodes_[index].left = left;
      nodes_[index].right = right;
      return index;
    }
    return index;  // Leaf: no usable split found.
  }

  std::vector<Node> nodes_;
  int root_ = 0;
};

}  // namespace

IsolationForest::IsolationForest(const Options& options) : options_(options) {
  SUBEX_CHECK(options.num_trees >= 1);
  SUBEX_CHECK(options.subsample_size >= 2);
  SUBEX_CHECK(options.num_repetitions >= 1);
}

double IsolationForest::AveragePathLength(int n) {
  if (n <= 1) return 0.0;
  if (n == 2) return 1.0;
  const double h = std::log(static_cast<double>(n - 1)) + 0.5772156649015329;
  return 2.0 * h - 2.0 * static_cast<double>(n - 1) / static_cast<double>(n);
}

std::vector<double> IsolationForest::Score(const Dataset& data,
                                           const Subspace& subspace) const {
  const int n = static_cast<int>(data.num_points());
  SUBEX_CHECK(n >= 2);

  std::vector<FeatureId> full;
  std::span<const FeatureId> features = subspace.AsSpan();
  if (subspace.empty()) {
    full.resize(data.num_features());
    std::iota(full.begin(), full.end(), 0);
    features = full;
  }

  const int psi = std::min(options_.subsample_size, n);
  const int height_limit =
      static_cast<int>(std::ceil(std::log2(static_cast<double>(psi))));
  const double c_psi = AveragePathLength(psi);

  // Deterministic per-(seed, subspace) randomness so Score is pure.
  const std::uint64_t subspace_salt = SubspaceHash()(subspace);
  std::vector<double> mean_scores(n, 0.0);

  for (int rep = 0; rep < options_.num_repetitions; ++rep) {
    Rng rng(options_.seed ^ subspace_salt ^
            (0x9e3779b97f4a7c15ull * static_cast<std::uint64_t>(rep + 1)));
    std::vector<double> path_sum(n, 0.0);
    for (int t = 0; t < options_.num_trees; ++t) {
      std::vector<int> sample = rng.SampleWithoutReplacement(n, psi);
      IsolationTree tree(data, features, std::move(sample), height_limit,
                         rng);
      for (int p = 0; p < n; ++p) path_sum[p] += tree.PathLength(data, p);
    }
    for (int p = 0; p < n; ++p) {
      const double mean_path = path_sum[p] / options_.num_trees;
      mean_scores[p] += std::pow(2.0, -mean_path / c_psi);
    }
  }
  for (double& s : mean_scores) s /= options_.num_repetitions;
  return mean_scores;
}

}  // namespace subex
