#ifndef SUBEX_DETECT_KNN_H_
#define SUBEX_DETECT_KNN_H_

#include <vector>

#include "data/dataset.h"
#include "subspace/subspace.h"

namespace subex {

/// One neighbor of a query point.
struct Neighbor {
  double distance = 0.0;  // Euclidean, within the query subspace.
  int index = -1;
};

/// k-nearest-neighbor lists for every point of a dataset within one
/// subspace. `neighbors[p]` holds up to k entries sorted by ascending
/// distance, excluding `p` itself. Ties are broken by point index so
/// results are deterministic.
struct KnnTable {
  int k = 0;
  std::vector<std::vector<Neighbor>> neighbors;

  /// Distance from point `p` to its k-th nearest neighbor.
  double KDistance(int p) const { return neighbors[p].back().distance; }
};

/// Brute-force kNN over all points, restricted to `subspace` (empty =
/// full space). O(n^2 * |subspace|) time, O(n * k) memory. `k` is clamped
/// to n-1. This is the shared substrate of LOF and Fast ABOD; brute force
/// is the right tool here because explainers query thousands of *different*
/// low-dimensional subspaces, so no index amortizes.
KnnTable ComputeKnn(const Dataset& data, const Subspace& subspace, int k);

}  // namespace subex

#endif  // SUBEX_DETECT_KNN_H_
