#include "detect/lof.h"

#include <algorithm>

#include "common/check.h"
#include "detect/knn.h"

namespace subex {

Lof::Lof(int k) : k_(k) { SUBEX_CHECK(k >= 1); }

std::vector<double> Lof::Score(const Dataset& data,
                               const Subspace& subspace) const {
  const int n = static_cast<int>(data.num_points());
  const KnnTable knn = ComputeKnn(data, subspace, k_);

  // Local reachability density:
  //   lrd_k(p) = 1 / mean_{o in kNN(p)} max(k-dist(o), d(p, o)).
  // Duplicate-heavy data can make the mean reachability distance zero; the
  // epsilon keeps lrd finite and preserves ordering.
  constexpr double kEpsilon = 1e-10;
  std::vector<double> lrd(n);
  for (int p = 0; p < n; ++p) {
    double sum = 0.0;
    for (const Neighbor& nb : knn.neighbors[p]) {
      sum += std::max(knn.KDistance(nb.index), nb.distance);
    }
    const double mean = sum / static_cast<double>(knn.neighbors[p].size());
    lrd[p] = 1.0 / std::max(mean, kEpsilon);
  }

  // LOF_k(p) = mean_{o in kNN(p)} lrd(o) / lrd(p).
  std::vector<double> scores(n);
  for (int p = 0; p < n; ++p) {
    double sum = 0.0;
    for (const Neighbor& nb : knn.neighbors[p]) sum += lrd[nb.index];
    scores[p] =
        sum / (static_cast<double>(knn.neighbors[p].size()) * lrd[p]);
  }
  return scores;
}

}  // namespace subex
