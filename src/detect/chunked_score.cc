#include "detect/chunked_score.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <numeric>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "common/check.h"
#include "common/rng.h"
#include "detect/knn.h"

namespace subex {
namespace {

/// Resolves a subspace to an explicit feature list (empty = every feature),
/// mirroring what every in-RAM detector does.
std::vector<FeatureId> ResolveFeatures(const ChunkedDataset& data,
                                       const Subspace& subspace) {
  if (!subspace.empty()) {
    return {subspace.AsSpan().begin(), subspace.AsSpan().end()};
  }
  std::vector<FeatureId> full(data.num_cols());
  std::iota(full.begin(), full.end(), 0);
  return full;
}

/// The exact comparator `ComputeKnn` hands to partial_sort. Indices are
/// unique, so this is a total order: the k smallest candidates — and their
/// sorted order — are independent of arrival order, which is what lets a
/// streaming heap reproduce partial_sort's output bit for bit.
bool NeighborLess(const Neighbor& a, const Neighbor& b) {
  if (a.distance != b.distance) return a.distance < b.distance;
  return a.index < b.index;
}

/// Gathers the subspace feature values of `rows` (any order) into a
/// row-major `rows.size() x features.size()` buffer, pinning each touched
/// chunk once per (feature, block).
std::vector<double> GatherRows(ChunkedDataset& data,
                               std::span<const FeatureId> features,
                               std::span<const int> rows) {
  std::vector<double> values(rows.size() * features.size());
  for (std::size_t block = 0; block < data.num_blocks(); ++block) {
    const std::size_t lo = block * data.rows_per_chunk();
    const std::size_t hi = lo + data.RowsInBlock(block);
    // Skip blocks containing none of the requested rows.
    bool any = false;
    for (int r : rows) {
      if (static_cast<std::size_t>(r) >= lo && static_cast<std::size_t>(r) < hi) {
        any = true;
        break;
      }
    }
    if (!any) continue;
    for (std::size_t j = 0; j < features.size(); ++j) {
      Pinned<ColumnChunk> chunk = data.Chunk(features[j], block);
      SUBEX_CHECK_MSG(chunk.valid(), "chunk read failed");
      for (std::size_t i = 0; i < rows.size(); ++i) {
        const std::size_t r = static_cast<std::size_t>(rows[i]);
        if (r >= lo && r < hi) values[i * features.size() + j] = (*chunk)[r - lo];
      }
    }
  }
  return values;
}

/// Streaming batched brute-force kNN: one pass over the dataset's chunks
/// computes, for every query row, the same k-nearest list `ComputeKnn`
/// produces (sqrt'ed distances, (distance, index) tie-break, k clamped to
/// n-1). Memory: |features| pinned chunks + O(|queries| * k) heap state.
std::vector<std::vector<Neighbor>> ComputeKnnChunked(
    ChunkedDataset& data, std::span<const FeatureId> features, int k,
    std::span<const int> queries) {
  const std::size_t n = data.num_rows();
  SUBEX_CHECK_MSG(n >= 2, "kNN needs at least two points");
  SUBEX_CHECK(k >= 1);
  k = std::min(k, static_cast<int>(n) - 1);

  const std::size_t num_features = features.size();
  const std::vector<double> qvals = GatherRows(data, features, queries);

  // One max-heap of the k best candidates per query (top = worst kept).
  auto heap_cmp = NeighborLess;
  std::vector<std::vector<Neighbor>> heaps(queries.size());
  for (auto& h : heaps) h.reserve(k + 1);

  std::vector<Pinned<ColumnChunk>> chunks(num_features);
  for (std::size_t block = 0; block < data.num_blocks(); ++block) {
    for (std::size_t j = 0; j < num_features; ++j) {
      chunks[j] = data.Chunk(features[j], block);
      SUBEX_CHECK_MSG(chunks[j].valid(), "chunk read failed");
    }
    const std::size_t rows = data.RowsInBlock(block);
    const std::size_t base = block * data.rows_per_chunk();
    for (std::size_t r = 0; r < rows; ++r) {
      const int g = static_cast<int>(base + r);
      for (std::size_t qi = 0; qi < queries.size(); ++qi) {
        if (g == queries[qi]) continue;
        const double* qv = qvals.data() + qi * num_features;
        // Identical accumulation order to `SquaredDistance`: one add per
        // feature, in subspace order.
        double sum = 0.0;
        for (std::size_t j = 0; j < num_features; ++j) {
          const double d = qv[j] - (*chunks[j])[r];
          sum += d * d;
        }
        std::vector<Neighbor>& heap = heaps[qi];
        const Neighbor cand{sum, g};
        if (static_cast<int>(heap.size()) < k) {
          heap.push_back(cand);
          std::push_heap(heap.begin(), heap.end(), heap_cmp);
        } else if (NeighborLess(cand, heap.front())) {
          std::pop_heap(heap.begin(), heap.end(), heap_cmp);
          heap.back() = cand;
          std::push_heap(heap.begin(), heap.end(), heap_cmp);
        }
      }
    }
    for (auto& chunk : chunks) chunk.Release();
  }

  for (auto& heap : heaps) {
    std::sort(heap.begin(), heap.end(), heap_cmp);
    for (Neighbor& nb : heap) nb.distance = std::sqrt(nb.distance);
  }
  return heaps;
}

/// All point ids, for the empty-queries = "score everything" convention.
std::vector<int> AllRows(const ChunkedDataset& data) {
  std::vector<int> rows(data.num_rows());
  std::iota(rows.begin(), rows.end(), 0);
  return rows;
}

}  // namespace

std::vector<double> ScoreKnnDistanceChunked(
    ChunkedDataset& data, const Subspace& subspace, int k,
    KnnDistance::Aggregation aggregation, std::span<const int> queries) {
  const std::vector<FeatureId> features = ResolveFeatures(data, subspace);
  std::vector<int> all;
  if (queries.empty()) {
    all = AllRows(data);
    queries = all;
  }
  const std::vector<std::vector<Neighbor>> knn =
      ComputeKnnChunked(data, features, k, queries);

  std::vector<double> scores(queries.size());
  for (std::size_t i = 0; i < scores.size(); ++i) {
    if (aggregation == KnnDistance::Aggregation::kMax) {
      scores[i] = knn[i].back().distance;
    } else {
      double sum = 0.0;
      for (const Neighbor& nb : knn[i]) sum += nb.distance;
      scores[i] = sum / static_cast<double>(knn[i].size());
    }
  }
  return scores;
}

std::vector<double> ScoreLofChunked(ChunkedDataset& data,
                                    const Subspace& subspace, int k,
                                    std::span<const int> queries) {
  const std::vector<FeatureId> features = ResolveFeatures(data, subspace);
  std::vector<int> all;
  if (queries.empty()) {
    all = AllRows(data);
    queries = all;
  }

  // Round 1: kNN lists of the queries. Rounds 2 and 3 extend to the one-
  // and two-hop neighborhoods — lrd(p) reads the k-distance of every
  // neighbor of p, and LOF(p) reads lrd of every neighbor, whose own lrd
  // reads k-distances one hop further.
  std::unordered_map<int, std::vector<Neighbor>> lists;
  std::vector<int> frontier(queries.begin(), queries.end());
  for (int round = 0; round < 3 && !frontier.empty(); ++round) {
    std::vector<std::vector<Neighbor>> batch =
        ComputeKnnChunked(data, features, k, frontier);
    std::unordered_set<int> next;
    for (std::size_t i = 0; i < frontier.size(); ++i) {
      for (const Neighbor& nb : batch[i]) {
        if (lists.find(nb.index) == lists.end()) next.insert(nb.index);
      }
      lists.emplace(frontier[i], std::move(batch[i]));
    }
    frontier.clear();
    for (int id : next) {
      if (lists.find(id) == lists.end()) frontier.push_back(id);
    }
    std::sort(frontier.begin(), frontier.end());
  }

  // Same formulas, constants and iteration order as `Lof::Score`.
  constexpr double kEpsilon = 1e-10;
  auto k_distance = [&lists](int p) -> double {
    const auto it = lists.find(p);
    SUBEX_CHECK_MSG(it != lists.end(), "kNN list missing for point");
    return it->second.back().distance;
  };
  std::unordered_map<int, double> lrd;
  auto lrd_of = [&](int p) -> double {
    const auto cached = lrd.find(p);
    if (cached != lrd.end()) return cached->second;
    const std::vector<Neighbor>& nbs = lists.at(p);
    double sum = 0.0;
    for (const Neighbor& nb : nbs) {
      sum += std::max(k_distance(nb.index), nb.distance);
    }
    const double mean = sum / static_cast<double>(nbs.size());
    const double value = 1.0 / std::max(mean, kEpsilon);
    lrd.emplace(p, value);
    return value;
  };

  std::vector<double> scores(queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const std::vector<Neighbor>& nbs = lists.at(queries[i]);
    double sum = 0.0;
    for (const Neighbor& nb : nbs) sum += lrd_of(nb.index);
    scores[i] = sum / (static_cast<double>(nbs.size()) * lrd_of(queries[i]));
  }
  return scores;
}

std::vector<double> ScoreLodaChunked(ChunkedDataset& data,
                                     const Subspace& subspace,
                                     const Loda::Options& options) {
  const std::size_t n = data.num_rows();
  SUBEX_CHECK(static_cast<int>(n) >= 3);
  SUBEX_CHECK(options.num_projections >= 1);
  SUBEX_CHECK(options.num_bins >= 0);

  const std::vector<FeatureId> features = ResolveFeatures(data, subspace);
  const int dim = static_cast<int>(features.size());
  const int sparse_count =
      std::max(1, static_cast<int>(std::lround(std::sqrt(dim))));
  const int bins =
      options.num_bins > 0
          ? options.num_bins
          : std::max(4, static_cast<int>(2.0 * std::cbrt(static_cast<int>(n))));

  // Identical RNG stream to `Loda::Score`: one generator, per projector the
  // active set then the weights — the streaming passes draw nothing.
  Rng rng(options.seed ^ SubspaceHash()(subspace));
  std::vector<double> neg_log_density_sum(n, 0.0);
  std::vector<int> histogram(bins);

  // Applies `fn(global_row, projected_value)` to every point, recomputing
  // the sparse projection chunk by chunk. Each pass reproduces the exact
  // accumulation order of the in-RAM projection loop, so the recomputed
  // doubles are identical across passes.
  std::vector<Pinned<ColumnChunk>> chunks;
  auto for_each_projection = [&](std::span<const int> active,
                                 std::span<const double> weights,
                                 auto&& fn) {
    chunks.clear();
    chunks.resize(active.size());
    for (std::size_t block = 0; block < data.num_blocks(); ++block) {
      for (std::size_t j = 0; j < active.size(); ++j) {
        chunks[j] = data.Chunk(features[active[j]], block);
        SUBEX_CHECK_MSG(chunks[j].valid(), "chunk read failed");
      }
      const std::size_t rows = data.RowsInBlock(block);
      const std::size_t base = block * data.rows_per_chunk();
      for (std::size_t r = 0; r < rows; ++r) {
        double v = 0.0;
        for (std::size_t j = 0; j < active.size(); ++j) {
          v += weights[j] * (*chunks[j])[r];
        }
        fn(base + r, v);
      }
    }
    chunks.clear();
  };

  for (int t = 0; t < options.num_projections; ++t) {
    const std::vector<int> active =
        rng.SampleWithoutReplacement(dim, sparse_count);
    std::vector<double> weights(active.size());
    for (double& w : weights) w = rng.Gaussian();

    // Pass 1: projection range (the values, not the positions, determine
    // the histogram, so a streaming min/max matches minmax_element).
    double lo = 0.0;
    double hi = 0.0;
    bool first = true;
    for_each_projection(active, weights, [&](std::size_t, double v) {
      if (first) {
        lo = hi = v;
        first = false;
        return;
      }
      if (v < lo) lo = v;
      if (v > hi) hi = v;
    });
    const double width = std::max((hi - lo) / bins, 1e-12);

    // Pass 2: histogram.
    std::fill(histogram.begin(), histogram.end(), 0);
    for_each_projection(active, weights, [&](std::size_t, double v) {
      const int b = std::min(bins - 1, static_cast<int>((v - lo) / width));
      ++histogram[b];
    });

    // Pass 3: Laplace-smoothed density accumulation.
    for_each_projection(active, weights, [&](std::size_t p, double v) {
      const int b = std::min(bins - 1, static_cast<int>((v - lo) / width));
      const double density =
          (histogram[b] + 1.0) / ((static_cast<int>(n) + bins) * width);
      neg_log_density_sum[p] -= std::log(density);
    });
  }
  for (double& s : neg_log_density_sum) s /= options.num_projections;
  return neg_log_density_sum;
}

}  // namespace subex
