#ifndef SUBEX_DETECT_FAST_ABOD_H_
#define SUBEX_DETECT_FAST_ABOD_H_

#include "detect/detector.h"

namespace subex {

/// Fast Angle-Based Outlier Detection [Kriegel et al., KDD 2008].
///
/// Computes, per point, the variance of the normalized dot products
/// <x1-p, x2-p> / (|x1-p|^2 * |x2-p|^2) over pairs of its k nearest
/// neighbors (the O(k n^2) approximation of the O(n^3) exact ABOD). Points
/// surrounded by neighbors in many directions have high angle variance
/// (inliers); border points have low variance (outliers). Following the
/// testbed's orientation convention the returned score is the *negated*
/// variance, so higher = more outlying.
class FastAbod final : public Detector {
 public:
  /// `k`: neighborhood size; the testbed default is 10.
  explicit FastAbod(int k = 10);

  std::string name() const override { return "FastABOD"; }
  std::vector<double> Score(const Dataset& data,
                            const Subspace& subspace) const override;

  int k() const { return k_; }

 private:
  int k_;
};

}  // namespace subex

#endif  // SUBEX_DETECT_FAST_ABOD_H_
