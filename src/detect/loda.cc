#include "detect/loda.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.h"
#include "common/rng.h"

namespace subex {

Loda::Loda(const Options& options) : options_(options) {
  SUBEX_CHECK(options.num_projections >= 1);
  SUBEX_CHECK(options.num_bins >= 0);
}

std::vector<double> Loda::Score(const Dataset& data,
                                const Subspace& subspace) const {
  const int n = static_cast<int>(data.num_points());
  SUBEX_CHECK(n >= 3);

  std::vector<FeatureId> full;
  std::span<const FeatureId> features = subspace.AsSpan();
  if (subspace.empty()) {
    full.resize(data.num_features());
    std::iota(full.begin(), full.end(), 0);
    features = full;
  }
  const int dim = static_cast<int>(features.size());
  const int sparse_count =
      std::max(1, static_cast<int>(std::lround(std::sqrt(dim))));
  const int bins =
      options_.num_bins > 0
          ? options_.num_bins
          : std::max(4, static_cast<int>(2.0 * std::cbrt(n)));

  Rng rng(options_.seed ^ SubspaceHash()(subspace));
  std::vector<double> neg_log_density_sum(n, 0.0);
  std::vector<double> projected(n);
  std::vector<int> histogram(bins);

  for (int t = 0; t < options_.num_projections; ++t) {
    // Sparse Gaussian projector over the subspace's features.
    const std::vector<int> active =
        rng.SampleWithoutReplacement(dim, sparse_count);
    std::vector<double> weights(active.size());
    for (double& w : weights) w = rng.Gaussian();

    for (int p = 0; p < n; ++p) {
      double v = 0.0;
      for (std::size_t j = 0; j < active.size(); ++j) {
        v += weights[j] * data.Value(p, features[active[j]]);
      }
      projected[p] = v;
    }
    const auto [lo_it, hi_it] =
        std::minmax_element(projected.begin(), projected.end());
    const double lo = *lo_it;
    const double width = std::max((*hi_it - lo) / bins, 1e-12);

    std::fill(histogram.begin(), histogram.end(), 0);
    for (int p = 0; p < n; ++p) {
      const int b = std::min(
          bins - 1, static_cast<int>((projected[p] - lo) / width));
      ++histogram[b];
    }
    // Laplace-smoothed density so empty bins stay finite.
    for (int p = 0; p < n; ++p) {
      const int b = std::min(
          bins - 1, static_cast<int>((projected[p] - lo) / width));
      const double density = (histogram[b] + 1.0) /
                             ((n + bins) * width);
      neg_log_density_sum[p] -= std::log(density);
    }
  }
  for (double& s : neg_log_density_sum) s /= options_.num_projections;
  return neg_log_density_sum;
}

}  // namespace subex
