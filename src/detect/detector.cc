#include "detect/detector.h"

#include "common/check.h"
#include "detect/fast_abod.h"
#include "detect/isolation_forest.h"
#include "detect/lof.h"
#include "stats/descriptive.h"

namespace subex {

std::vector<double> ScoreStandardized(const Detector& detector,
                                      const Dataset& data,
                                      const Subspace& subspace) {
  std::vector<double> scores = detector.Score(data, subspace);
  if (detector.ReturnsStandardizedScores()) return scores;
  return Standardize(scores);
}

std::unique_ptr<Detector> MakeDetector(DetectorKind kind, std::uint64_t seed) {
  switch (kind) {
    case DetectorKind::kLof:
      return std::make_unique<Lof>(15);
    case DetectorKind::kFastAbod:
      return std::make_unique<FastAbod>(10);
    case DetectorKind::kIsolationForest: {
      IsolationForest::Options options;
      options.seed = seed;
      return std::make_unique<IsolationForest>(options);
    }
  }
  SUBEX_CHECK_MSG(false, "unknown detector kind");
  return nullptr;
}

std::vector<DetectorKind> AllDetectorKinds() {
  return {DetectorKind::kLof, DetectorKind::kFastAbod,
          DetectorKind::kIsolationForest};
}

const char* DetectorKindName(DetectorKind kind) {
  switch (kind) {
    case DetectorKind::kLof:
      return "LOF";
    case DetectorKind::kFastAbod:
      return "FastABOD";
    case DetectorKind::kIsolationForest:
      return "iForest";
  }
  return "unknown";
}

}  // namespace subex
