#ifndef SUBEX_DETECT_ISOLATION_FOREST_H_
#define SUBEX_DETECT_ISOLATION_FOREST_H_

#include <cstdint>

#include "detect/detector.h"

namespace subex {

/// Isolation Forest [Liu, Ting & Zhou, ICDM 2008].
///
/// Isolation-based detector: builds `num_trees` random binary trees on
/// subsamples of the data (uniform feature, uniform split value) and scores
/// each point by its average path length, normalized to
/// `s(x) = 2^(-E(h(x)) / c(subsample))` so outliers approach 1 and inliers
/// fall below 0.5. Following §3.1 the detector averages the score over
/// `num_repetitions` independent forests to reduce variance.
///
/// Scoring is deterministic: the forest seeds derive from the constructor
/// seed and the queried subspace, so repeated calls (possibly from multiple
/// threads) agree.
class IsolationForest final : public Detector {
 public:
  struct Options {
    int num_trees = 100;      ///< t in the original paper.
    int subsample_size = 256; ///< psi; clamped to the dataset size.
    int num_repetitions = 10; ///< Independent forests averaged (§3.1).
    std::uint64_t seed = 42;
  };

  /// Builds a forest detector with the given options.
  explicit IsolationForest(const Options& options);
  /// Builds a forest detector with the §3.1 defaults.
  IsolationForest() : IsolationForest(Options{}) {}

  std::string name() const override { return "iForest"; }
  std::vector<double> Score(const Dataset& data,
                            const Subspace& subspace) const override;

  const Options& options() const { return options_; }

  /// Average path length of an unsuccessful BST search in a tree of `n`
  /// points: c(n) = 2 H(n-1) - 2 (n-1)/n, with c(1) = 0. Exposed for tests.
  static double AveragePathLength(int n);

 private:
  Options options_;
};

}  // namespace subex

#endif  // SUBEX_DETECT_ISOLATION_FOREST_H_
