#ifndef SUBEX_MEM_EVICTION_MANAGER_H_
#define SUBEX_MEM_EVICTION_MANAGER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace subex {

/// Implemented by every cache the `EvictionManager` governs. The manager
/// calls these during a pressure pass — never while holding its own
/// accounting mutex, so implementations are free to take their internal
/// locks and to call `Release`/`ReleaseEvicted` re-entrantly.
class MemReclaimer {
 public:
  virtual ~MemReclaimer() = default;

  /// Manager tick of the cache's least recently used *evictable* (resident,
  /// unpinned) entry, or UINT64_MAX when nothing can be freed. The manager
  /// reclaims from the cache whose tail is globally oldest first, which
  /// approximates one process-wide LRU without cross-cache lock coupling.
  virtual std::uint64_t OldestEvictableTick() = 0;

  /// Frees least-recently-used unpinned entries until at least
  /// `target_bytes` are released or nothing evictable remains; returns the
  /// bytes actually freed. The implementation reports the freed bytes back
  /// through `ReleaseEvicted`.
  virtual std::size_t ReclaimBytes(std::size_t target_bytes) = 0;
};

/// Per-cache slice of an `EvictionManagerSnapshot`.
struct MemCacheStats {
  std::string name;
  std::size_t quota_bytes = 0;     ///< 0 = no dedicated quota.
  std::size_t resident_bytes = 0;  ///< Charged bytes, pinned included.
  std::size_t pinned_bytes = 0;    ///< Bytes currently pinned (unevictable).
  std::uint64_t pinned_count = 0;  ///< Entries currently pinned.
  std::uint64_t evictions = 0;     ///< Cumulative entries evicted.
  std::uint64_t reclaim_calls = 0;  ///< Pressure passes that asked this cache.

  std::string ToJson() const;
};

/// Point-in-time view of the manager: global budget/usage plus one
/// `MemCacheStats` per registered cache.
struct EvictionManagerSnapshot {
  std::size_t budget_bytes = 0;
  std::size_t used_bytes = 0;
  std::uint64_t reserve_calls = 0;
  std::uint64_t reclaim_passes = 0;    ///< Reserves that triggered pressure.
  std::uint64_t reserve_failures = 0;  ///< Non-overcommit reserves refused.
  std::uint64_t overcommits = 0;       ///< Must-succeed reserves over budget.
  std::vector<MemCacheStats> caches;

  /// `{"budget_bytes":...,"used_bytes":...,...,"caches":{name:{...}}}` —
  /// the shape the `kStats` endpoint nests under "mem".
  std::string ToJson() const;
};

/// Knobs of an `EvictionManager`.
struct EvictionManagerOptions {
  /// Global byte budget across all registered caches.
  std::size_t budget_bytes = 512ull << 20;
};

/// Process-wide memory governor: one byte budget shared by every registered
/// cache, per-cache quotas, and pressure callbacks that evict
/// least-recently-used entries across caches when a reservation would
/// exceed either bound.
///
/// Protocol for a governed cache:
///  * `Register` once with a display name, optional quota and a
///    `MemReclaimer`; `Unregister` on destruction.
///  * Call `Reserve` BEFORE taking internal locks for an entry about to be
///    retained; on `false`, do not retain it. Reservations are charged
///    up-front, so accounting is conservative under concurrency.
///  * Call `Release` when entries are dropped outside a pressure pass and
///    `ReleaseEvicted` for entries freed by `ReclaimBytes`.
///  * Stamp entries with `NextTick()` on every touch — ticks are the
///    unified recency clock that orders eviction across caches.
///  * `NotePin`/`NoteUnpin` keep the pinned-byte gauge honest; pinned
///    entries must be skipped by the cache's own `ReclaimBytes`.
///
/// Reserve with `allow_overcommit = true` never fails: when even a pressure
/// pass cannot make room (everything pinned), the reservation goes through
/// and is counted as an overcommit — callers use this for chunk loads whose
/// compute cannot proceed without the data; the budget then bounds the
/// *unpinned* resident set while the pinned working set stays small by
/// construction.
///
/// Lock order: the accounting mutex is a leaf (never held while calling
/// into a reclaimer); a separate pressure mutex serializes reclaim passes
/// with each other and with `Unregister`, so a reclaimer is never invoked
/// after its cache unregistered.
class EvictionManager {
 public:
  /// Registration handle; 0 is never a valid id.
  using CacheId = std::size_t;

  using Options = EvictionManagerOptions;

  /// The process-wide manager the serving stack registers with (512 MB
  /// default budget; benches and tools resize it via `SetBudget`).
  static EvictionManager& Global();

  explicit EvictionManager(const Options& options = {});
  ~EvictionManager();

  EvictionManager(const EvictionManager&) = delete;
  EvictionManager& operator=(const EvictionManager&) = delete;

  /// Registers a cache. `quota_bytes` of 0 means only the global budget
  /// binds. `reclaimer` may be null for a cache that cannot shed load (it
  /// is then skipped by pressure passes). Display names need not be unique.
  CacheId Register(std::string name, std::size_t quota_bytes,
                   MemReclaimer* reclaimer);

  /// Removes the cache and un-charges whatever it still had reserved.
  void Unregister(CacheId id);

  /// Monotonic recency clock shared by every governed cache.
  std::uint64_t NextTick() {
    return tick_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Charges `bytes` to `id`. When the charge pushes the cache over its
  /// quota or the process over the global budget, runs a pressure pass
  /// (self-reclaim for quota, globally-LRU reclaim for budget). Returns
  /// false — with the charge rolled back — if the overage persists and
  /// `allow_overcommit` is false.
  bool Reserve(CacheId id, std::size_t bytes, bool allow_overcommit = false);

  /// Un-charges `bytes` dropped by the cache itself (overwrite, clear).
  void Release(CacheId id, std::size_t bytes);

  /// Un-charges `bytes` freed as `entries` evictions (from the cache's own
  /// LRU enforcement or a pressure pass) and bumps eviction counters.
  void ReleaseEvicted(CacheId id, std::size_t bytes, std::uint64_t entries);

  /// Accounts an entry of `bytes` becoming pinned / unpinned.
  void NotePin(CacheId id, std::size_t bytes);
  void NoteUnpin(CacheId id, std::size_t bytes);

  /// Rebudgets at runtime (bench sweeps); shrinking triggers an immediate
  /// pressure pass.
  void SetBudget(std::size_t budget_bytes);

  std::size_t budget_bytes() const;
  std::size_t used_bytes() const;

  EvictionManagerSnapshot snapshot() const;

 private:
  struct CacheEntry {
    std::string name;
    std::size_t quota_bytes = 0;
    MemReclaimer* reclaimer = nullptr;
    bool alive = false;
    std::size_t resident_bytes = 0;
    std::size_t pinned_bytes = 0;
    std::uint64_t pinned_count = 0;
    std::uint64_t evictions = 0;
    std::uint64_t reclaim_calls = 0;
  };

  /// Global overage right now (0 when within budget). Caller holds mutex_.
  std::size_t GlobalDeficitLocked() const {
    return used_ > budget_ ? used_ - budget_ : 0;
  }

  /// Runs reclaimers until the global budget and `id`'s quota are met or no
  /// progress is possible. Takes pressure_mutex_; must be called without
  /// mutex_ held. Returns true when both constraints ended satisfied.
  bool PressurePass(CacheId id);

  mutable std::mutex mutex_;        // Accounting: caches_, used_, counters.
  std::mutex pressure_mutex_;       // Serializes reclaim passes/unregister.
  std::vector<std::unique_ptr<CacheEntry>> caches_;  // index = id - 1.
  std::size_t budget_ = 0;
  /// Global-registry instruments (looked up once; obs may compile them out).
  class Gauge* used_gauge_ = nullptr;
  class Gauge* budget_gauge_ = nullptr;
  class Counter* evictions_counter_ = nullptr;
  std::size_t used_ = 0;
  std::uint64_t reserve_calls_ = 0;
  std::uint64_t reclaim_passes_ = 0;
  std::uint64_t reserve_failures_ = 0;
  std::uint64_t overcommits_ = 0;
  std::atomic<std::uint64_t> tick_{1};
};

}  // namespace subex

#endif  // SUBEX_MEM_EVICTION_MANAGER_H_
