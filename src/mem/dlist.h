#ifndef SUBEX_MEM_DLIST_H_
#define SUBEX_MEM_DLIST_H_

#include <cstddef>

#include "common/check.h"

namespace subex {

/// Intrusive hook of a `DList`. Embed one per cache entry / slot; `item`
/// points back at the owning entry so an eviction walk can recover it
/// without a side map. A node belongs to at most one list at a time.
struct DListNode {
  DListNode* prev = nullptr;
  DListNode* next = nullptr;
  /// Back-pointer to the entry embedding this node (set once by the owner).
  void* item = nullptr;

  bool linked() const { return prev != nullptr; }
};

/// Intrusive doubly-linked recency list: front = most recently used, back =
/// least recently used. Shared by every cache the `EvictionManager` governs
/// (score caches, chunk stores) so they all do LRU bookkeeping the same way
/// with zero per-touch allocation. Not internally synchronized — the owning
/// cache's lock guards it.
class DList {
 public:
  DList() { sentinel_.prev = sentinel_.next = &sentinel_; }

  DList(const DList&) = delete;
  DList& operator=(const DList&) = delete;

  bool empty() const { return sentinel_.next == &sentinel_; }
  std::size_t size() const { return size_; }

  /// Links `node` at the MRU end. `node` must be unlinked.
  void PushFront(DListNode* node) {
    SUBEX_DCHECK(!node->linked());
    node->prev = &sentinel_;
    node->next = sentinel_.next;
    sentinel_.next->prev = node;
    sentinel_.next = node;
    ++size_;
  }

  /// Unlinks `node`; no-op for an unlinked node.
  void Remove(DListNode* node) {
    if (!node->linked()) return;
    node->prev->next = node->next;
    node->next->prev = node->prev;
    node->prev = node->next = nullptr;
    --size_;
  }

  /// Marks `node` most recently used (links it if currently unlinked).
  void MoveToFront(DListNode* node) {
    Remove(node);
    PushFront(node);
  }

  /// The LRU-end node, or nullptr when empty.
  DListNode* Tail() const {
    return sentinel_.prev == &sentinel_ ? nullptr : sentinel_.prev;
  }

  /// The node one step closer to the MRU end than `node`, or nullptr at the
  /// front — lets eviction walks skip pinned entries: start at `Tail()`,
  /// advance with `TowardFront` until a victim qualifies.
  DListNode* TowardFront(DListNode* node) const {
    return node->prev == &sentinel_ ? nullptr : node->prev;
  }

 private:
  mutable DListNode sentinel_;
  std::size_t size_ = 0;
};

}  // namespace subex

#endif  // SUBEX_MEM_DLIST_H_
