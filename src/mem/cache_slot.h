#ifndef SUBEX_MEM_CACHE_SLOT_H_
#define SUBEX_MEM_CACHE_SLOT_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>

#include "mem/dlist.h"

namespace subex {

/// Implemented by caches that hand out `Pinned<T>` handles; `UnpinSlot` is
/// called (possibly from another thread) when the last handle of a slot is
/// destroyed. The pointer identifies the slot; the cache casts it back.
class SlotOwner {
 public:
  virtual void UnpinSlot(void* slot) = 0;

 protected:
  ~SlotOwner() = default;
};

/// One governed cache entry: a lazily materialized value plus the
/// bookkeeping the eviction machinery needs. All fields are guarded by the
/// owning cache's lock; the slot itself is never handed across threads —
/// only `Pinned<T>` handles are.
///
/// Lifecycle: kEmpty -> kLoading (one loader thread; others wait) ->
/// kLoaded. Eviction resets a kLoaded, pin-free slot back to kEmpty. While
/// `pins > 0` the slot is unlinked from the LRU list and can never be
/// evicted, so in-flight compute holds its data at a stable address for as
/// long as it needs.
template <typename T>
struct CacheSlot {
  enum class State : std::uint8_t { kEmpty, kLoading, kLoaded };

  DListNode node;
  std::shared_ptr<const T> value;
  State state = State::kEmpty;
  int pins = 0;
  /// Bytes charged against the `EvictionManager` while resident.
  std::size_t bytes = 0;
  /// Manager tick of the last touch; orders eviction across caches.
  std::uint64_t tick = 0;
};

/// RAII pin of a cache slot's value. While alive, the slot cannot be
/// evicted and `get()` stays valid; destruction (or release) unpins via the
/// owning cache. Movable, not copyable — one handle, one pin.
template <typename T>
class Pinned {
 public:
  Pinned() = default;
  Pinned(SlotOwner* owner, void* slot, std::shared_ptr<const T> value)
      : owner_(owner), slot_(slot), value_(std::move(value)) {}

  Pinned(const Pinned&) = delete;
  Pinned& operator=(const Pinned&) = delete;

  Pinned(Pinned&& other) noexcept
      : owner_(std::exchange(other.owner_, nullptr)),
        slot_(std::exchange(other.slot_, nullptr)),
        value_(std::move(other.value_)) {}

  Pinned& operator=(Pinned&& other) noexcept {
    if (this != &other) {
      Release();
      owner_ = std::exchange(other.owner_, nullptr);
      slot_ = std::exchange(other.slot_, nullptr);
      value_ = std::move(other.value_);
    }
    return *this;
  }

  ~Pinned() { Release(); }

  /// Drops the pin early (idempotent).
  void Release() {
    if (owner_ != nullptr) {
      owner_->UnpinSlot(slot_);
      owner_ = nullptr;
      slot_ = nullptr;
    }
    value_.reset();
  }

  bool valid() const { return value_ != nullptr; }
  const T* get() const { return value_.get(); }
  const T& operator*() const { return *value_; }
  const T* operator->() const { return value_.get(); }

 private:
  SlotOwner* owner_ = nullptr;
  void* slot_ = nullptr;
  std::shared_ptr<const T> value_;
};

}  // namespace subex

#endif  // SUBEX_MEM_CACHE_SLOT_H_
