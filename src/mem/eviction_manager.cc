#include "mem/eviction_manager.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "common/json.h"
#include "fault/fault.h"
#include "obs/event_log.h"
#include "obs/registry.h"

namespace subex {

namespace {

/// Pressure passes re-derive deficits after every reclaimer call, so this
/// bound only cuts off pathological no-progress loops.
constexpr int kMaxPressureRounds = 64;

}  // namespace

std::string MemCacheStats::ToJson() const {
  return JsonObject()
      .Add("quota_bytes", static_cast<std::uint64_t>(quota_bytes))
      .Add("resident_bytes", static_cast<std::uint64_t>(resident_bytes))
      .Add("pinned_bytes", static_cast<std::uint64_t>(pinned_bytes))
      .Add("pinned_count", pinned_count)
      .Add("evictions", evictions)
      .Add("reclaim_calls", reclaim_calls)
      .Build();
}

std::string EvictionManagerSnapshot::ToJson() const {
  JsonObject cache_obj;
  for (const MemCacheStats& cache : caches) {
    cache_obj.AddRaw(cache.name, cache.ToJson());
  }
  return JsonObject()
      .Add("budget_bytes", static_cast<std::uint64_t>(budget_bytes))
      .Add("used_bytes", static_cast<std::uint64_t>(used_bytes))
      .Add("reserve_calls", reserve_calls)
      .Add("reclaim_passes", reclaim_passes)
      .Add("reserve_failures", reserve_failures)
      .Add("overcommits", overcommits)
      .AddRaw("caches", cache_obj.Build())
      .Build();
}

EvictionManager& EvictionManager::Global() {
  static EvictionManager* instance = new EvictionManager();
  return *instance;
}

EvictionManager::EvictionManager(const Options& options)
    : budget_(options.budget_bytes),
      used_gauge_(&MetricsRegistry::Global().GetGauge("mem.used_bytes")),
      budget_gauge_(&MetricsRegistry::Global().GetGauge("mem.budget_bytes")),
      evictions_counter_(
          &MetricsRegistry::Global().GetCounter("mem.evictions")) {
  budget_gauge_->Set(static_cast<std::int64_t>(budget_));
}

EvictionManager::~EvictionManager() = default;

EvictionManager::CacheId EvictionManager::Register(std::string name,
                                                   std::size_t quota_bytes,
                                                   MemReclaimer* reclaimer) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto entry = std::make_unique<CacheEntry>();
  entry->name = std::move(name);
  entry->quota_bytes = quota_bytes;
  entry->reclaimer = reclaimer;
  entry->alive = true;
  caches_.push_back(std::move(entry));
  return caches_.size();
}

void EvictionManager::Unregister(CacheId id) {
  // Pressure lock first: once we hold it, no reclaim pass is mid-flight and
  // none can start, so the cache's reclaimer is never called again.
  std::lock_guard<std::mutex> pressure(pressure_mutex_);
  std::lock_guard<std::mutex> lock(mutex_);
  SUBEX_CHECK(id >= 1 && id <= caches_.size());
  CacheEntry& entry = *caches_[id - 1];
  SUBEX_CHECK_MSG(entry.alive, "cache unregistered twice");
  used_ -= entry.resident_bytes;
  entry.resident_bytes = 0;
  entry.pinned_bytes = 0;
  entry.pinned_count = 0;
  entry.alive = false;
  entry.reclaimer = nullptr;
  used_gauge_->Set(static_cast<std::int64_t>(used_));
}

bool EvictionManager::Reserve(CacheId id, std::size_t bytes,
                              bool allow_overcommit) {
  // Injected denial models a budget that cannot be reclaimed. Overcommit
  // reservations are exempt: their contract is that they never fail.
  FaultAction fault_action;
  if (!allow_overcommit &&
      SUBEX_FAULT(FaultPoint::kMemReserve, &fault_action)) {
    std::lock_guard<std::mutex> lock(mutex_);
    SUBEX_CHECK(id >= 1 && id <= caches_.size());
    SUBEX_CHECK(caches_[id - 1]->alive);
    ++reserve_calls_;
    ++reserve_failures_;
    return false;
  }
  bool over = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    SUBEX_CHECK(id >= 1 && id <= caches_.size());
    CacheEntry& entry = *caches_[id - 1];
    SUBEX_CHECK(entry.alive);
    ++reserve_calls_;
    entry.resident_bytes += bytes;
    used_ += bytes;
    over = GlobalDeficitLocked() > 0 ||
           (entry.quota_bytes > 0 && entry.resident_bytes > entry.quota_bytes);
    used_gauge_->Set(static_cast<std::int64_t>(used_));
  }
  if (!over) return true;

  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++reclaim_passes_;
  }
  SUBEX_EVENT(EventSeverity::kInfo, "mem.pressure_reclaim",
              JsonObject()
                  .Add("requested_bytes", static_cast<std::uint64_t>(bytes))
                  .Add("used_bytes", static_cast<std::uint64_t>(used_bytes()))
                  .Add("budget_bytes",
                       static_cast<std::uint64_t>(this->budget_bytes()))
                  .Build());
  if (PressurePass(id)) return true;

  std::lock_guard<std::mutex> lock(mutex_);
  if (allow_overcommit) {
    ++overcommits_;
    SUBEX_EVENT(EventSeverity::kWarn, "mem.overcommit",
                JsonObject()
                    .Add("requested_bytes", static_cast<std::uint64_t>(bytes))
                    .Add("used_bytes", static_cast<std::uint64_t>(used_))
                    .Add("budget_bytes", static_cast<std::uint64_t>(budget_))
                    .Build());
    return true;
  }
  CacheEntry& entry = *caches_[id - 1];
  entry.resident_bytes -= bytes;
  used_ -= bytes;
  ++reserve_failures_;
  used_gauge_->Set(static_cast<std::int64_t>(used_));
  return false;
}

bool EvictionManager::PressurePass(CacheId id) {
  std::lock_guard<std::mutex> pressure(pressure_mutex_);
  for (int round = 0; round < kMaxPressureRounds; ++round) {
    std::size_t global_deficit = 0;
    std::size_t self_deficit = 0;
    MemReclaimer* self = nullptr;
    struct Candidate {
      MemReclaimer* reclaimer;
      CacheId id;
    };
    std::vector<Candidate> candidates;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      global_deficit = GlobalDeficitLocked();
      CacheEntry& entry = *caches_[id - 1];
      if (entry.quota_bytes > 0 && entry.resident_bytes > entry.quota_bytes) {
        self_deficit = entry.resident_bytes - entry.quota_bytes;
        self = entry.reclaimer;
      }
      if (global_deficit > 0) {
        for (std::size_t i = 0; i < caches_.size(); ++i) {
          if (caches_[i]->alive && caches_[i]->reclaimer != nullptr) {
            candidates.push_back(Candidate{caches_[i]->reclaimer, i + 1});
          }
        }
      }
    }
    if (global_deficit == 0 && self_deficit == 0) return true;

    std::size_t freed = 0;
    if (self_deficit > 0 && self != nullptr) {
      {
        std::lock_guard<std::mutex> lock(mutex_);
        ++caches_[id - 1]->reclaim_calls;
      }
      freed += self->ReclaimBytes(self_deficit);
    }
    if (global_deficit > 0) {
      // Reclaim from the cache whose evictable tail is globally oldest —
      // the unified-LRU ordering the per-entry ticks exist for.
      MemReclaimer* best = nullptr;
      CacheId best_id = 0;
      std::uint64_t best_tick = UINT64_MAX;
      for (const Candidate& candidate : candidates) {
        const std::uint64_t tick = candidate.reclaimer->OldestEvictableTick();
        if (tick < best_tick) {
          best_tick = tick;
          best = candidate.reclaimer;
          best_id = candidate.id;
        }
      }
      if (best != nullptr) {
        {
          std::lock_guard<std::mutex> lock(mutex_);
          ++caches_[best_id - 1]->reclaim_calls;
        }
        freed += best->ReclaimBytes(global_deficit);
      }
    }
    if (freed == 0) break;  // Everything left is pinned or empty.
  }
  std::lock_guard<std::mutex> lock(mutex_);
  const CacheEntry& entry = *caches_[id - 1];
  return GlobalDeficitLocked() == 0 &&
         (entry.quota_bytes == 0 || entry.resident_bytes <= entry.quota_bytes);
}

void EvictionManager::Release(CacheId id, std::size_t bytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  SUBEX_CHECK(id >= 1 && id <= caches_.size());
  CacheEntry& entry = *caches_[id - 1];
  if (!entry.alive) return;  // Unregister already zeroed the accounting.
  SUBEX_CHECK(entry.resident_bytes >= bytes && used_ >= bytes);
  entry.resident_bytes -= bytes;
  used_ -= bytes;
  used_gauge_->Set(static_cast<std::int64_t>(used_));
}

void EvictionManager::ReleaseEvicted(CacheId id, std::size_t bytes,
                                     std::uint64_t entries) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    SUBEX_CHECK(id >= 1 && id <= caches_.size());
    CacheEntry& entry = *caches_[id - 1];
    if (entry.alive) {
      SUBEX_CHECK(entry.resident_bytes >= bytes && used_ >= bytes);
      entry.resident_bytes -= bytes;
      used_ -= bytes;
      entry.evictions += entries;
      used_gauge_->Set(static_cast<std::int64_t>(used_));
    }
  }
  evictions_counter_->Increment(entries);
}

void EvictionManager::NotePin(CacheId id, std::size_t bytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  SUBEX_CHECK(id >= 1 && id <= caches_.size());
  CacheEntry& entry = *caches_[id - 1];
  if (!entry.alive) return;
  entry.pinned_bytes += bytes;
  ++entry.pinned_count;
}

void EvictionManager::NoteUnpin(CacheId id, std::size_t bytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  SUBEX_CHECK(id >= 1 && id <= caches_.size());
  CacheEntry& entry = *caches_[id - 1];
  if (!entry.alive) return;
  SUBEX_CHECK(entry.pinned_bytes >= bytes && entry.pinned_count >= 1);
  entry.pinned_bytes -= bytes;
  --entry.pinned_count;
}

void EvictionManager::SetBudget(std::size_t budget_bytes) {
  bool over = false;
  CacheId any_cache = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    budget_ = budget_bytes;
    over = GlobalDeficitLocked() > 0;
    // A pressure pass needs a cache id to evaluate quota constraints
    // against; any live cache works — only the global deficit is at stake.
    for (std::size_t i = 0; i < caches_.size() && any_cache == 0; ++i) {
      if (caches_[i]->alive) any_cache = i + 1;
    }
    budget_gauge_->Set(static_cast<std::int64_t>(budget_));
  }
  if (over && any_cache != 0) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++reclaim_passes_;
    }
    PressurePass(any_cache);
  }
}

std::size_t EvictionManager::budget_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return budget_;
}

std::size_t EvictionManager::used_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return used_;
}

EvictionManagerSnapshot EvictionManager::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  EvictionManagerSnapshot snap;
  snap.budget_bytes = budget_;
  snap.used_bytes = used_;
  snap.reserve_calls = reserve_calls_;
  snap.reclaim_passes = reclaim_passes_;
  snap.reserve_failures = reserve_failures_;
  snap.overcommits = overcommits_;
  for (const auto& cache : caches_) {
    if (!cache->alive) continue;
    MemCacheStats stats;
    stats.name = cache->name;
    stats.quota_bytes = cache->quota_bytes;
    stats.resident_bytes = cache->resident_bytes;
    stats.pinned_bytes = cache->pinned_bytes;
    stats.pinned_count = cache->pinned_count;
    stats.evictions = cache->evictions;
    stats.reclaim_calls = cache->reclaim_calls;
    snap.caches.push_back(std::move(stats));
  }
  return snap;
}

}  // namespace subex
