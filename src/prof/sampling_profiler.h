#ifndef SUBEX_PROF_SAMPLING_PROFILER_H_
#define SUBEX_PROF_SAMPLING_PROFILER_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace subex {

/// Knobs of one profiling session.
struct SamplingProfilerOptions {
  /// SIGPROF delivery rate per registered thread. 97 (a prime, so the
  /// timer never phase-locks with millisecond-periodic work) keeps the
  /// enabled-but-idle overhead well under the 2% budget.
  int sample_hz = 97;
  /// Deepest stack recorded per sample; deeper frames are truncated at
  /// the leaf end (the root-side frames are the ones flamegraphs need).
  std::size_t max_stack_depth = 32;
  /// Samples retained per thread. The ring is fill-once (no wraparound —
  /// overwriting racing the exporter is not worth a seqlock); once full,
  /// further samples tick the drop counter. 4096 at 97 Hz ≈ 42 s of
  /// capture per thread between `Clear()`s.
  std::size_t ring_capacity = 4096;
};

#ifndef SUBEX_OBS_DISABLED

/// Wall-clock sampling profiler: every registered thread gets a
/// `timer_create(CLOCK_MONOTONIC, SIGEV_THREAD_ID)` POSIX timer delivering
/// SIGPROF at `sample_hz`; the async-signal-safe handler captures a
/// `backtrace()` into that thread's bounded ring. `ToCollapsedText()`
/// symbolizes (dladdr + demangle — link with `-rdynamic` so static
/// executables resolve their own symbols) and aggregates into collapsed
/// flamegraph lines (`frame;frame;frame count`).
///
/// Thread coverage: `Start()` sweeps `/proc/self/task` and attaches a
/// timer to every thread alive at that moment; `ThreadPool` workers
/// additionally register/unregister through the `common` thread lifecycle
/// hooks (installed by this translation unit), so pools created *after*
/// `Start()` are sampled too. Other threads spawned later can opt in with
/// `RegisterCurrentThread()`.
///
/// Degradation: when `timer_create` with SIGEV_THREAD_ID is unavailable
/// (exotic kernels, `SUBEX_PROF_NO_TIMER=1`), `Start()` returns false with
/// an explanation and the profiler stays a no-op — callers keep working,
/// dumps are empty.
class SamplingProfiler {
 public:
  /// The process-wide profiler (one SIGPROF disposition per process, so
  /// one profiler per process).
  static SamplingProfiler& Global();

  /// Arms timers for every known thread. False + `*error` when sampling
  /// is unsupported or already running. Previously collected samples are
  /// kept (call `Clear()` for a fresh capture).
  bool Start(const SamplingProfilerOptions& options = {},
             std::string* error = nullptr);
  /// Disarms and deletes all timers; samples stay readable.
  void Stop();
  bool running() const;

  /// Attach (create a timer for) the calling thread. A no-op while
  /// stopped — `Start()`'s process sweep covers threads that already
  /// exist. Idempotent per thread.
  void RegisterCurrentThread();
  /// Detach the calling thread (its collected samples are kept).
  void UnregisterCurrentThread();

  /// True when this kernel can deliver per-thread SIGPROF timers
  /// (`SUBEX_PROF_NO_TIMER=1` forces false).
  static bool SupportedOnThisSystem();

  std::uint64_t samples() const;        ///< Stacks captured since Clear().
  std::uint64_t dropped() const;        ///< Samples lost to full rings.
  int sample_hz() const;                ///< 0 when not running.

  /// Collapsed-stack flamegraph text, one `frame;frame;... count` line per
  /// distinct stack, root-first, highest count first, newline-terminated.
  /// Empty string when nothing was captured.
  std::string ToCollapsedText() const;
  /// Drops all captured samples and resets the sample/drop counters.
  void Clear();

 private:
  SamplingProfiler() = default;
};

#else  // SUBEX_OBS_DISABLED

class SamplingProfiler {
 public:
  static SamplingProfiler& Global() {
    static SamplingProfiler profiler;
    return profiler;
  }
  bool Start(const SamplingProfilerOptions& = {}, std::string* error = nullptr) {
    if (error != nullptr) *error = "observability compiled out";
    return false;
  }
  void Stop() {}
  bool running() const { return false; }
  void RegisterCurrentThread() {}
  void UnregisterCurrentThread() {}
  static bool SupportedOnThisSystem() { return false; }
  std::uint64_t samples() const { return 0; }
  std::uint64_t dropped() const { return 0; }
  int sample_hz() const { return 0; }
  std::string ToCollapsedText() const { return {}; }
  void Clear() {}
};

#endif  // SUBEX_OBS_DISABLED

}  // namespace subex

#endif  // SUBEX_PROF_SAMPLING_PROFILER_H_
