#ifndef SUBEX_PROF_PERF_COUNTERS_H_
#define SUBEX_PROF_PERF_COUNTERS_H_

#include <cstdint>
#include <string>

#include "obs/metrics.h"
#include "obs/registry.h"

namespace subex {

/// One group read of the hardware counters a `PerfCounterGroup` tracks.
/// Members whose event could not be opened (missing PMU, perf denied) read
/// as 0; `valid` is false when no counter at all is live, in which case the
/// whole struct is zeros.
struct PerfCounterValues {
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
  std::uint64_t llc_misses = 0;
  std::uint64_t branch_misses = 0;
  bool valid = false;

  /// Instructions retired per cycle ×1000 (0 when cycles is 0), the
  /// integer form the `Gauge`-based registry can carry.
  std::int64_t IpcMilli() const {
    if (cycles == 0) return 0;
    return static_cast<std::int64_t>(instructions * 1000 / cycles);
  }
  /// LLC misses per 1000 instructions (0 when instructions is 0).
  std::int64_t LlcMissPerKiloInst() const {
    if (instructions == 0) return 0;
    return static_cast<std::int64_t>(llc_misses * 1000 / instructions);
  }
};

#ifndef SUBEX_OBS_DISABLED

/// A per-thread group of `perf_event_open` hardware counters (cycles,
/// instructions, LLC misses, branch misses; userspace only). Construction
/// probes each event and keeps whatever the kernel grants — on a denied
/// syscall (perf_event_paranoid, seccomp) or an absent PMU (VMs, most CI
/// containers) the group degrades to `available() == false` and every
/// `Read()` returns zeros. Counters follow the thread that opened them, so
/// keep the group thread-local (see `ThisThread()`); reads are one
/// `read(2)` of the group leader.
class PerfCounterGroup {
 public:
  PerfCounterGroup();
  ~PerfCounterGroup();
  PerfCounterGroup(const PerfCounterGroup&) = delete;
  PerfCounterGroup& operator=(const PerfCounterGroup&) = delete;

  /// True when at least the cycle counter opened.
  bool available() const { return leader_fd_ >= 0; }
  /// Current group values (monotonic since construction); zeros with
  /// `valid == false` when unavailable.
  PerfCounterValues Read() const;

  /// The calling thread's lazily-opened group.
  static PerfCounterGroup& ThisThread();
  /// Process-wide probe: true when opening a cycle counter succeeds (or
  /// has succeeded once). `SUBEX_PROF_NO_PERF=1` forces false — CI uses it
  /// to exercise the denied path deterministically.
  static bool SupportedOnThisSystem();

 private:
  int leader_fd_ = -1;       // cycles; < 0 when the group is dead.
  int instructions_fd_ = -1;
  int llc_misses_fd_ = -1;
  int branch_misses_fd_ = -1;
  // Position of each member in the PERF_FORMAT_GROUP read buffer, -1 when
  // that event failed to open.
  int slot_instructions_ = -1;
  int slot_llc_misses_ = -1;
  int slot_branch_misses_ = -1;
  int slots_ = 0;
};

/// Pre-resolved registry instruments for one profiled code region (a
/// "kernel"), so the hot path never takes the registry mutex. Construct
/// once (service constructor, bench setup) and hand to `CounterSpan`s.
/// Registration happens even when perf is unavailable — the series exist
/// with value 0, which keeps scrapes and `--require` checks stable across
/// environments.
struct ProfCounterSet {
  Counter* cycles = nullptr;
  Counter* instructions = nullptr;
  Counter* llc_misses = nullptr;
  Counter* branch_misses = nullptr;
  Counter* spans = nullptr;       ///< Completed CounterSpans.
  Gauge* ipc_milli = nullptr;     ///< Cumulative IPC ×1000.
  Gauge* llc_miss_per_kilo_inst = nullptr;  ///< Cumulative misses/kinst.

  /// Instruments named `prof.<metric>.<label>` in `registry` (the global
  /// one by default), e.g. label "detect.LOF" →
  /// `subex_prof_cycles_detect_LOF_total` on /metrics.
  static ProfCounterSet ForKernel(const std::string& label,
                                  MetricsRegistry* registry = nullptr);
};

/// RAII hardware-counter span: snapshots the calling thread's
/// `PerfCounterGroup` at construction and publishes the delta into a
/// `ProfCounterSet` at destruction. Nests freely with `TraceSpan` (and
/// with other `CounterSpan`s — the counters are monotonic, so inner spans
/// simply subtract out of outer ones' wall coverage). When perf is
/// unavailable only the `spans` counter ticks.
class CounterSpan {
 public:
  explicit CounterSpan(const ProfCounterSet* set);
  ~CounterSpan();
  CounterSpan(const CounterSpan&) = delete;
  CounterSpan& operator=(const CounterSpan&) = delete;

 private:
  const ProfCounterSet* set_;
  PerfCounterValues start_;
};

/// Registers the process-level prof gauges (`prof.perf_available`,
/// `prof.sampler_supported`) and sets them from the runtime probes.
/// Idempotent and cheap; called from server startup and bench mains so
/// the series are scrapeable before any span runs.
void RegisterProfProcessMetrics(MetricsRegistry* registry = nullptr);

#else  // SUBEX_OBS_DISABLED

class PerfCounterGroup {
 public:
  bool available() const { return false; }
  PerfCounterValues Read() const { return {}; }
  static PerfCounterGroup& ThisThread() {
    static PerfCounterGroup group;
    return group;
  }
  static bool SupportedOnThisSystem() { return false; }
};

struct ProfCounterSet {
  static ProfCounterSet ForKernel(const std::string&,
                                  MetricsRegistry* = nullptr) {
    return {};
  }
};

class CounterSpan {
 public:
  explicit CounterSpan(const ProfCounterSet*) {}
};

inline void RegisterProfProcessMetrics(MetricsRegistry* = nullptr) {}

#endif  // SUBEX_OBS_DISABLED

}  // namespace subex

#endif  // SUBEX_PROF_PERF_COUNTERS_H_
