#include "prof/perf_counters.h"

#ifndef SUBEX_OBS_DISABLED

#include <cstdlib>
#include <cstring>
#include <mutex>

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace subex {
namespace {

bool PerfForcedOff() {
  static const bool forced = [] {
    const char* env = std::getenv("SUBEX_PROF_NO_PERF");
    return env != nullptr && env[0] != '\0' && env[0] != '0';
  }();
  return forced;
}

#if defined(__linux__)

int OpenHardwareCounter(std::uint64_t config, int group_fd) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof(attr));
  attr.size = sizeof(attr);
  attr.type = PERF_TYPE_HARDWARE;
  attr.config = config;
  attr.disabled = group_fd < 0 ? 1 : 0;  // Leader starts stopped.
  attr.exclude_kernel = 1;  // Userspace only: works at perf_event_paranoid=2.
  attr.exclude_hv = 1;
  attr.read_format = PERF_FORMAT_GROUP;
  return static_cast<int>(syscall(SYS_perf_event_open, &attr, /*pid=*/0,
                                  /*cpu=*/-1, group_fd, /*flags=*/0));
}

#endif  // __linux__

}  // namespace

PerfCounterGroup::PerfCounterGroup() {
#if defined(__linux__)
  if (PerfForcedOff()) return;
  leader_fd_ = OpenHardwareCounter(PERF_COUNT_HW_CPU_CYCLES, -1);
  if (leader_fd_ < 0) return;  // No PMU / denied: stay a no-op.
  slots_ = 1;                  // Leader occupies slot 0.
  instructions_fd_ = OpenHardwareCounter(PERF_COUNT_HW_INSTRUCTIONS, leader_fd_);
  if (instructions_fd_ >= 0) slot_instructions_ = slots_++;
  llc_misses_fd_ = OpenHardwareCounter(PERF_COUNT_HW_CACHE_MISSES, leader_fd_);
  if (llc_misses_fd_ >= 0) slot_llc_misses_ = slots_++;
  branch_misses_fd_ = OpenHardwareCounter(PERF_COUNT_HW_BRANCH_MISSES,
                                          leader_fd_);
  if (branch_misses_fd_ >= 0) slot_branch_misses_ = slots_++;
  ioctl(leader_fd_, PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP);
  ioctl(leader_fd_, PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP);
#endif
}

PerfCounterGroup::~PerfCounterGroup() {
#if defined(__linux__)
  if (branch_misses_fd_ >= 0) close(branch_misses_fd_);
  if (llc_misses_fd_ >= 0) close(llc_misses_fd_);
  if (instructions_fd_ >= 0) close(instructions_fd_);
  if (leader_fd_ >= 0) close(leader_fd_);
#endif
}

PerfCounterValues PerfCounterGroup::Read() const {
  PerfCounterValues values;
#if defined(__linux__)
  if (leader_fd_ < 0) return values;
  // PERF_FORMAT_GROUP layout: u64 nr, then one u64 per member in open
  // order. 1 + 4 members max.
  std::uint64_t buf[1 + 4] = {0};
  const ssize_t got = read(leader_fd_, buf, sizeof(buf));
  if (got < static_cast<ssize_t>(sizeof(std::uint64_t) * (1 + slots_))) {
    return values;
  }
  values.valid = true;
  values.cycles = buf[1];
  if (slot_instructions_ >= 0) values.instructions = buf[1 + slot_instructions_];
  if (slot_llc_misses_ >= 0) values.llc_misses = buf[1 + slot_llc_misses_];
  if (slot_branch_misses_ >= 0) {
    values.branch_misses = buf[1 + slot_branch_misses_];
  }
#endif
  return values;
}

PerfCounterGroup& PerfCounterGroup::ThisThread() {
  thread_local PerfCounterGroup group;
  return group;
}

bool PerfCounterGroup::SupportedOnThisSystem() {
  static const bool supported = [] {
    if (PerfForcedOff()) return false;
    PerfCounterGroup probe;
    return probe.available();
  }();
  return supported;
}

ProfCounterSet ProfCounterSet::ForKernel(const std::string& label,
                                         MetricsRegistry* registry) {
  MetricsRegistry& reg =
      registry != nullptr ? *registry : MetricsRegistry::Global();
  ProfCounterSet set;
  set.cycles = &reg.GetCounter("prof.cycles." + label);
  set.instructions = &reg.GetCounter("prof.instructions." + label);
  set.llc_misses = &reg.GetCounter("prof.llc_misses." + label);
  set.branch_misses = &reg.GetCounter("prof.branch_misses." + label);
  set.spans = &reg.GetCounter("prof.spans." + label);
  set.ipc_milli = &reg.GetGauge("prof.ipc_milli." + label);
  set.llc_miss_per_kilo_inst =
      &reg.GetGauge("prof.llc_miss_per_kilo_inst." + label);
  return set;
}

CounterSpan::CounterSpan(const ProfCounterSet* set) : set_(set) {
  if (set_ != nullptr) start_ = PerfCounterGroup::ThisThread().Read();
}

CounterSpan::~CounterSpan() {
  if (set_ == nullptr) return;
  if (set_->spans != nullptr) set_->spans->Increment();
  if (!start_.valid) return;
  const PerfCounterValues end = PerfCounterGroup::ThisThread().Read();
  if (!end.valid) return;
  set_->cycles->Increment(end.cycles - start_.cycles);
  set_->instructions->Increment(end.instructions - start_.instructions);
  set_->llc_misses->Increment(end.llc_misses - start_.llc_misses);
  set_->branch_misses->Increment(end.branch_misses - start_.branch_misses);
  // Gauges carry the cumulative ratios so a scrape reads the lifetime IPC
  // and miss rate of this kernel, not one span's noisy sample.
  PerfCounterValues totals;
  totals.valid = true;
  totals.cycles = set_->cycles->value();
  totals.instructions = set_->instructions->value();
  totals.llc_misses = set_->llc_misses->value();
  set_->ipc_milli->Set(totals.IpcMilli());
  set_->llc_miss_per_kilo_inst->Set(totals.LlcMissPerKiloInst());
}

}  // namespace subex

#endif  // SUBEX_OBS_DISABLED
