#include "prof/sampling_profiler.h"

#ifndef SUBEX_OBS_DISABLED

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>
#include <sstream>
#include <vector>

#if defined(__linux__)
#include <cxxabi.h>
#include <dirent.h>
#include <dlfcn.h>
#include <execinfo.h>
#include <signal.h>
#include <sys/syscall.h>
#include <time.h>
#include <unistd.h>

#ifndef SIGEV_THREAD_ID
#define SIGEV_THREAD_ID 4
#endif
#ifndef sigev_notify_thread_id
#define sigev_notify_thread_id _sigev_un._tid
#endif
#endif  // __linux__

#include "common/thread_hooks.h"
#include "obs/registry.h"
#include "prof/perf_counters.h"

namespace subex {

#if defined(__linux__)

namespace {

constexpr std::size_t kMaxThreads = 256;

/// Fill-once sample buffer owned by exactly one thread's signal handler.
/// The handler is the only writer; exporters read `count` with acquire and
/// only touch fully published slots, so no slot is ever read while being
/// written.
struct SampleRing {
  std::size_t capacity = 0;        // Slots.
  std::size_t max_depth = 0;       // PCs per slot.
  std::vector<std::uint16_t> depths;
  std::vector<void*> pcs;          // capacity × max_depth, slot-contiguous.
  std::atomic<std::size_t> count{0};

  void Allocate(std::size_t cap, std::size_t depth) {
    capacity = cap;
    max_depth = depth;
    depths.assign(cap, 0);
    pcs.assign(cap * depth, nullptr);
    count.store(0, std::memory_order_relaxed);
  }
};

/// One registered thread. `tid` is written under the profiler mutex and
/// read by the signal handler (which runs on some registered thread and
/// scans for its own tid), hence atomic.
struct ThreadSlot {
  std::atomic<int> tid{0};
  SampleRing* ring = nullptr;   // Allocated once, reused across tids.
  timer_t timer{};
  bool timer_armed = false;
};

struct ProfilerState {
  std::mutex mutex;                 // Guards slots/timers/options mutation.
  ThreadSlot slots[kMaxThreads];
  std::atomic<std::size_t> slot_count{0};
  std::atomic<bool> running{false};
  std::atomic<std::uint64_t> dropped{0};
  SamplingProfilerOptions options;
  bool handler_installed = false;
};

ProfilerState& State() {
  static ProfilerState* state = new ProfilerState();  // Never destructed:
  return *state;  // the handler may outlive static destruction order.
}

int CurrentTid() { return static_cast<int>(syscall(SYS_gettid)); }

/// Async-signal-safe: atomics, gettid, backtrace (warmed up at Start so
/// glibc's lazy libgcc load already happened and no malloc occurs here).
void ProfSignalHandler(int, siginfo_t*, void*) {
  ProfilerState& state = State();
  if (!state.running.load(std::memory_order_acquire)) return;
  const int tid = CurrentTid();
  const std::size_t n = state.slot_count.load(std::memory_order_acquire);
  SampleRing* ring = nullptr;
  for (std::size_t i = 0; i < n; ++i) {
    if (state.slots[i].tid.load(std::memory_order_acquire) == tid) {
      ring = state.slots[i].ring;
      break;
    }
  }
  if (ring == nullptr) return;
  const std::size_t idx = ring->count.load(std::memory_order_relaxed);
  if (idx >= ring->capacity) {
    state.dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  void* frames[128];
  const std::size_t want = std::min<std::size_t>(ring->max_depth + 2, 128);
  const int got = backtrace(frames, static_cast<int>(want));
  // frames[0] is this handler, frames[1] the kernel signal trampoline
  // (__restore_rt); the interrupted code starts at 2.
  constexpr int kSkip = 2;
  if (got <= kSkip) return;
  const std::size_t depth =
      std::min<std::size_t>(static_cast<std::size_t>(got - kSkip),
                            ring->max_depth);
  std::memcpy(&ring->pcs[idx * ring->max_depth], frames + kSkip,
              depth * sizeof(void*));
  ring->depths[idx] = static_cast<std::uint16_t>(depth);
  ring->count.store(idx + 1, std::memory_order_release);
}

bool TimerForcedOff() {
  static const bool forced = [] {
    const char* env = std::getenv("SUBEX_PROF_NO_TIMER");
    return env != nullptr && env[0] != '\0' && env[0] != '0';
  }();
  return forced;
}

/// Creates (but does not arm) a per-thread CLOCK_MONOTONIC SIGPROF timer.
bool CreateTimerFor(int tid, timer_t* out) {
  sigevent sev;
  std::memset(&sev, 0, sizeof(sev));
  sev.sigev_notify = SIGEV_THREAD_ID;
  sev.sigev_signo = SIGPROF;
  sev.sigev_notify_thread_id = tid;
  return timer_create(CLOCK_MONOTONIC, &sev, out) == 0;
}

void ArmTimer(timer_t timer, int sample_hz) {
  itimerspec spec;
  std::memset(&spec, 0, sizeof(spec));
  const long period_ns = 1000000000L / std::max(sample_hz, 1);
  spec.it_interval.tv_sec = period_ns / 1000000000L;
  spec.it_interval.tv_nsec = period_ns % 1000000000L;
  spec.it_value = spec.it_interval;
  timer_settime(timer, 0, &spec, nullptr);
}

/// Finds or creates the slot of `tid` and arms its timer. Caller holds the
/// state mutex. A no-op while the profiler is stopped — `Start()`'s
/// `/proc/self/task` sweep picks every live thread up, so idle processes
/// pay nothing (no rings, no timers) for pools they create.
void AttachTidLocked(ProfilerState& state, int tid) {
  if (!state.running.load(std::memory_order_relaxed)) return;
  std::size_t free_slot = kMaxThreads;
  const std::size_t n = state.slot_count.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < n; ++i) {
    const int slot_tid = state.slots[i].tid.load(std::memory_order_relaxed);
    if (slot_tid == tid) return;  // Already attached.
    if (slot_tid == 0 && free_slot == kMaxThreads) free_slot = i;
  }
  ThreadSlot* slot = nullptr;
  if (free_slot != kMaxThreads) {
    slot = &state.slots[free_slot];
  } else {
    if (n >= kMaxThreads) return;  // Table full: thread goes unsampled.
    slot = &state.slots[n];
  }
  if (slot->ring == nullptr) slot->ring = new SampleRing();
  if (slot->ring->capacity != state.options.ring_capacity ||
      slot->ring->max_depth != state.options.max_stack_depth) {
    slot->ring->Allocate(state.options.ring_capacity,
                         state.options.max_stack_depth);
  }
  slot->timer_armed = false;
  if (CreateTimerFor(tid, &slot->timer)) {
    slot->timer_armed = true;
    ArmTimer(slot->timer, state.options.sample_hz);
  }
  // Publish tid last: the handler may scan concurrently and must only see
  // slots whose ring is ready.
  slot->tid.store(tid, std::memory_order_release);
  if (free_slot == kMaxThreads) {
    state.slot_count.store(n + 1, std::memory_order_release);
  }
}

/// Registers every thread currently alive in this process.
void SweepProcessThreadsLocked(ProfilerState& state) {
  DIR* dir = opendir("/proc/self/task");
  if (dir == nullptr) return;
  while (dirent* entry = readdir(dir)) {
    const int tid = std::atoi(entry->d_name);
    if (tid > 0) AttachTidLocked(state, tid);
  }
  closedir(dir);
}

void HookThreadStart() { SamplingProfiler::Global().RegisterCurrentThread(); }
void HookThreadExit() { SamplingProfiler::Global().UnregisterCurrentThread(); }

/// Ensures the ThreadPool lifecycle hooks point at the profiler as soon as
/// any binary links this translation unit.
const bool g_hooks_installed = [] {
  SetThreadLifecycleHooks(&HookThreadStart, &HookThreadExit);
  return true;
}();

std::string SymbolizePc(void* pc,
                        std::map<void*, std::string>& cache) {
  const auto it = cache.find(pc);
  if (it != cache.end()) return it->second;
  std::string name;
  Dl_info info;
  // The return address points one instruction past the call; step back a
  // byte so a call ending a function does not resolve to the next symbol.
  void* lookup = static_cast<char*>(pc) - 1;
  if (dladdr(lookup, &info) != 0 && info.dli_sname != nullptr) {
    int status = 0;
    char* demangled =
        abi::__cxa_demangle(info.dli_sname, nullptr, nullptr, &status);
    if (status == 0 && demangled != nullptr) {
      name.assign(demangled);
      // Strip the argument list: collapsed stacks want one readable frame
      // per function, and ';' inside parameter packs would split frames.
      const std::size_t paren = name.find('(');
      if (paren != std::string::npos) name.resize(paren);
    } else {
      name.assign(info.dli_sname);
    }
    std::free(demangled);
  }
  if (name.empty()) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "0x%zx", reinterpret_cast<std::size_t>(pc));
    name.assign(buf);
  }
  for (char& c : name) {
    if (c == ';' || c == '\n') c = ':';
    if (c == ' ') c = '_';
  }
  cache.emplace(pc, name);
  return name;
}

}  // namespace

SamplingProfiler& SamplingProfiler::Global() {
  static SamplingProfiler* profiler = new SamplingProfiler();
  return *profiler;
}

bool SamplingProfiler::SupportedOnThisSystem() {
  static const bool supported = [] {
    if (TimerForcedOff()) return false;
    timer_t probe;
    if (!CreateTimerFor(CurrentTid(), &probe)) return false;
    timer_delete(probe);
    return true;
  }();
  return supported;
}

bool SamplingProfiler::Start(const SamplingProfilerOptions& options,
                             std::string* error) {
  ProfilerState& state = State();
  std::lock_guard<std::mutex> lock(state.mutex);
  if (state.running.load(std::memory_order_relaxed)) {
    if (error != nullptr) *error = "profiler already running";
    return false;
  }
  if (!SupportedOnThisSystem()) {
    if (error != nullptr) {
      *error = "per-thread SIGPROF timers unavailable on this system";
    }
    return false;
  }
  state.options = options;
  if (state.options.sample_hz <= 0) state.options.sample_hz = 97;
  state.options.max_stack_depth =
      std::min<std::size_t>(std::max<std::size_t>(state.options.max_stack_depth,
                                                  4),
                            126);
  state.options.ring_capacity =
      std::max<std::size_t>(state.options.ring_capacity, 16);
  if (!state.handler_installed) {
    struct sigaction action;
    std::memset(&action, 0, sizeof(action));
    action.sa_sigaction = &ProfSignalHandler;
    action.sa_flags = SA_SIGINFO | SA_RESTART;
    sigemptyset(&action.sa_mask);
    if (sigaction(SIGPROF, &action, nullptr) != 0) {
      if (error != nullptr) *error = "sigaction(SIGPROF) failed";
      return false;
    }
    state.handler_installed = true;
  }
  // Warm glibc's unwinder outside signal context (first backtrace call
  // dlopens libgcc, which is not async-signal-safe).
  void* warm[4];
  backtrace(warm, 4);
  state.running.store(true, std::memory_order_release);
  SweepProcessThreadsLocked(state);
  MetricsRegistry::Global().GetGauge("prof.sampler_running").Set(1);
  MetricsRegistry::Global()
      .GetGauge("prof.sampler_hz")
      .Set(state.options.sample_hz);
  return true;
}

void SamplingProfiler::Stop() {
  ProfilerState& state = State();
  std::lock_guard<std::mutex> lock(state.mutex);
  if (!state.running.load(std::memory_order_relaxed)) return;
  state.running.store(false, std::memory_order_release);
  const std::size_t n = state.slot_count.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < n; ++i) {
    if (state.slots[i].timer_armed) {
      timer_delete(state.slots[i].timer);
      state.slots[i].timer_armed = false;
    }
    // Release the tid so a later Start() re-attaches (and re-arms) the
    // thread instead of skipping it as already registered. The ring stays:
    // samples remain exportable until Clear().
    state.slots[i].tid.store(0, std::memory_order_release);
  }
  MetricsRegistry::Global().GetGauge("prof.sampler_running").Set(0);
  MetricsRegistry::Global().GetGauge("prof.sampler_hz").Set(0);
}

bool SamplingProfiler::running() const {
  return State().running.load(std::memory_order_acquire);
}

int SamplingProfiler::sample_hz() const {
  ProfilerState& state = State();
  std::lock_guard<std::mutex> lock(state.mutex);
  return state.running.load(std::memory_order_relaxed)
             ? state.options.sample_hz
             : 0;
}

void SamplingProfiler::RegisterCurrentThread() {
  ProfilerState& state = State();
  std::lock_guard<std::mutex> lock(state.mutex);
  AttachTidLocked(state, CurrentTid());
}

void SamplingProfiler::UnregisterCurrentThread() {
  ProfilerState& state = State();
  std::lock_guard<std::mutex> lock(state.mutex);
  const int tid = CurrentTid();
  const std::size_t n = state.slot_count.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < n; ++i) {
    if (state.slots[i].tid.load(std::memory_order_relaxed) != tid) continue;
    if (state.slots[i].timer_armed) {
      timer_delete(state.slots[i].timer);
      state.slots[i].timer_armed = false;
    }
    // Freeing the slot keeps the ring (and its samples) for export; a
    // later thread may reuse both.
    state.slots[i].tid.store(0, std::memory_order_release);
    return;
  }
}

std::uint64_t SamplingProfiler::samples() const {
  ProfilerState& state = State();
  std::uint64_t total = 0;
  const std::size_t n = state.slot_count.load(std::memory_order_acquire);
  for (std::size_t i = 0; i < n; ++i) {
    const SampleRing* ring = state.slots[i].ring;
    if (ring != nullptr) total += ring->count.load(std::memory_order_acquire);
  }
  return total;
}

std::uint64_t SamplingProfiler::dropped() const {
  return State().dropped.load(std::memory_order_relaxed);
}

std::string SamplingProfiler::ToCollapsedText() const {
  ProfilerState& state = State();
  // The mutex fences out Clear()/Stop(); the handler only appends past
  // `count`, so the slots read here are stable.
  std::lock_guard<std::mutex> lock(state.mutex);
  std::map<void*, std::string> symbol_cache;
  std::map<std::string, std::uint64_t> stacks;
  const std::size_t n = state.slot_count.load(std::memory_order_acquire);
  for (std::size_t i = 0; i < n; ++i) {
    const SampleRing* ring = state.slots[i].ring;
    if (ring == nullptr) continue;
    const std::size_t count = ring->count.load(std::memory_order_acquire);
    for (std::size_t s = 0; s < count; ++s) {
      const std::size_t depth = ring->depths[s];
      if (depth == 0) continue;
      // Captured leaf-first; collapsed format wants root-first.
      std::string line;
      for (std::size_t f = depth; f-- > 0;) {
        const std::string frame =
            SymbolizePc(ring->pcs[s * ring->max_depth + f], symbol_cache);
        if (frame == "__restore_rt") continue;  // Nested-signal remnants.
        if (!line.empty()) line += ';';
        line += frame;
      }
      if (!line.empty()) ++stacks[line];
    }
  }
  // Highest count first so truncated views keep the hottest stacks.
  std::vector<std::pair<std::uint64_t, const std::string*>> ordered;
  ordered.reserve(stacks.size());
  for (const auto& [stack, count] : stacks) ordered.emplace_back(count, &stack);
  std::sort(ordered.begin(), ordered.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first > b.first;
              return *a.second < *b.second;
            });
  std::ostringstream out;
  for (const auto& [count, stack] : ordered) {
    out << *stack << ' ' << count << '\n';
  }
  return out.str();
}

void SamplingProfiler::Clear() {
  ProfilerState& state = State();
  std::lock_guard<std::mutex> lock(state.mutex);
  const std::size_t n = state.slot_count.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < n; ++i) {
    SampleRing* ring = state.slots[i].ring;
    if (ring != nullptr) ring->count.store(0, std::memory_order_release);
  }
  state.dropped.store(0, std::memory_order_relaxed);
}

void RegisterProfProcessMetrics(MetricsRegistry* registry) {
  MetricsRegistry& reg =
      registry != nullptr ? *registry : MetricsRegistry::Global();
  reg.GetGauge("prof.perf_available")
      .Set(PerfCounterGroup::SupportedOnThisSystem() ? 1 : 0);
  reg.GetGauge("prof.sampler_supported")
      .Set(SamplingProfiler::SupportedOnThisSystem() ? 1 : 0);
  reg.GetGauge("prof.sampler_running");
  reg.GetGauge("prof.sampler_hz");
}

#else  // !__linux__

SamplingProfiler& SamplingProfiler::Global() {
  static SamplingProfiler* profiler = new SamplingProfiler();
  return *profiler;
}
bool SamplingProfiler::SupportedOnThisSystem() { return false; }
bool SamplingProfiler::Start(const SamplingProfilerOptions&,
                             std::string* error) {
  if (error != nullptr) *error = "sampling profiler requires Linux";
  return false;
}
void SamplingProfiler::Stop() {}
bool SamplingProfiler::running() const { return false; }
int SamplingProfiler::sample_hz() const { return 0; }
void SamplingProfiler::RegisterCurrentThread() {}
void SamplingProfiler::UnregisterCurrentThread() {}
std::uint64_t SamplingProfiler::samples() const { return 0; }
std::uint64_t SamplingProfiler::dropped() const { return 0; }
std::string SamplingProfiler::ToCollapsedText() const { return {}; }
void SamplingProfiler::Clear() {}

void RegisterProfProcessMetrics(MetricsRegistry* registry) {
  MetricsRegistry& reg =
      registry != nullptr ? *registry : MetricsRegistry::Global();
  reg.GetGauge("prof.perf_available").Set(0);
  reg.GetGauge("prof.sampler_supported").Set(0);
}

#endif  // __linux__

}  // namespace subex

#endif  // SUBEX_OBS_DISABLED
