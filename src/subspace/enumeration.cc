#include "subspace/enumeration.h"

#include <limits>
#include <unordered_set>

#include "common/check.h"

namespace subex {

std::uint64_t CombinationCount(int n, int k) {
  if (k < 0 || n < 0 || k > n) return 0;
  if (k > n - k) k = n - k;
  constexpr std::uint64_t kMax = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t result = 1;
  for (int i = 1; i <= k; ++i) {
    const std::uint64_t num = static_cast<std::uint64_t>(n - k + i);
    if (result > kMax / num) return kMax;  // Saturate.
    result = result * num / static_cast<std::uint64_t>(i);
  }
  return result;
}

std::vector<Subspace> EnumerateSubspaces(int num_features, int dim) {
  SUBEX_CHECK(dim >= 0 && num_features >= 0);
  std::vector<Subspace> out;
  if (dim > num_features) return out;
  out.reserve(CombinationCount(num_features, dim));
  std::vector<FeatureId> current(dim);
  for (int i = 0; i < dim; ++i) current[i] = i;
  for (;;) {
    out.emplace_back(current);
    // Advance to the next lexicographic combination.
    int i = dim - 1;
    while (i >= 0 && current[i] == num_features - dim + i) --i;
    if (i < 0) break;
    ++current[i];
    for (int j = i + 1; j < dim; ++j) current[j] = current[j - 1] + 1;
  }
  return out;
}

std::vector<Subspace> SampleRandomSubspaces(int num_features, int dim,
                                            int count, Rng& rng) {
  SUBEX_CHECK(dim >= 1 && dim <= num_features);
  std::vector<Subspace> out;
  out.reserve(count);
  for (int i = 0; i < count; ++i) {
    out.emplace_back(rng.SampleWithoutReplacement(num_features, dim));
  }
  return out;
}

std::vector<Subspace> ExtendByOneFeature(const std::vector<Subspace>& bases,
                                         int num_features) {
  std::unordered_set<Subspace, SubspaceHash> seen;
  std::vector<Subspace> out;
  for (const Subspace& base : bases) {
    for (FeatureId f = 0; f < num_features; ++f) {
      if (base.Contains(f)) continue;
      Subspace extended = base.With(f);
      if (seen.insert(extended).second) out.push_back(std::move(extended));
    }
  }
  return out;
}

}  // namespace subex
