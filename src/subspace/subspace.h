#ifndef SUBEX_SUBSPACE_SUBSPACE_H_
#define SUBEX_SUBSPACE_SUBSPACE_H_

#include <cstddef>
#include <functional>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

namespace subex {

/// Feature identifier: the column index of a feature in a `Dataset`.
using FeatureId = int;

/// A feature subspace: an immutable, canonical (sorted, duplicate-free) set
/// of feature ids.
///
/// Subspaces are the currency of every explanation algorithm — explainers
/// enumerate them, detectors score points inside them, and ground truth maps
/// outliers to the subspaces that explain them. Canonical ordering makes
/// equality, hashing and containment cheap and deterministic.
class Subspace {
 public:
  /// The empty subspace (used by detectors to mean "all features").
  Subspace() = default;

  /// Builds a subspace from arbitrary feature ids; duplicates are removed
  /// and the ids are sorted.
  explicit Subspace(std::vector<FeatureId> features);

  /// Convenience literal form: `Subspace({0, 3, 7})`.
  Subspace(std::initializer_list<FeatureId> features);

  /// Number of features (the subspace "dimensionality").
  std::size_t size() const { return features_.size(); }
  /// True for the empty subspace.
  bool empty() const { return features_.empty(); }

  /// Sorted feature ids.
  const std::vector<FeatureId>& features() const { return features_; }
  /// Span view of the sorted feature ids (what detectors consume).
  std::span<const FeatureId> AsSpan() const { return features_; }

  /// True if `f` is a member.
  bool Contains(FeatureId f) const;
  /// True if every feature of `other` is a member (subset test).
  bool ContainsAll(const Subspace& other) const;

  /// Union of this subspace with a single extra feature.
  Subspace With(FeatureId f) const;
  /// Union with another subspace.
  Subspace Union(const Subspace& other) const;

  /// Renders as "{f0,f3,f7}" for reports and test diagnostics.
  std::string ToString() const;

  friend bool operator==(const Subspace& a, const Subspace& b) {
    return a.features_ == b.features_;
  }
  friend bool operator<(const Subspace& a, const Subspace& b) {
    return a.features_ < b.features_;
  }

 private:
  std::vector<FeatureId> features_;
};

/// Hash functor so subspaces can key `std::unordered_{set,map}`.
struct SubspaceHash {
  std::size_t operator()(const Subspace& s) const;
};

}  // namespace subex

#endif  // SUBEX_SUBSPACE_SUBSPACE_H_
