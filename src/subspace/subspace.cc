#include "subspace/subspace.h"

#include <algorithm>

#include "common/check.h"

namespace subex {

Subspace::Subspace(std::vector<FeatureId> features)
    : features_(std::move(features)) {
  std::sort(features_.begin(), features_.end());
  features_.erase(std::unique(features_.begin(), features_.end()),
                  features_.end());
  SUBEX_CHECK_MSG(features_.empty() || features_.front() >= 0,
                  "negative feature id");
}

Subspace::Subspace(std::initializer_list<FeatureId> features)
    : Subspace(std::vector<FeatureId>(features)) {}

bool Subspace::Contains(FeatureId f) const {
  return std::binary_search(features_.begin(), features_.end(), f);
}

bool Subspace::ContainsAll(const Subspace& other) const {
  return std::includes(features_.begin(), features_.end(),
                       other.features_.begin(), other.features_.end());
}

Subspace Subspace::With(FeatureId f) const {
  std::vector<FeatureId> merged = features_;
  merged.push_back(f);
  return Subspace(std::move(merged));
}

Subspace Subspace::Union(const Subspace& other) const {
  std::vector<FeatureId> merged;
  merged.reserve(features_.size() + other.features_.size());
  std::merge(features_.begin(), features_.end(), other.features_.begin(),
             other.features_.end(), std::back_inserter(merged));
  return Subspace(std::move(merged));
}

std::string Subspace::ToString() const {
  std::string out = "{";
  for (std::size_t i = 0; i < features_.size(); ++i) {
    if (i > 0) out += ",";
    out += "f" + std::to_string(features_[i]);
  }
  out += "}";
  return out;
}

std::size_t SubspaceHash::operator()(const Subspace& s) const {
  // FNV-1a over the feature ids.
  std::size_t h = 1469598103934665603ull;
  for (FeatureId f : s.features()) {
    h ^= static_cast<std::size_t>(f);
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace subex
