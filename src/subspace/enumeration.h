#ifndef SUBEX_SUBSPACE_ENUMERATION_H_
#define SUBEX_SUBSPACE_ENUMERATION_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "subspace/subspace.h"

namespace subex {

/// Number of k-combinations of n features, saturating at
/// `std::numeric_limits<std::uint64_t>::max()` instead of overflowing.
/// Explainers use this to decide whether exhaustive enumeration is feasible.
std::uint64_t CombinationCount(int n, int k);

/// All subspaces of exactly `dim` features drawn from `num_features`
/// features, in lexicographic order. `CombinationCount(num_features, dim)`
/// must be small enough to materialize; callers guard with it.
std::vector<Subspace> EnumerateSubspaces(int num_features, int dim);

/// `count` subspaces of exactly `dim` features sampled uniformly at random
/// (with replacement across draws, but each subspace has distinct features).
/// This is RefOut's random projection pool and LookOut's fallback when
/// exhaustive enumeration exceeds its candidate cap.
std::vector<Subspace> SampleRandomSubspaces(int num_features, int dim,
                                            int count, Rng& rng);

/// Extends each base subspace with every feature in `[0, num_features)` it
/// does not already contain, deduplicating the results. This is the
/// stage-wise candidate construction shared by Beam, RefOut and HiCS: the
/// (k+1)-dimensional candidates of stage k+1 are the stage-k survivors
/// crossed with all single features.
std::vector<Subspace> ExtendByOneFeature(const std::vector<Subspace>& bases,
                                         int num_features);

}  // namespace subex

#endif  // SUBEX_SUBSPACE_ENUMERATION_H_
