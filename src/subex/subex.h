#ifndef SUBEX_SUBEX_H_
#define SUBEX_SUBEX_H_

/// \file
/// Umbrella header: the full public API of subex, the anomaly-explanation
/// evaluation testbed (detectors, explainers, summarizers, datasets,
/// metrics, and the pipeline runner).
///
/// Typical usage:
///
///   #include "subex/subex.h"
///
///   subex::SyntheticDataset data = subex::GenerateFigure1Dataset(42);
///   subex::Lof lof(15);
///   subex::Beam beam;
///   subex::RankedSubspaces why =
///       beam.Explain(data.dataset, lof, /*point=*/0, /*target_dim=*/2);

#include "common/json.h"
#include "common/matrix.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "common/topk.h"
#include "core/ground_truth_builder.h"
#include "core/metrics.h"
#include "core/pipeline.h"
#include "core/report.h"
#include "core/testbed.h"
#include "core/tradeoff.h"
#include "data/chunked_dataset.h"
#include "data/columnar.h"
#include "data/csv.h"
#include "data/dataset.h"
#include "data/generators.h"
#include "data/ground_truth.h"
#include "detect/chunked_score.h"
#include "detect/detector.h"
#include "detect/exact_abod.h"
#include "detect/fast_abod.h"
#include "detect/isolation_forest.h"
#include "detect/knn.h"
#include "detect/knn_distance.h"
#include "detect/loda.h"
#include "detect/lof.h"
#include "explain/beam.h"
#include "explain/dimension_refinement.h"
#include "explain/explanation.h"
#include "explain/group_summarizer.h"
#include "explain/hics.h"
#include "explain/lookout.h"
#include "explain/point_explainer.h"
#include "explain/refout.h"
#include "explain/summarizer.h"
#include "explain/surrogate.h"
#include "fault/fault.h"
#include "mem/cache_slot.h"
#include "mem/dlist.h"
#include "mem/eviction_manager.h"
#include "ml/regression_tree.h"
#include "net/explain_client.h"
#include "net/explain_server.h"
#include "net/frame.h"
#include "net/protocol.h"
#include "net/socket.h"
#include "net/wire.h"
#include "obs/metrics.h"
#include "obs/metrics_http.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "online/drift_monitor.h"
#include "online/online_dataset.h"
#include "online/wal.h"
#include "online/windowed_scorer.h"
#include "prof/perf_counters.h"
#include "prof/sampling_profiler.h"
#include "serve/score_cache.h"
#include "serve/scoring_service.h"
#include "serve/service_stats.h"
#include "stats/descriptive.h"
#include "stats/special_functions.h"
#include "stats/two_sample_tests.h"
#include "stream/drifting_stream.h"
#include "stream/sliding_window.h"
#include "stream/streaming_pipeline.h"
#include "subspace/enumeration.h"
#include "subspace/subspace.h"

#endif  // SUBEX_SUBEX_H_
