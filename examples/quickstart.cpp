// Quickstart: detect-then-explain on the 3-dimensional Figure 1 dataset.
//
// The paper's motivating example: point o1 looks mildly unusual in the full
// space, point o2 looks perfectly normal -- but each deviates strongly in a
// specific 2-dimensional feature subspace. This example generates that
// dataset, scores it with LOF, and asks the Beam explainer *why* each point
// is outlying.
//
// Run: ./quickstart

#include <cstdio>

#include "subex/subex.h"

int main() {
  using namespace subex;

  // 1. A dataset with two planted outliers (point 0 = o1, point 1 = o2).
  const SyntheticDataset example = GenerateFigure1Dataset(/*seed=*/42,
                                                          /*num_points=*/300);
  const Dataset& data = example.dataset;
  std::printf("dataset: %zu points x %zu features, %zu points of interest\n\n",
              data.num_points(), data.num_features(),
              data.outlier_indices().size());

  // 2. Detection: LOF in the full space barely separates o2 from inliers --
  //    that is exactly why subspace explanations are needed.
  const Lof lof(15);
  const std::vector<double> full_space = ScoreStandardized(lof, data,
                                                           Subspace());
  std::printf("full-space standardized LOF scores: o1=%.2f  o2=%.2f\n",
              full_space[0], full_space[1]);

  // 3. Explanation: rank the 2d subspaces that explain each point.
  const Beam beam;  // Beam_FX with the paper's defaults.
  for (int point : data.outlier_indices()) {
    const RankedSubspaces ranked = beam.Explain(data, lof, point, 2);
    std::printf("\ntop subspaces explaining point %d:\n", point);
    for (std::size_t i = 0; i < std::min<std::size_t>(3, ranked.size());
         ++i) {
      std::printf("  #%zu %-10s standardized score %.2f\n", i + 1,
                  ranked.subspaces[i].ToString().c_str(), ranked.scores[i]);
    }
    const auto& truth = example.ground_truth.RelevantFor(point);
    std::printf("  ground truth: %s -> %s\n",
                truth.front().ToString().c_str(),
                ranked.subspaces.front() == truth.front() ? "recovered"
                                                          : "missed");
  }
  return 0;
}
