// Emits the full benchmark suite (the 5 HiCS-style synthetic splits and the
// 3 real-dataset stand-ins) as CSV files with an `is_outlier` label column,
// so the datasets can be inspected or consumed by external tools.
//
// Run: ./generate_datasets [output_dir] [scale]
//   output_dir  where to write the CSVs (default: current directory)
//   scale       point-count scale in (0, 1], default 1.0 (paper sizes)

#include <cstdio>
#include <cstdlib>
#include <string>

#include "subex/subex.h"

int main(int argc, char** argv) {
  using namespace subex;
  const std::string out_dir = argc > 1 ? argv[1] : ".";
  const double scale = argc > 2 ? std::strtod(argv[2], nullptr) : 1.0;
  if (scale <= 0.0 || scale > 1.0) {
    std::fprintf(stderr, "scale must be in (0, 1]\n");
    return 1;
  }

  int written = 0;
  auto emit = [&](const SyntheticDataset& d) {
    const std::string path = out_dir + "/" + d.name + ".csv";
    std::string error;
    if (!WriteCsv(path, d.dataset, /*label_column=*/true, &error)) {
      std::fprintf(stderr, "FAILED %s: %s\n", path.c_str(), error.c_str());
      std::exit(1);
    }
    std::printf("wrote %-28s %5zu points x %3zu features, %3zu outliers",
                path.c_str(), d.dataset.num_points(),
                d.dataset.num_features(), d.dataset.outlier_indices().size());
    if (!d.relevant_subspaces.empty()) {
      std::printf(", %2zu relevant subspaces", d.relevant_subspaces.size());
    }
    std::printf("\n");
    ++written;
  };

  for (const SyntheticDataset& d : GeneratePaperHicsSuite(7, scale)) emit(d);
  for (const SyntheticDataset& d : GeneratePaperRealSuite(7, scale)) emit(d);
  emit(GenerateFigure1Dataset(42, static_cast<int>(300 * scale) + 20));

  std::printf("\n%d datasets written to %s\n", written, out_dir.c_str());
  std::printf("reload any of them with subex::ReadCsv(path).\n");
  return 0;
}
