// Point explanation workflow: Beam vs RefOut across all three detectors on
// a dataset with subspace outliers (the paper's §4.1 scenario, miniature).
//
// Generates a HiCS-style dataset whose feature space is partitioned into
// correlated subspaces with 5 planted outliers each, runs every
// (detector, point explainer) pair, and reports per-pair MAP / Mean Recall
// against the planted ground truth.
//
// Run: ./explain_points [seed]

#include <cstdio>
#include <cstdlib>

#include "subex/subex.h"

int main(int argc, char** argv) {
  using namespace subex;
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                                      : 7;

  HicsGeneratorConfig config;
  config.num_points = 400;
  config.subspace_dims = {2, 3, 2, 3};  // 10 features, 4 relevant subspaces.
  config.seed = seed;
  const SyntheticDataset d = GenerateHicsDataset(config);
  std::printf("dataset %s: %zu points, %zu features, %zu outliers in %zu "
              "relevant subspaces\n\n",
              d.name.c_str(), d.dataset.num_points(),
              d.dataset.num_features(), d.dataset.outlier_indices().size(),
              d.relevant_subspaces.size());

  TestbedProfile profile = TestbedProfile::Quick();
  profile.seed = seed;

  TextTable table;
  table.SetHeader({"explainer", "detector", "dim", "MAP", "mean recall",
                   "points", "time"});
  for (int dim : {2, 3}) {
    for (PointExplainerKind explainer_kind :
         {PointExplainerKind::kBeam, PointExplainerKind::kRefOut}) {
      const auto explainer =
          MakeTestbedPointExplainer(explainer_kind, profile);
      for (DetectorKind detector_kind : AllDetectorKinds()) {
        const auto detector = MakeTestbedDetector(detector_kind, profile);
        const PipelineResult r = RunPointExplanationPipeline(
            d.dataset, d.ground_truth, *detector, *explainer, dim);
        table.AddRow({r.explainer_name, r.detector_name,
                      std::to_string(dim), FormatDouble(r.map),
                      FormatDouble(r.mean_recall),
                      std::to_string(r.num_points),
                      FormatSeconds(r.seconds)});
      }
    }
  }
  std::printf("%s\n", table.Render().c_str());

  // Show one concrete explanation end to end.
  const int point = d.dataset.outlier_indices().front();
  const auto lof = MakeTestbedDetector(DetectorKind::kLof, profile);
  const auto beam = MakeTestbedPointExplainer(PointExplainerKind::kBeam,
                                              profile);
  const Subspace truth = d.ground_truth.RelevantFor(point).front();
  const RankedSubspaces ranked = beam->Explain(
      d.dataset, *lof, point, static_cast<int>(truth.size()));
  std::printf("example: point %d, ground truth %s, Beam+LOF top pick %s\n",
              point, truth.ToString().c_str(),
              ranked.subspaces.front().ToString().c_str());
  return 0;
}
