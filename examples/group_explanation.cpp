// Group explanation (the paper's §6 pointer to characterizing subspace
// rules): instead of one summary for all outliers — which the paper shows
// degrades when different outliers are explained by disjoint feature
// subsets — partition the outliers into groups that share explaining
// subspaces and characterize each group.
//
// Run: ./group_explanation [seed]

#include <cstdio>
#include <cstdlib>

#include "subex/subex.h"

int main(int argc, char** argv) {
  using namespace subex;
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                                      : 57;

  HicsGeneratorConfig config;
  config.num_points = 400;
  config.subspace_dims = {2, 2, 3};
  config.seed = seed;
  const SyntheticDataset d = GenerateHicsDataset(config);
  std::printf("dataset: %zu points, %zu features, %zu outliers in %zu "
              "disjoint relevant subspaces\n\n",
              d.dataset.num_points(), d.dataset.num_features(),
              d.dataset.outlier_indices().size(),
              d.relevant_subspaces.size());

  const Lof lof(15);
  Beam::Options beam_options;
  beam_options.beam_width = 15;
  const Beam beam(beam_options);

  for (int dim : {2, 3}) {
    const std::vector<OutlierGroup> groups = GroupAndCharacterize(
        d.dataset, lof, beam, d.dataset.outlier_indices(), dim);
    std::printf("=== %dd group explanations (%zu groups) ===\n", dim,
                groups.size());
    for (std::size_t g = 0; g < groups.size(); ++g) {
      std::printf("group %zu (%zu points:", g + 1, groups[g].points.size());
      for (int p : groups[g].points) std::printf(" %d", p);
      std::printf(") characterized by");
      for (const Subspace& s : groups[g].characterizing_subspaces) {
        std::printf(" %s", s.ToString().c_str());
      }
      std::printf("\n");
    }
    std::printf("\n");
  }
  std::printf("planted structure for reference:");
  for (const Subspace& s : d.relevant_subspaces) {
    std::printf(" %s", s.ToString().c_str());
  }
  std::printf(" (5 outliers each)\n");
  return 0;
}
