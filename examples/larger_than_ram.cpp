// Larger-than-RAM scoring: stream a columnar dataset through the chunked
// detector ports under a deliberately tiny memory budget, and verify the
// scores are bitwise identical to the in-RAM detectors.
//
// The same machinery scales to files that do NOT fit in memory (see
// tools/csv_to_columns + tools/stream_score, and the CI job that scores a
// 640 MB file inside a 512 MB address-space cap); this example keeps the
// dataset small so the cross-check can hold both copies.
//
// Run: ./larger_than_ram

#include <cstdio>
#include <string>

#include "subex/subex.h"

int main() {
  using namespace subex;

  // 1. A synthetic dataset with planted subspace outliers, written as a
  //    ".cols" columnar file (64-row chunks so eviction actually happens).
  HicsGeneratorConfig config;
  config.num_points = 2000;
  config.subspace_dims = {3, 2};
  config.outliers_per_subspace = 8;
  config.seed = 7;
  const Dataset data = GenerateHicsDataset(config).dataset;
  const std::string path = "/tmp/subex_example.cols";
  std::string error;
  if (!WriteColumnarDataset(path, data, /*rows_per_chunk=*/64, &error)) {
    std::fprintf(stderr, "write failed: %s\n", error.c_str());
    return 1;
  }
  std::printf("wrote %s: %zu rows x %zu cols, %zu points of interest\n",
              path.c_str(), data.num_points(), data.num_features(),
              data.outlier_indices().size());

  // 2. A private eviction manager with a budget far below the file size:
  //    chunks load, pin while scored, and evict under pressure.
  EvictionManagerOptions manager_options;
  manager_options.budget_bytes = 8 * 1024;  // ~16 chunks of the file.
  EvictionManager manager(manager_options);
  ChunkedDatasetOptions options;
  options.manager = &manager;
  auto open = ChunkedDataset::Open(path, options);
  if (!open.ok) {
    std::fprintf(stderr, "open failed: %s\n", open.error.c_str());
    return 1;
  }
  ChunkedDataset& chunked = *open.dataset;

  // 3. Score the points of interest through the chunked kNN port and the
  //    whole file through LODA, then cross-check against the in-RAM path.
  const std::vector<int> queries = chunked.outlier_indices();
  const std::vector<double> streamed = ScoreKnnDistanceChunked(
      chunked, Subspace(), /*k=*/10, KnnDistance::Aggregation::kMean,
      queries);
  const std::vector<double> in_ram =
      KnnDistance(10, KnnDistance::Aggregation::kMean)
          .Score(data, Subspace());
  bool identical = true;
  for (std::size_t i = 0; i < queries.size(); ++i) {
    if (streamed[i] != in_ram[static_cast<std::size_t>(queries[i])]) {
      identical = false;
    }
  }
  std::printf("\nchunked kNN at %zu queries: %s the in-RAM scores\n",
              queries.size(),
              identical ? "bitwise identical to" : "MISMATCH against");

  Loda::Options loda_options;
  loda_options.num_projections = 25;
  const std::vector<double> loda_streamed =
      ScoreLodaChunked(chunked, Subspace(), loda_options);
  const std::vector<double> loda_in_ram =
      Loda(loda_options).Score(data, Subspace());
  identical = loda_streamed == loda_in_ram;
  std::printf("chunked LODA over all %zu rows: %s the in-RAM scores\n",
              loda_streamed.size(),
              identical ? "bitwise identical to" : "MISMATCH against");

  // 4. The governance evidence: the budget forced evictions mid-scoring,
  //    and the manager snapshot shows where every byte went.
  const ChunkedDatasetStats stats = chunked.stats();
  std::printf("\nchunk loads=%llu hits=%llu evictions=%llu (budget %zu B)\n",
              static_cast<unsigned long long>(stats.loads),
              static_cast<unsigned long long>(stats.hits),
              static_cast<unsigned long long>(stats.evictions),
              manager_options.budget_bytes);
  std::printf("mem snapshot: %s\n", manager.snapshot().ToJson().c_str());
  std::remove(path.c_str());
  return identical ? 0 : 1;
}
