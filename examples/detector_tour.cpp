// Detector tour (the paper's Figure 2 scenarios): three datasets, each the
// home turf of one detector family, scored by all three detectors, with
// ROC-AUC showing who catches what.
//
//  (a) varying-density clusters + local outlier  -> LOF's scenario
//  (b) border point of a broad distribution      -> Fast ABOD's scenario
//  (c) easily isolated point in a sparse region  -> iForest's scenario
//
// Run: ./detector_tour

#include <cstdio>
#include <vector>

#include "subex/subex.h"

namespace {

using namespace subex;

Dataset VaryingDensity(std::uint64_t seed) {
  Rng rng(seed);
  Matrix m(241, 2);
  for (int p = 0; p < 120; ++p) {  // Dense cluster.
    m(p, 0) = rng.Gaussian(0.2, 0.02);
    m(p, 1) = rng.Gaussian(0.2, 0.02);
  }
  for (int p = 120; p < 240; ++p) {  // Sparse cluster.
    m(p, 0) = rng.Gaussian(0.8, 0.10);
    m(p, 1) = rng.Gaussian(0.8, 0.10);
  }
  m(240, 0) = 0.30;  // Local outlier next to the dense cluster.
  m(240, 1) = 0.30;
  return Dataset(std::move(m), {240});
}

Dataset BorderPoint(std::uint64_t seed) {
  Rng rng(seed);
  Matrix m(201, 2);
  for (int p = 0; p < 200; ++p) {
    m(p, 0) = rng.Gaussian(0.5, 0.10);
    m(p, 1) = rng.Gaussian(0.5, 0.10);
  }
  m(200, 0) = 0.98;  // Far out on the distribution border.
  m(200, 1) = 0.98;
  return Dataset(std::move(m), {200});
}

Dataset IsolatedPoint(std::uint64_t seed) {
  Rng rng(seed);
  Matrix m(201, 2);
  for (int p = 0; p < 200; ++p) {
    m(p, 0) = rng.Uniform(0.3, 0.7);
    m(p, 1) = rng.Uniform(0.3, 0.7);
  }
  m(200, 0) = 0.02;  // Isolated with very few random splits.
  m(200, 1) = 0.95;
  return Dataset(std::move(m), {200});
}

}  // namespace

int main() {
  struct Scenario {
    const char* name;
    Dataset data;
  };
  std::vector<Scenario> scenarios;
  scenarios.push_back({"(a) varying density / local outlier",
                       VaryingDensity(1)});
  scenarios.push_back({"(b) border point", BorderPoint(2)});
  scenarios.push_back({"(c) isolated point", IsolatedPoint(3)});

  TextTable table;
  table.SetHeader({"scenario", "detector", "ROC-AUC", "outlier rank"});
  for (const Scenario& scenario : scenarios) {
    std::vector<bool> labels(scenario.data.num_points(), false);
    for (int p : scenario.data.outlier_indices()) labels[p] = true;
    for (DetectorKind kind : AllDetectorKinds()) {
      const auto detector = MakeDetector(kind);
      const std::vector<double> scores =
          detector->Score(scenario.data, Subspace());
      const std::vector<int> ranks = RanksDescending(scores);
      table.AddRow({scenario.name, detector->name(),
                    FormatDouble(RocAuc(scores, labels), 3),
                    std::to_string(
                        ranks[scenario.data.outlier_indices().front()] + 1)});
    }
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf("rank 1 = the planted outlier got the highest score.\n");
  return 0;
}
