// Explain server: the scoring service behind a TCP socket.
//
// `ExplainServer` exposes detectors and explainers over a length-prefixed
// binary protocol: `kScore` returns a subspace's standardized score vector,
// `kExplain` a point's ranked explaining subspaces, `kStats` the server and
// cache counters as JSON. A single poll()-based event loop multiplexes the
// connections; the compute runs on a shared `ThreadPool`, with a bounded
// admission queue that answers `kBusy` under overload (clients retry with
// capped exponential backoff).
//
// This example starts a server on an ephemeral loopback port, connects an
// `ExplainClient`, round-trips a score, an explanation, and the stats
// document, checks the wire results against direct in-process calls
// (bitwise equality), and shuts down gracefully. Each phase runs under an
// `obs` TraceSpan, so the run ends with a stage breakdown plus the
// process-wide metrics registry (the same JSON `kStats` serves, including
// the serve.request/detect.score latency histograms).
//
// Run: ./explain_server
//
// Daemon mode for smoke tests and manual poking:
//   ./explain_server --serve [--port N] [--metrics-port N] [--duration-s S]
// starts the same server on fixed ports (0 = ephemeral), primes the latency
// histograms with one loopback round trip, prints the bound ports, and
// stays up for S seconds (default 30) — long enough to scrape
// http://127.0.0.1:<metrics-port>/metrics or attach an ExplainClient.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "subex/subex.h"

namespace {

int ServeDaemon(int argc, char** argv) {
  using namespace subex;
  int port = 0;
  int metrics_port = 0;
  int duration_s = 30;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--port") == 0 && i + 1 < argc) {
      port = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--metrics-port") == 0 && i + 1 < argc) {
      metrics_port = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--duration-s") == 0 && i + 1 < argc) {
      duration_s = std::atoi(argv[++i]);
    }
  }

  HicsGeneratorConfig config;
  config.num_points = 300;
  config.subspace_dims = {2, 3, 3};
  config.seed = 7;
  const SyntheticDataset example = GenerateHicsDataset(config);
  const Lof lof(15);
  const Beam beam;
  ThreadPool pool(2);
  ScoringService service(lof, example.dataset, ScoringServiceOptions{},
                         &pool);

  ExplainServerOptions options;
  options.port = static_cast<std::uint16_t>(port);
  options.metrics_port = metrics_port;
  ExplainServer server(options, &pool);
  server.RegisterService(service);
  server.RegisterExplainer("Beam", beam);
  std::string error;
  if (!server.Start(&error)) {
    std::printf("server start failed: %s\n", error.c_str());
    return 1;
  }

  // One round trip so the serve.request/detect.score histograms are
  // non-empty by the time anything scrapes /metrics.
  ExplainClient client;
  if (client.Connect("127.0.0.1", server.port(), &error)) {
    (void)client.Score("LOF", Subspace({0, 1}));
    client.Disconnect();
  }

  std::printf("serving on 127.0.0.1:%u (metrics port %d) for %d s\n",
              server.port(), server.metrics_port(), duration_s);
  std::fflush(stdout);
  std::this_thread::sleep_for(std::chrono::seconds(duration_s));
  server.Stop();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace subex;
  // Chaos opt-in: SUBEX_FAULT_SPEC / SUBEX_FAULT_SEED arm injection points
  // process-wide. With the variables unset this is a no-op.
  FaultRegistry::Global().ConfigureFromEnv();
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--serve") == 0) return ServeDaemon(argc, argv);
  }

  // Collects one (stage, elapsed) entry per finished span below — the
  // per-request breakdown shape servers attach to slow-request logs.
  Trace trace;

  TraceSpan generate_span(nullptr, &trace, "generate_dataset");
  HicsGeneratorConfig config;
  config.num_points = 300;
  config.subspace_dims = {2, 3, 3};  // 8 features total.
  config.seed = 7;
  const SyntheticDataset example = GenerateHicsDataset(config);
  generate_span.Stop();
  const Dataset& data = example.dataset;
  std::printf("dataset: %zu points x %zu features, %zu outliers\n",
              data.num_points(), data.num_features(),
              data.outlier_indices().size());

  const Lof lof(15);
  const Beam beam;
  ThreadPool pool(2);
  ScoringService service(lof, data, ScoringServiceOptions{}, &pool);

  // Ephemeral port (options.port = 0): the kernel picks, port() reports.
  ExplainServer server(ExplainServerOptions{}, &pool);
  server.RegisterService(service);
  server.RegisterExplainer("Beam", beam);
  std::string error;
  if (!server.Start(&error)) {
    std::printf("server start failed: %s\n", error.c_str());
    return 1;
  }
  std::printf("server listening on 127.0.0.1:%u\n\n", server.port());

  ExplainClient client;
  if (!client.Connect("127.0.0.1", server.port(), &error)) {
    std::printf("connect failed: %s\n", error.c_str());
    return 1;
  }

  // kScore: one subspace's standardized scores, bitwise-identical to the
  // direct call (doubles cross the wire as raw IEEE-754 bits).
  TraceSpan score_span(nullptr, &trace, "score_round_trip");
  const Subspace subspace({0, 1});
  const ExplainClient::ScoreReply score = client.Score("LOF", subspace);
  score_span.Stop();
  const std::vector<double> direct = ScoreStandardized(lof, data, subspace);
  std::printf("kScore %s: %zu scores, %s direct computation\n",
              subspace.ToString().c_str(), score.scores.size(),
              score.ok() && score.scores == direct ? "bitwise equal to"
                                                   : "MISMATCH vs");

  // kExplain: ranked explaining subspaces of the first planted outlier.
  TraceSpan explain_span(nullptr, &trace, "explain_round_trip");
  const int point = data.outlier_indices().front();
  const ExplainClient::ExplainReply explained =
      client.Explain("LOF", "Beam", point, /*target_dim=*/2);
  explain_span.Stop();
  const RankedSubspaces local = beam.Explain(data, lof, point, 2);
  std::printf("kExplain point %d: top subspace %s (%s in-process Beam)\n",
              point,
              explained.ok() ? explained.ranking.subspaces.front().ToString().c_str()
                             : explained.error.c_str(),
              explained.ok() && explained.ranking.subspaces == local.subspaces &&
                      explained.ranking.scores == local.scores
                  ? "same ranking as"
                  : "MISMATCH vs");

  // kStats: server counters, every registered service's cache stats, and
  // the metrics registry (latency histograms with p50/p90/p99 per stage).
  const ExplainClient::StatsReply stats = client.Stats();
  std::printf("kStats: %s\n\n", stats.json.c_str());
  std::printf("trace (stage -> ms): %s\n\n", trace.ToJson().c_str());

  client.Disconnect();
  server.Stop();  // Graceful: drains in-flight work, flushes responses.
  std::printf("server stopped after %llu requests, %llu responses\n",
              static_cast<unsigned long long>(server.stats().requests_admitted),
              static_cast<unsigned long long>(server.stats().responses_sent));
  return 0;
}
