// Explanation summarization workflow: LookOut vs HiCS (§4.2, miniature).
//
// Generates a subspace-outlier dataset, asks each summarizer for the top
// subspaces that collectively explain *all* outliers at once, and shows how
// the two search strategies differ: LookOut maximizes detector scores
// greedily (submodular coverage), HiCS searches for high-contrast feature
// combinations and only uses the detector to rank its findings.
//
// Run: ./summarize_outliers [seed]

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "subex/subex.h"

int main(int argc, char** argv) {
  using namespace subex;
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                                      : 11;

  HicsGeneratorConfig config;
  config.num_points = 400;
  config.subspace_dims = {2, 2, 3};
  config.seed = seed;
  const SyntheticDataset d = GenerateHicsDataset(config);
  const std::vector<int>& outliers = d.dataset.outlier_indices();
  std::printf("dataset: %zu points, %zu features, %zu outliers\n",
              d.dataset.num_points(), d.dataset.num_features(),
              outliers.size());
  std::printf("planted relevant subspaces:");
  for (const Subspace& s : d.relevant_subspaces) {
    std::printf(" %s", s.ToString().c_str());
  }
  std::printf("\n\n");

  const Lof lof(15);
  LookOut::Options lookout_options;
  lookout_options.budget = 5;
  const LookOut lookout(lookout_options);
  Hics::Options hics_options;
  hics_options.candidate_cutoff = 60;
  hics_options.mc_iterations = 50;
  hics_options.max_results = 5;
  hics_options.seed = seed;
  const Hics hics(hics_options);

  for (int dim : {2, 3}) {
    std::printf("=== %dd summaries (LOF as the ranking detector) ===\n", dim);
    for (const Summarizer* summarizer :
         {static_cast<const Summarizer*>(&lookout),
          static_cast<const Summarizer*>(&hics)}) {
      const RankedSubspaces summary =
          summarizer->Summarize(d.dataset, lof, outliers, dim);
      std::printf("%-8s:", summarizer->name().c_str());
      for (std::size_t i = 0; i < summary.size(); ++i) {
        const bool planted =
            std::find(d.relevant_subspaces.begin(),
                      d.relevant_subspaces.end(),
                      summary.subspaces[i]) != d.relevant_subspaces.end();
        std::printf(" %s%s", summary.subspaces[i].ToString().c_str(),
                    planted ? "*" : "");
      }
      std::printf("   (* = planted subspace)\n");
    }
  }

  // Quantify with the paper's metric.
  std::printf("\nMAP against planted ground truth:\n");
  for (int dim : {2, 3}) {
    const PipelineResult lo = RunSummarizationPipeline(
        d.dataset, d.ground_truth, lof, lookout, dim);
    const PipelineResult hi = RunSummarizationPipeline(
        d.dataset, d.ground_truth, lof, hics, dim);
    std::printf("  %dd: LookOut %.2f   HiCS %.2f\n", dim, lo.map, hi.map);
  }
  return 0;
}
