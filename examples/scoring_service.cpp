// Scoring service: cached, deduplicated detector scoring for explainers.
//
// Explanation algorithms hammer the detector with overlapping subspace
// queries: Beam re-scores the same low-dimensional projections while
// widening its frontier, and every explained point starts from the same
// exhaustive 2d stage. A `ScoringService` memoizes those standardized
// score vectors in a sharded LRU cache (and collapses concurrent identical
// requests into one computation), so repeated work becomes a lookup.
//
// This example explains every planted outlier of a HiCS-style dataset
// twice -- once scoring the detector directly, once through the service's
// `CachingDetector` adapter -- and prints the service's hit-rate stats.
// The two runs produce bitwise-identical explanations.
//
// Run: ./scoring_service

#include <cstdio>

#include "subex/subex.h"

int main() {
  using namespace subex;

  HicsGeneratorConfig config;
  config.num_points = 400;
  config.subspace_dims = {2, 3, 3};  // 8 features total.
  config.seed = 7;
  const SyntheticDataset example = GenerateHicsDataset(config);
  const Dataset& data = example.dataset;
  std::printf("dataset: %zu points x %zu features, %zu outliers\n\n",
              data.num_points(), data.num_features(),
              data.outlier_indices().size());

  const Lof lof(15);
  const Beam beam;

  // A service wrapping the detector: same dataset, same scores, plus a
  // cache shared by everything scoring through it.
  ThreadPool pool(2);
  ScoringServiceOptions options;
  options.cache.max_entries = 1 << 14;
  ScoringService service(lof, data, options, &pool);
  const CachingDetector cached_lof(service);

  std::printf("%-8s %-22s %-22s\n", "point", "direct top subspace",
              "via ScoringService");
  for (int point : data.outlier_indices()) {
    const RankedSubspaces direct = beam.Explain(data, lof, point, 2);
    const RankedSubspaces served = beam.Explain(data, cached_lof, point, 2);
    std::printf("%-8d %-22s %-22s%s\n", point,
                direct.subspaces.front().ToString().c_str(),
                served.subspaces.front().ToString().c_str(),
                direct.subspaces == served.subspaces &&
                        direct.scores == served.scores
                    ? ""
                    : "  MISMATCH");
  }

  // Beam's exhaustive 2d stage is identical for every point, so all
  // explanations after the first are served mostly from cache.
  const ServiceStatsSnapshot stats = service.stats();
  std::printf("\nservice stats: %s\n", stats.ToString().c_str());
  std::printf("scoring time actually spent: %.3fs for %llu unique subspaces\n",
              stats.ComputeSeconds(),
              static_cast<unsigned long long>(stats.misses));
  return 0;
}
