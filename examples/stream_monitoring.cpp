// Stream monitoring (the paper's §6 outlook, implemented): a drifting
// point stream is summarized chunk by chunk, demonstrating the paper's
// conclusion that subspace explanations are *descriptive* — they describe
// the current batch and must be recomputed per batch; a frozen summary
// dies at the first concept drift.
//
// Run: ./stream_monitoring [seed]

#include <cstdio>
#include <cstdlib>

#include "subex/subex.h"

int main(int argc, char** argv) {
  using namespace subex;
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                                      : 3;

  DriftingStreamConfig config;
  config.chunk_size = 250;
  config.outliers_per_chunk = 6;
  config.drift_every_chunks = 3;
  config.subspace_dims = {2, 3};
  config.seed = seed;
  DriftingStreamGenerator stream(config);
  std::printf("stream: %d features, chunks of %d points, concept drift "
              "every %d chunks\n\n",
              stream.num_features(), config.chunk_size,
              config.drift_every_chunks);

  const Lof lof(15);
  LookOut::Options lookout_options;
  lookout_options.budget = 5;
  const LookOut lookout(lookout_options);

  const std::vector<StreamingChunkResult> results =
      RunStreamingSummarization(stream, lof, lookout, 9, 2);

  TextTable table;
  table.SetHeader({"chunk", "concept", "points@2d", "MAP recomputed",
                   "MAP frozen", "recompute time"});
  for (const StreamingChunkResult& r : results) {
    table.AddRow({std::to_string(r.chunk_index),
                  std::to_string(r.concept_epoch),
                  std::to_string(r.num_points),
                  FormatDouble(r.map_recomputed),
                  FormatDouble(r.map_stale),
                  FormatSeconds(r.seconds_recompute)});
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf(
      "the frozen summary (computed on chunk 0) explains chunks of concept\n"
      "0 but collapses once the concept drifts; recomputing per chunk\n"
      "recovers -- \"explanation tasks should be re-executed for every new\n"
      "bunch of data\" (paper, section 6).\n");
  return 0;
}
