// Memory-pressure bench: how chunked scoring throughput and cache hit
// rates degrade as the EvictionManager budget shrinks.
//
// Two sweeps share one process-wide budget (a dedicated manager, so the
// global singleton's state never leaks into the numbers):
//
//  1. Chunked scoring: a generated ".cols" dataset is kNN-scored at its
//     points of interest repeatedly while the budget steps down from
//     "everything resident" to "a handful of chunks". Each step reports
//     wall time per pass plus the chunk load/hit/eviction deltas — the
//     thrashing curve of the larger-than-RAM path.
//  2. Governed ScoreCache: two caches fill with score vectors under the
//     same shrinking budget; each step reports insert throughput, how many
//     vectors survive, and the manager's eviction/reserve-failure totals —
//     what the serving layer experiences when a chunked scan squeezes it.
//
// Usage: bench_mem_pressure [--rows N] [--cols N] [--json out.json]

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.h"

namespace {

using namespace subex;

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

/// Streams a two-cluster Gaussian dataset with evenly spaced uniform
/// outliers to `path` (same shape csv_to_columns generates).
bool GenerateCols(const std::string& path, std::size_t rows,
                  std::size_t cols, std::size_t rows_per_chunk) {
  ColumnarWriter writer(path, cols, rows_per_chunk);
  Rng rng(42);
  const std::size_t num_outliers = 32;
  const std::size_t stride = rows / num_outliers + 1;
  std::vector<double> row(cols);
  for (std::size_t r = 0; r < rows; ++r) {
    if (r % stride == 0 && r / stride < num_outliers) {
      for (double& v : row) v = rng.Uniform(-12.0, 12.0);
      writer.MarkOutlier(static_cast<std::int64_t>(r));
    } else {
      const double center = (rng.Uniform() < 0.5) ? -2.0 : 2.0;
      for (double& v : row) v = rng.Gaussian(center, 1.0);
    }
    if (!writer.AppendRow(row)) break;
  }
  return writer.Finish();
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t rows = static_cast<std::size_t>(
      std::strtoull(bench::FlagValue(argc, argv, "--rows", "100000").c_str(),
                    nullptr, 10));
  const std::size_t cols = static_cast<std::size_t>(
      std::strtoull(bench::FlagValue(argc, argv, "--cols", "8").c_str(),
                    nullptr, 10));
  const std::string json_path = bench::FlagValue(argc, argv, "--json");

  bench::JsonTimingReport report;
  report.SetMeta(JsonObject()
                     .Add("bench", "mem_pressure")
                     .Add("rows", static_cast<std::uint64_t>(rows))
                     .Add("cols", static_cast<std::uint64_t>(cols)));

  const std::string cols_path = "/tmp/subex_bench_mem_pressure.cols";
  const std::size_t rows_per_chunk = 4096;  // 32 KB chunks.
  if (!GenerateCols(cols_path, rows, cols, rows_per_chunk)) {
    std::fprintf(stderr, "cannot write %s\n", cols_path.c_str());
    return 1;
  }

  EvictionManagerOptions manager_options;
  EvictionManager manager(manager_options);

  // --- Sweep 1: chunked kNN scoring under a shrinking budget. -----------
  ChunkedDatasetOptions data_options;
  data_options.manager = &manager;
  data_options.name = "bench_chunks";
  auto open = ChunkedDataset::Open(cols_path, data_options);
  if (!open.ok) {
    std::fprintf(stderr, "error: %s\n", open.error.c_str());
    return 1;
  }
  ChunkedDataset& data = *open.dataset;
  const std::vector<int> queries = data.outlier_indices();
  const std::size_t chunk_bytes = rows_per_chunk * sizeof(double);
  const std::size_t file_bytes = rows * cols * sizeof(double);

  std::printf("chunked kNN scoring: %zu rows x %zu cols (%.1f MB, %zu-row "
              "chunks), %zu queries\n\n",
              rows, cols, file_bytes / (1024.0 * 1024.0), rows_per_chunk,
              queries.size());

  TextTable scan_table;
  scan_table.SetHeader({"budget", "pass ms", "loads", "hits", "evictions",
                        "hit rate"});
  // From comfortably-resident down to ~4 chunks.
  std::vector<std::size_t> budgets;
  for (std::size_t b = 2 * file_bytes; b >= 4 * chunk_bytes; b /= 4) {
    budgets.push_back(b);
  }
  ChunkedDatasetStats prev = data.stats();
  for (std::size_t budget : budgets) {
    manager.SetBudget(budget);
    const int passes = 3;
    const auto start = std::chrono::steady_clock::now();
    double checksum = 0.0;
    for (int p = 0; p < passes; ++p) {
      const std::vector<double> scores = ScoreKnnDistanceChunked(
          data, Subspace(), /*k=*/10, KnnDistance::Aggregation::kMean,
          queries);
      for (double s : scores) checksum += s;
    }
    const double pass_ms = MsSince(start) / passes;
    const ChunkedDatasetStats now = data.stats();
    const std::uint64_t loads = now.loads - prev.loads;
    const std::uint64_t hits = now.hits - prev.hits;
    const std::uint64_t evictions = now.evictions - prev.evictions;
    prev = now;
    const double hit_rate =
        loads + hits > 0
            ? static_cast<double>(hits) / static_cast<double>(loads + hits)
            : 0.0;
    char budget_label[32];
    std::snprintf(budget_label, sizeof(budget_label), "%.1f MB",
                  budget / (1024.0 * 1024.0));
    char pass_label[32];
    std::snprintf(pass_label, sizeof(pass_label), "%.1f", pass_ms);
    char rate_label[32];
    std::snprintf(rate_label, sizeof(rate_label), "%.1f%%",
                  100.0 * hit_rate);
    scan_table.AddRow({budget_label, pass_label, std::to_string(loads),
                       std::to_string(hits), std::to_string(evictions),
                       rate_label});
    report.AddRow(JsonObject()
                      .Add("sweep", "chunked_knn")
                      .Add("budget_bytes", static_cast<std::uint64_t>(budget))
                      .Add("pass_ms", pass_ms)
                      .Add("loads", loads)
                      .Add("hits", hits)
                      .Add("evictions", evictions)
                      .Add("hit_rate", hit_rate)
                      .Add("checksum", checksum));
  }
  std::printf("%s\n", scan_table.Render().c_str());

  // --- Sweep 2: governed score caches under the same shrinking budget. --
  const std::size_t vector_bytes = rows * sizeof(double);
  std::printf("governed ScoreCache: %.0f KB score vectors, two caches, "
              "shared budget\n\n",
              vector_bytes / 1024.0);

  ScoreCacheOptions cache_options;
  cache_options.manager = &manager;
  cache_options.max_entries = 1 << 20;
  cache_options.max_bytes = 0;  // Only the manager budget binds.
  cache_options.name = "bench_cache_a";
  ScoreCache cache_a(cache_options);
  cache_options.name = "bench_cache_b";
  ScoreCache cache_b(cache_options);

  TextTable cache_table;
  cache_table.SetHeader({"budget", "puts/ms", "resident", "mgr evictions",
                         "reserve failures"});
  const auto vector_for = [&](int i) {
    return std::make_shared<const std::vector<double>>(
        rows, static_cast<double>(i));
  };
  int next_key = 0;
  for (std::size_t budget : budgets) {
    manager.SetBudget(budget);
    // Twice as many inserts as fit, split across both caches, so every
    // step runs against an over-subscribed budget.
    const int inserts =
        static_cast<int>(2 * (budget / vector_bytes + 1));
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < inserts; ++i) {
      ScoreCache& cache = (i % 2 == 0) ? cache_a : cache_b;
      cache.Put(ScoreKey{"knn", Subspace({next_key, next_key + 1})},
                vector_for(next_key));
      ++next_key;
    }
    const double elapsed_ms = MsSince(start);
    const EvictionManagerSnapshot snap = manager.snapshot();
    std::uint64_t manager_evictions = 0;
    for (const MemCacheStats& cache_stats : snap.caches) {
      manager_evictions += cache_stats.evictions;
    }
    char budget_label[32];
    std::snprintf(budget_label, sizeof(budget_label), "%.1f MB",
                  budget / (1024.0 * 1024.0));
    char rate_label[32];
    std::snprintf(rate_label, sizeof(rate_label), "%.1f",
                  elapsed_ms > 0 ? inserts / elapsed_ms : 0.0);
    cache_table.AddRow({budget_label, rate_label,
                        std::to_string(cache_a.size() + cache_b.size()),
                        std::to_string(manager_evictions),
                        std::to_string(snap.reserve_failures)});
    report.AddRow(JsonObject()
                      .Add("sweep", "score_cache")
                      .Add("budget_bytes", static_cast<std::uint64_t>(budget))
                      .Add("inserts", static_cast<std::uint64_t>(inserts))
                      .Add("elapsed_ms", elapsed_ms)
                      .Add("resident", static_cast<std::uint64_t>(
                                           cache_a.size() + cache_b.size()))
                      .Add("evictions", manager_evictions)
                      .Add("reserve_failures", snap.reserve_failures));
  }
  std::printf("%s\n", cache_table.Render().c_str());
  std::printf("final mem snapshot: %s\n", manager.snapshot().ToJson().c_str());

  if (!json_path.empty()) report.WriteTo(json_path);
  std::printf(
      "expectation: hit rate falls and evictions climb as the budget drops\n"
      "below the file size; pass time rises with chunk re-loads. The cache\n"
      "sweep shows inserts surviving only up to the budget, never failing\n"
      "the reserve path.\n");
  std::remove(cols_path.c_str());
  return 0;
}
