// Ablation: HiCS design choices (DESIGN.md "Correlation heuristic").
//
//  (1) Monte-Carlo iterations: how many iterations does the contrast
//      estimate need before planted (correlated) subspaces separate
//      reliably from random feature pairs?
//  (2) Statistical test: Welch's t-test (the paper's default) vs. the
//      two-sample Kolmogorov-Smirnov test.
//  (3) Candidate cutoff: the paper uses 400; how small can it get before
//      the stage-wise search loses the planted subspaces?
//
// Usage: bench_ablation_hics [--full] [--seed N]

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace subex;
  const TestbedProfile profile =
      bench::ParseProfile(argc, argv, "Ablation: HiCS design choices");

  HicsGeneratorConfig config;
  config.num_points = profile.name == "quick" ? 400 : 1000;
  config.subspace_dims = {2, 3, 2, 3, 4};  // 14 features.
  config.seed = profile.seed;
  const SyntheticDataset d = GenerateHicsDataset(config);
  const Lof lof(15);
  std::printf("dataset: %zu pts, %zu feats, planted subspaces:",
              d.dataset.num_points(), d.dataset.num_features());
  for (const Subspace& s : d.relevant_subspaces) {
    std::printf(" %s", s.ToString().c_str());
  }
  std::printf("\n\n");

  // (1) + (2): contrast separation as a function of MC iterations & test.
  std::printf("contrast gap: mean(planted 2d) - mean(random off pairs)\n");
  TextTable gap_table;
  gap_table.SetHeader({"mc iterations", "welch gap", "ks gap", "time(welch)"});
  for (int iters : {5, 10, 25, 50, 100}) {
    double gaps[2];
    double seconds = 0.0;
    for (TwoSampleTestKind test : {TwoSampleTestKind::kWelch,
                                   TwoSampleTestKind::kKolmogorovSmirnov}) {
      Hics::Options options;
      options.mc_iterations = iters;
      options.test = test;
      options.seed = profile.seed;
      const Hics hics(options);
      const auto start = std::chrono::steady_clock::now();
      double planted_sum = 0.0;
      int planted_count = 0;
      for (const Subspace& s : d.relevant_subspaces) {
        if (s.size() != 2) continue;
        planted_sum += hics.Contrast(d.dataset, s);
        ++planted_count;
      }
      // Off pairs: features drawn from two different planted subspaces.
      double off_sum = 0.0;
      int off_count = 0;
      for (std::size_t i = 0; i + 1 < d.relevant_subspaces.size(); ++i) {
        const Subspace cross({d.relevant_subspaces[i].features().front(),
                              d.relevant_subspaces[i + 1].features().front()});
        off_sum += hics.Contrast(d.dataset, cross);
        ++off_count;
      }
      gaps[test == TwoSampleTestKind::kWelch ? 0 : 1] =
          planted_sum / planted_count - off_sum / off_count;
      if (test == TwoSampleTestKind::kWelch) {
        seconds = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start)
                      .count();
      }
    }
    gap_table.AddRow({std::to_string(iters), FormatDouble(gaps[0], 3),
                      FormatDouble(gaps[1], 3), FormatSeconds(seconds)});
  }
  std::printf("%s\n", gap_table.Render().c_str());

  // (3): candidate cutoff vs. summary quality at 3d.
  std::printf("candidate cutoff vs. 3d summarization MAP (Welch, mc=%d)\n",
              profile.hics_mc_iterations);
  TextTable cutoff_table;
  cutoff_table.SetHeader({"cutoff", "MAP@3d", "recall@3d", "time"});
  for (int cutoff : {5, 10, 25, 50, 100, 400}) {
    Hics::Options options;
    options.candidate_cutoff = cutoff;
    options.mc_iterations = profile.hics_mc_iterations;
    options.seed = profile.seed;
    const Hics hics(options);
    const PipelineResult r = RunSummarizationPipeline(
        d.dataset, d.ground_truth, lof, hics, 3);
    cutoff_table.AddRow({std::to_string(cutoff), FormatDouble(r.map),
                         FormatDouble(r.mean_recall),
                         FormatSeconds(r.seconds)});
  }
  std::printf("%s\n", cutoff_table.Render().c_str());

  // Final-ranking ablation: the paper's detector ranking vs pure contrast
  // ranking. On this testbed's parity-atom data both rank comparably:
  // augmentations of lower-dimensional relevant subspaces tie with exact
  // subspaces under *either* criterion — evidence that the ambiguity the
  // paper reports ("detectors assign higher scores to outliers in their
  // augmented subspaces", §4.2) is intrinsic to the data, not an artifact
  // of the ranking choice.
  std::printf("final ranking: detector (paper) vs contrast\n");
  TextTable ranking_table;
  ranking_table.SetHeader({"ranking", "MAP@2d", "MAP@3d", "recall@3d"});
  for (Hics::Ranking ranking :
       {Hics::Ranking::kDetector, Hics::Ranking::kContrast}) {
    Hics::Options options;
    options.candidate_cutoff = profile.hics_candidate_cutoff;
    options.mc_iterations = profile.hics_mc_iterations;
    options.ranking = ranking;
    options.seed = profile.seed;
    const Hics hics(options);
    const PipelineResult r2 = RunSummarizationPipeline(
        d.dataset, d.ground_truth, lof, hics, 2);
    const PipelineResult r3 = RunSummarizationPipeline(
        d.dataset, d.ground_truth, lof, hics, 3);
    ranking_table.AddRow(
        {ranking == Hics::Ranking::kDetector ? "detector" : "contrast",
         FormatDouble(r2.map), FormatDouble(r3.map),
         FormatDouble(r3.mean_recall)});
  }
  std::printf("%s\n", ranking_table.Render().c_str());

  std::printf(
      "expectation: the contrast gap widens and stabilizes with more MC\n"
      "iterations (both tests separate planted from random pairs); tiny\n"
      "cutoffs prune the planted subspaces' parents and lose MAP, large\n"
      "cutoffs only cost time -- supporting the paper's 400; detector and\n"
      "contrast ranking perform comparably (the exact-vs-augmentation\n"
      "ambiguity is intrinsic to the data, cf. the paper's section 4.2).\n");
  return 0;
}
