// Extension bench: predictive (surrogate) explanations vs subspace search
// -- the §6 future-work direction, implemented and measured.
//
// The paper argues that descriptive subspace search must re-run per point
// and proposes surrogate models "to overcome the high computation cost of
// subspace search per point". This bench quantifies that trade-off: MAP
// and per-point runtime of the SurrogateExplainer (one full-space detector
// call + a CART fit) against Beam and RefOut (thousands of per-subspace
// detector calls), plus the surrogate's score fidelity (R^2).
//
// Usage: bench_surrogate_explainer [--full] [--seed N]

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace subex;
  const TestbedProfile profile = bench::ParseProfile(
      argc, argv, "Extension: surrogate (predictive) explanations");

  HicsGeneratorConfig config;
  config.num_points = profile.name == "quick" ? 300 : 1000;
  config.subspace_dims = {2, 2, 3, 3, 4};
  config.seed = profile.seed;
  const SyntheticDataset d = GenerateHicsDataset(config);
  const Lof lof(15);
  std::printf("dataset: %zu pts, %zu feats, %zu outliers\n",
              d.dataset.num_points(), d.dataset.num_features(),
              d.dataset.outlier_indices().size());

  const SurrogateExplainer surrogate;
  std::printf("surrogate fidelity vs LOF full-space scores (R^2): %.2f\n\n",
              surrogate.Fidelity(d.dataset, lof));

  PipelineOptions pipeline_options;
  pipeline_options.max_points = profile.name == "quick" ? 6 : 0;
  Beam::Options beam_options;
  beam_options.beam_width = profile.beam_width;
  const Beam beam(beam_options);
  RefOut::Options refout_options;
  refout_options.pool_size = profile.refout_pool_size;
  refout_options.beam_width = profile.beam_width;
  refout_options.seed = profile.seed;
  const RefOut refout(refout_options);

  TextTable table;
  table.SetHeader({"explainer", "dim", "MAP", "recall", "time/point"});
  for (int dim : {2, 3}) {
    for (const PointExplainer* explainer :
         {static_cast<const PointExplainer*>(&beam),
          static_cast<const PointExplainer*>(&refout),
          static_cast<const PointExplainer*>(&surrogate)}) {
      const PipelineResult r = RunPointExplanationPipeline(
          d.dataset, d.ground_truth, lof, *explainer, dim,
          pipeline_options);
      table.AddRow({explainer->name(), std::to_string(dim),
                    FormatDouble(r.map), FormatDouble(r.mean_recall),
                    r.num_points > 0
                        ? FormatSeconds(r.seconds / r.num_points)
                        : "-"});
    }
  }
  std::printf("%s\n", table.Render().c_str());

  // Second scenario: full-space outliers (the real-dataset regime), where
  // outlyingness IS axis-separable and predictive signatures have a
  // fighting chance.
  FullSpaceGeneratorConfig fs_config;
  fs_config.num_points = profile.name == "quick" ? 150 : 400;
  fs_config.num_features = 10;
  fs_config.num_outliers = fs_config.num_points / 10;
  fs_config.seed = profile.seed;
  const SyntheticDataset fs = GenerateFullSpaceDataset(fs_config);
  GroundTruthBuilderOptions gt_options;
  gt_options.min_dim = 2;
  gt_options.max_dim = 2;
  const GroundTruth fs_gt =
      BuildGroundTruthByExhaustiveSearch(fs.dataset, lof, gt_options);
  std::printf("full-space dataset: %zu pts, %zu feats; surrogate R^2: %.2f\n",
              fs.dataset.num_points(), fs.dataset.num_features(),
              surrogate.Fidelity(fs.dataset, lof));
  TextTable fs_table;
  fs_table.SetHeader({"explainer", "MAP@2d", "recall@2d", "time/point"});
  for (const PointExplainer* explainer :
       {static_cast<const PointExplainer*>(&beam),
        static_cast<const PointExplainer*>(&surrogate)}) {
    const PipelineResult r = RunPointExplanationPipeline(
        fs.dataset, fs_gt, lof, *explainer, 2, pipeline_options);
    fs_table.AddRow({explainer->name(), FormatDouble(r.map),
                     FormatDouble(r.mean_recall),
                     r.num_points > 0 ? FormatSeconds(r.seconds / r.num_points)
                                      : "-"});
  }
  std::printf("%s\n", fs_table.Render().c_str());

  std::printf(
      "expectation: the surrogate is orders of magnitude faster per point\n"
      "(one detector call amortized over the batch). On subspace outliers\n"
      "its MAP collapses -- axis-aligned splits cannot isolate points that\n"
      "are masked in every marginal, a concrete caveat for the paper's\n"
      "future-work direction. On full-space outliers (deviation in every\n"
      "feature) the signature features are genuinely relevant, but the\n"
      "exhaustive-search ground truth picks one of many near-equivalent\n"
      "subspaces, so exact-match MAP stays far below Beam's -- predictive\n"
      "explanations trade exactness for a ~100x per-point speedup.\n");
  return 0;
}
