// Ablation: Beam design choices (DESIGN.md "Stage-wise subspace search").
//
//  (1) Beam width: the paper uses 100; MAP and cost as the width shrinks
//      shows how greedy the stage-wise search can afford to be.
//  (2) Result mode: Beam_FX (fixed-dimensionality output, the paper's
//      comparison variant) vs. the original global-best list.
//
// Usage: bench_ablation_beam [--full] [--seed N]

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace subex;
  const TestbedProfile profile =
      bench::ParseProfile(argc, argv, "Ablation: Beam design choices");

  HicsGeneratorConfig config;
  config.num_points = profile.name == "quick" ? 300 : 1000;
  config.subspace_dims = {2, 2, 3, 3, 4, 4, 5};  // 23 features, 21% regime.
  config.seed = profile.seed;
  const SyntheticDataset d = GenerateHicsDataset(config);
  const Lof lof(15);
  PipelineOptions pipeline_options;
  pipeline_options.max_points = profile.name == "quick" ? 5 : 0;

  std::printf("dataset: %zu pts, %zu feats (subspace outliers)\n\n",
              d.dataset.num_points(), d.dataset.num_features());

  std::printf("beam width sweep (LOF, Beam_FX)\n");
  TextTable width_table;
  width_table.SetHeader({"width", "MAP@2d", "MAP@3d", "MAP@4d", "time@4d",
                         "bound@4d (subspaces)"});
  for (int width : {2, 5, 10, 25, 50, 100}) {
    Beam::Options options;
    options.beam_width = width;
    const Beam beam(options);
    std::vector<std::string> row = {std::to_string(width)};
    double t4 = 0.0;
    for (int dim : {2, 3, 4}) {
      const PipelineResult r = RunPointExplanationPipeline(
          d.dataset, d.ground_truth, lof, beam, dim, pipeline_options);
      row.push_back(FormatDouble(r.map));
      if (dim == 4) t4 = r.seconds;
    }
    row.push_back(FormatSeconds(t4));
    row.push_back(std::to_string(Beam::CountScoredSubspaces(
        static_cast<int>(d.dataset.num_features()), 4, width)));
    width_table.AddRow(std::move(row));
  }
  std::printf("%s\n", width_table.Render().c_str());

  std::printf("result mode: Beam_FX vs. global-best (width %d, dim 4)\n",
              profile.beam_width);
  TextTable mode_table;
  mode_table.SetHeader({"mode", "MAP@4d", "recall@4d"});
  for (Beam::ResultMode mode :
       {Beam::ResultMode::kFixedDim, Beam::ResultMode::kGlobalBest}) {
    Beam::Options options;
    options.beam_width = profile.beam_width;
    options.result_mode = mode;
    const Beam beam(options);
    const PipelineResult r = RunPointExplanationPipeline(
        d.dataset, d.ground_truth, lof, beam, 4, pipeline_options);
    mode_table.AddRow(
        {mode == Beam::ResultMode::kFixedDim ? "Beam_FX" : "global-best",
         FormatDouble(r.map), FormatDouble(r.mean_recall)});
  }
  std::printf("%s\n", mode_table.Render().c_str());

  std::printf(
      "expectation: MAP saturates well below width 100 at low explanation\n"
      "dims but keeps improving with width at 4d (more lower-dim parents\n"
      "must survive); global-best dilutes fixed-dim MAP because lower-dim\n"
      "subspaces outrank the 4d ones for subspace outliers' projections.\n");
  return 0;
}
