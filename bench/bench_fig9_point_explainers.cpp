// Regenerates Figure 9: MAP of the point explanation pipelines
// (Beam / RefOut x LOF / Fast ABOD / iForest) for explanations of
// increasing dimensionality, on the five HiCS synthetic splits (panels
// a-e) and the three real-dataset stand-ins (panels f-h).
//
// Paper expectations (shape, not absolute values):
//  * 14d synthetic: RefOut+LOF ~ optimal at all dims; Beam+LOF degrades at
//    high explanation dims.
//  * 23d+ synthetic: Beam pairs better with Fast ABOD / iForest than with
//    LOF (outliers are masked in low-d projections); everything collapses
//    for 4d-5d explanations on the 70d/100d splits.
//  * real datasets (full-space outliers): Beam+LOF ~ optimal everywhere;
//    RefOut ~ 0 regardless of the detector.
//
// Cells whose estimated cost exceeds the per-detector budget are skipped
// and printed as "-", mirroring the configurations the paper did not run.
//
// Scoring routes through a per-(dataset, detector) ScoringService shared
// across both explainers and every explanation dimensionality; each dataset
// section ends with the cache hit-rate stats (`--no-cache` disables the
// cache, `--threads N` sizes the worker pool).
//
// Usage: bench_fig9_point_explainers [--full] [--seed N] [--threads N]
//        [--no-cache]

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace subex;
  const TestbedProfile profile = bench::ParseProfile(
      argc, argv, "Figure 9: MAP of point explanation pipelines");
  ThreadPool pool(static_cast<std::size_t>(profile.num_threads));
  const std::vector<TestbedDataset> suite =
      bench::BuildFullTestbed(profile, /*synthetic=*/true, /*real=*/true,
                              &pool);

  PipelineOptions pipeline_options;
  pipeline_options.max_points = profile.max_points_per_cell;

  for (const TestbedDataset& entry : suite) {
    const Dataset& data = entry.data.dataset;
    const GroundTruth& gt = entry.data.ground_truth;
    std::printf("--- %s (%zu pts, %zu feats, %s outliers) ---\n",
                entry.data.name.c_str(), data.num_points(),
                data.num_features(),
                entry.subspace_outliers ? "subspace" : "full-space");

    TextTable table;
    std::vector<std::string> header = {"pipeline"};
    for (int dim : entry.explanation_dims) {
      header.push_back("MAP@" + std::to_string(dim) + "d");
      header.push_back("rec@" + std::to_string(dim) + "d");
    }
    table.SetHeader(header);

    bench::DetectorServices services =
        bench::MakeDetectorServices(profile, data, &pool);

    for (PointExplainerKind explainer_kind :
         {PointExplainerKind::kBeam, PointExplainerKind::kRefOut}) {
      const auto explainer =
          MakeTestbedPointExplainer(explainer_kind, profile);
      for (DetectorKind detector_kind : AllDetectorKinds()) {
        std::vector<std::string> row = {
            std::string(PointExplainerKindName(explainer_kind)) + "+" +
            DetectorKindName(detector_kind)};
        for (int dim : entry.explanation_dims) {
          const int points = bench::CellPoints(profile, gt, dim);
          const std::uint64_t cost = bench::EstimatePointCellScores(
              profile, explainer_kind, data.num_features(), dim, points);
          if (points == 0 ||
              cost > bench::ScoreBudget(profile, detector_kind)) {
            row.push_back("-");
            row.push_back("-");
            continue;
          }
          const PipelineResult r = RunPointExplanationPipeline(
              services.For(detector_kind), gt, *explainer, dim,
              pipeline_options);
          row.push_back(FormatDouble(r.map));
          row.push_back(FormatDouble(r.mean_recall));
        }
        table.AddRow(std::move(row));
      }
    }
    std::printf("%s\n", table.Render().c_str());
    bench::PrintServiceStats(services);
    std::printf("\n");
  }

  std::printf(
      "paper expectation: on subspace outliers RefOut+LOF leads at low\n"
      "dataset dims and Beam pairs better with FastABOD/iForest as dims\n"
      "grow; on full-space outliers Beam+LOF ~ 1.0 and RefOut ~ 0.\n"
      "cells marked '-' exceeded the cost budget (the paper likewise did\n"
      "not run its most expensive configurations).\n");
  return 0;
}
