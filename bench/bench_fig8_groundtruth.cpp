// Regenerates Figure 8: dimensionality histogram of the subspaces relevant
// to outliers, and the contamination ratio, per HiCS synthetic split.
//
// Paper reference (full profile): the five splits contain relevant
// subspaces of dimensionality 2-5 partitioning the feature space --
//   14d: one subspace of each dim 2,3,4,5 (20 outliers, 2.0%)
//   23d: 7 subspaces                      (34 outliers, 3.4%)
//   39d: 12 subspaces                     (59 outliers, 5.9%)
//   70d: 22 subspaces                     (100 outliers, 10.0%)
//  100d: 31 subspaces                     (143 outliers, 14.3%)
//
// Usage: bench_fig8_groundtruth [--full] [--seed N]

#include <map>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace subex;
  const TestbedProfile profile = bench::ParseProfile(
      argc, argv, "Figure 8: relevant-subspace dimensionality & contamination");
  const std::vector<TestbedDataset> suite =
      bench::BuildFullTestbed(profile, /*synthetic=*/true, /*real=*/false);

  TextTable table;
  table.SetHeader({"dataset", "#2d", "#3d", "#4d", "#5d", "total",
                   "outliers", "contamination%", "shared outliers"});
  for (const TestbedDataset& entry : suite) {
    std::map<int, int> histogram;
    for (const Subspace& s : entry.data.relevant_subspaces) {
      ++histogram[static_cast<int>(s.size())];
    }
    int shared = 0;
    for (int p : entry.data.dataset.outlier_indices()) {
      if (entry.data.ground_truth.RelevantFor(p).size() >= 2) ++shared;
    }
    table.AddRow({
        entry.data.name,
        std::to_string(histogram[2]),
        std::to_string(histogram[3]),
        std::to_string(histogram[4]),
        std::to_string(histogram[5]),
        std::to_string(entry.data.relevant_subspaces.size()),
        std::to_string(entry.data.dataset.outlier_indices().size()),
        FormatDouble(100.0 * entry.data.dataset.ContaminationRatio(), 1),
        std::to_string(shared),
    });
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf(
      "paper expectation: subspace counts 4/7/12/22/31 across the splits,\n"
      "dimensionalities 2-5 partitioning the feature space exactly, ~9%% of\n"
      "outliers explained by two subspaces, contamination 2-14.3%%.\n");
  return 0;
}
