// Extension bench: explanation under concept drift (the paper's §6
// stream-processing outlook).
//
// A drifting subspace-outlier stream is summarized chunk by chunk; the
// bench contrasts per-chunk recomputation against a frozen summary and
// reports the MAP trajectory across drifts, plus the per-chunk recompute
// cost — the quantity that motivates the paper's interest in cheaper
// predictive explanations.
//
// Usage: bench_stream_drift [--full] [--seed N] [--json out.json]

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace subex;
  const TestbedProfile profile = bench::ParseProfile(
      argc, argv, "Extension: summarization under concept drift");

  DriftingStreamConfig config;
  config.chunk_size = profile.name == "quick" ? 250 : 1000;
  config.outliers_per_chunk = 6;
  config.drift_every_chunks = 3;
  config.subspace_dims = {2, 3, 2};
  config.seed = profile.seed;
  DriftingStreamGenerator stream(config);
  const Lof lof(15);
  LookOut::Options lookout_options;
  lookout_options.budget = 6;
  const LookOut lookout(lookout_options);

  const int chunks = profile.name == "quick" ? 9 : 15;
  const std::vector<StreamingChunkResult> results =
      RunStreamingSummarization(stream, lof, lookout, chunks, 2);

  TextTable table;
  table.SetHeader({"chunk", "concept", "points@2d", "MAP recomputed",
                   "MAP frozen", "recompute time"});
  double fresh_sum = 0.0;
  double stale_sum = 0.0;
  int post_drift = 0;
  for (const StreamingChunkResult& r : results) {
    table.AddRow({std::to_string(r.chunk_index),
                  std::to_string(r.concept_epoch),
                  std::to_string(r.num_points),
                  FormatDouble(r.map_recomputed), FormatDouble(r.map_stale),
                  FormatSeconds(r.seconds_recompute)});
    if (r.concept_epoch > 0 && r.num_points > 0) {
      fresh_sum += r.map_recomputed;
      stale_sum += r.map_stale;
      ++post_drift;
    }
  }
  std::printf("%s\n", table.Render().c_str());
  if (post_drift > 0) {
    std::printf("post-drift mean MAP: recomputed %.2f vs frozen %.2f\n\n",
                fresh_sum / post_drift, stale_sum / post_drift);
  }
  std::printf(
      "expectation: the frozen summary explains concept-0 chunks and\n"
      "collapses after the first drift while per-chunk recomputation\n"
      "recovers -- subspace explanations are descriptive and must be\n"
      "re-executed for every new batch (paper, section 6).\n");

  const std::string json_path = bench::FlagValue(argc, argv, "--json");
  if (!json_path.empty()) {
    bench::JsonTimingReport report;
    report.SetMeta(
        JsonObject()
            .Add("bench", "stream_drift")
            .Add("profile", profile.name)
            .Add("seed", static_cast<std::uint64_t>(config.seed))
            .Add("chunks", chunks)
            .Add("post_drift_chunks", post_drift)
            .Add("post_drift_map_recomputed",
                 post_drift > 0 ? fresh_sum / post_drift : 0.0)
            .Add("post_drift_map_frozen",
                 post_drift > 0 ? stale_sum / post_drift : 0.0));
    for (const StreamingChunkResult& r : results) {
      report.AddRow(JsonObject()
                        .Add("chunk", r.chunk_index)
                        .Add("concept_epoch", r.concept_epoch)
                        .Add("num_points", r.num_points)
                        .Add("map_recomputed", r.map_recomputed)
                        .Add("map_frozen", r.map_stale)
                        .Add("seconds_recompute", r.seconds_recompute));
    }
    report.WriteTo(json_path);
  }
  return 0;
}
