// Regenerates Table 1: "Characteristics of real and synthetic datasets".
//
// For the synthetic (HiCS-style) suite the characteristics come from the
// planted ground truth; for the real-dataset stand-ins they come from the
// exhaustive-LOF ground truth built with the paper's §3.2 procedure.
//
// Paper reference values (full profile):
//   Real: full-space outliers, 10% contamination, 60/151/249 relevant
//         subspaces, 3 relevant subspaces per outlier (one per dim 2-4),
//         1 / 1.13 / 1.45 outliers per relevant subspace, 100% feature ratio.
//   Synthetic: subspace outliers, 2/3.4/5.9/10/14.3% contamination,
//         4/7/12/22/31 relevant subspaces, ~91% of outliers with one
//         relevant subspace, 5 outliers per relevant subspace, relevant
//         feature ratio 35/21/12/7/5%.
//
// Usage: bench_table1_datasets [--full] [--seed N]

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace subex;
  const TestbedProfile profile =
      bench::ParseProfile(argc, argv, "Table 1: dataset characteristics");
  const std::vector<TestbedDataset> suite =
      bench::BuildFullTestbed(profile, /*synthetic=*/true, /*real=*/true);

  TextTable table;
  table.SetHeader({"dataset", "outlier type", "points", "features",
                   "outliers", "contam%", "#rel subspaces", "rel/outlier",
                   "outliers/rel", "rel feat ratio%", "expl dims"});
  for (const TestbedDataset& entry : suite) {
    const Dataset& d = entry.data.dataset;
    const GroundTruth& gt = entry.data.ground_truth;
    std::string dims;
    for (int dim : entry.explanation_dims) {
      if (!dims.empty()) dims += ",";
      dims += std::to_string(dim);
    }
    table.AddRow({
        entry.data.name,
        entry.subspace_outliers ? "subspace" : "full space",
        std::to_string(d.num_points()),
        std::to_string(d.num_features()),
        std::to_string(d.outlier_indices().size()),
        FormatDouble(100.0 * d.ContaminationRatio(), 1),
        std::to_string(gt.AllRelevantSubspaces().size()),
        FormatDouble(gt.MeanSubspacesPerPoint(), 2),
        FormatDouble(gt.MeanOutliersPerSubspace(), 2),
        FormatDouble(100.0 * entry.relevant_feature_ratio, 0),
        dims,
    });
  }
  std::printf("%s\n", table.Render().c_str());

  std::printf(
      "paper expectation: synthetic splits carry 4/7/12/22/31 relevant\n"
      "subspaces with exactly 5 outliers each and contamination rising from\n"
      "2%% to 14.3%%; real(-like) datasets carry 10%% full-space outliers\n"
      "with one relevant subspace per outlier per dimensionality 2-4.\n");
  if (profile.name == "quick") {
    std::printf(
        "note: quick profile scales point counts by %.2f and skips splits\n"
        "wider than %dd; run with --full for the published sizes.\n",
        profile.dataset_scale, profile.max_dataset_dim);
  }
  return 0;
}
