// Regenerates Table 2: the best (point explanation, summarization)
// pipeline per explanation dimensionality x relevant-feature ratio, in
// Pareto (effectiveness, efficiency) order with the paper's preference for
// generic algorithms on ties.
//
// The ratio columns map to datasets exactly as in the paper:
//   100% -> the real(-like) datasets (Breast-like is used as the
//           representative, as all three behave alike),
//   35%  -> HiCS 14d, 21% -> HiCS 23d, 12% -> HiCS 39d.
//
// Paper reference (Table 2):
//   2d:  Beam+LOF / LookOut+LOF | RefOut+LOF / LookOut+LOF (35,21,12%)
//   3d:  same, except 12% -> Beam+FastABOD / LookOut+LOF
//   4d:  Beam+LOF / LookOut+LOF | RefOut+LOF / LookOut+LOF (35%) |
//        Beam+iForest / HiCS+LOF (21,12%)
//   5d:  Beam+LOF / LookOut+LOF | RefOut+LOF / LookOut+LOF (35%) |
//        HiCS+LOF only (21,12%)
//
// Usage: bench_table2_tradeoffs [--full] [--seed N]

#include <map>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace subex;
  const TestbedProfile profile = bench::ParseProfile(
      argc, argv, "Table 2: effectiveness/efficiency trade-offs");
  const std::vector<TestbedDataset> suite =
      bench::BuildFullTestbed(profile, /*synthetic=*/true, /*real=*/true);

  // Column datasets in the paper's order: 100% ratio (breast-like) first,
  // then decreasing relevant-feature ratios (14d, 23d, 39d).
  std::vector<const TestbedDataset*> columns;
  for (const char* name :
       {"breast_like", "hics_14d", "hics_23d", "hics_39d"}) {
    for (const TestbedDataset& entry : suite) {
      if (entry.data.name == name) columns.push_back(&entry);
    }
  }

  PipelineOptions pipeline_options;
  pipeline_options.max_points = profile.max_points_per_cell;

  TextTable table;
  std::vector<std::string> header = {"expl dim"};
  for (const TestbedDataset* entry : columns) {
    header.push_back(
        entry->data.name + " (" +
        FormatDouble(100.0 * entry->relevant_feature_ratio, 0) + "%)");
  }
  table.SetHeader(header);

  for (int dim = 2; dim <= profile.max_explanation_dim; ++dim) {
    std::vector<std::string> row = {std::to_string(dim) + "d"};
    for (const TestbedDataset* entry : columns) {
      const Dataset& data = entry->data.dataset;
      const GroundTruth& gt = entry->data.ground_truth;
      if (gt.PointsExplainedAtDimension(dim).empty()) {
        row.push_back("(no gt)");
        continue;
      }

      std::vector<PipelineScore> point_scores;
      std::vector<PipelineScore> summary_scores;
      for (DetectorKind detector_kind : AllDetectorKinds()) {
        const auto detector = MakeTestbedDetector(detector_kind, profile);
        for (PointExplainerKind kind :
             {PointExplainerKind::kBeam, PointExplainerKind::kRefOut}) {
          const int points = bench::CellPoints(profile, gt, dim);
          if (bench::EstimatePointCellScores(profile, kind,
                                             data.num_features(), dim,
                                             points) >
              bench::ScoreBudget(profile, detector_kind)) {
            continue;
          }
          const auto explainer = MakeTestbedPointExplainer(kind, profile);
          const PipelineResult r = RunPointExplanationPipeline(
              data, gt, *detector, *explainer, dim, pipeline_options);
          point_scores.push_back({r.explainer_name, r.detector_name, r.map,
                                  r.seconds, /*generic=*/true});
        }
        for (SummarizerKind kind :
             {SummarizerKind::kLookOut, SummarizerKind::kHics}) {
          if (bench::EstimateSummaryCellScores(profile, kind,
                                               data.num_features(), dim) >
              bench::ScoreBudget(profile, detector_kind)) {
            continue;
          }
          const auto summarizer = MakeTestbedSummarizer(kind, profile);
          const PipelineResult r = RunSummarizationPipeline(
              data, gt, *detector, *summarizer, dim);
          // HiCS' correlation heuristic works only under specific data
          // conditions -> not generic (the paper's Table 2 rule).
          summary_scores.push_back({r.explainer_name, r.detector_name,
                                    r.map, r.seconds,
                                    /*generic=*/kind ==
                                        SummarizerKind::kLookOut});
        }
      }

      std::string cell;
      PipelineScore best;
      if (SelectBestTradeoff(point_scores, {}, &best)) {
        cell += best.Label();
      }
      if (SelectBestTradeoff(summary_scores, {}, &best)) {
        if (!cell.empty()) cell += " / ";
        cell += best.Label();
      }
      row.push_back(cell.empty() ? "(none effective)" : cell);
    }
    table.AddRow(std::move(row));
  }
  std::printf("%s\n", table.Render().c_str());

  std::printf(
      "paper expectation: Beam+LOF & LookOut+LOF at 100%% ratio for every\n"
      "dim; RefOut+LOF & LookOut+LOF at 35%%; Beam with iForest/FastABOD\n"
      "for 3d-4d at low ratios; HiCS+LOF the only effective option for\n"
      "4d-5d explanations at 21%%/12%% ratios.\n");
  return 0;
}
