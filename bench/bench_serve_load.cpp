// Loopback load generator for the src/net serving stack: starts an
// ExplainServer in-process on an ephemeral port, hammers it from N client
// threads with a mixed kScore/kExplain workload, and reports throughput,
// latency percentiles (p50/p99), and the busy-rejection rate of the
// admission-controlled queue.
//
// The interesting knob pair is --queue vs --clients: a queue smaller than
// the offered concurrency forces the server to shed load with kBusy, which
// the clients absorb via capped exponential backoff — the reported
// busy-rejection rate and retry count quantify that backpressure loop.
//
// Usage: bench_serve_load [--clients N] [--requests N] [--queue N]
//                         [--threads N] [--seed N] [--json out.json]
//                         [--trace-out trace.json]
//
// --trace-out enables the process SpanCollector for the whole run and
// writes every collected span — client round trips and the server-side
// request pipeline, correlated by the wire-propagated trace ids — as
// Chrome trace-event JSON loadable in Perfetto or chrome://tracing.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_util.h"

namespace {

using namespace subex;

struct LoadConfig {
  int clients = 4;
  int requests_per_client = 200;
  std::size_t queue_capacity = 256;
  int pool_threads = 0;  // 0 = hardware concurrency.
  std::uint64_t seed = 9001;
  std::string json_path;
  std::string trace_out;
  std::string profile_out;
  int profile_hz = 0;  // 0 = profiler default.
};

/// Writes `text` to `path`; false + a printed message on failure.
bool WriteTextFile(const std::string& path, const std::string& text) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    std::printf("cannot open %s for writing\n", path.c_str());
    return false;
  }
  std::fwrite(text.data(), 1, text.size(), file);
  std::fclose(file);
  return true;
}

struct ClientResult {
  std::vector<double> latencies_ms;  // Successful round trips only.
  std::uint64_t ok = 0;
  std::uint64_t busy_gave_up = 0;
  std::uint64_t errors = 0;
  ClientStatsSnapshot stats;  // Retries/reconnects/backoff of this client.
};

int IntFlag(int argc, char** argv, const char* flag, int fallback) {
  const std::string value = bench::FlagValue(argc, argv, flag);
  return value.empty() ? fallback : static_cast<int>(std::strtol(
                                        value.c_str(), nullptr, 10));
}

/// One client thread's life: connect, fire the mixed workload, record
/// per-request latency. Every 10th request is a kExplain (Beam over LOF,
/// the paper's workhorse pairing); the rest are kScore over random 2d
/// subspaces, which exercises the service cache's single-flight path when
/// clients collide on a subspace.
ClientResult RunClient(const LoadConfig& config, std::uint16_t port,
                       int client_index, int num_features) {
  ClientResult result;
  ExplainClient client;
  std::string error;
  if (!client.Connect("127.0.0.1", port, &error)) {
    std::printf("client %d: connect failed: %s\n", client_index,
                error.c_str());
    result.errors = static_cast<std::uint64_t>(config.requests_per_client);
    return result;
  }
  Rng rng(config.seed + static_cast<std::uint64_t>(client_index) * 7919);
  result.latencies_ms.reserve(
      static_cast<std::size_t>(config.requests_per_client));
  for (int i = 0; i < config.requests_per_client; ++i) {
    const auto start = std::chrono::steady_clock::now();
    ClientStatus status;
    if (i % 10 == 9) {
      const ExplainClient::ExplainReply reply =
          client.Explain("LOF", "Beam", rng.UniformInt(0, 20),
                         /*target_dim=*/2, /*max_results=*/5);
      status = reply.status;
    } else {
      const int a = rng.UniformInt(0, num_features - 1);
      int b = rng.UniformInt(0, num_features - 2);
      if (b >= a) ++b;
      const ExplainClient::ScoreReply reply =
          client.Score("LOF", Subspace({a, b}));
      status = reply.status;
    }
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - start)
                          .count();
    switch (status) {
      case ClientStatus::kOk:
        ++result.ok;
        result.latencies_ms.push_back(ms);
        break;
      case ClientStatus::kBusy:
        ++result.busy_gave_up;
        break;
      default:
        ++result.errors;
        break;
    }
  }
  result.stats = client.stats();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  LoadConfig config;
  config.clients = IntFlag(argc, argv, "--clients", config.clients);
  config.requests_per_client =
      IntFlag(argc, argv, "--requests", config.requests_per_client);
  config.queue_capacity = static_cast<std::size_t>(
      IntFlag(argc, argv, "--queue",
              static_cast<int>(config.queue_capacity)));
  config.pool_threads = IntFlag(argc, argv, "--threads", config.pool_threads);
  config.seed = static_cast<std::uint64_t>(
      IntFlag(argc, argv, "--seed", static_cast<int>(config.seed)));
  config.json_path = bench::FlagValue(argc, argv, "--json");
  config.trace_out = bench::FlagValue(argc, argv, "--trace-out");
  config.profile_out = bench::FlagValue(argc, argv, "--profile-out");
  config.profile_hz = IntFlag(argc, argv, "--profile-hz", 0);
  RegisterProfProcessMetrics();

  // Enable span collection up front so client-side spans are captured too
  // (the loopback bench runs both processes' roles in one process, so one
  // collector sees the whole distributed trace).
  if (!config.trace_out.empty()) {
    SpanCollector::Global().Enable(/*ring_capacity_per_thread=*/1 << 16);
  }

  std::printf("== serve load: ExplainServer loopback throughput ==\n");
  std::printf(
      "clients %d x %d requests, queue capacity %zu, pool threads %d%s\n\n",
      config.clients, config.requests_per_client, config.queue_capacity,
      config.pool_threads, config.pool_threads == 0 ? " (auto)" : "");

  // A 7-feature HiCS-style dataset: small enough that LOF scoring is
  // microseconds (the bench measures the serving stack, not the detector),
  // large enough that Beam explanations do real work.
  HicsGeneratorConfig data_config;
  data_config.num_points = 150;
  data_config.subspace_dims = {2, 2, 3};
  data_config.seed = config.seed;
  const SyntheticDataset data = GenerateHicsDataset(data_config);
  const int num_features = static_cast<int>(data.dataset.num_features());

  ThreadPool pool(static_cast<std::size_t>(config.pool_threads));
  Lof lof(15);
  ScoringService service(lof, data.dataset, ScoringServiceOptions{}, &pool);
  Beam beam;

  ExplainServerOptions server_options;
  server_options.queue_capacity = config.queue_capacity;
  ExplainServer server(server_options, &pool);
  server.RegisterService(service);
  server.RegisterExplainer("Beam", beam);
  std::string error;
  if (!server.Start(&error)) {
    std::printf("server start failed: %s\n", error.c_str());
    return 1;
  }

  // After server.Start so the profiler's process sweep catches the poll
  // loop thread; pool workers are already covered by the thread hooks.
  bench::StartProfilerIfRequested(config.profile_out, config.profile_hz);

  const auto wall_start = std::chrono::steady_clock::now();
  std::vector<ClientResult> results(
      static_cast<std::size_t>(config.clients));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(config.clients));
  for (int c = 0; c < config.clients; ++c) {
    threads.emplace_back([&, c] {
      results[static_cast<std::size_t>(c)] =
          RunClient(config, server.port(), c, num_features);
    });
  }
  for (std::thread& t : threads) t.join();
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();

  const ServerStatsSnapshot stats = server.stats();
  bench::WriteProfileIfRequested(config.profile_out);
  server.Stop();

  std::vector<double> latencies;
  std::uint64_t ok = 0, busy_gave_up = 0, errors = 0;
  ClientStatsSnapshot client_stats;
  for (const ClientResult& r : results) {
    latencies.insert(latencies.end(), r.latencies_ms.begin(),
                     r.latencies_ms.end());
    ok += r.ok;
    busy_gave_up += r.busy_gave_up;
    errors += r.errors;
    client_stats.Merge(r.stats);
  }
  const double p50 = bench::Percentile(latencies, 0.50);
  const double p99 = bench::Percentile(latencies, 0.99);
  const double p999 = bench::Percentile(latencies, 0.999);
  // Server-side end-to-end distribution (admission to response enqueued),
  // with the count-weighted bucket mean for a skew-robust average.
  const HistogramSnapshot request_snap =
      MetricsRegistry::Global().GetHistogram("serve.request").snapshot();
  const double throughput =
      wall_seconds > 0.0 ? static_cast<double>(ok) / wall_seconds : 0.0;
  const std::uint64_t offered = stats.requests_admitted +
                                stats.busy_rejections;
  const double busy_rate =
      offered > 0 ? static_cast<double>(stats.busy_rejections) /
                        static_cast<double>(offered)
                  : 0.0;

  TextTable table;
  table.SetHeader({"metric", "value"});
  table.AddRow({"requests ok", std::to_string(ok)});
  table.AddRow({"throughput", FormatDouble(throughput) + " req/s"});
  table.AddRow({"latency p50", FormatDouble(p50) + " ms"});
  table.AddRow({"latency p99", FormatDouble(p99) + " ms"});
  table.AddRow({"latency p99.9", FormatDouble(p999) + " ms"});
  table.AddRow({"serve.request wmean",
                FormatDouble(request_snap.WeightedMeanNs() / 1e6) + " ms"});
  table.AddRow({"serve.request p99.9",
                FormatDouble(request_snap.ValueAtQuantile(0.999) / 1e6) +
                    " ms"});
  table.AddRow({"busy rejections (server)",
                std::to_string(stats.busy_rejections)});
  table.AddRow({"busy-rejection rate", FormatDouble(busy_rate)});
  table.AddRow({"busy retries absorbed",
                std::to_string(client_stats.busy_retries)});
  table.AddRow({"gave up busy", std::to_string(busy_gave_up)});
  table.AddRow({"transport/server errors", std::to_string(errors)});
  table.AddRow({"client backoff total",
                FormatSeconds(client_stats.BackoffSeconds())});
  table.AddRow({"wall time", FormatSeconds(wall_seconds)});
  std::printf("%s\n", table.Render().c_str());
  std::printf("server stats: %s\n", stats.ToJson().c_str());
  std::printf("service stats: %s\n", service.stats().ToJson().c_str());
  std::printf("client stats: %s\n", client_stats.ToJson().c_str());
  std::printf("metrics: %s\n", MetricsRegistry::Global().ToJson().c_str());

  if (!config.json_path.empty()) {
    bench::JsonTimingReport report;
    report.SetMeta(JsonObject()
                       .Add("bench", "serve_load")
                       .Add("clients", config.clients)
                       .Add("requests_per_client", config.requests_per_client)
                       .Add("queue_capacity",
                            static_cast<std::uint64_t>(config.queue_capacity))
                       .Add("pool_threads", config.pool_threads)
                       .Add("seed", static_cast<std::uint64_t>(config.seed)));
    report.AddRow(JsonObject()
                      .Add("requests_ok", ok)
                      .Add("throughput_rps", throughput)
                      .Add("latency_p50_ms", p50)
                      .Add("latency_p99_ms", p99)
                      .Add("latency_p999_ms", p999)
                      .Add("serve_request_wmean_ms",
                           request_snap.WeightedMeanNs() / 1e6)
                      .Add("busy_rejections", stats.busy_rejections)
                      .Add("busy_rejection_rate", busy_rate)
                      .Add("busy_retries_absorbed", client_stats.busy_retries)
                      .Add("gave_up_busy", busy_gave_up)
                      .Add("errors", errors)
                      .Add("wall_seconds", wall_seconds)
                      .AddRaw("server", stats.ToJson())
                      .AddRaw("service", service.stats().ToJson())
                      .AddRaw("client", client_stats.ToJson())
                      .AddRaw("metrics", MetricsRegistry::Global().ToJson()));
    report.WriteTo(config.json_path);
  }

  if (!config.trace_out.empty()) {
    SpanCollector& collector = SpanCollector::Global();
    const std::string trace_json = collector.ToChromeTraceJson();
    if (WriteTextFile(config.trace_out, trace_json)) {
      std::printf("wrote %zu spans (%llu dropped) to %s\n",
                  collector.Snapshot().size(),
                  static_cast<unsigned long long>(collector.dropped()),
                  config.trace_out.c_str());
    }
  }
  return errors == 0 ? 0 : 1;
}
