// Regenerates Figure 10: MAP of the explanation summarization pipelines
// (LookOut / HiCS x LOF / Fast ABOD / iForest) for explanations of
// increasing dimensionality, on the synthetic splits (panels a-e) and the
// real-dataset stand-ins (panels f-h).
//
// Paper expectations (shape):
//  * synthetic: HiCS+LOF / HiCS+FastABOD dominate as the dataset dim grows
//    (correlated relevant subspaces); LookOut matches HiCS at 14d but its
//    MAP drops with the explanation dimensionality on wide datasets.
//  * real (full-space outliers): HiCS ~ 0 regardless of detector (no
//    correlation signal); LookOut+LOF is the most effective.
//
// Usage: bench_fig10_summarizers [--full] [--seed N]

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace subex;
  const TestbedProfile profile = bench::ParseProfile(
      argc, argv, "Figure 10: MAP of explanation summarization pipelines");
  const std::vector<TestbedDataset> suite =
      bench::BuildFullTestbed(profile, /*synthetic=*/true, /*real=*/true);

  for (const TestbedDataset& entry : suite) {
    const Dataset& data = entry.data.dataset;
    const GroundTruth& gt = entry.data.ground_truth;
    std::printf("--- %s (%zu pts, %zu feats, %s outliers) ---\n",
                entry.data.name.c_str(), data.num_points(),
                data.num_features(),
                entry.subspace_outliers ? "subspace" : "full-space");

    TextTable table;
    std::vector<std::string> header = {"pipeline"};
    for (int dim : entry.explanation_dims) {
      header.push_back("MAP@" + std::to_string(dim) + "d");
      header.push_back("rec@" + std::to_string(dim) + "d");
    }
    table.SetHeader(header);

    for (SummarizerKind summarizer_kind :
         {SummarizerKind::kLookOut, SummarizerKind::kHics}) {
      const auto summarizer =
          MakeTestbedSummarizer(summarizer_kind, profile);
      for (DetectorKind detector_kind : AllDetectorKinds()) {
        const auto detector = MakeTestbedDetector(detector_kind, profile);
        std::vector<std::string> row = {
            std::string(SummarizerKindName(summarizer_kind)) + "+" +
            DetectorKindName(detector_kind)};
        for (int dim : entry.explanation_dims) {
          const std::uint64_t cost = bench::EstimateSummaryCellScores(
              profile, summarizer_kind, data.num_features(), dim);
          if (gt.PointsExplainedAtDimension(dim).empty() ||
              cost > bench::ScoreBudget(profile, detector_kind)) {
            row.push_back("-");
            row.push_back("-");
            continue;
          }
          const PipelineResult r = RunSummarizationPipeline(
              data, gt, *detector, *summarizer, dim);
          row.push_back(FormatDouble(r.map));
          row.push_back(FormatDouble(r.mean_recall));
        }
        table.AddRow(std::move(row));
      }
    }
    std::printf("%s\n", table.Render().c_str());
  }

  std::printf(
      "paper expectation: HiCS (with LOF/FastABOD) dominates on the\n"
      "correlated synthetic subspaces while LookOut degrades with dataset\n"
      "and explanation dimensionality; on full-space outliers HiCS ~ 0 and\n"
      "LookOut+LOF leads. cells marked '-' exceeded the cost budget.\n");
  return 0;
}
