// Ablation: RefOut design choices (DESIGN.md "Random subspace projection").
//
//  (1) Pool size: the paper uses 100 random projections; MAP as a function
//      of the pool size shows how much statistical power the Welch
//      discrepancy needs.
//  (2) Projection ratio: the paper draws projections of 70% of the
//      dataset's dimensionality; smaller projections make outliers easier
//      to see but cover candidate subspaces less often.
//
// Usage: bench_ablation_refout [--full] [--seed N]

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace subex;
  const TestbedProfile profile =
      bench::ParseProfile(argc, argv, "Ablation: RefOut design choices");

  HicsGeneratorConfig config;
  config.num_points = profile.name == "quick" ? 300 : 1000;
  config.subspace_dims = {2, 3, 2, 3, 4};  // 14 features, the 35% regime.
  config.seed = profile.seed;
  const SyntheticDataset d = GenerateHicsDataset(config);
  const Lof lof(15);
  PipelineOptions pipeline_options;
  pipeline_options.max_points =
      profile.name == "quick" ? 6 : profile.max_points_per_cell;

  std::printf("dataset: %zu pts, %zu feats (subspace outliers)\n\n",
              d.dataset.num_points(), d.dataset.num_features());

  std::printf("pool size sweep (projection ratio 0.7, Welch, dim 2 & 3)\n");
  TextTable pool_table;
  pool_table.SetHeader({"pool", "MAP@2d", "MAP@3d", "time@3d"});
  for (int pool : {10, 25, 50, 100, 200}) {
    RefOut::Options options;
    options.pool_size = pool;
    options.beam_width = profile.beam_width;
    options.seed = profile.seed;
    const RefOut refout(options);
    const PipelineResult r2 = RunPointExplanationPipeline(
        d.dataset, d.ground_truth, lof, refout, 2, pipeline_options);
    const PipelineResult r3 = RunPointExplanationPipeline(
        d.dataset, d.ground_truth, lof, refout, 3, pipeline_options);
    pool_table.AddRow({std::to_string(pool), FormatDouble(r2.map),
                       FormatDouble(r3.map), FormatSeconds(r3.seconds)});
  }
  std::printf("%s\n", pool_table.Render().c_str());

  std::printf("projection ratio sweep (pool %d, Welch, dim 3)\n",
              profile.refout_pool_size);
  TextTable ratio_table;
  ratio_table.SetHeader({"ratio", "MAP@3d", "recall@3d", "time"});
  for (double ratio : {0.3, 0.5, 0.7, 0.9}) {
    RefOut::Options options;
    options.pool_size = profile.refout_pool_size;
    options.beam_width = profile.beam_width;
    options.projection_ratio = ratio;
    options.seed = profile.seed;
    const RefOut refout(options);
    const PipelineResult r = RunPointExplanationPipeline(
        d.dataset, d.ground_truth, lof, refout, 3, pipeline_options);
    ratio_table.AddRow({FormatDouble(ratio, 1), FormatDouble(r.map),
                        FormatDouble(r.mean_recall),
                        FormatSeconds(r.seconds)});
  }
  std::printf("%s\n", ratio_table.Render().c_str());

  std::printf(
      "expectation: MAP rises then saturates with the pool size (each\n"
      "candidate needs enough with/without samples for the t-test); the\n"
      "0.7 projection ratio is a sweet spot -- very low ratios rarely\n"
      "cover multi-feature candidates, very high ratios mask outliers in\n"
      "near-full-space projections.\n");
  return 0;
}
