// Regenerates Figure 11: runtime of the detection & explanation pipelines
// as a function of the explanation dimensionality, on the 14d/23d/39d
// synthetic splits plus the Electricity-like real dataset (the paper's
// panels a-d for Beam/RefOut, e-h for LookOut/HiCS).
//
// Paper expectations (orderings; absolute numbers depend on hardware):
//  * LOF is the fastest detector, then iForest, then Fast ABOD.
//  * Beam's runtime grows steeply with the explanation dimensionality;
//    RefOut's stays roughly flat (its cost is the fixed random pool).
//  * LookOut+LOF beats every HiCS pipeline up to ~4d explanations; HiCS
//    catches up at 5d on wide datasets because its search is
//    detector-free while LookOut's exhaustive enumeration explodes.
//  * HiCS' runtime is nearly detector-independent.
//
// All scoring routes through a per-(dataset, detector) ScoringService shared
// across explainers and explanation dims, so overlapping subspace requests
// (Beam's repeated 2d sweeps, LookOut/HiCS candidate overlap) are served
// from cache; each dataset section ends with the services' hit-rate stats.
// Compare against `--no-cache` to measure the cached speedup, and use
// `--threads N` to size the worker pool.
//
// Usage: bench_fig11_runtime [--full] [--seed N] [--threads N] [--no-cache]
//                            [--stats] [--json out.json]
//                            [--trace-out trace.json]
//                            [--profile-out profile.folded] [--profile-hz N]
//                            [--metrics-port P]
//
// --trace-out enables the process SpanCollector and writes every span the
// run produced (detect.score, explain.refine, gt.search, ... as orphan
// spans — there is no request trace in a batch bench) as Chrome
// trace-event JSON for Perfetto / chrome://tracing.
//
// --profile-out arms the SIGPROF sampling profiler across the whole run
// and writes collapsed flamegraph stacks; --metrics-port serves
// GET /metrics so the subex_prof_* counter series (per-detector cycles,
// IPC, LLC misses) can be scraped mid-run.
//
// --stats prints, per dataset, the per-detector cache counters plus the
// metrics-registry snapshot (the same JSON the ExplainServer kStats
// endpoint returns): detect.score.<detector> and explain.search.<explainer>
// latency histograms give the figure's runtime a per-stage breakdown —
// detector scoring vs explainer search — beyond the per-cell wall clock.
// The eviction-manager snapshot rides along, showing how much of the
// process-wide budget the service score caches held per dataset.
// --json writes a machine-readable timing report with one row per measured
// pipeline cell plus one registry-snapshot row per dataset. The registry is
// reset between datasets so each snapshot covers exactly one section.

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace subex;
  TestbedProfile profile = bench::ParseProfile(
      argc, argv, "Figure 11: runtime of detection & explanation pipelines");
  // Runtime trends need fewer evaluation points than MAP does.
  if (profile.name == "quick") profile.max_points_per_cell = 3;
  const bool print_stats_json = bench::HasFlag(argc, argv, "--stats");
  const std::string json_path = bench::FlagValue(argc, argv, "--json");
  const std::string trace_out = bench::FlagValue(argc, argv, "--trace-out");
  if (!trace_out.empty()) {
    SpanCollector::Global().Enable(/*ring_capacity_per_thread=*/1 << 16);
  }
  const std::string profile_out =
      bench::FlagValue(argc, argv, "--profile-out");
  RegisterProfProcessMetrics();
  bench::StartProfilerIfRequested(
      profile_out, bench::IntFlag(argc, argv, "--profile-hz", 0));
  MetricsHttpServer metrics_server;
  bench::StartMetricsEndpointIfRequested(
      metrics_server, bench::IntFlag(argc, argv, "--metrics-port", -1));
  bench::JsonTimingReport report;
  report.SetMeta(JsonObject()
                     .Add("bench", "fig11_runtime")
                     .Add("profile", profile.name)
                     .Add("seed", static_cast<std::uint64_t>(profile.seed))
                     .Add("cache", profile.cache_scores));

  ThreadPool pool(static_cast<std::size_t>(profile.num_threads));
  std::vector<TestbedDataset> suite =
      bench::BuildFullTestbed(profile, /*synthetic=*/true, /*real=*/true,
                              &pool);
  // Figure 11 uses the synthetic splits up to 39d plus Electricity only.
  std::erase_if(suite, [](const TestbedDataset& entry) {
    return entry.data.dataset.num_features() > 39 ||
           (!entry.subspace_outliers &&
            entry.data.name != "electricity_like");
  });

  PipelineOptions pipeline_options;
  pipeline_options.max_points = profile.max_points_per_cell;

  for (const TestbedDataset& entry : suite) {
    const Dataset& data = entry.data.dataset;
    const GroundTruth& gt = entry.data.ground_truth;
    std::printf("--- %s (%zu pts, %zu feats) ---\n", entry.data.name.c_str(),
                data.num_points(), data.num_features());
    // Scope the registry's histograms to this dataset section (testbed
    // construction above also fed detect.score/gt.search). The prof
    // availability gauges survive the reset for mid-run scrapes.
    MetricsRegistry::Global().Reset();
    RegisterProfProcessMetrics();

    TextTable table;
    std::vector<std::string> header = {"pipeline"};
    for (int dim : entry.explanation_dims) {
      header.push_back("t@" + std::to_string(dim) + "d");
    }
    table.SetHeader(header);

    // One scoring service per detector, shared across every pipeline row of
    // this dataset: Beam re-visits its exhaustive 2d stage for every point
    // and dimensionality, and LookOut/HiCS overlap on low-dim candidates,
    // so later rows are served largely from cache.
    bench::DetectorServices services =
        bench::MakeDetectorServices(profile, data, &pool);

    // Point explanation pipelines (panels a-d). Runtime is normalized per
    // explained point, matching the per-outlier repetition the paper
    // describes.
    for (PointExplainerKind explainer_kind :
         {PointExplainerKind::kBeam, PointExplainerKind::kRefOut}) {
      const auto explainer =
          MakeTestbedPointExplainer(explainer_kind, profile);
      for (DetectorKind detector_kind : AllDetectorKinds()) {
        std::vector<std::string> row = {
            std::string(PointExplainerKindName(explainer_kind)) + "+" +
            DetectorKindName(detector_kind)};
        for (int dim : entry.explanation_dims) {
          const int points = bench::CellPoints(profile, gt, dim);
          const std::uint64_t cost = bench::EstimatePointCellScores(
              profile, explainer_kind, data.num_features(), dim, points);
          if (points == 0 ||
              cost > bench::ScoreBudget(profile, detector_kind)) {
            row.push_back("-");
            continue;
          }
          const PipelineResult r = RunPointExplanationPipeline(
              services.For(detector_kind), gt, *explainer, dim,
              pipeline_options);
          row.push_back(FormatSeconds(r.seconds / r.num_points) + "/pt");
          report.AddRow(
              JsonObject()
                  .Add("dataset", entry.data.name)
                  .Add("explainer", PointExplainerKindName(explainer_kind))
                  .Add("detector", DetectorKindName(detector_kind))
                  .Add("dim", dim)
                  .Add("points", r.num_points)
                  .Add("seconds", r.seconds)
                  .Add("seconds_per_point", r.seconds / r.num_points));
        }
        table.AddRow(std::move(row));
      }
    }

    // Summarization pipelines (panels e-h): one run explains all points.
    for (SummarizerKind summarizer_kind :
         {SummarizerKind::kLookOut, SummarizerKind::kHics}) {
      const auto summarizer =
          MakeTestbedSummarizer(summarizer_kind, profile);
      for (DetectorKind detector_kind : AllDetectorKinds()) {
        std::vector<std::string> row = {
            std::string(SummarizerKindName(summarizer_kind)) + "+" +
            DetectorKindName(detector_kind)};
        for (int dim : entry.explanation_dims) {
          const std::uint64_t cost = bench::EstimateSummaryCellScores(
              profile, summarizer_kind, data.num_features(), dim);
          if (gt.PointsExplainedAtDimension(dim).empty() ||
              cost > bench::ScoreBudget(profile, detector_kind)) {
            row.push_back("-");
            continue;
          }
          const PipelineResult r = RunSummarizationPipeline(
              services.For(detector_kind), gt, *summarizer, dim);
          row.push_back(FormatSeconds(r.seconds));
          report.AddRow(
              JsonObject()
                  .Add("dataset", entry.data.name)
                  .Add("explainer", SummarizerKindName(summarizer_kind))
                  .Add("detector", DetectorKindName(detector_kind))
                  .Add("dim", dim)
                  .Add("seconds", r.seconds));
        }
        table.AddRow(std::move(row));
      }
    }
    std::printf("%s\n", table.Render().c_str());
    bench::PrintServiceStats(services);
    const std::string metrics_json = MetricsRegistry::Global().ToJson();
    const std::string mem_json = EvictionManager::Global().snapshot().ToJson();
    if (print_stats_json) {
      std::printf("stats json: %s\n",
                  bench::ServiceStatsJson(services).c_str());
      std::printf("metrics json: %s\n", metrics_json.c_str());
      std::printf("mem json: %s\n", mem_json.c_str());
      // Headline latency shape of the section's detector scoring: the
      // count-weighted mean is robust to the bucket skew a plain mean
      // suffers when fast cache probes dominate.
      const HistogramSnapshot score_snap =
          MetricsRegistry::Global().GetHistogram("detect.score").snapshot();
      std::printf("detect.score wmean %.3f ms, p99.9 %.3f ms (%llu samples)\n",
                  score_snap.WeightedMeanNs() / 1e6,
                  score_snap.ValueAtQuantile(0.999) / 1e6,
                  static_cast<unsigned long long>(score_snap.count));
    }
    report.AddRow(JsonObject()
                      .Add("dataset", entry.data.name)
                      .Add("kind", "metrics")
                      .AddRaw("metrics", metrics_json)
                      .AddRaw("mem", mem_json));
    std::printf("\n");
  }

  if (!json_path.empty()) report.WriteTo(json_path);
  if (!trace_out.empty()) {
    const std::string trace_json =
        SpanCollector::Global().ToChromeTraceJson();
    std::FILE* file = std::fopen(trace_out.c_str(), "w");
    if (file != nullptr) {
      std::fwrite(trace_json.data(), 1, trace_json.size(), file);
      std::fclose(file);
      std::printf("wrote %zu spans to %s\n",
                  SpanCollector::Global().Snapshot().size(),
                  trace_out.c_str());
    } else {
      std::printf("cannot open %s for writing\n", trace_out.c_str());
    }
  }
  bench::WriteProfileIfRequested(profile_out);
  metrics_server.Stop();
  std::printf(
      "paper expectation: LOF fastest / FastABOD slowest per subspace;\n"
      "Beam grows steeply with explanation dim while RefOut stays flat;\n"
      "LookOut+LOF beats HiCS at low dims; HiCS' runtime is detector-\n"
      "independent. '-' = cell over the cost budget (not run).\n");
  return 0;
}
