#ifndef SUBEX_BENCH_BENCH_UTIL_H_
#define SUBEX_BENCH_BENCH_UTIL_H_

// Shared plumbing for the figure/table regeneration binaries: command-line
// profile selection, suite assembly, and cost-based cell skipping (the
// paper itself skipped configurations requiring millions of subspace
// evaluations; the quick profile skips proportionally earlier).

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/check.h"
#include "subex/subex.h"

namespace subex::bench {

/// The `q`-quantile (q in [0, 1]) of `values` by the nearest-rank rule the
/// load benches report: sorts `values` in place and indexes
/// round(q * (n - 1)). Edge cases: n = 0 returns 0.0, n = 1 returns the
/// single sample regardless of q.
inline double Percentile(std::vector<double>& values, double q) {
  if (values.empty()) return 0.0;
  if (values.size() == 1) return values.front();
  q = std::clamp(q, 0.0, 1.0);
  std::sort(values.begin(), values.end());
  const std::size_t index = static_cast<std::size_t>(
      q * static_cast<double>(values.size() - 1) + 0.5);
  return values[std::min(index, values.size() - 1)];
}

/// True when `flag` (e.g. "--stats") appears anywhere in argv.
inline bool HasFlag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

/// The argument following `flag` ("--json out.json" -> "out.json"), or
/// `fallback` when the flag is absent or the last token.
inline std::string FlagValue(int argc, char** argv, const char* flag,
                             const std::string& fallback = "") {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return argv[i + 1];
  }
  return fallback;
}

/// Integer flag value ("--metrics-port 9109" -> 9109), `fallback` when
/// absent or unparsable.
inline int IntFlag(int argc, char** argv, const char* flag, int fallback) {
  const std::string value = FlagValue(argc, argv, flag);
  if (value.empty()) return fallback;
  return std::atoi(value.c_str());
}

/// `--profile-out` support shared by the bench mains: arms the global
/// `SamplingProfiler` (no-op with a warning where per-thread timers are
/// unavailable or obs is compiled out). `hz <= 0` keeps the default rate.
inline void StartProfilerIfRequested(const std::string& profile_out, int hz) {
  if (profile_out.empty()) return;
  SamplingProfilerOptions options;
  if (hz > 0) options.sample_hz = hz;
  std::string error;
  if (SamplingProfiler::Global().Start(options, &error)) {
    std::printf("profiling at %d Hz -> %s\n", options.sample_hz,
                profile_out.c_str());
  } else {
    std::printf("profiler disabled: %s\n", error.c_str());
  }
}

/// Stops the profiler and writes the collapsed-stack flamegraph text
/// (`frame;frame count` lines — flamegraph.pl / speedscope input) to
/// `profile_out`.
inline void WriteProfileIfRequested(const std::string& profile_out) {
  if (profile_out.empty()) return;
  SamplingProfiler& profiler = SamplingProfiler::Global();
  profiler.Stop();
  const std::string collapsed = profiler.ToCollapsedText();
  std::FILE* file = std::fopen(profile_out.c_str(), "w");
  if (file == nullptr) {
    std::printf("cannot open %s for writing\n", profile_out.c_str());
    return;
  }
  std::fwrite(collapsed.data(), 1, collapsed.size(), file);
  std::fclose(file);
  std::printf("wrote %llu samples (%llu dropped) to %s\n",
              static_cast<unsigned long long>(profiler.samples()),
              static_cast<unsigned long long>(profiler.dropped()),
              profile_out.c_str());
}

/// `--metrics-port` support: binds the standalone scrape endpoint so
/// counter/histogram series are observable mid-run (parity with
/// `bench_stream_serve`, which serves /metrics from its `ExplainServer`).
/// Returns false (after a warning) when the port is taken or obs is
/// compiled out; `port < 0` means not requested.
inline bool StartMetricsEndpointIfRequested(MetricsHttpServer& server,
                                            int port) {
  if (port < 0) return false;
  std::string error;
  if (!server.Start(static_cast<std::uint16_t>(port), &error)) {
    std::printf("metrics endpoint disabled: %s\n", error.c_str());
    return false;
  }
  std::printf("serving GET /metrics on 127.0.0.1:%u\n",
              static_cast<unsigned>(server.port()));
  return true;
}

/// Machine-readable companion to the human tables: benches append one
/// JsonObject per measured cell plus run-level metadata, and `WriteTo`
/// emits `{"meta":{...},"rows":[{...},...]}` for downstream tooling
/// (regression tracking, plotting) without a JSON dependency.
class JsonTimingReport {
 public:
  void SetMeta(JsonObject meta) { meta_ = std::move(meta); }
  void AddRow(const JsonObject& row) { rows_.push_back(row.Build()); }

  std::string Build() const {
    std::string out = "{\"meta\":" + meta_.Build() + ",\"rows\":[";
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      if (i > 0) out += ",";
      out += rows_[i];
    }
    out += "]}";
    return out;
  }

  /// Writes the report to `path`; returns false (and prints) on failure.
  bool WriteTo(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::printf("cannot write json report to %s\n", path.c_str());
      return false;
    }
    const std::string body = Build();
    const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
    std::fclose(f);
    if (ok) std::printf("json report written to %s\n", path.c_str());
    return ok;
  }

  std::size_t num_rows() const { return rows_.size(); }

 private:
  JsonObject meta_;
  std::vector<std::string> rows_;
};

/// Parses `--full` (paper profile) / `--seed N` / `--threads N` (ThreadPool
/// size, 0 = hardware concurrency) / `--no-cache` (bypass the scoring
/// service cache) from argv; everything else is ignored. Prints the chosen
/// profile banner.
inline TestbedProfile ParseProfile(int argc, char** argv,
                                   const char* binary_name) {
  TestbedProfile profile = TestbedProfile::Quick();
  int threads = profile.num_threads;
  bool no_cache = false;
  std::uint64_t seed = profile.seed;
  bool seed_set = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--full") == 0) {
      profile = TestbedProfile::Paper();
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
      seed_set = true;
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = static_cast<int>(std::strtol(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--no-cache") == 0) {
      no_cache = true;
    }
  }
  if (seed_set) profile.seed = seed;
  profile.num_threads = threads;
  profile.cache_scores = !no_cache;
  std::printf("== %s ==\n", binary_name);
  std::printf(
      "profile: %s (datasets scaled x%.2f, max dataset dim %d, "
      "max explanation dim %d%s)\n",
      profile.name.c_str(), profile.dataset_scale, profile.max_dataset_dim,
      profile.max_explanation_dim,
      profile.name == "quick"
          ? "; run with --full for the paper-scale configuration"
          : "");
  std::printf("serving: %d thread(s)%s, score cache %s\n", profile.num_threads,
              profile.num_threads == 0 ? " (auto)" : "",
              profile.cache_scores ? "on (--no-cache to disable)" : "OFF");
  return profile;
}

/// Per-detector budget of detector invocations (subspace scorings) a single
/// evaluation cell may cost before the bench skips it, mirroring the
/// paper's own skipped configurations. The quick profile uses tight
/// budgets; the paper profile uses the (approximate) limits §4.1/§4.2
/// report (e.g. "we run iForest only up to 4d explanations on 70d/100d").
inline std::uint64_t ScoreBudget(const TestbedProfile& profile,
                                 DetectorKind kind) {
  const bool quick = profile.name == "quick";
  switch (kind) {
    case DetectorKind::kLof:
      return quick ? 20000 : 3000000;
    case DetectorKind::kFastAbod:
      return quick ? 10000 : 400000;
    case DetectorKind::kIsolationForest:
      return quick ? 5000 : 900000;
  }
  return 0;
}

/// Estimated detector invocations of one point-explainer cell.
inline std::uint64_t EstimatePointCellScores(
    const TestbedProfile& profile, PointExplainerKind kind, int num_features,
    int dim, int num_points) {
  std::uint64_t per_point = 0;
  if (kind == PointExplainerKind::kBeam) {
    per_point = Beam::CountScoredSubspaces(num_features, dim,
                                           profile.beam_width);
  } else {
    per_point = static_cast<std::uint64_t>(profile.refout_pool_size) +
                static_cast<std::uint64_t>(profile.max_results);
  }
  return per_point * static_cast<std::uint64_t>(num_points);
}

/// Estimated detector invocations of one summarizer cell.
inline std::uint64_t EstimateSummaryCellScores(const TestbedProfile& profile,
                                               SummarizerKind kind,
                                               int num_features, int dim) {
  if (kind == SummarizerKind::kHics) {
    // The search is detector-free; only the final ranking scores.
    return profile.max_results;
  }
  std::uint64_t candidates = CombinationCount(num_features, dim);
  if (profile.lookout_max_candidates > 0 &&
      candidates > profile.lookout_max_candidates) {
    candidates = profile.lookout_max_candidates;
  }
  return candidates;
}

/// Number of evaluated points for a point-explainer cell under the profile.
inline int CellPoints(const TestbedProfile& profile,
                      const GroundTruth& ground_truth, int dim) {
  const int available =
      static_cast<int>(ground_truth.PointsExplainedAtDimension(dim).size());
  if (profile.max_points_per_cell <= 0) return available;
  return std::min(available, profile.max_points_per_cell);
}

/// Builds both halves of the testbed, printing progress (the real-suite
/// ground-truth search is the slow part). Pass a pool to parallelize the
/// exhaustive ground-truth sweep.
inline std::vector<TestbedDataset> BuildFullTestbed(
    const TestbedProfile& profile, bool synthetic, bool real,
    ThreadPool* pool = nullptr) {
  std::vector<TestbedDataset> all;
  if (synthetic) {
    std::printf("generating synthetic (subspace-outlier) suite...\n");
    for (TestbedDataset& d : BuildSyntheticSuite(profile)) {
      all.push_back(std::move(d));
    }
  }
  if (real) {
    std::printf(
        "generating real-dataset stand-ins + exhaustive LOF ground truth "
        "(the paper's §3.2 procedure)...\n");
    for (TestbedDataset& d : BuildRealSuite(profile, pool)) {
      all.push_back(std::move(d));
    }
  }
  std::printf("\n");
  return all;
}

/// Per-dataset bundle of one detector of each kind plus a scoring service
/// over it, shared by every pipeline row of that dataset so hit rates
/// accumulate across explainers and explanation dimensionalities.
struct DetectorServices {
  std::vector<DetectorKind> kinds;
  std::vector<std::unique_ptr<Detector>> detectors;
  std::vector<std::unique_ptr<ScoringService>> services;

  ScoringService& For(DetectorKind kind) {
    for (std::size_t i = 0; i < kinds.size(); ++i) {
      if (kinds[i] == kind) return *services[i];
    }
    SUBEX_CHECK_MSG(false, "unknown detector kind");
    return *services.front();
  }
};

/// Builds one service per detector kind over `data`, with the profile's
/// cache budgets (or caching off under `--no-cache`).
inline DetectorServices MakeDetectorServices(const TestbedProfile& profile,
                                             const Dataset& data,
                                             ThreadPool* pool) {
  DetectorServices bundle;
  bundle.kinds = AllDetectorKinds();
  for (DetectorKind kind : bundle.kinds) {
    bundle.detectors.push_back(MakeTestbedDetector(kind, profile));
    bundle.services.push_back(std::make_unique<ScoringService>(
        *bundle.detectors.back(), data, MakeServiceOptions(profile), pool));
  }
  return bundle;
}

/// Prints one "cache" stats line per detector service of a dataset.
inline void PrintServiceStats(DetectorServices& bundle) {
  for (std::size_t i = 0; i < bundle.kinds.size(); ++i) {
    std::printf("%-8s cache: %s\n", DetectorKindName(bundle.kinds[i]),
                bundle.services[i]->stats().ToString().c_str());
  }
}

/// One JSON object keyed by detector name, each value the service's
/// ServiceStatsSnapshot::ToJson() — the same shape the kStats endpoint of
/// ExplainServer nests under "services".
inline std::string ServiceStatsJson(DetectorServices& bundle) {
  JsonObject obj;
  for (std::size_t i = 0; i < bundle.kinds.size(); ++i) {
    obj.AddRaw(DetectorKindName(bundle.kinds[i]),
               bundle.services[i]->stats().ToJson());
  }
  return obj.Build();
}

/// "MAP 0.83" or "skip" formatting for figure tables.
inline std::string MapOrSkip(bool skipped, double map) {
  return skipped ? std::string("-") : FormatDouble(map);
}

}  // namespace subex::bench

#endif  // SUBEX_BENCH_BENCH_UTIL_H_
