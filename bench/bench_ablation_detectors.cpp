// Ablation: detector choice (§3.1's selection rationale).
//
// The paper restricts the testbed to LOF / Fast ABOD / iForest, citing
// studies where these "frequently outperform distance or cluster-based
// algorithms". This bench puts that to the test on this testbed's own
// data, adding the classic kNN-distance detector, LODA (the §6
// stream-ready candidate) and exact ABOD (to quantify the Fast ABOD
// approximation):
//
//  (1) detection quality (ROC-AUC) on a subspace-outlier dataset, scored
//      inside the relevant subspaces vs the full space;
//  (2) explanation quality: MAP of Beam paired with each detector;
//  (3) Fast vs exact ABOD ranking agreement.
//
// Usage: bench_ablation_detectors [--full] [--seed N]

#include <memory>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace subex;
  const TestbedProfile profile =
      bench::ParseProfile(argc, argv, "Ablation: detector choice");

  HicsGeneratorConfig config;
  config.num_points = profile.name == "quick" ? 300 : 1000;
  config.subspace_dims = {2, 3, 2, 3};
  config.seed = profile.seed;
  const SyntheticDataset d = GenerateHicsDataset(config);
  std::vector<bool> labels(d.dataset.num_points(), false);
  for (int p : d.dataset.outlier_indices()) labels[p] = true;

  std::vector<std::pair<std::string, std::unique_ptr<Detector>>> detectors;
  detectors.emplace_back("LOF", std::make_unique<Lof>(15));
  detectors.emplace_back("FastABOD", std::make_unique<FastAbod>(10));
  detectors.emplace_back(
      "iForest", MakeTestbedDetector(DetectorKind::kIsolationForest, profile));
  detectors.emplace_back("kNNDist", std::make_unique<KnnDistance>(10));
  Loda::Options loda_options;
  loda_options.seed = profile.seed;
  detectors.emplace_back("LODA", std::make_unique<Loda>(loda_options));
  detectors.emplace_back("ExactABOD", std::make_unique<ExactAbod>());

  std::printf("(1) detection quality + (2) Beam explanation quality\n");
  TextTable table;
  table.SetHeader({"detector", "AUC full space", "AUC in rel subspaces",
                   "Beam MAP@2d", "Beam time@2d"});
  PipelineOptions pipeline_options;
  pipeline_options.max_points = profile.name == "quick" ? 5 : 0;
  Beam::Options beam_options;
  beam_options.beam_width = profile.beam_width;
  const Beam beam(beam_options);
  for (const auto& [name, detector] : detectors) {
    const double auc_full = RocAuc(detector->Score(d.dataset, Subspace()),
                                   labels);
    // Within each relevant subspace, only that subspace's own outliers are
    // positives (the other planted outliers are inliers there); report the
    // mean across subspaces.
    double auc_sub = 0.0;
    for (const Subspace& s : d.relevant_subspaces) {
      std::vector<bool> own(d.dataset.num_points(), false);
      for (int p : d.dataset.outlier_indices()) {
        const auto& rel = d.ground_truth.RelevantFor(p);
        if (std::find(rel.begin(), rel.end(), s) != rel.end()) own[p] = true;
      }
      auc_sub += RocAuc(detector->Score(d.dataset, s), own);
    }
    auc_sub /= static_cast<double>(d.relevant_subspaces.size());
    const PipelineResult r = RunPointExplanationPipeline(
        d.dataset, d.ground_truth, *detector, beam, 2, pipeline_options);
    table.AddRow({name, FormatDouble(auc_full, 3), FormatDouble(auc_sub, 3),
                  FormatDouble(r.map), FormatSeconds(r.seconds)});
  }
  std::printf("%s\n", table.Render().c_str());

  std::printf("(3) Fast ABOD vs exact ABOD rank agreement\n");
  const std::vector<double> fast =
      FastAbod(10).Score(d.dataset, d.relevant_subspaces.front());
  const std::vector<double> exact =
      ExactAbod().Score(d.dataset, d.relevant_subspaces.front());
  const std::vector<int> fast_top = TopKIndices(fast, 20);
  const std::vector<int> exact_top = TopKIndices(exact, 20);
  int overlap = 0;
  for (int p : fast_top) {
    if (std::find(exact_top.begin(), exact_top.end(), p) != exact_top.end()) {
      ++overlap;
    }
  }
  std::printf("top-20 overlap in %s: %d/20\n\n",
              d.relevant_subspaces.front().ToString().c_str(), overlap);

  std::printf(
      "expectation: the paper's trio separates subspace outliers inside\n"
      "their relevant subspaces (AUC ~1 there, lower in the full space);\n"
      "kNN-distance trails LOF on locally-varying density; the O(k n^2)\n"
      "Fast ABOD approximates the O(n^3) exact ranking closely.\n");
  return 0;
}
