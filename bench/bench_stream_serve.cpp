// Loopback load generator for the online serving path: starts an
// ExplainServer with a registered OnlineDataset (incremental LODA + LOF
// re-index over a sliding window), drives it with an open-loop ingest
// thread replaying a drifting stream at --rate rows/s, and hammers the
// kOnlineScore/kOnlineExplain endpoints from N client threads while the
// window advances underneath them.
//
// The quantity of interest is explanation **freshness** versus throughput:
// every kOnlineExplain reply carries the epoch it was computed against and
// the epoch current when it was sent, so the bench reports the staleness
// distribution (epoch lag), the stale-serve fraction, and the drift events
// the ingest provoked — alongside the usual latency percentiles.
//
// Usage: bench_stream_serve [--clients N] [--duration-ms N] [--rate ROWS/S]
//                           [--threads N] [--seed N] [--json out.json]
//                           [--metrics-port N] [--drift-threshold D]
//                           [--drift-p P] [--fault-spec SPEC]
//                           [--fault-seed N] [--restarts N]
//                           [--deadline-ms N] [--wal-dir DIR]
//
// --metrics-port exposes GET /metrics (Prometheus exposition) for the run's
// duration, so a soak harness can scrape the online.* gauges mid-flight.
// --drift-threshold/--drift-p tune the KS drift gate: consecutive epochs
// share most of their window, so the default conservative threshold rarely
// fires on gradual subspace drift — soak jobs lower it to assert the alert
// path end to end.
//
// Chaos mode (any of --fault-spec/--restarts set) turns the bench into a
// soak: --fault-spec arms the src/fault registry (see FaultRegistry's spec
// grammar) for the run's chaos window, --restarts N stops and restarts the
// server N times on the same port mid-run (clients reconnect), and
// --deadline-ms stamps every client request with a wire deadline. After
// the chaos window the faults are disarmed and a clean verification pass
// must succeed end to end — the run proves the system degrades under
// injected faults and fully recovers when they clear. Transport errors and
// deadline rejections are expected and counted in chaos mode; server
// errors and a failed verification pass still exit nonzero.
//
// Without chaos flags, exits nonzero if any request failed with a
// transport or server error (busy rejections absorbed by client backoff
// are not errors).

#include <sys/stat.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <thread>
#include <vector>

#include "bench_util.h"

namespace {

using namespace subex;
using Clock = std::chrono::steady_clock;

struct StreamConfig {
  int clients = 3;
  int duration_ms = 2000;
  double rate = 4000.0;  // Offered ingest rows/s (open loop).
  int pool_threads = 0;  // 0 = hardware concurrency.
  std::uint64_t seed = 4242;
  std::string json_path;
  int metrics_port = -1;          // -1 = no metrics endpoint.
  double drift_threshold = -1.0;  // < 0 = DriftMonitorOptions default.
  double drift_p = -1.0;
  std::string fault_spec;         // Armed for the chaos window.
  std::uint64_t fault_seed = 1;
  int restarts = 0;               // Mid-run server stop/start cycles.
  int deadline_ms = 0;            // Wire deadline on every request.
  std::string wal_dir;            // Crash-safe ingest for the dataset.

  bool chaos() const { return !fault_spec.empty() || restarts > 0; }
};

int IntFlag(int argc, char** argv, const char* flag, int fallback) {
  const std::string value = bench::FlagValue(argc, argv, flag);
  return value.empty() ? fallback : static_cast<int>(std::strtol(
                                        value.c_str(), nullptr, 10));
}

/// Pre-materialized drifting-stream rows served as row-major batches; the
/// generator is chunked, the wire wants arbitrary row counts.
class StreamFeed {
 public:
  explicit StreamFeed(DriftingStreamGenerator& stream) : stream_(stream) {}

  std::vector<double> NextRows(std::size_t n) {
    const std::size_t width = static_cast<std::size_t>(stream_.num_features());
    std::vector<double> values;
    values.reserve(n * width);
    while (values.size() < n * width) {
      if (cursor_ == buffered_.size()) {
        buffered_.clear();
        cursor_ = 0;
        const StreamChunk chunk = stream_.Next();
        for (std::size_t r = 0; r < chunk.points.rows(); ++r) {
          for (std::size_t f = 0; f < chunk.points.cols(); ++f) {
            buffered_.push_back(chunk.points(r, f));
          }
        }
      }
      values.push_back(buffered_[cursor_++]);
    }
    return values;
  }

 private:
  DriftingStreamGenerator& stream_;
  std::vector<double> buffered_;
  std::size_t cursor_ = 0;
};

/// Re-establishes a dead connection, retrying through server downtime
/// (restarts leave a window with nothing listening). Returns false only
/// when the run deadline expires first.
bool ReconnectUntil(ExplainClient& client, std::uint16_t port,
                    Clock::time_point deadline, std::uint64_t* reconnects) {
  std::string error;
  while (Clock::now() < deadline) {
    if (client.Connect("127.0.0.1", port, &error)) {
      if (reconnects != nullptr) ++*reconnects;
      return true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return false;
}

struct IngestOutcome {
  std::uint64_t rows = 0;
  std::uint64_t batches = 0;
  std::uint64_t errors = 0;
  std::uint64_t transport_errors = 0;  // Chaos casualties; reconnected.
  std::uint64_t deadline_expired = 0;  // Server answered kDeadlineExceeded.
  std::uint64_t reconnects = 0;
  std::uint64_t advances = 0;
  std::uint64_t behind_batches = 0;  // Deadlines missed: server too slow.
  std::uint64_t final_epoch = 0;
};

/// Open-loop ingest: sends fixed batches on a fixed cadence regardless of
/// response latency, so a slow server accumulates backlog instead of
/// silently lowering the offered rate (behind_batches counts the misses).
IngestOutcome RunIngest(const StreamConfig& config, std::uint16_t port,
                        StreamFeed& feed, std::size_t num_features,
                        Clock::time_point deadline) {
  IngestOutcome out;
  ExplainClientOptions client_options;
  client_options.deadline_ms =
      static_cast<std::uint32_t>(std::max(config.deadline_ms, 0));
  ExplainClient client(client_options);
  std::string error;
  if (!client.Connect("127.0.0.1", port, &error)) {
    std::printf("ingest: connect failed: %s\n", error.c_str());
    out.errors = 1;
    return out;
  }
  constexpr std::size_t kBatchRows = 16;
  const auto interval = std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(static_cast<double>(kBatchRows) /
                                    config.rate));
  auto next = Clock::now();
  while (Clock::now() < deadline) {
    next += interval;
    std::vector<double> values = feed.NextRows(kBatchRows);
    (void)num_features;
    const ExplainClient::IngestReply reply =
        client.Ingest("stream", kBatchRows, std::move(values));
    ++out.batches;
    switch (reply.status) {
      case ClientStatus::kOk:
        out.rows += reply.result.accepted;
        out.advances += reply.result.advances;
        out.final_epoch = reply.result.window_epoch;
        break;
      case ClientStatus::kDeadlineExceeded:
        ++out.deadline_expired;
        break;
      case ClientStatus::kTransportError:
      case ClientStatus::kCircuitOpen:
        ++out.transport_errors;
        if (config.chaos()) {
          // Expected during a restart window: re-establish and continue.
          if (!ReconnectUntil(client, port, deadline, &out.reconnects)) {
            return out;
          }
        } else {
          ++out.errors;
        }
        break;
      default:
        if (config.chaos() && reply.status == ClientStatus::kBusy) break;
        ++out.errors;
        break;
    }
    const auto now = Clock::now();
    if (now < next) {
      std::this_thread::sleep_until(next);
    } else {
      ++out.behind_batches;
    }
  }
  return out;
}

struct ExplainOutcome {
  std::vector<double> score_ms;
  std::vector<double> explain_ms;
  std::uint64_t ok = 0;
  std::uint64_t busy_gave_up = 0;
  std::uint64_t errors = 0;
  std::uint64_t transport_errors = 0;  // Chaos casualties; reconnected.
  std::uint64_t deadline_expired = 0;  // Server answered kDeadlineExceeded.
  std::uint64_t reconnects = 0;
  std::uint64_t explains = 0;
  std::uint64_t stale_replies = 0;   // computed_epoch < current_epoch.
  std::uint64_t lag_sum = 0;         // Sum of epoch lags across explains.
  std::uint64_t lag_max = 0;
  ClientStatsSnapshot stats;
};

/// One client's life until the deadline: every 4th request explains a
/// window point (Beam over the incremental LODA, pinned to its epoch), the
/// rest score random 2d subspaces alternating LODA (histogram fast path)
/// and LOF (epoch-tagged re-index) — both served from the per-epoch cache
/// when clients collide.
ExplainOutcome RunExplainClient(const StreamConfig& config,
                                std::uint16_t port, int client_index,
                                int num_features, std::size_t safe_points,
                                Clock::time_point deadline) {
  ExplainOutcome out;
  ExplainClientOptions client_options;
  client_options.deadline_ms =
      static_cast<std::uint32_t>(std::max(config.deadline_ms, 0));
  ExplainClient client(client_options);
  std::string error;
  if (!client.Connect("127.0.0.1", port, &error)) {
    std::printf("client %d: connect failed: %s\n", client_index,
                error.c_str());
    out.errors = 1;
    return out;
  }
  Rng rng(config.seed + static_cast<std::uint64_t>(client_index) * 7919);
  for (std::uint64_t i = 0; Clock::now() < deadline; ++i) {
    const auto start = Clock::now();
    ClientStatus status;
    bool was_explain = false;
    if (i % 4 == 3) {
      was_explain = true;
      const int point =
          rng.UniformInt(0, static_cast<int>(safe_points) - 1);
      const ExplainClient::OnlineExplainReply reply = client.OnlineExplain(
          "stream", "LODA", "Beam", point, /*target_dim=*/2,
          /*max_results=*/5);
      status = reply.status;
      if (reply.ok()) {
        ++out.explains;
        const std::uint64_t lag = reply.current_epoch - reply.computed_epoch;
        out.lag_sum += lag;
        out.lag_max = std::max(out.lag_max, lag);
        if (reply.stale()) ++out.stale_replies;
      }
    } else {
      const int a = rng.UniformInt(0, num_features - 1);
      int b = rng.UniformInt(0, num_features - 2);
      if (b >= a) ++b;
      const ExplainClient::OnlineScoreReply reply = client.OnlineScore(
          "stream", i % 2 == 0 ? "LODA" : "LOF", Subspace({a, b}));
      status = reply.status;
    }
    const double ms = std::chrono::duration<double, std::milli>(
                          Clock::now() - start)
                          .count();
    switch (status) {
      case ClientStatus::kOk:
        ++out.ok;
        (was_explain ? out.explain_ms : out.score_ms).push_back(ms);
        break;
      case ClientStatus::kBusy:
        ++out.busy_gave_up;
        break;
      case ClientStatus::kDeadlineExceeded:
        ++out.deadline_expired;
        break;
      case ClientStatus::kTransportError:
      case ClientStatus::kCircuitOpen:
        ++out.transport_errors;
        if (config.chaos()) {
          if (!ReconnectUntil(client, port, deadline, &out.reconnects)) {
            out.stats = client.stats();
            return out;
          }
        } else {
          ++out.errors;
        }
        break;
      default:
        ++out.errors;
        break;
    }
  }
  out.stats = client.stats();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  StreamConfig config;
  config.clients = IntFlag(argc, argv, "--clients", config.clients);
  config.duration_ms =
      IntFlag(argc, argv, "--duration-ms", config.duration_ms);
  const std::string rate = bench::FlagValue(argc, argv, "--rate");
  if (!rate.empty()) config.rate = std::strtod(rate.c_str(), nullptr);
  config.pool_threads = IntFlag(argc, argv, "--threads", config.pool_threads);
  config.seed = static_cast<std::uint64_t>(
      IntFlag(argc, argv, "--seed", static_cast<int>(config.seed)));
  config.json_path = bench::FlagValue(argc, argv, "--json");
  config.metrics_port =
      IntFlag(argc, argv, "--metrics-port", config.metrics_port);
  const std::string drift_threshold =
      bench::FlagValue(argc, argv, "--drift-threshold");
  if (!drift_threshold.empty()) {
    config.drift_threshold = std::strtod(drift_threshold.c_str(), nullptr);
  }
  const std::string drift_p = bench::FlagValue(argc, argv, "--drift-p");
  if (!drift_p.empty()) config.drift_p = std::strtod(drift_p.c_str(), nullptr);
  config.fault_spec = bench::FlagValue(argc, argv, "--fault-spec");
  config.fault_seed = static_cast<std::uint64_t>(
      IntFlag(argc, argv, "--fault-seed", static_cast<int>(config.fault_seed)));
  config.restarts = IntFlag(argc, argv, "--restarts", config.restarts);
  config.deadline_ms = IntFlag(argc, argv, "--deadline-ms", config.deadline_ms);
  config.wal_dir = bench::FlagValue(argc, argv, "--wal-dir");

  std::printf("== stream serve: online ingest + explain under drift ==\n");
  std::printf(
      "%d explain clients for %d ms, ingest %.0f rows/s (open loop), "
      "pool threads %d%s\n",
      config.clients, config.duration_ms, config.rate, config.pool_threads,
      config.pool_threads == 0 ? " (auto)" : "");
  if (config.chaos()) {
    std::printf(
        "chaos: fault spec \"%s\" (seed %llu), %d restarts, deadline %d ms, "
        "wal dir \"%s\"\n",
        config.fault_spec.c_str(),
        static_cast<unsigned long long>(config.fault_seed), config.restarts,
        config.deadline_ms, config.wal_dir.c_str());
  }
  std::printf("\n");

  // A 5-feature drifting subspace-outlier stream; drift every 2 chunks so
  // a few-second run crosses several concepts and the KS monitor has
  // something to flag.
  DriftingStreamConfig stream_config;
  stream_config.chunk_size = 128;
  stream_config.outliers_per_chunk = 4;
  stream_config.drift_every_chunks = 2;
  stream_config.subspace_dims = {2, 3};
  stream_config.seed = config.seed;
  DriftingStreamGenerator stream(stream_config);
  const int num_features = stream.num_features();
  StreamFeed feed(stream);

  OnlineDatasetOptions dataset_options;
  dataset_options.name = "stream";
  dataset_options.window_capacity = 256;
  dataset_options.advance_every = 32;
  dataset_options.min_score_window = 32;
  dataset_options.drift.min_window = 64;
  if (config.drift_threshold >= 0.0) {
    dataset_options.drift.ks_threshold = config.drift_threshold;
  }
  if (config.drift_p >= 0.0) {
    dataset_options.drift.max_p_value = config.drift_p;
  }
  dataset_options.wal_dir = config.wal_dir;
  // A missing directory silently degrades the WAL — create it so the
  // chaos soak journals (and recovers across --restarts) for real.
  if (!config.wal_dir.empty()) ::mkdir(config.wal_dir.c_str(), 0755);
  OnlineDataset dataset(dataset_options,
                        static_cast<std::size_t>(num_features));
  Loda::Options loda_options;
  loda_options.num_projections = 24;
  dataset.AddLoda("LODA", loda_options);
  Lof lof(10);
  dataset.AddReindexDetector("LOF", lof);
  Beam beam;
  if (!config.wal_dir.empty()) {
    const OnlineDataset::RecoveryResult recovery = dataset.RecoverFromWal();
    if (!recovery.ok()) {
      std::printf("wal recovery failed: %s\n", recovery.error.c_str());
      return 1;
    }
    if (recovery.recovered) {
      std::printf("wal recovery: resumed at epoch %llu (%llu rows replayed)\n",
                  static_cast<unsigned long long>(dataset.epoch()),
                  static_cast<unsigned long long>(recovery.replayed_rows));
    }
  }

  ThreadPool pool(static_cast<std::size_t>(config.pool_threads));
  ExplainServerOptions server_options;
  if (config.metrics_port >= 0) server_options.metrics_port = config.metrics_port;
  // Restarts rebuild the server object; keeping it behind a pointer and
  // re-binding the same port makes a restart invisible to clients except
  // for the reconnect.
  auto start_server = [&](std::string* start_error) {
    auto server = std::make_unique<ExplainServer>(server_options, &pool);
    server->RegisterOnlineDataset(dataset);
    server->RegisterExplainer("Beam", beam);
    if (!server->Start(start_error)) server.reset();
    return server;
  };
  std::string error;
  std::unique_ptr<ExplainServer> server = start_server(&error);
  if (server == nullptr) {
    std::printf("server start failed: %s\n", error.c_str());
    return 1;
  }
  // Pin the kernel-chosen ports so every restart lands on the same address.
  server_options.port = server->port();
  if (config.metrics_port == 0) {
    server_options.metrics_port = server->metrics_port();
  }

  // Warm the window past min_score_window before the clients start, so
  // every request they send is answerable (no warmup error noise).
  {
    ExplainClient warmup;
    if (!warmup.Connect("127.0.0.1", server->port(), &error)) {
      std::printf("warmup connect failed: %s\n", error.c_str());
      return 1;
    }
    const ExplainClient::IngestReply reply =
        warmup.Ingest("stream", 64, feed.NextRows(64));
    if (!reply.ok()) {
      std::printf("warmup ingest failed: %s\n", reply.error.c_str());
      return 1;
    }
  }
  // The window only grows from here, so indices below the warmed size are
  // always valid explain targets.
  const std::size_t safe_points = dataset.stats().window_size;
  const std::uint16_t port = server->port();

  // Arm the fault registry only for the chaos window: the warmup above and
  // the verification pass below both run clean.
  if (!config.fault_spec.empty()) {
    FaultRegistry::Global().SetSeed(config.fault_seed);
    std::string spec_error;
    if (!FaultRegistry::Global().ConfigureFromSpec(config.fault_spec,
                                                   &spec_error)) {
      std::printf("bad --fault-spec: %s\n", spec_error.c_str());
      return 1;
    }
  }

  const auto wall_start = Clock::now();
  const auto deadline =
      wall_start + std::chrono::milliseconds(config.duration_ms);
  IngestOutcome ingest;
  std::thread ingest_thread([&] {
    ingest = RunIngest(config, port, feed,
                       static_cast<std::size_t>(num_features), deadline);
  });
  std::vector<ExplainOutcome> outcomes(
      static_cast<std::size_t>(config.clients));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(config.clients));
  for (int c = 0; c < config.clients; ++c) {
    threads.emplace_back([&, c] {
      outcomes[static_cast<std::size_t>(c)] = RunExplainClient(
          config, port, c, num_features, safe_points, deadline);
    });
  }

  // The restart controller: kill and re-bind the server at evenly spaced
  // points of the chaos window while clients hammer it.
  std::uint64_t restarts_done = 0;
  std::uint64_t restart_failures = 0;
  if (config.restarts > 0) {
    const auto segment =
        std::chrono::milliseconds(config.duration_ms) / (config.restarts + 1);
    for (int r = 1; r <= config.restarts; ++r) {
      std::this_thread::sleep_until(wall_start + r * segment);
      if (Clock::now() >= deadline) break;
      server->Stop();
      server.reset();
      // Re-bind can transiently fail while the old socket drains; retry
      // briefly rather than abandoning the soak.
      for (int attempt = 0; attempt < 50 && server == nullptr; ++attempt) {
        server = start_server(&error);
        if (server == nullptr) {
          std::this_thread::sleep_for(std::chrono::milliseconds(20));
        }
      }
      if (server == nullptr) {
        std::printf("restart %d failed: %s\n", r, error.c_str());
        ++restart_failures;
        break;
      }
      ++restarts_done;
    }
  }

  for (std::thread& t : threads) t.join();
  ingest_thread.join();
  const double wall_seconds =
      std::chrono::duration<double>(Clock::now() - wall_start).count();

  // End of the chaos window: disarm everything and prove full recovery
  // with a clean pass — fresh connection, ingest, scores, one explain,
  // zero tolerance for failure.
  const FaultStats fault_stats = FaultRegistry::Global().stats();
  FaultRegistry::Global().DisarmAll();  // Resets counters: snapshot first.
  bool verification_ok = server != nullptr;
  std::string verification_error =
      server == nullptr ? "server not running after restarts" : "";
  if (server != nullptr) {
    ExplainClient verifier;
    if (!verifier.Connect("127.0.0.1", port, &error)) {
      verification_ok = false;
      verification_error = "connect: " + error;
    } else {
      const ExplainClient::IngestReply ingest_reply =
          verifier.Ingest("stream", 16, feed.NextRows(16));
      if (!ingest_reply.ok()) {
        verification_ok = false;
        verification_error = "ingest: " + ingest_reply.error;
      }
      for (int i = 0; verification_ok && i < 10; ++i) {
        const ExplainClient::OnlineScoreReply reply = verifier.OnlineScore(
            "stream", i % 2 == 0 ? "LODA" : "LOF", Subspace({0, 1}));
        if (!reply.ok()) {
          verification_ok = false;
          verification_error = "score: " + reply.error;
        }
      }
      if (verification_ok) {
        const ExplainClient::OnlineExplainReply reply = verifier.OnlineExplain(
            "stream", "LODA", "Beam", 0, /*target_dim=*/2, /*max_results=*/5);
        if (!reply.ok()) {
          verification_ok = false;
          verification_error = "explain: " + reply.error;
        }
      }
    }
  }

  const ServerStatsSnapshot server_stats =
      server != nullptr ? server->stats() : ServerStatsSnapshot{};
  const OnlineDataset::StatsSnapshot online_stats = dataset.stats();
  if (server != nullptr) server->Stop();

  std::vector<double> score_ms, explain_ms;
  std::uint64_t ok = 0, busy_gave_up = 0, errors = ingest.errors;
  std::uint64_t transport_errors = ingest.transport_errors;
  std::uint64_t deadline_expired = ingest.deadline_expired;
  std::uint64_t reconnects = ingest.reconnects;
  std::uint64_t explains = 0, stale_replies = 0, lag_sum = 0, lag_max = 0;
  ClientStatsSnapshot client_stats;
  for (const ExplainOutcome& o : outcomes) {
    score_ms.insert(score_ms.end(), o.score_ms.begin(), o.score_ms.end());
    explain_ms.insert(explain_ms.end(), o.explain_ms.begin(),
                      o.explain_ms.end());
    ok += o.ok;
    busy_gave_up += o.busy_gave_up;
    errors += o.errors;
    transport_errors += o.transport_errors;
    deadline_expired += o.deadline_expired;
    reconnects += o.reconnects;
    explains += o.explains;
    stale_replies += o.stale_replies;
    lag_sum += o.lag_sum;
    lag_max = std::max(lag_max, o.lag_max);
    client_stats.Merge(o.stats);
  }
  const double throughput =
      wall_seconds > 0.0 ? static_cast<double>(ok) / wall_seconds : 0.0;
  const double ingest_rate_achieved =
      wall_seconds > 0.0 ? static_cast<double>(ingest.rows) / wall_seconds
                         : 0.0;
  const double stale_fraction =
      explains > 0
          ? static_cast<double>(stale_replies) / static_cast<double>(explains)
          : 0.0;
  const double lag_mean =
      explains > 0
          ? static_cast<double>(lag_sum) / static_cast<double>(explains)
          : 0.0;

  TextTable table;
  table.SetHeader({"metric", "value"});
  table.AddRow({"requests ok", std::to_string(ok)});
  table.AddRow({"throughput", FormatDouble(throughput) + " req/s"});
  table.AddRow({"ingest rows", std::to_string(ingest.rows)});
  table.AddRow(
      {"ingest rate achieved", FormatDouble(ingest_rate_achieved) + " rows/s"});
  table.AddRow({"ingest behind batches",
                std::to_string(ingest.behind_batches) + " / " +
                    std::to_string(ingest.batches)});
  table.AddRow({"window advances", std::to_string(online_stats.advances)});
  table.AddRow({"final epoch", std::to_string(online_stats.epoch)});
  table.AddRow({"score p50", FormatDouble(bench::Percentile(score_ms, 0.50)) +
                                 " ms"});
  table.AddRow({"score p99", FormatDouble(bench::Percentile(score_ms, 0.99)) +
                                 " ms"});
  table.AddRow({"explain p50",
                FormatDouble(bench::Percentile(explain_ms, 0.50)) + " ms"});
  table.AddRow({"explain p99",
                FormatDouble(bench::Percentile(explain_ms, 0.99)) + " ms"});
  table.AddRow({"explains", std::to_string(explains)});
  table.AddRow({"stale explains", std::to_string(stale_replies)});
  table.AddRow({"stale fraction", FormatDouble(stale_fraction)});
  table.AddRow({"epoch lag mean", FormatDouble(lag_mean)});
  table.AddRow({"epoch lag max", std::to_string(lag_max)});
  table.AddRow({"stale serves (server)",
                std::to_string(online_stats.stale_serves)});
  table.AddRow({"drift events", std::to_string(online_stats.drift_events)});
  table.AddRow({"cache entries / invalidated",
                std::to_string(online_stats.cache_entries) + " / " +
                    std::to_string(online_stats.epochs_invalidated)});
  table.AddRow({"busy gave up", std::to_string(busy_gave_up)});
  table.AddRow({"server errors", std::to_string(errors)});
  table.AddRow({"wall time", FormatSeconds(wall_seconds)});
  if (config.chaos() || config.deadline_ms > 0) {
    table.AddRow({"transport errors (chaos)",
                  std::to_string(transport_errors)});
    table.AddRow({"reconnects", std::to_string(reconnects)});
    table.AddRow({"deadline exceeded", std::to_string(deadline_expired)});
    table.AddRow({"faults injected", std::to_string(fault_stats.injected)});
    table.AddRow({"restarts done", std::to_string(restarts_done) + " / " +
                                       std::to_string(config.restarts)});
    table.AddRow({"verification",
                  verification_ok ? "ok" : "FAILED: " + verification_error});
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf("online stats: %s\n", online_stats.ToJson().c_str());
  std::printf("server stats: %s\n", server_stats.ToJson().c_str());
  std::printf("client stats: %s\n", client_stats.ToJson().c_str());
  if (config.chaos()) {
    std::printf("fault stats: %s\n", fault_stats.ToJson().c_str());
  }

  if (!config.json_path.empty()) {
    bench::JsonTimingReport report;
    report.SetMeta(
        JsonObject()
            .Add("bench", "stream_serve")
            .Add("clients", config.clients)
            .Add("duration_ms", config.duration_ms)
            .Add("offered_rate_rows_per_s", config.rate)
            .Add("pool_threads", config.pool_threads)
            .Add("seed", static_cast<std::uint64_t>(config.seed)));
    report.AddRow(
        JsonObject()
            .Add("requests_ok", ok)
            .Add("throughput_rps", throughput)
            .Add("ingest_rows", ingest.rows)
            .Add("ingest_rate_rows_per_s", ingest_rate_achieved)
            .Add("ingest_behind_batches", ingest.behind_batches)
            .Add("score_p50_ms", bench::Percentile(score_ms, 0.50))
            .Add("score_p99_ms", bench::Percentile(score_ms, 0.99))
            .Add("explain_p50_ms", bench::Percentile(explain_ms, 0.50))
            .Add("explain_p99_ms", bench::Percentile(explain_ms, 0.99))
            .Add("explains", explains)
            .Add("stale_explains", stale_replies)
            .Add("stale_fraction", stale_fraction)
            .Add("epoch_lag_mean", lag_mean)
            .Add("epoch_lag_max", lag_max)
            .Add("busy_gave_up", busy_gave_up)
            .Add("errors", errors)
            .Add("transport_errors", transport_errors)
            .Add("reconnects", reconnects)
            .Add("deadline_exceeded", deadline_expired)
            .Add("restarts_requested",
                 static_cast<std::uint64_t>(config.restarts))
            .Add("restarts_done", restarts_done)
            .Add("faults_injected", fault_stats.injected)
            .Add("verification_ok", verification_ok)
            .Add("wall_seconds", wall_seconds)
            .AddRaw("fault", fault_stats.ToJson())
            .AddRaw("online", online_stats.ToJson())
            .AddRaw("server", server_stats.ToJson())
            .AddRaw("client", client_stats.ToJson())
            .AddRaw("metrics", MetricsRegistry::Global().ToJson()));
    report.WriteTo(config.json_path);
  }
  if (!verification_ok) {
    std::printf("FAILED: post-chaos verification: %s\n",
                verification_error.c_str());
    return 1;
  }
  if (restart_failures > 0) return 1;
  if (!config.chaos() && transport_errors > 0) return 1;
  return errors == 0 ? 0 : 1;
}
