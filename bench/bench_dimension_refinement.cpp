// Extension bench: dimension-based explanation quality (the paper's §6
// pointer to Trittenbach & Böhm 2019), applied as a re-ranking of the
// point explainers' output.
//
// Motivation measured in Figures 9/10: on subspace-outlier data, a
// relevant subspace's augmentations tie with it in detector score, so
// score-ranked MAP collapses at 3d+ even when recall is 1. The
// incremental-gain quality (z(S) - best projection z) separates exact
// subspaces from padded ones. This bench quantifies the MAP improvement
// and the extra cost (|S|+1 detector calls per refined candidate).
//
// Usage: bench_dimension_refinement [--full] [--seed N]

#include <memory>

#include "bench_util.h"

namespace {

// A point explainer decorated with the dimensional-gain re-ranking.
class RefinedExplainer final : public subex::PointExplainer {
 public:
  explicit RefinedExplainer(const subex::PointExplainer& base)
      : base_(base) {}
  std::string name() const override { return base_.name() + "+DimGain"; }
  subex::RankedSubspaces Explain(const subex::Dataset& data,
                                 const subex::Detector& detector, int point,
                                 int target_dim) const override {
    return subex::RefineByDimensionalGain(
        data, detector, point, base_.Explain(data, detector, point,
                                             target_dim));
  }

 private:
  const subex::PointExplainer& base_;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace subex;
  const TestbedProfile profile = bench::ParseProfile(
      argc, argv, "Extension: dimension-based explanation quality");

  HicsGeneratorConfig config;
  config.num_points = profile.name == "quick" ? 300 : 1000;
  config.subspace_dims = {2, 3, 4, 5};  // The 14d split.
  config.seed = profile.seed;
  const SyntheticDataset d = GenerateHicsDataset(config);
  const Lof lof(15);
  std::printf("dataset: %zu pts, %zu feats (subspace outliers)\n\n",
              d.dataset.num_points(), d.dataset.num_features());

  Beam::Options beam_options;
  beam_options.beam_width = profile.beam_width;
  const Beam beam(beam_options);
  const RefinedExplainer refined_beam(beam);
  RefOut::Options refout_options;
  refout_options.pool_size = profile.refout_pool_size;
  refout_options.beam_width = profile.beam_width;
  refout_options.seed = profile.seed;
  const RefOut refout(refout_options);
  const RefinedExplainer refined_refout(refout);

  PipelineOptions pipeline_options;
  pipeline_options.max_points = profile.name == "quick" ? 5 : 0;

  TextTable table;
  table.SetHeader({"pipeline", "MAP@3d", "rec@3d", "MAP@4d", "rec@4d",
                   "time@3d"});
  for (const PointExplainer* explainer :
       {static_cast<const PointExplainer*>(&beam),
        static_cast<const PointExplainer*>(&refined_beam),
        static_cast<const PointExplainer*>(&refout),
        static_cast<const PointExplainer*>(&refined_refout)}) {
    const PipelineResult r3 = RunPointExplanationPipeline(
        d.dataset, d.ground_truth, lof, *explainer, 3, pipeline_options);
    const PipelineResult r4 = RunPointExplanationPipeline(
        d.dataset, d.ground_truth, lof, *explainer, 4, pipeline_options);
    table.AddRow({explainer->name() + "+LOF", FormatDouble(r3.map),
                  FormatDouble(r3.mean_recall), FormatDouble(r4.map),
                  FormatDouble(r4.mean_recall), FormatSeconds(r3.seconds)});
  }
  std::printf("%s\n", table.Render().c_str());

  std::printf(
      "expectation: re-ranking by incremental dimensional gain lifts MAP\n"
      "substantially wherever recall shows the search already found the\n"
      "relevant subspace (the exact-vs-augmentation ties of Figures 9/10),\n"
      "at ~(dim+1) extra detector calls per refined candidate.\n");
  return 0;
}
