// Detector microbenchmarks (§3.1 / §4.3): the cost of scoring ONE subspace
// with each detector on a ~1000-point dataset -- the paper reports
// "to score a single subspace LOF needed 0.05, iForest 0.2 and Fast ABOD 2
// seconds approximately", i.e. the ordering LOF < iForest < FastABOD.
//
// Uses google-benchmark. Run with --benchmark_filter=... as usual; dataset
// size is parameterized via the benchmark Range argument. `--json <path>`
// additionally writes the runs in the repo's JsonTimingReport shape (the
// same format every other bench emits), so CI can archive detector timings
// alongside the figure benches without parsing google-benchmark's own
// console or JSON output.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "subex/subex.h"

namespace {

using namespace subex;

Dataset MakeData(int n, int dims) {
  Rng rng(42);
  Matrix m(n, dims);
  for (int p = 0; p < n; ++p) {
    for (int f = 0; f < dims; ++f) m(p, f) = rng.Uniform();
  }
  return Dataset(std::move(m));
}

// Scores a fixed 3d subspace of a `state.range(0)`-point dataset. Each
// iteration runs under a CounterSpan, so `--metrics-port` scrapes see live
// per-kernel cycles/IPC/LLC-miss series (`subex_prof_*_kernel_<name>_*`)
// next to google-benchmark's wall clock — the evidence the SIMD roadmap
// item is judged against.
template <typename DetectorT>
void BM_ScoreSubspace(benchmark::State& state, DetectorT detector) {
  const Dataset data = MakeData(static_cast<int>(state.range(0)), 10);
  const Subspace subspace({1, 4, 7});
  const ProfCounterSet prof =
      ProfCounterSet::ForKernel("kernel." + detector.name());
  for (auto _ : state) {
    CounterSpan prof_span(&prof);
    benchmark::DoNotOptimize(detector.Score(data, subspace));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_Lof(benchmark::State& state) { BM_ScoreSubspace(state, Lof(15)); }

void BM_FastAbod(benchmark::State& state) {
  BM_ScoreSubspace(state, FastAbod(10));
}

void BM_IForestPaperSettings(benchmark::State& state) {
  IsolationForest::Options options;  // 100 trees, 256 subsample, 10 reps.
  BM_ScoreSubspace(state, IsolationForest(options));
}

void BM_IForestSingleRepetition(benchmark::State& state) {
  IsolationForest::Options options;
  options.num_repetitions = 1;
  BM_ScoreSubspace(state, IsolationForest(options));
}

// Subspace dimensionality sweep: distance-based detector cost is linear in
// the subspace width, iForest's nearly flat.
void BM_LofByDim(benchmark::State& state) {
  const int dim = static_cast<int>(state.range(0));
  const Dataset data = MakeData(500, 16);
  std::vector<FeatureId> features;
  for (int f = 0; f < dim; ++f) features.push_back(f);
  const Subspace subspace(features);
  const Lof lof(15);
  const ProfCounterSet prof = ProfCounterSet::ForKernel("kernel.LOF");
  for (auto _ : state) {
    CounterSpan prof_span(&prof);
    benchmark::DoNotOptimize(lof.Score(data, subspace));
  }
}

void BM_HicsContrast(benchmark::State& state) {
  const Dataset data = MakeData(static_cast<int>(state.range(0)), 10);
  Hics::Options options;
  options.mc_iterations = 100;  // Paper setting.
  const Hics hics(options);
  const Subspace subspace({1, 4, 7});
  const ProfCounterSet prof = ProfCounterSet::ForKernel("kernel.HiCS");
  for (auto _ : state) {
    CounterSpan prof_span(&prof);
    benchmark::DoNotOptimize(hics.Contrast(data, subspace));
  }
}

BENCHMARK(BM_Lof)->Arg(250)->Arg(1000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FastAbod)->Arg(250)->Arg(1000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_IForestPaperSettings)
    ->Arg(250)
    ->Arg(1000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_IForestSingleRepetition)
    ->Arg(1000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_LofByDim)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Unit(
    benchmark::kMillisecond);
BENCHMARK(BM_HicsContrast)->Arg(1000)->Unit(benchmark::kMillisecond);

// Console reporter that additionally captures every measured run into a
// JsonTimingReport row (name, iterations, per-iteration real/cpu ms).
class CapturingReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    benchmark::ConsoleReporter::ReportRuns(runs);
    for (const Run& run : runs) {
      if (run.error_occurred || run.run_type != Run::RT_Iteration) continue;
      const double iters =
          run.iterations > 0 ? static_cast<double>(run.iterations) : 1.0;
      JsonObject row;
      row.Add("name", run.benchmark_name())
          .Add("iterations", static_cast<std::uint64_t>(run.iterations))
          .Add("real_ms", run.real_accumulated_time / iters * 1e3)
          .Add("cpu_ms", run.cpu_accumulated_time / iters * 1e3);
      const auto items = run.counters.find("items_per_second");
      if (items != run.counters.end()) {
        row.Add("items_per_second", static_cast<double>(items->second));
      }
      report.AddRow(row);
    }
  }

  bench::JsonTimingReport report;
};

}  // namespace

int main(int argc, char** argv) {
  // Pull out the repo-level flags before benchmark::Initialize sees (and
  // rejects) them as unrecognized.
  const std::string json_path = bench::FlagValue(argc, argv, "--json");
  const std::string profile_out =
      bench::FlagValue(argc, argv, "--profile-out");
  const int profile_hz = bench::IntFlag(argc, argv, "--profile-hz", 0);
  const int metrics_port = bench::IntFlag(argc, argv, "--metrics-port", -1);
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    const bool is_repo_flag = std::strcmp(argv[i], "--json") == 0 ||
                              std::strcmp(argv[i], "--profile-out") == 0 ||
                              std::strcmp(argv[i], "--profile-hz") == 0 ||
                              std::strcmp(argv[i], "--metrics-port") == 0;
    if (is_repo_flag) {
      if (i + 1 < argc) ++i;  // Skip the operand too.
      continue;
    }
    args.push_back(argv[i]);
  }
  int filtered_argc = static_cast<int>(args.size());
  args.push_back(nullptr);

  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data())) {
    return 1;
  }
  RegisterProfProcessMetrics();
  MetricsHttpServer metrics_server;
  bench::StartMetricsEndpointIfRequested(metrics_server, metrics_port);
  bench::StartProfilerIfRequested(profile_out, profile_hz);
  CapturingReporter reporter;
  reporter.report.SetMeta(JsonObject().Add("bench", "detectors"));
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  bench::WriteProfileIfRequested(profile_out);
  metrics_server.Stop();
  if (!json_path.empty()) reporter.report.WriteTo(json_path);
  return 0;
}
