// Detector microbenchmarks (§3.1 / §4.3): the cost of scoring ONE subspace
// with each detector on a ~1000-point dataset -- the paper reports
// "to score a single subspace LOF needed 0.05, iForest 0.2 and Fast ABOD 2
// seconds approximately", i.e. the ordering LOF < iForest < FastABOD.
//
// Uses google-benchmark. Run with --benchmark_filter=... as usual; dataset
// size is parameterized via the benchmark Range argument.

#include <benchmark/benchmark.h>

#include "subex/subex.h"

namespace {

using namespace subex;

Dataset MakeData(int n, int dims) {
  Rng rng(42);
  Matrix m(n, dims);
  for (int p = 0; p < n; ++p) {
    for (int f = 0; f < dims; ++f) m(p, f) = rng.Uniform();
  }
  return Dataset(std::move(m));
}

// Scores a fixed 3d subspace of a `state.range(0)`-point dataset.
template <typename DetectorT>
void BM_ScoreSubspace(benchmark::State& state, DetectorT detector) {
  const Dataset data = MakeData(static_cast<int>(state.range(0)), 10);
  const Subspace subspace({1, 4, 7});
  for (auto _ : state) {
    benchmark::DoNotOptimize(detector.Score(data, subspace));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_Lof(benchmark::State& state) { BM_ScoreSubspace(state, Lof(15)); }

void BM_FastAbod(benchmark::State& state) {
  BM_ScoreSubspace(state, FastAbod(10));
}

void BM_IForestPaperSettings(benchmark::State& state) {
  IsolationForest::Options options;  // 100 trees, 256 subsample, 10 reps.
  BM_ScoreSubspace(state, IsolationForest(options));
}

void BM_IForestSingleRepetition(benchmark::State& state) {
  IsolationForest::Options options;
  options.num_repetitions = 1;
  BM_ScoreSubspace(state, IsolationForest(options));
}

// Subspace dimensionality sweep: distance-based detector cost is linear in
// the subspace width, iForest's nearly flat.
void BM_LofByDim(benchmark::State& state) {
  const int dim = static_cast<int>(state.range(0));
  const Dataset data = MakeData(500, 16);
  std::vector<FeatureId> features;
  for (int f = 0; f < dim; ++f) features.push_back(f);
  const Subspace subspace(features);
  const Lof lof(15);
  for (auto _ : state) {
    benchmark::DoNotOptimize(lof.Score(data, subspace));
  }
}

void BM_HicsContrast(benchmark::State& state) {
  const Dataset data = MakeData(static_cast<int>(state.range(0)), 10);
  Hics::Options options;
  options.mc_iterations = 100;  // Paper setting.
  const Hics hics(options);
  const Subspace subspace({1, 4, 7});
  for (auto _ : state) {
    benchmark::DoNotOptimize(hics.Contrast(data, subspace));
  }
}

BENCHMARK(BM_Lof)->Arg(250)->Arg(1000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FastAbod)->Arg(250)->Arg(1000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_IForestPaperSettings)
    ->Arg(250)
    ->Arg(1000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_IForestSingleRepetition)
    ->Arg(1000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_LofByDim)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Unit(
    benchmark::kMillisecond);
BENCHMARK(BM_HicsContrast)->Arg(1000)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
