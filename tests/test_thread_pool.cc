#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace subex {
namespace {

TEST(ThreadPoolTest, SingleThreadParallelForRunsAllIterations) {
  ThreadPool pool(1);
  std::vector<int> hits(100, 0);
  pool.ParallelFor(100, [&](std::size_t i) { hits[i] += 1; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPoolTest, MultiThreadParallelForRunsAllIterationsOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(1000, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForZeroCountIsNoop) {
  ThreadPool pool(2);
  pool.ParallelFor(0, [&](std::size_t) { FAIL() << "must not be called"; });
}

TEST(ThreadPoolTest, SubmitAndWait) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int i = 0; i < 50; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, WaitWithNoWorkReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();  // Must not deadlock.
  SUCCEED();
}

TEST(ThreadPoolTest, ReducesCorrectSum) {
  ThreadPool pool(4);
  std::vector<long long> partial(256, 0);
  pool.ParallelFor(256, [&](std::size_t i) {
    partial[i] = static_cast<long long>(i) * i;
  });
  const long long total =
      std::accumulate(partial.begin(), partial.end(), 0LL);
  long long expected = 0;
  for (long long i = 0; i < 256; ++i) expected += i * i;
  EXPECT_EQ(total, expected);
}

TEST(ThreadPoolTest, ParallelForRethrowsBodyExceptionOnCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.ParallelFor(100,
                       [](std::size_t i) {
                         if (i == 42) throw std::runtime_error("boom");
                       }),
      std::runtime_error);
}

TEST(ThreadPoolTest, PoolStaysUsableAfterBodyException) {
  ThreadPool pool(4);
  try {
    pool.ParallelFor(64, [](std::size_t) { throw std::runtime_error("x"); });
    FAIL() << "expected the body exception to propagate";
  } catch (const std::runtime_error&) {
  }
  // The pool must still run work to completion afterwards.
  std::vector<std::atomic<int>> hits(128);
  pool.ParallelFor(128, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, SingleThreadParallelForPropagatesException) {
  ThreadPool pool(1);
  EXPECT_THROW(
      pool.ParallelFor(8, [](std::size_t) { throw std::logic_error("seq"); }),
      std::logic_error);
}

TEST(ThreadPoolTest, NumThreadsReported) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.num_threads(), 3u);
}

TEST(ThreadPoolTest, DestructorJoinsWithPendingCompletedWork) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 20; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.Wait();
  }
  EXPECT_EQ(counter.load(), 20);
}

}  // namespace
}  // namespace subex
