#include "data/columnar.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "data/chunked_dataset.h"
#include "data/csv.h"
#include "mem/eviction_manager.h"

namespace subex {
namespace {

// Per-process unique paths so parallel ctest workers never share a file.
std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "subex_cols_" + std::to_string(::getpid()) +
         "_" + name;
}

Dataset MakeDataset(std::size_t rows, std::size_t cols,
                    std::vector<int> outliers = {}) {
  Matrix m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      // Deterministic, irregular values with plenty of mantissa bits so a
      // lossy round-trip would be caught.
      m(r, c) = std::sin(static_cast<double>(r * cols + c)) * 1e3 + 1.0 / 3.0;
    }
  }
  return Dataset(std::move(m), std::move(outliers));
}

TEST(ColumnarTest, RoundTripIsBitExact) {
  const std::string path = TempPath("roundtrip.cols");
  const Dataset original = MakeDataset(100, 3, {2, 17, 99});
  std::string error;
  ASSERT_TRUE(WriteColumnarDataset(path, original, /*rows_per_chunk=*/16,
                                   &error))
      << error;
  const ColumnarReadResult result = ReadColumnarDataset(path);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_TRUE(result.dataset.matrix() == original.matrix());
  EXPECT_EQ(result.dataset.outlier_indices(), original.outlier_indices());
}

TEST(ColumnarTest, RoundTripPreservesNanAndExtremeValues) {
  const std::string path = TempPath("nan.cols");
  Matrix m(4, 2);
  m(0, 0) = std::numeric_limits<double>::quiet_NaN();
  m(0, 1) = -0.0;
  m(1, 0) = std::numeric_limits<double>::infinity();
  m(1, 1) = -std::numeric_limits<double>::infinity();
  m(2, 0) = std::numeric_limits<double>::denorm_min();
  m(2, 1) = std::numeric_limits<double>::max();
  m(3, 0) = 1.0000000000000002;  // Quantized: differs in the last ulp.
  m(3, 1) = 1.0;
  std::string error;
  ASSERT_TRUE(WriteColumnarDataset(path, Dataset(m), 2, &error)) << error;
  const ColumnarReadResult result = ReadColumnarDataset(path);
  ASSERT_TRUE(result.ok) << result.error;
  const Matrix& back = result.dataset.matrix();
  EXPECT_TRUE(std::isnan(back(0, 0)));
  EXPECT_TRUE(std::signbit(back(0, 1)));
  // Everything non-NaN must be bit-identical, including the 1-ulp pair.
  for (std::size_t r = 1; r < 4; ++r) {
    for (std::size_t c = 0; c < 2; ++c) EXPECT_EQ(back(r, c), m(r, c));
  }
  EXPECT_NE(back(3, 0), back(3, 1));
}

TEST(ColumnarTest, EmptyDatasetRoundTrips) {
  const std::string path = TempPath("empty.cols");
  std::string error;
  ASSERT_TRUE(WriteColumnarDataset(path, Dataset(), 8, &error)) << error;
  const ColumnarReadResult result = ReadColumnarDataset(path);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.dataset.num_points(), 0u);
  EXPECT_TRUE(result.dataset.outlier_indices().empty());
}

TEST(ColumnarTest, SingleRowRoundTrips) {
  const std::string path = TempPath("single.cols");
  Matrix m(1, 4);
  for (std::size_t c = 0; c < 4; ++c) m(0, c) = 0.5 * static_cast<double>(c);
  std::string error;
  ASSERT_TRUE(WriteColumnarDataset(path, Dataset(m, {0}), 16, &error)) << error;
  const ColumnarReadResult result = ReadColumnarDataset(path);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_TRUE(result.dataset.matrix() == m);
  EXPECT_EQ(result.dataset.outlier_indices(), (std::vector<int>{0}));
}

TEST(ColumnarTest, RowCountOnChunkBoundaryRoundTrips) {
  // Exactly full final block, one-past, and one-short: the classic
  // off-by-one territory of chunked offset math.
  for (const std::size_t rows : {16u, 17u, 15u, 32u}) {
    const std::string path =
        TempPath("boundary_" + std::to_string(rows) + ".cols");
    const Dataset original = MakeDataset(rows, 3);
    std::string error;
    ASSERT_TRUE(WriteColumnarDataset(path, original, /*rows_per_chunk=*/16,
                                     &error))
        << error;
    const ColumnarReadResult result = ReadColumnarDataset(path);
    ASSERT_TRUE(result.ok) << result.error;
    EXPECT_TRUE(result.dataset.matrix() == original.matrix())
        << rows << " rows";
  }
}

TEST(ColumnarTest, StreamingWriterMatchesWholeDatasetWriter) {
  const Dataset original = MakeDataset(50, 2, {3, 7});
  const std::string streamed = TempPath("streamed.cols");
  ColumnarWriter writer(streamed, 2, /*rows_per_chunk=*/8);
  for (std::size_t p = 0; p < original.num_points(); ++p) {
    ASSERT_TRUE(writer.AppendRow(original.matrix().Row(p)));
  }
  for (int id : original.outlier_indices()) writer.MarkOutlier(id);
  ASSERT_TRUE(writer.Finish()) << writer.error();

  const ColumnarReadResult result = ReadColumnarDataset(streamed);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_TRUE(result.dataset.matrix() == original.matrix());
  EXPECT_EQ(result.dataset.outlier_indices(), original.outlier_indices());
}

TEST(ColumnarTest, TruncatedFileIsRejected) {
  const std::string path = TempPath("truncated.cols");
  std::string error;
  ASSERT_TRUE(WriteColumnarDataset(path, MakeDataset(64, 2), 16, &error))
      << error;
  // Chop off the last 8 bytes.
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  ASSERT_GT(bytes.size(), 8u);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() - 8));
  out.close();

  const auto open = ColumnarFile::Open(path);
  EXPECT_FALSE(open.ok);
  EXPECT_NE(open.error.find("truncated or corrupt"), std::string::npos);
}

TEST(ColumnarTest, BadMagicIsRejected) {
  const std::string path = TempPath("magic.cols");
  std::ofstream out(path, std::ios::binary);
  out << "not a columnar file at all, but comfortably longer than one "
         "64-byte header so only the magic check can reject it";
  out.close();
  const auto open = ColumnarFile::Open(path);
  EXPECT_FALSE(open.ok);
  EXPECT_NE(open.error.find("bad magic"), std::string::npos);
}

TEST(ColumnarTest, ShortHeaderIsRejected) {
  const std::string path = TempPath("short.cols");
  std::ofstream out(path, std::ios::binary);
  out << "SXCL";
  out.close();
  const auto open = ColumnarFile::Open(path);
  EXPECT_FALSE(open.ok);
  EXPECT_NE(open.error.find("truncated header"), std::string::npos);
}

TEST(ColumnarTest, CorruptOutlierTrailerIsRejected) {
  const std::string path = TempPath("outlier.cols");
  std::string error;
  ASSERT_TRUE(WriteColumnarDataset(path, MakeDataset(8, 1, {1, 5}), 4,
                                   &error))
      << error;
  // Overwrite the first trailer id with an out-of-range row.
  std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
  const std::int64_t bogus = 1'000'000;
  f.seekp(64 + 8 * 8, std::ios::beg);  // header + payload (8 rows x 1 col).
  f.write(reinterpret_cast<const char*>(&bogus), sizeof(bogus));
  f.close();
  const auto open = ColumnarFile::Open(path);
  EXPECT_FALSE(open.ok);
  EXPECT_NE(open.error.find("outlier"), std::string::npos);
}

TEST(ColumnarTest, ReadChunkReturnsColumnSlices) {
  const std::string path = TempPath("chunks.cols");
  Matrix m(10, 2);
  for (std::size_t r = 0; r < 10; ++r) {
    m(r, 0) = static_cast<double>(r);
    m(r, 1) = static_cast<double>(100 + r);
  }
  std::string error;
  ASSERT_TRUE(WriteColumnarDataset(path, Dataset(m), 4, &error)) << error;
  const auto open = ColumnarFile::Open(path);
  ASSERT_TRUE(open.ok) << open.error;
  EXPECT_EQ(open.file->num_blocks(), 3u);
  EXPECT_EQ(open.file->RowsInBlock(2), 2u);
  const auto chunk = open.file->ReadChunk(1, 2);  // Column 1, rows 8..9.
  ASSERT_NE(chunk, nullptr);
  ASSERT_EQ(chunk->rows(), 2u);
  EXPECT_EQ((*chunk)[0], 108.0);
  EXPECT_EQ((*chunk)[1], 109.0);
}

TEST(ColumnarTest, CsvConversionMatchesCsvReader) {
  const std::string csv = TempPath("convert.csv");
  const std::string cols = TempPath("convert.cols");
  const Dataset original = MakeDataset(40, 3, {1, 20, 39});
  std::string error;
  ASSERT_TRUE(WriteCsv(csv, original, /*label_column=*/true, &error)) << error;

  const CsvToColumnarResult converted =
      ConvertCsvToColumnar(csv, cols, /*label_column=*/true,
                           /*rows_per_chunk=*/16);
  ASSERT_TRUE(converted.ok) << converted.error;
  EXPECT_EQ(converted.num_rows, 40u);
  EXPECT_EQ(converted.num_cols, 3u);
  EXPECT_EQ(converted.num_outliers, 3u);

  // The columnar file must agree with what ReadCsv sees — CSV text is the
  // common source, so both sides quantize identically through %.17g.
  const CsvReadResult via_csv = ReadCsv(csv, /*label_column=*/true);
  ASSERT_TRUE(via_csv.ok) << via_csv.error;
  const ColumnarReadResult via_cols = ReadColumnarDataset(cols);
  ASSERT_TRUE(via_cols.ok) << via_cols.error;
  EXPECT_TRUE(via_cols.dataset.matrix() == via_csv.dataset.matrix());
  EXPECT_EQ(via_cols.dataset.outlier_indices(),
            via_csv.dataset.outlier_indices());
}

TEST(ColumnarTest, ConversionRejectsMalformedCsv) {
  const std::string csv = TempPath("bad.csv");
  std::ofstream out(csv);
  out << "a,b,label\n1.0,2.0,0\n1.0,oops,1\n";
  out.close();
  const CsvToColumnarResult converted =
      ConvertCsvToColumnar(csv, TempPath("bad.cols"));
  EXPECT_FALSE(converted.ok);
  EXPECT_NE(converted.error.find("non-numeric"), std::string::npos);
}

// ---------------------------------------------------------------------------
// ChunkedDataset

TEST(ChunkedDatasetTest, ServesValuesAndCachesChunks) {
  const std::string path = TempPath("chunked.cols");
  const Dataset original = MakeDataset(30, 2);
  std::string error;
  ASSERT_TRUE(WriteColumnarDataset(path, original, 8, &error)) << error;

  EvictionManager manager(EvictionManager::Options{.budget_bytes = 1 << 20});
  ChunkedDatasetOptions options;
  options.manager = &manager;
  auto open = ChunkedDataset::Open(path, options);
  ASSERT_TRUE(open.ok) << open.error;
  ChunkedDataset& data = *open.dataset;
  EXPECT_EQ(data.num_rows(), 30u);
  EXPECT_EQ(data.num_cols(), 2u);

  {
    Pinned<ColumnChunk> chunk = data.Chunk(1, 1);  // Rows 8..15, column 1.
    ASSERT_TRUE(chunk.valid());
    for (std::size_t r = 0; r < chunk->rows(); ++r) {
      EXPECT_EQ((*chunk)[r], original.Value(8 + r, 1));
    }
  }
  // Second touch hits the resident chunk: no further load.
  { Pinned<ColumnChunk> again = data.Chunk(1, 1); }
  const ChunkedDatasetStats stats = data.stats();
  EXPECT_EQ(stats.loads, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.pinned_chunks, 0u);
  EXPECT_EQ(stats.resident_chunks, 1u);
}

TEST(ChunkedDatasetTest, TinyBudgetEvictsUnpinnedChunks) {
  const std::string path = TempPath("evict.cols");
  std::string error;
  ASSERT_TRUE(WriteColumnarDataset(path, MakeDataset(1024, 4), 256, &error))
      << error;

  // Budget of ~1.5 chunks (256 rows x 8 bytes = 2 KB each): touching every
  // chunk must keep the resident set around one chunk, evicting as it goes.
  EvictionManager manager(EvictionManager::Options{.budget_bytes = 3 << 10});
  ChunkedDatasetOptions options;
  options.manager = &manager;
  auto open = ChunkedDataset::Open(path, options);
  ASSERT_TRUE(open.ok) << open.error;
  ChunkedDataset& data = *open.dataset;

  for (std::size_t c = 0; c < data.num_cols(); ++c) {
    for (std::size_t b = 0; b < data.num_blocks(); ++b) {
      Pinned<ColumnChunk> chunk = data.Chunk(c, b);
      ASSERT_TRUE(chunk.valid());
    }
  }
  const ChunkedDatasetStats stats = data.stats();
  EXPECT_EQ(stats.loads, 16u);  // 4 columns x 4 blocks, nothing cached.
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_LE(manager.used_bytes(), manager.budget_bytes());
  EXPECT_LE(stats.resident_chunks, 1u);
}

TEST(ChunkedDatasetTest, PinnedChunksSurvivePressure) {
  const std::string path = TempPath("pin.cols");
  std::string error;
  ASSERT_TRUE(WriteColumnarDataset(path, MakeDataset(1024, 4), 256, &error))
      << error;

  EvictionManager manager(EvictionManager::Options{.budget_bytes = 3 << 10});
  ChunkedDatasetOptions options;
  options.manager = &manager;
  auto open = ChunkedDataset::Open(path, options);
  ASSERT_TRUE(open.ok) << open.error;
  ChunkedDataset& data = *open.dataset;

  // Hold a pin while cycling every other chunk through the tiny budget: the
  // pinned chunk's data must stay valid (eviction may never touch it).
  Pinned<ColumnChunk> pinned = data.Chunk(0, 0);
  ASSERT_TRUE(pinned.valid());
  const double expected = (*pinned)[0];
  for (std::size_t c = 0; c < data.num_cols(); ++c) {
    for (std::size_t b = 0; b < data.num_blocks(); ++b) {
      if (c == 0 && b == 0) continue;
      Pinned<ColumnChunk> chunk = data.Chunk(c, b);
      ASSERT_TRUE(chunk.valid());
    }
  }
  EXPECT_EQ((*pinned)[0], expected);
  const ChunkedDatasetStats stats = data.stats();
  EXPECT_EQ(stats.pinned_chunks, 1u);
  // Pinned chunks overcommit rather than fail when the budget is too tight.
  EXPECT_EQ(manager.snapshot().reserve_failures, 0u);
  pinned.Release();
  EXPECT_EQ(data.stats().pinned_chunks, 0u);
}

TEST(ChunkedDatasetTest, ConcurrentReadersSingleFlightLoads) {
  const std::string path = TempPath("mt.cols");
  const Dataset original = MakeDataset(512, 3);
  std::string error;
  ASSERT_TRUE(WriteColumnarDataset(path, original, 64, &error)) << error;

  EvictionManager manager(EvictionManager::Options{.budget_bytes = 1 << 20});
  ChunkedDatasetOptions options;
  options.manager = &manager;
  auto open = ChunkedDataset::Open(path, options);
  ASSERT_TRUE(open.ok) << open.error;
  ChunkedDataset& data = *open.dataset;

  std::vector<std::thread> threads;
  std::atomic<int> mismatches{0};
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int round = 0; round < 20; ++round) {
        for (std::size_t c = 0; c < data.num_cols(); ++c) {
          for (std::size_t b = 0; b < data.num_blocks(); ++b) {
            Pinned<ColumnChunk> chunk = data.Chunk(c, b);
            if (!chunk.valid()) {
              mismatches.fetch_add(1);
              continue;
            }
            const std::size_t row0 = b * data.rows_per_chunk();
            for (std::size_t r = 0; r < chunk->rows(); ++r) {
              if ((*chunk)[r] != original.Value(row0 + r, c)) {
                mismatches.fetch_add(1);
              }
            }
          }
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(mismatches.load(), 0);
  // Ample budget: every chunk loaded exactly once, everything else hit.
  const ChunkedDatasetStats stats = data.stats();
  EXPECT_EQ(stats.loads, data.num_cols() * data.num_blocks());
  EXPECT_EQ(stats.evictions, 0u);
}

}  // namespace
}  // namespace subex
