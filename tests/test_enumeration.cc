#include "subspace/enumeration.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <set>

#include "common/rng.h"

namespace subex {
namespace {

TEST(CombinationCountTest, SmallValues) {
  EXPECT_EQ(CombinationCount(5, 2), 10u);
  EXPECT_EQ(CombinationCount(6, 3), 20u);
  EXPECT_EQ(CombinationCount(39, 2), 741u);
  EXPECT_EQ(CombinationCount(70, 5), 12103014u);
}

TEST(CombinationCountTest, Edges) {
  EXPECT_EQ(CombinationCount(5, 0), 1u);
  EXPECT_EQ(CombinationCount(5, 5), 1u);
  EXPECT_EQ(CombinationCount(5, 6), 0u);
  EXPECT_EQ(CombinationCount(0, 0), 1u);
  EXPECT_EQ(CombinationCount(5, -1), 0u);
}

TEST(CombinationCountTest, SaturatesInsteadOfOverflowing) {
  EXPECT_EQ(CombinationCount(1000, 500),
            std::numeric_limits<std::uint64_t>::max());
}

TEST(EnumerateTest, AllPairsOfFour) {
  const std::vector<Subspace> subspaces = EnumerateSubspaces(4, 2);
  ASSERT_EQ(subspaces.size(), 6u);
  EXPECT_EQ(subspaces.front(), Subspace({0, 1}));
  EXPECT_EQ(subspaces.back(), Subspace({2, 3}));
  // Distinct & each of size 2.
  const std::set<Subspace> unique(subspaces.begin(), subspaces.end());
  EXPECT_EQ(unique.size(), 6u);
  for (const Subspace& s : subspaces) EXPECT_EQ(s.size(), 2u);
}

TEST(EnumerateTest, CountMatchesFormulaAcrossDims) {
  for (int n : {5, 8, 10}) {
    for (int k = 1; k <= n; ++k) {
      EXPECT_EQ(EnumerateSubspaces(n, k).size(), CombinationCount(n, k))
          << "n=" << n << " k=" << k;
    }
  }
}

TEST(EnumerateTest, DimLargerThanFeaturesEmpty) {
  EXPECT_TRUE(EnumerateSubspaces(3, 4).empty());
}

TEST(EnumerateTest, LexicographicOrder) {
  const std::vector<Subspace> subspaces = EnumerateSubspaces(5, 3);
  EXPECT_TRUE(std::is_sorted(subspaces.begin(), subspaces.end()));
}

TEST(SampleRandomTest, ShapeAndRange) {
  Rng rng(3);
  const std::vector<Subspace> pool = SampleRandomSubspaces(20, 14, 50, rng);
  ASSERT_EQ(pool.size(), 50u);
  for (const Subspace& s : pool) {
    EXPECT_EQ(s.size(), 14u);
    EXPECT_GE(s.features().front(), 0);
    EXPECT_LT(s.features().back(), 20);
  }
}

TEST(SampleRandomTest, CoversAllFeaturesEventually) {
  Rng rng(5);
  const std::vector<Subspace> pool = SampleRandomSubspaces(10, 7, 40, rng);
  std::set<FeatureId> seen;
  for (const Subspace& s : pool) {
    seen.insert(s.features().begin(), s.features().end());
  }
  EXPECT_EQ(seen.size(), 10u);
}

TEST(SampleRandomTest, Deterministic) {
  Rng a(7);
  Rng b(7);
  EXPECT_EQ(SampleRandomSubspaces(15, 10, 20, a),
            SampleRandomSubspaces(15, 10, 20, b));
}

TEST(ExtendTest, ExtendsByEveryAbsentFeature) {
  const std::vector<Subspace> bases = {Subspace({0, 1})};
  const std::vector<Subspace> extended = ExtendByOneFeature(bases, 4);
  EXPECT_EQ(extended.size(), 2u);
  EXPECT_NE(std::find(extended.begin(), extended.end(), Subspace({0, 1, 2})),
            extended.end());
  EXPECT_NE(std::find(extended.begin(), extended.end(), Subspace({0, 1, 3})),
            extended.end());
}

TEST(ExtendTest, DeduplicatesAcrossBases) {
  const std::vector<Subspace> bases = {Subspace({0, 1}), Subspace({0, 2})};
  const std::vector<Subspace> extended = ExtendByOneFeature(bases, 3);
  // {0,1}+2 and {0,2}+1 both give {0,1,2}.
  EXPECT_EQ(extended.size(), 1u);
  EXPECT_EQ(extended.front(), Subspace({0, 1, 2}));
}

TEST(ExtendTest, EmptyBasesGiveSingletons) {
  const std::vector<Subspace> bases = {Subspace()};
  const std::vector<Subspace> extended = ExtendByOneFeature(bases, 3);
  EXPECT_EQ(extended.size(), 3u);
  for (const Subspace& s : extended) EXPECT_EQ(s.size(), 1u);
}

TEST(ExtendTest, FullBaseYieldsNothing) {
  const std::vector<Subspace> bases = {Subspace({0, 1, 2})};
  EXPECT_TRUE(ExtendByOneFeature(bases, 3).empty());
}

}  // namespace
}  // namespace subex
