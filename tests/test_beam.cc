#include "explain/beam.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "data/generators.h"
#include "detect/lof.h"

namespace subex {
namespace {

TEST(BeamTest, RecoversPlantedTwoDimensionalSubspace) {
  const SyntheticDataset d = GenerateFigure1Dataset(1, 200);
  const Lof lof(15);
  const Beam beam;
  // o1 (point 0) is explained by {0,1}.
  const RankedSubspaces result = beam.Explain(d.dataset, lof, 0, 2);
  ASSERT_FALSE(result.empty());
  EXPECT_EQ(result.subspaces.front(), Subspace({0, 1}));
}

TEST(BeamTest, RecoversSecondOutlierSubspace) {
  const SyntheticDataset d = GenerateFigure1Dataset(1, 200);
  const Lof lof(15);
  const Beam beam;
  // o2 (point 1) is explained by {1,2}.
  const RankedSubspaces result = beam.Explain(d.dataset, lof, 1, 2);
  ASSERT_FALSE(result.empty());
  EXPECT_EQ(result.subspaces.front(), Subspace({1, 2}));
}

TEST(BeamTest, RecoversPlantedSubspaceInWiderDataset) {
  HicsGeneratorConfig config;
  config.num_points = 300;
  config.subspace_dims = {2, 3};
  config.seed = 42;
  const SyntheticDataset d = GenerateHicsDataset(config);
  const Lof lof(15);
  Beam::Options options;
  options.beam_width = 20;
  const Beam beam(options);

  const Subspace* planted2d = nullptr;
  for (const Subspace& s : d.relevant_subspaces) {
    if (s.size() == 2) planted2d = &s;
  }
  ASSERT_NE(planted2d, nullptr);
  for (int p : d.dataset.outlier_indices()) {
    const auto& rel = d.ground_truth.RelevantFor(p);
    if (std::find(rel.begin(), rel.end(), *planted2d) == rel.end()) continue;
    const RankedSubspaces result = beam.Explain(d.dataset, lof, p, 2);
    ASSERT_FALSE(result.empty());
    EXPECT_EQ(result.subspaces.front(), *planted2d)
        << "point " << p << " got " << result.subspaces.front().ToString();
  }
}

TEST(BeamTest, FixedDimReturnsOnlyTargetDimensionality) {
  const SyntheticDataset d = GenerateFigure1Dataset(2, 150);
  const Lof lof(15);
  const Beam beam;
  const RankedSubspaces result = beam.Explain(d.dataset, lof, 0, 3);
  for (const Subspace& s : result.subspaces) EXPECT_EQ(s.size(), 3u);
}

TEST(BeamTest, GlobalBestModeMixesDimensionalities) {
  HicsGeneratorConfig config;
  config.num_points = 200;
  config.subspace_dims = {2, 2, 2};
  config.seed = 5;
  const SyntheticDataset d = GenerateHicsDataset(config);
  const Lof lof(15);
  Beam::Options options;
  options.result_mode = Beam::ResultMode::kGlobalBest;
  options.beam_width = 10;
  const Beam beam(options);
  const int p = d.dataset.outlier_indices().front();
  const RankedSubspaces result = beam.Explain(d.dataset, lof, p, 3);
  bool saw_2d = false;
  for (const Subspace& s : result.subspaces) saw_2d |= (s.size() == 2);
  EXPECT_TRUE(saw_2d);
  // The top-ranked global subspace must exhibit the point's planted
  // deviation: either the relevant 2d subspace itself or an augmentation
  // of it (the paper notes detectors often score augmentations higher
  // than the exact subspace).
  const auto& relevant = d.ground_truth.RelevantFor(p);
  bool top_contains_relevant = false;
  for (const Subspace& rel : relevant) {
    top_contains_relevant |= result.subspaces.front().ContainsAll(rel);
  }
  EXPECT_TRUE(top_contains_relevant)
      << "top " << result.subspaces.front().ToString();
}

TEST(BeamTest, ScoresSortedDescending) {
  const SyntheticDataset d = GenerateFigure1Dataset(3, 150);
  const Lof lof(15);
  const Beam beam;
  const RankedSubspaces result = beam.Explain(d.dataset, lof, 0, 2);
  for (std::size_t i = 1; i < result.scores.size(); ++i) {
    EXPECT_GE(result.scores[i - 1], result.scores[i]);
  }
}

TEST(BeamTest, RespectsMaxResults) {
  const SyntheticDataset d = GenerateFigure1Dataset(4, 150);
  const Lof lof(15);
  Beam::Options options;
  options.max_results = 2;
  const Beam beam(options);
  EXPECT_LE(beam.Explain(d.dataset, lof, 0, 2).size(), 2u);
}

TEST(BeamTest, Deterministic) {
  const SyntheticDataset d = GenerateFigure1Dataset(5, 150);
  const Lof lof(15);
  const Beam beam;
  const RankedSubspaces a = beam.Explain(d.dataset, lof, 0, 2);
  const RankedSubspaces b = beam.Explain(d.dataset, lof, 0, 2);
  EXPECT_EQ(a.subspaces, b.subspaces);
  EXPECT_EQ(a.scores, b.scores);
}

TEST(BeamTest, CountScoredSubspacesBound) {
  // Stage 1 is exhaustive; later stages bounded by width * extensions.
  EXPECT_EQ(Beam::CountScoredSubspaces(6, 2, 100), 15u);
  EXPECT_EQ(Beam::CountScoredSubspaces(6, 3, 2), 15u + 2u * 4u);
  // Figure 11 sanity: the bound grows with the explanation dimensionality.
  EXPECT_LT(Beam::CountScoredSubspaces(39, 2, 100),
            Beam::CountScoredSubspaces(39, 5, 100));
}

TEST(BeamTest, NoDuplicateSubspacesInResult) {
  const SyntheticDataset d = GenerateFigure1Dataset(6, 150);
  const Lof lof(15);
  const Beam beam;
  const RankedSubspaces result = beam.Explain(d.dataset, lof, 0, 2);
  std::vector<Subspace> sorted = result.subspaces;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(std::adjacent_find(sorted.begin(), sorted.end()), sorted.end());
}

}  // namespace
}  // namespace subex
