#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/registry.h"
#include "obs/trace.h"

namespace subex {
namespace {

// --------------------------------------------------------------------------
// Histogram bucket geometry.

TEST(HistogramTest, SmallValuesGetExactUnitBuckets) {
  for (std::uint64_t v = 0; v < Histogram::kSubBuckets; ++v) {
    EXPECT_EQ(Histogram::BucketIndex(v), v);
    EXPECT_EQ(Histogram::BucketLowerBound(v), v);
    EXPECT_EQ(Histogram::BucketWidth(v), 1u);
  }
}

TEST(HistogramTest, BucketIndexIsMonotoneAndContiguous) {
  // Every value maps into a bucket whose [lower, lower + width) range
  // contains it, and indices never decrease with the value.
  std::size_t previous = 0;
  for (std::uint64_t v = 0; v < 100000; v = v < 256 ? v + 1 : v + v / 7) {
    const std::size_t index = Histogram::BucketIndex(v);
    EXPECT_GE(index, previous);
    EXPECT_LT(index, Histogram::kNumBuckets);
    EXPECT_GE(v, Histogram::BucketLowerBound(index));
    EXPECT_LT(v, Histogram::BucketLowerBound(index) +
                     Histogram::BucketWidth(index));
    previous = index;
  }
}

TEST(HistogramTest, LargestValueFitsInLastBucket) {
  const std::uint64_t max = ~std::uint64_t{0};
  EXPECT_EQ(Histogram::BucketIndex(max), Histogram::kNumBuckets - 1);
}

TEST(HistogramTest, RelativeBucketWidthIsBounded) {
  // The log-linear scheme promises width <= lower_bound / 8 above the
  // exact range — i.e. <= 12.5% relative error.
  for (std::size_t i = Histogram::kSubBuckets; i < Histogram::kNumBuckets;
       ++i) {
    EXPECT_LE(Histogram::BucketWidth(i) * Histogram::kSubBuckets,
              Histogram::BucketLowerBound(i))
        << "bucket " << i;
  }
}

// --------------------------------------------------------------------------
// Recording and snapshots. Everything below observes recorded values, so it
// only applies when instrumentation is compiled in; under SUBEX_OBS_DISABLED
// the mutators are no-ops by design (the bucket geometry above still holds).
#ifndef SUBEX_OBS_DISABLED

TEST(HistogramTest, SnapshotCountsSumAndMax) {
  Histogram h;
  h.Record(3);
  h.Record(3);
  h.Record(1000);
  const HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, 3u);
  EXPECT_EQ(snap.sum, 1006u);
  EXPECT_EQ(snap.max, 1000u);
  EXPECT_DOUBLE_EQ(snap.MeanNs(), 1006.0 / 3.0);
}

TEST(HistogramTest, QuantilesOfExactValuesAreExact) {
  Histogram h;
  for (std::uint64_t v = 0; v < Histogram::kSubBuckets; ++v) h.Record(v);
  const HistogramSnapshot snap = h.snapshot();
  // 8 samples 0..7: the median (rank 4) is 3, p99 (rank 8) is 7.
  EXPECT_DOUBLE_EQ(snap.ValueAtQuantile(0.50), 3.0);
  EXPECT_DOUBLE_EQ(snap.ValueAtQuantile(0.99), 7.0);
  EXPECT_DOUBLE_EQ(snap.ValueAtQuantile(1.0), 7.0);
}

TEST(HistogramTest, QuantilesOfLargeValuesWithinBucketError) {
  Histogram h;
  constexpr std::uint64_t kValue = 1234567;  // ~1.23 ms in ns.
  for (int i = 0; i < 100; ++i) h.Record(kValue);
  const HistogramSnapshot snap = h.snapshot();
  for (double q : {0.5, 0.9, 0.99}) {
    const double estimate = snap.ValueAtQuantile(q);
    EXPECT_NEAR(estimate, static_cast<double>(kValue), kValue * 0.125)
        << "q=" << q;
  }
  // The observed max is tracked exactly, not bucketed.
  EXPECT_EQ(snap.max, kValue);
}

TEST(HistogramTest, EmptySnapshotReportsZeros) {
  const HistogramSnapshot snap = Histogram().snapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_DOUBLE_EQ(snap.ValueAtQuantile(0.5), 0.0);
  EXPECT_NE(snap.ToJson().find("\"count\":0"), std::string::npos);
}

TEST(HistogramTest, MergeAccumulatesSnapshots) {
  Histogram a;
  Histogram b;
  a.Record(5);
  a.Record(100);
  b.Record(7);
  b.Record(200000);
  HistogramSnapshot merged = a.snapshot();
  merged.Merge(b.snapshot());
  EXPECT_EQ(merged.count, 4u);
  EXPECT_EQ(merged.sum, 5u + 100u + 7u + 200000u);
  EXPECT_EQ(merged.max, 200000u);
  // Merging an empty snapshot is a no-op.
  merged.Merge(HistogramSnapshot{});
  EXPECT_EQ(merged.count, 4u);
}

TEST(HistogramTest, ResetZeroesEverything) {
  Histogram h;
  h.Record(42);
  h.Reset();
  const HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_EQ(snap.sum, 0u);
  EXPECT_EQ(snap.max, 0u);
}

TEST(HistogramTest, ToJsonCarriesPercentileKeys) {
  Histogram h;
  h.Record(2000000);  // 2 ms.
  const std::string json = h.snapshot().ToJson();
  EXPECT_NE(json.find("\"count\":1"), std::string::npos);
  EXPECT_NE(json.find("\"p50_ms\""), std::string::npos);
  EXPECT_NE(json.find("\"p90_ms\""), std::string::npos);
  EXPECT_NE(json.find("\"p99_ms\""), std::string::npos);
  EXPECT_NE(json.find("\"max_ms\":2"), std::string::npos);
}

// The TSan target: many threads hammering one histogram (and counter)
// concurrently must lose no events and trip no data-race reports.
TEST(HistogramTest, ConcurrentRecordingLosesNothing) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  Histogram histogram;
  Counter counter;
  Gauge gauge;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        histogram.Record(static_cast<std::uint64_t>(t * kPerThread + i));
        counter.Increment();
        gauge.Add(t % 2 == 0 ? 1 : -1);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  const HistogramSnapshot snap = histogram.snapshot();
  EXPECT_EQ(snap.count,
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(snap.max,
            static_cast<std::uint64_t>(kThreads) * kPerThread - 1);
  EXPECT_EQ(counter.value(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(gauge.value(), 0);
}

// --------------------------------------------------------------------------
// Registry.

TEST(MetricsRegistryTest, GetReturnsStableInstruments) {
  MetricsRegistry registry;
  Counter& c1 = registry.GetCounter("requests");
  c1.Increment(3);
  // Registering more instruments must not move existing ones.
  for (int i = 0; i < 100; ++i) {
    registry.GetCounter("filler." + std::to_string(i));
  }
  Counter& c2 = registry.GetCounter("requests");
  EXPECT_EQ(&c1, &c2);
  EXPECT_EQ(c2.value(), 3u);
}

TEST(MetricsRegistryTest, ToJsonGroupsByKindSorted) {
  MetricsRegistry registry;
  registry.GetCounter("b.count").Increment(2);
  registry.GetCounter("a.count").Increment(1);
  registry.GetGauge("depth").Set(-4);
  registry.GetHistogram("latency").Record(1000);
  const std::string json = registry.ToJson();
  EXPECT_NE(json.find("\"counters\":{\"a.count\":1,\"b.count\":2}"),
            std::string::npos);
  EXPECT_NE(json.find("\"gauges\":{\"depth\":-4}"), std::string::npos);
  EXPECT_NE(json.find("\"histograms\":{\"latency\":{\"count\":1"),
            std::string::npos);
}

TEST(MetricsRegistryTest, ResetZeroesButKeepsRegistrations) {
  MetricsRegistry registry;
  Counter& counter = registry.GetCounter("n");
  Histogram& histogram = registry.GetHistogram("h");
  counter.Increment(5);
  histogram.Record(9);
  registry.Reset();
  EXPECT_EQ(counter.value(), 0u);  // Same instrument, zeroed in place.
  EXPECT_EQ(histogram.snapshot().count, 0u);
  EXPECT_EQ(&registry.GetCounter("n"), &counter);
}

TEST(MetricsRegistryTest, ConcurrentGetAndRecordIsSafe) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Threads race registration of overlapping names with recording.
      for (int i = 0; i < 500; ++i) {
        registry.GetCounter("shared." + std::to_string(i % 10)).Increment();
        registry.GetHistogram("hist." + std::to_string(t % 3))
            .Record(static_cast<std::uint64_t>(i));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  std::uint64_t total = 0;
  for (int i = 0; i < 10; ++i) {
    total += registry.GetCounter("shared." + std::to_string(i)).value();
  }
  EXPECT_EQ(total, static_cast<std::uint64_t>(kThreads) * 500);
}

TEST(MetricsRegistryTest, GlobalIsASingleton) {
  EXPECT_EQ(&MetricsRegistry::Global(), &MetricsRegistry::Global());
}

// --------------------------------------------------------------------------
// Trace spans.

TEST(TraceSpanTest, RecordsIntoHistogramOnDestruction) {
  Histogram histogram;
  { TraceSpan span(&histogram); }
  EXPECT_EQ(histogram.snapshot().count, 1u);
}

TEST(TraceSpanTest, StopIsExplicitAndIdempotent) {
  Histogram histogram;
  TraceSpan span(&histogram);
  span.Stop();
  EXPECT_EQ(histogram.snapshot().count, 1u);
  EXPECT_EQ(span.Stop(), 0u);                   // Second stop: no-op.
  EXPECT_EQ(histogram.snapshot().count, 1u);    // Destructor won't re-record.
}

TEST(TraceSpanTest, NullTargetsDisarmTheSpan) {
  TraceSpan span(nullptr);  // No histogram, no trace: nothing to do.
  EXPECT_EQ(span.Stop(), 0u);
}

TEST(TraceSpanTest, FeedsTraceSpansInOrder) {
  Trace trace;
  Histogram histogram;
  { TraceSpan span(&histogram, &trace, "decode"); }
  { TraceSpan span(nullptr, &trace, "compute"); }
  ASSERT_EQ(trace.spans().size(), 2u);
  EXPECT_EQ(trace.spans()[0].name, "decode");
  EXPECT_EQ(trace.spans()[1].name, "compute");
  // Both are roots (opened and closed sequentially, never nested).
  EXPECT_EQ(trace.spans()[0].parent_id, 0u);
  EXPECT_EQ(trace.spans()[1].parent_id, 0u);
  EXPECT_EQ(histogram.snapshot().count, 1u);
  EXPECT_GE(trace.TotalNs(), trace.spans()[0].duration_ns);
}

TEST(TraceSpanTest, NestedSpansGetParentIds) {
  Trace trace;
  {
    TraceSpan outer(nullptr, &trace, "request");
    TraceSpan inner(nullptr, &trace, "score");
  }  // inner closes first (reverse declaration order), then outer.
  ASSERT_EQ(trace.spans().size(), 2u);
  const Trace::Span& outer = trace.spans()[0];
  const Trace::Span& inner = trace.spans()[1];
  EXPECT_EQ(outer.name, "request");
  EXPECT_EQ(outer.parent_id, 0u);
  EXPECT_NE(outer.span_id, 0u);
  EXPECT_EQ(inner.parent_id, outer.span_id);
  // TotalNs counts roots only — the child is inside its parent.
  EXPECT_EQ(trace.TotalNs(), outer.duration_ns);
}

TEST(TraceSpanTest, TraceToJsonListsSpans) {
  Trace trace;
  trace.set_trace_id(0xabcdef);
  trace.Record("queue_wait", 1000, 1500000);  // 1.5 ms.
  trace.Record("score", 2000, 250000);
  const std::string json = trace.ToJson();
  EXPECT_NE(json.find("\"trace_id\":\"0x0000000000abcdef\""),
            std::string::npos);
  EXPECT_NE(json.find("\"queue_wait\""), std::string::npos);
  EXPECT_NE(json.find("\"dur_ms\":1.5"), std::string::npos);
  EXPECT_NE(json.find("\"dur_ms\":0.25"), std::string::npos);
  trace.Clear();
  EXPECT_TRUE(trace.spans().empty());
  EXPECT_EQ(trace.trace_id(), 0u);  // Clear resets the id for pooling.
}

TEST(TraceSpanTest, CurrentTraceFollowsContextScopes) {
  EXPECT_EQ(CurrentTrace(), nullptr);
  Trace trace;
  {
    TraceContext context(&trace);
    EXPECT_EQ(CurrentTrace(), &trace);
    // A named span with no explicit trace attaches to the current one.
    { TraceSpan span(nullptr, nullptr, "detect.score"); }
    ASSERT_EQ(trace.spans().size(), 1u);
    EXPECT_EQ(trace.spans()[0].name, "detect.score");
  }
  EXPECT_EQ(CurrentTrace(), nullptr);  // Restored on scope exit.
}

TEST(TraceSpanTest, IdGeneratorsNeverReturnZeroOrRepeat) {
  const std::uint64_t a = NextTraceId();
  const std::uint64_t b = NextTraceId();
  EXPECT_NE(a, 0u);
  EXPECT_NE(b, 0u);
  EXPECT_NE(a, b);
  EXPECT_NE(NextSpanId(), NextSpanId());
}

// --------------------------------------------------------------------------
// Snapshot extensions (p99.9 + count-weighted mean).

TEST(HistogramTest, SnapshotCarriesP999AndWeightedMean) {
  Histogram h;
  for (int i = 0; i < 100; ++i) h.Record(1000);
  h.Record(50000000);  // One 50 ms outlier among a hundred 1 us samples.
  const HistogramSnapshot snap = h.snapshot();
  // Rank ceil(0.999 * 101) = 101 — the outlier's bucket; p50 stays at the
  // bulk. Both within the 12.5% bucket error.
  EXPECT_NEAR(snap.ValueAtQuantile(0.999), 50000000.0, 50000000.0 * 0.125);
  EXPECT_NEAR(snap.ValueAtQuantile(0.5), 1000.0, 1000.0 * 0.125);
  // The weighted mean approximates the true mean within bucket error.
  const double true_mean = (100.0 * 1000.0 + 50000000.0) / 101.0;
  EXPECT_NEAR(snap.WeightedMeanNs(), true_mean, true_mean * 0.125);
  const std::string json = snap.ToJson();
  EXPECT_NE(json.find("\"p999_ms\""), std::string::npos);
  EXPECT_NE(json.find("\"wmean_ms\""), std::string::npos);
}

TEST(HistogramTest, WeightedMeanOfEmptySnapshotIsZero) {
  EXPECT_DOUBLE_EQ(Histogram().snapshot().WeightedMeanNs(), 0.0);
}

#endif  // SUBEX_OBS_DISABLED

}  // namespace
}  // namespace subex
