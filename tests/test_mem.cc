#include "mem/eviction_manager.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "mem/dlist.h"
#include "serve/score_cache.h"

namespace subex {
namespace {

// ---------------------------------------------------------------------------
// DList

struct Item {
  DListNode node;
  int id = 0;
};

Item MakeItem(int id) {
  Item item;
  item.id = id;
  return item;
}

TEST(DListTest, StartsEmpty) {
  DList list;
  EXPECT_TRUE(list.empty());
  EXPECT_EQ(list.size(), 0u);
  EXPECT_EQ(list.Tail(), nullptr);
}

TEST(DListTest, PushFrontOrdersMostRecentFirst) {
  DList list;
  Item a = MakeItem(1);
  Item b = MakeItem(2);
  Item c = MakeItem(3);
  a.node.item = &a;
  b.node.item = &b;
  c.node.item = &c;
  list.PushFront(&a.node);
  list.PushFront(&b.node);
  list.PushFront(&c.node);
  EXPECT_EQ(list.size(), 3u);
  // Tail is the least recently pushed.
  EXPECT_EQ(static_cast<Item*>(list.Tail()->item)->id, 1);
}

TEST(DListTest, MoveToFrontReordersTail) {
  DList list;
  Item a = MakeItem(1);
  Item b = MakeItem(2);
  a.node.item = &a;
  b.node.item = &b;
  list.PushFront(&a.node);
  list.PushFront(&b.node);
  EXPECT_EQ(static_cast<Item*>(list.Tail()->item)->id, 1);
  list.MoveToFront(&a.node);
  EXPECT_EQ(static_cast<Item*>(list.Tail()->item)->id, 2);
}

TEST(DListTest, RemoveUnlinksAndIsIdempotent) {
  DList list;
  Item a = MakeItem(1);
  a.node.item = &a;
  list.PushFront(&a.node);
  EXPECT_TRUE(a.node.linked());
  list.Remove(&a.node);
  EXPECT_FALSE(a.node.linked());
  EXPECT_TRUE(list.empty());
  list.Remove(&a.node);  // No-op on an unlinked node.
  EXPECT_TRUE(list.empty());
}

TEST(DListTest, TowardFrontWalksTailToHead) {
  DList list;
  Item a = MakeItem(1);
  Item b = MakeItem(2);
  a.node.item = &a;
  b.node.item = &b;
  list.PushFront(&a.node);
  list.PushFront(&b.node);
  DListNode* tail = list.Tail();
  ASSERT_NE(tail, nullptr);
  DListNode* next = list.TowardFront(tail);
  ASSERT_NE(next, nullptr);
  EXPECT_EQ(static_cast<Item*>(next->item)->id, 2);
  EXPECT_EQ(list.TowardFront(next), nullptr);
}

// ---------------------------------------------------------------------------
// EvictionManager with a scripted reclaimer

/// Fake cache: a pile of equally sized droppable entries.
class FakeCache : public MemReclaimer {
 public:
  FakeCache(EvictionManager* manager, std::string name, std::size_t quota)
      : manager_(manager) {
    id_ = manager->Register(std::move(name), quota, this);
  }
  ~FakeCache() override { manager_->Unregister(id_); }

  EvictionManager::CacheId id() const { return id_; }

  /// Tries to add one entry of `bytes`; mirrors the governed-cache protocol.
  bool Add(std::size_t bytes, bool overcommit = false) {
    if (!manager_->Reserve(id_, bytes, overcommit)) return false;
    std::lock_guard<std::mutex> lock(mutex_);
    entries_.push_back({bytes, manager_->NextTick()});
    return true;
  }

  std::size_t entry_count() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
  }

  std::uint64_t OldestEvictableTick() override {
    std::lock_guard<std::mutex> lock(mutex_);
    if (entries_.empty()) return std::numeric_limits<std::uint64_t>::max();
    return entries_.front().tick;  // FIFO = LRU for this fake.
  }

  std::size_t ReclaimBytes(std::size_t target_bytes) override {
    std::size_t freed = 0;
    std::uint64_t dropped = 0;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      while (freed < target_bytes && !entries_.empty()) {
        freed += entries_.front().bytes;
        entries_.erase(entries_.begin());
        ++dropped;
      }
    }
    if (freed > 0) manager_->ReleaseEvicted(id_, freed, dropped);
    return freed;
  }

 private:
  struct Entry {
    std::size_t bytes;
    std::uint64_t tick;
  };
  EvictionManager* manager_;
  EvictionManager::CacheId id_ = 0;
  mutable std::mutex mutex_;
  std::vector<Entry> entries_;
};

EvictionManager::Options SmallBudget(std::size_t bytes) {
  EvictionManager::Options options;
  options.budget_bytes = bytes;
  return options;
}

TEST(EvictionManagerTest, ReserveWithinBudgetSucceeds) {
  EvictionManager manager(SmallBudget(1000));
  FakeCache cache(&manager, "a", 0);
  EXPECT_TRUE(cache.Add(400));
  EXPECT_TRUE(cache.Add(400));
  EXPECT_EQ(manager.used_bytes(), 800u);
}

TEST(EvictionManagerTest, PressureEvictsOldEntriesInsteadOfFailing) {
  EvictionManager manager(SmallBudget(1000));
  FakeCache cache(&manager, "a", 0);
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(cache.Add(100));
  // Budget full: the next reserve must evict one old entry, not fail.
  EXPECT_TRUE(cache.Add(100));
  EXPECT_EQ(manager.used_bytes(), 1000u);
  EXPECT_EQ(cache.entry_count(), 10u);
  EXPECT_GE(manager.snapshot().reclaim_passes, 1u);
}

TEST(EvictionManagerTest, ReserveFailsWhenNothingIsEvictable) {
  EvictionManager manager(SmallBudget(100));
  // A reclaimer-less cache cannot shed load.
  const auto id = manager.Register("pinned", 0, nullptr);
  EXPECT_TRUE(manager.Reserve(id, 100));
  EXPECT_FALSE(manager.Reserve(id, 50));
  // The failed reservation must be rolled back.
  EXPECT_EQ(manager.used_bytes(), 100u);
  EXPECT_EQ(manager.snapshot().reserve_failures, 1u);
  manager.Unregister(id);
}

TEST(EvictionManagerTest, OvercommitNeverFails) {
  EvictionManager manager(SmallBudget(100));
  const auto id = manager.Register("pinned", 0, nullptr);
  EXPECT_TRUE(manager.Reserve(id, 100));
  EXPECT_TRUE(manager.Reserve(id, 500, /*allow_overcommit=*/true));
  EXPECT_EQ(manager.used_bytes(), 600u);
  EXPECT_EQ(manager.snapshot().overcommits, 1u);
  manager.Unregister(id);
}

TEST(EvictionManagerTest, QuotaBindsBeforeGlobalBudget) {
  EvictionManager manager(SmallBudget(1000));
  FakeCache small(&manager, "small", 200);
  // The global budget has plenty of room; the quota forces self-reclaim.
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(small.Add(100));
  EXPECT_LE(manager.used_bytes(), 200u);
  EXPECT_EQ(small.entry_count(), 2u);
}

TEST(EvictionManagerTest, GlobalPressureEvictsTheGloballyOldestCache) {
  EvictionManager manager(SmallBudget(1000));
  FakeCache old_cache(&manager, "old", 0);
  FakeCache new_cache(&manager, "new", 0);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(old_cache.Add(100));
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(new_cache.Add(100));
  // Budget full; the next reserve should reclaim from `old` (oldest ticks),
  // not from the inserting cache.
  EXPECT_TRUE(new_cache.Add(100));
  EXPECT_EQ(old_cache.entry_count(), 4u);
  EXPECT_EQ(new_cache.entry_count(), 6u);
}

TEST(EvictionManagerTest, ReleaseUncharges) {
  EvictionManager manager(SmallBudget(1000));
  const auto id = manager.Register("a", 0, nullptr);
  EXPECT_TRUE(manager.Reserve(id, 600));
  manager.Release(id, 600);
  EXPECT_EQ(manager.used_bytes(), 0u);
  manager.Unregister(id);
}

TEST(EvictionManagerTest, ShrinkingBudgetTriggersImmediateReclaim) {
  EvictionManager manager(SmallBudget(1000));
  FakeCache cache(&manager, "a", 0);
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(cache.Add(100));
  manager.SetBudget(300);
  EXPECT_LE(manager.used_bytes(), 300u);
  EXPECT_LE(cache.entry_count(), 3u);
  EXPECT_EQ(manager.budget_bytes(), 300u);
}

TEST(EvictionManagerTest, UnregisterUnchargesResidue) {
  EvictionManager manager(SmallBudget(1000));
  {
    FakeCache cache(&manager, "a", 0);
    EXPECT_TRUE(cache.Add(700));
    EXPECT_EQ(manager.used_bytes(), 700u);
  }
  EXPECT_EQ(manager.used_bytes(), 0u);
  EXPECT_TRUE(manager.snapshot().caches.empty());
}

TEST(EvictionManagerTest, PinAccountingFlowsIntoSnapshot) {
  EvictionManager manager(SmallBudget(1000));
  const auto id = manager.Register("pins", 0, nullptr);
  EXPECT_TRUE(manager.Reserve(id, 500));
  manager.NotePin(id, 200);
  manager.NotePin(id, 100);
  EvictionManagerSnapshot snap = manager.snapshot();
  ASSERT_EQ(snap.caches.size(), 1u);
  EXPECT_EQ(snap.caches[0].pinned_bytes, 300u);
  EXPECT_EQ(snap.caches[0].pinned_count, 2u);
  manager.NoteUnpin(id, 200);
  snap = manager.snapshot();
  EXPECT_EQ(snap.caches[0].pinned_bytes, 100u);
  EXPECT_EQ(snap.caches[0].pinned_count, 1u);
  manager.Unregister(id);
}

TEST(EvictionManagerTest, SnapshotJsonHasTheStatsShape) {
  EvictionManager manager(SmallBudget(64));
  const auto id = manager.Register("c", 32, nullptr);
  EXPECT_TRUE(manager.Reserve(id, 16));
  const std::string json = manager.snapshot().ToJson();
  EXPECT_NE(json.find("\"budget_bytes\":64"), std::string::npos);
  EXPECT_NE(json.find("\"used_bytes\":16"), std::string::npos);
  EXPECT_NE(json.find("\"caches\":{"), std::string::npos);
  EXPECT_NE(json.find("\"c\":{"), std::string::npos);
  EXPECT_NE(json.find("\"quota_bytes\":32"), std::string::npos);
  manager.Unregister(id);
}

// ---------------------------------------------------------------------------
// Governed ScoreCache pairs

ScoreVectorPtr Vec(std::size_t doubles) {
  return std::make_shared<const std::vector<double>>(doubles, 1.0);
}

ScoreKey CacheKey(int i, const char* detector = "LOF") {
  return ScoreKey{detector, Subspace({i})};
}

TEST(GovernedScoreCacheTest, InsertsAreChargedToTheManager) {
  EvictionManager manager(SmallBudget(1 << 20));
  ScoreCacheOptions options;
  options.manager = &manager;
  options.num_shards = 2;
  options.max_bytes = 1 << 20;
  ScoreCache cache(options);
  cache.Put(CacheKey(0), Vec(100));
  EXPECT_EQ(manager.used_bytes(), cache.bytes());
  cache.Clear();
  EXPECT_EQ(manager.used_bytes(), 0u);
}

TEST(GovernedScoreCacheTest, PressureFromOneCacheEvictsTheOther) {
  // Two caches under one tight budget: filling the second must drain the
  // first (its entries are older) rather than fail.
  EvictionManager manager(SmallBudget(64 << 10));
  ScoreCacheOptions options;
  options.manager = &manager;
  options.num_shards = 1;
  options.max_bytes = 64 << 10;
  options.name = "first";
  ScoreCache first(options);
  options.name = "second";
  ScoreCache second(options);

  for (int i = 0; i < 8; ++i) first.Put(CacheKey(i), Vec(512));
  const std::size_t first_before = first.size();
  ASSERT_GT(first_before, 0u);
  for (int i = 0; i < 8; ++i) second.Put(CacheKey(i, "iForest"), Vec(512));
  EXPECT_GT(second.size(), 0u);
  EXPECT_LT(first.size(), first_before);
  EXPECT_LE(manager.used_bytes(), manager.budget_bytes());

  const EvictionManagerSnapshot snap = manager.snapshot();
  ASSERT_EQ(snap.caches.size(), 2u);
  std::uint64_t evictions = 0;
  for (const auto& c : snap.caches) evictions += c.evictions;
  EXPECT_GT(evictions, 0u);
}

TEST(GovernedScoreCacheTest, ManagerBudgetDropsInsertsWhenNothingEvictable) {
  // Budget far below one entry and no other cache to raid: Put must drop
  // the value rather than blow the budget.
  EvictionManager manager(SmallBudget(64));
  ScoreCacheOptions options;
  options.manager = &manager;
  options.num_shards = 1;
  options.max_bytes = 1 << 20;
  ScoreCache cache(options);
  cache.Put(CacheKey(0), Vec(4096));
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(manager.used_bytes(), 0u);
}

// ---------------------------------------------------------------------------
// Concurrency (exercised under TSan in CI)

TEST(MemConcurrencyTest, ConcurrentReservesStayWithinBudgetPlusOvercommits) {
  EvictionManager manager(SmallBudget(10000));
  FakeCache a(&manager, "a", 0);
  FakeCache b(&manager, "b", 0);
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      FakeCache& cache = (t % 2 == 0) ? a : b;
      for (int i = 0; i < 200; ++i) {
        if (!cache.Add(100)) failures.fetch_add(1);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  // No overcommit requested, so the budget is a hard ceiling.
  EXPECT_LE(manager.used_bytes(), 10000u);
  const EvictionManagerSnapshot snap = manager.snapshot();
  EXPECT_EQ(snap.overcommits, 0u);
  EXPECT_EQ(snap.reserve_calls, 800u);
}

TEST(MemConcurrencyTest, GovernedCachesUnderConcurrentLoad) {
  EvictionManager manager(SmallBudget(256 << 10));
  ScoreCacheOptions options;
  options.manager = &manager;
  options.num_shards = 4;
  options.max_bytes = 256 << 10;
  options.name = "left";
  ScoreCache left(options);
  options.name = "right";
  ScoreCache right(options);

  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      ScoreCache& cache = (t % 2 == 0) ? left : right;
      for (int i = 0; i < 300; ++i) {
        const ScoreKey key = CacheKey(i % 64, t % 2 == 0 ? "LOF" : "kNN");
        if (i % 3 == 0) {
          cache.Get(key);
        } else {
          cache.Put(key, Vec(256));
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_LE(manager.used_bytes(), manager.budget_bytes());
  EXPECT_EQ(manager.used_bytes(), left.bytes() + right.bytes());
}

TEST(MemConcurrencyTest, SetBudgetRacesWithInserts) {
  EvictionManager manager(SmallBudget(128 << 10));
  FakeCache cache(&manager, "a", 0);
  std::thread resizer([&] {
    for (int i = 0; i < 50; ++i) {
      manager.SetBudget((i % 2 == 0) ? (16 << 10) : (128 << 10));
    }
  });
  for (int i = 0; i < 500; ++i) cache.Add(512);
  resizer.join();
  manager.SetBudget(16 << 10);
  EXPECT_LE(manager.used_bytes(), 16u << 10);
}

}  // namespace
}  // namespace subex
