#include "detect/knn.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"

namespace subex {
namespace {

Dataset LineDataset() {
  // Points at x = 0, 1, 2, 10 on a line (second feature is a decoy).
  Matrix m = {{0.0, 100.0}, {1.0, -50.0}, {2.0, 0.0}, {10.0, 7.0}};
  return Dataset(std::move(m));
}

TEST(KnnTest, NearestNeighborOnLine) {
  const Dataset d = LineDataset();
  const KnnTable knn = ComputeKnn(d, Subspace({0}), 1);
  EXPECT_EQ(knn.neighbors[0][0].index, 1);
  EXPECT_DOUBLE_EQ(knn.neighbors[0][0].distance, 1.0);
  EXPECT_EQ(knn.neighbors[3][0].index, 2);
  EXPECT_DOUBLE_EQ(knn.neighbors[3][0].distance, 8.0);
}

TEST(KnnTest, ExcludesSelf) {
  const Dataset d = LineDataset();
  const KnnTable knn = ComputeKnn(d, Subspace({0}), 3);
  for (std::size_t p = 0; p < d.num_points(); ++p) {
    for (const Neighbor& nb : knn.neighbors[p]) {
      EXPECT_NE(nb.index, static_cast<int>(p));
    }
  }
}

TEST(KnnTest, DistancesAscending) {
  Rng rng(4);
  Matrix m(60, 3);
  for (std::size_t p = 0; p < 60; ++p) {
    for (std::size_t f = 0; f < 3; ++f) m(p, f) = rng.Uniform();
  }
  const Dataset d(std::move(m));
  const KnnTable knn = ComputeKnn(d, Subspace(), 10);
  for (const auto& nbs : knn.neighbors) {
    ASSERT_EQ(nbs.size(), 10u);
    for (std::size_t i = 1; i < nbs.size(); ++i) {
      EXPECT_GE(nbs[i].distance, nbs[i - 1].distance);
    }
  }
}

TEST(KnnTest, KClampedToNMinusOne) {
  const Dataset d = LineDataset();
  const KnnTable knn = ComputeKnn(d, Subspace({0}), 100);
  EXPECT_EQ(knn.k, 3);
  EXPECT_EQ(knn.neighbors[0].size(), 3u);
}

TEST(KnnTest, KDistanceIsLastNeighbor) {
  const Dataset d = LineDataset();
  const KnnTable knn = ComputeKnn(d, Subspace({0}), 2);
  EXPECT_DOUBLE_EQ(knn.KDistance(0), 2.0);  // Neighbors of 0: x=1, x=2.
}

TEST(KnnTest, SubspaceRestrictsDistance) {
  const Dataset d = LineDataset();
  // In feature 1, the nearest neighbor of point 2 (value 0) is point 3
  // (value 7), not its feature-0 neighbors.
  const KnnTable knn = ComputeKnn(d, Subspace({1}), 1);
  EXPECT_EQ(knn.neighbors[2][0].index, 3);
}

TEST(KnnTest, EmptySubspaceMeansFullSpace) {
  const Dataset d = LineDataset();
  const KnnTable full = ComputeKnn(d, Subspace(), 2);
  const KnnTable both = ComputeKnn(d, Subspace({0, 1}), 2);
  for (std::size_t p = 0; p < d.num_points(); ++p) {
    for (int i = 0; i < 2; ++i) {
      EXPECT_EQ(full.neighbors[p][i].index, both.neighbors[p][i].index);
      EXPECT_DOUBLE_EQ(full.neighbors[p][i].distance,
                       both.neighbors[p][i].distance);
    }
  }
}

TEST(KnnTest, TieBrokenByIndex) {
  Matrix m = {{0.0}, {1.0}, {-1.0}, {5.0}};
  const Dataset d(std::move(m));
  const KnnTable knn = ComputeKnn(d, Subspace({0}), 1);
  // Points 1 and 2 are both at distance 1 from point 0; index 1 wins.
  EXPECT_EQ(knn.neighbors[0][0].index, 1);
}

TEST(KnnTest, DuplicatePointsZeroDistance) {
  Matrix m = {{2.0, 2.0}, {2.0, 2.0}, {3.0, 3.0}};
  const Dataset d(std::move(m));
  const KnnTable knn = ComputeKnn(d, Subspace(), 1);
  EXPECT_EQ(knn.neighbors[0][0].index, 1);
  EXPECT_DOUBLE_EQ(knn.neighbors[0][0].distance, 0.0);
}

}  // namespace
}  // namespace subex
