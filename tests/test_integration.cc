// End-to-end pipeline tests: detector x explainer grids running on planted
// ground truth, verifying the qualitative behaviours the paper reports.

#include <gtest/gtest.h>

#include "core/ground_truth_builder.h"
#include "core/pipeline.h"
#include "core/testbed.h"
#include "data/generators.h"
#include "detect/detector.h"
#include "explain/beam.h"
#include "explain/hics.h"
#include "explain/lookout.h"
#include "explain/refout.h"

namespace subex {
namespace {

// A small subspace-outlier dataset shared by the integration tests.
const SyntheticDataset& SubspaceData() {
  static const SyntheticDataset* const kData = [] {
    HicsGeneratorConfig config;
    config.num_points = 300;
    config.subspace_dims = {2, 3, 2};
    config.seed = 123;
    return new SyntheticDataset(GenerateHicsDataset(config));
  }();
  return *kData;
}

// Every (detector, point-explainer) pair must recover the planted 2d
// subspaces on an easy subspace-outlier dataset with decent MAP.
class PointGridTest
    : public ::testing::TestWithParam<
          std::tuple<DetectorKind, PointExplainerKind>> {};

TEST_P(PointGridTest, RecoversEasyTwoDimensionalExplanations) {
  const auto [detector_kind, explainer_kind] = GetParam();
  TestbedProfile profile = TestbedProfile::Quick();
  profile.beam_width = 20;
  profile.refout_pool_size = 60;
  profile.iforest_trees = 50;
  profile.iforest_repetitions = 2;
  const auto detector = MakeTestbedDetector(detector_kind, profile);
  const auto explainer =
      MakeTestbedPointExplainer(explainer_kind, profile);

  const SyntheticDataset& d = SubspaceData();
  PipelineOptions options;
  options.max_points = 6;
  const PipelineResult result = RunPointExplanationPipeline(
      d.dataset, d.ground_truth, *detector, *explainer, 2, options);
  EXPECT_EQ(result.num_points, 6);
  EXPECT_GT(result.map, 0.5) << result.detector_name << " + "
                             << result.explainer_name;
  EXPECT_GT(result.mean_recall, 0.5);
}

INSTANTIATE_TEST_SUITE_P(
    AllPairs, PointGridTest,
    ::testing::Combine(::testing::ValuesIn(AllDetectorKinds()),
                       ::testing::Values(PointExplainerKind::kBeam,
                                         PointExplainerKind::kRefOut)),
    [](const auto& info) {
      return std::string(DetectorKindName(std::get<0>(info.param))) + "_" +
             PointExplainerKindName(std::get<1>(info.param));
    });

// Every (detector, summarizer) pair must cover the planted 2d subspaces.
class SummaryGridTest
    : public ::testing::TestWithParam<
          std::tuple<DetectorKind, SummarizerKind>> {};

TEST_P(SummaryGridTest, CoversEasyTwoDimensionalSummaries) {
  const auto [detector_kind, summarizer_kind] = GetParam();
  TestbedProfile profile = TestbedProfile::Quick();
  profile.hics_candidate_cutoff = 50;
  profile.hics_mc_iterations = 30;
  profile.iforest_trees = 50;
  profile.iforest_repetitions = 2;
  const auto detector = MakeTestbedDetector(detector_kind, profile);
  const auto summarizer = MakeTestbedSummarizer(summarizer_kind, profile);

  const SyntheticDataset& d = SubspaceData();
  const PipelineResult result = RunSummarizationPipeline(
      d.dataset, d.ground_truth, *detector, *summarizer, 2);
  EXPECT_GT(result.num_points, 0);
  EXPECT_GT(result.mean_recall, 0.5)
      << result.detector_name << " + " << result.explainer_name;
}

INSTANTIATE_TEST_SUITE_P(
    AllPairs, SummaryGridTest,
    ::testing::Combine(::testing::ValuesIn(AllDetectorKinds()),
                       ::testing::Values(SummarizerKind::kLookOut,
                                         SummarizerKind::kHics)),
    [](const auto& info) {
      return std::string(DetectorKindName(std::get<0>(info.param))) + "_" +
             SummarizerKindName(std::get<1>(info.param));
    });

// Qualitative shape of §4.1: on *full-space* outliers, Beam+LOF is highly
// effective while RefOut collapses (the random-projection discrepancy
// cannot single out features when every feature matters).
TEST(PaperShapeTest, FullSpaceOutliersBeamBeatsRefOut) {
  FullSpaceGeneratorConfig config;
  config.num_points = 150;
  config.num_features = 12;
  config.num_outliers = 15;
  config.seed = 9;
  const SyntheticDataset generated = GenerateFullSpaceDataset(config);
  const auto lof = MakeDetector(DetectorKind::kLof);
  GroundTruthBuilderOptions gt_options;
  gt_options.min_dim = 2;
  gt_options.max_dim = 2;
  const GroundTruth gt = BuildGroundTruthByExhaustiveSearch(
      generated.dataset, *lof, gt_options);

  Beam::Options beam_options;
  beam_options.beam_width = 20;
  const Beam beam(beam_options);
  RefOut::Options refout_options;
  refout_options.pool_size = 60;
  refout_options.beam_width = 20;
  const RefOut refout(refout_options);
  PipelineOptions options;
  options.max_points = 8;

  const PipelineResult beam_result = RunPointExplanationPipeline(
      generated.dataset, gt, *lof, beam, 2, options);
  const PipelineResult refout_result = RunPointExplanationPipeline(
      generated.dataset, gt, *lof, refout, 2, options);
  EXPECT_GT(beam_result.map, 0.8);
  EXPECT_GT(beam_result.map, refout_result.map + 0.2);
}

// Qualitative shape of §4.2: HiCS collapses on full-space outliers (no
// correlation signal singles out the relevant subspaces), while LookOut
// with LOF stays effective in recall terms.
TEST(PaperShapeTest, FullSpaceOutliersLookOutBeatsHics) {
  FullSpaceGeneratorConfig config;
  config.num_points = 150;
  config.num_features = 10;
  config.num_outliers = 15;
  config.seed = 11;
  const SyntheticDataset generated = GenerateFullSpaceDataset(config);
  const auto lof = MakeDetector(DetectorKind::kLof);
  GroundTruthBuilderOptions gt_options;
  gt_options.min_dim = 2;
  gt_options.max_dim = 2;
  const GroundTruth gt = BuildGroundTruthByExhaustiveSearch(
      generated.dataset, *lof, gt_options);

  LookOut::Options lookout_options;
  lookout_options.budget = 45;  // All candidates affordable: C(10,2) = 45.
  const LookOut lookout(lookout_options);
  Hics::Options hics_options;
  hics_options.candidate_cutoff = 45;
  hics_options.mc_iterations = 30;
  hics_options.max_results = 10;  // Forces HiCS to commit to few subspaces.
  const Hics hics(hics_options);

  const PipelineResult lookout_result = RunSummarizationPipeline(
      generated.dataset, gt, *lof, lookout, 2);
  const PipelineResult hics_result = RunSummarizationPipeline(
      generated.dataset, gt, *lof, hics, 2);
  EXPECT_GT(lookout_result.mean_recall, hics_result.mean_recall - 1e-9);
  EXPECT_GT(lookout_result.map, 0.1);
}

}  // namespace
}  // namespace subex
